// p5g_trace — flight-recorder spill inspector.
//
//   p5g_trace summarize <trace.bin>                  per-category counts
//   p5g_trace convert   <trace.bin> <out.json>       Perfetto JSON export
//   p5g_trace filter    <trace.bin> <out.bin>        subset by --ue/--pci/
//                       [--ue N] [--pci N] [--category name]
//   p5g_trace list      <trace.bin> [--ue N]         one line per HO flow
//   p5g_trace ho        <trace.bin> --flow N [--ue N]  one HO's timeline
//
// Input files are the binary spills written by `--trace-out` (any bench or
// example); `convert` produces the same JSON the twin <path>.json already
// carries, after any amount of filtering.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "analysis/ho_timeline.h"
#include "common/io.h"
#include "obs/events.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: p5g_trace <summarize|convert|filter|list|ho> <trace.bin> ...\n"
      "  summarize <in>                       category/UE/drop accounting\n"
      "  convert   <in> <out.json>            export Perfetto JSON\n"
      "  filter    <in> <out.bin> [--ue N] [--pci N] [--category NAME]\n"
      "  list      <in> [--ue N]              one line per handover\n"
      "  ho        <in> --flow N [--ue N]     dump one handover's timeline\n");
  return 2;
}

std::optional<trace::EventTrace> load(const char* path) {
  std::string why;
  std::optional<trace::EventTrace> t = trace::load_event_trace(path, &why);
  if (!t) std::fprintf(stderr, "p5g_trace: %s: %s\n", path, why.c_str());
  return t;
}

// Common flag scanning for the filtering subcommands. Returns false (after
// printing the cause) on an unknown flag or malformed value.
bool parse_filter(int argc, char** argv, int first, trace::EventFilter& f,
                  std::optional<std::uint64_t>* flow) {
  for (int i = first; i < argc; ++i) {
    const std::string_view a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--ue" && has_value) {
      f.ue = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--pci" && has_value) {
      f.pci = static_cast<std::int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (a == "--category" && has_value) {
      obs::EventCategory c{};
      if (!obs::category_from_name(argv[++i], c)) {
        std::fprintf(stderr, "p5g_trace: unknown category '%s'\n", argv[i]);
        return false;
      }
      f.category = c;
    } else if (a == "--flow" && has_value && flow != nullptr) {
      *flow = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "p5g_trace: unexpected argument '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

int cmd_summarize(const trace::EventTrace& t) {
  std::printf("run %s seed %llu\n", t.run.c_str(),
              static_cast<unsigned long long>(t.seed));
  std::printf("events retained %zu, emitted %llu, dropped %llu%s\n",
              t.events.size(), static_cast<unsigned long long>(t.emitted),
              static_cast<unsigned long long>(t.dropped),
              t.dropped != 0 ? "  (ring overwrote history)" : "");
  std::map<obs::EventCategory, std::size_t> by_cat;
  std::map<std::uint32_t, std::size_t> by_ue;
  for (const obs::Event& e : t.events) {
    ++by_cat[e.category];
    ++by_ue[e.ue];
  }
  for (const auto& [cat, n] : by_cat) {
    std::printf("  %-12s %8zu\n", std::string(obs::category_name(cat)).c_str(),
                n);
  }
  const std::vector<analysis::HoTimeline> hos = analysis::ho_timelines(t.events);
  std::printf("UEs: %zu, completed handovers: %zu\n", by_ue.size(), hos.size());
  return 0;
}

int cmd_convert(const trace::EventTrace& t, const char* out) {
  if (const io::IoResult r =
          io::atomic_write_file(out, trace::to_perfetto_json(t));
      !r) {
    std::fprintf(stderr, "p5g_trace: cannot write %s: %s\n", out,
                 r.error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", out, t.events.size());
  return 0;
}

int cmd_filter(const trace::EventTrace& t, const trace::EventFilter& f,
               const char* out) {
  const trace::EventTrace kept = trace::filter_events(t, f);
  if (const io::IoResult r = trace::save_event_trace(out, kept); !r) {
    std::fprintf(stderr, "p5g_trace: cannot write %s: %s\n", out,
                 r.error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu of %zu events)\n", out, kept.events.size(),
              t.events.size());
  return 0;
}

int cmd_list(const trace::EventTrace& t, const trace::EventFilter& f) {
  std::size_t n = 0;
  for (const analysis::HoTimeline& h : analysis::ho_timelines(t.events)) {
    if (f.ue && h.ue != *f.ue) continue;
    const ran::HandoverRecord& r = h.record;
    std::printf(
        "ue %4u flow %6llu  t %9.3f s  %-4s %-15s  pci %d -> %d  %7.2f ms\n",
        h.ue, static_cast<unsigned long long>(h.flow), r.complete_time.v,
        std::string(ran::ho_name(r.type)).c_str(),
        std::string(ran::ho_outcome_name(r.outcome)).c_str(), r.src_pci,
        r.dst_pci, r.timing.total_ms().v);
    ++n;
  }
  std::printf("%zu handovers\n", n);
  return 0;
}

int cmd_ho(const trace::EventTrace& t, const trace::EventFilter& f,
           std::uint64_t flow) {
  for (const analysis::HoTimeline& h : analysis::ho_timelines(t.events)) {
    if (h.flow != flow) continue;
    if (f.ue && h.ue != *f.ue) continue;
    std::fputs(analysis::describe_timeline(h).c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "p5g_trace: no completed handover with flow %llu%s\n",
               static_cast<unsigned long long>(flow),
               f.ue ? " for that UE" : "");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view cmd = argv[1];
  const std::optional<trace::EventTrace> t = load(argv[2]);
  if (!t) return 1;

  if (cmd == "summarize" && argc == 3) return cmd_summarize(*t);
  if (cmd == "convert" && argc == 4) return cmd_convert(*t, argv[3]);
  if (cmd == "filter" && argc >= 4) {
    trace::EventFilter f;
    if (!parse_filter(argc, argv, 4, f, nullptr)) return 2;
    return cmd_filter(*t, f, argv[3]);
  }
  if (cmd == "list") {
    trace::EventFilter f;
    if (!parse_filter(argc, argv, 3, f, nullptr)) return 2;
    return cmd_list(*t, f);
  }
  if (cmd == "ho") {
    trace::EventFilter f;
    std::optional<std::uint64_t> flow;
    if (!parse_filter(argc, argv, 3, f, &flow)) return 2;
    if (!flow) {
      std::fprintf(stderr, "p5g_trace: ho requires --flow N (see `list`)\n");
      return 2;
    }
    return cmd_ho(*t, f, *flow);
  }
  return usage();
}
