#!/usr/bin/env python3
"""AST-grade project analyzer for the p5g simulator.

p5g_lint.py (PR 4) is a token matcher: it can reject `steady_clock` in a
tick-path file, but it cannot see *declarations* — that a parameter is a raw
`double` whose name promises a unit, that an `Rng` is taken by value (which
silently forks the deterministic stream), or that a `switch` over a project
enum hides missing enumerators behind a `default:`. Those are AST facts.
This tool checks them.

Backends
--------
  clang     `clang -Xclang -ast-dump=json -fsyntax-only` over each entry of
            the build tree's compile_commands.json (always exported; see the
            top-level CMakeLists). Declaration rules read the JSON AST;
            comment-anchored rules (allowances live in comments, which the
            AST does not carry) run on the token stream of the same files.
  fallback  a built-in lexer (comment/string stripper + paren/brace tracker)
            that extracts the same facts from source text. Used when clang
            is not installed — notably the gcc-only CI leg and dev boxes.
  auto      clang if available, else fallback (the default). Both backends
            must produce the same verdict on the fixture suite; the
            self-test enforces that for whichever backend is active.

AST dumps are cached in --cache-dir keyed on the SHA-256 of the file's
*content* (plus the compile flags and the clang version), so an unchanged
file never re-parses — in CI the cache directory is restored across runs,
which keeps the analyzer job near-constant time.

Rules
-----
  unit-suffix-double   a `double` declaration (parameter or field) in a
                       public header whose name carries a unit suffix
                       (_dbm, _db, _mw, _hz, _mhz, _ms, _s, _m, _km). The
                       name promises a unit; the type must deliver it —
                       except `_per_<unit>` names, which promise a RATE
                       (1/unit), for which no strong type exists yet —
                       use Dbm/Db/MilliWatts/Hertz/MegaHertz/Millis/
                       Seconds/Meters from common/units.h.
  rng-by-value         a function parameter of type `Rng` taken by value.
                       Copying an engine forks the stream: the callee
                       consumes draws the caller then re-consumes, which
                       de-correlates fault injection from the golden
                       traces. Take `Rng&`. Constructors are exempt: they
                       take OWNERSHIP of a dedicated stream by value (the
                       sink idiom — `ShadowingProcess(Band, Rng)` stores
                       the engine, it does not sample a caller's). The
                       project convention makes the distinction decidable:
                       types are CamelCase, sampling functions snake_case.
  float-in-core        any `float` in sim-core code (src/sim, src/ran,
                       src/radio, src/core, src/common). The golden traces
                       pin double rounding; a float narrows silently
                       (and -Wconversion does not catch a plain
                       `float x = 0.1f;` that later widens).
  ignored-ioresult     a call to an `io::IoResult`-returning function whose
                       result is discarded — as a bare statement or behind
                       `(void)` / `static_cast<void>`. [[nodiscard]] stops
                       the bare form at compile time only when warnings are
                       on; the cast forms it never stops.
  switch-enum          a `switch` over a project enum that has a `default:`
                       label but does not mention every enumerator. The
                       default swallows enumerators added later, which is
                       precisely the case -Wswitch cannot warn about
                       (it goes quiet as soon as a default exists).
  wall-clock           chrono clocks / time() / gettimeofday outside the
                       documented allowances (src/obs is the sanctioned
                       observability consumer; the watchdog and thread pool
                       measure real elapsed time by design). Same intent as
                       the p5g_lint rule but scoped over all of src/.

Suppression: `p5g-analyze: allow(<rule>)` in a comment on the offending
line (or the line above, for multi-line declarations). Whole-file and
whole-directory allowances live in FILE_ALLOWANCES / DIR_ALLOWANCES below
and must document why the construct is that code's job.

Usage
-----
  p5g_analyze.py                      analyze src/ (auto backend)
  p5g_analyze.py --backend fallback   force the built-in lexer
  p5g_analyze.py --compdb build       point at compile_commands.json
  p5g_analyze.py --cache-dir .cache/p5g-analyze
  p5g_analyze.py --self-test          run the fixture suite (tests/
                                      analyze_fixtures) and exit 0 only if
                                      every seeded violation is flagged and
                                      every allowance suppresses.

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage/internal.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CORE_DIRS = ("src/sim", "src/ran", "src/radio", "src/core", "src/common")
UNIT_SUFFIXES = ("dbm", "db", "mw", "hz", "mhz", "ms", "s", "m", "km")

# Whole-directory allowances: the observability layer is the sanctioned
# consumer of real clocks (wall-track timelines measure actual elapsed
# time; obs/timer.h is the stopwatch). Nothing in src/obs feeds simulated
# time.
DIR_ALLOWANCES: dict[str, set[str]] = {
    "src/obs": {"wall-clock"},
}
# Whole-file allowances — keep in lockstep with tools/p5g_lint.py, which
# documents each entry.
FILE_ALLOWANCES: dict[str, set[str]] = {
    "src/common/watchdog.h": {"wall-clock"},
    "src/common/watchdog.cpp": {"wall-clock"},
    "src/common/thread_pool.h": {"wall-clock"},
    "src/common/thread_pool.cpp": {"wall-clock"},
}

ALLOW_RE = re.compile(r"p5g-analyze:\s*allow\(([a-z-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)

# IoResult factory helpers are construction, not I/O — a discarded
# `IoResult::success()` is dead code, not a swallowed failure.
IORESULT_NAME_SKIP = {"success", "failure"}

FIXTURE_DIR = "tests/analyze_fixtures"


def is_core(rel: str) -> bool:
    return any(rel.startswith(d + "/") for d in CORE_DIRS) or rel.startswith(
        FIXTURE_DIR + "/"
    )


def is_public_header(rel: str) -> bool:
    return rel.endswith(".h") and (
        rel.startswith("src/") or rel.startswith(FIXTURE_DIR + "/")
    )


ALL_RULES = (
    "unit-suffix-double",
    "rng-by-value",
    "float-in-core",
    "ignored-ioresult",
    "switch-enum",
    "wall-clock",
)


# --------------------------------------------------------------------------
# Lexing helpers (shared by both backends — allowances and switch bodies are
# comment/token facts even when clang provides the declarations).
# --------------------------------------------------------------------------


def strip_code(text: str) -> str:
    """Blank comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line_comment", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                state, i = "block_comment", i + 2
                out.append("  ")
                continue
            if c == '"':
                state, i = "string", i + 1
                out.append(" ")
                continue
            if c == "'":
                state, i = "char", i + 1
                out.append(" ")
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            out.append("\n" if c == "\n" else " ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class SourceFile:
    """A file plus its stripped view and per-line allowance sets."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text(encoding="utf-8")
        self.code = strip_code(self.raw)
        self.raw_lines = self.raw.splitlines()
        self._allow: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.raw_lines, start=1):
            rules = set(ALLOW_RE.findall(line))
            if rules:
                self._allow[lineno] = rules

    def allowed(self, lineno: int, rule: str) -> bool:
        # Same line, or the line above (multi-line declarations put the
        # comment on its own line).
        for ln in (lineno, lineno - 1):
            if rule in self._allow.get(ln, set()):
                return True
        return False


class Finding:
    def __init__(self, rel: str, lineno: int, rule: str, message: str):
        self.rel, self.lineno, self.rule, self.message = rel, lineno, rule, message

    def __str__(self) -> str:
        return f"{self.rel}:{self.lineno}: {self.rule}: {self.message}"


# --------------------------------------------------------------------------
# Project fact tables (enums, IoResult functions) — extracted from headers;
# both backends consume these.
# --------------------------------------------------------------------------


ENUM_RE = re.compile(r"\benum\s+class\s+(\w+)[^{;]*\{", re.DOTALL)
ENUMERATOR_RE = re.compile(r"(?:^|,)\s*(k\w+|\w+)\s*(?:=[^,]*)?", re.DOTALL)
IORESULT_FN_RE = re.compile(r"\bIoResult\s+(?:\w+::)*(\w+)\s*\(")


def collect_project_enums(files: list[SourceFile]) -> dict[str, set[str]]:
    enums: dict[str, set[str]] = {}
    for sf in files:
        for m in ENUM_RE.finditer(sf.code):
            body_start = m.end()
            depth, j = 1, body_start
            while j < len(sf.code) and depth:
                if sf.code[j] == "{":
                    depth += 1
                elif sf.code[j] == "}":
                    depth -= 1
                j += 1
            body = sf.code[body_start : j - 1]
            members = {
                e.group(1)
                for e in ENUMERATOR_RE.finditer(body)
                if e.group(1)
            }
            if members:
                enums[m.group(1)] = members
    return enums


def collect_ioresult_functions(files: list[SourceFile]) -> set[str]:
    names: set[str] = set()
    for sf in files:
        for m in IORESULT_FN_RE.finditer(sf.code):
            if m.group(1) not in IORESULT_NAME_SKIP:
                names.add(m.group(1))
    return names


# --------------------------------------------------------------------------
# Fallback (lexical) rule implementations.
# --------------------------------------------------------------------------


UNIT_DOUBLE_RE = re.compile(
    r"\bdouble\s+(\w+?_(?:" + "|".join(UNIT_SUFFIXES) + r"))\b\s*(?!\()"
)


def unit_suffix_name(name: str) -> bool:
    """True when `name` promises a unit (ends in a unit suffix and is not a
    `_per_<unit>` rate, which no strong type covers)."""
    if not ("_" in name and name.rsplit("_", 1)[1] in UNIT_SUFFIXES):
        return False
    return not name.rsplit("_", 2)[-2:][0] == "per"
RNG_BY_VALUE_RE = re.compile(r"[(,]\s*(?:p5g\s*::\s*)?Rng\s+(\w+)\s*(?=[,)=])")
FLOAT_RE = re.compile(r"\bfloat\b")


def rule_unit_suffix(sf: SourceFile) -> list[Finding]:
    out = []
    for m in UNIT_DOUBLE_RE.finditer(sf.code):
        if not unit_suffix_name(m.group(1)):
            continue
        ln = line_of(sf.code, m.start())
        if sf.allowed(ln, "unit-suffix-double"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "unit-suffix-double",
                f"raw double '{m.group(1)}' is named with a unit suffix — "
                f"use the strong type from common/units.h",
            )
        )
    return out


def enclosing_callable(code: str, pos: int) -> str:
    """Name of the callable whose parameter list encloses `pos` (the word
    before the unmatched '(' scanning backwards)."""
    depth = 0
    i = pos - 1
    while i >= 0:
        c = code[i]
        if c == ")":
            depth += 1
        elif c == "(":
            if depth == 0:
                m = re.search(r"([A-Za-z_]\w*)\s*$", code[:i])
                return m.group(1) if m else ""
            depth -= 1
        elif c in ";{}" and depth == 0:
            return ""
        i -= 1
    return ""


def rule_rng_by_value(sf: SourceFile) -> list[Finding]:
    out = []
    for m in RNG_BY_VALUE_RE.finditer(sf.code):
        # Constructors (CamelCase per project convention) take ownership of
        # a dedicated stream by value — the sink idiom, not a fork.
        owner = enclosing_callable(sf.code, m.start(1))
        if owner[:1].isupper():
            continue
        ln = line_of(sf.code, m.start(1))
        if sf.allowed(ln, "rng-by-value"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "rng-by-value",
                f"parameter '{m.group(1)}' copies the Rng engine — a value "
                f"copy forks the deterministic stream; take Rng&",
            )
        )
    return out


def rule_float_in_core(sf: SourceFile) -> list[Finding]:
    out = []
    for m in FLOAT_RE.finditer(sf.code):
        ln = line_of(sf.code, m.start())
        if sf.allowed(ln, "float-in-core"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "float-in-core",
                "float in sim-core code — golden traces pin double "
                "rounding; use double (or a units.h type)",
            )
        )
    return out


STMT_KEYWORDS = ("if", "for", "while", "switch", "return", "case", "else", "do")


def split_statements(code: str) -> list[tuple[int, str]]:
    """(offset, text) of each `;`-terminated statement, ignoring `;` inside
    parentheses (for-loops, if-with-initializer)."""
    out = []
    depth = 0
    start = 0
    for i, c in enumerate(code):
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c in "{}" and depth == 0:
            start = i + 1
        elif c == ";" and depth == 0:
            out.append((start, code[start:i]))
            start = i + 1
    return out


def rule_ignored_ioresult(sf: SourceFile, fns: set[str]) -> list[Finding]:
    if not fns:
        return []
    names = "|".join(sorted(re.escape(f) for f in fns))
    bare = re.compile(
        r"^(?:\w+\s*(?:\.|->|::)\s*)*(" + names + r")\s*\("
    )
    cast = re.compile(
        r"^(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>\s*\()\s*"
        r"(?:\w+\s*(?:\.|->|::)\s*)*(" + names + r")\s*\("
    )
    out = []
    for off, stmt in split_statements(sf.code):
        text = stmt.strip()
        if not text or text.split("(")[0].strip() in STMT_KEYWORDS:
            continue
        first_word = re.match(r"\w+", text)
        if first_word and first_word.group(0) in STMT_KEYWORDS:
            continue
        m = cast.match(text) or bare.match(text)
        if not m:
            continue
        ln = line_of(sf.code, off + len(stmt) - len(stmt.lstrip()))
        if sf.allowed(ln, "ignored-ioresult"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "ignored-ioresult",
                f"result of '{m.group(1)}' (io::IoResult) is discarded — "
                f"handle the failure or annotate why it is safe to drop",
            )
        )
    return out


SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+(?:\w+\s*::\s*)*(\w+)\s*::\s*(\w+)")
DEFAULT_RE = re.compile(r"\bdefault\s*:")


def rule_switch_enum(sf: SourceFile, enums: dict[str, set[str]]) -> list[Finding]:
    out = []
    for m in SWITCH_RE.finditer(sf.code):
        # Find the switch body: first '{' after the closing paren.
        depth, j = 1, m.end()
        while j < len(sf.code) and depth:
            if sf.code[j] == "(":
                depth += 1
            elif sf.code[j] == ")":
                depth -= 1
            j += 1
        body_open = sf.code.find("{", j)
        if body_open < 0:
            continue
        depth, k = 1, body_open + 1
        while k < len(sf.code) and depth:
            if sf.code[k] == "{":
                depth += 1
            elif sf.code[k] == "}":
                depth -= 1
            k += 1
        body = sf.code[body_open:k]
        cases = CASE_RE.findall(body)
        if not cases:
            continue
        enum_name = cases[0][0]
        if enum_name not in enums:
            continue
        if not DEFAULT_RE.search(body):
            continue  # no default: -Wswitch already polices missing cases
        used = {c[1] for c in cases if c[0] == enum_name}
        missing = sorted(enums[enum_name] - used)
        if not missing:
            continue
        ln = line_of(sf.code, m.start())
        if sf.allowed(ln, "switch-enum"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "switch-enum",
                f"switch over {enum_name} hides "
                f"{{{', '.join(missing)}}} behind 'default:' — enumerate "
                f"every value (the default swallows enumerators added "
                f"later, and -Wswitch goes quiet once a default exists)",
            )
        )
    return out


def rule_wall_clock(sf: SourceFile) -> list[Finding]:
    out = []
    for m in WALL_CLOCK_RE.finditer(sf.code):
        ln = line_of(sf.code, m.start())
        if sf.allowed(ln, "wall-clock"):
            continue
        out.append(
            Finding(
                sf.rel,
                ln,
                "wall-clock",
                f"wall-clock construct '{m.group(0).strip()}' outside the "
                f"documented allowances — simulated time comes from "
                f"Seconds, real time belongs to src/obs",
            )
        )
    return out


# --------------------------------------------------------------------------
# clang JSON-AST backend. Declaration rules read the dump; the dump is
# cached by content hash so unchanged files are free.
# --------------------------------------------------------------------------


def find_clang() -> str | None:
    for name in ("clang++", "clang", "clang++-18", "clang++-17", "clang++-16"):
        try:
            subprocess.run(
                [name, "--version"], capture_output=True, check=True, text=True
            )
            return name
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def load_compdb(compdb_dir: Path) -> dict[str, list[str]]:
    """path -> compile args (without -o / -c)."""
    db_path = compdb_dir / "compile_commands.json"
    if not db_path.is_file():
        return {}
    entries = json.loads(db_path.read_text(encoding="utf-8"))
    out: dict[str, list[str]] = {}
    for e in entries:
        args = e.get("arguments") or shlex.split(e.get("command", ""))
        cleaned, skip = [], False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            cleaned.append(a)
        src = str((Path(e["directory"]) / e["file"]).resolve())
        out[src] = cleaned
    return out


def ast_dump(
    clang: str, path: Path, args: list[str], cache_dir: Path
) -> dict | None:
    content = path.read_bytes()
    key = hashlib.sha256(
        content + "\0".join([clang] + args).encode()
    ).hexdigest()
    cache_dir.mkdir(parents=True, exist_ok=True)
    cached = cache_dir / f"{key}.json"
    if cached.is_file():
        try:
            return json.loads(cached.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            cached.unlink()
    cmd = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json", *args, str(path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0 or not proc.stdout:
        return None
    try:
        tree = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None
    cached.write_text(proc.stdout, encoding="utf-8")
    return tree


def walk_ast(node: dict, path_str: str, state: dict, findings: list, sf_map):
    """Single pass over the JSON AST collecting declaration facts."""
    if not isinstance(node, dict):
        return
    loc = node.get("loc", {})
    file_ = loc.get("file") or state.get("file")
    if loc.get("file"):
        state = dict(state, file=loc["file"])
    line = loc.get("line") or state.get("line")
    if loc.get("line"):
        state = dict(state, line=loc["line"])
    kind = node.get("kind")
    qual = (node.get("type") or {}).get("qualType", "")

    sf = sf_map.get(str(Path(file_).resolve())) if file_ else None
    if sf is not None and line:
        if kind == "ParmVarDecl" and not state.get("in_ctor"):
            name = node.get("name", "")
            base = qual.replace("const", "").strip()
            if base in ("p5g::Rng", "Rng") and not sf.allowed(line, "rng-by-value"):
                findings.append(
                    Finding(
                        sf.rel,
                        line,
                        "rng-by-value",
                        f"parameter '{name}' copies the Rng engine — a value "
                        f"copy forks the deterministic stream; take Rng&",
                    )
                )
        if kind in ("ParmVarDecl", "FieldDecl") and qual == "double":
            name = node.get("name", "")
            if (
                name
                and unit_suffix_name(name)
                and is_public_header(sf.rel)
                and not sf.allowed(line, "unit-suffix-double")
            ):
                findings.append(
                    Finding(
                        sf.rel,
                        line,
                        "unit-suffix-double",
                        f"raw double '{name}' is named with a unit suffix — "
                        f"use the strong type from common/units.h",
                    )
                )
        if (
            kind in ("VarDecl", "ParmVarDecl", "FieldDecl")
            and qual.split()[0:1] == ["float"]
            and is_core(sf.rel)
            and not sf.allowed(line, "float-in-core")
        ):
            findings.append(
                Finding(
                    sf.rel,
                    line,
                    "float-in-core",
                    "float in sim-core code — golden traces pin double "
                    "rounding; use double (or a units.h type)",
                )
            )
    if kind == "CXXConstructorDecl":
        state = dict(state, in_ctor=True)
    elif kind in ("FunctionDecl", "CXXMethodDecl"):
        state = dict(state, in_ctor=False)
    for child in node.get("inner", []) or []:
        walk_ast(child, path_str, state, findings, sf_map)


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def gather_files(root: Path, dirs: list[str]) -> list[SourceFile]:
    files = []
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in (".h", ".cpp", ".cc", ".hpp"):
                files.append(SourceFile(p, root))
    return files


def dir_file_allowed(rel: str, rule: str) -> bool:
    for d, rules in DIR_ALLOWANCES.items():
        if rel.startswith(d + "/") and rule in rules:
            return True
    return rule in FILE_ALLOWANCES.get(rel, set())


def analyze(
    files: list[SourceFile],
    backend: str,
    compdb: dict[str, list[str]],
    cache_dir: Path,
    clang: str | None,
) -> list[Finding]:
    enums = collect_project_enums(files)
    io_fns = collect_ioresult_functions(files)
    findings: list[Finding] = []

    decl_rules_done = False
    if backend == "clang" and clang:
        sf_map = {str(sf.path.resolve()): sf for sf in files}
        dumped = 0
        for sf in files:
            if sf.path.suffix != ".cpp":
                continue  # headers are covered through the TUs that include them
            args = compdb.get(str(sf.path.resolve()))
            if args is None:
                continue
            tree = ast_dump(clang, sf.path, args, cache_dir)
            if tree is None:
                continue
            dumped += 1
            walk_ast(tree, str(sf.path), {}, findings, sf_map)
        if dumped:
            decl_rules_done = True
            # Files outside every TU (headers, pure fixtures) still need
            # the declaration rules — fall through lexically for whatever
            # the AST pass never saw.
            for sf in files:
                if sf.path.suffix == ".cpp" and str(sf.path.resolve()) in compdb:
                    continue
                findings += rule_rng_by_value(sf)
                if is_public_header(sf.rel):
                    findings += rule_unit_suffix(sf)
                if is_core(sf.rel):
                    findings += rule_float_in_core(sf)

    if not decl_rules_done:
        for sf in files:
            findings += rule_rng_by_value(sf)
            if is_public_header(sf.rel):
                findings += rule_unit_suffix(sf)
            if is_core(sf.rel):
                findings += rule_float_in_core(sf)

    # Comment/token rules run lexically under both backends.
    for sf in files:
        findings += rule_ignored_ioresult(sf, io_fns)
        findings += rule_switch_enum(sf, enums)
        findings += rule_wall_clock(sf)

    findings = [
        f for f in findings if not dir_file_allowed(f.rel, f.rule)
    ]
    # De-duplicate (clang + lexical overlap on fixture headers).
    uniq = {}
    for f in findings:
        uniq[(f.rel, f.lineno, f.rule)] = f
    return sorted(uniq.values(), key=lambda f: (f.rel, f.lineno, f.rule))


def run_self_test(backend: str, compdb, cache_dir, clang) -> int:
    """Every fixture file declares its expectations in comments:
    `// p5g-analyze-expect: <rule>` — the analyzer must flag that rule in
    this file; a fixture with `p5g-analyze-expect: clean` must produce no
    findings at all (it seeds violations covered by allow() comments)."""
    fixture_dir = REPO / "tests/analyze_fixtures"
    if not fixture_dir.is_dir():
        print(f"p5g_analyze: missing fixture dir {fixture_dir}", file=sys.stderr)
        return 2
    files = gather_files(REPO, ["tests/analyze_fixtures", "src/common"])
    fixture_files = [f for f in files if f.rel.startswith(FIXTURE_DIR + "/")]
    findings = analyze(files, backend, compdb, cache_dir, clang)
    by_file: dict[str, set[str]] = {}
    for f in findings:
        by_file.setdefault(f.rel, set()).add(f.rule)

    expect_re = re.compile(r"p5g-analyze-expect:\s*([a-z-]+)")
    failures = []
    covered_rules: set[str] = set()
    for sf in fixture_files:
        expects = expect_re.findall(sf.raw)
        got = by_file.get(sf.rel, set())
        for exp in expects:
            if exp == "clean":
                if got:
                    failures.append(
                        f"{sf.rel}: expected clean (allowances) but got {sorted(got)}"
                    )
            else:
                covered_rules.add(exp)
                if exp not in got:
                    failures.append(f"{sf.rel}: rule '{exp}' was NOT flagged")
    missing_rules = set(ALL_RULES) - covered_rules
    if missing_rules:
        failures.append(
            f"fixture suite does not cover rules: {sorted(missing_rules)}"
        )
    if failures:
        print(f"p5g_analyze self-test: FAIL ({backend} backend)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"p5g_analyze self-test: OK — {len(fixture_files)} fixtures, all "
        f"{len(ALL_RULES)} rules flagged and allowances suppressed "
        f"({backend} backend)"
    )
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", choices=("auto", "clang", "fallback"), default="auto")
    ap.add_argument("--compdb", default="build", help="dir holding compile_commands.json")
    ap.add_argument("--cache-dir", default=".cache/p5g-analyze")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("paths", nargs="*", help="extra dirs to scan (default: src)")
    opts = ap.parse_args()

    clang = find_clang() if opts.backend in ("auto", "clang") else None
    backend = "clang" if clang else "fallback"
    if opts.backend == "clang" and not clang:
        print("p5g_analyze: --backend clang but no clang found", file=sys.stderr)
        return 2
    compdb = load_compdb(REPO / opts.compdb) if backend == "clang" else {}
    cache_dir = REPO / opts.cache_dir

    if opts.self_test:
        return run_self_test(backend, compdb, cache_dir, clang)

    scan = opts.paths or ["src"]
    files = gather_files(REPO, scan)
    if not files:
        print(f"p5g_analyze: nothing to scan under {scan}", file=sys.stderr)
        return 2
    findings = analyze(files, backend, compdb, cache_dir, clang)
    if findings:
        print(f"p5g_analyze: {len(findings)} finding(s) in {len(files)} files "
              f"({backend} backend):")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"p5g_analyze: OK ({len(files)} files, {backend} backend)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
