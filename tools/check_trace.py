#!/usr/bin/env python3
"""Validate a flight-recorder Perfetto JSON export (CI gate).

Usage: check_trace.py <trace.json> [--require-ho]

Checks that the file parses as Chrome trace-event JSON and that every event
carries the schema the exporters promise (see DESIGN.md "Flight recorder"):

  * top level: object with a "traceEvents" array (displayTimeUnit optional)
  * metadata ("M") events name the two processes: pid 1 = sim timeline,
    pid 2 = engine wall clock
  * every non-metadata event: name, cat (a known category), ph "X" or "i",
    integer pid (1 or 2) and tid, numeric ts; "X" also needs numeric
    dur >= 0; "i" needs scope "s"
  * at least one sim-track (pid 1) event exists

--require-ho additionally demands a complete handover family (ho.prep,
ho.exec and ho.complete events) — used by the CI perf job, whose corridor
always hands over.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import json
import sys

KNOWN_CATEGORIES = {
    "tick", "mm.observe", "mm.decide", "ho.prep", "ho.exec", "ho.complete",
    "rlf", "rach.retry", "pool.task", "checkpoint", "app.outage",
}

SIM_PID = 1
WALL_PID = 2


def fail(errors):
    for e in errors:
        print(f"check_trace: {e}", file=sys.stderr)
    print(f"check_trace: FAIL ({len(errors)} violation(s))", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    require_ho = len(argv) == 3 and argv[2] == "--require-ho"

    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail([f"{path}: cannot parse: {e}"])

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail([f"{path}: no traceEvents array at the top level"])

    events = doc["traceEvents"]
    process_names = {}
    categories = set()
    sim_events = 0

    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                name = (e.get("args") or {}).get("name")
                if isinstance(name, str):
                    process_names[e.get("pid")] = name
            continue
        if ph not in ("X", "i"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            errors.append(f"{where}: missing name")
        cat = e.get("cat")
        if cat not in KNOWN_CATEGORIES:
            errors.append(f"{where}: unknown cat {cat!r}")
        else:
            categories.add(cat)
        pid = e.get("pid")
        if pid not in (SIM_PID, WALL_PID):
            errors.append(f"{where}: pid must be {SIM_PID} or {WALL_PID}, got {pid!r}")
        elif pid == SIM_PID:
            sim_events += 1
        if not isinstance(e.get("tid"), int):
            errors.append(f"{where}: missing integer tid")
        if not isinstance(e.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs numeric dur >= 0, got {dur!r}")
        if ph == "i" and e.get("s") != "t":
            errors.append(f"{where}: instant needs scope s == 't'")

    if SIM_PID not in process_names:
        errors.append(f"no process_name metadata for sim timeline (pid {SIM_PID})")
    if WALL_PID not in process_names:
        errors.append(f"no process_name metadata for wall track (pid {WALL_PID})")
    if sim_events == 0:
        errors.append("no sim-track events at all")

    if require_ho:
        for needed in ("ho.prep", "ho.exec", "ho.complete"):
            if needed not in categories:
                errors.append(f"--require-ho: no {needed} events in the trace")

    if errors:
        return fail(errors)
    print(f"check_trace: OK — {len(events)} entries, {sim_events} sim events, "
          f"categories: {', '.join(sorted(categories))}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
