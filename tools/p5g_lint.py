#!/usr/bin/env python3
"""Determinism linter for the p5g simulator.

The simulator's core promise is bit-for-bit reproducibility: the same
scenario and seed must produce byte-identical traces on every run and every
machine (tests/golden/). That breaks the moment tick-path code reads a wall
clock, draws from an unseeded/global RNG, or interleaves console writes from
worker threads. Those bugs are trivial to introduce and expensive to bisect,
so this linter rejects them in CI before they land.

Scanned: src/sim, src/ran, src/radio, src/core (the deterministic layers)
and src/common (shared infrastructure — it feeds the tick path, so it gets
the same rules, minus the allowances below).
NOT scanned: src/obs (the observability layer is the sanctioned consumer of
steady_clock), trace/analysis/apps (I/O is their job).

Rules:
  wall-clock    chrono clocks, time(), gettimeofday, clock() — tick code
                must derive all timing from simulated Seconds.
  std-random    std:: random machinery (rand, srand, random_device, any
                std engine) — randomness must come from the seeded p5g::Rng
                streams so fault draws stay on their dedicated stream.
  tick-io       stdout/stderr writes (iostream, printf family) — the tick
                path is run under the parallel runner; console writes are
                nondeterministically interleaved and hide in timing noise.
  fp-contract   explicit fused multiply-add (std::fma / __builtin_fma*) and
                the FP_CONTRACT/fast-math pragmas — the golden traces pin
                the exact double rounding of every expression; an FMA
                contracts a*b+c into one differently-rounded operation, and
                fast-math licenses reassociation. Batch/SIMD refactors in
                src/radio must keep plain mul+add (see radio/batch.h).
  trace-schema  the CSV headers written by src/trace/trace.cpp must match
                tests/golden/: the tick header exactly, and the golden
                .ho.csv header must be a byte-prefix of the writer's (fault
                columns are appended after the golden columns).

Suppress a finding by putting  p5g-lint: allow(<rule>)  in a comment on the
offending line. Whole-file exemptions live in FILE_ALLOWANCES below — use
them only for infrastructure whose *job* is the forbidden construct (the
watchdog cannot measure elapsed real time without a real clock), never for
tick-path simulation code.

Self-test: `p5g_lint.py --self-test` lints tests/lint_fixtures/ instead of
the real tree. Each fixture declares its contract in a comment —
`p5g-lint-expect: <rule>` (the file must produce >= 1 finding of that rule)
or `p5g-lint-expect: clean` (zero findings; proves allow() suppression
works). The self-test fails unless every code rule is covered by a fixture,
so a regex edit that silently kills a rule breaks CI, not just the rule.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src/sim", "src/ran", "src/radio", "src/core", "src/common"]

# Whole-file allowances: repo-relative path -> rules exempt in that file.
# Each entry must say WHY the construct is the file's job. Everything else
# in the scanned dirs — including the rest of src/common (rng, csv, io,
# chaos, check.h) — is held to the full rule set.
FILE_ALLOWANCES: dict[str, set[str]] = {
    # The watchdog's purpose is flagging tasks that exceed a real-time
    # deadline; elapsed wall time IS its measurement. steady_clock is
    # monotonic and never feeds simulated time. watchdog.h documents this
    # as the sanctioned exception and points back at this table.
    "src/common/watchdog.h": {"wall-clock"},
    "src/common/watchdog.cpp": {"wall-clock"},
    # The pool timestamps job enqueue times (steady_clock) so the watchdog
    # can compute elapsed real time for stuck-task detection. Simulation
    # results never depend on these timestamps.
    "src/common/thread_pool.h": {"wall-clock"},
    "src/common/thread_pool.cpp": {"wall-clock"},
    # Check-violation reporting writes the failure to stderr before the
    # configured sink runs — diagnostics on the failure path, not tick I/O.
    "src/common/check.cpp": {"tick-io"},
}
TRACE_WRITER = REPO / "src/trace/trace.cpp"
GOLDEN_TICK = REPO / "tests/golden/zero_fault_seed42.csv"
GOLDEN_HO = REPO / "tests/golden/zero_fault_seed42.csv.ho.csv"

FIXTURE_DIR = "tests/lint_fixtures"

ALLOW_RE = re.compile(r"p5g-lint:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"p5g-lint-expect:\s*([a-z-]+)")

RULES = {
    "wall-clock": re.compile(
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|\bgettimeofday\s*\("
        r"|\bclock\s*\(\s*\)"
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    ),
    "std-random": re.compile(
        r"\bstd\s*::\s*(?:rand|srand|random_device|mt19937(?:_64)?"
        r"|minstd_rand0?|default_random_engine|random_shuffle)\b"
        r"|\bsrand\s*\("
    ),
    "tick-io": re.compile(
        r"\bstd\s*::\s*(?:cout|cerr|clog)\b"
        r"|\b(?:printf|puts|putchar)\s*\("
        r"|\bfprintf\s*\(\s*(?:stdout|stderr)\b"
    ),
    "fp-contract": re.compile(
        r"\bstd\s*::\s*fmaf?\b"
        r"|\b__builtin_fmaf?\b"
        r"|\bfmaf?\s*\("
        r"|#\s*pragma\s+STDC\s+FP_CONTRACT"
        r"|\bfp_contract\b"
        r"|\bfast-?math\b|\bffast-math\b"
    ),
}


def strip_code(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive. Comment text must not trip the code rules (it
    routinely names the forbidden constructs, as this docstring does)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code_lines = strip_code(raw).splitlines()
    file_allowed = FILE_ALLOWANCES.get(path.relative_to(REPO).as_posix(), set())
    findings = []
    for lineno, (code, orig) in enumerate(zip(code_lines, raw_lines), start=1):
        allowed = set(ALLOW_RE.findall(orig)) | file_allowed
        for rule, pattern in RULES.items():
            if rule in allowed:
                continue
            m = pattern.search(code)
            if m:
                rel = path.relative_to(REPO)
                findings.append(
                    f"{rel}:{lineno}: {rule}: forbidden construct "
                    f"'{m.group(0).strip()}' in deterministic tick-path code"
                )
    return findings


def writer_headers() -> list[list[str]]:
    """Column lists of every csv::Writer construction in trace.cpp, in
    source order."""
    text = TRACE_WRITER.read_text(encoding="utf-8")
    headers = []
    for m in re.finditer(r"csv::Writer\s+\w+\s*\(", text):
        # Walk the balanced parens of the constructor call, then pull every
        # string literal out of its brace-enclosed column list.
        depth, j = 1, m.end()
        while j < len(text) and depth:
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
            j += 1
        call = text[m.end() : j]
        brace = re.search(r"\{(.*)\}", call, re.DOTALL)
        if brace:
            headers.append(re.findall(r'"([^"]*)"', brace.group(1)))
    return headers


def check_trace_schema() -> list[str]:
    findings = []
    headers = writer_headers()
    by_first = {h[0]: h for h in headers if h}
    golden_tick = GOLDEN_TICK.read_text(encoding="utf-8").splitlines()[0].split(",")
    golden_ho = GOLDEN_HO.read_text(encoding="utf-8").splitlines()[0].split(",")

    tick = by_first.get(golden_tick[0])
    if tick is None:
        findings.append(
            f"src/trace/trace.cpp: trace-schema: no csv::Writer emits a "
            f"header starting with '{golden_tick[0]}'"
        )
    elif tick != golden_tick:
        findings.append(
            f"src/trace/trace.cpp: trace-schema: tick header has "
            f"{len(tick)} columns {tick}, golden "
            f"{GOLDEN_TICK.relative_to(REPO)} has {len(golden_tick)} "
            f"{golden_tick} — regenerate the golden or fix the writer"
        )

    ho = by_first.get(golden_ho[0])
    if ho is None:
        findings.append(
            f"src/trace/trace.cpp: trace-schema: no csv::Writer emits a "
            f"header starting with '{golden_ho[0]}'"
        )
    elif ho[: len(golden_ho)] != golden_ho:
        # Columns may be APPENDED after the golden set (that keeps the
        # byte-prefix identity test working), never renamed or reordered.
        findings.append(
            f"src/trace/trace.cpp: trace-schema: golden ho.csv header "
            f"{golden_ho} is not a prefix of the writer's {ho} — new "
            f"columns must be appended, not inserted"
        )
    return findings


def run_self_test() -> int:
    """Lint the seeded-violation fixtures and check each file's declared
    expectation. Every code rule must be exercised by at least one fixture."""
    root = REPO / FIXTURE_DIR
    if not root.is_dir():
        print(f"p5g_lint: missing fixture dir {FIXTURE_DIR}", file=sys.stderr)
        return 2
    failures: list[str] = []
    rules_flagged: set[str] = set()
    n_fixtures = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".h", ".cpp", ".cc", ".hpp"):
            continue
        n_fixtures += 1
        rel = path.relative_to(REPO).as_posix()
        expects = EXPECT_RE.findall(path.read_text(encoding="utf-8"))
        if not expects:
            failures.append(f"{rel}: no p5g-lint-expect marker")
            continue
        findings = lint_file(path)
        fired = {f.split(": ")[1] for f in findings}
        rules_flagged |= fired
        for exp in expects:
            if exp == "clean":
                if findings:
                    failures.append(
                        f"{rel}: expected clean but got {len(findings)} "
                        f"finding(s): {findings[0]}"
                    )
            elif exp not in fired:
                failures.append(
                    f"{rel}: expected rule '{exp}' to fire, it did not "
                    f"(fired: {sorted(fired) or 'none'})"
                )
    missing = set(RULES) - rules_flagged
    if missing:
        failures.append(
            f"rules with no firing fixture: {sorted(missing)} — every code "
            f"rule needs a seeded violation in {FIXTURE_DIR}"
        )
    if failures:
        print(f"p5g_lint self-test: FAIL ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"p5g_lint self-test: OK — {n_fixtures} fixtures, all "
        f"{len(RULES)} code rules flagged and allowances suppressed"
    )
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return run_self_test()
    findings: list[str] = []
    scanned = 0
    for d in SCAN_DIRS:
        root = REPO / d
        if not root.is_dir():
            print(f"p5g_lint: missing scan dir {d}", file=sys.stderr)
            return 2
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".h", ".cpp", ".cc", ".hpp"):
                continue
            scanned += 1
            findings += lint_file(path)
    findings += check_trace_schema()

    if findings:
        print(f"p5g_lint: {len(findings)} finding(s) in {scanned} files:")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"p5g_lint: OK ({scanned} files, trace schema consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
