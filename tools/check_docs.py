#!/usr/bin/env python3
"""Docs drift check: the repo's documentation must track its binaries.

Rules (each failure is one line on stderr; exit 1 if any fired):

  B1  every bench binary (bench/bench_*.cpp) has a row in EXPERIMENTS.md's
      repro index that names it;
  B2  every `--flag` used by an EXPERIMENTS.md command exists in the
      sources that parse that binary's arguments (the bench itself plus the
      shared arg helpers obs::export_from_args / trace::export_trace_from_args);
  D1  every module named in DESIGN.md's layering DAG exists, either as a
      src/<module> directory or as an add_library(p5g_<module>) target;
  D2  every src/ subdirectory appears in the DAG (a new module must be
      documented before it ships).

Run from anywhere: paths resolve relative to the repo root (the parent of
this script's directory). `--self-test` proves each rule fires on seeded
violations, in the spirit of p5g_lint.py.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Flags parsed by shared helpers rather than the bench's own main().
SHARED_ARG_SOURCES = (
    "src/obs/export.cpp",
    "src/trace/event_trace.cpp",
)


def bench_names(repo: Path) -> list[str]:
    return sorted(p.stem for p in (repo / "bench").glob("bench_*.cpp"))


def experiments_rows(text: str) -> dict[str, str]:
    """Maps binary name -> command cell for every repro-index table row."""
    rows: dict[str, str] = {}
    for line in text.splitlines():
        m = re.match(r"\|\s*`([A-Za-z0-9_]+)`\s*\|([^|]*)\|([^|]*)\|", line)
        if m:
            rows[m.group(1)] = m.group(3)
    return rows


def command_flags(cell: str) -> set[str]:
    """All `--flag` tokens inside the backtick-quoted commands of a cell."""
    flags: set[str] = set()
    for cmd in re.findall(r"`([^`]*)`", cell):
        flags.update(re.findall(r"--[A-Za-z0-9-]+", cmd))
    return flags


def check_benches(repo: Path, experiments: str) -> list[str]:
    errors: list[str] = []
    rows = experiments_rows(experiments)
    shared = "".join(
        (repo / s).read_text(encoding="utf-8") for s in SHARED_ARG_SOURCES
        if (repo / s).exists())
    for name in bench_names(repo):
        if name not in rows:
            errors.append(
                f"EXPERIMENTS.md: no repro-index row for bench/{name}.cpp")
            continue
        source = (repo / "bench" / f"{name}.cpp").read_text(encoding="utf-8")
        for flag in sorted(command_flags(rows[name])):
            if flag not in source and flag not in shared:
                errors.append(
                    f"EXPERIMENTS.md: row `{name}` uses {flag}, which "
                    f"bench/{name}.cpp does not parse")
    return errors


def dag_modules(design: str) -> list[str]:
    """Module names from the ``level N  name -> deps`` code block."""
    block = re.search(r"```\nlevel 0.*?```", design, re.DOTALL)
    if not block:
        return []
    names: list[str] = []
    for line in block.group(0).splitlines():
        m = re.match(r"(?:level \d+)?\s+([a-z_]+)\s*(?:→|\()", line)
        if m:
            names.append(m.group(1))
    return names


def check_dag(repo: Path, design: str) -> list[str]:
    errors: list[str] = []
    modules = dag_modules(design)
    if not modules:
        return ["DESIGN.md: layering DAG code block not found"]
    src_dirs = sorted(p.name for p in (repo / "src").iterdir() if p.is_dir())
    libs: set[str] = set()
    for cml in (repo / "src").glob("*/CMakeLists.txt"):
        libs.update(re.findall(r"add_library\(p5g_([a-z_]+)",
                               cml.read_text(encoding="utf-8")))
    for mod in modules:
        if mod not in src_dirs and mod not in libs:
            errors.append(
                f"DESIGN.md: DAG names module `{mod}` but src/{mod}/ does "
                f"not exist and no add_library(p5g_{mod}) was found")
    for d in src_dirs:
        if d not in modules:
            errors.append(
                f"DESIGN.md: src/{d}/ is not in the layering DAG")
    return errors


def run(repo: Path) -> list[str]:
    errors: list[str] = []
    exp = repo / "EXPERIMENTS.md"
    design = repo / "DESIGN.md"
    if not exp.exists():
        errors.append("EXPERIMENTS.md missing")
    else:
        errors += check_benches(repo, exp.read_text(encoding="utf-8"))
    if not design.exists():
        errors.append("DESIGN.md missing")
    else:
        errors += check_dag(repo, design.read_text(encoding="utf-8"))
    return errors


def self_test() -> int:
    """Each rule must fire on a seeded violation and pass on clean input."""
    failures: list[str] = []

    # B1/B2 on synthetic tables.
    rows = experiments_rows(
        "| `bench_x` | Fig. 1 | `./build/bench/bench_x --quick` | n |\n"
        "| `bench_y` | Fig. 2 | `./build/bench/bench_y` | n |\n")
    if set(rows) != {"bench_x", "bench_y"}:
        failures.append(f"row parser: {sorted(rows)}")
    if command_flags(rows["bench_x"]) != {"--quick"}:
        failures.append("flag extraction missed --quick")
    if command_flags("text `a --b-c 1` and `d --e`") != {"--b-c", "--e"}:
        failures.append("flag extraction across multiple commands")

    # D1/D2 on a synthetic DAG.
    dag = ("```\nlevel 0   check        (nothing)\n"
           "level 1   ghost      → check\n```")
    mods = dag_modules(dag)
    if mods != ["check", "ghost"]:
        failures.append(f"DAG parser: {mods}")

    # The real tree must currently be clean.
    real = run(REPO)
    if real:
        failures.append("real tree not clean: " + "; ".join(real))

    for f in failures:
        print(f"check_docs self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print("check_docs self-test OK")
    return 1 if failures else 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    errors = run(REPO)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} doc drift issue(s)", file=sys.stderr)
        return 1
    print("check_docs: docs and binaries agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
