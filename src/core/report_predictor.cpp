#include "core/report_predictor.h"

#include <algorithm>
#include <cmath>

namespace p5g::core {

ReportPredictor::ReportPredictor(std::vector<ran::EventConfig> event_configs,
                                 Config config)
    : configs_(std::move(event_configs)), config_(config) {
  mirrors_.reserve(configs_.size());
  for (const ran::EventConfig& c : configs_) mirrors_.emplace_back(c);
}

bool ReportPredictor::mirror_reported(EventKey key) const {
  for (const ran::EventMonitor& m : mirrors_) {
    if (m.config().type == key.type && m.config().scope == key.scope) {
      return m.reported();
    }
  }
  return false;
}

ran::MeasSnapshot ReportPredictor::actual_snapshot(const ran::EventConfig& cfg,
                                                   const PrognosInput& input) const {
  ran::MeasSnapshot snap;
  const int serving_pci = cfg.scope == ran::MeasScope::kServingNr
                              ? input.nr_serving_pci
                              : input.lte_serving_pci;
  if (serving_pci < 0) return snap;
  int serving_tower = -1;
  for (const PrognosInput::CellObs& o : input.observed) {
    if (o.pci == serving_pci &&
        radio::band_rat(o.band) == (cfg.scope == ran::MeasScope::kServingNr
                                        ? radio::Rat::kNr
                                        : radio::Rat::kLte)) {
      snap.serving_rsrp = o.rsrp;
      snap.serving_valid = true;
      serving_tower = o.tower_id;
      break;
    }
  }
  for (const PrognosInput::CellObs& o : input.observed) {
    if (radio::band_rat(o.band) != cfg.neighbor_rat) continue;
    if (o.pci == serving_pci) continue;
    if (cfg.type == ran::EventType::kA3 && cfg.scope == ran::MeasScope::kServingNr &&
        config_.arch == ran::Arch::kNsa && o.tower_id != serving_tower) {
      continue;  // NSA NR-A3: same-gNB candidates only
    }
    if (cfg.type == ran::EventType::kB1 && cfg.scope == ran::MeasScope::kServingNr &&
        serving_tower >= 0 && o.tower_id == serving_tower) {
      continue;  // NR-B1: different-gNB candidates only
    }
    if (!snap.neighbor_valid || o.rsrp > snap.best_neighbor_rsrp) {
      snap.best_neighbor_rsrp = o.rsrp;
      snap.best_neighbor_pci = o.pci;
      snap.neighbor_valid = true;
    }
  }
  return snap;
}

const ReportPredictor::PerCell* ReportPredictor::find_cell(int pci) const {
  const auto it = cells_.find(pci);
  return it == cells_.end() ? nullptr : &it->second;
}

ReportPredictor::NeighborForecast ReportPredictor::best_neighbor(
    radio::Rat rat, int exclude_pci, int same_tower, int exclude_tower,
    std::size_t steps) const {
  NeighborForecast out;
  for (const auto& [pci, cell] : cells_) {
    if (pci == exclude_pci) continue;
    if (radio::band_rat(cell.band) != rat) continue;
    if (same_tower >= 0 && cell.tower_id != same_tower) continue;
    if (exclude_tower >= 0 && cell.tower_id == exclude_tower) continue;
    if (!cell.forecaster.ready()) continue;
    const double v = cell.forecaster.forecast(steps);
    if (!out.valid || v > out.rsrp) {
      out.valid = true;
      out.rsrp = v;
      out.sigma = cell.forecaster.residual_sigma();
    }
  }
  return out;
}

double ReportPredictor::forecast_rsrp(int pci, std::size_t steps) const {
  const PerCell* c = find_cell(pci);
  return c && c->forecaster.ready() ? c->forecaster.forecast(steps) : -140.0;
}

std::vector<PredictedReport> ReportPredictor::update(const PrognosInput& input) {
  const auto history_samples =
      static_cast<std::size_t>(config_.history_window.v * config_.tick_hz.v);

  // 1. Ingest observations.
  for (const PrognosInput::CellObs& o : input.observed) {
    auto [it, inserted] = cells_.try_emplace(
        o.pci, PerCell{ml::SignalForecaster(history_samples, config_.smooth_radius),
                       o.band, o.tower_id, input.time});
    it->second.forecaster.add(o.rsrp.v);
    it->second.band = o.band;
    it->second.tower_id = o.tower_id;
    it->second.last_seen = input.time;
  }
  // 2. Forget cells that left the neighborhood.
  std::erase_if(cells_, [&](const auto& kv) {
    return input.time - kv.second.last_seen > 3.0_s;
  });
  // 3. Expire outstanding predictions.
  std::erase_if(outstanding_, [&](const PredictedReport& p) {
    return p.expected_time < input.time;
  });

  // 3b. Advance the mirrored UE monitors on the actual observations so the
  // predictor knows which events are currently latched, and reset them when
  // a HO command reconfigures measurements.
  if (!input.ho_commands.empty()) {
    for (ran::EventMonitor& m : mirrors_) m.reset();
    outstanding_.clear();
  }
  for (ran::EventMonitor& m : mirrors_) {
    // Mirror the network's gating: the SCG-addition B1 is deconfigured
    // while an SCG is attached.
    if (m.config().type == ran::EventType::kB1 &&
        m.config().scope == ran::MeasScope::kServingLte &&
        input.nr_serving_pci >= 0) {
      m.reset();
      continue;
    }
    m.evaluate(input.time, actual_snapshot(m.config(), input));
  }

  // 4. Evaluate every configured event on the forecasted trajectories.
  std::vector<PredictedReport> fresh;
  const double dt = 1.0 / config_.tick_hz.v;
  const auto window = static_cast<std::size_t>(config_.prediction_window.v * config_.tick_hz.v);

  for (const ran::EventConfig& base_cfg : configs_) {
    ran::EventConfig cfg = base_cfg;
    if (cfg.type == ran::EventType::kB1 && cfg.scope == ran::MeasScope::kServingLte &&
        input.nr_serving_pci >= 0) {
      continue;  // SCG already attached; B1 is deconfigured
    }
    const int serving_pci = cfg.scope == ran::MeasScope::kServingNr
                                ? input.nr_serving_pci
                                : input.lte_serving_pci;
    if (serving_pci < 0) continue;
    const PerCell* serving = find_cell(serving_pci);
    if (!serving || !serving->forecaster.ready()) continue;
    const double serving_sigma = serving->forecaster.residual_sigma();
    const Db base_hysteresis = cfg.hysteresis;

    const EventKey key{cfg.type, cfg.scope};
    const bool already_outstanding =
        std::any_of(outstanding_.begin(), outstanding_.end(),
                    [&](const PredictedReport& p) { return p.key == key; });
    if (already_outstanding) continue;
    // The real monitor is latched: the event already fired in this phase
    // and cannot fire again until its leaving condition clears.
    if (mirror_reported(key)) continue;

    const auto ttt_samples = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.ttt_ms.v / 1000.0 * config_.tick_hz.v));

    // Find the earliest onset where the condition holds for TTT samples.
    std::size_t held = 0;
    std::size_t fire_step = 0;
    for (std::size_t s = 1; s <= window && fire_step == 0; ++s) {
      ran::MeasSnapshot snap;
      snap.serving_rsrp = Dbm{serving->forecaster.forecast(s)};
      snap.serving_valid = true;

      NeighborForecast nbr;
      if (cfg.type == ran::EventType::kA3 && cfg.scope == ran::MeasScope::kServingNr &&
          config_.arch == ran::Arch::kNsa) {
        nbr = best_neighbor(cfg.neighbor_rat, serving_pci, serving->tower_id, -1, s);
      } else if (cfg.type == ran::EventType::kB1 &&
                 cfg.scope == ran::MeasScope::kServingNr) {
        nbr = best_neighbor(cfg.neighbor_rat, serving_pci, -1, serving->tower_id, s);
      } else {
        nbr = best_neighbor(cfg.neighbor_rat, serving_pci, -1, -1, s);
      }
      snap.neighbor_valid = nbr.valid;
      snap.best_neighbor_rsrp = Dbm{nbr.rsrp};

      // Adaptive margin: relative (two-signal) conditions carry the noise
      // of both fits.
      const bool relative = cfg.type == ran::EventType::kA3 ||
                            cfg.type == ran::EventType::kA5 ||
                            cfg.type == ran::EventType::kA6;
      const double noise =
          relative && nbr.valid
              ? std::sqrt(serving_sigma * serving_sigma + nbr.sigma * nbr.sigma)
              : serving_sigma;
      cfg.hysteresis = base_hysteresis +
                       std::clamp(Db{config_.margin_sigma_mult * noise},
                                  config_.margin_min_db, config_.margin_max_db);

      if (ran::EventMonitor::entering_condition(cfg, snap)) {
        if (++held >= ttt_samples) fire_step = s;
      } else {
        held = 0;
      }
    }
    if (fire_step > 0) {
      PredictedReport p;
      p.key = key;
      p.predicted_at = input.time;
      p.expected_time = input.time + Seconds{static_cast<double>(fire_step) * dt};
      fresh.push_back(p);
      outstanding_.push_back(p);
    }
  }
  return fresh;
}

}  // namespace p5g::core
