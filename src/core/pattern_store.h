// Pattern persistence: serialize a learner's pattern set so a model learned
// in one region/carrier can bootstrap another session (§7.1's
// "transferable scheme" design goal — transfer models between areas with
// similar deployment strategies instead of re-learning from scratch).
#pragma once

#include <string>
#include <vector>

#include "core/prognos_types.h"

namespace p5g::core {

// Compact single-line-per-pattern text format:
//   <ho-name> <support> <key>[,<key>...]
// where key = <event-name>@<LTE|NR>. Example:
//   SCGC 41 B1@NR,A2@NR
std::string serialize_patterns(const std::vector<Pattern>& patterns);
std::vector<Pattern> deserialize_patterns(const std::string& text);

// File convenience wrappers. save returns false on IO failure; load returns
// an empty vector for a missing/corrupt file (callers treat that as a cold
// start).
bool save_patterns(const std::vector<Pattern>& patterns, const std::string& path);
std::vector<Pattern> load_patterns(const std::string& path);

}  // namespace p5g::core
