#include "core/pattern_store.h"

#include <fstream>
#include <sstream>

namespace p5g::core {
namespace {

const char* scope_name(ran::MeasScope s) {
  return s == ran::MeasScope::kServingNr ? "NR" : "LTE";
}

bool parse_ho(const std::string& s, ran::HoType& out) {
  for (ran::HoType t : {ran::HoType::kLteh, ran::HoType::kScga, ran::HoType::kScgr,
                        ran::HoType::kScgm, ran::HoType::kScgc, ran::HoType::kMnbh,
                        ran::HoType::kMcgh}) {
    if (s == ran::ho_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

bool parse_event(const std::string& s, ran::EventType& out) {
  for (ran::EventType t : {ran::EventType::kA1, ran::EventType::kA2, ran::EventType::kA3,
                           ran::EventType::kA4, ran::EventType::kA5, ran::EventType::kA6,
                           ran::EventType::kB1}) {
    if (s == ran::event_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

bool parse_key(const std::string& s, EventKey& out) {
  const auto at = s.find('@');
  if (at == std::string::npos) return false;
  if (!parse_event(s.substr(0, at), out.type)) return false;
  const std::string scope = s.substr(at + 1);
  if (scope == "NR") {
    out.scope = ran::MeasScope::kServingNr;
  } else if (scope == "LTE") {
    out.scope = ran::MeasScope::kServingLte;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string serialize_patterns(const std::vector<Pattern>& patterns) {
  std::ostringstream os;
  os << "# prognos-patterns v1\n";
  for (const Pattern& p : patterns) {
    os << ran::ho_name(p.ho) << ' ' << p.support << ' ';
    for (std::size_t i = 0; i < p.sequence.size(); ++i) {
      if (i) os << ',';
      os << ran::event_name(p.sequence[i].type) << '@' << scope_name(p.sequence[i].scope);
    }
    os << '\n';
  }
  return os.str();
}

std::vector<Pattern> deserialize_patterns(const std::string& text) {
  std::vector<Pattern> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string ho_str, seq_str;
    int support = 0;
    if (!(ls >> ho_str >> support >> seq_str)) continue;

    Pattern p;
    if (!parse_ho(ho_str, p.ho) || support <= 0) continue;
    p.support = support;
    bool valid = true;
    std::istringstream ss(seq_str);
    std::string key_str;
    while (std::getline(ss, key_str, ',')) {
      EventKey key;
      if (!parse_key(key_str, key)) {
        valid = false;
        break;
      }
      p.sequence.push_back(key);
    }
    if (valid && !p.sequence.empty()) out.push_back(std::move(p));
  }
  return out;
}

bool save_patterns(const std::vector<Pattern>& patterns, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << serialize_patterns(patterns);
  return static_cast<bool>(f);
}

std::vector<Pattern> load_patterns(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {};
  std::stringstream buf;
  buf << f.rdbuf();
  return deserialize_patterns(buf.str());
}

}  // namespace p5g::core
