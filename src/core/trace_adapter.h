// Adapter: feed recorded traces into Prognos (trace-driven emulation, §7.3).
#pragma once

#include "core/prognos_types.h"
#include "trace/trace.h"

namespace p5g::core {

// Converts one trace tick into the UE-visible Prognos input.
PrognosInput from_tick(const trace::TickRecord& tick);

}  // namespace p5g::core
