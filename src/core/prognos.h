// Prognos (§7): the two-stage HO prediction pipeline.
//
//   RRS stream ──> ReportPredictor ──predicted MRs──┐
//   MR stream  ──────────────────────actual MRs────┼──> HandoverPredictor
//   HO commands ──> DecisionLearner ──patterns──────┘        │
//                                                            v
//                                       predicted HO type + ho_score
//
// No offline training: the decision learner runs incrementally and the
// report predictor is a closed-form forecaster. Works with any
// 3GPP-compliant deployment because its only inputs are UE-visible.
#pragma once

#include <map>

#include "core/decision_learner.h"
#include "core/prognos_types.h"
#include "core/report_predictor.h"

namespace p5g::core {

// Expected post/pre throughput ratio per HO type (the ho_score table),
// empirically calibrated from the Fig. 16-style phase analysis.
std::map<ran::HoType, double> default_ho_scores();

class Prognos {
 public:
  struct Config {
    ReportPredictor::Config report{};
    DecisionLearner::Config learner{};
    bool use_report_predictor = true;  // Fig. 18 ablation
    bool sanity_checks = true;         // RAT-context action-space reduction
    // Similarity weights (support, length, freshness), §7.2.
    // Length dominates: a longer (more specific) matching pattern beats a
    // shorter one regardless of support, mirroring prefix-projection order.
    double w_support = 1.0;
    double w_length = 2.5;
    double w_freshness = 0.5;
    long freshness_scale = 50;  // phases over which freshness decays
    // A pattern participates in matching only once it has been confirmed
    // this many times (startup predictions stay conservative).
    int min_support = 5;
    // A prediction is emitted only after the same HO type matched this many
    // consecutive ticks (debounces single-tick forecast noise).
    int confirm_ticks = 6;
    // Once emitted, a prediction is held this long (unless a HO command
    // arrives) so momentary forecast dropouts do not flap the output.
    Seconds prediction_hold{1.0};
  };

  Prognos(std::vector<ran::EventConfig> event_configs, Config config);

  // Feed one tick; returns the current prediction for the upcoming window.
  PrognosPrediction tick(const PrognosInput& input);

  // Seed the learner (§9 startup mitigation).
  void bootstrap_with_frequent_patterns();
  // Seed the learner with transferred patterns (e.g. from pattern_store.h —
  // a model learned in a region with a similar deployment strategy).
  void bootstrap_with(const std::vector<Pattern>& patterns);

  const DecisionLearner& learner() const { return learner_; }

  // Override the ho_score table (e.g. re-calibrated from local traces).
  void set_ho_scores(std::map<ran::HoType, double> scores);

 private:
  bool sanity_ok(ran::HoType ho, const PrognosInput& input) const;
  double similarity(const Pattern& p) const;
  // Context-aware SCGR <-> SCGC adjudication: release and change share MR
  // suffixes (an [A2] suffix is registered for both), but the carrier picks
  // SCGC exactly when an NR-B1 was reported in the same phase.
  ran::HoType adjudicate(ran::HoType ho, const std::vector<EventKey>& candidate,
                         const PrognosInput& input) const;

  Config config_;
  std::vector<ran::EventConfig> configs_;
  ReportPredictor report_predictor_;
  DecisionLearner learner_;
  std::map<ran::HoType, double> ho_scores_;
  std::vector<PredictedReport> pending_predicted_;
  PrognosPrediction held_{};
  Seconds held_until_{-1.0};
  std::optional<ran::HoType> last_match_;
  int consecutive_matches_ = 0;
};

}  // namespace p5g::core
