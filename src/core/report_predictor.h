// Report predictor (§7.2): forecasts the measurement reports the UE will
// send in the next prediction window.
//
// Per visible cell it keeps a light-weight signal forecaster (triangular-
// kernel smoothing + linear extrapolation over the history window). Each
// tick it evaluates the serving cell's configured event triggers against
// the *predicted* serving/neighbor RRS trajectories; if a trigger condition
// would hold for its time-to-trigger inside the prediction window, the
// corresponding MR is emitted as a prediction (with its lead time).
#pragma once

#include <map>
#include <vector>

#include "core/prognos_types.h"
#include "ml/regression.h"
#include "ran/deployment.h"

namespace p5g::core {

struct PredictedReport {
  EventKey key{};
  Seconds predicted_at{0.0};   // when the prediction was made
  Seconds expected_time{0.0};  // when the MR is expected to be raised
};

class ReportPredictor {
 public:
  struct Config {
    Hertz tick_hz{20.0};
    Seconds history_window{1.0};     // paper's evaluation uses 1 s
    Seconds prediction_window{1.0};
    std::size_t smooth_radius = 4;    // triangular kernel half-width
    // Extra hysteresis applied when evaluating *predicted* trajectories, so
    // marginal forecasts do not generate spurious report predictions. The
    // margin adapts to how noisy the serving signal currently is:
    //   margin = clamp(margin_sigma_mult * residual_sigma, min, max)
    double margin_sigma_mult = 2.4;
    Db margin_min_db{1.0};
    Db margin_max_db{3.5};
    // NSA vs SA changes neighbor-candidate semantics for NR-A3 (same-gNB
    // beams in NSA, any gNB in SA).
    ran::Arch arch = ran::Arch::kNsa;
  };

  ReportPredictor(std::vector<ran::EventConfig> event_configs, Config config);

  // Feed this tick's observations; returns MRs predicted to fire within the
  // prediction window (deduplicated: an event already predicted and still
  // pending is not re-emitted).
  std::vector<PredictedReport> update(const PrognosInput& input);

  // Forecast RSRP of a pci `steps` ahead (exposed for tests/analysis).
  double forecast_rsrp(int pci, std::size_t steps) const;

  // Latch state of the mirrored UE event monitor for (type, scope); used by
  // Prognos for context checks.
  bool mirror_reported(EventKey key) const;

 private:
  struct PerCell {
    ml::SignalForecaster forecaster;
    radio::Band band{};
    int tower_id = -1;
    Seconds last_seen{0.0};
  };

  // Builds the actual-measurement snapshot a config's monitor would see.
  ran::MeasSnapshot actual_snapshot(const ran::EventConfig& cfg,
                                    const PrognosInput& input) const;

  const PerCell* find_cell(int pci) const;
  // Strongest forecasted neighbor at `steps` ahead, by RAT, with tower
  // filtering (same semantics as the network-side snapshot construction).
  struct NeighborForecast {
    bool valid = false;
    double rsrp = -140.0;
    double sigma = 0.0;  // residual noise of the chosen neighbor's fit
  };
  NeighborForecast best_neighbor(radio::Rat rat, int exclude_pci, int same_tower,
                                 int exclude_tower, std::size_t steps) const;

  std::vector<ran::EventConfig> configs_;
  Config config_;
  std::map<int, PerCell> cells_;  // by pci
  // Events already predicted whose expected time has not yet passed.
  std::vector<PredictedReport> outstanding_;
  // Mirrors of the UE's real event monitors, fed with actual observations.
  // A latched mirror means the event has already been reported in this
  // phase, so predicting it again would be wrong.
  std::vector<ran::EventMonitor> mirrors_;
};

}  // namespace p5g::core
