// Shared types of the Prognos pipeline (§7.2, Fig. 17).
#pragma once

#include <optional>
#include <vector>

#include "common/units.h"
#include "radio/band.h"
#include "ran/events.h"
#include "ran/handover.h"
#include "ran/rrc.h"

namespace p5g::core {

// What the UE can observe per tick without carrier cooperation: physical-
// layer RRS values per visible cell, RRC-layer measurement reports it sent,
// and the HO commands it received (type visible from the reconfiguration
// contents).
struct PrognosInput {
  Seconds time{0.0};

  struct CellObs {
    int pci = -1;
    int tower_id = -1;  // grouping hint (same-gNB detection); -1 if unknown
    radio::Band band{};
    Dbm rsrp{-140.0};
  };
  std::vector<CellObs> observed;

  int lte_serving_pci = -1;  // -1 when not attached
  int nr_serving_pci = -1;

  std::vector<ran::MeasurementReport> reports;  // MRs actually sent this tick
  // HO commands received this tick (decision_time is when the command's
  // procedure started; used to close learning phases).
  std::vector<ran::HandoverRecord> ho_commands;
};

// An event identity inside a pattern: which event on which leg.
struct EventKey {
  ran::EventType type{};
  ran::MeasScope scope{};

  friend bool operator==(EventKey a, EventKey b) {
    return a.type == b.type && a.scope == b.scope;
  }
  friend auto operator<=>(EventKey a, EventKey b) = default;
};

// A learned decision pattern: MR sequence -> HO type.
struct Pattern {
  std::vector<EventKey> sequence;
  ran::HoType ho{};
  int support = 1;            // times observed
  long last_seen_phase = 0;   // phase counter at last observation
};

struct PrognosPrediction {
  // Predicted HO type for the upcoming prediction window; empty = "no HO".
  std::optional<ran::HoType> ho;
  // Expected throughput-change ratio in (0, inf); 1 = no change (§7.2).
  double ho_score = 1.0;
  // How far ahead of the (predicted) decision instant we are, in seconds.
  Seconds lead_time{0.0};
  // True when the triggering MRs were *predicted* by the report predictor
  // rather than already observed (Fig. 18's lead-time improvement).
  bool from_predicted_reports = false;
};

}  // namespace p5g::core
