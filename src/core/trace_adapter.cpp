#include "core/trace_adapter.h"

namespace p5g::core {

PrognosInput from_tick(const trace::TickRecord& tick) {
  PrognosInput in;
  in.time = tick.time;
  in.lte_serving_pci = tick.lte_pci;
  in.nr_serving_pci = tick.nr_attached ? tick.nr_pci : -1;
  in.observed.reserve(tick.observed.size());
  for (const trace::ObservedCell& o : tick.observed) {
    in.observed.push_back({o.pci, o.tower_id, o.band, o.rrs.rsrp});
  }
  in.reports = tick.reports;
  // The UE sees the RRCReconfiguration at the end of T1, not the (network-
  // internal) decision instant. Aborted procedures are dropped: the UE
  // learns the failure moments later (T304 expiry / SCGFailure) and discards
  // the phase, so failed HOs never poison the learned report->HO patterns.
  for (const ran::HandoverRecord& h : tick.ho_commands) {
    if (h.succeeded()) in.ho_commands.push_back(h);
  }
  return in;
}

}  // namespace p5g::core
