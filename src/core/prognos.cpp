#include "core/prognos.h"

#include <algorithm>
#include <cmath>

namespace p5g::core {

std::map<ran::HoType, double> default_ho_scores() {
  // Median post/pre throughput ratios (Fig. 16 analogue): SCGA boosts
  // capacity massively (4G -> 5G), SCGR collapses it, SCGM improves it,
  // SCGC slightly degrades it (§6.2's -14 %), anchor HOs are near-neutral.
  return {
      {ran::HoType::kScga, 17.0}, {ran::HoType::kScgr, 0.14},
      {ran::HoType::kScgm, 1.43}, {ran::HoType::kScgc, 0.86},
      {ran::HoType::kLteh, 0.96}, {ran::HoType::kMnbh, 0.90},
      {ran::HoType::kMcgh, 1.02},
  };
}

Prognos::Prognos(std::vector<ran::EventConfig> event_configs, Config config)
    : config_(config),
      configs_(event_configs),
      report_predictor_(std::move(event_configs), config.report),
      learner_(config.learner),
      ho_scores_(default_ho_scores()) {}

void Prognos::bootstrap_with_frequent_patterns() {
  learner_.bootstrap(frequent_bootstrap_patterns());
}

void Prognos::bootstrap_with(const std::vector<Pattern>& patterns) {
  learner_.bootstrap(patterns);
}

void Prognos::set_ho_scores(std::map<ran::HoType, double> scores) {
  ho_scores_ = std::move(scores);
}

bool Prognos::sanity_ok(ran::HoType ho, const PrognosInput& input) const {
  if (!config_.sanity_checks) return true;
  const bool lte = input.lte_serving_pci >= 0;
  const bool nr = input.nr_serving_pci >= 0;
  switch (ho) {
    case ran::HoType::kScga: return lte && !nr;  // cannot add an attached SCG
    case ran::HoType::kScgr:
    case ran::HoType::kScgm:
    case ran::HoType::kScgc: return nr;          // need an SCG to modify
    case ran::HoType::kMnbh: return lte && nr;   // anchor change with SCG
    case ran::HoType::kLteh: return lte && !nr;  // anchor change, no SCG
    case ran::HoType::kMcgh: return nr && !lte;  // SA only
  }
  return true;
}

ran::HoType Prognos::adjudicate(ran::HoType ho, const std::vector<EventKey>& candidate,
                                const PrognosInput& input) const {
  if (ho != ran::HoType::kScgr && ho != ran::HoType::kScgc) return ho;
  // SCGC exactly when a different-gNB candidate is available: either a B1
  // was reported in this phase, or a neighbor currently sits above the B1
  // threshold (UE-visible context, mirroring the network's choice).
  const bool b1_in_phase =
      std::any_of(candidate.begin(), candidate.end(), [](EventKey k) {
        return k.type == ran::EventType::kB1 && k.scope == ran::MeasScope::kServingNr;
      });
  if (b1_in_phase) return ran::HoType::kScgc;

  Dbm b1_threshold{0.0};
  bool have_b1 = false;
  for (const ran::EventConfig& c : configs_) {
    if (c.type == ran::EventType::kB1 && c.scope == ran::MeasScope::kServingNr) {
      b1_threshold = c.threshold1;
      have_b1 = true;
      break;
    }
  }
  if (!have_b1) return ran::HoType::kScgr;
  int serving_tower = -1;
  for (const PrognosInput::CellObs& o : input.observed) {
    if (o.pci == input.nr_serving_pci && radio::band_rat(o.band) == radio::Rat::kNr) {
      serving_tower = o.tower_id;
      break;
    }
  }
  for (const PrognosInput::CellObs& o : input.observed) {
    if (radio::band_rat(o.band) != radio::Rat::kNr) continue;
    if (o.pci == input.nr_serving_pci) continue;
    if (serving_tower >= 0 && o.tower_id == serving_tower) continue;
    if (o.rsrp > b1_threshold) return ran::HoType::kScgc;
  }
  return ran::HoType::kScgr;
}

double Prognos::similarity(const Pattern& p) const {
  const double freshness =
      std::exp(-static_cast<double>(learner_.phase_count() - p.last_seen_phase) /
               static_cast<double>(config_.freshness_scale));
  return config_.w_support * std::log1p(static_cast<double>(p.support)) +
         config_.w_length * static_cast<double>(p.sequence.size()) +
         config_.w_freshness * freshness;
}

PrognosPrediction Prognos::tick(const PrognosInput& input) {
  // Stage 1: learn from the actual control-plane stream.
  learner_.observe(input);

  // Stage 2: predicted MRs (optional).
  if (config_.use_report_predictor) {
    const std::vector<PredictedReport> fresh = report_predictor_.update(input);
    pending_predicted_.insert(pending_predicted_.end(), fresh.begin(), fresh.end());
  }
  // Expire predictions and drop the ones that materialized as actual MRs.
  std::erase_if(pending_predicted_, [&](const PredictedReport& p) {
    if (p.expected_time + 0.25_s < input.time) return true;
    return std::any_of(input.reports.begin(), input.reports.end(),
                       [&](const ran::MeasurementReport& r) {
                         return EventKey{r.event, r.scope} == p.key;
                       });
  });
  // A HO command closes the phase: clear speculative state too.
  if (!input.ho_commands.empty()) {
    pending_predicted_.clear();
    held_until_ = Seconds{-1.0};
  }

  // Stage 3: match the (actual + predicted) sequence against the patterns.
  std::vector<EventKey> candidate = learner_.open_phase();
  const std::size_t actual_len = candidate.size();
  std::vector<PredictedReport> sorted = pending_predicted_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PredictedReport& a, const PredictedReport& b) {
              return a.expected_time < b.expected_time;
            });
  Seconds last_predicted_time = input.time;
  for (const PredictedReport& p : sorted) {
    candidate.push_back(p.key);
    last_predicted_time = p.expected_time;
  }

  PrognosPrediction out;
  if (candidate.empty()) {
    // Nothing to match; keep any recent prediction alive through momentary
    // forecast dropouts.
    if (input.time < held_until_) return held_;
    return out;  // "no HO"
  }

  const Pattern* best = nullptr;
  double best_score = 0.0;
  bool best_uses_predicted = false;
  for (const Pattern& p : learner_.patterns()) {
    if (p.support < config_.min_support) continue;
    const std::size_t len = p.sequence.size();
    if (len == 0 || len > candidate.size()) continue;
    if (!std::equal(p.sequence.begin(), p.sequence.end(),
                    candidate.end() - static_cast<long>(len))) {
      continue;
    }
    if (!sanity_ok(p.ho, input)) continue;
    const double score = similarity(p);
    if (!best || score > best_score) {
      best = &p;
      best_score = score;
      // Did the match need any element beyond the actual MRs?
      best_uses_predicted = candidate.size() > actual_len &&
                            len > 0;  // tail elements are predicted ones
      if (candidate.size() - len >= actual_len) {
        // Pattern lies entirely in the predicted tail.
        best_uses_predicted = true;
      } else if (candidate.size() == actual_len) {
        best_uses_predicted = false;
      }
    }
  }
  if (!best) {
    last_match_.reset();
    consecutive_matches_ = 0;
    if (input.time < held_until_) return held_;
    return out;
  }

  // Context adjudication + debounce. Matches grounded purely in ACTUAL
  // measurement reports are certain (the MR really fired); only forecast-
  // driven matches need the confirmation debounce.
  const ran::HoType predicted_type = adjudicate(best->ho, candidate, input);
  if (last_match_ && *last_match_ == predicted_type) {
    ++consecutive_matches_;
  } else {
    last_match_ = predicted_type;
    consecutive_matches_ = 1;
  }
  const bool match_in_actual = best->sequence.size() <= actual_len &&
                               std::equal(best->sequence.begin(), best->sequence.end(),
                                          candidate.begin() + static_cast<long>(
                                              actual_len - best->sequence.size()));
  if (!match_in_actual && consecutive_matches_ < config_.confirm_ticks) {
    if (input.time < held_until_) return held_;
    return out;
  }

  out.ho = predicted_type;
  const auto it = ho_scores_.find(predicted_type);
  out.ho_score = it == ho_scores_.end() ? 1.0 : it->second;
  out.from_predicted_reports = best_uses_predicted && candidate.size() > actual_len;
  out.lead_time = out.from_predicted_reports
                      ? std::max(0.0_s, last_predicted_time - input.time)
                      : 0.0_s;
  held_ = out;
  held_until_ = input.time + config_.prediction_hold;
  return out;
}

}  // namespace p5g::core
