// Decision learner (§7.2): learns the carrier's policy-based HO logic as
// sequential patterns, online.
//
// The RRC stream is split into phases — each phase is the MR sequence
// preceding one HO command. An online variant of prefixSpan registers every
// suffix of the phase's MR sequence as a pattern for that HO type
// (suffixes, because the most recent reports carry the decision); support
// counts accumulate, and patterns not refreshed within the freshness
// threshold are evicted so the pattern set tracks policy changes without
// growing unboundedly.
#pragma once

#include <vector>

#include "core/prognos_types.h"

namespace p5g::core {

class DecisionLearner {
 public:
  struct Config {
    std::size_t max_pattern_length = 4;
    // Evict patterns not seen for this many phases.
    long freshness_threshold = 200;
    // Hard cap on the pattern store (evicts stalest first).
    std::size_t max_patterns = 256;
    bool eviction_enabled = true;  // ablation knob
    // Reports older than this no longer belong to the open phase (carrier
    // decision logic correlates reports over a bounded window).
    Seconds phase_memory{5.0};
  };

  DecisionLearner();  // default configuration
  explicit DecisionLearner(Config config) : config_(config) {}

  // Feed one tick's observed MRs and HO commands. Returns true when a phase
  // was closed (a HO command consumed the accumulated MRs).
  bool observe(const PrognosInput& input);

  // Seed the store with known-frequent patterns (§9 / Fig. 15 bootstrap).
  void bootstrap(const std::vector<Pattern>& patterns);

  const std::vector<Pattern>& patterns() const { return patterns_; }
  long phase_count() const { return phase_count_; }
  long patterns_learned_total() const { return learned_total_; }
  long patterns_evicted_total() const { return evicted_total_; }

  // The open (not yet closed) MR sequence of the current phase.
  std::vector<EventKey> open_phase() const;

 private:
  void register_sequence(const std::vector<EventKey>& seq, ran::HoType ho);
  void evict_stale();

  struct TimedKey {
    EventKey key;
    Seconds time;
  };

  Config config_;
  std::vector<Pattern> patterns_;
  std::vector<TimedKey> open_phase_;
  long phase_count_ = 0;
  long learned_total_ = 0;
  long evicted_total_ = 0;
};

inline DecisionLearner::DecisionLearner() : DecisionLearner(Config{}) {}

// The empirically most frequent pattern per HO type (what our simulated
// carriers — and, per the paper, real ones — converge to). Used for
// bootstrapping.
std::vector<Pattern> frequent_bootstrap_patterns();

}  // namespace p5g::core
