#include "core/decision_learner.h"

#include <algorithm>

namespace p5g::core {

std::vector<EventKey> DecisionLearner::open_phase() const {
  std::vector<EventKey> out;
  out.reserve(open_phase_.size());
  for (const TimedKey& tk : open_phase_) out.push_back(tk.key);
  return out;
}

bool DecisionLearner::observe(const PrognosInput& input) {
  // Age out reports beyond the policy correlation window.
  std::erase_if(open_phase_, [&](const TimedKey& tk) {
    return input.time - tk.time > config_.phase_memory;
  });
  for (const ran::MeasurementReport& r : input.reports) {
    open_phase_.push_back({{r.event, r.scope}, input.time});
    // Keep only the window that can still matter for matching.
    if (open_phase_.size() > 2 * config_.max_pattern_length) {
      open_phase_.erase(open_phase_.begin());
    }
  }

  bool closed = false;
  for (const ran::HandoverRecord& ho : input.ho_commands) {
    ++phase_count_;
    if (!open_phase_.empty()) {
      // Register every suffix up to max_pattern_length (online prefixSpan:
      // recent reports are the discriminative prefix of the reversed list).
      const std::size_t longest =
          std::min(open_phase_.size(), config_.max_pattern_length);
      for (std::size_t len = 1; len <= longest; ++len) {
        std::vector<EventKey> seq;
        seq.reserve(len);
        for (std::size_t i = open_phase_.size() - len; i < open_phase_.size(); ++i) {
          seq.push_back(open_phase_[i].key);
        }
        register_sequence(seq, ho.type);
      }
    }
    open_phase_.clear();
    closed = true;
  }
  if (closed && config_.eviction_enabled) evict_stale();
  return closed;
}

void DecisionLearner::register_sequence(const std::vector<EventKey>& seq,
                                        ran::HoType ho) {
  for (Pattern& p : patterns_) {
    if (p.ho == ho && p.sequence == seq) {
      ++p.support;
      p.last_seen_phase = phase_count_;
      return;
    }
  }
  Pattern p;
  p.sequence = seq;
  p.ho = ho;
  p.support = 1;
  p.last_seen_phase = phase_count_;
  patterns_.push_back(std::move(p));
  ++learned_total_;
}

void DecisionLearner::evict_stale() {
  const long before = static_cast<long>(patterns_.size());
  std::erase_if(patterns_, [&](const Pattern& p) {
    return phase_count_ - p.last_seen_phase > config_.freshness_threshold;
  });
  if (patterns_.size() > config_.max_patterns) {
    std::sort(patterns_.begin(), patterns_.end(), [](const Pattern& a, const Pattern& b) {
      return a.last_seen_phase > b.last_seen_phase;
    });
    patterns_.resize(config_.max_patterns);
  }
  evicted_total_ += before - static_cast<long>(patterns_.size());
}

void DecisionLearner::bootstrap(const std::vector<Pattern>& patterns) {
  for (const Pattern& p : patterns) register_sequence(p.sequence, p.ho);
  // Give bootstrapped patterns a head-start support so they win matches
  // until real observations accumulate.
  for (Pattern& p : patterns_) p.support = std::max(p.support, 5);
  learned_total_ = 0;  // bootstrap does not count as learning
}

std::vector<Pattern> frequent_bootstrap_patterns() {
  using ran::EventType;
  using ran::MeasScope;
  std::vector<Pattern> out;
  auto add = [&](std::vector<EventKey> seq, ran::HoType ho) {
    Pattern p;
    p.sequence = std::move(seq);
    p.ho = ho;
    out.push_back(std::move(p));
  };
  add({{EventType::kA3, MeasScope::kServingLte}}, ran::HoType::kLteh);
  add({{EventType::kA3, MeasScope::kServingLte}}, ran::HoType::kMnbh);
  add({{EventType::kB1, MeasScope::kServingLte}}, ran::HoType::kScga);
  add({{EventType::kA2, MeasScope::kServingNr}}, ran::HoType::kScgr);
  add({{EventType::kB1, MeasScope::kServingNr}, {EventType::kA2, MeasScope::kServingNr}},
      ran::HoType::kScgc);
  add({{EventType::kA2, MeasScope::kServingNr}, {EventType::kB1, MeasScope::kServingNr}},
      ran::HoType::kScgc);
  add({{EventType::kA3, MeasScope::kServingNr}}, ran::HoType::kScgm);
  add({{EventType::kA3, MeasScope::kServingNr}}, ran::HoType::kMcgh);
  return out;
}

}  // namespace p5g::core
