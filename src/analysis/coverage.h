// Coverage estimation (§6.1): effective cell footprint = the continuous
// distance a UE travels while connected to the same PCI.
//
// Two variants reproduce Fig. 11's comparison:
//  * actual   — the dwell segment ends whenever the leg detaches (e.g. the
//               SCG is released by an NSA-4C anchor HO) or the PCI changes.
//  * ideal    — "coverage w/o NSA": segments with the same PCI separated by
//               detach gaps are merged, i.e. coverage as long as the same
//               gNB PCI is observed.
#pragma once

#include <vector>

#include "common/units.h"
#include "trace/trace.h"

namespace p5g::analysis {

enum class DwellMode { kActual, kIdealSamePci };

// NR-leg dwell distances (metres per continuous same-PCI stretch).
std::vector<double> nr_dwell_distances(const trace::TraceLog& log, DwellMode mode);

// LTE-leg dwell distances.
std::vector<double> lte_dwell_distances(const trace::TraceLog& log);

struct CoverageStats {
  Meters mean_m{0.0};
  Meters median_m{0.0};
  int segments = 0;
};
CoverageStats coverage_stats(const std::vector<double>& dwells);

}  // namespace p5g::analysis
