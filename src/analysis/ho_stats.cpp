#include "analysis/ho_stats.h"

#include <algorithm>

namespace p5g::analysis {

std::map<ran::HoType, int> count_by_type(const std::vector<ran::HandoverRecord>& hos) {
  std::map<ran::HoType, int> out;
  for (const ran::HandoverRecord& h : hos) ++out[h.type];
  return out;
}

CategoryCounts categorize(const std::vector<ran::HandoverRecord>& hos) {
  CategoryCounts c;
  for (const ran::HandoverRecord& h : hos) {
    switch (h.type) {
      case ran::HoType::kLteh:
      case ran::HoType::kMnbh:
        ++c.lte_4g;
        break;
      case ran::HoType::kScga:
      case ran::HoType::kScgr:
      case ran::HoType::kScgm:
      case ran::HoType::kScgc:
        ++c.nsa_5g;
        break;
      case ran::HoType::kMcgh:
        ++c.sa_5g;
        break;
    }
  }
  return c;
}

Kilometers km_per_handover(const trace::TraceLog& log) {
  if (log.handovers.empty()) return 0.0;
  return m_to_km(log.distance()) / static_cast<double>(log.handovers.size());
}

Kilometers km_per_handover(const trace::TraceLog& log,
                           const std::vector<ran::HoType>& types) {
  int n = 0;
  for (const ran::HandoverRecord& h : log.handovers) {
    if (std::find(types.begin(), types.end(), h.type) != types.end()) ++n;
  }
  if (n == 0) return 0.0;
  return m_to_km(log.distance()) / static_cast<double>(n);
}

PingPongStats ping_pong_stats(const std::vector<ran::HandoverRecord>& hos,
                              Seconds window) {
  ran::PingPongTracker tracker(window);
  for (const ran::HandoverRecord& h : hos) tracker.on_handover(h);
  PingPongStats s;
  s.eligible = tracker.handovers();
  s.ping_pongs = tracker.ping_pongs();
  return s;
}

std::map<ran::HoType, DurationStats> duration_by_type(
    const std::vector<ran::HandoverRecord>& hos) {
  std::map<ran::HoType, DurationStats> out;
  for (const ran::HandoverRecord& h : hos) {
    DurationStats& d = out[h.type];
    d.t1_ms.push_back(h.timing.t1_ms.v);
    d.t2_ms.push_back(h.timing.t2_ms.v);
    d.total_ms.push_back(h.timing.total_ms().v);
  }
  return out;
}

ColocationSplit colocation_split(const std::vector<ran::HandoverRecord>& hos) {
  ColocationSplit s;
  int nsa = 0;
  for (const ran::HandoverRecord& h : hos) {
    if (ran::ho_arch(h.type) != ran::HoArch::kNsa || h.type == ran::HoType::kLteh) {
      continue;
    }
    ++nsa;
    (h.colocated ? s.colocated_ms : s.non_colocated_ms).push_back(h.timing.total_ms().v);
  }
  if (nsa > 0) {
    s.colocated_fraction = static_cast<double>(s.colocated_ms.size()) / nsa;
  }
  return s;
}

namespace {

void tally(OutcomeCounts& c, ran::HoOutcome o) {
  switch (o) {
    case ran::HoOutcome::kSuccess: ++c.success; break;
    case ran::HoOutcome::kPrepFailure: ++c.prep_failure; break;
    case ran::HoOutcome::kExecFailure: ++c.exec_failure; break;
    case ran::HoOutcome::kRlfReestablish: ++c.rlf_reestablish; break;
  }
}

}  // namespace

OutcomeCounts count_outcomes(const std::vector<ran::HandoverRecord>& hos) {
  OutcomeCounts c;
  for (const ran::HandoverRecord& h : hos) tally(c, h.outcome);
  return c;
}

std::map<ran::HoType, OutcomeCounts> outcomes_by_type(
    const std::vector<ran::HandoverRecord>& hos) {
  std::map<ran::HoType, OutcomeCounts> out;
  for (const ran::HandoverRecord& h : hos) tally(out[h.type], h.outcome);
  return out;
}

std::map<radio::Band, OutcomeCounts> outcomes_by_band(
    const std::vector<ran::HandoverRecord>& hos) {
  std::map<radio::Band, OutcomeCounts> out;
  for (const ran::HandoverRecord& h : hos) tally(out[h.dst_band], h.outcome);
  return out;
}

RetryStats retry_stats(const std::vector<ran::HandoverRecord>& hos) {
  RetryStats s;
  int executed = 0, retried = 0;
  long attempts = 0;
  for (const ran::HandoverRecord& h : hos) {
    if (h.rach_attempts > 0) {
      ++executed;
      attempts += h.rach_attempts;
      s.max_rach_attempts = std::max(s.max_rach_attempts, h.rach_attempts);
      if (h.rach_attempts > 1) {
        ++retried;
        s.total_backoff_ms += h.backoff_ms;
      }
    }
    if (h.outcome == ran::HoOutcome::kRlfReestablish) {
      ++s.reestablishments;
      s.total_reestablish_ms += h.reestablish_ms;
    }
  }
  if (executed > 0) s.mean_rach_attempts = static_cast<double>(attempts) / executed;
  if (retried > 0) s.mean_backoff_ms = s.total_backoff_ms / static_cast<double>(retried);
  return s;
}

SignalingRates signaling_rates(const trace::TraceLog& log) {
  SignalingRates r;
  const Kilometers km = m_to_km(log.distance());
  if (km <= 0.0) return r;
  long rrc = 0, mac = 0, phy = 0;
  for (const ran::HandoverRecord& h : log.handovers) {
    rrc += h.signaling.rrc;
    mac += h.signaling.mac;
    phy += h.signaling.phy;
  }
  r.rrc_per_km = static_cast<double>(rrc) / km;
  r.mac_per_km = static_cast<double>(mac) / km;
  r.phy_per_km = static_cast<double>(phy) / km;
  r.total_per_km = r.rrc_per_km + r.mac_per_km + r.phy_per_km;
  return r;
}

}  // namespace p5g::analysis
