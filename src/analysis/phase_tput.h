// Pre/during/post HO throughput analysis (Figs. 12 & 16, §6.2) and the
// empirical ho_score calibration derived from it (§7.2).
#pragma once

#include <map>
#include <vector>

#include "ran/handover.h"
#include "trace/trace.h"

namespace p5g::analysis {

struct PhaseThroughput {
  std::vector<double> pre_mbps;   // 1 s before the procedure starts
  std::vector<double> exec_mbps;  // during T1+T2
  std::vector<double> post_mbps;  // 1 s after completion
};

// Per-HO-type phase throughput distributions over a trace.
std::map<ran::HoType, PhaseThroughput> phase_throughput(const trace::TraceLog& log,
                                                        Seconds window = 1.0_s);

// Median post/pre ratio per HO type — the empirical ho_score table.
std::map<ran::HoType, double> calibrate_ho_scores(const trace::TraceLog& log);

}  // namespace p5g::analysis
