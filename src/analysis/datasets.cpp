#include "analysis/datasets.h"

#include <set>

#include "analysis/ho_stats.h"
#include "sim/runner.h"

namespace p5g::analysis {
namespace {

std::vector<trace::TraceLog> make_walk_corpus(ran::CarrierProfile carrier,
                                              radio::Band nr_band, int loops,
                                              Seconds loop_duration,
                                              std::uint64_t seed,
                                              const std::string& name) {
  sim::Scenario s;
  s.name = name;
  s.carrier = std::move(carrier);
  s.arch = ran::Arch::kNsa;
  s.nr_band = nr_band;
  s.mobility = sim::MobilityKind::kWalkLoop;
  s.duration = loop_duration;
  s.seed = seed;

  // All loops share one deployment: the paper re-walks the same area.
  Rng rng(seed);
  geo::Route route = sim::build_route(s, rng);
  Rng dep_rng = rng.fork(7);
  ran::Deployment deployment(s.carrier, route, dep_rng);

  std::vector<sim::Scenario> loops_spec;
  loops_spec.reserve(static_cast<std::size_t>(loops));
  for (int i = 0; i < loops; ++i) {
    sim::Scenario loop = s;
    loop.name = name + "-loop" + std::to_string(i);
    loop.seed = seed + 1000u * static_cast<std::uint64_t>(i + 1);
    loops_spec.push_back(std::move(loop));
  }
  // Loops are independent given the shared (read-only) deployment; the
  // parallel sweep returns them in input order, identical to a serial run.
  return sim::run_scenarios(loops_spec, deployment, route);
}

}  // namespace

std::vector<trace::TraceLog> make_d1(int loops, Seconds loop_duration,
                                     std::uint64_t seed) {
  // Tourist area: mmWave 5G + LTE mid-band only. Downtown deployments are
  // much denser than the highway grid (the paper sees ~46 HOs per 35-min
  // walking loop), hence the density scale.
  ran::CarrierProfile carrier = ran::profile_opx();
  carrier.density_scale = 0.5;
  return make_walk_corpus(carrier, radio::Band::kNrMmWave, loops, loop_duration,
                          seed, "D1");
}

std::vector<trace::TraceLog> make_d2(int loops, Seconds loop_duration,
                                     std::uint64_t seed) {
  // Downtown area of a second city. The paper's D2 adds low-band coverage;
  // our simulator deploys one NR layer per area, so D2 differs from D1 by
  // city (deployment seed), density, and loop length instead (documented
  // substitution in DESIGN.md).
  ran::CarrierProfile carrier = ran::profile_opx();
  carrier.density_scale = 0.55;
  return make_walk_corpus(carrier, radio::Band::kNrMmWave, loops, loop_duration,
                          seed, "D2");
}

std::vector<CarrierDataset> make_cross_country(double scale, std::uint64_t seed) {
  struct SegmentSpec {
    const char* label;
    ran::Arch arch;
    radio::Band nr_band;
    double minutes;
    double speed_kmh;
    sim::MobilityKind mobility;
  };

  // Stage every segment of every carrier, then run the whole corpus as one
  // parallel sweep and regroup the logs by carrier.
  std::vector<sim::Scenario> all_scenarios;
  std::vector<std::string> all_labels;
  std::vector<std::size_t> carrier_sizes;
  std::vector<ran::CarrierProfile> carriers;
  auto build = [&](const ran::CarrierProfile& carrier,
                   const std::vector<SegmentSpec>& specs,
                   std::uint64_t carrier_seed) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const SegmentSpec& sp = specs[i];
      sim::Scenario s;
      s.name = carrier.name + "-" + sp.label;
      s.carrier = carrier;
      s.arch = sp.arch;
      s.nr_band = sp.nr_band;
      s.mobility = sp.mobility;
      s.speed_kmh = sp.speed_kmh;
      s.duration = Seconds{sp.minutes * 60.0 * scale};
      s.seed = carrier_seed + 31u * static_cast<std::uint64_t>(i + 1);
      all_scenarios.push_back(std::move(s));
      all_labels.push_back(sp.label);
    }
    carrier_sizes.push_back(specs.size());
    carriers.push_back(carrier);
  };

  using B = radio::Band;
  using A = ran::Arch;
  using M = sim::MobilityKind;
  // Minutes follow Table 1's per-band trace durations.
  build(ran::profile_opx(),
        {{"freeway", A::kNsa, B::kNrLow, 723, 110, M::kFreeway},
         {"city", A::kNsa, B::kNrMmWave, 258, 40, M::kCity},
         {"freeway", A::kLteOnly, B::kNrLow, 1688, 110, M::kFreeway},
         {"city", A::kLteOnly, B::kNrLow, 724, 40, M::kCity}},
        seed);
  build(ran::profile_opy(),
        {{"freeway", A::kNsa, B::kNrLow, 1532, 110, M::kFreeway},
         {"city", A::kNsa, B::kNrMid, 1088, 40, M::kCity},
         {"freeway", A::kSa, B::kNrLow, 416, 110, M::kFreeway},
         {"freeway", A::kLteOnly, B::kNrLow, 1057, 110, M::kFreeway},
         {"city", A::kLteOnly, B::kNrLow, 453, 40, M::kCity}},
        seed + 101);
  build(ran::profile_opz(),
        {{"freeway", A::kNsa, B::kNrLow, 1063, 110, M::kFreeway},
         {"city", A::kNsa, B::kNrMmWave, 172, 40, M::kCity},
         {"freeway", A::kLteOnly, B::kNrLow, 1427, 110, M::kFreeway},
         {"city", A::kLteOnly, B::kNrLow, 611, 40, M::kCity}},
        seed + 202);

  std::vector<trace::TraceLog> logs = sim::run_scenarios(all_scenarios);
  std::vector<CarrierDataset> out;
  std::size_t next = 0;
  for (std::size_t c = 0; c < carriers.size(); ++c) {
    CarrierDataset ds;
    ds.carrier = carriers[c];
    for (std::size_t i = 0; i < carrier_sizes[c]; ++i, ++next) {
      ds.segments.push_back({all_labels[next], std::move(logs[next])});
    }
    out.push_back(std::move(ds));
  }
  return out;
}

DatasetSummary summarize_dataset(const CarrierDataset& dataset) {
  DatasetSummary s;
  s.carrier = dataset.carrier.name;
  s.nr_bands = static_cast<int>(dataset.carrier.nr_bands.size()) +
               (dataset.carrier.offers_sa ? 1 : 0);
  s.lte_bands = 2;  // LTE low + mid in every deployment

  std::set<std::pair<std::size_t, int>> cells;  // (segment, pci)
  for (std::size_t i = 0; i < dataset.segments.size(); ++i) {
    const DriveSegment& seg = dataset.segments[i];
    const trace::TraceLog& log = seg.log;
    const double minutes = log.duration().v / 60.0;
    const Kilometers km = m_to_km(log.distance());

    if (seg.label == std::string("city")) s.city_km += km;
    else s.freeway_km += km;

    switch (log.arch) {
      case ran::Arch::kNsa:
        s.nsa_minutes += minutes;
        break;
      case ran::Arch::kSa:
        s.sa_minutes += minutes;
        break;
      case ran::Arch::kLteOnly:
        s.lte_minutes += minutes;
        break;
    }
    if (log.arch != ran::Arch::kLteOnly) {
      switch (log.nr_band) {
        case radio::Band::kNrLow: s.low_band_minutes += minutes; break;
        case radio::Band::kNrMid: s.mid_band_minutes += minutes; break;
        case radio::Band::kNrMmWave: s.mmwave_minutes += minutes; break;
        case radio::Band::kLteLow:
        case radio::Band::kLteMid: break;  // LTE anchor: no NR dwell
      }
    }

    const CategoryCounts counts = categorize(log.handovers);
    s.lte_handovers += counts.lte_4g;
    s.nsa_procedures += counts.nsa_5g;
    s.sa_handovers += counts.sa_5g;

    for (const trace::TickRecord& tick : log.ticks) {
      for (const trace::ObservedCell& o : tick.observed) cells.insert({i, o.pci});
    }
  }
  s.unique_cells = static_cast<int>(cells.size());
  return s;
}

}  // namespace p5g::analysis
