#include "analysis/fleet_stats.h"

#include <mutex>

#include "analysis/coverage.h"
#include "common/stats.h"

namespace p5g::analysis {

SampleStats sample_stats(std::span<const double> xs) {
  SampleStats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = stats::mean(xs);
  s.min = stats::min(xs);
  s.p25 = stats::percentile(xs, 25.0);
  s.median = stats::median(xs);
  s.p75 = stats::percentile(xs, 75.0);
  s.max = stats::max(xs);
  return s;
}

FleetStats fleet_stats(const sim::FleetScenario& f, unsigned threads) {
  FleetStats out;
  out.ues = f.n_ues;
  out.per_ue.resize(f.n_ues);

  // Pooled accumulators need a lock (consume runs on pool workers); the
  // per-UE slots do not. Dwells and outcome tallies are order-insensitive,
  // so the result stays deterministic for any schedule.
  std::mutex pooled_mu;
  std::vector<double> dwells;
  // Per-UE slots (written lock-free by UE index, like per_ue itself).
  std::vector<double> pp_rate_by_ue(f.n_ues, 0.0);

  out.errors = sim::for_each_ue_trace(
      f,
      [&](std::size_t ue, const sim::Scenario& s, const trace::TraceLog& log) {
        sim::UeSummary& u = out.per_ue[ue];
        u.ue = ue;
        u.seed = s.seed;
        u.mobility = s.mobility;
        u.start_offset_m = s.start_offset_m;
        u.trace = trace::summarize(log);

        std::vector<double> d = nr_dwell_distances(log, DwellMode::kActual);
        const OutcomeCounts oc = count_outcomes(log.handovers);
        const std::map<ran::HoType, int> bt = count_by_type(log.handovers);
        // Ping-pong chains are per-UE by construction (each UE has its own
        // tracker state), so the stats pool as plain sums.
        const PingPongStats pp = ping_pong_stats(log.handovers);
        pp_rate_by_ue[ue] = pp.rate();

        const std::lock_guard<std::mutex> lock(pooled_mu);
        dwells.insert(dwells.end(), d.begin(), d.end());
        out.outcomes.success += oc.success;
        out.outcomes.prep_failure += oc.prep_failure;
        out.outcomes.exec_failure += oc.exec_failure;
        out.outcomes.rlf_reestablish += oc.rlf_reestablish;
        out.ping_pongs.eligible += pp.eligible;
        out.ping_pongs.ping_pongs += pp.ping_pongs;
        for (const auto& [type, n] : bt) out.by_type[type] += n;
      },
      threads);

  // Quarantined UEs: keep identity in per_ue, exclude from distributions.
  std::vector<char> quarantined(f.n_ues, 0);
  for (const sim::RunError& e : out.errors) {
    quarantined[e.index] = 1;
    const sim::Scenario s = sim::fleet_ue_scenario(f, e.index);
    sim::UeSummary& u = out.per_ue[e.index];
    u.ue = e.index;
    u.seed = s.seed;
    u.mobility = s.mobility;
    u.start_offset_m = s.start_offset_m;
  }

  std::vector<double> ho_per_km, ho_count, failure_rate, interruption,
      mean_tput, pp_rate;
  ho_per_km.reserve(f.n_ues);
  ho_count.reserve(f.n_ues);
  failure_rate.reserve(f.n_ues);
  interruption.reserve(f.n_ues);
  mean_tput.reserve(f.n_ues);
  pp_rate.reserve(f.n_ues);
  for (const sim::UeSummary& u : out.per_ue) {
    if (quarantined[u.ue]) continue;
    pp_rate.push_back(pp_rate_by_ue[u.ue]);
    ho_per_km.push_back(u.trace.ho_per_km());
    ho_count.push_back(static_cast<double>(u.trace.handovers));
    const int total = u.trace.handovers;
    const int failed =
        u.trace.ho_prep_failure + u.trace.ho_exec_failure + u.trace.ho_rlf_reestablish;
    failure_rate.push_back(total > 0 ? static_cast<double>(failed) / total : 0.0);
    interruption.push_back(u.trace.any_halted_s.v);
    mean_tput.push_back(u.trace.mean_throughput_mbps);
  }
  out.ho_per_km = sample_stats(ho_per_km);
  out.ho_count = sample_stats(ho_count);
  out.failure_rate = sample_stats(failure_rate);
  out.interruption_s = sample_stats(interruption);
  out.mean_tput_mbps = sample_stats(mean_tput);
  out.ping_pong_rate = sample_stats(pp_rate);
  out.nr_coverage_m = sample_stats(dwells);
  return out;
}

}  // namespace p5g::analysis
