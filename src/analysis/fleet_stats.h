// Population statistics over a UE fleet (the cross-UE versions of
// ho_stats/coverage): distributions of per-UE HO rate, outcome mix,
// coverage, and data-plane interruption over one shared deployment. The
// underlying runs stream through sim::for_each_ue_trace (the cohort
// lockstep engine), so memory stays O(UEs) summaries + pooled dwell
// samples plus at most threads x cohort_ues in-flight TraceLogs — the
// dwell extraction needs per-tick data, so this layer cannot use
// run_fleet's log-free summary mode.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "analysis/ho_stats.h"
#include "sim/fleet.h"

namespace p5g::analysis {

// Five-number summary (plus mean) of a sample set; all zeros when empty.
struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};
SampleStats sample_stats(std::span<const double> xs);

struct FleetStats {
  std::size_t ues = 0;

  // Cross-UE distributions (one sample per UE).
  SampleStats ho_per_km;          // completed procedures per route km
  SampleStats ho_count;           // completed procedures
  SampleStats failure_rate;       // per-UE share of non-success outcomes
  SampleStats interruption_s;     // per-UE total data-plane interruption
  SampleStats mean_tput_mbps;     // per-UE mean downlink throughput
  SampleStats ping_pong_rate;     // per-UE ping_pong_stats().rate()

  // Pooled over every UE's trace.
  SampleStats nr_coverage_m;      // same-PCI NR dwell distances (kActual)
  OutcomeCounts outcomes;         // HO outcome mix across the population
  PingPongStats ping_pongs;       // pooled ping-pong counts (per-UE chains)
  std::map<ran::HoType, int> by_type;

  // The per-UE summaries the distributions were computed from (UE order).
  std::vector<sim::UeSummary> per_ue;

  // Quarantined UEs (ascending by UE). Failed UEs keep their identity in
  // `per_ue` (seed/mobility/offset, zero trace) but are EXCLUDED from every
  // distribution above — a crashed UE must not read as "zero handovers".
  std::vector<sim::RunError> errors;

  bool ok() const { return errors.empty(); }
};

// Runs the fleet (streaming, `threads` workers; 0 = hardware concurrency)
// and aggregates. Deterministic in `f` regardless of thread count.
FleetStats fleet_stats(const sim::FleetScenario& f, unsigned threads = 0);

}  // namespace p5g::analysis
