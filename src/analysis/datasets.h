// Dataset builders mirroring the paper's corpora:
//  * D1 — 7 x 35-minute walking loops of a tourist area (mmWave + LTE mid).
//  * D2 — 10 x 25-minute walking loops of a downtown area (adds low-band).
//  * Cross-country drive — per-carrier city + freeway segments across each
//    deployed band (the Table 1 corpus), scalable so benches stay fast.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.h"
#include "trace/trace.h"

namespace p5g::analysis {

// Walking-loop corpora for the prediction evaluation (§7.3). All loops of a
// dataset traverse the same deployment (the paper walks the same loop).
std::vector<trace::TraceLog> make_d1(int loops = 7, Seconds loop_duration = 2100.0_s,
                                     std::uint64_t seed = 11);
std::vector<trace::TraceLog> make_d2(int loops = 10, Seconds loop_duration = 1500.0_s,
                                     std::uint64_t seed = 22);

// One segment of the cross-country corpus.
struct DriveSegment {
  std::string label;       // "freeway" or "city"
  trace::TraceLog log;
};

struct CarrierDataset {
  ran::CarrierProfile carrier;
  std::vector<DriveSegment> segments;
};

// Generates the Table 1 corpus at `scale` (1.0 = the paper's mileage;
// benches default to ~0.05 so they finish in seconds).
std::vector<CarrierDataset> make_cross_country(double scale = 0.05,
                                               std::uint64_t seed = 7);

// Table 1 row: aggregate statistics of one carrier's dataset.
struct DatasetSummary {
  std::string carrier;
  int unique_cells = 0;
  int nr_bands = 0;
  int lte_bands = 0;
  Kilometers city_km = 0.0;
  Kilometers freeway_km = 0.0;
  int lte_handovers = 0;      // LTEH + MNBH
  int nsa_procedures = 0;     // SCGA/SCGR/SCGM/SCGC
  int sa_handovers = 0;       // MCGH
  double nsa_minutes = 0.0;
  double sa_minutes = 0.0;
  double lte_minutes = 0.0;
  double low_band_minutes = 0.0;
  double mid_band_minutes = 0.0;
  double mmwave_minutes = 0.0;
};
DatasetSummary summarize_dataset(const CarrierDataset& dataset);

}  // namespace p5g::analysis
