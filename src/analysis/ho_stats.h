// Handover aggregate statistics (§5): frequency, duration, signaling, and
// co-location effects, computed from trace logs.
#pragma once

#include <map>
#include <vector>

#include "common/units.h"
#include "ran/handover.h"
#include "ran/ping_pong.h"
#include "trace/trace.h"

namespace p5g::analysis {

// HO counts by procedure type.
std::map<ran::HoType, int> count_by_type(const std::vector<ran::HandoverRecord>& hos);

// Counts split into the paper's Table 1 categories.
struct CategoryCounts {
  int lte_4g = 0;        // LTEH + MNBH ("4G/LTE handovers")
  int nsa_5g = 0;        // SCGA/SCGR/SCGM/SCGC ("5G-NSA mobility procedures")
  int sa_5g = 0;         // MCGH ("5G-SA handovers")
};
CategoryCounts categorize(const std::vector<ran::HandoverRecord>& hos);

// Average distance between consecutive HOs (km/HO), the §5.1 metric.
// Returns 0 when fewer than 2 HOs.
Kilometers km_per_handover(const trace::TraceLog& log);

// Same, restricted to a subset of HO types.
Kilometers km_per_handover(const trace::TraceLog& log,
                           const std::vector<ran::HoType>& types);

struct DurationStats {
  std::vector<double> t1_ms;
  std::vector<double> t2_ms;
  std::vector<double> total_ms;
};
// T1/T2 samples grouped by HO type.
std::map<ran::HoType, DurationStats> duration_by_type(
    const std::vector<ran::HandoverRecord>& hos);

// Duration samples split by endpoint co-location (Fig. 13). Only NSA 5G
// procedures participate.
struct ColocationSplit {
  std::vector<double> colocated_ms;
  std::vector<double> non_colocated_ms;
  double colocated_fraction = 0.0;  // share of NSA samples with same PCI
};
ColocationSplit colocation_split(const std::vector<ran::HandoverRecord>& hos);

// Outcome tallies for the fault layer (ran/faults.h).
struct OutcomeCounts {
  int success = 0;
  int prep_failure = 0;
  int exec_failure = 0;
  int rlf_reestablish = 0;

  int total() const { return success + prep_failure + exec_failure + rlf_reestablish; }
  int failed() const { return prep_failure + exec_failure + rlf_reestablish; }
  // Share of procedures that did not complete cleanly; 0 when empty.
  double failure_rate() const {
    const int n = total();
    return n == 0 ? 0.0 : static_cast<double>(failed()) / n;
  }
};

OutcomeCounts count_outcomes(const std::vector<ran::HandoverRecord>& hos);

// Per-procedure-type and per-band (destination band) outcome splits.
std::map<ran::HoType, OutcomeCounts> outcomes_by_type(
    const std::vector<ran::HandoverRecord>& hos);
std::map<radio::Band, OutcomeCounts> outcomes_by_band(
    const std::vector<ran::HandoverRecord>& hos);

// RACH retry / backoff / re-establishment accounting across a HO set.
struct RetryStats {
  double mean_rach_attempts = 0.0;  // over procedures that reached execution
  int max_rach_attempts = 0;
  Milliseconds total_backoff_ms{0.0};
  Milliseconds mean_backoff_ms{0.0};       // over retried procedures (attempts > 1)
  Milliseconds total_reestablish_ms{0.0};  // summed re-establishment outage
  int reestablishments = 0;
};
RetryStats retry_stats(const std::vector<ran::HandoverRecord>& hos);

// Ping-pong accounting: successful handover chains A -> B -> A whose
// return leg completes within `window` of the outbound one (the
// ran/ping_pong.h definition, applied offline to a completed record set).
struct PingPongStats {
  int eligible = 0;    // successful, cell-landing procedures considered
  int ping_pongs = 0;  // return-to-source pairs closed within the window

  // Share of eligible HOs that closed a ping-pong pair; 0 when empty.
  double rate() const {
    return eligible == 0 ? 0.0
                         : static_cast<double>(ping_pongs) / eligible;
  }
};

// Records must be in completion order (trace logs already are).
PingPongStats ping_pong_stats(const std::vector<ran::HandoverRecord>& hos,
                              Seconds window = ran::kDefaultPingPongWindow);

// Signaling message totals per km, per layer (§5.1's overhead comparison).
struct SignalingRates {
  double rrc_per_km = 0.0;
  double mac_per_km = 0.0;
  double phy_per_km = 0.0;
  double total_per_km = 0.0;
};
SignalingRates signaling_rates(const trace::TraceLog& log);

}  // namespace p5g::analysis
