#include "analysis/coverage.h"

#include "common/stats.h"

namespace p5g::analysis {
namespace {

constexpr Meters kMinSegment{20.0};  // discard micro-segments (noise)

}  // namespace

std::vector<double> nr_dwell_distances(const trace::TraceLog& log, DwellMode mode) {
  std::vector<double> out;
  int cur_pci = -1;
  Meters start{0.0}, last{0.0};
  bool open = false;

  auto close_segment = [&]() {
    if (open && last - start >= kMinSegment) out.push_back((last - start).v);
    open = false;
  };

  for (const trace::TickRecord& t : log.ticks) {
    if (!t.nr_attached) {
      if (mode == DwellMode::kActual) {
        close_segment();
        cur_pci = -1;
      }
      // kIdealSamePci: keep the segment open across the gap; it survives
      // only if the UE re-attaches to the same PCI.
      continue;
    }
    if (!open) {
      cur_pci = t.nr_pci;
      start = t.route_position;
      last = t.route_position;
      open = true;
      continue;
    }
    if (t.nr_pci != cur_pci) {
      close_segment();
      cur_pci = t.nr_pci;
      start = t.route_position;
      last = t.route_position;
      open = true;
    } else {
      last = t.route_position;
    }
  }
  close_segment();
  return out;
}

std::vector<double> lte_dwell_distances(const trace::TraceLog& log) {
  std::vector<double> out;
  int cur_pci = -1;
  Meters start{0.0}, last{0.0};
  bool open = false;
  for (const trace::TickRecord& t : log.ticks) {
    if (t.lte_pci < 0) continue;
    if (!open || t.lte_pci != cur_pci) {
      if (open && last - start >= kMinSegment) out.push_back((last - start).v);
      cur_pci = t.lte_pci;
      start = t.route_position;
      open = true;
    }
    last = t.route_position;
  }
  if (open && last - start >= kMinSegment) out.push_back((last - start).v);
  return out;
}

CoverageStats coverage_stats(const std::vector<double>& dwells) {
  CoverageStats s;
  s.segments = static_cast<int>(dwells.size());
  if (dwells.empty()) return s;
  s.mean_m = Meters{stats::mean(dwells)};
  s.median_m = Meters{stats::median(dwells)};
  return s;
}

}  // namespace p5g::analysis
