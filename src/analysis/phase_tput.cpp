#include "analysis/phase_tput.h"

#include <algorithm>

#include "common/stats.h"

namespace p5g::analysis {
namespace {

// Mean throughput over [t_lo, t_hi) in the trace (ticks are uniform).
double window_mean(const trace::TraceLog& log, Seconds t_lo, Seconds t_hi) {
  if (log.ticks.empty() || t_hi <= t_lo) return 0.0;
  const double hz = log.tick_hz.v;
  const Seconds t0 = log.ticks.front().time;
  auto idx_of = [&](Seconds t) {
    const long i = static_cast<long>((t - t0).v * hz);
    return std::clamp(i, 0L, static_cast<long>(log.ticks.size()) - 1);
  };
  const long lo = idx_of(t_lo), hi = idx_of(t_hi);
  if (hi <= lo) return log.ticks[static_cast<std::size_t>(lo)].throughput_mbps;
  double acc = 0.0;
  for (long i = lo; i < hi; ++i) acc += log.ticks[static_cast<std::size_t>(i)].throughput_mbps;
  return acc / static_cast<double>(hi - lo);
}

}  // namespace

std::map<ran::HoType, PhaseThroughput> phase_throughput(const trace::TraceLog& log,
                                                        Seconds window) {
  std::map<ran::HoType, PhaseThroughput> out;
  for (const ran::HandoverRecord& h : log.handovers) {
    PhaseThroughput& p = out[h.type];
    p.pre_mbps.push_back(window_mean(log, h.decision_time - window, h.decision_time));
    p.exec_mbps.push_back(window_mean(log, h.exec_start, h.complete_time));
    p.post_mbps.push_back(window_mean(log, h.complete_time, h.complete_time + window));
  }
  return out;
}

std::map<ran::HoType, double> calibrate_ho_scores(const trace::TraceLog& log) {
  std::map<ran::HoType, double> out;
  std::map<ran::HoType, std::vector<double>> ratios;
  for (const ran::HandoverRecord& h : log.handovers) {
    const double pre = window_mean(log, h.decision_time - 1.0_s, h.decision_time);
    const double post = window_mean(log, h.complete_time, h.complete_time + 1.0_s);
    if (pre > 1.0) ratios[h.type].push_back(post / pre);
  }
  for (auto& [type, rs] : ratios) {
    if (!rs.empty()) out[type] = stats::median(rs);
  }
  return out;
}

}  // namespace p5g::analysis
