#include "analysis/ho_timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace p5g::analysis {

namespace {

// Rebuild the record from one flow's events. The complete instant is
// authoritative for everything it carries; phase spans contribute the
// fields only they know (PCIs, phase boundaries, backoff, re-establishment).
ran::HandoverRecord reconstruct(HoTimeline& t) {
  ran::HandoverRecord rec;
  const obs::Event* rlf_trigger = nullptr;
  for (const obs::Event& e : t.events) {
    switch (e.category) {
      case obs::EventCategory::kHoPrep: {
        t.has_prep = true;
        rec.decision_time = Seconds{e.t0};
        rec.exec_start = Seconds{e.t1};
        rec.src_pci = e.i0;
        rec.dst_pci = e.i1;
        rec.route_position = Meters{e.a1};
        break;
      }
      case obs::EventCategory::kHoExec: {
        t.has_exec = true;
        rec.backoff_ms = Millis{e.a1};
        break;
      }
      case obs::EventCategory::kRlf: {
        if (e.kind == obs::EventKind::kInstant) {
          t.has_rlf_trigger = true;
          rlf_trigger = &e;
        } else {
          t.has_reestablish = true;
          rec.reestablish_ms = Millis{e.a0};
        }
        break;
      }
      case obs::EventCategory::kHoComplete: {
        const ran::HoCode code = ran::unpack_ho_code(e.i2);
        rec.type = code.type;
        rec.outcome = code.outcome;
        rec.src_band = code.src_band;
        rec.dst_band = code.dst_band;
        rec.complete_time = Seconds{e.t0};
        rec.timing.t1_ms = Millis{e.a0};
        rec.timing.t2_ms = Millis{e.a1};
        rec.colocated = e.i0 != 0;
        rec.rach_attempts = e.i1;
        break;
      }
      case obs::EventCategory::kRachRetry:
      case obs::EventCategory::kTick:
      case obs::EventCategory::kMmObserve:
      case obs::EventCategory::kMmDecide:
      case obs::EventCategory::kPoolTask:
      case obs::EventCategory::kCheckpoint:
      case obs::EventCategory::kAppOutage:
        break;  // rach.retry etc. duplicate fields already carried above
    }
  }
  // RLF-monitor procedures have no preparation stage: the trigger instant
  // sits exactly at decision_time == exec_start (the rlf SPAN's start is a
  // derived subtraction, so prefer the instant — it is the emitted t).
  if (!t.has_prep && rlf_trigger != nullptr) {
    rec.decision_time = Seconds{rlf_trigger->t0};
    rec.exec_start = Seconds{rlf_trigger->t0};
    rec.src_pci = rlf_trigger->i0;
    rec.dst_pci = rlf_trigger->i1;
    rec.route_position = Meters{rlf_trigger->a1};
    rec.reestablish_ms = Millis{rlf_trigger->a0};
  }
  return rec;
}

bool is_ho_event(const obs::Event& e) {
  switch (e.category) {
    case obs::EventCategory::kHoPrep:
    case obs::EventCategory::kHoExec:
    case obs::EventCategory::kHoComplete:
    case obs::EventCategory::kRlf:
    case obs::EventCategory::kRachRetry:
      return true;
    case obs::EventCategory::kTick:
    case obs::EventCategory::kMmObserve:
    case obs::EventCategory::kMmDecide:
    case obs::EventCategory::kPoolTask:
    case obs::EventCategory::kCheckpoint:
    case obs::EventCategory::kAppOutage:
      return false;
  }
  return false;  // unreachable: all enumerators handled above
}

}  // namespace

std::vector<HoTimeline> ho_timelines(std::span<const obs::Event> events) {
  // flow 0 is "no HO in flight" (tick/pool/checkpoint events); HO flows
  // start at 1.
  std::map<std::pair<std::uint32_t, std::uint64_t>, HoTimeline> flows;
  for (const obs::Event& e : events) {
    if (e.flow == 0 || !is_ho_event(e)) continue;
    HoTimeline& t = flows[{e.ue, e.flow}];
    t.ue = e.ue;
    t.flow = e.flow;
    t.events.push_back(e);
  }
  std::vector<HoTimeline> out;
  out.reserve(flows.size());
  for (auto& [key, t] : flows) {
    const bool completed =
        std::any_of(t.events.begin(), t.events.end(), [](const obs::Event& e) {
          return e.category == obs::EventCategory::kHoComplete;
        });
    if (!completed) continue;  // still pending at capture time
    std::stable_sort(t.events.begin(), t.events.end(),
                     [](const obs::Event& a, const obs::Event& b) {
                       return a.t0 < b.t0;
                     });
    t.record = reconstruct(t);
    out.push_back(std::move(t));
  }
  // std::map iteration already yields (ue, flow) order; keep it explicit.
  std::stable_sort(out.begin(), out.end(),
                   [](const HoTimeline& a, const HoTimeline& b) {
                     return a.ue != b.ue ? a.ue < b.ue : a.flow < b.flow;
                   });
  return out;
}

std::vector<ran::HandoverRecord> timeline_records(
    const std::vector<HoTimeline>& timelines) {
  std::vector<ran::HandoverRecord> out;
  out.reserve(timelines.size());
  for (const HoTimeline& t : timelines) out.push_back(t.record);
  return out;
}

PhaseDurations phase_durations(const std::vector<HoTimeline>& timelines) {
  PhaseDurations d;
  d.t1_ms.reserve(timelines.size());
  d.t2_ms.reserve(timelines.size());
  d.total_ms.reserve(timelines.size());
  for (const HoTimeline& t : timelines) {
    d.t1_ms.push_back(t.record.timing.t1_ms.v);
    d.t2_ms.push_back(t.record.timing.t2_ms.v);
    d.total_ms.push_back(t.record.timing.total_ms().v);
    if (t.record.outcome == ran::HoOutcome::kRlfReestablish) {
      d.reestablish_ms.push_back(t.record.reestablish_ms.v);
    }
  }
  return d;
}

std::string describe_timeline(const HoTimeline& t) {
  const ran::HandoverRecord& r = t.record;
  std::string out;
  char line[200];
  const auto emit = [&out, &line] { out += line; };

  std::snprintf(line, sizeof line,
                "ue %u flow %llu  %.*s  %.*s  src_pci %d dst_pci %d%s\n",
                t.ue, static_cast<unsigned long long>(t.flow),
                static_cast<int>(ran::ho_name(r.type).size()),
                ran::ho_name(r.type).data(),
                static_cast<int>(ran::ho_outcome_name(r.outcome).size()),
                ran::ho_outcome_name(r.outcome).data(), r.src_pci, r.dst_pci,
                r.colocated ? "  (colocated)" : "");
  emit();
  if (t.has_prep) {
    std::snprintf(line, sizeof line,
                  "  prep         %10.4f .. %10.4f s   T1 %8.3f ms\n",
                  r.decision_time.v, r.exec_start.v, r.timing.t1_ms.v);
    emit();
  }
  if (t.has_rlf_trigger) {
    std::snprintf(line, sizeof line,
                  "  rlf trigger  %10.4f s (T310 expiry)\n", r.decision_time.v);
    emit();
  }
  if (t.has_exec) {
    std::snprintf(line, sizeof line,
                  "  exec         %10.4f s              T2 %8.3f ms  "
                  "(rach x%d, backoff %.3f ms)\n",
                  r.exec_start.v, r.timing.t2_ms.v, r.rach_attempts, r.backoff_ms.v);
    emit();
  }
  if (t.has_reestablish) {
    std::snprintf(line, sizeof line,
                  "  reestablish  ends %10.4f s         %8.3f ms\n",
                  r.complete_time.v, r.reestablish_ms.v);
    emit();
  }
  std::snprintf(line, sizeof line,
                "  complete     %10.4f s              total %8.3f ms\n",
                r.complete_time.v, r.timing.total_ms().v);
  emit();
  return out;
}

}  // namespace p5g::analysis
