#include "analysis/prediction.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/trace_adapter.h"
#include "ml/gbc.h"
#include "ml/lstm.h"

namespace p5g::analysis {

int ho_class(ran::HoType t) { return static_cast<int>(t) + 1; }

ran::HoType class_ho(int cls) { return static_cast<ran::HoType>(cls - 1); }

std::vector<int> ground_truth(const trace::TraceLog& log, Seconds horizon) {
  std::vector<int> labels(log.ticks.size(), 0);
  if (log.ticks.empty()) return labels;
  const Seconds t0 = log.ticks.front().time;
  const double hz = log.tick_hz.v;
  for (const ran::HandoverRecord& h : log.handovers) {
    const long hi = static_cast<long>((h.decision_time - t0).v * hz);
    const long lo = hi - static_cast<long>(horizon.v * hz);
    for (long i = std::max(lo, 0L); i < std::min(hi, static_cast<long>(labels.size()));
         ++i) {
      if (labels[static_cast<std::size_t>(i)] == 0) {
        labels[static_cast<std::size_t>(i)] = ho_class(h.type);
      }
    }
  }
  return labels;
}

namespace {

std::vector<ran::EventConfig> event_configs_for(ran::Arch arch, radio::Band nr_band) {
  std::vector<ran::EventConfig> configs;
  switch (arch) {
    case ran::Arch::kLteOnly:
      for (const auto& c : ran::default_lte_event_set(nr_band)) {
        if (c.type != ran::EventType::kB1) configs.push_back(c);
      }
      break;
    case ran::Arch::kNsa:
      for (const auto& c : ran::default_lte_event_set(nr_band)) configs.push_back(c);
      for (const auto& c : ran::default_nsa_nr_event_set(nr_band)) configs.push_back(c);
      break;
    case ran::Arch::kSa:
      configs = ran::default_sa_event_set(nr_band);
      break;
  }
  return configs;
}

}  // namespace

PrognosRunResult run_prognos(const std::vector<trace::TraceLog>& traces,
                             const PrognosRunOptions& options) {
  PrognosRunResult out;
  if (traces.empty()) return out;

  core::Prognos::Config cfg = options.config;
  cfg.report.arch = traces.front().arch;
  core::Prognos prognos(event_configs_for(traces.front().arch, traces.front().nr_band),
                        cfg);
  if (options.bootstrap) prognos.bootstrap_with_frequent_patterns();

  std::vector<int> truth_all;
  Seconds offset{0.0};
  std::vector<std::pair<Seconds, bool>> minute_marks;  // (global time, _)

  for (const trace::TraceLog& log : traces) {
    const std::vector<int> truth = ground_truth(log, options.horizon);
    truth_all.insert(truth_all.end(), truth.begin(), truth.end());

    for (std::size_t i = 0; i < log.ticks.size(); ++i) {
      core::PrognosInput in = core::from_tick(log.ticks[i]);
      in.time += offset;
      const core::PrognosPrediction pred = prognos.tick(in);
      out.predicted.push_back(pred.ho ? ho_class(*pred.ho) : 0);
    }

    // Lead times: earliest correct prediction before each HO decision.
    const double hz = log.tick_hz.v;
    const std::size_t base = out.predicted.size() - log.ticks.size();
    const Seconds t0 = log.ticks.front().time;
    for (const ran::HandoverRecord& h : log.handovers) {
      const long dec = static_cast<long>((h.decision_time - t0).v * hz);
      const long lo = std::max(0L, dec - static_cast<long>(2.0 * hz));
      for (long i = lo; i <= dec && i < static_cast<long>(log.ticks.size()); ++i) {
        if (out.predicted[base + static_cast<std::size_t>(i)] == ho_class(h.type)) {
          out.lead_times_s.push_back((h.decision_time - log.ticks[static_cast<std::size_t>(i)].time).v);
          break;
        }
      }
    }
    offset += log.ticks.back().time + Seconds{1.0 / log.tick_hz.v};
  }

  // Rolling event-F1 per minute over a trailing 5-minute window.
  const double hz = traces.front().tick_hz.v;
  const auto win = static_cast<std::size_t>(5.0 * 60.0 * hz);
  const auto step = static_cast<std::size_t>(60.0 * hz);
  for (std::size_t end = step; end <= truth_all.size(); end += step) {
    const std::size_t begin = end > win ? end - win : 0;
    const auto t = std::span<const int>(truth_all).subspan(begin, end - begin);
    const auto p = std::span<const int>(out.predicted).subspan(begin, end - begin);
    out.f1_over_time.push_back(
        ml::score_events(t, p, static_cast<std::size_t>(1.5 * hz)).scores.f1);
  }

  out.patterns_learned = prognos.learner().patterns_learned_total();
  out.patterns_evicted = prognos.learner().patterns_evicted_total();
  out.duration = offset;
  return out;
}

std::vector<double> gbc_features(const trace::TickRecord& tick) {
  Dbm best_lte_nbr{-140.0}, best_nr_nbr{-140.0};
  int nr_neighbors = 0;
  for (const trace::ObservedCell& o : tick.observed) {
    const bool is_nr = radio::band_rat(o.band) == radio::Rat::kNr;
    if (is_nr) {
      ++nr_neighbors;
      if (o.pci != tick.nr_pci && o.rrs.rsrp > best_nr_nbr) best_nr_nbr = o.rrs.rsrp;
    } else if (o.pci != tick.lte_pci && o.rrs.rsrp > best_lte_nbr) {
      best_lte_nbr = o.rrs.rsrp;
    }
  }
  const Dbm nr_rsrp = tick.nr_attached ? tick.nr_rrs.rsrp : -140.0_dbm;
  return {
      tick.lte_rrs.rsrp.v,
      tick.lte_rrs.rsrq.v,
      tick.lte_rrs.sinr.v,
      nr_rsrp.v,
      tick.nr_attached ? tick.nr_rrs.sinr.v : -20.0,
      tick.nr_attached ? 1.0 : 0.0,
      best_lte_nbr.v,
      best_nr_nbr.v,
      (best_lte_nbr - tick.lte_rrs.rsrp).v,
      (best_nr_nbr - nr_rsrp).v,
      tick.speed_mps,
      static_cast<double>(nr_neighbors),
  };
}

namespace {

std::size_t train_trace_count(std::size_t n, double frac) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(frac * static_cast<double>(n))));
}

}  // namespace

std::vector<int> run_gbc(const std::vector<trace::TraceLog>& traces, double train_frac,
                         Seconds horizon) {
  std::vector<int> out;
  if (traces.empty()) return out;
  const std::size_t n_train = train_trace_count(traces.size(), train_frac);

  // Training set: all positives plus a bounded random negative sample.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(0x6BC5);
  std::size_t negatives = 0;
  for (std::size_t tr = 0; tr < n_train && tr < traces.size(); ++tr) {
    const std::vector<int> labels = ground_truth(traces[tr], horizon);
    for (std::size_t i = 0; i < traces[tr].ticks.size(); ++i) {
      if (labels[i] != 0) {
        x.push_back(gbc_features(traces[tr].ticks[i]));
        y.push_back(labels[i]);
      } else if (negatives < 20000 && rng.bernoulli(0.15)) {
        x.push_back(gbc_features(traces[tr].ticks[i]));
        y.push_back(0);
        ++negatives;
      }
    }
  }

  ml::GradientBoostedClassifier::Config cfg;
  cfg.n_rounds = 40;
  cfg.n_classes = kNumHoClasses;
  cfg.tree.max_depth = 3;
  cfg.tree.min_leaf = 20;
  ml::GradientBoostedClassifier gbc(cfg);
  gbc.fit(x, y);

  for (const trace::TraceLog& log : traces) {
    for (const trace::TickRecord& t : log.ticks) {
      out.push_back(gbc.trained() ? gbc.predict(gbc_features(t)) : 0);
    }
  }
  return out;
}

std::vector<int> run_lstm(const std::vector<trace::TraceLog>& traces, double train_frac,
                          Seconds horizon) {
  std::vector<int> out;
  if (traces.empty()) return out;
  const std::size_t n_train = train_trace_count(traces.size(), train_frac);
  constexpr std::size_t kSeqLen = 20;
  constexpr std::size_t kPredictStride = 8;

  auto features = [](const trace::TickRecord& t) {
    // Location-centric features (Ozturk et al. use mobility/position).
    return std::vector<double>{t.position.x / 1000.0, t.position.y / 1000.0,
                               t.speed_mps / 10.0, (t.lte_rrs.rsrp.v + 100.0) / 20.0,
                               ((t.nr_attached ? t.nr_rrs.rsrp.v : -140.0) + 100.0) / 20.0};
  };

  std::vector<ml::Sequence> seqs;
  std::vector<int> labels;
  for (std::size_t tr = 0; tr < n_train && tr < traces.size(); ++tr) {
    const std::vector<int> truth = ground_truth(traces[tr], horizon);
    for (std::size_t i = kSeqLen; i < traces[tr].ticks.size(); i += 5) {
      // Include every positive onset; stride over negatives.
      const bool positive = truth[i] != 0;
      if (!positive && (i % 25) != 0) continue;
      ml::Sequence s;
      s.reserve(kSeqLen);
      for (std::size_t k = i - kSeqLen; k < i; ++k) s.push_back(features(traces[tr].ticks[k]));
      seqs.push_back(std::move(s));
      labels.push_back(truth[i]);
    }
  }

  ml::StackedLstm::Config cfg;
  cfg.input_dim = 5;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.n_classes = kNumHoClasses;
  cfg.epochs = 6;
  cfg.max_train_sequences = 2500;
  ml::StackedLstm lstm(cfg);
  lstm.fit(seqs, labels);

  for (const trace::TraceLog& log : traces) {
    std::vector<int> preds(log.ticks.size(), 0);
    for (std::size_t i = kSeqLen; i < log.ticks.size(); i += kPredictStride) {
      ml::Sequence s;
      s.reserve(kSeqLen);
      for (std::size_t k = i - kSeqLen; k < i; ++k) s.push_back(features(log.ticks[k]));
      const int cls = lstm.predict(s);
      // Hold the prediction until the next evaluation point.
      for (std::size_t k = i; k < std::min(i + kPredictStride, preds.size()); ++k) {
        preds[k] = cls;
      }
    }
    out.insert(out.end(), preds.begin(), preds.end());
  }
  return out;
}

std::vector<MethodResult> evaluate_predictors(const std::vector<trace::TraceLog>& traces,
                                              double train_frac, Seconds horizon) {
  std::vector<MethodResult> results;
  if (traces.empty()) return results;
  const std::size_t n_train = train_trace_count(traces.size(), train_frac);

  std::vector<int> truth_all;
  std::size_t test_begin = 0;
  for (std::size_t tr = 0; tr < traces.size(); ++tr) {
    const std::vector<int> t = ground_truth(traces[tr], horizon);
    if (tr < n_train) test_begin += t.size();
    truth_all.insert(truth_all.end(), t.begin(), t.end());
  }
  // Tolerance: a predicted event counts when its onset is within 1.5x the
  // horizon of the true onset (predictions are made up to `horizon` early).
  const auto tolerance =
      static_cast<std::size_t>(1.5 * traces.front().tick_hz.v * horizon.v);
  auto test_slice = [&](const std::vector<int>& v) {
    return std::span<const int>(v).subspan(test_begin);
  };
  const auto truth_test = test_slice(truth_all);

  PrognosRunOptions opts;
  opts.horizon = horizon;
  // Bootstrapping with the per-type frequent patterns is part of the system
  // (Sec 9); without it the scored window would still include pattern
  // warm-up for rare HO types.
  opts.bootstrap = true;
  const PrognosRunResult prognos = run_prognos(traces, opts);
  results.push_back({"Prognos", ml::score_events(truth_test, test_slice(prognos.predicted),
                                                 tolerance)});

  const std::vector<int> gbc = run_gbc(traces, train_frac, horizon);
  results.push_back({"GBC", ml::score_events(truth_test, test_slice(gbc), tolerance)});

  const std::vector<int> lstm = run_lstm(traces, train_frac, horizon);
  results.push_back({"StackedLSTM", ml::score_events(truth_test, test_slice(lstm), tolerance)});
  return results;
}

}  // namespace p5g::analysis
