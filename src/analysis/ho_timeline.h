// Per-handover timeline reconstruction from the flight recorder (obs/events).
//
// The MobilityManager emits every HO as a (ue, flow)-correlated family of
// events: a ho.prep span, a ho.exec span (plus rach.retry when the fault
// layer retried), an rlf trigger instant + rlf span for re-establishments,
// and one ho.complete instant that seals the procedure. ho_timelines()
// groups a captured event stream back into those families and rebuilds a
// ran::HandoverRecord per completed procedure.
//
// The reconstruction is EXACT for every field analysis::ho_stats consumes:
// the events carry the record's authoritative millisecond durations
// verbatim (no seconds<->ms round trip), so duration_by_type /
// colocation_split / retry_stats / outcome tallies over timeline_records()
// equal the same functions over the trace log's handover list bit-for-bit.
// (SignalingCounts are the one field not carried; they stay default.)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/events.h"
#include "ran/handover.h"

namespace p5g::analysis {

// One completed HO procedure, as seen by the flight recorder.
struct HoTimeline {
  std::uint32_t ue = 0;
  std::uint64_t flow = 0;
  ran::HandoverRecord record;  // reconstructed (signaling left default)

  // Which phases the recorder retained. A ring that evicted history (see
  // EventTrace::dropped) can leave a complete instant whose earlier spans
  // are gone; the record is still correct — phase spans only add the
  // src/dst PCIs and exact phase boundaries already encoded elsewhere.
  bool has_prep = false;
  bool has_exec = false;
  bool has_reestablish = false;
  bool has_rlf_trigger = false;

  // The flow's events in time order (spans at their start time).
  std::vector<obs::Event> events;
};

// Groups `events` by (ue, flow) and reconstructs one HoTimeline per flow
// that contains a ho.complete instant (procedures still pending at capture
// time have no completion and are skipped). Output is sorted by (ue, flow);
// flow ids increment per start and at most one HO is in flight per UE, so
// this is per-UE completion order — the trace log's handover order.
std::vector<HoTimeline> ho_timelines(std::span<const obs::Event> events);

// The reconstructed records, in ho_timelines() order — feed these straight
// into the analysis::ho_stats functions.
std::vector<ran::HandoverRecord> timeline_records(
    const std::vector<HoTimeline>& timelines);

// Phase-duration samples pooled across timelines (milliseconds).
// reestablish_ms only collects RLF outcomes.
struct PhaseDurations {
  std::vector<double> t1_ms;
  std::vector<double> t2_ms;
  std::vector<double> total_ms;
  std::vector<double> reestablish_ms;
};
PhaseDurations phase_durations(const std::vector<HoTimeline>& timelines);

// Human-readable dump of one procedure (the `p5g_trace ho` view): one line
// per phase with sim-time bounds and the authoritative durations.
std::string describe_timeline(const HoTimeline& t);

}  // namespace p5g::analysis
