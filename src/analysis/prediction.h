// Prediction evaluation harness (§7.3, Table 3; Figs. 15 & 18).
//
// Ground truth: tick i is labeled with the class of the HO whose decision
// falls inside (t_i, t_i + horizon]; 0 = no HO. All methods emit the same
// per-tick labels and are scored with tolerance-based event matching
// (ml::score_events), which is oblivious to the 0.4 % class imbalance.
//
// Baselines:
//  * GBC (Mei et al. [49])      — lower-layer radio features, offline 60/40.
//  * Stacked LSTM (Ozturk [57]) — location + speed sequences, offline 60/40.
// Prognos trains on nothing; it runs incrementally through the corpus and
// is scored on the same test portion as the baselines.
#pragma once

#include <string>
#include <vector>

#include "core/prognos.h"
#include "ml/metrics.h"
#include "trace/trace.h"

namespace p5g::analysis {

inline constexpr int kNumHoClasses = 8;  // 0 = none, 1..7 = HoType

int ho_class(ran::HoType t);
ran::HoType class_ho(int cls);

// Per-tick ground-truth labels for one trace.
std::vector<int> ground_truth(const trace::TraceLog& log, Seconds horizon = 1.0_s);

struct PrognosRunOptions {
  core::Prognos::Config config{};
  bool bootstrap = false;
  Seconds horizon{1.0};
};

struct PrognosRunResult {
  std::vector<int> predicted;           // per-tick class labels
  std::vector<double> lead_times_s;     // lead time of each first correct hit
  std::vector<double> f1_over_time;     // rolling event-F1 per minute
  long patterns_learned = 0;
  long patterns_evicted = 0;
  Seconds duration{0.0};
};
// Runs Prognos over traces sequentially (continuous incremental learning).
// Results are concatenated in trace order.
PrognosRunResult run_prognos(const std::vector<trace::TraceLog>& traces,
                             const PrognosRunOptions& options);

// Offline baselines. Both are trained on the first `train_frac` of traces
// and emit predictions for ALL ticks (callers slice out the test portion).
std::vector<int> run_gbc(const std::vector<trace::TraceLog>& traces,
                         double train_frac, Seconds horizon = 1.0_s);
std::vector<int> run_lstm(const std::vector<trace::TraceLog>& traces,
                          double train_frac, Seconds horizon = 1.0_s);

// Feature extraction shared with tests.
std::vector<double> gbc_features(const trace::TickRecord& tick);

struct MethodResult {
  std::string method;
  ml::EventScores scores;
};

// The Table 3 evaluation: all three methods on a trace corpus, scored on
// the ticks belonging to the last (1 - train_frac) traces.
std::vector<MethodResult> evaluate_predictors(const std::vector<trace::TraceLog>& traces,
                                              double train_frac = 0.6,
                                              Seconds horizon = 1.0_s);

}  // namespace p5g::analysis
