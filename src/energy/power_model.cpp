#include "energy/power_model.h"

namespace p5g::energy {
namespace {

constexpr double kPowerPerMessage = 0.08;  // W per RRC/MAC message

double base_power(ran::HoType type, radio::Band band) {
  switch (ran::ho_arch(type)) {
    case ran::HoArch::kLte:
      return 0.40;
    case ran::HoArch::kSa:
      return 0.60;
    case ran::HoArch::kNsa:
      // Both radios are involved in NSA procedures; mmWave's improved
      // (short-format) RACH makes its per-HO power lower than sub-6.
      return band == radio::Band::kNrMmWave ? 0.55 : 1.10;
  }
  return 0.5;
}

Seconds tail_window(radio::Band band, ran::HoArch arch) {
  if (arch == ran::HoArch::kLte) return 0.20_s;
  if (arch == ran::HoArch::kSa) return 0.25_s;
  return band == radio::Band::kNrMmWave ? 0.28_s : 0.35_s;
}

}  // namespace

Watts ho_power(ran::HoType type, radio::Band band, const ran::SignalingCounts& s) {
  return base_power(type, band) + kPowerPerMessage * (s.rrc + s.mac);
}

Seconds ho_energy_window(radio::Band band, const ran::HoTiming& timing) {
  // The band argument decides the tail; arch is inferred at call sites via
  // ho_energy_joules. Here we return duration + sub-6 NSA tail by default.
  return ms_to_s(timing.total_ms()) + tail_window(band, ran::HoArch::kNsa);
}

double ho_energy_joules(const ran::HandoverRecord& rec) {
  const radio::Band band = ran::ho_is_5g_procedure(rec.type) ? rec.dst_band
                                                             : rec.src_band;
  const Watts p = ho_power(rec.type, band, rec.signaling);
  const Seconds window =
      ms_to_s(rec.timing.total_ms()) + tail_window(band, ran::ho_arch(rec.type));
  return p * window.v;
}

MilliampHours ho_energy_mah(const ran::HandoverRecord& rec) {
  return joules_to_mah(ho_energy_joules(rec));
}

EnergySummary summarize(const std::vector<ran::HandoverRecord>& hos) {
  EnergySummary s;
  double power_acc = 0.0;
  for (const ran::HandoverRecord& h : hos) {
    ++s.handovers;
    s.joules += ho_energy_joules(h);
    const radio::Band band =
        ran::ho_is_5g_procedure(h.type) ? h.dst_band : h.src_band;
    power_acc += ho_power(h.type, band, h.signaling);
  }
  s.mah = joules_to_mah(s.joules);
  if (s.handovers > 0) s.mean_power = power_acc / s.handovers;
  return s;
}

double equivalent_download_gb(radio::Band band, MilliampHours mah) {
  // GB per mAh from the quoted throughput-power slopes.
  const double gb_per_mah = band == radio::Band::kNrMmWave ? 75.4 / 81.7 : 4.3 / 34.7;
  return gb_per_mah * mah;
}

double equivalent_upload_gb(radio::Band band, MilliampHours mah) {
  const double gb_per_mah = band == radio::Band::kNrMmWave ? 14.5 / 81.7 : 2.0 / 34.7;
  return gb_per_mah * mah;
}

}  // namespace p5g::energy
