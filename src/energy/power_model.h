// UE energy model for handovers (§5.3 / Fig. 10).
//
// The paper measures, with a Monsoon power monitor, the extra power a HO
// draws over baseline and finds it positively correlated with the number of
// HO signaling messages. We model per-HO power as
//     P = base(arch/band) + k * (rrc + mac messages)
// and per-HO energy as P integrated over the HO duration plus a band-
// dependent "elevated radio state" tail window.
//
// Calibration targets (from the paper):
//   * LTE HO        ~0.78 W, ~0.22 J  (3.4 mAh for an hour at 130 km/h)
//   * NSA low-band  ~1.2-2.3 x LTE per-HO power, ~0.86 J (34.7 mAh/h)
//   * NSA mmWave    single HO ~54 % more energy-efficient than low-band,
//                   but 1.9-2.4 x MORE energy per km due to HO frequency
#pragma once

#include "common/units.h"
#include "ran/handover.h"

namespace p5g::energy {

// Average extra power drawn while performing one HO (above baseline).
Watts ho_power(ran::HoType type, radio::Band band, const ran::SignalingCounts& s);

// Window over which that power is drawn: T1 + T2 plus the post-HO elevated
// radio tail.
Seconds ho_energy_window(radio::Band band, const ran::HoTiming& timing);

// Energy of one HO in joules / mAh.
double ho_energy_joules(const ran::HandoverRecord& rec);
MilliampHours ho_energy_mah(const ran::HandoverRecord& rec);

// Aggregate over a set of HOs.
struct EnergySummary {
  int handovers = 0;
  double joules = 0.0;
  MilliampHours mah = 0.0;
  Watts mean_power = 0.0;  // mean per-HO power
};
EnergySummary summarize(const std::vector<ran::HandoverRecord>& hos);

// Equivalent bulk data volume (GB) transferable with `mah`, using the
// throughput-power slopes of Narayanan et al. (Table 8 of [54]) that the
// paper quotes: NSA low-band ~4.3 GB down / 2.0 GB up per 34.7 mAh;
// mmWave ~75.4 GB down / 14.5 GB up per 81.7 mAh.
double equivalent_download_gb(radio::Band band, MilliampHours mah);
double equivalent_upload_gb(radio::Band band, MilliampHours mah);

}  // namespace p5g::energy
