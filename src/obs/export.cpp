#include "obs/export.h"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace p5g::obs {

namespace {

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no inf/nan literals; clamp to null-free sentinels.
  if (std::strstr(buf, "inf") || std::strstr(buf, "nan")) return "0";
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

// ---------------------------------------------------------- JsonWriter --

void JsonWriter::comma_and_indent() {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  out_ += '\n';
  out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::key_prefix(std::string_view key) {
  comma_and_indent();
  if (!key.empty()) {
    out_ += '"';
    out_ += escape(key);
    out_ += "\": ";
  }
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  if (has_items_.empty() && out_.empty()) {
    out_ += '{';  // root object: no leading newline
  } else {
    key_prefix(key);
    out_ += '{';
  }
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
  }
  out_ += '}';
  if (has_items_.empty()) out_ += '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view v) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, const char* v) {
  return field(key, std::string_view(v));
}
JsonWriter& JsonWriter::field(std::string_view key, double v) {
  key_prefix(key);
  out_ += fmt_double(v);
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  out_ += fmt_u64(v);
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, int v) {
  key_prefix(key);
  out_ += std::to_string(v);
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, unsigned v) {
  key_prefix(key);
  out_ += std::to_string(v);
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, bool v) {
  key_prefix(key);
  out_ += v ? "true" : "false";
  return *this;
}
JsonWriter& JsonWriter::element(double v) {
  comma_and_indent();
  out_ += fmt_double(v);
  return *this;
}
JsonWriter& JsonWriter::element(std::uint64_t v) {
  comma_and_indent();
  out_ += fmt_u64(v);
  return *this;
}
JsonWriter& JsonWriter::element(std::string_view v) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

// --------------------------------------------------------------- parser --

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (i >= s.size()) {
      ok = false;
      return {};
    }
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (s.substr(i, 4) == "null") {
        i += 4;
        return {};
      }
      ok = false;
      return {};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    while (ok) {
      skip_ws();
      JsonValue key = string_value();
      if (!ok || !consume(':')) {
        ok = false;
        break;
      }
      v.object.emplace(key.string, value());
      if (consume('}')) break;
      if (!consume(',')) {
        ok = false;
        break;
      }
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    while (ok) {
      v.array.push_back(value());
      if (consume(']')) break;
      if (!consume(',')) {
        ok = false;
        break;
      }
    }
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    if (!consume('"')) {
      ok = false;
      return v;
    }
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          case 'r': v.string += '\r'; break;
          default: v.string += s[i];
        }
      } else {
        v.string += s[i];
      }
      ++i;
    }
    if (i >= s.size()) {
      ok = false;
      return v;
    }
    ++i;  // closing quote
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (s.substr(i, 4) == "true") {
      v.boolean = true;
      i += 4;
    } else if (s.substr(i, 5) == "false") {
      v.boolean = false;
      i += 5;
    } else {
      ok = false;
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E')) {
      ++i;
    }
    if (i == start) {
      ok = false;
      return v;
    }
    v.number = std::strtod(std::string(s.substr(start, i - start)).c_str(), nullptr);
    return v;
  }
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  Parser p{text};
  JsonValue v = p.value();
  p.skip_ws();
  if (!p.ok || p.i != text.size()) return std::nullopt;
  return v;
}

// -------------------------------------------------------- re-serializer --

namespace {

void write_value(const JsonValue& v, std::string& out, std::size_t depth) {
  const auto indent = [&out](std::size_t d) { out.append(2 * d, ' '); };
  switch (v.type) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Type::kNumber: out += fmt_double(v.number); break;
    case JsonValue::Type::kString:
      out += '"';
      out += escape(v.string);
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out += ',';
        first = false;
        out += '\n';
        indent(depth + 1);
        write_value(e, out, depth + 1);
      }
      out += '\n';
      indent(depth);
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, e] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '\n';
        indent(depth + 1);
        out += '"';
        out += escape(key);
        out += "\": ";
        write_value(e, out, depth + 1);
      }
      out += '\n';
      indent(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string to_json(const JsonValue& v) {
  std::string out;
  write_value(v, out, 0);
  if (v.type == JsonValue::Type::kObject) out += '\n';  // match JsonWriter
  return out;
}

// ------------------------------------------------------ metrics reports --

std::string to_json(const MetricsSnapshot& s, const RunManifest* manifest,
                    bool counters_only) {
  JsonWriter w;
  w.begin_object();
  if (manifest && !counters_only) {
    w.begin_object("manifest");
    w.field("run", manifest->run);
    w.field("seed", static_cast<std::uint64_t>(manifest->seed));
    w.field("git_describe", manifest->git_describe);
    w.field("build_type", manifest->build_type);
    w.field("wall_seconds", manifest->wall_seconds);
    w.field("ticks", static_cast<std::uint64_t>(manifest->ticks));
    w.begin_array("warnings");
    for (const std::string& warning : manifest->warnings) w.element(warning);
    w.end_array();
    w.end_object();
  }
  w.begin_object("counters");
  for (const auto& [name, v] : s.counters) w.field(name, v);
  w.end_object();
  if (!counters_only) {
    w.begin_object("gauges");
    for (const auto& [name, v] : s.gauges) w.field(name, v);
    w.end_object();
    w.begin_object("histograms");
    for (const HistogramSnapshot& h : s.histograms) {
      w.begin_object(h.name);
      w.field("count", h.count);
      w.field("sum", h.sum);
      w.field("min", h.min);
      w.field("max", h.max);
      w.begin_array("bounds");
      for (double b : h.bounds) w.element(b);
      w.end_array();
      w.begin_array("buckets");
      for (std::uint64_t b : h.buckets) w.element(b);
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

io::IoResult write_csv(const MetricsSnapshot& s, const std::string& path) {
  std::ostringstream out;
  out << "metric,kind,field,value\n";
  for (const auto& [name, v] : s.counters) {
    out << name << ",counter,value," << v << '\n';
  }
  for (const auto& [name, v] : s.gauges) {
    out << name << ",gauge,value," << fmt_double(v) << '\n';
  }
  for (const HistogramSnapshot& h : s.histograms) {
    out << h.name << ",histogram,count," << h.count << '\n';
    out << h.name << ",histogram,sum," << fmt_double(h.sum) << '\n';
    out << h.name << ",histogram,min," << fmt_double(h.min) << '\n';
    out << h.name << ",histogram,max," << fmt_double(h.max) << '\n';
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << h.name << ",histogram,le_"
          << (i < h.bounds.size() ? fmt_double(h.bounds[i]) : "inf") << ','
          << h.buckets[i] << '\n';
    }
  }
  return io::atomic_write_file(path, out.str());
}

std::optional<ParsedMetrics> parse_metrics_json(std::string_view text) {
  const std::optional<JsonValue> root = parse_json(text);
  if (!root || root->type != JsonValue::Type::kObject) return std::nullopt;
  ParsedMetrics out;
  if (const JsonValue* c = root->get("counters")) {
    for (const auto& [name, v] : c->object) {
      out.counters[name] = static_cast<std::uint64_t>(v.number);
    }
  }
  if (const JsonValue* g = root->get("gauges")) {
    for (const auto& [name, v] : g->object) out.gauges[name] = v.number;
  }
  if (const JsonValue* hs = root->get("histograms")) {
    for (const auto& [name, v] : hs->object) {
      HistogramSnapshot h;
      h.name = name;
      if (const JsonValue* f = v.get("count")) {
        h.count = static_cast<std::uint64_t>(f->number);
      }
      if (const JsonValue* f = v.get("sum")) h.sum = f->number;
      if (const JsonValue* f = v.get("min")) h.min = f->number;
      if (const JsonValue* f = v.get("max")) h.max = f->number;
      if (const JsonValue* f = v.get("bounds")) {
        for (const JsonValue& b : f->array) h.bounds.push_back(b.number);
      }
      if (const JsonValue* f = v.get("buckets")) {
        for (const JsonValue& b : f->array) {
          h.buckets.push_back(static_cast<std::uint64_t>(b.number));
        }
      }
      out.histograms.emplace(name, std::move(h));
    }
  }
  return out;
}

bool write_report(const std::string& path, const MetricsSnapshot& s,
                  const RunManifest& manifest) {
  const io::IoResult json_res = io::atomic_write_file(path, to_json(s, &manifest));
  if (!json_res) {
    std::fprintf(stderr, "obs: cannot write %s: %s\n", path.c_str(),
                 json_res.error.c_str());
    return false;
  }
  const io::IoResult csv_res = write_csv(s, path + ".csv");
  if (!csv_res) {
    std::fprintf(stderr, "obs: cannot write %s.csv: %s\n", path.c_str(),
                 csv_res.error.c_str());
    return false;
  }
  return true;
}

bool export_from_args(int argc, char** argv, std::string_view run_name,
                      std::uint64_t seed) {
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      path = argv[i + 1];
    }
  }
  if (!path) return false;
  RunManifest m = make_manifest(std::string(run_name), seed);
  m.wall_seconds = process_uptime_seconds();
  m.ticks = registry().counter("p5g.sim.ticks").value();
  const bool ok = write_report(path, registry().snapshot(), m);
  if (ok) std::printf("  wrote metrics report %s (+%s.csv)\n", path, path);
  return ok;
}

}  // namespace p5g::obs
