#include "obs/manifest.h"

#include <sstream>
#include <string_view>

#include "common/chaos.h"
#include "common/io.h"
#include "obs/metrics.h"

#ifndef P5G_GIT_DESCRIBE
#define P5G_GIT_DESCRIBE "unknown"
#endif
#ifndef P5G_BUILD_TYPE
#define P5G_BUILD_TYPE "unknown"
#endif

namespace p5g::obs {

RunManifest make_manifest(std::string run, std::uint64_t seed) {
  RunManifest m;
  m.run = std::move(run);
  m.seed = seed;
  m.git_describe = P5G_GIT_DESCRIBE;
  m.build_type = P5G_BUILD_TYPE;

  // A "-dirty" describe means the binary was configured from uncommitted
  // sources: the provenance line cannot reproduce this run. Say so in every
  // report instead of recording the dirty build silently.
  constexpr std::string_view kDirty = "-dirty";
  if (m.git_describe.size() >= kDirty.size() &&
      m.git_describe.compare(m.git_describe.size() - kDirty.size(),
                             kDirty.size(), kDirty) == 0) {
    m.warnings.push_back(
        "build: configured from a dirty working tree (git describe '" +
        m.git_describe + "'); this run is not reproducible from the commit");
  }

  // Surface the CSV ragged-row tolerance counters (common/csv pads or
  // truncates mismatched rows instead of throwing; the counts land here).
  const std::uint64_t read_ragged =
      registry().counter("p5g.csv.read_ragged_rows").value();
  const std::uint64_t write_ragged =
      registry().counter("p5g.csv.write_ragged_rows").value();
  if (read_ragged > 0) {
    std::ostringstream os;
    os << "csv: " << read_ragged << " ragged row(s) tolerated on read";
    m.warnings.push_back(os.str());
  }
  if (write_ragged > 0) {
    std::ostringstream os;
    os << "csv: " << write_ragged << " ragged row(s) padded/truncated on write";
    m.warnings.push_back(os.str());
  }

  // Mirror the below-obs resilience layers (common/io, common/chaos keep
  // their own std::atomic tallies — see the DAG note in common/io.h) into
  // p5g.resilience.* gauges so every exported report carries them.
  const io::IoStats io = io::io_stats();
  const chaos::ChaosStats ch = chaos::chaos_stats();
  registry().gauge("p5g.resilience.io_writes").set(static_cast<double>(io.writes));
  registry().gauge("p5g.resilience.io_retries").set(static_cast<double>(io.retries));
  registry().gauge("p5g.resilience.io_failures").set(static_cast<double>(io.failures));
  registry()
      .gauge("p5g.resilience.io_chaos_injected")
      .set(static_cast<double>(io.chaos_injected));
  registry()
      .gauge("p5g.resilience.chaos_task_faults")
      .set(static_cast<double>(ch.task_faults));
  registry().gauge("p5g.resilience.chaos_stalls").set(static_cast<double>(ch.stalls));

  // Anything that lost work or data is a manifest warning: a report whose
  // run quarantined tasks or dropped writes must say so up front.
  auto warn_count = [&m](std::uint64_t n, const char* what) {
    if (n == 0) return;
    std::ostringstream os;
    os << "resilience: " << n << ' ' << what;
    m.warnings.push_back(os.str());
  };
  warn_count(registry().counter("p5g.resilience.pool_jobs_failed").value(),
             "pool job(s) threw and were captured");
  warn_count(registry().counter("p5g.resilience.scenarios_quarantined").value(),
             "scenario task(s) quarantined");
  warn_count(registry().counter("p5g.resilience.ues_quarantined").value(),
             "fleet UE task(s) quarantined");
  warn_count(registry().counter("p5g.resilience.watchdog_flags").value(),
             "task(s) flagged by the watchdog as stuck");
  warn_count(registry().counter("p5g.resilience.checkpoint_rejected").value(),
             "checkpoint load(s) rejected (corrupt or mismatched)");
  warn_count(io.retries, "file write attempt(s) retried");
  warn_count(io.failures, "file write(s) failed after exhausting retries");
  return m;
}

}  // namespace p5g::obs
