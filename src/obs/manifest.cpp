#include "obs/manifest.h"

#include <sstream>

#include "obs/metrics.h"

#ifndef P5G_GIT_DESCRIBE
#define P5G_GIT_DESCRIBE "unknown"
#endif
#ifndef P5G_BUILD_TYPE
#define P5G_BUILD_TYPE "unknown"
#endif

namespace p5g::obs {

RunManifest make_manifest(std::string run, std::uint64_t seed) {
  RunManifest m;
  m.run = std::move(run);
  m.seed = seed;
  m.git_describe = P5G_GIT_DESCRIBE;
  m.build_type = P5G_BUILD_TYPE;

  // Surface the CSV ragged-row tolerance counters (common/csv pads or
  // truncates mismatched rows instead of throwing; the counts land here).
  const std::uint64_t read_ragged =
      registry().counter("p5g.csv.read_ragged_rows").value();
  const std::uint64_t write_ragged =
      registry().counter("p5g.csv.write_ragged_rows").value();
  if (read_ragged > 0) {
    std::ostringstream os;
    os << "csv: " << read_ragged << " ragged row(s) tolerated on read";
    m.warnings.push_back(os.str());
  }
  if (write_ragged > 0) {
    std::ostringstream os;
    os << "csv: " << write_ragged << " ragged row(s) padded/truncated on write";
    m.warnings.push_back(os.str());
  }
  return m;
}

}  // namespace p5g::obs
