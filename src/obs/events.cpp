#include "obs/events.h"

#include "common/units.h"

#include <algorithm>
#include <chrono>

namespace p5g::obs {

namespace {

std::atomic<bool> g_events_enabled{true};
thread_local std::uint32_t t_trace_ue = 0;

}  // namespace

bool events_enabled() noexcept {
  return g_events_enabled.load(std::memory_order_relaxed);
}

void set_events_enabled(bool on) noexcept {
  g_events_enabled.store(on, std::memory_order_relaxed);
}

std::string_view category_name(EventCategory c) noexcept {
  switch (c) {
    case EventCategory::kTick: return "tick";
    case EventCategory::kMmObserve: return "mm.observe";
    case EventCategory::kMmDecide: return "mm.decide";
    case EventCategory::kHoPrep: return "ho.prep";
    case EventCategory::kHoExec: return "ho.exec";
    case EventCategory::kHoComplete: return "ho.complete";
    case EventCategory::kRlf: return "rlf";
    case EventCategory::kRachRetry: return "rach.retry";
    case EventCategory::kPoolTask: return "pool.task";
    case EventCategory::kCheckpoint: return "checkpoint";
    case EventCategory::kAppOutage: return "app.outage";
  }
  return "unknown";
}

bool category_from_name(std::string_view name, EventCategory& out) noexcept {
  for (std::size_t i = 0; i < kEventCategories; ++i) {
    const auto c = static_cast<EventCategory>(i);
    if (category_name(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

namespace detail {

// One thread's ring. Single producer (the leasing thread); the registry
// mutex serializes lease handoff, snapshot() and clear(). `n` is the total
// ever emitted into this ring: slot k of event number k is ring[k % size],
// so retained = min(n, size) and dropped = n - retained.
struct EventBuffer {
  explicit EventBuffer(std::size_t cap) : ring(cap) {}
  std::vector<Event> ring;
  std::atomic<std::uint64_t> n{0};
  std::atomic<bool> leased{true};
};

}  // namespace detail

namespace {

// Releases the thread's ring lease on thread exit so a later thread (e.g.
// the next bench's pool worker) reuses the ring instead of growing the
// registry without bound.
struct BufferLease {
  detail::EventBuffer* buffer = nullptr;
  std::uint64_t epoch = ~0ull;
  ~BufferLease() {
    if (buffer) buffer->leased.store(false, std::memory_order_release);
  }
};

thread_local BufferLease t_lease;

}  // namespace

EventLog::EventLog() = default;
EventLog::~EventLog() = default;

detail::EventBuffer& EventLog::local() {
  const std::uint64_t epoch = lease_epoch_.load(std::memory_order_acquire);
  if (t_lease.buffer != nullptr && t_lease.epoch == epoch) {
    return *t_lease.buffer;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (t_lease.buffer != nullptr) {
    t_lease.buffer->leased.store(false, std::memory_order_release);
    t_lease.buffer = nullptr;
  }
  for (const std::unique_ptr<detail::EventBuffer>& b : buffers_) {
    if (!b->leased.load(std::memory_order_acquire) &&
        b->ring.size() == capacity_) {
      b->leased.store(true, std::memory_order_release);
      t_lease.buffer = b.get();
      break;
    }
  }
  if (t_lease.buffer == nullptr) {
    buffers_.push_back(std::make_unique<detail::EventBuffer>(capacity_));
    t_lease.buffer = buffers_.back().get();
  }
  t_lease.epoch = epoch;
  return *t_lease.buffer;
}

void EventLog::emit(const Event& e) {
  if (!events_enabled()) return;
  detail::EventBuffer& b = local();
  const std::uint64_t k = b.n.load(std::memory_order_relaxed);
  Event& slot = b.ring[static_cast<std::size_t>(k % b.ring.size())];
  slot = e;
  slot.ue = t_trace_ue;
  // Release so a post-quiesce snapshot that acquires `n` sees the payload.
  b.n.store(k + 1, std::memory_order_release);
}

std::uint64_t EventLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<detail::EventBuffer>& b : buffers_) {
    total += b->n.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t EventLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<detail::EventBuffer>& b : buffers_) {
    const std::uint64_t n = b->n.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    total += n > cap ? n - cap : 0;
  }
  return total;
}

void EventLog::set_capacity(std::size_t events) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(events, 1);
  lease_epoch_.fetch_add(1, std::memory_order_release);
}

std::size_t EventLog::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<detail::EventBuffer>& b : buffers_) {
      const std::uint64_t n = b->n.load(std::memory_order_acquire);
      const std::uint64_t cap = b->ring.size();
      const std::uint64_t kept = std::min(n, cap);
      for (std::uint64_t k = n - kept; k < n; ++k) {
        out.push_back(b->ring[static_cast<std::size_t>(k % cap)]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (!bit_equal(a.t0, b.t0)) return a.t0 < b.t0;
    if (a.ue != b.ue) return a.ue < b.ue;
    if (a.flow != b.flow) return a.flow < b.flow;
    return static_cast<int>(a.category) < static_cast<int>(b.category);
  });
  return out;
}

void EventLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<detail::EventBuffer>& b : buffers_) {
    b->n.store(0, std::memory_order_release);
  }
}

EventLog& event_log() {
  // Leaked like obs::registry(): producer threads may outlive static
  // destruction order, and rings of exited threads must stay readable.
  static EventLog* log = new EventLog();
  return *log;
}

std::uint64_t next_flow_id() noexcept {
  static std::atomic<std::uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

void set_trace_ue(std::uint32_t ue) noexcept { t_trace_ue = ue; }

std::uint32_t trace_ue() noexcept { return t_trace_ue; }

double wall_track_now() noexcept {
  using WallClock = std::chrono::steady_clock;
  static const WallClock::time_point epoch = WallClock::now();
  return std::chrono::duration<double>(WallClock::now() - epoch).count();
}

EventSpan::EventSpan(EventCategory category, Event proto, bool active)
    : proto_(proto), active_(active && events_enabled()) {
  proto_.category = category;
  proto_.kind = EventKind::kWallSpan;
  if (active_) proto_.t0 = wall_track_now();
}

EventSpan::~EventSpan() {
  if (!active_) return;
  proto_.t1 = wall_track_now();
  event_log().emit(proto_);
}

}  // namespace p5g::obs
