// Scoped (RAII) phase timers recording into obs::Histogram, plus a
// deterministic sampling helper for per-tick phases where even two clock
// reads per tick would eat the overhead budget.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace p5g::obs {

using ObsClock = std::chrono::steady_clock;

inline double ms_since(ObsClock::time_point start) noexcept {
  return std::chrono::duration<double, std::milli>(ObsClock::now() - start).count();
}

// Times the enclosing scope and records the duration (milliseconds) into a
// histogram on destruction. When the layer is disabled — or the optional
// `active` argument is false (sampled call sites) — neither clock read
// happens.
class ObsTimer {
 public:
  explicit ObsTimer(Histogram& h, bool active = true) noexcept
      : h_(h), active_(active && enabled()) {
    if (active_) start_ = ObsClock::now();
  }
  ~ObsTimer() {
    if (active_) h_.record(ms_since(start_));
  }

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

 private:
  Histogram& h_;
  bool active_;
  ObsClock::time_point start_{};
};

// Deterministic 1-in-2^k sampler for hot loops: `sampler.next()` is true on
// every (2^k)-th call. Pure modular counting — no RNG, no clock — so
// sampling can never perturb simulation behaviour.
class SampleEvery {
 public:
  explicit SampleEvery(unsigned log2_period) noexcept
      : mask_((1u << log2_period) - 1u) {}
  bool next() noexcept { return (n_++ & mask_) == 0; }

 private:
  unsigned mask_;
  unsigned n_ = 0;
};

}  // namespace p5g::obs
