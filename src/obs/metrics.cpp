#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace p5g::obs {

namespace {

std::atomic<bool> g_enabled{true};

// Default bucket ladder for timing histograms: milliseconds, 1us..10s in
// roughly 1-2.5-5 steps. Wide enough for a 4us tick and a minutes-long
// scenario alike.
constexpr double kDefaultBoundsMs[] = {0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,
                                       0.1,   0.25,   0.5,   1.0,   2.5,   5.0,
                                       10.0,  25.0,   50.0,  100.0, 250.0, 500.0,
                                       1000.0, 2500.0, 5000.0, 10000.0};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

unsigned shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // A name must stay one kind forever: exporters key rows by name, so a
    // counter/gauge collision would silently merge unrelated series.
    P5G_REQUIRE(gauges_.find(name) == gauges_.end(),
                "metric name already registered as a gauge");
    P5G_REQUIRE(histograms_.find(name) == histograms_.end(),
                "metric name already registered as a histogram");
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    P5G_REQUIRE(counters_.find(name) == counters_.end(),
                "metric name already registered as a counter");
    P5G_REQUIRE(histograms_.find(name) == histograms_.end(),
                "metric name already registered as a histogram");
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    P5G_REQUIRE(counters_.find(name) == counters_.end(),
                "metric name already registered as a counter");
    P5G_REQUIRE(gauges_.find(name) == gauges_.end(),
                "metric name already registered as a gauge");
    const std::span<const double> b =
        bounds.empty() ? std::span<const double>(kDefaultBoundsMs) : bounds;
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(b))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.buckets.size(); ++i) hs.buckets[i] = h->bucket(i);
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = hs.count ? h->min() : 0.0;
    hs.max = hs.count ? h->max() : 0.0;
    out.histograms.push_back(std::move(hs));
  }
  return out;  // std::map iteration order == name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

}  // namespace p5g::obs
