// Exporters: turn a MetricsSnapshot (+ RunManifest) into JSON or CSV, plus
// the tiny JSON reader used for round-trip tests and by tooling that
// consumes the reports. Every bench and example shares this one emitter —
// `--metrics-out <path>` on any of them produces the same schema:
//
//   {
//     "manifest":   { run, seed, git_describe, build_type, wall_seconds,
//                     ticks, warnings: [...] },
//     "counters":   { "p5g.sim.ticks": 36000, ... },
//     "gauges":     { "p5g.pool.queue_depth": 0, ... },
//     "histograms": { "p5g.sim.tick_ms": { count, sum, min, max,
//                                          bounds: [...], buckets: [...] } }
//   }
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace p5g::obs {

// ------------------------------------------------------------------ JSON --
// Minimal append-only JSON builder (objects, arrays, scalar fields) shared
// by the metrics exporter and the bench harnesses, so no bench hand-rolls
// fprintf-JSON again. Doubles are emitted with %.17g: round-trip exact.
class JsonWriter {
 public:
  JsonWriter& begin_object(std::string_view key = {});
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();
  JsonWriter& field(std::string_view key, std::string_view v);
  JsonWriter& field(std::string_view key, const char* v);
  JsonWriter& field(std::string_view key, double v);
  JsonWriter& field(std::string_view key, std::uint64_t v);
  JsonWriter& field(std::string_view key, int v);
  JsonWriter& field(std::string_view key, unsigned v);
  JsonWriter& field(std::string_view key, bool v);
  JsonWriter& element(double v);
  JsonWriter& element(std::uint64_t v);
  JsonWriter& element(std::string_view v);
  std::string str() const { return out_; }

 private:
  void comma_and_indent();
  void key_prefix(std::string_view key);
  std::string out_;
  std::vector<bool> has_items_;  // per open scope
};

// Parsed JSON value (just enough for our reports; no unicode escapes).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(std::string_view key) const;
};

// Returns nullopt on malformed input.
std::optional<JsonValue> parse_json(std::string_view text);

// Re-serialize a parsed (possibly edited) JsonValue tree with the same
// formatting as JsonWriter produces. round-trips parse_json output; lets
// tools read a report, splice in a section, and write it back.
std::string to_json(const JsonValue& v);

// ------------------------------------------------------- metrics reports --
// `counters_only` emits just the {"counters": {...}} object — the
// deterministic subset used by the golden-file regression (timings and wall
// clock vary run to run; event counts for a fixed seed must not).
std::string to_json(const MetricsSnapshot& s, const RunManifest* manifest = nullptr,
                    bool counters_only = false);

// Flat CSV: metric,kind,field,value (one row per scalar; histograms expand
// to count/sum/min/max plus one `le_<bound>` row per bucket). Durable
// atomic write (tmp + fsync + rename, retried).
io::IoResult write_csv(const MetricsSnapshot& s, const std::string& path);

// Snapshot re-read from an exported JSON report (manifest ignored).
struct ParsedMetrics {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};
std::optional<ParsedMetrics> parse_metrics_json(std::string_view text);

// -------------------------------------------------------------- CLI hook --
// Scans argv for `--metrics-out <path>`; when present, snapshots the global
// registry and writes the JSON report to <path> and the CSV twin to
// <path>.csv. The manifest gets `run`/`seed` from the arguments, provenance
// from the build, warnings from the registry, and wall_seconds measured
// since process start. Returns true when a report was written. Call it at
// the end of main() — two lines give any bench or example `--metrics-out`.
bool export_from_args(int argc, char** argv, std::string_view run_name,
                      std::uint64_t seed = 0);

// Non-CLI variant for callers that assembled their own manifest. Both files
// (JSON + CSV twin) go through the durable atomic writer; false (with the
// cause on stderr) when either write ultimately fails.
bool write_report(const std::string& path, const MetricsSnapshot& s,
                  const RunManifest& manifest);

// Seconds since this process initialised the obs library (static init).
double process_uptime_seconds();

}  // namespace p5g::obs
