// Observability core: a process-wide registry of named counters, gauges and
// fixed-bucket histograms, cheap enough to live on the simulator's per-tick
// hot path.
//
// Design constraints (see DESIGN.md "Observability"):
//   * Hot-path writes are lock-free: counters are relaxed fetch_adds on
//     cache-line-padded per-thread shards, aggregated only on snapshot().
//   * Instrumentation must never perturb simulation behaviour — metrics
//     touch no RNG stream and no simulation state, so the zero-fault golden
//     trace stays byte-identical with observability enabled or disabled.
//   * The whole layer can be disabled at runtime (obs::set_enabled(false));
//     disabled call sites skip clock reads and atomic writes, which is the
//     "no-op registry" baseline the bench_perf overhead A/B compares against.
//   * Metric names follow `p5g.<subsystem>.<name>` (e.g. p5g.sim.ticks).
//
// This library deliberately depends on nothing but the C++ standard library
// so every other layer (common, ran, sim, trace, benches) can link it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace p5g::obs {

// Global kill switch for the whole layer. Relaxed load on every hot-path
// operation; flipping it mid-run is safe (counts just stop/resume).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
// Index of the calling thread's counter shard (stable per thread).
unsigned shard_index() noexcept;
inline constexpr unsigned kShards = 8;

struct alignas(64) PaddedAtomic {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

// Monotonic event count. add() is a relaxed fetch_add on the calling
// thread's shard; value() sums shards (approximate only while writers are
// concurrently active, exact after they quiesce).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedAtomic, detail::kShards> shards_{};
};

// Last-write-wins instantaneous value (queue depth, active workers, thread
// count). Signed so add(-1) works for up/down tracking.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
// implicit overflow bucket counts the rest. Values are unit-free doubles —
// by convention timing histograms record milliseconds (suffix `_ms`).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds)
      : bounds_(bounds.begin(), bounds.end()),
        buckets_(bounds.size() + 1) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      P5G_REQUIRE(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
    }
  }

  void record(double v) noexcept {
    if (!enabled()) return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].v.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
    atomic_min(min_, v);
    atomic_max(max_, v);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].v.load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.v.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  }

 private:
  static void atomic_min(std::atomic<double>& slot, double v) noexcept {
    double cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& slot, double v) noexcept {
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<double> bounds_;
  std::vector<detail::PaddedAtomic> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Point-in-time copy of every registered metric, safe to serialize or
// compare after the producing threads have quiesced.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted
};

// Named-metric registry. Registration takes a mutex; the returned
// references are stable for the registry's lifetime, so hot call sites
// resolve them once (static local or constructor member) and then write
// lock-free.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Bounds are fixed on first registration; later lookups of the same name
  // ignore the argument. Empty bounds pick the default latency ladder
  // (milliseconds, 1us..10s).
  Histogram& histogram(std::string_view name, std::span<const double> bounds = {});

  MetricsSnapshot snapshot() const;
  // Zeroes every registered metric (registrations survive). Test helper;
  // not meant to race live writers.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry every instrumented subsystem writes to.
MetricsRegistry& registry();

}  // namespace p5g::obs
