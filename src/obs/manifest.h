// Run provenance: what produced a trace or a metrics report. Attached to
// every trace::TraceLog and emitted by the exporters next to the metric
// snapshot, so any CSV/JSON artifact can be traced back to the exact
// scenario, seed, commit, and build that generated it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p5g::obs {

struct RunManifest {
  std::string run;           // scenario / bench / app name
  std::uint64_t seed = 0;
  std::string git_describe;  // `git describe --always --dirty` at configure
  std::string build_type;    // CMAKE_BUILD_TYPE
  double wall_seconds = 0.0; // end-to-end wall time of the run
  std::uint64_t ticks = 0;   // simulation ticks executed (0 for non-sim runs)
  // Data-quality flags raised during the run (e.g. nonzero CSV ragged-row
  // counters). Empty on a clean run.
  std::vector<std::string> warnings;
};

// Fills provenance fields (git describe, build type) baked in at configure
// time and scans the global registry for data-quality warnings — today the
// `p5g.csv.*_ragged_rows` counters, which used to be counted but silently
// dropped.
RunManifest make_manifest(std::string run, std::uint64_t seed = 0);

}  // namespace p5g::obs
