// HO flight recorder: a process-wide log of fixed-size binary span/instant
// events on per-thread overwrite-oldest ring buffers. This is the event-level
// complement to the metrics registry — metrics answer "how many / how long on
// average", the flight recorder answers "show me THIS handover's timeline"
// (the paper's vivisection view: trigger -> preparation -> execution ->
// completion/failure, Figs. 8-9).
//
// Design constraints (see DESIGN.md "Flight recorder"):
//   * Hot-path emits are lock-free: each thread writes its own ring (single
//     producer), registration and capacity changes take a mutex exactly once
//     per thread. A full ring overwrites its oldest entries — emit never
//     blocks and never allocates in steady state; the overwritten count is
//     reported as dropped().
//   * Instrumentation must never perturb simulation behaviour — sim-track
//     events carry simulated Seconds handed in by the caller, touch no RNG
//     stream, no clock, and no simulation state, so the zero-fault golden
//     trace stays byte-identical with the recorder enabled or disabled.
//   * Dual timeline: kSpan/kInstant events live on the simulated-time axis
//     (the primary axis for HO vivisection); kWallSpan/kWallInstant events
//     live on a wall-clock track (engine profiling: pool tasks, observe /
//     decide phases, checkpoints) whose epoch is the first wall sample.
//   * The recorder has its own kill switch (set_events_enabled), independent
//     of the metrics layer's obs::set_enabled, so bench_perf can A/B each
//     layer's overhead separately.
//
// Like the rest of src/obs this header depends on nothing but the C++
// standard library, so every layer (ran, sim, trace, apps, benches) can emit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace p5g::obs {

// Kill switch for the flight recorder alone. Relaxed load on every emit;
// flipping it mid-run is safe (events just stop/resume).
bool events_enabled() noexcept;
void set_events_enabled(bool on) noexcept;

// What one event records. The set mirrors the instrumented layers: the
// MobilityManager's HO phase machine (ho.*, rlf, rach.retry), the fault
// layer's retry/re-establishment chains, the tick loop, the fleet engine,
// and the application layer's outage extraction.
enum class EventCategory : std::uint8_t {
  kTick = 0,      // one simulation tick (sampled; see ScenarioStepper)
  kMmObserve,     // MobilityManager observe phase (wall track, sampled)
  kMmDecide,      // MobilityManager monitors+decide phase (wall track, sampled)
  kHoPrep,        // T1 preparation span [decision_time, exec_start]
  kHoExec,        // T2 execution span [exec_start, exec end]
  kHoComplete,    // procedure finished (instant at complete_time)
  kRlf,           // RLF trigger (instant) / RRC re-establishment (span)
  kRachRetry,     // RACH retry chain inside T2 (attempts > 1)
  kPoolTask,      // fleet cohort task (wall track)
  kCheckpoint,    // fleet checkpoint snapshot (wall track)
  kAppOutage,     // application-visible outage span (LinkEmulator)
};
inline constexpr std::size_t kEventCategories = 11;

// "tick", "ho.prep", ... — stable names used by the Perfetto exporter, the
// p5g_trace CLI and tools/check_trace.py.
std::string_view category_name(EventCategory c) noexcept;
// Inverse of category_name; false when `name` is not a known category.
bool category_from_name(std::string_view name, EventCategory& out) noexcept;

enum class EventKind : std::uint8_t {
  kSpan = 0,      // [t0, t1] in simulated seconds
  kInstant,       // point event, t0 == t1, simulated seconds
  kWallSpan,      // [t0, t1] in wall seconds since the wall-track epoch
  kWallInstant,   // point event on the wall track
};

// One fixed-size binary event. Payload fields (a0/a1/i0..i2) are
// category-specific; DESIGN.md "Flight recorder" tables the full schema.
// Doubles are carried verbatim (and serialized as IEEE-754 bit patterns), so
// authoritative millisecond values written by the MobilityManager reach
// analysis::ho_timeline without any s<->ms round-trip re-derivation — that is
// what makes the reconstructed phase stats agree with analysis::ho_stats
// EXACTLY, not approximately.
struct Event {
  double t0 = 0.0;             // span start / instant time
  double t1 = 0.0;             // span end (== t0 for instants)
  double a0 = 0.0;             // payload (e.g. authoritative phase ms)
  double a1 = 0.0;             // payload (e.g. route position, backoff ms)
  std::uint64_t flow = 0;      // correlation id: per-UE HO sequence number
  std::int32_t i0 = 0;         // payload (e.g. src PCI, RACH attempts)
  std::int32_t i1 = 0;         // payload (e.g. dst PCI)
  std::uint32_t ue = 0;        // emitting UE (thread-local trace context)
  std::uint16_t i2 = 0;        // payload (e.g. packed ran::pack_ho_code)
  EventCategory category = EventCategory::kTick;
  EventKind kind = EventKind::kInstant;
  std::uint32_t reserved = 0;  // pads the struct to 64 bytes
};
static_assert(sizeof(Event) == 64, "one cache line per event");

namespace detail {
struct EventBuffer;  // per-thread ring, defined in events.cpp
}

// The flight recorder. One process-wide instance (event_log()); every
// thread that emits gets (or re-leases, after a producer thread exits) a
// private ring buffer, registered under the mutex once.
class EventLog {
 public:
  // Per-thread ring capacity in events (64 B each). 32768 events comfortably
  // hold a full 30-minute drive: sampled tick spans plus every HO event.
  static constexpr std::size_t kDefaultCapacity = 32768;

  EventLog();
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Appends to the calling thread's ring (overwriting the oldest entry when
  // full). `e.ue` is overwritten with the thread's trace context
  // (set_trace_ue). No-op while the recorder is disabled.
  void emit(const Event& e);

  // Totals across every ring, including rings of exited threads. Exact after
  // producers quiesce (join/wait_idle), approximate while they race — the
  // same contract as Counter::value().
  std::uint64_t emitted() const;
  std::uint64_t dropped() const;  // emitted minus retained (overwritten)

  // Ring capacity for buffers leased after the call (existing per-thread
  // rings migrate on their next emit). Test hook for forcing overflow.
  void set_capacity(std::size_t events);
  std::size_t capacity() const;

  // Merged copy of every ring, sorted by (t0, ue, flow, category). Call
  // after producers quiesce, like MetricsRegistry::snapshot.
  std::vector<Event> snapshot() const;

  // Forgets all retained events and zeroes emitted/dropped (leases and
  // capacities survive). Test helper; not meant to race live producers.
  void clear();

 private:
  detail::EventBuffer& local();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::EventBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  // Bumped by set_capacity()/clear(); producers re-lease when it moves.
  std::atomic<std::uint64_t> lease_epoch_{0};
};

// The process-wide flight recorder every instrumented subsystem emits to.
EventLog& event_log();

// Hands out HO-procedure correlation ids (flow 0 means "no flow"; the first
// id is 1). The counter is process-wide, not per-manager: benches and serial
// sweeps run many single-UE scenarios in one process, all attributed to the
// same UE, and per-manager sequences would collide under the (ue, flow)
// correlation key and merge unrelated procedures into one timeline. A UE
// runs one HO at a time, so per-UE flow order still equals procedure order.
std::uint64_t next_flow_id() noexcept;

// Thread-local UE attribution for emitted events. The fleet cohort engine
// sets this before stepping each UE slot so manager/stepper events carry the
// right UE even though cohorts interleave UEs on one thread; single-scenario
// runs leave the default 0.
void set_trace_ue(std::uint32_t ue) noexcept;
std::uint32_t trace_ue() noexcept;

// Wall seconds since the process's wall-track epoch (the first call). Only
// durations and relative order are meaningful. This is the time base of
// kWallSpan/kWallInstant events.
double wall_track_now() noexcept;

// RAII wall-clock span: samples the wall track on construction and emits a
// kWallSpan of `category` on destruction. `proto` supplies the payload
// fields (a0/a1/flow/i0/i1/i2); t0/t1/kind are filled in by the span.
// Neither wall read happens when inactive or the recorder is disabled.
class EventSpan {
 public:
  explicit EventSpan(EventCategory category, Event proto = {},
                     bool active = true);
  ~EventSpan();

  EventSpan(const EventSpan&) = delete;
  EventSpan& operator=(const EventSpan&) = delete;

 private:
  Event proto_;
  bool active_;
};

}  // namespace p5g::obs
