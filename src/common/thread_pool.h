// A small fixed-size worker pool for embarrassingly parallel jobs (the
// multi-scenario sweeps in sim::run_scenarios, the fleet layer, and the
// benches). Jobs are plain std::function<void()>; the pool makes no
// ordering promises, so callers own determinism by giving each job its own
// output slot and its own RNG stream (every sim::Scenario already carries a
// seed).
//
// Failure isolation: jobs MAY throw. An exception escaping a job is caught
// at the worker boundary (it never crosses into the worker thread and can
// never std::terminate the process), recorded as a TaskError carrying the
// job's submit sequence number, and surfaced from the next wait_idle()
// call. One throwing job therefore costs exactly that job; every other
// queued job still runs. Callers that need richer quarantine records (seed,
// scenario name) catch inside the job — see sim::run_scenarios_isolated —
// and the pool-level capture remains the backstop.
//
// An optional watchdog (enable_watchdog) flags jobs that run longer than a
// deadline — observational only, for wedged-run diagnosis; flagged jobs
// keep running.
//
// The pool reports into the global obs registry: p5g.pool.* (queue-depth
// and active-worker gauges, submit/complete counters, a queue-wait
// histogram, cumulative busy time) and p5g.resilience.* (captured job
// failures, watchdog flags).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/watchdog.h"

namespace p5g::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace p5g::obs

namespace p5g {

// One captured job failure: which submit (0-based sequence number since the
// last wait_idle) threw, and what it said.
struct TaskError {
  std::uint64_t job = 0;
  std::string what;
};

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a job. Jobs may throw: exceptions are captured at the worker
  // boundary into the error collector and surfaced from wait_idle().
  void submit(std::function<void()> job);

  // Block until the queue is empty and every worker is idle, then return
  // the errors captured since the previous wait_idle() (empty on a clean
  // epoch) — job numbering restarts with the next submit. The pool is
  // reusable after wait_idle() returns.
  [[nodiscard]] std::vector<TaskError> wait_idle();

  // Start flagging jobs that run longer than `deadline_ms` (see
  // common/watchdog.h). Call while idle; flags drain via take_watchdog_flags.
  void enable_watchdog(Milliseconds deadline_ms);
  std::vector<Watchdog::Flag> take_watchdog_flags();

 private:
  struct Job {
    std::function<void()> fn;
    std::uint64_t id = 0;  // submit sequence number within the epoch
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or shutdown
  std::condition_variable idle_cv_;   // signals wait_idle(): all drained
  std::size_t active_ = 0;            // jobs currently executing
  std::uint64_t next_job_id_ = 0;     // resets every epoch (wait_idle)
  bool stop_ = false;
  std::vector<TaskError> errors_;     // guarded by mu_
  std::unique_ptr<Watchdog> watchdog_;  // set once while idle, then read-only

  // Global-registry metrics, resolved once at construction.
  obs::Counter* jobs_submitted_;
  obs::Counter* jobs_completed_;
  obs::Counter* jobs_failed_;         // p5g.resilience.pool_jobs_failed
  obs::Counter* busy_ms_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* active_workers_;
  obs::Gauge* pool_threads_;
  obs::Histogram* queue_wait_ms_;
};

}  // namespace p5g
