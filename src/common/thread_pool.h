// A small fixed-size worker pool for embarrassingly parallel jobs (the
// multi-scenario sweeps in sim::run_scenarios and the benches). Jobs are
// plain std::function<void()>; the pool makes no ordering promises, so
// callers own determinism by giving each job its own output slot and its
// own RNG stream (every sim::Scenario already carries a seed).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p5g {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a job. Jobs must not throw (exceptions would cross thread
  // boundaries); wrap fallible work and report through the captured state.
  void submit(std::function<void()> job);

  // Block until the queue is empty and every worker is idle. The pool is
  // reusable after wait_idle() returns.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or shutdown
  std::condition_variable idle_cv_;   // signals wait_idle(): all drained
  std::size_t active_ = 0;            // jobs currently executing
  bool stop_ = false;
};

}  // namespace p5g
