// A small fixed-size worker pool for embarrassingly parallel jobs (the
// multi-scenario sweeps in sim::run_scenarios and the benches). Jobs are
// plain std::function<void()>; the pool makes no ordering promises, so
// callers own determinism by giving each job its own output slot and its
// own RNG stream (every sim::Scenario already carries a seed).
//
// The pool reports into the global obs registry (p5g.pool.*): queue-depth
// and active-worker gauges, submit/complete counters, a queue-wait
// histogram, and cumulative busy time for utilization accounting.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p5g::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace p5g::obs

namespace p5g {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a job. Jobs must not throw (exceptions would cross thread
  // boundaries); wrap fallible work and report through the captured state.
  void submit(std::function<void()> job);

  // Block until the queue is empty and every worker is idle. The pool is
  // reusable after wait_idle() returns.
  void wait_idle();

 private:
  struct Job {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or shutdown
  std::condition_variable idle_cv_;   // signals wait_idle(): all drained
  std::size_t active_ = 0;            // jobs currently executing
  bool stop_ = false;

  // Global-registry metrics, resolved once at construction (p5g.pool.*).
  obs::Counter* jobs_submitted_;
  obs::Counter* jobs_completed_;
  obs::Counter* busy_ms_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* active_workers_;
  obs::Gauge* pool_threads_;
  obs::Histogram* queue_wait_ms_;
};

}  // namespace p5g
