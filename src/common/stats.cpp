#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

namespace p5g::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {}

void Histogram::add(double x) {
  auto idx = static_cast<long>((x - lo_) / width_);
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double upper = lo_ + static_cast<double>(i + 1) * width_;
    if (upper <= x) below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out.push_back({sorted[i], static_cast<double>(i + 1) / static_cast<double>(sorted.size())});
  }
  return out;
}

std::vector<DensityPoint> kernel_density(std::span<const double> xs, double grid_lo,
                                         double grid_hi, std::size_t grid_points,
                                         double bandwidth) {
  std::vector<DensityPoint> out;
  if (xs.empty() || grid_points < 2) return out;
  double h = bandwidth;
  if (h <= 0.0) {
    // Silverman's rule of thumb.
    const double sd = stddev(xs);
    const double n = static_cast<double>(xs.size());
    h = 1.06 * (sd > 0 ? sd : 1.0) * std::pow(n, -0.2);
  }
  const double norm = 1.0 / (static_cast<double>(xs.size()) * h * std::sqrt(2.0 * std::numbers::pi));
  out.reserve(grid_points);
  const double step = (grid_hi - grid_lo) / static_cast<double>(grid_points - 1);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double x = grid_lo + static_cast<double>(i) * step;
    double acc = 0.0;
    for (double s : xs) {
      const double z = (x - s) / h;
      acc += std::exp(-0.5 * z * z);
    }
    out.push_back({x, acc * norm});
  }
  return out;
}

}  // namespace p5g::stats
