#include "common/watchdog.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace p5g {

Watchdog::Watchdog(Milliseconds deadline_ms, std::size_t slots)
    : deadline_ms_(deadline_ms),
      slots_(std::max<std::size_t>(slots, 1)),
      flags_total_(&obs::registry().counter("p5g.resilience.watchdog_flags")) {
  P5G_REQUIRE(deadline_ms > 0.0_ms, "watchdog deadline must be positive");
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

void Watchdog::task_started(std::size_t slot, std::uint64_t task_id) noexcept {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  s.start_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  // Publish the id last: the monitor keys on it.
  s.task_id.store(task_id, std::memory_order_release);
}

void Watchdog::task_finished(std::size_t slot) noexcept {
  if (slot >= slots_.size()) return;
  slots_[slot].task_id.store(kIdle, std::memory_order_release);
}

std::vector<Watchdog::Flag> Watchdog::take_flags() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Flag> out;
  out.swap(flags_);
  return out;
}

void Watchdog::monitor_loop() {
  // Poll ~4x per deadline so a stuck task is flagged within ~1.25 deadlines.
  const auto period = std::chrono::duration<double, std::milli>(
      std::max(deadline_ms_.v / 4.0, 1.0));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) return;
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    for (Slot& s : slots_) {
      const std::uint64_t id = s.task_id.load(std::memory_order_acquire);
      if (id == kIdle) continue;
      if (s.flagged_task.load(std::memory_order_relaxed) == id) continue;
      const double elapsed_ms =
          static_cast<double>(now_ns -
                              s.start_ns.load(std::memory_order_relaxed)) /
          1e6;
      if (elapsed_ms <= deadline_ms_.v) continue;
      s.flagged_task.store(id, std::memory_order_relaxed);
      flags_.push_back({id, Milliseconds{elapsed_ms}});
      flags_total_->add(1);
    }
  }
}

}  // namespace p5g
