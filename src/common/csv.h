// Minimal CSV writer/reader for trace persistence and bench output.
// Values never contain commas or quotes in our schemas, so no quoting layer
// is needed; the reader still tolerates surrounding whitespace.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"

namespace p5g::csv {

class Writer {
 public:
  // Buffers rows for `path`; nothing touches the filesystem until close()
  // (or destruction), which lands the whole file in one durable
  // io::atomic_write_file — a reader never sees a header-only or torn CSV,
  // and a full disk / bad path is reported instead of silently truncating.
  Writer(const std::string& path, const std::vector<std::string>& header);
  // The destructor flush cannot surface a failure, but close() stores it
  // in result_ for anyone who asks. p5g-analyze: allow(ignored-ioresult)
  ~Writer() { static_cast<void>(close()); }

  // Appends one row. A row narrower than the header is padded with empty
  // cells, a wider one truncated; either case is counted instead of thrown,
  // so a malformed record cannot abort a trace flush mid-file.
  void write_row(const std::vector<std::string>& cells);

  // Flushes the buffered file atomically. Idempotent: the first call does
  // the write, later calls (including the destructor's) return its result.
  io::IoResult close();

  // False once a close() has failed.
  bool ok() const { return result_.ok; }
  // Rows whose width did not match the header (padded/truncated).
  std::size_t width_mismatches() const { return width_mismatches_; }

 private:
  std::string path_;
  std::string buf_;
  std::size_t columns_;
  std::size_t width_mismatches_ = 0;
  bool closed_ = false;
  io::IoResult result_{};
};

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  // Rows whose cell count did not match the header. Short rows are padded
  // with empty cells so positional access never misindexes.
  std::size_t malformed_rows = 0;

  // Index of a header column, or -1 when absent.
  int column(std::string_view name) const;
};

// Reads a whole CSV file; returns an empty table when the file is missing.
// Ragged rows are tolerated: counted in `malformed_rows` and padded to the
// header width rather than silently misindexing downstream.
Table read_file(const std::string& path);

// Formatting helpers so call sites produce consistent numeric cells.
std::string format(double v, int precision = 6);

template <typename T>
std::string cell(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace p5g::csv
