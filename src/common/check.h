// Contract-check layer: machine-checked invariants for the simulator's
// correctness-critical seams (HO state machine transitions, fault-profile
// ranges, spatial-index/linear-scan equivalence, RRS bounds, metric-name
// uniqueness).
//
// Three macros, mirroring design-by-contract vocabulary:
//   P5G_REQUIRE(cond, "msg")  — precondition on caller-supplied inputs
//   P5G_ASSERT(cond, "msg")   — internal invariant inside an algorithm
//   P5G_ENSURE(cond, "msg")   — postcondition on produced results
// The message is an optional string literal.
//
// Activation model (per translation unit):
//   * Debug builds (no NDEBUG): checks compile in by default.
//   * Release/RelWithDebInfo:   checks compile OUT — the condition is NOT
//     evaluated, so checks may be arbitrarily expensive without taxing the
//     tick loop (bench_perf --check-overhead guards this).
//   * -DP5G_CHECKS=ON (CMake) forces P5G_CHECKS_ENABLED=1 everywhere; CI
//     runs the whole suite in this mode and in the sanitizer builds.
//
// On failure the installed handler is invoked (default: print to stderr and
// abort). Tests install a throwing handler via set_handler() to turn trips
// into catchable exceptions. The handler API and library_checks_enabled()
// are compiled unconditionally, so mixing checks-on test code with a
// checks-off library never violates the one-definition rule: no type layout
// or signature in this header depends on P5G_CHECKS_ENABLED.
#pragma once

namespace p5g::check {

enum class Kind { kRequire, kAssert, kEnsure };

const char* kind_name(Kind k) noexcept;

// Everything known about one failed contract. `message` is "" when the
// macro was invoked without one.
struct Failure {
  Kind kind;
  const char* expression;
  const char* file;
  int line;
  const char* message;
};

// A handler may throw (tests) or log-and-return; if it returns, fail()
// aborts so a violated contract can never be silently resumed.
using Handler = void (*)(const Failure&);

// Installs `h` (nullptr restores the default abort handler) and returns the
// previously installed handler. Not thread-safe against concurrent trips;
// intended for test setup/teardown.
Handler set_handler(Handler h) noexcept;

// Routes a failure through the installed handler, then aborts if the
// handler returns. Out-of-line so call sites stay small.
[[noreturn]] void fail(Kind kind, const char* expr, const char* file, int line,
                       const char* message);

// True when the p5g libraries themselves were compiled with checks active
// (all src/ targets share one flag set). Tests that need a LIBRARY-side
// contract to trip skip themselves when this is false.
bool library_checks_enabled() noexcept;

}  // namespace p5g::check

#if !defined(P5G_CHECKS_ENABLED)
#if defined(NDEBUG)
#define P5G_CHECKS_ENABLED 0
#else
#define P5G_CHECKS_ENABLED 1
#endif
#endif

#if P5G_CHECKS_ENABLED
// "" __VA_ARGS__ concatenates with an optional literal message, yielding ""
// when the macro is used without one.
#define P5G_CHECK_IMPL_(kind, cond, ...)                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::p5g::check::fail(kind, #cond, __FILE__, __LINE__,            \
                               "" __VA_ARGS__))
#else
// Compiled out: the condition is not evaluated and generates no code.
#define P5G_CHECK_IMPL_(kind, cond, ...) static_cast<void>(0)
#endif

#define P5G_REQUIRE(cond, ...) \
  P5G_CHECK_IMPL_(::p5g::check::Kind::kRequire, cond, ##__VA_ARGS__)
#define P5G_ASSERT(cond, ...) \
  P5G_CHECK_IMPL_(::p5g::check::Kind::kAssert, cond, ##__VA_ARGS__)
#define P5G_ENSURE(cond, ...) \
  P5G_CHECK_IMPL_(::p5g::check::Kind::kEnsure, cond, ##__VA_ARGS__)
