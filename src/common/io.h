// Durable file I/O for everything the simulator persists (traces, metrics
// reports, BENCH_perf.json, fleet checkpoints).
//
// The core primitive is atomic_write_file(): write the full content to
// `<path>.tmp`, flush it through the OS (fflush + fsync), then rename() it
// over the destination. A reader therefore always sees either the complete
// old file or the complete new file — never a torn write from a process
// that died mid-flush. Transient failures (including injected chaos faults,
// see common/chaos.h) are retried with capped exponential backoff before
// the error is surfaced to the caller.
//
// This layer is standard-library-only (plus POSIX fsync where available) so
// it sits BELOW p5g_obs in the dependency DAG and the obs exporters can use
// it. It therefore cannot write to the obs metrics registry; instead it
// keeps its own process-wide atomic tallies (io::io_stats()), which
// obs::make_manifest mirrors into the `p5g.resilience.io_*` gauges and into
// manifest warnings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace p5g::io {

// Outcome of a fallible I/O operation. Empty `error` on success; on failure
// `error` carries the last attempt's cause (errno text or injected-fault
// marker). Convertible to bool so call sites read naturally:
//   if (!trace::write_csv(log, path)) { ... }
struct [[nodiscard]] IoResult {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }

  static IoResult success() { return {}; }
  static IoResult failure(std::string why) { return {false, std::move(why)}; }
};

// Retry schedule for transient write failures: attempt k (0-based) sleeps
// initial_backoff_ms << (k - 1) before retrying, capped at max_backoff_ms.
// The defaults keep worst-case added latency ~100 ms.
struct RetryPolicy {
  int max_attempts = 4;
  int initial_backoff_ms = 1;
  int max_backoff_ms = 50;
};

// Writes `content` to `path` atomically (tmp + flush + fsync + rename) with
// retry on transient failures. On failure the destination file is left
// untouched (old content, or still absent).
IoResult atomic_write_file(const std::string& path, std::string_view content,
                           const RetryPolicy& retry = {});

// Process-wide tallies of what the durable-I/O layer did, mirrored into the
// obs registry (p5g.resilience.io_*) by obs::make_manifest. Monotonic.
struct IoStats {
  std::uint64_t writes = 0;          // successful atomic writes
  std::uint64_t retries = 0;         // attempts repeated after a transient failure
  std::uint64_t failures = 0;        // writes abandoned after exhausting retries
  std::uint64_t chaos_injected = 0;  // failures injected by the chaos layer
};
IoStats io_stats() noexcept;
void reset_io_stats() noexcept;  // test helper

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`,
// optionally continuing from a previous value. Used to seal the fleet
// checkpoint format against torn or bit-rotted files.
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) noexcept;

}  // namespace p5g::io
