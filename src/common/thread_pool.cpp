#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/timer.h"

namespace p5g {

ThreadPool::ThreadPool(unsigned threads)
    : jobs_submitted_(&obs::registry().counter("p5g.pool.jobs_submitted")),
      jobs_completed_(&obs::registry().counter("p5g.pool.jobs_completed")),
      jobs_failed_(&obs::registry().counter("p5g.resilience.pool_jobs_failed")),
      busy_ms_total_(&obs::registry().counter("p5g.pool.busy_ms_total")),
      queue_depth_(&obs::registry().gauge("p5g.pool.queue_depth")),
      active_workers_(&obs::registry().gauge("p5g.pool.active_workers")),
      pool_threads_(&obs::registry().gauge("p5g.pool.threads")),
      queue_wait_ms_(&obs::registry().histogram("p5g.pool.queue_wait_ms")) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  P5G_ENSURE(threads >= 1, "pool must end up with at least one worker");
  workers_.reserve(threads);
  pool_threads_->set(static_cast<double>(threads));
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  P5G_REQUIRE(job != nullptr, "null job submitted to pool");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back({std::move(job), next_job_id_++,
                      obs::enabled() ? obs::ObsClock::now()
                                     : obs::ObsClock::time_point{}});
    queue_depth_->set(static_cast<double>(queue_.size()));
  }
  jobs_submitted_->add(1);
  work_cv_.notify_one();
}

std::vector<TaskError> ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  next_job_id_ = 0;  // numbering restarts with the next epoch
  std::vector<TaskError> out;
  out.swap(errors_);
  return out;
}

void ThreadPool::enable_watchdog(Milliseconds deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  P5G_REQUIRE(queue_.empty() && active_ == 0,
              "enable_watchdog must be called while the pool is idle");
  watchdog_ =
      std::make_unique<Watchdog>(deadline_ms, workers_.size());
}

std::vector<Watchdog::Flag> ThreadPool::take_watchdog_flags() {
  // watchdog_ is only (re)set while idle; reading the pointer here races
  // nothing once runs are in flight.
  return watchdog_ ? watchdog_->take_flags() : std::vector<Watchdog::Flag>{};
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    Job job;
    Watchdog* dog = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<double>(queue_.size()));
      ++active_;
      active_workers_->set(static_cast<double>(active_));
      dog = watchdog_.get();
    }
    obs::ObsClock::time_point start{};
    if (obs::enabled()) {
      start = obs::ObsClock::now();
      if (job.enqueued != obs::ObsClock::time_point{}) {
        queue_wait_ms_->record(
            std::chrono::duration<double, std::milli>(start - job.enqueued).count());
      }
    }
    if (dog) dog->task_started(worker_index, job.id);
    // The worker boundary: an exception here must cost one job, not the
    // process. Captured into the epoch's error collector for wait_idle().
    try {
      job.fn();
    } catch (const std::exception& e) {
      jobs_failed_->add(1);
      std::lock_guard<std::mutex> lock(mu_);
      errors_.push_back({job.id, e.what()});
    } catch (...) {
      jobs_failed_->add(1);
      std::lock_guard<std::mutex> lock(mu_);
      errors_.push_back({job.id, "unknown exception"});
    }
    if (dog) dog->task_finished(worker_index);
    if (obs::enabled() && start != obs::ObsClock::time_point{}) {
      busy_ms_total_->add(static_cast<std::uint64_t>(obs::ms_since(start)));
    }
    jobs_completed_->add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      active_workers_->set(static_cast<double>(active_));
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace p5g
