#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace p5g {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace p5g
