// Deterministic fault injection for resilience testing.
//
// A ChaosProfile describes a *seeded* population of faults: which tasks
// throw, which file writes fail transiently, which tasks stall past the
// watchdog deadline. Every decision is a pure function of
// (profile.seed, stable key) — task index, file path — never of wall-clock
// time, draw order, or thread schedule. That is what lets bench_chaos
// assert that quarantine accounting is identical across repeated runs and
// across worker counts: the same seed always faults the same task set.
//
// The profile is installed process-wide (install()/clear(), or the RAII
// ScopedChaos) and consulted by the injection points:
//   * sim sweep / fleet task entry  -> maybe_fault_task / maybe_stall_task
//   * io::atomic_write_file attempt -> should_fault_io
// With no profile installed (the default), every hook is a cheap
// early-return and the simulator behaves exactly as before — the zero-fault
// golden trace stays byte-identical.
//
// Standard-library-only (sits below p5g_obs); tallies are exposed through
// chaos_stats() and mirrored into p5g.resilience.* by obs::make_manifest.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/units.h"

namespace p5g::chaos {

struct ChaosProfile {
  std::uint64_t seed = 0;

  // Probability that a given task key throws InjectedFault at task entry.
  double task_fault_rate = 0.0;

  // Probability that a given file path is chosen for transient write
  // failures; a chosen path fails its first `io_fault_attempts` write
  // attempts. Set io_fault_attempts >= RetryPolicy::max_attempts to make
  // the failure permanent (exhausts the retry budget).
  double io_fault_rate = 0.0;
  int io_fault_attempts = 1;

  // Probability that a given task key stalls (sleeps) for stall_ms at task
  // entry — the stuck-task fault the watchdog exists to flag.
  double stall_rate = 0.0;
  Milliseconds stall_ms{0.0};
};

// Thrown by maybe_fault_task for tasks the profile selects.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

// Process-wide profile management. install/clear are not meant to race
// active simulations; flip them between runs (tests and bench_chaos do).
void install(const ChaosProfile& profile);
void clear();
bool active() noexcept;
ChaosProfile profile() noexcept;  // zero profile when inactive

// RAII: install on construction, restore the previous state on destruction.
class ScopedChaos {
 public:
  explicit ScopedChaos(const ChaosProfile& p);
  ~ScopedChaos();
  ScopedChaos(const ScopedChaos&) = delete;
  ScopedChaos& operator=(const ScopedChaos&) = delete;

 private:
  bool had_previous_;
  ChaosProfile previous_;
};

// Pure decision functions: deterministic in (installed seed, key), false
// when no profile is installed.
bool should_fault_task(std::uint64_t key) noexcept;
bool should_stall_task(std::uint64_t key) noexcept;
bool should_fault_io(std::string_view path, int attempt) noexcept;

// Injection points. maybe_fault_task throws InjectedFault (after counting)
// when the key is selected; maybe_stall_task blocks for profile().stall_ms.
void maybe_fault_task(std::uint64_t key);
void maybe_stall_task(std::uint64_t key);

// Monotonic tallies of injected faults (mirrored to p5g.resilience.* by
// obs::make_manifest). Injected I/O failures are counted by the layer that
// hits them: io::io_stats().chaos_injected.
struct ChaosStats {
  std::uint64_t task_faults = 0;
  std::uint64_t stalls = 0;
};
ChaosStats chaos_stats() noexcept;
void reset_chaos_stats() noexcept;  // test helper

}  // namespace p5g::chaos
