// Descriptive statistics used by the analysis layer and benches:
// percentiles, running summaries, histograms, empirical CDFs, and a small
// Gaussian kernel-density estimator (for the coverage-density figure).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace p5g::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);

// Linear-interpolated percentile; q in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double q);
inline double median(std::span<const double> xs) { return percentile(xs, 50.0); }

// Online mean/variance (Welford) — used by long-running simulations where
// retaining every sample would be wasteful.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the end
// bins so that totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t i) const;
  // Fraction of samples at or below x.
  double cdf(double x) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

struct CdfPoint {
  double value;
  double fraction;  // P(X <= value)
};

// Full empirical CDF (sorted copy of the input).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

// Gaussian KDE evaluated on a regular grid; bandwidth chosen by Silverman's
// rule when `bandwidth` <= 0.
struct DensityPoint {
  double x;
  double density;
};
std::vector<DensityPoint> kernel_density(std::span<const double> xs, double grid_lo,
                                         double grid_hi, std::size_t grid_points,
                                         double bandwidth = 0.0);

}  // namespace p5g::stats
