// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator takes an explicit Rng so that
// experiments are reproducible from a single seed and sub-streams can be
// forked per entity (cell, UE, fading process) without cross-coupling.
#pragma once

#include <cstdint>

namespace p5g {

// SplitMix64: used for seeding and cheap hash-style mixing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — the library's main generator. Small, fast, and with
// well-understood statistical quality; good enough for simulation noise.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);
  // Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Rayleigh-distributed magnitude with the given scale sigma.
  double rayleigh(double sigma);

  // Fork an independent sub-stream; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace p5g
