#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace p5g {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free multiply-shift; bias is negligible for simulation n.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::rayleigh(double sigma) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return sigma * std::sqrt(-2.0 * std::log(u));
}

Rng Rng::fork(std::uint64_t salt) const {
  // Derive a child seed from our state and the salt; does not advance *this.
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9E3779B97f4A7C15ULL));
  return Rng(sm.next());
}

}  // namespace p5g
