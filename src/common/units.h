// Units and small value types used across the library.
//
// All quantities are carried as doubles in canonical units (metres, seconds,
// dBm, Mbps, watts, mAh). The aliases below document intent at API
// boundaries; the helper functions perform the only conversions the library
// needs so call sites never hand-roll unit math.
#pragma once

#include <cmath>
#include <cstdint>

namespace p5g {

using Meters = double;
using Kilometers = double;
using Seconds = double;
using Milliseconds = double;
using Dbm = double;     // power level relative to 1 mW, in dB
using Db = double;      // relative power ratio, in dB
using Mbps = double;    // megabits per second
using Watts = double;
using MilliampHours = double;
using Hertz = double;
using MegaHertz = double;

constexpr double kMetersPerKilometer = 1000.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kMillisecondsPerSecond = 1000.0;

constexpr Meters km_to_m(Kilometers km) { return km * kMetersPerKilometer; }
constexpr Kilometers m_to_km(Meters m) { return m / kMetersPerKilometer; }
constexpr Seconds ms_to_s(Milliseconds ms) { return ms / kMillisecondsPerSecond; }
constexpr Milliseconds s_to_ms(Seconds s) { return s * kMillisecondsPerSecond; }

// Speed helpers (simulator configuration is naturally in km/h).
constexpr double kmh_to_mps(double kmh) { return kmh * kMetersPerKilometer / kSecondsPerHour; }
constexpr double mps_to_kmh(double mps) { return mps * kSecondsPerHour / kMetersPerKilometer; }

// dB <-> linear power ratio conversions.
inline double db_to_linear(Db db) { return std::pow(10.0, db / 10.0); }
inline Db linear_to_db(double linear) { return 10.0 * std::log10(linear); }

// dBm <-> milliwatts.
inline double dbm_to_mw(Dbm dbm) { return std::pow(10.0, dbm / 10.0); }
inline Dbm mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

// Energy: integrate power over time at a nominal battery voltage.
// Smartphone batteries are nominally 3.85 V (the paper's S20U uses a
// 4.5 Ah/3.86 V pack); we use 3.85 V throughout.
constexpr double kBatteryVoltage = 3.85;
inline MilliampHours joules_to_mah(double joules) {
  return joules / kBatteryVoltage / 3.6;  // 1 mAh = V * 3.6 J at V volts
}
inline double mah_to_joules(MilliampHours mah) { return mah * kBatteryVoltage * 3.6; }

}  // namespace p5g
