// Strong physical-unit types used across the library.
//
// Every unit-bearing quantity that used to be a bare `double` alias is a
// distinct single-double aggregate, so unit mixing — dBm + dBm, milliseconds
// where simulated seconds belong, metres into a Hz slot — fails to COMPILE
// instead of silently corrupting reproduced figures (the classic failure
// mode of exactly this domain: RSRP in dBm vs RSRQ/SINR in dB, T1/T2
// durations in ms vs simulated seconds, mW/dBm link-budget conversions).
//
// The wrappers are zero-overhead: trivially copyable aggregates whose
// constexpr operators inline to exactly the double arithmetic the old code
// wrote, so golden traces stay byte-identical (enforced in tests) and the
// Release tick rate is unchanged (enforced by bench_perf --check-speedup).
//
// Unit algebra — only physically meaningful operations exist:
//
//   kind    | types                          | operations
//   --------+--------------------------------+--------------------------------
//   level   | Dbm                            | Dbm - Dbm -> Db, Dbm ± Db ->
//           | (absolute power level)         | Dbm, compare. Dbm + Dbm does
//           |                                | NOT compile (levels don't add;
//           |                                | convert to_mw() first).
//   ratio   | Db                             | full linear algebra: gains and
//           |                                | offsets compose by addition.
//   linear  | MilliWatts                     | full linear algebra: powers DO
//           |                                | add in the linear domain.
//   extent  | Meters, SimSeconds, Millis,    | full linear algebra within one
//           | Hertz, MegaHertz               | type; X / X -> double ratio.
//
// Cross-unit conversions are explicit named functions (`to_mw`/`to_dbm`,
// `ms_to_s`/`s_to_ms`/`Millis::from`, `hz_from_mhz`) — never implicit. The
// raw double is reachable as `.v` (or `.value()`) for I/O boundaries only:
// printf/CSV emit, FFI, and accumulation into genuinely dimensionless math.
// tools/p5g_analyze.py flags raw-double parameters with unit-suffixed names
// in public headers so new APIs keep using these types.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace p5g {

constexpr double kMetersPerKilometer = 1000.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kMillisecondsPerSecond = 1000.0;
constexpr double kHertzPerMegaHertz = 1.0e6;

// Exact bit-pattern equality (IEEE-754 payload compare). This is the
// sanctioned spelling for DELIBERATE exact floating-point comparison —
// golden-identity tests, byte-identity contracts between scalar and batched
// pipelines — now that -Wfloat-equal is part of the strict warning set.
// Note the semantics differ from `==` exactly where `==` misleads: NaN
// bit-patterns compare equal to themselves, and +0.0 != -0.0.
constexpr bool bit_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// The comparison operators below use IEEE `==` on purpose: unit wrappers
// must order and compare exactly like the doubles they replace so that
// lower_bound/min/max and threshold checks are bit-compatible with the
// pre-units code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfloat-equal"

// Storage + value access + total comparison set shared by every unit type.
#define P5G_UNIT_COMMON(U)                                                  \
  double v = 0.0;                                                           \
  constexpr double value() const { return v; }                              \
  friend constexpr bool operator==(U a, U b) { return a.v == b.v; }         \
  friend constexpr bool operator!=(U a, U b) { return a.v != b.v; }         \
  friend constexpr bool operator<(U a, U b) { return a.v < b.v; }           \
  friend constexpr bool operator<=(U a, U b) { return a.v <= b.v; }         \
  friend constexpr bool operator>(U a, U b) { return a.v > b.v; }           \
  friend constexpr bool operator>=(U a, U b) { return a.v >= b.v; }         \
  template <class OStream>                                                  \
  friend OStream& operator<<(OStream& os, U x) {                            \
    os << x.v;                                                              \
    return os;                                                              \
  }

// Full linear algebra for extent/ratio/linear-power types: same-type
// addition, scalar scaling, and the dimensionless same-type ratio.
#define P5G_UNIT_LINEAR(U)                                                  \
  friend constexpr U operator+(U a, U b) { return U{a.v + b.v}; }           \
  friend constexpr U operator-(U a, U b) { return U{a.v - b.v}; }           \
  friend constexpr U operator-(U a) { return U{-a.v}; }                     \
  friend constexpr U operator*(U a, double s) { return U{a.v * s}; }        \
  friend constexpr U operator*(double s, U a) { return U{s * a.v}; }        \
  friend constexpr U operator/(U a, double s) { return U{a.v / s}; }        \
  friend constexpr double operator/(U a, U b) { return a.v / b.v; }         \
  constexpr U& operator+=(U o) {                                            \
    v += o.v;                                                               \
    return *this;                                                           \
  }                                                                         \
  constexpr U& operator-=(U o) {                                            \
    v -= o.v;                                                               \
    return *this;                                                           \
  }                                                                         \
  constexpr U& operator*=(double s) {                                       \
    v *= s;                                                                 \
    return *this;                                                           \
  }                                                                         \
  constexpr U& operator/=(double s) {                                       \
    v /= s;                                                                 \
    return *this;                                                           \
  }

// Distance / length in metres.
struct Meters {
  P5G_UNIT_COMMON(Meters)
  P5G_UNIT_LINEAR(Meters)
};

// Simulated time in seconds (the tick clock, trace timestamps, durations
// derived from them). Distinct from Millis so a T1/T2 handover duration in
// milliseconds can never be added to a timestamp without an explicit
// conversion.
struct SimSeconds {
  P5G_UNIT_COMMON(SimSeconds)
  P5G_UNIT_LINEAR(SimSeconds)
};

// Milliseconds — 3GPP timer language (TTT, T1/T2, RACH backoff, RTT).
struct Millis {
  P5G_UNIT_COMMON(Millis)
  P5G_UNIT_LINEAR(Millis)
  static constexpr Millis from(SimSeconds s) {
    return Millis{s.v * kMillisecondsPerSecond};
  }
  constexpr SimSeconds to_seconds() const {
    return SimSeconds{v / kMillisecondsPerSecond};
  }
};

// Relative power ratio in dB (gains, offsets, hysteresis, RSRQ, SINR).
struct Db {
  P5G_UNIT_COMMON(Db)
  P5G_UNIT_LINEAR(Db)
};

// Absolute power level relative to 1 mW, in dB. A *level*, not a ratio:
// levels differ by a Db and shift by a Db, but never add to each other —
// summing powers must go through the linear domain (to_mw).
struct Dbm {
  P5G_UNIT_COMMON(Dbm)
  // Negation exists so the ubiquitous `-95.0_dbm` literal spelling works.
  friend constexpr Dbm operator-(Dbm a) { return Dbm{-a.v}; }
  friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.v - b.v}; }
  friend constexpr Dbm operator+(Dbm a, Db d) { return Dbm{a.v + d.v}; }
  friend constexpr Dbm operator+(Db d, Dbm a) { return Dbm{d.v + a.v}; }
  friend constexpr Dbm operator-(Dbm a, Db d) { return Dbm{a.v - d.v}; }
  constexpr Dbm& operator+=(Db d) {
    v += d.v;
    return *this;
  }
  constexpr Dbm& operator-=(Db d) {
    v -= d.v;
    return *this;
  }
};

// Linear power in milliwatts. Powers add here — this is where interference
// sums and link budgets live between to_mw() and to_dbm().
struct MilliWatts {
  P5G_UNIT_COMMON(MilliWatts)
  P5G_UNIT_LINEAR(MilliWatts)
};

// Frequencies. Carrier/bandwidth configuration is naturally in MHz; Hertz
// exists for the places that need the SI base unit.
struct MegaHertz {
  P5G_UNIT_COMMON(MegaHertz)
  P5G_UNIT_LINEAR(MegaHertz)
};
struct Hertz {
  P5G_UNIT_COMMON(Hertz)
  P5G_UNIT_LINEAR(Hertz)
  static constexpr Hertz from(MegaHertz m) {
    return Hertz{m.v * kHertzPerMegaHertz};
  }
  constexpr MegaHertz to_mhz() const { return MegaHertz{v / kHertzPerMegaHertz}; }
};

#pragma GCC diagnostic pop
#undef P5G_UNIT_COMMON
#undef P5G_UNIT_LINEAR

// Backwards-compatible names used throughout the tree. `Seconds` is
// simulated time; wall-clock time never flows through these types (see the
// wall-clock rule in tools/p5g_analyze.py).
using Seconds = SimSeconds;
using Milliseconds = Millis;

// Exact bit-pattern equality for unit wrappers (see bit_equal(double,double)).
template <class U>
constexpr bool bit_equal(U a, U b)
  requires requires { a.v; }
{
  return bit_equal(a.v, b.v);
}

// Dimensionless / not-yet-strongly-typed quantities. These stay documented
// aliases: they never collide numerically with the strong set above, and
// promoting them is cheap if a confusable neighbor ever appears.
using Kilometers = double;
using Mbps = double;  // megabits per second
using Watts = double;
using MilliampHours = double;

// Unit literals: `-95.0_dbm`, `3.0_db`, `80.0_ms`, `1.4_m`, `2.5_km`,
// `1800.0_s`, `600.0_mhz`. Inline namespace so every p5g::* scope sees them.
inline namespace unit_literals {
constexpr Meters operator""_m(long double x) { return Meters{static_cast<double>(x)}; }
constexpr Meters operator""_m(unsigned long long x) { return Meters{static_cast<double>(x)}; }
constexpr Meters operator""_km(long double x) {
  return Meters{static_cast<double>(x) * kMetersPerKilometer};
}
constexpr Meters operator""_km(unsigned long long x) {
  return Meters{static_cast<double>(x) * kMetersPerKilometer};
}
constexpr SimSeconds operator""_s(long double x) { return SimSeconds{static_cast<double>(x)}; }
constexpr SimSeconds operator""_s(unsigned long long x) {
  return SimSeconds{static_cast<double>(x)};
}
constexpr Millis operator""_ms(long double x) { return Millis{static_cast<double>(x)}; }
constexpr Millis operator""_ms(unsigned long long x) { return Millis{static_cast<double>(x)}; }
constexpr Dbm operator""_dbm(long double x) { return Dbm{static_cast<double>(x)}; }
constexpr Dbm operator""_dbm(unsigned long long x) { return Dbm{static_cast<double>(x)}; }
constexpr Db operator""_db(long double x) { return Db{static_cast<double>(x)}; }
constexpr Db operator""_db(unsigned long long x) { return Db{static_cast<double>(x)}; }
constexpr MilliWatts operator""_mw(long double x) { return MilliWatts{static_cast<double>(x)}; }
constexpr MilliWatts operator""_mw(unsigned long long x) {
  return MilliWatts{static_cast<double>(x)};
}
constexpr Hertz operator""_hz(long double x) { return Hertz{static_cast<double>(x)}; }
constexpr Hertz operator""_hz(unsigned long long x) { return Hertz{static_cast<double>(x)}; }
constexpr MegaHertz operator""_mhz(long double x) { return MegaHertz{static_cast<double>(x)}; }
constexpr MegaHertz operator""_mhz(unsigned long long x) {
  return MegaHertz{static_cast<double>(x)};
}
}  // namespace unit_literals

// --- Explicit cross-unit conversions -------------------------------------

constexpr Meters km_to_m(Kilometers km) { return Meters{km * kMetersPerKilometer}; }
constexpr Kilometers m_to_km(Meters m) { return m.v / kMetersPerKilometer; }
constexpr Seconds ms_to_s(Millis ms) { return Seconds{ms.v / kMillisecondsPerSecond}; }
constexpr Millis s_to_ms(Seconds s) { return Millis{s.v * kMillisecondsPerSecond}; }

// Speed helpers (simulator configuration is naturally in km/h; speeds stay
// raw double m/s — they multiply into every kind of extent).
constexpr double kmh_to_mps(double kmh) { return kmh * kMetersPerKilometer / kSecondsPerHour; }
constexpr double mps_to_kmh(double mps) { return mps * kSecondsPerHour / kMetersPerKilometer; }

// dB <-> linear power ratio conversions.
inline double db_to_linear(Db db) { return std::pow(10.0, db.v / 10.0); }
inline Db linear_to_db(double linear) { return Db{10.0 * std::log10(linear)}; }

// dBm <-> milliwatts: the only gate between the level and linear domains.
inline MilliWatts to_mw(Dbm dbm) { return MilliWatts{std::pow(10.0, dbm.v / 10.0)}; }
inline Dbm to_dbm(MilliWatts mw) { return Dbm{10.0 * std::log10(mw.v)}; }

// Energy: integrate power over time at a nominal battery voltage.
// Smartphone batteries are nominally 3.85 V (the paper's S20U uses a
// 4.5 Ah/3.86 V pack); we use 3.85 V throughout.
constexpr double kBatteryVoltage = 3.85;
inline MilliampHours joules_to_mah(double joules) {
  return joules / kBatteryVoltage / 3.6;  // 1 mAh = V * 3.6 J at V volts
}
inline double mah_to_joules(MilliampHours mah) { return mah * kBatteryVoltage * 3.6; }

}  // namespace p5g
