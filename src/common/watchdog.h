// Stuck-task watchdog for the thread pool.
//
// Workers report task start/finish into fixed per-worker slots; a single
// monitor thread polls the slots and flags any task that has been running
// longer than the configured deadline. Flagging is observational only — the
// task keeps running (cancelling arbitrary C++ work is not safe); the flag
// surfaces through the p5g.resilience.watchdog_flags counter, the
// take_flags() report, and ultimately the run manifest, so a wedged fleet
// run is diagnosable instead of silently hanging.
//
// This file deliberately reads std::chrono::steady_clock: elapsed-time
// measurement of real threads is the watchdog's whole job. It is the
// sanctioned wall-clock exception in src/common — see the allowance table
// in tools/p5g_lint.py; simulation code must still derive all timing from
// simulated Seconds.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"

namespace p5g::obs {
class Counter;
}  // namespace p5g::obs

namespace p5g {

class Watchdog {
 public:
  struct Flag {
    std::uint64_t task_id = 0;        // pool-assigned submit sequence number
    Milliseconds elapsed_ms{0.0};     // observed runtime when first flagged
  };

  // `slots` is the number of workers that will report (one slot each).
  // The monitor polls roughly 4x per deadline.
  Watchdog(Milliseconds deadline_ms, std::size_t slots);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  Milliseconds deadline_ms() const noexcept { return deadline_ms_; }

  // Called by worker `slot` around each task. Wait-free slot writes.
  void task_started(std::size_t slot, std::uint64_t task_id) noexcept;
  void task_finished(std::size_t slot) noexcept;

  // Drains the flags raised since the last call (unspecified order).
  std::vector<Flag> take_flags();

 private:
  using Clock = std::chrono::steady_clock;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> task_id{kIdle};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::uint64_t> flagged_task{kIdle};  // last task already flagged
  };
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  void monitor_loop();

  const Milliseconds deadline_ms_;
  std::vector<Slot> slots_;
  std::mutex mu_;                 // guards flags_ and stop_ for the cv
  std::condition_variable cv_;
  std::vector<Flag> flags_;
  bool stop_ = false;
  obs::Counter* flags_total_;     // p5g.resilience.watchdog_flags
  std::thread monitor_;
};

}  // namespace p5g
