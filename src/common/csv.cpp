#include "common/csv.h"

#include <algorithm>
#include <iomanip>

#include "obs/metrics.h"

namespace p5g::csv {
namespace {

std::string trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(b, e - b + 1));
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(trim(std::string_view(line).substr(start)));
      break;
    }
    cells.push_back(trim(std::string_view(line).substr(start, comma - start)));
    start = comma + 1;
  }
  return cells;
}

}  // namespace

Writer::Writer(const std::string& path, const std::vector<std::string>& header)
    : path_(path), columns_(header.size()) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) buf_ += ',';
    buf_ += header[i];
  }
  buf_ += '\n';
}

void Writer::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    ++width_mismatches_;
    // Surfaced through the run manifest (obs::make_manifest warns when
    // nonzero); per-writer counts were previously dropped with the object.
    static obs::Counter& ragged =
        obs::registry().counter("p5g.csv.write_ragged_rows");
    ragged.add(1);
  }
  const std::size_t n = std::min(cells.size(), columns_);
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i) buf_ += ',';
    if (i < n) buf_ += cells[i];
  }
  buf_ += '\n';
}

io::IoResult Writer::close() {
  if (!closed_) {
    closed_ = true;
    result_ = io::atomic_write_file(path_, buf_);
  }
  return result_;
}

int Table::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Table read_file(const std::string& path) {
  Table t;
  std::ifstream in(path);
  if (!in) return t;
  std::string line;
  if (std::getline(in, line)) t.header = split_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = split_line(line);
    if (!t.header.empty() && cells.size() != t.header.size()) {
      ++t.malformed_rows;
      // Pad short rows so positional reads stay in bounds; keep extra cells
      // on long rows (name-based column lookups still resolve correctly).
      if (cells.size() < t.header.size()) cells.resize(t.header.size());
    }
    t.rows.push_back(std::move(cells));
  }
  if (t.malformed_rows > 0) {
    static obs::Counter& ragged =
        obs::registry().counter("p5g.csv.read_ragged_rows");
    ragged.add(t.malformed_rows);
  }
  return t;
}

std::string format(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace p5g::csv
