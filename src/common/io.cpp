#include "common/io.h"

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/chaos.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define P5G_HAVE_FSYNC 1
#else
#define P5G_HAVE_FSYNC 0
#endif

namespace p5g::io {

namespace {

struct AtomicIoStats {
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> chaos_injected{0};
};

AtomicIoStats& stats() noexcept {
  static AtomicIoStats s;
  return s;
}

std::string errno_text(const char* op) {
  std::string out(op);
  out += ": ";
  out += std::strerror(errno);
  return out;
}

// One write attempt: tmp file, full content, flush through the OS, rename
// over the destination. Returns success() or the failure cause.
IoResult write_once(const std::string& path, const std::string& tmp,
                    std::string_view content) {
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return IoResult::failure(errno_text("fopen"));
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    const IoResult r = IoResult::failure(errno_text("fwrite"));
    std::fclose(f);
    std::remove(tmp.c_str());
    return r;
  }
  if (std::fflush(f) != 0) {
    const IoResult r = IoResult::failure(errno_text("fflush"));
    std::fclose(f);
    std::remove(tmp.c_str());
    return r;
  }
#if P5G_HAVE_FSYNC
  if (fsync(fileno(f)) != 0) {
    const IoResult r = IoResult::failure(errno_text("fsync"));
    std::fclose(f);
    std::remove(tmp.c_str());
    return r;
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return IoResult::failure(errno_text("fclose"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const IoResult r = IoResult::failure(errno_text("rename"));
    std::remove(tmp.c_str());
    return r;
  }
  return IoResult::success();
}

}  // namespace

IoResult atomic_write_file(const std::string& path, std::string_view content,
                           const RetryPolicy& retry) {
  const std::string tmp = path + ".tmp";
  const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  IoResult last = IoResult::failure("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats().retries.fetch_add(1, std::memory_order_relaxed);
      long backoff = static_cast<long>(retry.initial_backoff_ms)
                     << (attempt - 1);
      if (backoff > retry.max_backoff_ms) backoff = retry.max_backoff_ms;
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    if (chaos::should_fault_io(path, attempt)) {
      stats().chaos_injected.fetch_add(1, std::memory_order_relaxed);
      last = IoResult::failure("chaos: injected I/O write failure");
      continue;
    }
    last = write_once(path, tmp, content);
    if (last.ok) {
      stats().writes.fetch_add(1, std::memory_order_relaxed);
      return last;
    }
  }
  stats().failures.fetch_add(1, std::memory_order_relaxed);
  return last;
}

IoStats io_stats() noexcept {
  const AtomicIoStats& s = stats();
  IoStats out;
  out.writes = s.writes.load(std::memory_order_relaxed);
  out.retries = s.retries.load(std::memory_order_relaxed);
  out.failures = s.failures.load(std::memory_order_relaxed);
  out.chaos_injected = s.chaos_injected.load(std::memory_order_relaxed);
  return out;
}

void reset_io_stats() noexcept {
  AtomicIoStats& s = stats();
  s.writes.store(0, std::memory_order_relaxed);
  s.retries.store(0, std::memory_order_relaxed);
  s.failures.store(0, std::memory_order_relaxed);
  s.chaos_injected.store(0, std::memory_order_relaxed);
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) noexcept {
  // Table for the reflected IEEE polynomial, built once.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace p5g::io
