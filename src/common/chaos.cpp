#include "common/chaos.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace p5g::chaos {

namespace {

// Installed profile, guarded by a mutex for install/clear and mirrored into
// an atomic flag so the hot-path hooks can bail without locking when no
// chaos is active (the overwhelmingly common case).
std::mutex g_mu;
ChaosProfile g_profile;
std::atomic<bool> g_active{false};

struct AtomicChaosStats {
  std::atomic<std::uint64_t> task_faults{0};
  std::atomic<std::uint64_t> stalls{0};
};

AtomicChaosStats& stats() noexcept {
  static AtomicChaosStats s;
  return s;
}

// SplitMix64 finalizer: the same mixer common/rng.h uses for stream
// splitting. Duplicated here (three lines) so this library stays below
// p5g_common in the DAG.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_path(std::string_view path) noexcept {
  // FNV-1a 64-bit: stable across runs and platforms (unlike std::hash).
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Uniform [0,1) from a key under the installed seed and a per-decision-kind
// salt, so the task-fault, stall, and io-fault populations are independent.
double draw(std::uint64_t seed, std::uint64_t salt, std::uint64_t key) noexcept {
  const std::uint64_t bits = mix64(seed ^ salt ^ mix64(key));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kTaskSalt = 0x7A5C0FA17ULL;
constexpr std::uint64_t kStallSalt = 0x57A11ED00ULL;
constexpr std::uint64_t kIoSalt = 0x10FA171EULL;

}  // namespace

void install(const ChaosProfile& p) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_profile = p;
  g_active.store(true, std::memory_order_release);
}

void clear() {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_profile = ChaosProfile{};
  g_active.store(false, std::memory_order_release);
}

bool active() noexcept { return g_active.load(std::memory_order_acquire); }

ChaosProfile profile() noexcept {
  if (!active()) return ChaosProfile{};
  const std::lock_guard<std::mutex> lock(g_mu);
  return g_profile;
}

ScopedChaos::ScopedChaos(const ChaosProfile& p)
    : had_previous_(active()), previous_(profile()) {
  install(p);
}

ScopedChaos::~ScopedChaos() {
  if (had_previous_) {
    install(previous_);
  } else {
    clear();
  }
}

bool should_fault_task(std::uint64_t key) noexcept {
  if (!active()) return false;
  const ChaosProfile p = profile();
  return p.task_fault_rate > 0.0 &&
         draw(p.seed, kTaskSalt, key) < p.task_fault_rate;
}

bool should_stall_task(std::uint64_t key) noexcept {
  if (!active()) return false;
  const ChaosProfile p = profile();
  return p.stall_rate > 0.0 && draw(p.seed, kStallSalt, key) < p.stall_rate;
}

bool should_fault_io(std::string_view path, int attempt) noexcept {
  if (!active()) return false;
  const ChaosProfile p = profile();
  if (p.io_fault_rate <= 0.0 || attempt >= p.io_fault_attempts) return false;
  return draw(p.seed, kIoSalt, hash_path(path)) < p.io_fault_rate;
}

void maybe_fault_task(std::uint64_t key) {
  if (!should_fault_task(key)) return;
  stats().task_faults.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault("chaos: injected task fault (key=" + std::to_string(key) +
                      ")");
}

void maybe_stall_task(std::uint64_t key) {
  if (!should_stall_task(key)) return;
  stats().stalls.fetch_add(1, std::memory_order_relaxed);
  const double ms = profile().stall_ms.v;
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

ChaosStats chaos_stats() noexcept {
  const AtomicChaosStats& s = stats();
  ChaosStats out;
  out.task_faults = s.task_faults.load(std::memory_order_relaxed);
  out.stalls = s.stalls.load(std::memory_order_relaxed);
  return out;
}

void reset_chaos_stats() noexcept {
  AtomicChaosStats& s = stats();
  s.task_faults.store(0, std::memory_order_relaxed);
  s.stalls.store(0, std::memory_order_relaxed);
}

}  // namespace p5g::chaos
