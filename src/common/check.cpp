#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace p5g::check {

namespace {

void default_handler(const Failure& f) {
  std::fprintf(stderr, "p5g %s violated at %s:%d: %s%s%s\n", kind_name(f.kind),
               f.file, f.line, f.expression, f.message[0] ? " — " : "",
               f.message);
}

std::atomic<Handler> g_handler{&default_handler};

}  // namespace

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kRequire: return "REQUIRE";
    case Kind::kAssert: return "ASSERT";
    case Kind::kEnsure: return "ENSURE";
  }
  return "?";
}

Handler set_handler(Handler h) noexcept {
  return g_handler.exchange(h ? h : &default_handler,
                            std::memory_order_acq_rel);
}

void fail(Kind kind, const char* expr, const char* file, int line,
          const char* message) {
  const Failure f{kind, expr, file, line, message};
  g_handler.load(std::memory_order_acquire)(f);
  // A handler that neither throws nor exits gets the default treatment: a
  // violated contract must never be silently resumed.
  std::abort();
}

bool library_checks_enabled() noexcept { return P5G_CHECKS_ENABLED != 0; }

}  // namespace p5g::check
