// Data-plane models: per-tick downlink throughput and TCP RTT, as functions
// of the UE radio state and any HO in execution.
//
// Key behaviours reproduced:
//  * NSA traffic modes (§4.2): SCG ("5G-only") bearer puts all traffic on
//    NR — lower base RTT but a dead data plane during NR HOs; MCG-split
//    ("dual") bearer keeps LTE flowing through NR HOs at the cost of the
//    core->eNB->gNB detour (higher base RTT).
//  * HO interruption (§5.2): data on a halted leg is zero during T2.
//  * Band capacity ordering (§6.2/Fig. 12/16): mmWave >> mid > low >> LTE.
#pragma once

#include <optional>

#include "common/rng.h"
#include "common/units.h"
#include "radio/band.h"
#include "radio/propagation.h"
#include "ran/handover.h"

namespace p5g::tput {

// NSA bearer configuration (§4.2).
enum class TrafficMode {
  kDual,    // MCG split bearer: traffic on both 4G and 5G interfaces
  kNrOnly,  // SCG bearer: all traffic on the 5G interface
};

// Instantaneous achievable capacity of one link.
Mbps link_capacity(radio::Band band, Db sinr_db);

// Per-leg link state fed into the data-plane models.
struct LegState {
  bool attached = false;
  bool halted = false;  // inside a T2 that halts this leg
  radio::Band band{};
  Db sinr_db{-20.0};
};

struct DataPlaneInput {
  LegState lte;
  LegState nr;
  TrafficMode mode = TrafficMode::kNrOnly;
};

// Bulk-transfer (iPerf-style saturating flow) downlink throughput for one
// tick. Applies scheduler utilization noise.
Mbps downlink_throughput(const DataPlaneInput& in, Rng& rng);

// TCP round-trip-time sample for one tick. `active_ho` is the procedure in
// execution (T2) if any; dual mode absorbs NR HO interruptions (1-4 % RTT
// change) while NR-only mode inflates 37-58 % in the median (§4.2).
Milliseconds rtt_sample(const DataPlaneInput& in,
                        std::optional<ran::HoType> active_ho, Rng& rng);

// Variant aware of the fault layer: while an RRC re-establishment has the
// whole data plane down, packets queue far longer than during any HO
// execution window. `reestablishing` false is byte-for-byte the old model.
Milliseconds rtt_sample(const DataPlaneInput& in,
                        std::optional<ran::HoType> active_ho,
                        bool reestablishing, Rng& rng);

}  // namespace p5g::tput
