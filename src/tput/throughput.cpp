#include "tput/throughput.h"

#include <algorithm>

namespace p5g::tput {

Mbps link_capacity(radio::Band band, Db sinr_db) {
  const radio::BandProfile& p = radio::band_profile(band);
  return p.peak_throughput * radio::sinr_to_efficiency(sinr_db);
}

namespace {

Mbps leg_capacity(const LegState& leg) {
  if (!leg.attached || leg.halted) return 0.0;
  return link_capacity(leg.band, leg.sinr_db);
}

}  // namespace

Mbps downlink_throughput(const DataPlaneInput& in, Rng& rng) {
  const Mbps lte_cap = leg_capacity(in.lte);
  const Mbps nr_cap = leg_capacity(in.nr);

  Mbps total = 0.0;
  if (in.mode == TrafficMode::kNrOnly) {
    // SCG bearer: everything rides NR; when the SCG is absent the bearer
    // falls back to the MCG (LTE).
    total = in.nr.attached ? nr_cap : lte_cap;
  } else {
    // MCG split: both interfaces carry data; the eNB split point costs some
    // NR efficiency (core -> eNB -> gNB forwarding).
    total = 0.92 * nr_cap + 0.80 * lte_cap;
  }
  // Scheduler / fair-share utilization ripple.
  return total * rng.uniform(0.82, 1.0);
}

Milliseconds rtt_sample(const DataPlaneInput& in,
                        std::optional<ran::HoType> active_ho, Rng& rng) {
  return rtt_sample(in, active_ho, /*reestablishing=*/false, rng);
}

Milliseconds rtt_sample(const DataPlaneInput& in,
                        std::optional<ran::HoType> active_ho,
                        bool reestablishing, Rng& rng) {
  // Base path RTT by bearer topology.
  Milliseconds base;
  if (!in.nr.attached) {
    base = 42.0_ms;  // LTE only
  } else if (in.mode == TrafficMode::kNrOnly) {
    base = 28.0_ms;  // core -> gNB directly
  } else {
    base = 38.0_ms;  // core -> eNB -> gNB detour
  }
  // Heavy-tailed queueing noise.
  Milliseconds rtt{base.v + rng.exponential(4.0) + rng.normal(0.0, 1.5)};

  if (reestablishing) {
    // RRC re-establishment: every path is down until the new connection is
    // up; packets ride retransmission timers, far past any HO stall.
    rtt *= rng.uniform(2.2, 4.0);
    if (rng.bernoulli(0.6)) rtt += Millis{rng.uniform(150.0, 600.0)};
    return std::max(rtt, 4.0_ms);
  }

  if (active_ho) {
    const ran::HoInterruption intr = ran::ho_interruption(*active_ho);
    const bool nr_hit = intr.halts_nr;
    const bool lte_hit = intr.halts_lte;
    if (nr_hit && lte_hit) {
      // Anchor HO with SCG handling (MNBH): every path is down.
      rtt *= rng.uniform(1.9, 3.2);
      if (rng.bernoulli(0.5)) rtt += Millis{rng.uniform(80.0, 300.0)};
    } else if (nr_hit && !in.nr.attached) {
      // SCG Addition: the bearer stays on LTE; only a brief reconfiguration
      // pause is felt.
      rtt *= rng.uniform(1.2, 1.5);
    } else if (in.mode == TrafficMode::kDual && in.nr.attached && nr_hit && !lte_hit) {
      // The 4G leg keeps transmitting: only a slight median change (1-4 %).
      rtt *= rng.uniform(1.01, 1.05);
    } else if (lte_hit && (in.mode == TrafficMode::kDual || !in.nr.attached)) {
      // Anchor HO stalls everything.
      rtt *= rng.uniform(1.8, 3.5);
    } else if (nr_hit) {
      // NR-only bearer with the single interface down: packets queue for
      // the length of the interruption; median inflation 37-58 %, tail
      // much worse.
      rtt *= rng.uniform(1.37, 1.9);
      if (rng.bernoulli(0.2)) rtt += Millis{rng.uniform(40.0, 160.0)};
    }
  }
  return std::max(rtt, 4.0_ms);
}

}  // namespace p5g::tput
