// RAN fault injection: the failure machinery 3GPP wraps around every
// handover, modeled so traces can contain the preparation failures, T304
// expiries, RACH retries, and radio-link failures that real drive logs show
// (Ghoshal et al., Kalntis et al.).
//
// Mapping to the standards vocabulary:
//   * preparation failure  — the target rejects the HO request during T1
//     (HandoverPreparationFailure); the UE never receives a command and the
//     data plane is untouched.
//   * execution failure    — the T304-style supervision timer expires when
//     RACH toward the target fails. Each attempt may be retried after a
//     capped exponential backoff; when all attempts fail, SCG procedures
//     fall back via a fast SCG release (SCGFailureInformation path) while
//     MCG procedures enter RRC re-establishment.
//   * radio link failure   — serving RSRP below a Qout-style threshold for a
//     T310-style interval declares RLF and triggers RRC re-establishment
//     with an extended full data-plane interruption.
//
// Fault randomness is drawn from a DEDICATED RNG stream: a default
// (all-zero) FaultProfile consumes no randomness at all and reproduces the
// fault-free simulation bit-for-bit. That determinism is acceptance-tested.
#pragma once

#include <array>
#include <optional>

#include "common/rng.h"
#include "common/units.h"
#include "ran/handover.h"

namespace p5g::ran {

// Per-HO-type probability table (indexed by HoType).
struct HoTypeProbs {
  std::array<double, 7> p{};

  double operator[](HoType t) const { return p[static_cast<std::size_t>(t)]; }
  double& operator[](HoType t) { return p[static_cast<std::size_t>(t)]; }
  void fill(double v) { p.fill(v); }
  bool any() const {
    for (double v : p) {
      if (v > 0.0) return true;
    }
    return false;
  }
};

struct FaultProfile {
  // T1 aborts: probability the target rejects the preparation.
  HoTypeProbs prep_failure;
  // T2 aborts: per-RACH-attempt failure probability (SCGR carries no RACH
  // and is exempt from execution failure).
  HoTypeProbs exec_failure;

  // RACH retry with capped exponential backoff. A failed attempt waits
  // backoff(k) = min(base * factor^(k-1), cap) and then spends another
  // attempt duration; at most `rach_max_attempts` attempts are made.
  int rach_max_attempts = 3;
  Milliseconds rach_attempt_ms{18.0};
  Milliseconds rach_backoff_base_ms{20.0};
  double rach_backoff_factor = 2.0;
  Milliseconds rach_backoff_cap_ms{160.0};

  // Radio link failure: primary serving RSRP below `rlf_qout_dbm` for
  // `rlf_t310` seconds declares RLF.
  bool rlf_enabled = false;
  Dbm rlf_qout_dbm{-120.0};
  Seconds rlf_t310{1.0};

  // RRC re-establishment duration (truncated normal), applied after RLF and
  // after MCG execution failures. The whole data plane is down throughout.
  Milliseconds reestablish_mean_ms{240.0};
  Milliseconds reestablish_sd_ms{60.0};
  Milliseconds reestablish_floor_ms{80.0};

  // Extra interruption when an SCG procedure exhausts its RACH attempts and
  // the UE falls back to LTE via fast SCG release.
  Milliseconds scg_failure_fallback_ms{30.0};

  // True for the default profile: no fault machinery runs and the simulator
  // reproduces the fault-free trace exactly.
  bool is_zero() const {
    return !prep_failure.any() && !exec_failure.any() && !rlf_enabled;
  }

  // Convenience: a profile with uniform prep/exec failure probabilities and
  // RLF enabled, for tests and robustness scenarios.
  static FaultProfile uniform(double prep_p, double exec_p, bool rlf = false);
};

// Contract check over every FaultProfile field (probabilities in [0, 1],
// positive retry/backoff parameters, sane RLF timer). Runs when the
// contract layer is active; a no-op otherwise. FaultInjector calls it, so
// a malformed profile trips at construction instead of skewing a sweep.
void validate_fault_profile(const FaultProfile& profile);

// Samples fault decisions from a dedicated RNG stream.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, Rng rng)
      : profile_(profile), rng_(rng) {
    validate_fault_profile(profile_);
  }

  const FaultProfile& profile() const { return profile_; }
  bool enabled() const { return !profile_.is_zero(); }

  // One Bernoulli draw against the per-type preparation-failure probability.
  bool prep_fails(HoType t);

  // Samples the whole execution stage up front: attempts consumed, retry
  // time beyond the first attempt, total backoff, and final success.
  struct ExecPlan {
    int attempts = 1;
    Milliseconds retry_ms{0.0};    // extra attempt durations (excl. backoff)
    Milliseconds backoff_ms{0.0};  // capped-exponential backoff total
    bool success = true;
  };
  ExecPlan plan_execution(HoType t);

  // Pure backoff math for attempt k >= 1 (exposed for tests).
  Milliseconds backoff_ms(int attempt) const;

  // One re-establishment duration sample.
  Milliseconds reestablish_duration();

 private:
  FaultProfile profile_;
  Rng rng_;
};

// Qout/T310-style radio-link-failure monitor over the primary serving leg.
class RlfMonitor {
 public:
  explicit RlfMonitor(const FaultProfile& profile)
      : enabled_(profile.rlf_enabled),
        qout_(profile.rlf_qout_dbm),
        t310_(profile.rlf_t310) {}

  // Feed one tick; returns true exactly when the T310 timer expires.
  // `serving_valid` false (no measurable serving cell) counts as below Qout.
  bool update(Seconds t, Dbm serving_rsrp, bool serving_valid);

  void reset() { below_since_.reset(); }
  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  Dbm qout_;
  Seconds t310_;
  std::optional<Seconds> below_since_;
};

}  // namespace p5g::ran
