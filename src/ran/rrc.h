// RRC-layer signaling message types and per-layer signaling accounting.
//
// The paper counts three RRC message types (Measurement Report,
// RRCReconfiguration, RRCReconfigurationComplete), the MAC-layer RACH
// procedure, and PHY-layer SSB/SSR measurements when comparing signaling
// overhead across architectures (§5.1).
#pragma once

#include <string_view>

#include "common/units.h"
#include "ran/events.h"

namespace p5g::ran {

enum class RrcMessageType {
  kMeasurementReport,
  kRrcReconfiguration,          // the HO command
  kRrcReconfigurationComplete,  // UE acknowledgement
};

std::string_view rrc_message_name(RrcMessageType t);

// A measurement report as delivered to the primary cell.
struct MeasurementReport {
  Seconds time{0.0};
  EventType event{};
  MeasScope scope{};
  int serving_pci = -1;
  int neighbor_pci = -1;
  int neighbor_cell_id = -1;
  Dbm serving_rsrp{-140.0};
  Dbm neighbor_rsrp{-140.0};
};

// Per-layer signaling message counts attributable to one HO (or accumulated
// over a window).
struct SignalingCounts {
  int rrc = 0;   // MR + Reconfiguration + ReconfigurationComplete
  int mac = 0;   // RACH attempts (preamble + response + msg3/msg4)
  int phy = 0;   // SSB / SSR measurement occasions

  SignalingCounts& operator+=(const SignalingCounts& o) {
    rrc += o.rrc;
    mac += o.mac;
    phy += o.phy;
    return *this;
  }
  int total() const { return rrc + mac + phy; }
};

}  // namespace p5g::ran
