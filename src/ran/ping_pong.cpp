#include "ran/ping_pong.h"

#include "radio/band.h"

namespace p5g::ran {

bool PingPongTracker::on_handover(const HandoverRecord& rec) {
  // Releases (SCGR) and failed procedures end no chain and start none: a
  // bounce that *fails* on the way back is an RLF problem, not a ping-pong.
  if (!rec.succeeded() || rec.dst_pci < 0) return false;
  const auto leg =
      static_cast<std::size_t>(radio::band_rat(rec.dst_band) == radio::Rat::kNr);
  LegState& st = legs_[leg];
  ++handovers_;
  const bool ping_pong = rec.src_pci >= 0 && st.prev_pci == rec.dst_pci &&
                         rec.complete_time - st.last_time <= window_;
  if (ping_pong) ++ping_pongs_;
  // SCG Addition has no source leg (prev resets): the next HO cannot close
  // a pair against a cell the UE never left.
  st.prev_pci = rec.src_pci;
  st.last_time = rec.complete_time;
  return ping_pong;
}

void PingPongTracker::reset() {
  legs_[0] = LegState{};
  legs_[1] = LegState{};
  handovers_ = 0;
  ping_pongs_ = 0;
}

}  // namespace p5g::ran
