#include "ran/mobility_manager.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/events.h"
#include "radio/batch.h"

namespace p5g::ran {

namespace {

// ------------------------------------------------- flight-recorder emits --
// One helper per HO event shape. All sim-track events: times are simulated
// Seconds already computed by the phase machine, payloads are the record's
// authoritative millisecond values carried verbatim (obs::Event holds
// doubles bit-exact), so analysis::ho_timeline reconstructs HandoverRecords
// whose ho_stats agree EXACTLY with the ones in the trace log. Emission
// reads no clock and no RNG — the golden traces are identical with the
// recorder on or off.

void emit_prep_span(const HandoverRecord& rec, std::uint64_t flow) {
  p5g::obs::Event e;
  e.kind = p5g::obs::EventKind::kSpan;
  e.category = p5g::obs::EventCategory::kHoPrep;
  e.t0 = rec.decision_time.v;
  e.t1 = rec.exec_start.v;
  e.a0 = rec.timing.t1_ms.v;  // authoritative T1 duration
  e.a1 = rec.route_position.v;
  e.flow = flow;
  e.i0 = rec.src_pci;
  e.i1 = rec.dst_pci;
  e.i2 = pack_ho_code(rec.type, rec.outcome, rec.src_band, rec.dst_band);
  p5g::obs::event_log().emit(e);
}

void emit_exec_span(const HandoverRecord& rec, Seconds exec_end,
                    std::uint64_t flow) {
  p5g::obs::Event e;
  e.kind = p5g::obs::EventKind::kSpan;
  e.category = p5g::obs::EventCategory::kHoExec;
  e.t0 = rec.exec_start.v;
  e.t1 = exec_end.v;
  e.a0 = rec.timing.t2_ms.v;  // authoritative T2 (includes retries + backoff)
  e.a1 = rec.backoff_ms.v;
  e.flow = flow;
  e.i0 = rec.rach_attempts;
  e.i1 = rec.dst_pci;
  e.i2 = pack_ho_code(rec.type, rec.outcome, rec.src_band, rec.dst_band);
  p5g::obs::event_log().emit(e);
  if (rec.rach_attempts > 1) {
    // The fault layer's retry chain: attempts and total backoff inside T2.
    e.category = p5g::obs::EventCategory::kRachRetry;
    e.a0 = rec.backoff_ms.v;
    e.a1 = 0.0;
    p5g::obs::event_log().emit(e);
  }
}

void emit_reestablish_span(const HandoverRecord& rec, std::uint64_t flow) {
  p5g::obs::Event e;
  e.kind = p5g::obs::EventKind::kSpan;
  e.category = p5g::obs::EventCategory::kRlf;
  e.t0 = (rec.complete_time - ms_to_s(rec.reestablish_ms)).v;
  e.t1 = rec.complete_time.v;
  e.a0 = rec.reestablish_ms.v;  // authoritative re-establishment duration
  e.a1 = rec.route_position.v;
  e.flow = flow;
  e.i0 = rec.src_pci;
  e.i1 = rec.dst_pci;
  e.i2 = pack_ho_code(rec.type, rec.outcome, rec.src_band, rec.dst_band);
  p5g::obs::event_log().emit(e);
}

void emit_complete(const HandoverRecord& rec, std::uint64_t flow) {
  p5g::obs::Event e;
  e.kind = p5g::obs::EventKind::kInstant;
  e.category = p5g::obs::EventCategory::kHoComplete;
  e.t0 = rec.complete_time.v;
  e.t1 = rec.complete_time.v;
  e.a0 = rec.timing.t1_ms.v;  // authoritative phase durations: a prep-failed
  e.a1 = rec.timing.t2_ms.v;  // record keeps its sampled (never-run) T2
  e.flow = flow;
  e.i0 = rec.colocated ? 1 : 0;
  e.i1 = rec.rach_attempts;
  e.i2 = pack_ho_code(rec.type, rec.outcome, rec.src_band, rec.dst_band);
  p5g::obs::event_log().emit(e);
}

}  // namespace

ShadowMap resolve_shadow_fields(const Deployment& deployment) {
  ShadowMap fields;
  fields.reserve(deployment.cells().size());
  // Seeded by cell identity only (same seed expression the lazy per-tick
  // path used), so the field values — and therefore traces — are unchanged
  // whether the map is owned or shared.
  for (const Cell& c : deployment.cells()) {
    fields.emplace_back(c.band,
                        0x5EEDULL ^ (static_cast<std::uint64_t>(c.id) * 0x9E37ULL));
  }
  return fields;
}

MobilityManager::MobilityManager(const Deployment& deployment, Config config, Rng rng,
                                 const ShadowMap* shared_shadow)
    : deployment_(deployment),
      config_(config),
      rng_(rng),
      // The fault stream is forked (not consumed) from the main stream:
      // fault draws can never shift the fault-free simulation.
      injector_(config.faults, rng.fork(0xFA177FULL)),
      rlf_(config.faults),
      policy_(make_ho_policy(config.ho_policy, config.ho_config,
                             config.adaptive_ho)),
      ping_pong_(config.adaptive_ho.ping_pong_window) {
  state_.arch = config_.arch;
  // Initial measConfig, resolved against the not-yet-attached context
  // (cfg_*_cell_ == -1 matches, so the first refresh is a no-op under any
  // static map).
  const std::vector<EventConfig> configs = policy_->event_set(policy_context());
  monitors_.reserve(configs.size());
  for (const EventConfig& c : configs) monitors_.emplace_back(c);

  if (shared_shadow != nullptr) {
    P5G_REQUIRE(shared_shadow->size() == deployment_.cells().size(),
                "shared shadow map must cover every deployment cell");
    shadow_ = shared_shadow;
  } else {
    shadow_owned_ = resolve_shadow_fields(deployment_);
    shadow_ = &shadow_owned_;
  }

  p5g::obs::MetricsRegistry& reg = p5g::obs::registry();
  metrics_.reports = &reg.counter("p5g.ran.reports");
  metrics_.ho_started = &reg.counter("p5g.ran.ho.started");
  metrics_.ho_commands = &reg.counter("p5g.ran.ho.commands");
  metrics_.ho_success = &reg.counter("p5g.ran.ho.success");
  metrics_.ho_prep_fail = &reg.counter("p5g.ran.ho.prep_failure");
  metrics_.ho_exec_fail = &reg.counter("p5g.ran.ho.exec_failure");
  metrics_.ho_rlf_reest = &reg.counter("p5g.ran.ho.rlf_reestablish");
  metrics_.ho_ping_pong = &reg.counter("p5g.ran.ho.ping_pong");
  metrics_.rlf_triggers = &reg.counter("p5g.ran.rlf.triggers");
  metrics_.observe_ms = &reg.histogram("p5g.ran.observe_ms");
  metrics_.decide_ms = &reg.histogram("p5g.ran.decide_ms");
  static constexpr double kBatchBounds[] = {0.0, 2.0, 4.0, 8.0, 16.0,
                                            32.0, 64.0, 128.0};
  metrics_.batch_size = &reg.histogram("p5g.radio.batch_size", kBatchBounds);

  shadow_corners_.resize(deployment_.cells().size());
  tower_angle_.resize(deployment_.towers().size(), 0.0);
  tower_angle_epoch_.resize(deployment_.towers().size(), 0);
}

std::vector<EventConfig> MobilityManager::active_event_configs() const {
  std::vector<EventConfig> out;
  out.reserve(monitors_.size());
  for (const EventMonitor& m : monitors_) out.push_back(m.config());
  return out;
}

HoPolicyContext MobilityManager::policy_context() const {
  HoPolicyContext ctx;
  ctx.arch = config_.arch;
  ctx.nr_band = config_.nr_band;
  ctx.lte_band = config_.lte_band;
  ctx.lte_cell_id = state_.lte_cell_id;
  ctx.nr_cell_id = state_.nr_cell_id;
  return ctx;
}

void MobilityManager::refresh_event_configs() {
  const bool serving_changed = state_.lte_cell_id != cfg_lte_cell_ ||
                               state_.nr_cell_id != cfg_nr_cell_;
  if (!serving_changed && !policy_->dirty()) return;
  cfg_lte_cell_ = state_.lte_cell_id;
  cfg_nr_cell_ = state_.nr_cell_id;
  const std::vector<EventConfig> fresh = policy_->event_set(policy_context());
  const bool unchanged =
      fresh.size() == monitors_.size() &&
      std::equal(fresh.begin(), fresh.end(), monitors_.begin(),
                 [](const EventConfig& c, const EventMonitor& m) {
                   return c == m.config();
                 });
  if (unchanged) return;  // same measConfig: monitor state survives
  monitors_.clear();
  monitors_.reserve(fresh.size());
  for (const EventConfig& c : fresh) monitors_.emplace_back(c);
}

void MobilityManager::observe(Seconds /*t*/, geo::Point pos, Meters moved,
                              radio::Band band, std::vector<CellObservation>& out) {
  const radio::BandProfile& bp = radio::band_profile(band);
  const Meters radius = bp.nominal_radius_m * config_.observe_radius_factor;
  const Db interference = radio::band_rat(band) == radio::Rat::kLte
                              ? config_.lte_interference_db
                              : config_.nr_interference_db;
  (void)moved;
  deployment_.cells_near(pos, band, radius, near_buf_);
  const std::size_t n = near_buf_.size();
  if (batch_sampler_.next()) {
    metrics_.batch_size->record(static_cast<double>(n));
  }
  out.reserve(out.size() + n);

  if (config_.scalar_observe) {
    // Scalar reference pipeline (one cell at a time), kept verbatim so the
    // batched path below can be byte-compared against it.
    for (const CellHit& hit : near_buf_) {
      const Cell* c = hit.cell;
      // The shadowing field is seeded by the cell identity only, so the same
      // location shadows the same way on every loop of a route.
      const Db shadow = (*shadow_)[static_cast<std::size_t>(c->id)].at(pos.x, pos.y);
      const Db fading = radio::fast_fading_db(band, rng_);
      // Directional cells attenuate off-boresight (angle from the TOWER).
      Db dir_loss{0.0};
      if (c->directional) {
        const geo::Point tower = deployment_.tower(c->tower_id).position;
        const double ue_angle = std::atan2(pos.y - tower.y, pos.x - tower.x);
        double diff = std::abs(ue_angle - c->azimuth_rad);
        while (diff > 3.14159265358979) diff = std::abs(diff - 2.0 * 3.14159265358979);
        const radio::BeamPattern beam = radio::beam_pattern(band);
        dir_loss = radio::sector_attenuation_db(diff, beam.beamwidth_rad,
                                                beam.max_attenuation_db);
      }
      // hit.dist is geo::distance(c->position, pos) cached by the index.
      out.push_back(
          {c, radio::make_rrs(band, hit.dist, shadow, fading, interference, dir_loss)});
    }
    return;
  }

  // Batched SoA pipeline. Each pass below touches one contiguous array, and
  // the per-element math matches the scalar path double for double:
  //   * shadowing keeps the exact blend association (at_cached == at), and
  //     every co-band field shares one GridWeights computation;
  //   * fading is the ONLY RNG consumer, drawn sequentially in hit order so
  //     the stream position matches the scalar path draw for draw;
  //   * make_rrs_batch preserves make_rrs's operand order.
  if (n == 0) return;
  batch_.dist.resize(n);
  batch_.shadow.resize(n);
  batch_.fading.resize(n);
  batch_.dir_loss.resize(n);
  batch_.rrs.resize(n);

  // All hits are cells of `band`, so they share one grid geometry; the
  // per-cell corner caches re-hash only on grid-cell crossings.
  const radio::ShadowingField::GridWeights weights =
      (*shadow_)[static_cast<std::size_t>(near_buf_[0].cell->id)].weights_at(pos.x,
                                                                             pos.y);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::size_t>(near_buf_[i].cell->id);
    batch_.shadow[i] = (*shadow_)[id].at_cached(weights, shadow_corners_[id]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    batch_.fading[i] = radio::fast_fading_db(band, rng_);
  }

  const radio::BeamPattern beam = radio::beam_pattern(band);
  for (std::size_t i = 0; i < n; ++i) {
    const Cell* c = near_buf_[i].cell;
    if (!c->directional) {
      batch_.dir_loss[i] = 0.0_db;
      continue;
    }
    const auto tw = static_cast<std::size_t>(c->tower_id);
    if (tower_angle_epoch_[tw] != angle_epoch_) {
      const geo::Point tower = deployment_.tower(c->tower_id).position;
      tower_angle_[tw] = std::atan2(pos.y - tower.y, pos.x - tower.x);
      tower_angle_epoch_[tw] = angle_epoch_;
    }
    double diff = std::abs(tower_angle_[tw] - c->azimuth_rad);
    while (diff > 3.14159265358979) diff = std::abs(diff - 2.0 * 3.14159265358979);
    batch_.dir_loss[i] = radio::sector_attenuation_db(diff, beam.beamwidth_rad,
                                                      beam.max_attenuation_db);
  }

  for (std::size_t i = 0; i < n; ++i) batch_.dist[i] = near_buf_[i].dist;
  radio::make_rrs_batch(band, interference, n, batch_.dist.data(),
                        batch_.shadow.data(), batch_.fading.data(),
                        batch_.dir_loss.data(), batch_.rrs.data());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({near_buf_[i].cell, batch_.rrs[i]});
  }
}

const CellObservation* MobilityManager::find_obs(
    const std::vector<CellObservation>& obs, int cell_id) const {
  // The tick's observation list is band-segmented (LTE first, then NR; see
  // tick()), so the scan covers only the segment the cell's band lives in.
  const bool lte = deployment_.cell(cell_id).band == config_.lte_band;
  const std::size_t begin = lte ? 0 : lte_obs_end_;
  const std::size_t end = lte ? lte_obs_end_ : obs.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (obs[i].cell->id == cell_id) return &obs[i];
  }
  return nullptr;
}

const CellObservation* MobilityManager::best_of_band(
    const std::vector<CellObservation>& obs, radio::Band band, int same_tower,
    int exclude_tower, int exclude_cell) const {
  // Band segmentation (see find_obs) narrows the scan; the per-element band
  // check stays as a correctness guard for bands outside both segments.
  const bool lte = band == config_.lte_band;
  const std::size_t begin = lte ? 0 : lte_obs_end_;
  const std::size_t end = lte ? lte_obs_end_ : obs.size();
  const CellObservation* best = nullptr;
  for (std::size_t i = begin; i < end; ++i) {
    const CellObservation& o = obs[i];
    if (o.cell->band != band) continue;
    if (o.cell->id == exclude_cell) continue;
    if (same_tower >= 0 && o.cell->tower_id != same_tower) continue;
    if (exclude_tower >= 0 && o.cell->tower_id == exclude_tower) continue;
    if (!best || o.rrs.rsrp > best->rrs.rsrp) best = &o;
  }
  return best;
}

void MobilityManager::ensure_attached(const std::vector<CellObservation>& obs) {
  if (config_.arch != Arch::kSa) {
    if (state_.lte_cell_id >= 0 && !find_obs(obs, state_.lte_cell_id)) {
      state_.lte_cell_id = -1;  // radio link lost; will re-attach below
    }
    if (state_.lte_cell_id < 0) {
      const CellObservation* best =
          best_of_band(obs, config_.lte_band, -1, -1, -1);
      if (best) state_.lte_cell_id = best->cell->id;
    }
    if (state_.nr_cell_id >= 0 && !find_obs(obs, state_.nr_cell_id)) {
      state_.nr_cell_id = -1;  // SCG radio link failure (silent release)
    }
  } else {
    if (state_.nr_cell_id >= 0 && !find_obs(obs, state_.nr_cell_id)) {
      state_.nr_cell_id = -1;
    }
    if (state_.nr_cell_id < 0) {
      const CellObservation* best = best_of_band(obs, config_.nr_band, -1, -1, -1);
      if (best) state_.nr_cell_id = best->cell->id;
    }
  }
}

void MobilityManager::run_event_monitors(Seconds t,
                                         const std::vector<CellObservation>& obs,
                                         TickResult& out) {
  // Per-tick neighbor digest: serving ids are fixed for the whole monitor
  // pass (nothing below mutates state_), and every monitor's neighbor
  // lookup is one of five best_of_band patterns over those ids — so one
  // scan per band segment here replaces one scan per monitor. Selection
  // semantics (iteration order, strict-> tie-break, exclusions) match
  // best_of_band exactly.
  const CellObservation* serving_lte =
      state_.lte_cell_id >= 0 ? find_obs(obs, state_.lte_cell_id) : nullptr;
  const CellObservation* serving_nr =
      state_.nr_cell_id >= 0 ? find_obs(obs, state_.nr_cell_id) : nullptr;
  const int nr_tower = serving_nr ? serving_nr->cell->tower_id : -1;

  const CellObservation* best_lte_excl = nullptr;  // LTE, minus serving cell
  for (std::size_t i = 0; i < lte_obs_end_; ++i) {
    const CellObservation& o = obs[i];
    if (o.cell->band != config_.lte_band) continue;
    if (o.cell->id == state_.lte_cell_id) continue;
    if (!best_lte_excl || o.rrs.rsrp > best_lte_excl->rrs.rsrp) best_lte_excl = &o;
  }
  const CellObservation* best_nr_any = nullptr;          // B1 from the LTE leg
  const CellObservation* best_nr_excl = nullptr;         // minus serving cell
  const CellObservation* best_nr_same_tower = nullptr;   // SCGM candidates
  const CellObservation* best_nr_other_tower = nullptr;  // NR-B1 candidates
  for (std::size_t i = lte_obs_end_; i < obs.size(); ++i) {
    const CellObservation& o = obs[i];
    if (o.cell->band != config_.nr_band) continue;
    if (!best_nr_any || o.rrs.rsrp > best_nr_any->rrs.rsrp) best_nr_any = &o;
    if (o.cell->id == state_.nr_cell_id) continue;
    if (!best_nr_excl || o.rrs.rsrp > best_nr_excl->rrs.rsrp) best_nr_excl = &o;
    if (nr_tower < 0) continue;
    if (o.cell->tower_id == nr_tower) {
      if (!best_nr_same_tower || o.rrs.rsrp > best_nr_same_tower->rrs.rsrp) {
        best_nr_same_tower = &o;
      }
    } else {
      if (!best_nr_other_tower || o.rrs.rsrp > best_nr_other_tower->rrs.rsrp) {
        best_nr_other_tower = &o;
      }
    }
  }

  for (EventMonitor& mon : monitors_) {
    const EventConfig& c = mon.config();

    // B1 on the LTE leg exists to add an SCG; once one is attached the
    // network removes the configuration (re-added after release).
    if (c.type == EventType::kB1 && c.scope == MeasScope::kServingLte &&
        state_.nr_attached()) {
      mon.reset();
      continue;
    }

    MeasSnapshot snap;
    int serving_pci = -1;
    if (c.scope == MeasScope::kServingLte) {
      if (state_.lte_cell_id < 0) continue;
      const CellObservation* s = serving_lte;
      if (!s) continue;
      snap.serving_rsrp = s->rrs.rsrp;
      snap.serving_valid = true;
      serving_pci = s->cell->pci;
      const CellObservation* n = nullptr;
      if (c.neighbor_rat == radio::Rat::kLte) {
        n = best_lte_excl;
      } else {
        // B1: any NR cell is a candidate for SCG Addition.
        n = best_nr_any;
      }
      if (n) {
        snap.best_neighbor_rsrp = n->rrs.rsrp;
        snap.best_neighbor_pci = n->cell->pci;
        snap.best_neighbor_cell_id = n->cell->id;
        snap.neighbor_valid = true;
      }
    } else {  // kServingNr
      if (state_.nr_cell_id < 0) continue;
      const CellObservation* s = serving_nr;
      if (!s) continue;
      snap.serving_rsrp = s->rrs.rsrp;
      snap.serving_valid = true;
      serving_pci = s->cell->pci;
      const CellObservation* n = nullptr;
      if (c.type == EventType::kA3 && config_.arch == Arch::kNsa) {
        // NSA NR-A3: sector/beam switch candidates on the SAME gNB (SCGM).
        n = best_nr_same_tower;
      } else if (c.type == EventType::kB1) {
        // NR-B1: candidate on a DIFFERENT gNB (pairs with NR-A2 -> SCGC).
        n = best_nr_other_tower;
      } else {
        n = best_nr_excl;
      }
      if (n) {
        snap.best_neighbor_rsrp = n->rrs.rsrp;
        snap.best_neighbor_pci = n->cell->pci;
        snap.best_neighbor_cell_id = n->cell->id;
        snap.neighbor_valid = true;
      }
    }

    if (auto fired = mon.evaluate(t, snap)) {
      MeasurementReport mr;
      mr.time = t;
      mr.event = fired->type;
      mr.scope = fired->scope;
      mr.serving_pci = serving_pci;
      mr.neighbor_pci = fired->neighbor_pci;
      mr.neighbor_cell_id = fired->neighbor_cell_id;
      mr.serving_rsrp = fired->serving_rsrp;
      mr.neighbor_rsrp = fired->neighbor_rsrp;
      out.reports.push_back(mr);
      phase_reports_.push_back(mr);
    }
  }

  // Bound the phase memory: reports older than 5 s no longer participate in
  // composite decisions.
  std::erase_if(phase_reports_,
                [t](const MeasurementReport& r) { return t - r.time > 5.0_s; });
}

namespace {

bool phase_contains(const std::vector<MeasurementReport>& phase, EventType type,
                    MeasScope scope) {
  return std::any_of(phase.begin(), phase.end(), [&](const MeasurementReport& r) {
    return r.event == type && r.scope == scope;
  });
}

const MeasurementReport* phase_find(const std::vector<MeasurementReport>& phase,
                                    EventType type, MeasScope scope) {
  for (auto it = phase.rbegin(); it != phase.rend(); ++it) {
    if (it->event == type && it->scope == scope) return &*it;
  }
  return nullptr;
}

}  // namespace

void MobilityManager::decide(Seconds t, Meters route_position,
                             const std::vector<CellObservation>& obs,
                             TickResult& out) {
  if (pending_) return;  // one procedure at a time

  for (const MeasurementReport& r : out.reports) {
    if (pending_) break;
    switch (r.event) {
      case EventType::kA3:
        if (r.scope == MeasScope::kServingLte) {
          if (r.neighbor_cell_id < 0) break;
          const HoType type = state_.nr_attached() ? HoType::kMnbh : HoType::kLteh;
          start_ho(type, t, route_position, state_.lte_cell_id, r.neighbor_cell_id,
                   out);
        } else if (config_.arch == Arch::kSa) {
          if (r.neighbor_cell_id >= 0) {
            start_ho(HoType::kMcgh, t, route_position, state_.nr_cell_id,
                     r.neighbor_cell_id, out);
          }
        } else if (state_.nr_attached() && r.neighbor_cell_id >= 0) {
          start_ho(HoType::kScgm, t, route_position, state_.nr_cell_id,
                   r.neighbor_cell_id, out);
        }
        break;

      case EventType::kA5:
        if (r.neighbor_cell_id < 0) break;
        if (r.scope == MeasScope::kServingLte) {
          const HoType type = state_.nr_attached() ? HoType::kMnbh : HoType::kLteh;
          start_ho(type, t, route_position, state_.lte_cell_id, r.neighbor_cell_id,
                   out);
        } else if (config_.arch == Arch::kSa) {
          start_ho(HoType::kMcgh, t, route_position, state_.nr_cell_id,
                   r.neighbor_cell_id, out);
        }
        break;

      case EventType::kB1:
        if (r.scope == MeasScope::kServingLte) {
          // SCG Addition: LTE-anchored B1 with no SCG attached.
          if (config_.arch == Arch::kNsa && !state_.nr_attached() &&
              r.neighbor_cell_id >= 0) {
            start_ho(HoType::kScga, t, route_position, -1, r.neighbor_cell_id, out);
          }
        } else {
          // NR-B1 after NR-A2 -> SCG Change to the other gNB.
          if (state_.nr_attached() &&
              phase_contains(phase_reports_, EventType::kA2, MeasScope::kServingNr) &&
              r.neighbor_cell_id >= 0) {
            start_ho(HoType::kScgc, t, route_position, state_.nr_cell_id,
                     r.neighbor_cell_id, out);
          }
        }
        break;

      case EventType::kA2:
        if (r.scope == MeasScope::kServingNr && config_.arch == Arch::kNsa &&
            state_.nr_attached()) {
          // SCGC when a different-gNB candidate sits above the B1 threshold
          // (reported earlier in this phase, or known from the still-latched
          // B1 monitor); otherwise release the SCG.
          int target = -1;
          const MeasurementReport* b1 =
              phase_find(phase_reports_, EventType::kB1, MeasScope::kServingNr);
          if (b1 && b1->neighbor_cell_id >= 0 && find_obs(obs, b1->neighbor_cell_id)) {
            target = b1->neighbor_cell_id;
          } else {
            // SCG Change picks a candidate by ABSOLUTE threshold, not by
            // comparing candidates: the release and re-addition legs are
            // independent decisions (the §6.2 inefficiency). The nearest
            // candidate above the B1 threshold wins, best or not.
            const Dbm b1_threshold = nr_b1_threshold();
            const Cell& serving = deployment_.cell(state_.nr_cell_id);
            int best_id = -1;
            for (const CellObservation& o : obs) {
              if (o.cell->band != config_.nr_band) continue;
              if (o.cell->id == state_.nr_cell_id) continue;
              if (o.cell->tower_id == serving.tower_id) continue;
              if (o.rrs.rsrp <= b1_threshold) continue;
              // Lowest cell id above threshold: an arbitrary-but-qualifying
              // candidate, NOT the best one. A later SCGM corrects the beam
              // (the Fig. 16 post-SCGM gain).
              if (best_id < 0 || o.cell->id < best_id) best_id = o.cell->id;
            }
            target = best_id;
          }
          if (target >= 0) {
            start_ho(HoType::kScgc, t, route_position, state_.nr_cell_id, target, out);
          } else {
            start_ho(HoType::kScgr, t, route_position, state_.nr_cell_id, -1, out);
          }
        }
        break;

      case EventType::kA1:
      case EventType::kA4:
      case EventType::kA6:
        break;  // A1/A4/A6 carry no decision in the default policy
    }
  }
}

Dbm MobilityManager::nr_b1_threshold() const {
  for (const EventMonitor& m : monitors_) {
    if (m.config().type == EventType::kB1 &&
        m.config().scope == MeasScope::kServingNr) {
      return m.config().threshold1;
    }
  }
  return -90.0_dbm;
}

bool MobilityManager::is_colocated_endpoint(int src_cell, int dst_cell) const {
  // "Co-located" when the gNB tower of the origin or destination NR cell
  // also hosts an eNB (§6.3). For pure-LTE procedures this is vacuous.
  for (int id : {dst_cell, src_cell}) {
    if (id < 0) continue;
    const Cell& c = deployment_.cell(id);
    if (radio::band_rat(c.band) != radio::Rat::kNr) continue;
    if (deployment_.tower(c.tower_id).colocated) return true;
  }
  return false;
}

void MobilityManager::start_ho(HoType type, Seconds t, Meters route_position,
                               int src_cell, int dst_cell, TickResult& out) {
  P5G_REQUIRE(!pending_, "one HO procedure at a time");
  // Every procedure except SCG Release moves the UE toward a target cell;
  // SCG Addition is the only one without a source leg.
  P5G_REQUIRE(type == HoType::kScgr || dst_cell >= 0,
              "non-release HO needs a target cell");
  P5G_REQUIRE(type == HoType::kScga || src_cell >= 0,
              "non-addition HO needs a source cell");
  HandoverRecord rec;
  rec.type = type;
  rec.decision_time = t;
  rec.colocated = is_colocated_endpoint(src_cell, dst_cell);

  radio::Band band = config_.nr_band;
  if (type == HoType::kLteh) band = config_.lte_band;
  rec.timing = sample_ho_timing(type, band, rec.colocated, rng_);
  rec.signaling = ho_signaling(type, band, rng_);
  rec.exec_start = t + ms_to_s(rec.timing.t1_ms);
  rec.complete_time = rec.exec_start + ms_to_s(rec.timing.t2_ms);
  rec.route_position = route_position;

  if (src_cell >= 0) {
    rec.src_pci = deployment_.cell(src_cell).pci;
    rec.src_band = deployment_.cell(src_cell).band;
  } else {
    rec.src_band = band;
  }
  if (dst_cell >= 0) {
    rec.dst_pci = deployment_.cell(dst_cell).pci;
    rec.dst_band = deployment_.cell(dst_cell).band;
  } else {
    rec.dst_band = band;
  }

  plan_faults(rec);

  PendingHo p;
  p.record = rec;
  p.phase = Phase::kPrep;
  p.phase_end = rec.exec_start;
  // Stash target cell ids via pci lookup on completion; keep ids here.
  target_cell_ = dst_cell;
  pending_ = p;
  pending_flow_ = p5g::obs::next_flow_id();
  phase_reports_.clear();
  out.started.push_back(rec);
}

void MobilityManager::plan_faults(HandoverRecord& rec) {
  if (!injector_.enabled()) return;
  if (injector_.prep_fails(rec.type)) {
    // Target rejected the preparation: the procedure dies at the end of T1
    // with the data plane untouched.
    rec.outcome = HoOutcome::kPrepFailure;
    rec.rach_attempts = 0;
    rec.complete_time = rec.exec_start;
    return;
  }
  const FaultInjector::ExecPlan plan = injector_.plan_execution(rec.type);
  rec.rach_attempts = plan.attempts;
  rec.backoff_ms = plan.backoff_ms;
  rec.timing.t2_ms += plan.retry_ms + plan.backoff_ms;
  rec.signaling.mac += 3 * (plan.attempts - 1);  // preamble/response/msg3 per retry
  if (plan.success) {
    rec.complete_time = rec.exec_start + ms_to_s(rec.timing.t2_ms);
    return;
  }
  const bool scg_procedure = rec.type == HoType::kScga ||
                             rec.type == HoType::kScgm ||
                             rec.type == HoType::kScgc;
  if (scg_procedure) {
    // SCGFailureInformation -> fast SCG release; the UE falls back to LTE
    // after a short additional stall.
    rec.outcome = HoOutcome::kExecFailure;
    rec.timing.t2_ms += injector_.profile().scg_failure_fallback_ms;
    rec.signaling.rrc += 1;  // SCGFailureInformation
    rec.complete_time = rec.exec_start + ms_to_s(rec.timing.t2_ms);
  } else {
    // T304 expiry on an MCG procedure: RRC re-establishment with the whole
    // data plane down for its duration.
    rec.outcome = HoOutcome::kRlfReestablish;
    rec.reestablish_ms = injector_.reestablish_duration();
    rec.signaling.rrc += 2;  // ReestablishmentRequest + Reestablishment
    rec.signaling.mac += 3;  // re-establishment RACH
    rec.complete_time = rec.exec_start + ms_to_s(rec.timing.t2_ms) +
                        ms_to_s(rec.reestablish_ms);
  }
}

void MobilityManager::progress_pending(Seconds t, TickResult& out) {
  while (pending_ && pending_->phase_end <= t) {
    switch (pending_->phase) {
      case Phase::kPrep: {
        if (pending_->record.outcome == HoOutcome::kPrepFailure) {
          const HandoverRecord rec = pending_->record;
          if (p5g::obs::events_enabled()) {
            emit_prep_span(rec, pending_flow_);
            emit_complete(rec, pending_flow_);
          }
          pending_.reset();
          apply_failed(rec);
          out.completed.push_back(rec);
          break;
        }
        // T1 done: the UE receives the RRCReconfiguration and execution
        // (with its data-plane interruption) begins.
        P5G_ASSERT(phase_transition_legal(pending_->phase, Phase::kExec));
        if (p5g::obs::events_enabled()) {
          emit_prep_span(pending_->record, pending_flow_);
        }
        pending_->phase = Phase::kExec;
        pending_->phase_end =
            pending_->record.exec_start + ms_to_s(pending_->record.timing.t2_ms);
        out.commands.push_back(pending_->record);
        const HoInterruption intr = ho_interruption(pending_->record.type);
        state_.lte_data_halted = intr.halts_lte;
        state_.nr_data_halted = intr.halts_nr;
        break;
      }
      case Phase::kExec: {
        if (pending_->record.outcome == HoOutcome::kRlfReestablish) {
          // All RACH attempts burned: re-establish with both legs down.
          P5G_ASSERT(
              phase_transition_legal(pending_->phase, Phase::kReestablish));
          if (p5g::obs::events_enabled()) {
            // T2 ends here (phase_end is exec_start + t2); re-establishment
            // runs from there to complete_time.
            emit_exec_span(pending_->record, pending_->phase_end, pending_flow_);
          }
          pending_->phase = Phase::kReestablish;
          pending_->phase_end = pending_->record.complete_time;
          state_.lte_data_halted = true;
          state_.nr_data_halted = true;
          break;
        }
        const HandoverRecord rec = pending_->record;
        if (p5g::obs::events_enabled()) {
          emit_exec_span(rec, rec.complete_time, pending_flow_);
          emit_complete(rec, pending_flow_);
        }
        pending_.reset();
        state_.lte_data_halted = false;
        state_.nr_data_halted = false;
        if (rec.outcome == HoOutcome::kSuccess) {
          apply_completed(rec);
        } else {
          apply_failed(rec);  // kExecFailure: fast SCG release fallback
        }
        out.completed.push_back(rec);
        break;
      }
      case Phase::kReestablish: {
        const HandoverRecord rec = pending_->record;
        if (p5g::obs::events_enabled()) {
          emit_reestablish_span(rec, pending_flow_);
          emit_complete(rec, pending_flow_);
        }
        pending_.reset();
        state_.lte_data_halted = false;
        state_.nr_data_halted = false;
        apply_failed(rec);
        out.completed.push_back(rec);
        break;
      }
    }
  }
}

void MobilityManager::apply_completed(const HandoverRecord& rec) {
  P5G_REQUIRE(rec.outcome == HoOutcome::kSuccess,
              "failed HOs route through apply_failed");
  P5G_REQUIRE(rec.type == HoType::kScgr || target_cell_ >= 0,
              "completed non-release HO lost its target cell");
  switch (rec.type) {
    case HoType::kLteh:
      state_.lte_cell_id = target_cell_;
      break;
    case HoType::kMnbh:
      state_.lte_cell_id = target_cell_;
      if (config_.mnbh_releases_scg) state_.nr_cell_id = -1;
      break;
    case HoType::kScga:
    case HoType::kScgm:
    case HoType::kScgc:
    case HoType::kMcgh:
      state_.nr_cell_id = target_cell_;
      break;
    case HoType::kScgr:
      state_.nr_cell_id = -1;
      break;
  }
  for (EventMonitor& m : monitors_) m.reset();
  phase_reports_.clear();
  rlf_.reset();  // serving changed; restart the Qout watch
  // Ping-pong accounting + policy feedback. Pure observation for static
  // policies (the tracker reads no RNG and the default policy ignores the
  // hook), so the golden traces are unchanged.
  const bool ping_pong = ping_pong_.on_handover(rec);
  if (ping_pong) metrics_.ho_ping_pong->add(1);
  policy_->on_handover(rec.complete_time, rec, ping_pong);
}

void MobilityManager::apply_failed(const HandoverRecord& rec) {
  P5G_REQUIRE(rec.outcome != HoOutcome::kSuccess,
              "successful HOs route through apply_completed");
  switch (rec.outcome) {
    case HoOutcome::kPrepFailure:
      break;  // nothing changed; the UE stays on its old cells
    case HoOutcome::kExecFailure:
      // SCG failure -> fast SCG release: back to the LTE-only bearer.
      state_.nr_cell_id = -1;
      break;
    case HoOutcome::kRlfReestablish:
      // Re-establishment lands on whatever cell is strongest next tick:
      // drop every leg and let ensure_attached() re-attach.
      state_.lte_cell_id = -1;
      state_.nr_cell_id = -1;
      break;
    case HoOutcome::kSuccess:
      break;  // not routed here
  }
  for (EventMonitor& m : monitors_) m.reset();
  phase_reports_.clear();
  rlf_.reset();
}

void MobilityManager::monitor_radio_link(Seconds t, Meters route_position,
                                         const std::vector<CellObservation>& obs,
                                         TickResult& out) {
  if (!rlf_.enabled() || pending_) return;
  const int primary =
      config_.arch == Arch::kSa ? state_.nr_cell_id : state_.lte_cell_id;
  if (primary < 0) return;
  const CellObservation* s = find_obs(obs, primary);
  const bool valid = s != nullptr;
  if (rlf_.update(t, valid ? s->rrs.rsrp : -200.0_dbm, valid)) {
    start_reestablishment(t, route_position, primary, out);
  }
}

void MobilityManager::start_reestablishment(Seconds t, Meters route_position,
                                            int serving_cell, TickResult& out) {
  metrics_.rlf_triggers->add(1);  // only reached on a T310 expiry
  HandoverRecord rec;
  rec.type = config_.arch == Arch::kSa ? HoType::kMcgh : HoType::kLteh;
  rec.outcome = HoOutcome::kRlfReestablish;
  rec.decision_time = t;
  rec.exec_start = t;  // RLF has no preparation stage
  rec.timing = {0.0_ms, 0.0_ms};
  rec.reestablish_ms = injector_.reestablish_duration();
  rec.complete_time = t + ms_to_s(rec.reestablish_ms);
  rec.signaling = {.rrc = 2, .mac = 3, .phy = 4};
  rec.route_position = route_position;
  const Cell& c = deployment_.cell(serving_cell);
  rec.src_pci = c.pci;
  rec.src_band = c.band;
  rec.dst_band = c.band;

  PendingHo p;
  p.record = rec;
  p.phase = Phase::kReestablish;
  p.phase_end = rec.complete_time;
  target_cell_ = -1;
  pending_ = p;
  pending_flow_ = p5g::obs::next_flow_id();
  if (p5g::obs::events_enabled()) {
    // The T310 expiry itself, as an instant; the re-establishment span and
    // completion follow from progress_pending when the procedure finishes.
    p5g::obs::Event e;
    e.kind = p5g::obs::EventKind::kInstant;
    e.category = p5g::obs::EventCategory::kRlf;
    e.t0 = t.v;
    e.t1 = t.v;
    e.a0 = rec.reestablish_ms.v;
    e.a1 = route_position.v;
    e.flow = pending_flow_;
    e.i0 = rec.src_pci;
    e.i1 = rec.dst_pci;
    e.i2 = pack_ho_code(rec.type, rec.outcome, rec.src_band, rec.dst_band);
    p5g::obs::event_log().emit(e);
  }
  phase_reports_.clear();
  state_.lte_data_halted = true;
  state_.nr_data_halted = true;
  out.started.push_back(rec);
}

void MobilityManager::reset_monitors(MeasScope scope) {
  for (EventMonitor& m : monitors_) {
    if (m.config().scope == scope) m.reset();
  }
}

TickResult MobilityManager::tick(Seconds t, geo::Point pos, Meters moved,
                                 Meters route_position) {
  TickResult out;
  tick(t, pos, moved, route_position, out);
  return out;
}

void MobilityManager::tick(Seconds t, geo::Point pos, Meters moved,
                           Meters route_position, TickResult& out) {
  out.observations.clear();
  out.reports.clear();
  out.started.clear();
  out.commands.clear();
  out.completed.clear();
  const bool sample_phases = phase_sampler_.next();
  ++angle_epoch_;  // invalidates the per-tower UE-angle memo
  out.observations.reserve(obs_high_water_);
  {
    const p5g::obs::ObsTimer timer(*metrics_.observe_ms, sample_phases);
    // Wall-track twin of the histogram sample: same stride, so the flight
    // recorder's engine profile costs nothing on unsampled ticks.
    const p5g::obs::EventSpan span(p5g::obs::EventCategory::kMmObserve,
                                   {.a0 = t.v}, sample_phases);
    // Observe all layers relevant to the architecture: LTE first, then NR,
    // which is the band segmentation find_obs/best_of_band rely on.
    if (config_.arch != Arch::kSa) observe(t, pos, moved, config_.lte_band, out.observations);
    lte_obs_end_ = out.observations.size();
    if (config_.arch != Arch::kLteOnly) observe(t, pos, moved, config_.nr_band, out.observations);
  }
  obs_high_water_ = std::max(obs_high_water_, out.observations.size());

  policy_->on_tick(t, moved);
  progress_pending(t, out);
  ensure_attached(out.observations);
  monitor_radio_link(t, route_position, out.observations, out);
  refresh_event_configs();

  // UEs do not report during HO execution or re-establishment.
  const bool executing = pending_ && pending_->phase != Phase::kPrep;
  if (!executing) {
    const p5g::obs::ObsTimer timer(*metrics_.decide_ms, sample_phases);
    const p5g::obs::EventSpan span(p5g::obs::EventCategory::kMmDecide,
                                   {.a0 = t.v}, sample_phases);
    run_event_monitors(t, out.observations, out);
    decide(t, route_position, out.observations, out);
  }

  if (!out.reports.empty()) metrics_.reports->add(out.reports.size());
  if (!out.started.empty()) metrics_.ho_started->add(out.started.size());
  if (!out.commands.empty()) metrics_.ho_commands->add(out.commands.size());
  for (const HandoverRecord& rec : out.completed) {
    switch (rec.outcome) {
      case HoOutcome::kSuccess: metrics_.ho_success->add(1); break;
      case HoOutcome::kPrepFailure: metrics_.ho_prep_fail->add(1); break;
      case HoOutcome::kExecFailure: metrics_.ho_exec_fail->add(1); break;
      case HoOutcome::kRlfReestablish: metrics_.ho_rlf_reest->add(1); break;
    }
  }
}

}  // namespace p5g::ran
