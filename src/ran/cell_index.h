// Uniform-grid spatial index over (point, id) entries, bucketed per band.
//
// The per-tick hot path (MobilityManager::observe -> Deployment::cells_near)
// and the co-location nearest-anchor search in Deployment::place_band both
// used to scan every cell in the deployment. The index makes both queries
// touch only the grid buckets the query circle overlaps, and returns the
// distance it already computed so callers never re-evaluate geo::distance.
//
// Determinism contract: query_radius returns hits sorted by (distance,
// id) and nearest breaks exact-distance ties toward the lowest id — the
// same order a linear scan over id-ordered cells produces — so traces
// stay byte-identical to the pre-index simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/geometry.h"
#include "radio/band.h"

namespace p5g::ran {

// One query hit: the entry id plus its (cached) distance to the query point.
struct IndexHit {
  int id = -1;
  Meters dist{0.0};
};

class CellIndex {
 public:
  // Stage an entry. `id` is whatever dense identifier the caller wants
  // back from queries (cell id for cells_near, tower id for the anchor
  // search). All add() calls must precede build().
  void add(radio::Band band, geo::Point pos, int id);

  // Finalize: size each band's grid to its bounding box with bucket edge
  // equal to the band's nominal cell radius (queries cover an O(1) number
  // of buckets at the observe radius of ~2.6 radii).
  void build();

  // All entries of `band` within `radius` of `p`, sorted by (dist, id).
  // Replaces `out`'s contents; the buffer is reusable across calls.
  void query_radius(geo::Point p, radio::Band band, Meters radius,
                    std::vector<IndexHit>& out) const;

  // Nearest entry of `band` to `p` (lowest id on exact ties), or nullopt
  // when the band has no entries.
  std::optional<IndexHit> nearest(geo::Point p, radio::Band band) const;

  std::size_t size(radio::Band band) const;

 private:
  struct Entry {
    geo::Point pos;
    int id = -1;
  };

  struct Grid {
    std::vector<Entry> staged;  // id-ordered entries, pre-build
    Meters bucket_m{1.0};
    double min_x = 0.0;
    double min_y = 0.0;
    int nx = 0;  // bucket counts; 0 until build() or when the band is empty
    int ny = 0;
    // CSR layout: entries grouped by bucket (row-major, id-ordered within a
    // bucket), bucket b spanning entries[bucket_start[b] ..
    // bucket_start[b+1]). A query row's bucket span is one contiguous
    // entry range — no per-bucket pointer chasing on the hot path.
    std::vector<Entry> entries;
    std::vector<std::uint32_t> bucket_start;  // nx * ny + 1 offsets
  };

  const Grid& grid(radio::Band band) const;
  Grid& grid(radio::Band band);

  Grid grids_[5];  // one per radio::Band enumerator
};

}  // namespace p5g::ran
