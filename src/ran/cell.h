// Cells and towers.
//
// A tower is a physical site that may host an eNB (LTE), a gNB (NR), or
// both (co-located, §6.3). Each radio on a tower exposes one cell per band.
// Following the paper's co-location heuristic, a co-located tower uses the
// SAME PCI for its 4G and 5G cells; separate sites use independent PCIs.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "radio/band.h"

namespace p5g::ran {

using Pci = int;

struct Cell {
  int id = -1;             // dense index into Deployment::cells()
  Pci pci = -1;            // physical cell id (what the UE observes)
  radio::Band band{};      // operating band
  int tower_id = -1;       // hosting tower
  geo::Point position{};   // sector centroid (offset from the tower)
  bool directional = false;  // sectored/beamformed cell vs omni macro
  double azimuth_rad = 0.0;  // boresight direction (from the tower)
};

struct Tower {
  int id = -1;
  geo::Point position{};
  bool has_enb = false;
  bool has_gnb = false;
  // True when the eNB and gNB at this site share a PCI (co-located NSA
  // anchor + NR). Only meaningful when both radios are present.
  bool colocated = false;
};

constexpr radio::Rat cell_rat(const Cell& c) { return radio::band_rat(c.band); }

}  // namespace p5g::ran
