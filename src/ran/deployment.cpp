#include "ran/deployment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace p5g::ran {

CarrierProfile profile_opx() {
  CarrierProfile p;
  p.name = "OpX";
  p.nr_bands = {radio::Band::kNrLow, radio::Band::kNrMmWave};
  p.offers_sa = false;
  p.colocation_fraction = 0.05;
  p.density_scale = 1.0;
  return p;
}

CarrierProfile profile_opy() {
  CarrierProfile p;
  p.name = "OpY";
  p.nr_bands = {radio::Band::kNrLow, radio::Band::kNrMid};
  p.offers_sa = true;  // low-band SA deployment
  p.colocation_fraction = 0.36;
  p.density_scale = 0.9;  // densest grid in the paper (most unique cells)
  return p;
}

CarrierProfile profile_opz() {
  CarrierProfile p;
  p.name = "OpZ";
  p.nr_bands = {radio::Band::kNrLow, radio::Band::kNrMmWave};
  p.offers_sa = false;
  p.colocation_fraction = 0.2;
  p.density_scale = 1.05;
  return p;
}

Deployment::Deployment(const CarrierProfile& profile, const geo::Route& route, Rng& rng)
    : profile_(profile) {
  // Anchor LTE layers first so NR co-location can snap onto them.
  place_band(radio::Band::kLteMid, route, rng);
  place_band(radio::Band::kLteLow, route, rng);
  // The co-location search measures from the anchor cell's TOWER, and all
  // anchor-band cells exist before any NR band is placed.
  for (const Cell& c : cells_) {
    if (c.band != profile_.anchor_band) continue;
    anchor_index_.add(c.band, towers_[static_cast<std::size_t>(c.tower_id)].position,
                      c.tower_id);
  }
  anchor_index_.build();
  for (radio::Band b : profile_.nr_bands) place_band(b, route, rng);
  for (const Cell& c : cells_) index_.add(c.band, c.position, c.id);
  index_.build();
}

namespace {

// Sector (or beam, for mmWave) count per tower. Multiple cells on one tower
// are what make SCG Modification (same-gNB switches) possible; mmWave gNBs
// expose several beam-level cells.
int sectors_for(radio::Band band) {
  switch (band) {
    case radio::Band::kNrMmWave: return 3;  // beam-level cells
    case radio::Band::kNrMid: return 2;
    case radio::Band::kNrLow:               // wide-area macro layers: one
    case radio::Band::kLteMid:              // cell faces the roadway
    case radio::Band::kLteLow: return 1;
  }
  return 1;
}

// Boresight azimuth of sector k (120 degrees apart).
double sector_azimuth(int k) { return 2.0943951023931953 * k + 0.5; }

// Direction of sector k's coverage centroid.
geo::Point sector_offset(int k, Meters magnitude) {
  const double ang = sector_azimuth(k);
  return {magnitude.v * std::cos(ang), magnitude.v * std::sin(ang)};
}

}  // namespace

void Deployment::place_band(radio::Band band, const geo::Route& route, Rng& rng) {
  const radio::BandProfile& bp = radio::band_profile(band);
  const bool is_nr = radio::band_rat(band) == radio::Rat::kNr;
  // Tower spacing: one cell hands over to the next roughly once per
  // "coverage diameter", so towers sit ~2 x nominal radius apart.
  const Meters spacing = 2.0 * bp.nominal_radius_m * profile_.density_scale;
  const Meters route_len = route.length();

  for (Meters s{rng.uniform(0.0, (spacing * 0.5).v)}; s < route_len + spacing;
       s += spacing * rng.uniform(0.85, 1.15)) {
    const geo::Point on_route = route.position_at(s);
    // Lateral offset from the roadway.
    const Meters off = rng.uniform(0.05, 0.35) * bp.nominal_radius_m;
    const double ang = rng.uniform(0.0, 6.283185307179586);
    geo::Point pos = on_route + geo::Point{off.v * std::cos(ang), off.v * std::sin(ang)};

    if (is_nr && rng.bernoulli(profile_.colocation_fraction)) {
      // Co-locate with the nearest ANCHOR-BAND tower (the control-plane
      // eNB whose PCI the co-located gNB shares): reuse its site and PCI.
      const auto hit = anchor_index_.nearest(pos, profile_.anchor_band);
      const int best = hit ? hit->id : -1;
      if (best >= 0 && !towers_[static_cast<std::size_t>(best)].has_gnb) {
        Tower& host = towers_[static_cast<std::size_t>(best)];
        host.has_gnb = true;
        host.colocated = true;
        // Find the anchor-band cell on this tower and reuse its PCI for the
        // first NR sector (the paper's co-location signature).
        Pci shared = -1;
        for (const Cell& c : cells_) {
          if (c.tower_id == host.id && c.band == profile_.anchor_band) {
            shared = c.pci;
            break;
          }
        }
        const int n = sectors_for(band);
        for (int k = 0; k < n; ++k) {
          Cell c;
          c.id = static_cast<int>(cells_.size());
          c.pci = (k == 0 && shared >= 0) ? shared : next_pci_++;
          c.band = band;
          c.tower_id = host.id;
          c.position = host.position + sector_offset(k, 0.22 * bp.nominal_radius_m);
          c.directional = n > 1;
          c.azimuth_rad = sector_azimuth(k);
          cells_.push_back(c);
        }
        continue;
      }
    }

    Tower t;
    t.id = static_cast<int>(towers_.size());
    t.position = pos;
    t.has_enb = !is_nr;
    t.has_gnb = is_nr;
    towers_.push_back(t);

    const int n = sectors_for(band);
    for (int k = 0; k < n; ++k) {
      Cell c;
      c.id = static_cast<int>(cells_.size());
      c.pci = next_pci_++;
      c.band = band;
      c.tower_id = t.id;
      c.position = t.position + sector_offset(k, 0.22 * bp.nominal_radius_m);
      c.directional = n > 1;
      c.azimuth_rad = sector_azimuth(k);
      cells_.push_back(c);
    }
  }
}

std::vector<const Cell*> Deployment::cells_near(geo::Point p, radio::Band band,
                                                Meters radius) const {
  std::vector<IndexHit> hits;
  index_.query_radius(p, band, radius, hits);
  std::vector<const Cell*> out;
  out.reserve(hits.size());
  for (const IndexHit& h : hits) out.push_back(&cells_[static_cast<std::size_t>(h.id)]);
  return out;
}

void Deployment::cells_near(geo::Point p, radio::Band band, Meters radius,
                            std::vector<CellHit>& out) const {
  static obs::Counter& m_queries =
      obs::registry().counter("p5g.ran.cell_index.queries");
  static obs::Counter& m_hits =
      obs::registry().counter("p5g.ran.cell_index.hits");
  thread_local std::vector<IndexHit> hits;
  index_.query_radius(p, band, radius, hits);
  m_queries.add(1);
  m_hits.add(hits.size());
#if P5G_CHECKS_ENABLED
  // Cross-check the index against the reference linear scan for the first
  // few queries of this deployment's lifetime. Bounded so checks-on builds
  // keep the index's asymptotic win; fetch_sub keeps it thread-safe under
  // the parallel runner.
  if (crosscheck_budget_.load(std::memory_order_relaxed) > 0 &&
      crosscheck_budget_.fetch_sub(1, std::memory_order_relaxed) > 0) {
    const std::vector<CellHit> ref = cells_near_linear(p, band, radius);
    P5G_ENSURE(ref.size() == hits.size(),
               "spatial index and linear scan disagree on hit count");
    for (std::size_t i = 0; i < ref.size(); ++i) {
      P5G_ENSURE(ref[i].cell->id == hits[i].id && ref[i].dist == hits[i].dist,
                 "spatial index and linear scan disagree on hit order");
    }
  }
#endif
  out.clear();
  out.reserve(hits.size());
  for (const IndexHit& h : hits) {
    out.push_back({&cells_[static_cast<std::size_t>(h.id)], h.dist});
  }
}

std::vector<CellHit> Deployment::cells_near_linear(geo::Point p, radio::Band band,
                                                   Meters radius) const {
  // The pre-index implementation: scan every cell, sort by distance. The
  // (dist, id) sort key matches the index's tie-break, so both paths agree
  // even on exact-distance ties.
  std::vector<CellHit> out;
  for (const Cell& c : cells_) {
    if (c.band != band) continue;
    const Meters d = geo::distance(c.position, p);
    if (d <= radius) out.push_back({&c, d});
  }
  std::sort(out.begin(), out.end(), [](const CellHit& a, const CellHit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.cell->id < b.cell->id;
  });
  return out;
}

std::vector<const Cell*> Deployment::cells_on_band(radio::Band band) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (c.band == band) out.push_back(&c);
  }
  return out;
}

}  // namespace p5g::ran
