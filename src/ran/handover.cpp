#include "ran/handover.h"

#include <algorithm>

namespace p5g::ran {

std::string_view ho_name(HoType t) {
  switch (t) {
    case HoType::kLteh: return "LTEH";
    case HoType::kScga: return "SCGA";
    case HoType::kScgr: return "SCGR";
    case HoType::kScgm: return "SCGM";
    case HoType::kScgc: return "SCGC";
    case HoType::kMnbh: return "MNBH";
    case HoType::kMcgh: return "MCGH";
  }
  return "?";
}

std::string_view ho_outcome_name(HoOutcome o) {
  switch (o) {
    case HoOutcome::kSuccess: return "success";
    case HoOutcome::kPrepFailure: return "prep_fail";
    case HoOutcome::kExecFailure: return "exec_fail";
    case HoOutcome::kRlfReestablish: return "rlf_reest";
  }
  return "?";
}

std::uint16_t pack_ho_code(HoType type, HoOutcome outcome, radio::Band src_band,
                           radio::Band dst_band) {
  return static_cast<std::uint16_t>(
      (static_cast<unsigned>(type) & 0x7u) |
      ((static_cast<unsigned>(outcome) & 0x3u) << 3) |
      ((static_cast<unsigned>(src_band) & 0xFu) << 5) |
      ((static_cast<unsigned>(dst_band) & 0xFu) << 9));
}

HoCode unpack_ho_code(std::uint16_t code) {
  HoCode c;
  c.type = static_cast<HoType>(code & 0x7u);
  c.outcome = static_cast<HoOutcome>((code >> 3) & 0x3u);
  c.src_band = static_cast<radio::Band>((code >> 5) & 0xFu);
  c.dst_band = static_cast<radio::Band>((code >> 9) & 0xFu);
  return c;
}

bool ho_is_5g_procedure(HoType t) {
  switch (t) {
    case HoType::kScga:
    case HoType::kScgr:
    case HoType::kScgm:
    case HoType::kScgc:
    case HoType::kMcgh:
      return true;
    case HoType::kLteh:
    case HoType::kMnbh:
      return false;
  }
  return false;
}

HoArch ho_arch(HoType t) {
  switch (t) {
    case HoType::kLteh: return HoArch::kLte;  // NSA anchor LTEH shares the model
    case HoType::kMcgh: return HoArch::kSa;
    case HoType::kMnbh:
    case HoType::kScga:
    case HoType::kScgr:
    case HoType::kScgc:
    case HoType::kScgm: return HoArch::kNsa;
  }
  return HoArch::kNsa;  // unreachable: all enumerators handled above
}

HoInterruption ho_interruption(HoType t) {
  switch (t) {
    case HoType::kLteh:
      return {.halts_lte = true, .halts_nr = false};
    case HoType::kMnbh:
      // 4G HOs interrupt data activity on the 5G radio as well (footnote 1).
      return {.halts_lte = true, .halts_nr = true};
    case HoType::kScga:
    case HoType::kScgr:
    case HoType::kScgm:
    case HoType::kScgc:
      return {.halts_lte = false, .halts_nr = true};
    case HoType::kMcgh:
      return {.halts_lte = false, .halts_nr = true};
  }
  return {};
}

namespace {

// Truncated-normal sampler: mean/sd with a hard floor.
Milliseconds tnorm(Rng& rng, double mean, double sd, double floor_ms) {
  return std::max(Millis{floor_ms}, Millis{rng.normal(mean, sd)});
}

}  // namespace

HoTiming sample_ho_timing(HoType t, radio::Band band, bool colocated, Rng& rng) {
  HoTiming h;
  const bool mmwave = band == radio::Band::kNrMmWave;
  switch (t) {
    case HoType::kLteh:
      h.t1_ms = tnorm(rng, 46.0, 10.0, 15.0);
      h.t2_ms = tnorm(rng, 30.0, 8.0, 10.0);
      break;
    case HoType::kScga:
      h.t1_ms = tnorm(rng, 64.0, 14.0, 20.0);
      h.t2_ms = tnorm(rng, mmwave ? 135.0 : 94.0, 20.0, 30.0);
      break;
    case HoType::kScgr:
      // Release is the lightest NSA procedure: no target RACH.
      h.t1_ms = tnorm(rng, 52.0, 12.0, 15.0);
      h.t2_ms = tnorm(rng, 42.0, 10.0, 12.0);
      break;
    case HoType::kScgm:
      h.t1_ms = tnorm(rng, 66.0, 14.0, 20.0);
      h.t2_ms = tnorm(rng, mmwave ? 142.0 : 99.0, 22.0, 30.0);
      break;
    case HoType::kScgc:
      // Release + Addition executed back-to-back.
      h.t1_ms = tnorm(rng, 78.0, 16.0, 25.0);
      h.t2_ms = tnorm(rng, mmwave ? 160.0 : 112.0, 26.0, 35.0);
      break;
    case HoType::kMnbh:
      h.t1_ms = tnorm(rng, 72.0, 15.0, 22.0);
      h.t2_ms = tnorm(rng, 102.0, 22.0, 30.0);
      break;
    case HoType::kMcgh:
      // SA: preparation median comparable to LTE but with high variance
      // (the paper attributes this to SA's early-stage deployments).
      h.t1_ms = tnorm(rng, 52.0, 34.0, 12.0);
      h.t2_ms = tnorm(rng, 58.0, 16.0, 18.0);
      break;
  }
  // Cross-tower eNB<->gNB coordination penalty for NSA procedures whose
  // endpoints are not co-located (+13 ms on average, §6.3).
  if (!colocated && ho_arch(t) == HoArch::kNsa && t != HoType::kLteh) {
    h.t1_ms += tnorm(rng, 13.0, 4.0, 2.0);
  }
  return h;
}

SignalingCounts ho_signaling(HoType t, radio::Band band, Rng& rng) {
  SignalingCounts s;
  const bool mmwave = band == radio::Band::kNrMmWave;
  // RRC: 1 MR + 1 Reconfiguration + 1 ReconfigurationComplete per leg that
  // reconfigures; composite procedures (SCGC, MNBH-with-SCG) carry more.
  switch (t) {
    case HoType::kLteh:
      s.rrc = 3;
      s.mac = 2;
      s.phy = 9;  // inter-frequency gap measurements
      break;
    case HoType::kScga:
      s.rrc = 3;
      s.mac = 3;  // RACH toward the new gNB
      s.phy = mmwave ? 30 : 8;
      break;
    case HoType::kScgr:
      s.rrc = 3;
      s.mac = 0;  // no RACH on release
      s.phy = mmwave ? 14 : 4;
      break;
    case HoType::kScgm:
      s.rrc = 3;
      s.mac = 3;
      s.phy = mmwave ? 34 : 8;
      break;
    case HoType::kScgc:
      s.rrc = 6;  // release + addition
      s.mac = 3;
      s.phy = mmwave ? 44 : 12;
      break;
    case HoType::kMnbh:
      s.rrc = 5;  // anchor reconfig + SCG handling
      s.mac = 3;
      s.phy = 10;
      break;
    case HoType::kMcgh:
      s.rrc = 3;
      s.mac = 1;  // contention-free RACH
      s.phy = 4;
      break;
  }
  // Small burstiness so counts are not perfectly deterministic.
  s.phy += static_cast<int>(rng.uniform_index(3));
  return s;
}

}  // namespace p5g::ran
