// MobilityManager — the network-side mobility state machine driven by UE
// movement. Each tick it:
//   1. produces RRS observations for every in-range cell (path loss +
//      correlated shadowing + fading),
//   2. evaluates the configured 3GPP measurement events and raises
//      measurement reports,
//   3. runs the carrier HO decision logic mapping report sequences to HO
//      procedures (the patterns Prognos later has to learn):
//        [A3 lte]           -> LTEH (or MNBH when the SCG is attached)
//        [B1 lte-scope]     -> SCGA
//        [A2 nr]            -> SCGR          (no NR candidate)
//        [A2 nr, B1 nr]     -> SCGC          (candidate on another gNB)
//        [A3 nr]            -> SCGM          (sector/beam on the same gNB)
//        [A3 nr] (SA)       -> MCGH
//   4. advances in-flight HOs through T1 (preparation) and T2 (execution,
//      data plane halted per ho_interruption()), including the fault layer's
//      failure/retry/re-establishment paths (ran/faults.h), and
//   5. watches the primary serving leg for Qout/T310 radio link failure when
//      the fault profile enables it.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "obs/timer.h"
#include "radio/propagation.h"
#include "ran/deployment.h"
#include "ran/events.h"
#include "ran/faults.h"
#include "ran/handover.h"
#include "ran/ho_policy.h"
#include "ran/ping_pong.h"

namespace p5g::ran {

struct CellObservation {
  const Cell* cell = nullptr;
  radio::Rrs rrs{};
};

// Dense per-cell shadowing fields, indexed by dense cell id. Fields are a
// pure function of cell identity (band + id-derived seed), so every manager
// over the same deployment resolves identical values; a fleet of UEs can
// resolve the map once and share it read-only across threads.
using ShadowMap = std::vector<radio::ShadowingField>;
ShadowMap resolve_shadow_fields(const Deployment& deployment);

// UE connection state as visible to upper layers.
struct UeRadioState {
  Arch arch = Arch::kNsa;
  int lte_cell_id = -1;   // MCG primary (invalid in SA)
  int nr_cell_id = -1;    // SCG (NSA) or primary (SA)
  bool lte_data_halted = false;  // inside a T2 that halts the LTE leg
  bool nr_data_halted = false;   // inside a T2 that halts the NR leg
  bool nr_attached() const { return nr_cell_id >= 0; }
  bool lte_attached() const { return lte_cell_id >= 0; }
};

struct TickResult {
  std::vector<CellObservation> observations;
  std::vector<MeasurementReport> reports;
  std::vector<HandoverRecord> started;    // decisions made this tick
  // RRCReconfiguration delivered to the UE this tick (end of a successful
  // T1). Prep-failed procedures never produce a command.
  std::vector<HandoverRecord> commands;
  std::vector<HandoverRecord> completed;  // procedure finished this tick
};

class MobilityManager {
 public:
  struct Config {
    Arch arch = Arch::kNsa;
    radio::Band nr_band = radio::Band::kNrLow;   // NR layer for this area
    radio::Band lte_band = radio::Band::kLteMid; // anchor / LTE-only layer
    // NSA-4C anchor HO releases the SCG (the §6.1 effective-coverage
    // mechanism). Set false to ablate.
    bool mnbh_releases_scg = true;
    // Observation radius as a multiple of the band's nominal cell radius.
    double observe_radius_factor = 2.6;
    // Extra interference margin (raises the noise floor), per leg.
    Db lte_interference_db{4.0};
    Db nr_interference_db{3.0};
    // Failure injection. The default all-zero profile draws no fault
    // randomness and reproduces the fault-free trace bit-for-bit.
    FaultProfile faults{};
    // Layered per-cell/per-band HO-parameter overrides (ran/ho_config.h).
    // The empty default resolves to the carrier event sets and reproduces
    // the golden traces byte-identically.
    HoConfigMap ho_config{};
    // Which policy consumes `ho_config`: kStatic installs the resolved
    // sets as-is; kAdaptive layers the TTT/hysteresis controller on top
    // (ran/ho_policy.h).
    HoPolicyKind ho_policy = HoPolicyKind::kStatic;
    // Controller knobs for kAdaptive; ping_pong_window also sizes the
    // manager's ping-pong tracker (metrics + policy feedback).
    AdaptiveHoParams adaptive_ho{};
    // Use the scalar per-cell reference pipeline in observe() instead of
    // the batched SoA one. Both produce byte-identical traces (the batch
    // kernels preserve expression association and RNG draw order); the
    // scalar path is kept as the test/bench reference, mirroring
    // cells_near_linear.
    bool scalar_observe = false;
  };

  // `shared_shadow`, when non-null, must cover every cell of `deployment`
  // (see resolve_shadow_fields) and outlive the manager; null means the
  // manager resolves and owns its own map.
  MobilityManager(const Deployment& deployment, Config config, Rng rng,
                  const ShadowMap* shared_shadow = nullptr);

  // Advance to time `t` with the UE at `pos`, having moved `moved` metres
  // since the previous tick. `route_position` is arc length along the
  // route (recorded into HandoverRecords for frequency analysis).
  TickResult tick(Seconds t, geo::Point pos, Meters moved, Meters route_position);

  // Buffer-reusing variant: clears `out`'s vectors (keeping capacity) and
  // fills them in place, so a steady-state caller does zero per-tick
  // allocation. The value semantics match tick() exactly.
  void tick(Seconds t, geo::Point pos, Meters moved, Meters route_position,
            TickResult& out);

  const UeRadioState& state() const { return state_; }
  const Deployment& deployment() const { return deployment_; }

  // Event configurations currently active (what a real UE would have
  // received via RRC); Prognos consumes these.
  std::vector<EventConfig> active_event_configs() const;

  // The HO policy driving the event configuration (never null).
  const HoPolicy& policy() const { return *policy_; }

  // Online ping-pong accounting over completed procedures (the same
  // definition analysis::ping_pong_stats applies offline).
  const PingPongTracker& ping_pong() const { return ping_pong_; }

  // True while any HO is in flight (T1 or T2).
  bool ho_in_flight() const { return pending_.has_value(); }

  // The HO currently in its execution (T2) stage, if any.
  std::optional<HoType> executing_ho() const {
    if (pending_ && pending_->phase == Phase::kExec) return pending_->record.type;
    return std::nullopt;
  }

  // True while an RRC re-establishment (post-RLF or post-execution-failure)
  // has the whole data plane down.
  bool reestablishing() const {
    return pending_ && pending_->phase == Phase::kReestablish;
  }

 private:
  enum class Phase { kPrep, kExec, kReestablish };

  // Legal-transition table of the pending-HO state machine. Completion
  // (pending_.reset()) is a legal exit from every phase; the only in-flight
  // moves are T1 -> T2 and T2 -> re-establishment (T304 expiry on an MCG
  // procedure). Contract-checked at every phase change.
  static constexpr bool phase_transition_legal(Phase from, Phase to) {
    switch (from) {
      case Phase::kPrep: return to == Phase::kExec;
      case Phase::kExec: return to == Phase::kReestablish;
      case Phase::kReestablish: return false;
    }
    return false;
  }

  struct PendingHo {
    HandoverRecord record;
    Phase phase = Phase::kPrep;
    Seconds phase_end{0.0};
  };

  void observe(Seconds t, geo::Point pos, Meters moved, radio::Band band,
               std::vector<CellObservation>& out);
  const CellObservation* find_obs(const std::vector<CellObservation>& obs,
                                  int cell_id) const;
  // Strongest observation of `band`, optionally restricted to / excluding a
  // tower.
  const CellObservation* best_of_band(const std::vector<CellObservation>& obs,
                                      radio::Band band, int same_tower,
                                      int exclude_tower, int exclude_cell) const;

  void ensure_attached(const std::vector<CellObservation>& obs);
  void run_event_monitors(Seconds t, const std::vector<CellObservation>& obs,
                          TickResult& out);
  void decide(Seconds t, Meters route_position,
              const std::vector<CellObservation>& obs, TickResult& out);
  void start_ho(HoType type, Seconds t, Meters route_position, int src_cell,
                int dst_cell, TickResult& out);
  // Samples the fault layer for a freshly decided HO and folds the planned
  // retries/failures into the record's timing and outcome.
  void plan_faults(HandoverRecord& rec);
  void progress_pending(Seconds t, TickResult& out);
  void apply_completed(const HandoverRecord& rec);
  // Post-failure state transitions (monitor resets; SCG release on SCG
  // failure; full detach after re-establishment).
  void apply_failed(const HandoverRecord& rec);
  // Qout/T310 watch over the primary serving leg; may start a
  // re-establishment procedure.
  void monitor_radio_link(Seconds t, Meters route_position,
                          const std::vector<CellObservation>& obs,
                          TickResult& out);
  void start_reestablishment(Seconds t, Meters route_position, int serving_cell,
                             TickResult& out);
  bool is_colocated_endpoint(int src_cell, int dst_cell) const;
  void reset_monitors(MeasScope scope);
  // Configured NR-B1 absolute threshold (SCGC candidate gate).
  Dbm nr_b1_threshold() const;
  // The serving context the policy resolves its event set against.
  HoPolicyContext policy_context() const;
  // Re-resolves the policy's event set when the serving context changed or
  // the policy reports feedback-driven drift; monitors are swapped only if
  // the resolved set differs from the installed one (an RRCReconfiguration
  // with a new measConfig — TTT latches restart), so the default
  // configuration never rebuilds and traces stay byte-identical.
  void refresh_event_configs();

  const Deployment& deployment_;
  Config config_;
  Rng rng_;
  // Dedicated fault stream: fault draws never perturb the main stream, so
  // the zero-fault profile reproduces seed traces exactly.
  FaultInjector injector_;
  RlfMonitor rlf_;
  UeRadioState state_;
  // Dense per-cell shadowing fields (indexed by cell id), resolved once in
  // the constructor so the per-tick path does no hash/tree lookups.
  // `shadow_` aliases either the owned map or a caller-shared one.
  ShadowMap shadow_owned_;
  const ShadowMap* shadow_ = nullptr;
  // The event-configuration policy (ran/ho_policy.h) and the serving cells
  // its installed set was last resolved against.
  std::unique_ptr<HoPolicy> policy_;
  int cfg_lte_cell_ = -1;
  int cfg_nr_cell_ = -1;
  PingPongTracker ping_pong_;
  std::vector<EventMonitor> monitors_;
  // Scratch for cells_near hits, reused across ticks to avoid reallocation.
  std::vector<CellHit> near_buf_;
  // High-water mark of the per-tick observation list; the next tick's
  // buffer is reserved to it up front.
  std::size_t obs_high_water_ = 0;
  // SoA batch scratch for the vectorized observe() path: one contiguous
  // array per quantity, resized (never reallocated past the high-water
  // mark) each tick. Persistent members so steady-state ticks allocate
  // nothing.
  struct ObserveBatch {
    std::vector<Meters> dist;
    std::vector<Db> shadow;
    std::vector<Db> fading;
    std::vector<Db> dir_loss;
    std::vector<radio::Rrs> rrs;
  };
  ObserveBatch batch_;
  // Per-cell shadow-grid corner caches (dense cell id), refreshed lazily by
  // ShadowingField::at_cached when the UE crosses a grid cell.
  std::vector<radio::ShadowingField::Corners> shadow_corners_;
  // Per-tower UE-angle memo: all sectors of a tower share
  // atan2(ue - tower), so directional loss computes it once per tower per
  // tick. Epoch-tagged; the epoch bumps at the start of every tick.
  std::vector<double> tower_angle_;
  std::vector<std::uint64_t> tower_angle_epoch_;
  std::uint64_t angle_epoch_ = 0;
  // Index into the current tick's observation list where the NR entries
  // start (LTE observations come first; see tick()). Lets find_obs /
  // best_of_band scan only the matching band's segment.
  std::size_t lte_obs_end_ = 0;
  // p5g.ran.* metrics, resolved once at construction; written from tick()
  // and the fault paths. Pure observation — never feeds back into decisions.
  struct Metrics {
    p5g::obs::Counter* reports = nullptr;
    p5g::obs::Counter* ho_started = nullptr;
    p5g::obs::Counter* ho_commands = nullptr;
    p5g::obs::Counter* ho_success = nullptr;
    p5g::obs::Counter* ho_prep_fail = nullptr;
    p5g::obs::Counter* ho_exec_fail = nullptr;
    p5g::obs::Counter* ho_rlf_reest = nullptr;
    p5g::obs::Counter* ho_ping_pong = nullptr;
    p5g::obs::Counter* rlf_triggers = nullptr;
    p5g::obs::Histogram* observe_ms = nullptr;
    p5g::obs::Histogram* decide_ms = nullptr;
    p5g::obs::Histogram* batch_size = nullptr;
  };
  Metrics metrics_;
  // Phase timers read the clock on 1 tick in 64 (deterministic modular
  // sampling): hundreds of samples per scenario at ~1/64 the clock cost.
  // Widened from 1-in-16 when the batched radio pipeline made ticks cheap
  // enough that the clock reads dominated the obs overhead budget.
  p5g::obs::SampleEvery phase_sampler_{6};
  // p5g.radio.batch_size samples 1 observe in 64 (deterministic stride):
  // evidence the SoA buffers are exercised, at negligible hot-path cost.
  p5g::obs::SampleEvery batch_sampler_{6};
  std::optional<PendingHo> pending_;
  // Flight-recorder correlation id (obs::next_flow_id, process-wide):
  // every event of the in-flight procedure carries pending_flow_, so
  // (ue, flow) uniquely names one HO even across scenarios in one process.
  std::uint64_t pending_flow_ = 0;
  int target_cell_ = -1;  // dense cell id of the pending HO's target
  // Recent reports in the current decision phase (cleared on HO start).
  std::vector<MeasurementReport> phase_reports_;
};

}  // namespace p5g::ran
