#include "ran/rrc.h"

namespace p5g::ran {

std::string_view rrc_message_name(RrcMessageType t) {
  switch (t) {
    case RrcMessageType::kMeasurementReport: return "MeasurementReport";
    case RrcMessageType::kRrcReconfiguration: return "RRCReconfiguration";
    case RrcMessageType::kRrcReconfigurationComplete: return "RRCReconfigurationComplete";
  }
  return "?";
}

}  // namespace p5g::ran
