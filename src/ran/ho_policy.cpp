#include "ran/ho_policy.h"

#include <algorithm>
#include <cmath>

namespace p5g::ran {

std::vector<EventConfig> resolved_event_set(const HoConfigMap& map,
                                            const HoPolicyContext& ctx) {
  std::vector<EventConfig> set = arch_default_event_set(ctx.arch, ctx.nr_band);
  if (map.empty()) return set;  // carrier defaults, bit for bit
  const HoConfig lte = map.resolve(ctx.lte_band, ctx.lte_cell_id);
  const HoConfig nr = map.resolve(ctx.nr_band, ctx.nr_cell_id);
  // Events are configured by the serving cell of their scope; the default
  // sets list LTE-scope events first, so splitting and re-concatenating
  // preserves the original order exactly.
  std::vector<EventConfig> lte_set;
  std::vector<EventConfig> nr_set;
  for (const EventConfig& e : set) {
    (e.scope == MeasScope::kServingLte ? lte_set : nr_set).push_back(e);
  }
  lte_set = apply_ho_config(std::move(lte_set), lte);
  nr_set = apply_ho_config(std::move(nr_set), nr);
  lte_set.insert(lte_set.end(), nr_set.begin(), nr_set.end());
  return lte_set;
}

std::vector<EventConfig> AdaptiveTttHysteresisPolicy::event_set(
    const HoPolicyContext& ctx) {
  std::vector<EventConfig> set = resolved_event_set(base_, ctx);
  const double scale =
      params_.speed_ttt_scale[static_cast<std::size_t>(speed_tier_)] *
      (1.0 + static_cast<double>(pp_level_) * params_.ttt_stretch);
  const Db extra = params_.hysteresis_step * static_cast<double>(pp_level_);
  for (EventConfig& e : set) {
    e.ttt_ms = e.ttt_ms * scale;
    e.hysteresis += extra;
  }
  applied_tier_ = speed_tier_;
  applied_level_ = pp_level_;
  return set;
}

void AdaptiveTttHysteresisPolicy::note_transition(Seconds t) {
  trajectory_.push_back({t, speed_tier_, pp_level_});
}

void AdaptiveTttHysteresisPolicy::on_tick(Seconds t, Meters moved) {
  const int old_tier = speed_tier_;
  const int old_level = pp_level_;

  if (have_last_tick_) {
    const double dt = (t - last_tick_).v;
    if (dt > 0.0) {
      // |moved| guards loop-route wrap (route_position snaps back to 0);
      // the 100 m/s cap discards the wrap tick itself.
      const double inst = std::abs(moved.v) / dt;
      if (inst <= 100.0) {
        ema_speed_mps_ += params_.speed_ema_alpha * (inst - ema_speed_mps_);
      }
    }
  }
  last_tick_ = t;
  have_last_tick_ = true;

  // Quantize the EMA into tiers with a 10% downward deadband so the tier —
  // and with it the installed event set — does not flap at a boundary.
  const auto bound = [this](int tier) {
    return tier >= 2 ? params_.fast_speed_mps : params_.medium_speed_mps;
  };
  while (speed_tier_ < 2 && ema_speed_mps_ >= bound(speed_tier_ + 1)) {
    ++speed_tier_;
  }
  while (speed_tier_ > 0 && ema_speed_mps_ < bound(speed_tier_) * 0.9) {
    --speed_tier_;
  }

  // Ping-pong pressure decays as entries age out of the memory window.
  std::erase_if(recent_ping_pongs_,
                [&](Seconds s) { return t - s > params_.memory; });
  pp_level_ = std::min(static_cast<int>(recent_ping_pongs_.size()),
                       params_.max_level);

  if (speed_tier_ != old_tier || pp_level_ != old_level) note_transition(t);
}

void AdaptiveTttHysteresisPolicy::on_handover(Seconds t,
                                              const HandoverRecord& rec,
                                              bool ping_pong) {
  (void)rec;
  if (!ping_pong) return;
  recent_ping_pongs_.push_back(t);
  const int old_level = pp_level_;
  pp_level_ = std::min(static_cast<int>(recent_ping_pongs_.size()),
                       params_.max_level);
  if (pp_level_ != old_level) note_transition(t);
}

std::unique_ptr<HoPolicy> make_ho_policy(HoPolicyKind kind,
                                         const HoConfigMap& map,
                                         const AdaptiveHoParams& params) {
  switch (kind) {
    case HoPolicyKind::kStatic:
      return std::make_unique<StaticHoPolicy>(map);
    case HoPolicyKind::kAdaptive:
      return std::make_unique<AdaptiveTttHysteresisPolicy>(map, params);
  }
  return std::make_unique<StaticHoPolicy>(map);
}

}  // namespace p5g::ran
