// Pluggable HO policies: who decides the measurement-event configuration
// the network installs on the UE.
//
// The MobilityManager owns one HoPolicy and asks it for the event set
// whenever the serving context changes (or the policy reports itself
// dirty); monitors are rebuilt only when the returned set actually differs
// from the installed one, so a policy that always resolves the carrier
// defaults — StaticHoPolicy over an empty HoConfigMap — never perturbs the
// golden traces.
//
// Two implementations ship:
//   * StaticHoPolicy          — a fixed HoConfigMap (per-cell/per-band
//                               layers, ran/ho_config.h).
//   * AdaptiveTttHysteresisPolicy — the PAPERS.md adaptive-TTT design:
//                               scales TTT with UE speed and escalates
//                               hysteresis/TTT under ping-pong feedback.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "ran/handover.h"
#include "ran/ho_config.h"
#include "ran/ping_pong.h"

namespace p5g::ran {

// Serving context a policy resolves against (cell ids < 0 = not attached).
struct HoPolicyContext {
  Arch arch = Arch::kNsa;
  radio::Band nr_band = radio::Band::kNrLow;
  radio::Band lte_band = radio::Band::kLteMid;
  int lte_cell_id = -1;
  int nr_cell_id = -1;
};

class HoPolicy {
 public:
  virtual ~HoPolicy() = default;

  virtual std::string_view name() const = 0;

  // The measurement-event configuration for the given serving context.
  // Deterministic in (context, feedback history) — policies never draw RNG
  // or read clocks.
  virtual std::vector<EventConfig> event_set(const HoPolicyContext& ctx) = 0;

  // Feedback hooks, called by the MobilityManager every tick / on every
  // completed procedure. No-ops for static policies.
  virtual void on_tick(Seconds t, Meters moved) { (void)t; (void)moved; }
  virtual void on_handover(Seconds t, const HandoverRecord& rec,
                           bool ping_pong) {
    (void)t; (void)rec; (void)ping_pong;
  }

  // True when feedback changed what event_set() would return since the
  // last call; the manager re-resolves on the next tick.
  virtual bool dirty() const { return false; }
};

// Resolves `map` against the context and applies the per-scope layers to
// the carrier-default event set (LTE-scope events take the LTE serving
// cell's layer, NR-scope events the NR serving cell's). Shared by both
// shipped policies; exposed for tests and sweep harnesses.
std::vector<EventConfig> resolved_event_set(const HoConfigMap& map,
                                            const HoPolicyContext& ctx);

// Fixed per-cell/per-band configuration; never dirty. The empty map is the
// byte-identity policy (carrier defaults everywhere).
class StaticHoPolicy final : public HoPolicy {
 public:
  explicit StaticHoPolicy(HoConfigMap map) : map_(std::move(map)) {}

  std::string_view name() const override { return "static"; }
  std::vector<EventConfig> event_set(const HoPolicyContext& ctx) override {
    return resolved_event_set(map_, ctx);
  }

 private:
  HoConfigMap map_;
};

// Controller knobs for AdaptiveTttHysteresisPolicy. Defaults follow the
// PAPERS.md smart-handover design: three speed tiers shortening TTT, and a
// ping-pong pressure level stretching TTT back out and widening hysteresis.
struct AdaptiveHoParams {
  Seconds ping_pong_window = kDefaultPingPongWindow;
  // Speed-tier boundaries on the per-tick EMA speed (m/s): tier 0 below
  // `medium`, tier 2 above `fast`. ~8 m/s separates walking from driving,
  // ~25 m/s city driving from freeway.
  double medium_speed_mps = 8.0;
  double fast_speed_mps = 25.0;
  // EMA weight of the newest speed sample (per tick).
  double speed_ema_alpha = 0.05;
  // TTT scale per speed tier: fast movers trigger sooner or they overshoot
  // the target before TTT elapses.
  std::array<double, 3> speed_ttt_scale{1.0, 0.75, 0.5};
  // Ping-pong escalation: pressure level = recent ping-pongs within
  // `memory`, capped at `max_level`. Each level adds `hysteresis_step` and
  // stretches TTT by `ttt_stretch` (multiplicative: 1 + level * stretch).
  Seconds memory{30.0};
  int max_level = 4;
  Db hysteresis_step{0.5};
  double ttt_stretch = 0.25;

  bool operator==(const AdaptiveHoParams&) const = default;
};

// Speed- and ping-pong-driven TTT/hysteresis controller on top of a static
// base map. The control state is quantized (speed tier x pressure level),
// so the event set only changes — and monitors only rebuild — on discrete
// level transitions. Deterministic: state is a pure function of the tick
// and handover feedback.
class AdaptiveTttHysteresisPolicy final : public HoPolicy {
 public:
  AdaptiveTttHysteresisPolicy(HoConfigMap base, AdaptiveHoParams params)
      : base_(std::move(base)), params_(params) {}

  std::string_view name() const override { return "adaptive_ttt_hys"; }
  std::vector<EventConfig> event_set(const HoPolicyContext& ctx) override;
  void on_tick(Seconds t, Meters moved) override;
  void on_handover(Seconds t, const HandoverRecord& rec,
                   bool ping_pong) override;
  bool dirty() const override {
    return speed_tier_ != applied_tier_ || pp_level_ != applied_level_;
  }

  // One entry per control-state change; the adaptive determinism test
  // compares whole trajectories across same-seed runs.
  struct Transition {
    Seconds time{0.0};
    int speed_tier = 0;
    int pp_level = 0;
    bool operator==(const Transition&) const = default;
  };
  const std::vector<Transition>& trajectory() const { return trajectory_; }
  int speed_tier() const { return speed_tier_; }
  int pp_level() const { return pp_level_; }

 private:
  void note_transition(Seconds t);

  HoConfigMap base_;
  AdaptiveHoParams params_;
  double ema_speed_mps_ = 0.0;
  bool have_last_tick_ = false;
  Seconds last_tick_{0.0};
  std::vector<Seconds> recent_ping_pongs_;
  int speed_tier_ = 0;
  int pp_level_ = 0;
  int applied_tier_ = 0;
  int applied_level_ = 0;
  std::vector<Transition> trajectory_;
};

// Policy selection as carried by configs (MobilityManager::Config,
// sim::Scenario). kStatic + an empty map is the golden-trace default.
enum class HoPolicyKind { kStatic, kAdaptive };

std::unique_ptr<HoPolicy> make_ho_policy(HoPolicyKind kind,
                                         const HoConfigMap& map,
                                         const AdaptiveHoParams& params);

}  // namespace p5g::ran
