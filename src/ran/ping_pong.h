// Ping-pong handover detection: a handover chain A -> B -> A whose return
// leg completes within a short window of the outbound one. The classic
// symptom of too-aggressive thresholds (small offset/hysteresis, short
// TTT) — the adaptive policy in ran/ho_policy.h consumes this online, and
// analysis::ping_pong_stats applies the same definition offline.
#pragma once

#include "common/units.h"
#include "ran/handover.h"

namespace p5g::ran {

// Default return-to-source window (the value the ns-3 handover literature
// and the PAPERS.md adaptive-TTT design both use).
inline constexpr Seconds kDefaultPingPongWindow{2.0};

// Feed completed procedures in completion order; on_handover returns true
// when the record closes a ping-pong pair. Only successful procedures that
// land on a cell (dst PCI valid) participate; the LTE anchor leg and the
// NR leg are tracked independently (an SCG change bouncing between gNBs
// must not be masked by an interleaved anchor HO).
class PingPongTracker {
 public:
  explicit PingPongTracker(Seconds window = kDefaultPingPongWindow)
      : window_(window) {}

  bool on_handover(const HandoverRecord& rec);

  void reset();

  int handovers() const { return handovers_; }    // eligible HOs seen
  int ping_pongs() const { return ping_pongs_; }  // pairs closed

 private:
  struct LegState {
    int prev_pci = -1;          // cell the last HO left
    Seconds last_time{-1.0e9};  // completion time of the last HO
  };

  Seconds window_;
  LegState legs_[2];  // indexed by radio::Rat of the destination band
  int handovers_ = 0;
  int ping_pongs_ = 0;
};

}  // namespace p5g::ran
