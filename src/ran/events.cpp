#include "ran/events.h"

#include "radio/propagation.h"

namespace p5g::ran {

std::string_view event_name(EventType t) {
  switch (t) {
    case EventType::kA1: return "A1";
    case EventType::kA2: return "A2";
    case EventType::kA3: return "A3";
    case EventType::kA4: return "A4";
    case EventType::kA5: return "A5";
    case EventType::kA6: return "A6";
    case EventType::kB1: return "B1";
  }
  return "?";
}

bool EventMonitor::entering_condition(const EventConfig& c, const MeasSnapshot& m) {
  const Db hys = c.hysteresis;
  switch (c.type) {
    case EventType::kA1:
      return m.serving_valid && m.serving_rsrp - hys > c.threshold1;
    case EventType::kA2:
      return m.serving_valid && m.serving_rsrp + hys < c.threshold1;
    case EventType::kA3:
    case EventType::kA6:
      return m.serving_valid && m.neighbor_valid &&
             m.best_neighbor_rsrp - hys > m.serving_rsrp + c.offset;
    case EventType::kA4:
    case EventType::kB1:
      return m.neighbor_valid && m.best_neighbor_rsrp - hys > c.threshold1;
    case EventType::kA5:
      return m.serving_valid && m.neighbor_valid &&
             m.serving_rsrp + hys < c.threshold1 &&
             m.best_neighbor_rsrp - hys > c.threshold2;
  }
  return false;
}

bool EventMonitor::leaving_condition(const EventConfig& c, const MeasSnapshot& m) {
  const Db hys = c.hysteresis;
  switch (c.type) {
    case EventType::kA1:
      return !m.serving_valid || m.serving_rsrp + hys < c.threshold1;
    case EventType::kA2:
      return !m.serving_valid || m.serving_rsrp - hys > c.threshold1;
    case EventType::kA3:
    case EventType::kA6:
      return !m.serving_valid || !m.neighbor_valid ||
             m.best_neighbor_rsrp + hys < m.serving_rsrp + c.offset;
    case EventType::kA4:
    case EventType::kB1:
      return !m.neighbor_valid || m.best_neighbor_rsrp + hys < c.threshold1;
    case EventType::kA5:
      return !m.serving_valid || !m.neighbor_valid ||
             m.serving_rsrp - hys > c.threshold1 ||
             m.best_neighbor_rsrp + hys < c.threshold2;
  }
  return true;
}

std::optional<TriggeredEvent> EventMonitor::evaluate(Seconds t, const MeasSnapshot& m) {
  if (reported_) {
    if (leaving_condition(config_, m)) {
      reported_ = false;
      condition_since_.reset();
    }
    return std::nullopt;
  }
  if (entering_condition(config_, m)) {
    if (!condition_since_) condition_since_ = t;
    if (Millis::from(t - *condition_since_) >= config_.ttt_ms) {
      reported_ = true;
      TriggeredEvent e;
      e.type = config_.type;
      e.scope = config_.scope;
      e.time = t;
      e.serving_rsrp = m.serving_rsrp;
      e.neighbor_rsrp = m.best_neighbor_rsrp;
      e.neighbor_pci = m.best_neighbor_pci;
      e.neighbor_cell_id = m.best_neighbor_cell_id;
      return e;
    }
  } else {
    condition_since_.reset();
  }
  return std::nullopt;
}

void EventMonitor::reset() {
  condition_since_.reset();
  reported_ = false;
}

namespace {

// Thresholds are self-calibrated to each band's cell-edge RSRP so that the
// event machinery tracks the deployment geometry rather than magic numbers.
Dbm edge_rsrp(radio::Band b) {
  const radio::BandProfile& p = radio::band_profile(b);
  return p.tx_power_dbm - radio::path_loss_db(b, p.nominal_radius_m);
}

}  // namespace

std::vector<EventConfig> default_lte_event_set(radio::Band nr_band) {
  std::vector<EventConfig> v;
  const Dbm edge = edge_rsrp(radio::Band::kLteMid);
  // A2: serving LTE degrades below cell-edge quality.
  v.push_back({EventType::kA2, MeasScope::kServingLte, radio::Rat::kLte,
               edge - 4.0_db, 0.0_dbm, 0.0_db, 1.0_db, 320.0_ms});
  // A3: intra-LTE neighbor offset-better -> LTEH / MNBH.
  v.push_back({EventType::kA3, MeasScope::kServingLte, radio::Rat::kLte,
               0.0_dbm, 0.0_dbm, 5.0_db, 1.5_db, 560.0_ms});
  // A5: serving bad + neighbor acceptable (inter-frequency fallback).
  v.push_back({EventType::kA5, MeasScope::kServingLte, radio::Rat::kLte,
               edge - 8.0_db, edge - 3.0_db, 0.0_db, 1.5_db, 480.0_ms});
  // B1: NR neighbor above threshold -> SCG Addition (NSA only).
  v.push_back({EventType::kB1, MeasScope::kServingLte, radio::Rat::kNr,
               edge_rsrp(nr_band) - 2.0_db, 0.0_dbm, 0.0_db, 1.5_db, 256.0_ms});
  return v;
}

std::vector<EventConfig> default_nsa_nr_event_set(radio::Band nr_band) {
  std::vector<EventConfig> v;
  const Dbm nr_edge = edge_rsrp(nr_band);
  const bool mmwave = nr_band == radio::Band::kNrMmWave;
  // NR-A2: SCG leg degrades -> candidate for SCGR / SCGC. mmWave reacts
  // earlier (beams die fast once the UE leaves the boresight).
  v.push_back({EventType::kA2, MeasScope::kServingNr, radio::Rat::kNr,
               mmwave ? nr_edge + 2.0_db : nr_edge - 5.0_db, 0.0_dbm, 0.0_db, 1.0_db,
               mmwave ? 200.0_ms : 256.0_ms});
  // NR-A3: a beam/sector of the same gNB becomes offset-better -> SCGM.
  // mmWave beam switching is deliberately aggressive (short TTT).
  v.push_back({EventType::kA3, MeasScope::kServingNr, radio::Rat::kNr,
               0.0_dbm, 0.0_dbm, mmwave ? 3.5_db : 4.0_db, 1.5_db, mmwave ? 260.0_ms : 400.0_ms});
  // NR-B1: NR neighbor above absolute threshold (used with A2 for SCGC).
  v.push_back({EventType::kB1, MeasScope::kServingNr, radio::Rat::kNr,
               nr_edge - 3.0_db, 0.0_dbm, 0.0_db, 1.5_db, mmwave ? 200.0_ms : 256.0_ms});
  return v;
}

std::vector<EventConfig> default_sa_event_set(radio::Band nr_band) {
  std::vector<EventConfig> v;
  const Dbm nr_edge = edge_rsrp(nr_band);
  v.push_back({EventType::kA2, MeasScope::kServingNr, radio::Rat::kNr,
               nr_edge - 5.0_db, 0.0_dbm, 0.0_db, 1.0_db, 320.0_ms});
  // SA MCG HO driven by NR-A3 (any gNB).
  v.push_back({EventType::kA3, MeasScope::kServingNr, radio::Rat::kNr,
               0.0_dbm, 0.0_dbm, 3.5_db, 1.5_db, 400.0_ms});
  v.push_back({EventType::kA5, MeasScope::kServingNr, radio::Rat::kNr,
               nr_edge - 8.0_db, nr_edge - 3.0_db, 0.0_db, 1.5_db, 480.0_ms});
  return v;
}

}  // namespace p5g::ran
