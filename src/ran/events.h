// 3GPP measurement events (Table 4 of the paper / TS 36.331 & 38.331).
//
// The UE is configured with a set of events by its primary cell; it
// evaluates the trigger condition against serving/neighbor measurements,
// applies hysteresis and time-to-trigger (TTT), and raises a measurement
// report (MR) when an event "enters". Reports re-arm once the condition
// (with hysteresis) clears.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "radio/band.h"

namespace p5g::ran {

enum class EventType {
  kA1,  // serving becomes better than threshold
  kA2,  // serving becomes worse than threshold
  kA3,  // neighbor becomes offset better than serving (same RAT)
  kA4,  // neighbor becomes better than threshold
  kA5,  // serving worse than thr1 AND neighbor better than thr2
  kA6,  // neighbor becomes offset better than secondary serving (SCG)
  kB1,  // inter-RAT neighbor becomes better than threshold
};

std::string_view event_name(EventType t);

// Which leg of the connection an event is measured against.
enum class MeasScope {
  kServingLte,  // the LTE primary (MCG) leg
  kServingNr,   // the NR secondary (SCG) leg, or NR primary in SA
};

struct EventConfig {
  EventType type{};
  MeasScope scope = MeasScope::kServingLte;
  // Which RAT the *neighbor* side of the condition measures (for A3/A4/A5/
  // A6/B1). B1 is inter-RAT by definition (LTE serving, NR neighbor).
  radio::Rat neighbor_rat = radio::Rat::kLte;
  Dbm threshold1{-100.0};   // A1/A2/A4/B1 threshold, A5 thr1 (serving)
  Dbm threshold2{-105.0};   // A5 thr2 (neighbor)
  Db offset{3.0};           // A3/A6 offset
  Db hysteresis{1.0};       // applied on enter and leave
  Milliseconds ttt_ms{160.0};

  // Exact comparison (units compare IEEE-exactly): the MobilityManager
  // rebuilds its monitors only when a policy's resolved set differs from
  // the installed one, so "equal" must mean "same RRC measConfig".
  bool operator==(const EventConfig&) const = default;
};

// One serving/neighbor measurement snapshot used to evaluate events.
struct MeasSnapshot {
  Dbm serving_rsrp{-140.0};        // RSRP of the leg named by `scope`
  bool serving_valid = false;
  Dbm best_neighbor_rsrp{-140.0};  // strongest neighbor of `neighbor_rat`
  int best_neighbor_pci = -1;
  int best_neighbor_cell_id = -1;
  bool neighbor_valid = false;
};

struct TriggeredEvent {
  EventType type{};
  MeasScope scope{};
  Seconds time{0.0};
  Dbm serving_rsrp{-140.0};
  Dbm neighbor_rsrp{-140.0};
  int neighbor_pci = -1;
  int neighbor_cell_id = -1;
};

// Tracks enter/leave state and TTT for one configured event.
class EventMonitor {
 public:
  explicit EventMonitor(EventConfig config) : config_(config) {}

  const EventConfig& config() const { return config_; }

  // Evaluate at time `t`; returns the triggered event when the condition
  // has held for TTT and the event has not already been reported.
  std::optional<TriggeredEvent> evaluate(Seconds t, const MeasSnapshot& m);

  // Raw entering-condition check (exposed for the report predictor, which
  // runs the same logic over *predicted* measurements).
  static bool entering_condition(const EventConfig& c, const MeasSnapshot& m);
  static bool leaving_condition(const EventConfig& c, const MeasSnapshot& m);

  void reset();

  // True while the event has fired and its leaving condition has not yet
  // been met (3GPP reporting is edge-triggered; no re-report while latched).
  bool reported() const { return reported_; }

 private:
  EventConfig config_;
  std::optional<Seconds> condition_since_;
  bool reported_ = false;
};

// The standard event set for each architecture/leg, mirroring what the
// paper observes in carrier configurations (§7.1, Fig. 16 annotations).
// Absolute thresholds self-calibrate to the NR band the area deploys
// (mmWave edge RSRP differs from low-band by tens of dB).
std::vector<EventConfig> default_lte_event_set(radio::Band nr_band);
std::vector<EventConfig> default_nsa_nr_event_set(radio::Band nr_band);
std::vector<EventConfig> default_sa_event_set(radio::Band nr_band);

}  // namespace p5g::ran
