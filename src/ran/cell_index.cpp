#include "ran/cell_index.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "common/check.h"

namespace p5g::ran {

namespace {

std::size_t band_slot(radio::Band b) { return static_cast<std::size_t>(b); }

}  // namespace

const CellIndex::Grid& CellIndex::grid(radio::Band band) const {
  return grids_[band_slot(band)];
}

CellIndex::Grid& CellIndex::grid(radio::Band band) { return grids_[band_slot(band)]; }

void CellIndex::add(radio::Band band, geo::Point pos, int id) {
  grid(band).staged.push_back({pos, id});
}

void CellIndex::build() {
  for (std::size_t slot = 0; slot < std::size(grids_); ++slot) {
    Grid& g = grids_[slot];
    if (g.staged.empty()) continue;
    // Queries iterate buckets in scan order and tie-break on id, so the
    // staged order only has to be id-sorted within each bucket; sorting
    // the whole band keeps that invariant trivially.
    std::sort(g.staged.begin(), g.staged.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });

    double min_x = std::numeric_limits<double>::max();
    double min_y = std::numeric_limits<double>::max();
    double max_x = std::numeric_limits<double>::lowest();
    double max_y = std::numeric_limits<double>::lowest();
    for (const Entry& e : g.staged) {
      min_x = std::min(min_x, e.pos.x);
      min_y = std::min(min_y, e.pos.y);
      max_x = std::max(max_x, e.pos.x);
      max_y = std::max(max_y, e.pos.y);
    }
    g.bucket_m = radio::band_profile(static_cast<radio::Band>(slot)).nominal_radius_m;
    g.min_x = min_x;
    g.min_y = min_y;
    g.nx = 1 + static_cast<int>((max_x - min_x) / g.bucket_m.v);
    g.ny = 1 + static_cast<int>((max_y - min_y) / g.bucket_m.v);
    // Stable counting sort of the id-ordered staged entries into the CSR
    // layout: within every bucket the id order survives, which is what the
    // (dist, id) query contract relies on for exact-distance ties.
    const std::size_t nb =
        static_cast<std::size_t>(g.nx) * static_cast<std::size_t>(g.ny);
    auto bucket_of = [&g](const Entry& e) {
      const int bx = std::clamp(
          static_cast<int>((e.pos.x - g.min_x) / g.bucket_m.v), 0, g.nx - 1);
      const int by = std::clamp(
          static_cast<int>((e.pos.y - g.min_y) / g.bucket_m.v), 0, g.ny - 1);
      return static_cast<std::size_t>(by) * static_cast<std::size_t>(g.nx) +
             static_cast<std::size_t>(bx);
    };
    g.bucket_start.assign(nb + 1, 0);
    for (const Entry& e : g.staged) ++g.bucket_start[bucket_of(e) + 1];
    for (std::size_t b = 1; b <= nb; ++b) g.bucket_start[b] += g.bucket_start[b - 1];
    g.entries.resize(g.staged.size());
    std::vector<std::uint32_t> cursor(g.bucket_start.begin(),
                                      g.bucket_start.end() - 1);
    for (const Entry& e : g.staged) g.entries[cursor[bucket_of(e)]++] = e;
  }
}

std::size_t CellIndex::size(radio::Band band) const { return grid(band).staged.size(); }

void CellIndex::query_radius(geo::Point p, radio::Band band, Meters radius,
                             std::vector<IndexHit>& out) const {
  out.clear();
  const Grid& g = grid(band);
  if (g.nx == 0) return;
  const int x0 = std::clamp(
      static_cast<int>(std::floor((p.x - radius.v - g.min_x) / g.bucket_m.v)), 0, g.nx - 1);
  const int x1 = std::clamp(
      static_cast<int>(std::floor((p.x + radius.v - g.min_x) / g.bucket_m.v)), 0, g.nx - 1);
  const int y0 = std::clamp(
      static_cast<int>(std::floor((p.y - radius.v - g.min_y) / g.bucket_m.v)), 0, g.ny - 1);
  const int y1 = std::clamp(
      static_cast<int>(std::floor((p.y + radius.v - g.min_y) / g.bucket_m.v)), 0, g.ny - 1);
  for (int by = y0; by <= y1; ++by) {
    // The row's [x0, x1] bucket span is contiguous in the CSR layout, so
    // the whole row is one linear pass over packed entries.
    const std::size_t row = static_cast<std::size_t>(by) * static_cast<std::size_t>(g.nx);
    const std::uint32_t lo = g.bucket_start[row + static_cast<std::size_t>(x0)];
    const std::uint32_t hi = g.bucket_start[row + static_cast<std::size_t>(x1) + 1];
    for (std::uint32_t k = lo; k < hi; ++k) {
      const Entry& e = g.entries[k];
      // Same expression (and argument order) as the historical linear
      // scan, so the filtered set is bit-identical.
      const Meters d = geo::distance(e.pos, p);
      if (d <= radius) out.push_back({e.id, d});
    }
  }
  std::sort(out.begin(), out.end(), [](const IndexHit& a, const IndexHit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  });
  // The (dist, id) order is the determinism contract callers (and the golden
  // traces) depend on — keep this ENSURE in sync with the comparator above.
  P5G_ENSURE(std::is_sorted(out.begin(), out.end(),
                            [](const IndexHit& a, const IndexHit& b) {
                              if (a.dist != b.dist) return a.dist < b.dist;
                              return a.id < b.id;
                            }),
             "query_radius hits must be (dist, id)-sorted");
}

std::optional<IndexHit> CellIndex::nearest(geo::Point p, radio::Band band) const {
  const Grid& g = grid(band);
  if (g.staged.empty()) return std::nullopt;
  if (g.nx == 0) return std::nullopt;  // add() after build(); not supported

  // Ideal (unclamped) bucket of p; may lie outside the grid when p does.
  const int cx = static_cast<int>(std::floor((p.x - g.min_x) / g.bucket_m.v));
  const int cy = static_cast<int>(std::floor((p.y - g.min_y) / g.bucket_m.v));

  std::optional<IndexHit> best;
  auto consider = [&](int bx, int by) {
    if (bx < 0 || bx >= g.nx || by < 0 || by >= g.ny) return;
    const std::size_t b = static_cast<std::size_t>(by) * static_cast<std::size_t>(g.nx) +
                          static_cast<std::size_t>(bx);
    for (std::uint32_t k = g.bucket_start[b]; k < g.bucket_start[b + 1]; ++k) {
      const Entry& e = g.entries[k];
      const Meters d = geo::distance(e.pos, p);
      if (!best || d < best->dist || (d == best->dist && e.id < best->id)) {
        best = IndexHit{e.id, d};
      }
    }
  };

  // Expand Chebyshev rings around the ideal bucket. Any entry in ring r
  // is at least (r - 1) * bucket_m away from p, so once the incumbent is
  // closer than that bound no farther ring can beat it.
  const int r_max = std::max({cx, g.nx - 1 - cx, cy, g.ny - 1 - cy,
                              -cx, cx - (g.nx - 1), -cy, cy - (g.ny - 1), 0});
  for (int r = 0; r <= r_max; ++r) {
    if (best && best->dist <= static_cast<double>(r - 1) * g.bucket_m) break;
    if (r == 0) {
      consider(cx, cy);
      continue;
    }
    for (int bx = cx - r; bx <= cx + r; ++bx) {
      consider(bx, cy - r);
      consider(bx, cy + r);
    }
    for (int by = cy - r + 1; by <= cy + r - 1; ++by) {
      consider(cx - r, by);
      consider(cx + r, by);
    }
  }
  return best;
}

}  // namespace p5g::ran
