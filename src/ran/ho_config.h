// The HO configuration space (§7.1 of the paper; "Handover Configurations
// in Operational 5G Networks" in PAPERS.md measures its real-world shape).
//
// Carriers do not deploy one global A3/A5/TTT tuple: event thresholds vary
// per cell and per band and evolve over time. HoConfig models one *layer*
// of that space as a set of optional overrides; HoConfigMap stacks layers
// (global -> band -> cell) and resolves the effective override set for a
// serving cell. An empty map resolves to "no overrides", which reproduces
// the carrier-default event sets — and therefore the golden traces —
// byte-identically (gated by tests/ho_policy_test.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/units.h"
#include "radio/band.h"
#include "ran/deployment.h"
#include "ran/events.h"

namespace p5g::ran {

// Number of EventType enumerators (kA1..kB1); sized for per-event tables.
inline constexpr std::size_t kEventTypeCount = 7;

constexpr std::size_t event_index(EventType t) {
  return static_cast<std::size_t>(t);
}

// One layer of HO-parameter overrides. Every field is optional: an unset
// field inherits from the layer below (and ultimately from the carrier
// default event set in ran/events.h).
struct HoConfig {
  std::optional<Db> a3_offset;        // A3/A6 neighbor-better-by offset
  std::optional<Dbm> a5_threshold1;   // A5 serving-below threshold
  std::optional<Dbm> a5_threshold2;   // A5 neighbor-above threshold
  std::optional<Db> hysteresis;       // applied to every configured event
  std::optional<Milliseconds> ttt;    // time-to-trigger for every event
  // Per-event-type enable. Unset inherits; a resolved `false` removes the
  // event from the UE's measurement configuration entirely.
  std::array<std::optional<bool>, kEventTypeCount> enabled{};

  bool operator==(const HoConfig&) const = default;

  // True when no field is set (the identity overlay).
  bool empty() const;

  void set_enabled(EventType t, bool on) { enabled[event_index(t)] = on; }
};

// `over` stacked on top of `base`: fields set in `over` win, unset fields
// fall through to `base`.
HoConfig overlay(HoConfig base, const HoConfig& over);

// Applies a fully-resolved override layer to a carrier-default event set:
// knobs rewrite the matching fields of matching events, disabled events are
// dropped. The empty config returns `set` unchanged.
std::vector<EventConfig> apply_ho_config(std::vector<EventConfig> set,
                                         const HoConfig& cfg);

// Layered per-cell/per-band HO configuration: global -> band -> cell, most
// specific layer wins field by field. Cells and bands without an entry fall
// through to the global layer; an entirely empty map is the carrier
// default.
class HoConfigMap {
 public:
  void set_global(const HoConfig& c) { global_ = c; }
  void set_band(radio::Band b, const HoConfig& c) { band_[b] = c; }
  void set_cell(int cell_id, const HoConfig& c) { cell_[cell_id] = c; }

  // Effective override layer for a serving cell of `band`. `cell_id` < 0
  // (not attached) resolves the global + band layers only.
  HoConfig resolve(radio::Band band, int cell_id) const;

  bool empty() const;
  bool operator==(const HoConfigMap&) const = default;

 private:
  HoConfig global_;
  std::map<radio::Band, HoConfig> band_;
  std::map<int, HoConfig> cell_;
};

// The carrier-default event set for an architecture (the constructor-time
// switch the MobilityManager historically inlined): LTE-only filters B1
// (no NR layer to add), NSA concatenates the LTE and NR sets, SA uses the
// NR-primary set.
std::vector<EventConfig> arch_default_event_set(Arch arch, radio::Band nr_band);

}  // namespace p5g::ran
