// Carrier deployments: how a carrier lays out towers and cells along the
// area a route traverses. Encodes the three carrier archetypes the paper
// studies (OpX/OpZ: NSA with low-band + mmWave; OpY: NSA+SA with low- and
// mid-band) plus the per-band cell spacing that yields the coverage
// landscape of §6.1.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/route.h"
#include "ran/cell.h"
#include "ran/cell_index.h"

namespace p5g::ran {

enum class Arch { kLteOnly, kNsa, kSa };

struct CarrierProfile {
  std::string name;
  std::vector<radio::Band> nr_bands;       // NR bands this carrier deploys
  radio::Band anchor_band = radio::Band::kLteMid;  // NSA-4C control plane
  bool offers_sa = false;                  // OpY only, low-band SA
  // Fraction of NR towers whose gNB is co-located with an eNB (5%-36%
  // across the paper's carriers).
  double colocation_fraction = 0.2;
  // Multiplier on per-band nominal cell spacing (denser urban carriers <1).
  double density_scale = 1.0;
};

// The three carrier archetypes from the paper.
CarrierProfile profile_opx();
CarrierProfile profile_opy();
CarrierProfile profile_opz();

// A cell returned from a proximity query together with the distance the
// index already computed, so hot-path callers never re-run geo::distance.
struct CellHit {
  const Cell* cell = nullptr;
  Meters dist{0.0};
};

// A concrete set of towers/cells generated for a route corridor.
class Deployment {
 public:
  // Places towers of every band the carrier deploys along `route` with
  // per-band spacing derived from radio::band_profile().nominal_radius_m,
  // then builds the per-band spatial index all proximity queries use.
  Deployment(const CarrierProfile& profile, const geo::Route& route, Rng& rng);

  const CarrierProfile& profile() const { return profile_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Tower>& towers() const { return towers_; }
  const Cell& cell(int id) const { return cells_[static_cast<std::size_t>(id)]; }
  const Tower& tower(int id) const { return towers_[static_cast<std::size_t>(id)]; }

  // Cells of `band` within `radius` of `p`, nearest first (ties on exact
  // distance break toward the lower cell id). Index-backed.
  std::vector<const Cell*> cells_near(geo::Point p, radio::Band band,
                                      Meters radius) const;

  // Same query, but replaces `out` with (cell, distance) hits so the
  // caller can reuse one buffer per tick and skip the distance recompute.
  void cells_near(geo::Point p, radio::Band band, Meters radius,
                  std::vector<CellHit>& out) const;

  // Reference linear-scan implementation of cells_near, kept for the
  // index equivalence tests and the bench_perf speedup baseline.
  std::vector<CellHit> cells_near_linear(geo::Point p, radio::Band band,
                                         Meters radius) const;

  // All cells of a band.
  std::vector<const Cell*> cells_on_band(radio::Band band) const;

  const CellIndex& index() const { return index_; }

 private:
  void place_band(radio::Band band, const geo::Route& route, Rng& rng);

  CarrierProfile profile_;
  std::vector<Tower> towers_;
  std::vector<Cell> cells_;
  Pci next_pci_ = 1;
  CellIndex index_;         // all cells, keyed by cell position
  CellIndex anchor_index_;  // anchor-band cells, keyed by their TOWER
                            // position (the co-location site search)
  // Contract-layer budget: when checks are active, the first few cells_near
  // queries are cross-checked against cells_near_linear. Present in every
  // build (layout must not depend on the checks macro); only decremented
  // when the contract layer is compiled in.
  mutable std::atomic<int> crosscheck_budget_{32};
};

}  // namespace p5g::ran
