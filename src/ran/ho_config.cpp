#include "ran/ho_config.h"

#include <algorithm>

namespace p5g::ran {

bool HoConfig::empty() const {
  const bool any_enable =
      std::any_of(enabled.begin(), enabled.end(),
                  [](const std::optional<bool>& e) { return e.has_value(); });
  return !a3_offset && !a5_threshold1 && !a5_threshold2 && !hysteresis &&
         !ttt && !any_enable;
}

HoConfig overlay(HoConfig base, const HoConfig& over) {
  if (over.a3_offset) base.a3_offset = over.a3_offset;
  if (over.a5_threshold1) base.a5_threshold1 = over.a5_threshold1;
  if (over.a5_threshold2) base.a5_threshold2 = over.a5_threshold2;
  if (over.hysteresis) base.hysteresis = over.hysteresis;
  if (over.ttt) base.ttt = over.ttt;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (over.enabled[i]) base.enabled[i] = over.enabled[i];
  }
  return base;
}

std::vector<EventConfig> apply_ho_config(std::vector<EventConfig> set,
                                         const HoConfig& cfg) {
  std::erase_if(set, [&cfg](const EventConfig& e) {
    const std::optional<bool>& on = cfg.enabled[event_index(e.type)];
    return on.has_value() && !*on;
  });
  for (EventConfig& e : set) {
    if (cfg.a3_offset && (e.type == EventType::kA3 || e.type == EventType::kA6)) {
      e.offset = *cfg.a3_offset;
    }
    if (e.type == EventType::kA5) {
      if (cfg.a5_threshold1) e.threshold1 = *cfg.a5_threshold1;
      if (cfg.a5_threshold2) e.threshold2 = *cfg.a5_threshold2;
    }
    if (cfg.hysteresis) e.hysteresis = *cfg.hysteresis;
    if (cfg.ttt) e.ttt_ms = *cfg.ttt;
  }
  return set;
}

HoConfig HoConfigMap::resolve(radio::Band band, int cell_id) const {
  HoConfig out = global_;
  if (const auto b = band_.find(band); b != band_.end()) {
    out = overlay(out, b->second);
  }
  if (cell_id >= 0) {
    if (const auto c = cell_.find(cell_id); c != cell_.end()) {
      out = overlay(out, c->second);
    }
  }
  return out;
}

bool HoConfigMap::empty() const {
  if (!global_.empty()) return false;
  const auto layer_empty = [](const auto& m) {
    return std::all_of(m.begin(), m.end(),
                       [](const auto& kv) { return kv.second.empty(); });
  };
  return layer_empty(band_) && layer_empty(cell_);
}

std::vector<EventConfig> arch_default_event_set(Arch arch, radio::Band nr_band) {
  std::vector<EventConfig> configs;
  switch (arch) {
    case Arch::kLteOnly: {
      for (const EventConfig& c : default_lte_event_set(nr_band)) {
        if (c.type != EventType::kB1) configs.push_back(c);  // no NR layer
      }
      break;
    }
    case Arch::kNsa: {
      for (const EventConfig& c : default_lte_event_set(nr_band)) {
        configs.push_back(c);
      }
      for (const EventConfig& c : default_nsa_nr_event_set(nr_band)) {
        configs.push_back(c);
      }
      break;
    }
    case Arch::kSa: {
      for (const EventConfig& c : default_sa_event_set(nr_band)) {
        configs.push_back(c);
      }
      break;
    }
  }
  return configs;
}

}  // namespace p5g::ran
