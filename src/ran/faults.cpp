#include "ran/faults.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace p5g::ran {

namespace {

#if P5G_CHECKS_ENABLED
bool probs_in_unit_range(const HoTypeProbs& probs) {
  for (double p : probs.p) {
    if (!(p >= 0.0 && p <= 1.0)) return false;
  }
  return true;
}
#endif

}  // namespace

void validate_fault_profile([[maybe_unused]] const FaultProfile& p) {
  P5G_REQUIRE(probs_in_unit_range(p.prep_failure),
              "prep-failure probabilities must lie in [0, 1]");
  P5G_REQUIRE(probs_in_unit_range(p.exec_failure),
              "exec-failure probabilities must lie in [0, 1]");
  P5G_REQUIRE(p.rach_max_attempts >= 1, "at least one RACH attempt");
  P5G_REQUIRE(p.rach_attempt_ms >= 0.0);
  P5G_REQUIRE(p.rach_backoff_base_ms >= 0.0);
  P5G_REQUIRE(p.rach_backoff_factor >= 1.0,
              "backoff must not shrink across attempts");
  P5G_REQUIRE(p.rach_backoff_cap_ms >= p.rach_backoff_base_ms,
              "backoff cap below base");
  P5G_REQUIRE(p.rlf_t310 > 0.0, "T310 must be a positive interval");
  P5G_REQUIRE(p.reestablish_sd_ms >= 0.0);
  P5G_REQUIRE(p.reestablish_floor_ms >= 0.0);
  P5G_REQUIRE(p.reestablish_mean_ms >= p.reestablish_floor_ms,
              "re-establishment mean below its floor");
  P5G_REQUIRE(p.scg_failure_fallback_ms >= 0.0);
}

FaultProfile FaultProfile::uniform(double prep_p, double exec_p, bool rlf) {
  FaultProfile f;
  f.prep_failure.fill(prep_p);
  f.exec_failure.fill(exec_p);
  f.rlf_enabled = rlf;
  return f;
}

bool FaultInjector::prep_fails(HoType t) {
  const double p = profile_.prep_failure[t];
  if (p <= 0.0) return false;
  const bool fails = rng_.bernoulli(p);
  if (fails) {
    static obs::Counter& m = obs::registry().counter("p5g.ran.faults.prep_failures");
    m.add(1);
  }
  return fails;
}

Milliseconds FaultInjector::backoff_ms(int attempt) const {
  const double raw = profile_.rach_backoff_base_ms.v *
                     std::pow(profile_.rach_backoff_factor, attempt - 1);
  return std::min(Millis{raw}, profile_.rach_backoff_cap_ms);
}

FaultInjector::ExecPlan FaultInjector::plan_execution(HoType t) {
  static obs::Counter& m_retries =
      obs::registry().counter("p5g.ran.faults.rach_retries");
  static obs::Counter& m_exec_failures =
      obs::registry().counter("p5g.ran.faults.exec_failures");
  ExecPlan plan;
  // SCG Release carries no RACH toward a target; its execution cannot fail.
  if (t == HoType::kScgr) return plan;
  const double p = profile_.exec_failure[t];
  if (p <= 0.0) return plan;
  const int max_attempts = std::max(1, profile_.rach_max_attempts);
  while (rng_.bernoulli(p)) {
    if (plan.attempts == max_attempts) {
      plan.success = false;
      m_retries.add(static_cast<std::uint64_t>(plan.attempts - 1));
      m_exec_failures.add(1);
      return plan;
    }
    plan.backoff_ms += backoff_ms(plan.attempts);
    plan.retry_ms += profile_.rach_attempt_ms;
    ++plan.attempts;
  }
  m_retries.add(static_cast<std::uint64_t>(plan.attempts - 1));
  return plan;
}

Milliseconds FaultInjector::reestablish_duration() {
  return std::max(profile_.reestablish_floor_ms,
                  Millis{rng_.normal(profile_.reestablish_mean_ms.v,
                                     profile_.reestablish_sd_ms.v)});
}

bool RlfMonitor::update(Seconds t, Dbm serving_rsrp, bool serving_valid) {
  if (!enabled_) return false;
  const bool below = !serving_valid || serving_rsrp < qout_;
  if (!below) {
    below_since_.reset();
    return false;
  }
  if (!below_since_) below_since_ = t;
  if (t - *below_since_ >= t310_) {
    below_since_.reset();  // timer consumed; re-arm after recovery
    return true;
  }
  return false;
}

}  // namespace p5g::ran
