// Radio propagation: log-distance path loss, spatially correlated log-normal
// shadowing (Gudmundson model), and small-scale fading. One ShadowingProcess
// instance exists per (cell, UE) pair so that consecutive samples along a
// route are correlated the way real drive-test RSRP is.
#pragma once

#include <limits>

#include "common/rng.h"
#include "common/units.h"
#include "radio/band.h"

namespace p5g::radio {

// Deterministic mean path loss at distance d for a band.
Db path_loss_db(Band band, Meters distance);

// Precomputed constants of the log-distance model, hoisted so batch loops
// (and path_loss_db itself) evaluate one log10 per sample instead of three.
// Built with the exact expressions the original scalar formula used, so
//   fspl_10m + coef * log10(max(d, 1) / 10) == path_loss_db(band, d)
// bit for bit.
struct PathLossParams {
  double fspl_10m = 0.0;  // free-space loss at the 10 m reference distance
  double coef = 0.0;      // 10 * path-loss exponent
};
const PathLossParams& path_loss_params(Band band);

// First-order Gauss-Markov shadowing along a trajectory.
class ShadowingProcess {
 public:
  ShadowingProcess(Band band, Rng rng);

  // Advance the process by `moved` metres of UE travel and return the new
  // shadowing value in dB.
  Db step(Meters moved);
  Db current() const { return value_db_; }

 private:
  Db sigma_db_;
  Meters corr_m_;
  Db value_db_;
  Rng rng_;
};

// Location-bound shadowing: a deterministic spatial field per cell, so the
// same place always shadows the same way (drive-test HO locations repeat,
// which the paper exploits — HOs are "triggered repeatedly by a single
// measurement event" at fixed spots, §5.3). Implemented as bilinear
// interpolation of a hash-seeded Gaussian grid with spacing equal to the
// band's decorrelation distance.
class ShadowingField {
 public:
  ShadowingField(Band band, std::uint64_t cell_seed);

  // Bilinear blend of a position on the band's shadowing grid: corner cell,
  // the four weights, and the blend's renormalization factor. A pure
  // function of (position, band grid spacing) — every field of the same
  // band shares identical weights, so a batch over co-band cells computes
  // them once per tick instead of once per cell.
  struct GridWeights {
    long ix = 0, iy = 0;  // lower-left grid corner
    double w00 = 0.0, w10 = 0.0, w01 = 0.0, w11 = 0.0;
    double norm = 1.0;
  };

  // Cached corner Gaussians of ONE field at the last grid cell queried.
  // at_cached() re-hashes the four corners only when the query crosses into
  // another grid cell, which at drive speeds happens once per many ticks —
  // the cache turns the dominant grid_value() cost into a rare refresh.
  struct Corners {
    long ix = std::numeric_limits<long>::min();  // "never filled"
    long iy = std::numeric_limits<long>::min();
    double g00 = 0.0, g10 = 0.0, g01 = 0.0, g11 = 0.0;
  };

  GridWeights weights_at(double x, double y) const;

  // Shadowing in dB at the weighted position, refreshing `c` if it belongs
  // to another grid cell. Bit-identical to at() by construction: at() is
  // implemented as at_cached() over a fresh cache.
  Db at_cached(const GridWeights& w, Corners& c) const;

  // Shadowing in dB at a position (deterministic). Scalar reference path.
  Db at(double x, double y) const;

 private:
  double grid_value(long ix, long iy) const;

  Db sigma_db_;
  Meters grid_m_;
  std::uint64_t seed_;
};

// Small-scale fading magnitude in dB around the local mean. mmWave uses a
// heavier-tailed process (beam misalignment spikes); sub-6 uses mild Rician-
// like variation. Stateless: returns an independent draw per sample, which
// matches the 20 Hz log cadence where fast fading decorrelates sample to
// sample at driving speeds.
Db fast_fading_db(Band band, Rng& rng);

// Received signal strength triple reported by the UE (the paper's "RRS").
struct Rrs {
  Dbm rsrp{-140.0};
  Db rsrq{-20.0};
  Db sinr{-10.0};
};

// Directional antenna pattern: attenuation (>= 0 dB) at `angle_off_boresight`
// radians for a sector/beam with the given 3 dB beamwidth. Standard 3GPP
// parabolic pattern capped at `max_attenuation_db`.
Db sector_attenuation_db(double angle_off_boresight_rad, double beamwidth_rad,
                         Db max_attenuation_db);

// Per-band beam geometry used by sectored cells (beamwidth, max attenuation).
struct BeamPattern {
  double beamwidth_rad;
  Db max_attenuation_db;
};
BeamPattern beam_pattern(Band band);

// Composes path loss + shadowing value + fading into an RRS sample.
// `interference_margin_db` models neighbor-cell load (raises the floor);
// `directional_loss_db` is the antenna-pattern attenuation (0 for omni).
Rrs make_rrs(Band band, Meters distance, Db shadowing_db, Db fading_db,
             Db interference_margin_db, Db directional_loss_db = 0.0_db);

}  // namespace p5g::radio
