#include "radio/batch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace p5g::radio {

void make_rrs_batch(Band band, Db interference_margin_db, std::size_t n,
                    const Meters* distance, const Db* shadowing_db,
                    const Db* fading_db, const Db* directional_loss_db,
                    Rrs* out) {
  const BandProfile& p = band_profile(band);
  const PathLossParams& pl = path_loss_params(band);
  const Dbm noise = p.noise_floor_dbm + interference_margin_db;
  for (std::size_t i = 0; i < n; ++i) {
    // Same association as make_rrs(): tx - pl + shadow + fading - dir,
    // left to right, with path loss expanded through path_loss_params.
    const Meters d = std::max(distance[i], 1.0_m);
    const Db loss{pl.fspl_10m + pl.coef * std::log10(d.v / 10.0)};
    Rrs r;
    r.rsrp = p.tx_power_dbm - loss + shadowing_db[i] + fading_db[i] -
             directional_loss_db[i];
    r.rsrp = std::max(r.rsrp, -144.0_dbm);  // reporting floor
    r.sinr = std::clamp(r.rsrp - noise, -20.0_db, 40.0_db);
    r.rsrq = std::clamp(-3.0_db - (30.0_db - r.sinr) * 0.55, -19.5_db, -3.0_db);
    P5G_ENSURE(r.rsrp >= -144.0_dbm, "RSRP below the reporting floor");
    P5G_ENSURE(r.sinr >= -20.0_db && r.sinr <= 40.0_db, "SINR outside reporting range");
    P5G_ENSURE(r.rsrq >= -19.5_db && r.rsrq <= -3.0_db, "RSRQ outside reporting range");
    out[i] = r;
  }
}

}  // namespace p5g::radio
