// Radio access technologies and frequency bands.
//
// The paper spans LTE low/mid-band and 5G-NR low-band (n71), mid-band (n41)
// and mmWave (n260). Per-band RF parameters here drive propagation, cell
// coverage (§6.1) and throughput capacity (§6.2).
#pragma once

#include <string_view>

#include "common/units.h"

namespace p5g::radio {

enum class Rat { kLte, kNr };

enum class Band {
  kLteLow,    // e.g. B12/B13, 700 MHz
  kLteMid,    // e.g. B2/B66, ~1900 MHz (the NSA anchor in the paper)
  kNrLow,     // n71, 600 MHz
  kNrMid,     // n41, 2.5 GHz
  kNrMmWave,  // n260, 39 GHz
};

constexpr Rat band_rat(Band b) {
  switch (b) {
    case Band::kLteLow:
    case Band::kLteMid:
      return Rat::kLte;
    case Band::kNrLow:
    case Band::kNrMid:
    case Band::kNrMmWave:
      return Rat::kNr;
  }
  return Rat::kNr;  // unreachable: all enumerators handled above
}

constexpr std::string_view band_name(Band b) {
  switch (b) {
    case Band::kLteLow: return "LTE-Low";
    case Band::kLteMid: return "LTE-Mid";
    case Band::kNrLow: return "NR-Low(n71)";
    case Band::kNrMid: return "NR-Mid(n41)";
    case Band::kNrMmWave: return "NR-mmWave(n260)";
  }
  return "?";
}

constexpr std::string_view rat_name(Rat r) { return r == Rat::kLte ? "LTE" : "NR"; }

// Static RF profile of a band. Values are representative of commercial
// deployments and are chosen so the simulator reproduces the paper's
// coverage diameters (1.4 km low / 0.73 km mid / 0.15 km mmWave, §6.1).
struct BandProfile {
  MegaHertz carrier_mhz;
  MegaHertz bandwidth_mhz;
  Dbm tx_power_dbm;          // EIRP at the cell
  double path_loss_exponent; // log-distance exponent
  Db shadowing_sigma_db;     // log-normal shadowing std-dev
  Meters shadowing_corr_m;   // Gudmundson decorrelation distance
  Dbm noise_floor_dbm;       // thermal noise + NF over the band
  Mbps peak_throughput;      // achievable cell-edge-to-peak cap
  Meters nominal_radius_m;   // deployment planning radius (cell spacing)
};

const BandProfile& band_profile(Band b);

// Spectral-efficiency style mapping from SINR to achievable fraction of the
// band's peak throughput; shared by the throughput models.
double sinr_to_efficiency(Db sinr_db);

}  // namespace p5g::radio
