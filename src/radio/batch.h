// Batched (structure-of-arrays) radio kernels.
//
// The per-tick measurement pipeline gathers every candidate cell of a band
// into contiguous SoA buffers (distance, shadowing, fading, directional
// loss) and composes RRS triples in one pass. The kernels here are the
// batch counterparts of the scalar functions in radio/propagation.h and are
// BIT-IDENTICAL to them by construction: per-element expressions use the
// same operand association and the same libm calls as the scalar path, and
// nothing RNG-bearing lives in a batch loop (fading is drawn sequentially
// by the caller, preserving the scalar draw order).
//
// Determinism rules for this file (enforced by tools/p5g_lint.py):
// no std::fma / __builtin_fma and no fast-math or FP_CONTRACT pragmas —
// contraction would change the committed golden-trace bytes.
#pragma once

#include <cstddef>

#include "common/units.h"
#include "radio/band.h"
#include "radio/propagation.h"

namespace p5g::radio {

// make_rrs() over `n` co-band samples laid out as parallel arrays. `out`
// must hold `n` elements. Band constants (profile, path-loss params) are
// hoisted out of the loop; the per-element math matches make_rrs() double
// for double (radio_batch_test proves exact equality).
void make_rrs_batch(Band band, Db interference_margin_db, std::size_t n,
                    const Meters* distance, const Db* shadowing_db,
                    const Db* fading_db, const Db* directional_loss_db,
                    Rrs* out);

}  // namespace p5g::radio
