#include "radio/propagation.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace p5g::radio {

const PathLossParams& path_loss_params(Band band) {
  // Same expressions the scalar formula evaluated per call, computed once
  // per band: identical doubles, one log10 left on the per-sample path.
  static const std::array<PathLossParams, 5> table = [] {
    std::array<PathLossParams, 5> t{};
    for (Band b : {Band::kLteLow, Band::kLteMid, Band::kNrLow, Band::kNrMid,
                   Band::kNrMmWave}) {
      const BandProfile& p = band_profile(b);
      t[static_cast<std::size_t>(b)] = {
          20.0 * std::log10(10.0) + 20.0 * std::log10(p.carrier_mhz.v) - 27.55,
          10.0 * p.path_loss_exponent};
    }
    return t;
  }();
  return table[static_cast<std::size_t>(band)];
}

Db path_loss_db(Band band, Meters distance) {
  // Free-space loss at the 10 m reference distance, then log-distance.
  const PathLossParams& pl = path_loss_params(band);
  const Meters d = std::max(distance, 1.0_m);
  return Db{pl.fspl_10m + pl.coef * std::log10(d.v / 10.0)};
}

ShadowingProcess::ShadowingProcess(Band band, Rng rng)
    : sigma_db_(band_profile(band).shadowing_sigma_db),
      corr_m_(band_profile(band).shadowing_corr_m),
      rng_(rng) {
  value_db_ = Db{rng_.normal(0.0, sigma_db_.v)};
}

Db ShadowingProcess::step(Meters moved) {
  const double rho = std::exp(-std::max(moved, 0.0_m) / corr_m_);
  value_db_ = Db{rho * value_db_.v + std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                                         rng_.normal(0.0, sigma_db_.v)};
  return value_db_;
}

ShadowingField::ShadowingField(Band band, std::uint64_t cell_seed)
    : sigma_db_(band_profile(band).shadowing_sigma_db),
      grid_m_(band_profile(band).shadowing_corr_m),
      seed_(cell_seed) {}

double ShadowingField::grid_value(long ix, long iy) const {
  // Two independent hash draws -> one Gaussian via Box-Muller.
  SplitMix64 h(seed_ ^ (static_cast<std::uint64_t>(ix) * 0x9E3779B97f4A7C15ULL) ^
               (static_cast<std::uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL));
  const double u1 =
      (static_cast<double>(h.next() >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

ShadowingField::GridWeights ShadowingField::weights_at(double x, double y) const {
  GridWeights w;
  const double gx = x / grid_m_.v, gy = y / grid_m_.v;
  w.ix = static_cast<long>(std::floor(gx));
  w.iy = static_cast<long>(std::floor(gy));
  const double fx = gx - static_cast<double>(w.ix);
  const double fy = gy - static_cast<double>(w.iy);
  w.w00 = (1 - fx) * (1 - fy);
  w.w10 = fx * (1 - fy);
  w.w01 = (1 - fx) * fy;
  w.w11 = fx * fy;
  // Normalize by the blend's own standard deviation so the field keeps
  // exactly sigma everywhere (bilinear blending otherwise shrinks it).
  w.norm = std::sqrt(w.w00 * w.w00 + w.w10 * w.w10 + w.w01 * w.w01 + w.w11 * w.w11);
  return w;
}

Db ShadowingField::at_cached(const GridWeights& w, Corners& c) const {
  if (c.ix != w.ix || c.iy != w.iy) {
    c.ix = w.ix;
    c.iy = w.iy;
    c.g00 = grid_value(w.ix, w.iy);
    c.g10 = grid_value(w.ix + 1, w.iy);
    c.g01 = grid_value(w.ix, w.iy + 1);
    c.g11 = grid_value(w.ix + 1, w.iy + 1);
  }
  const double v = c.g00 * w.w00 + c.g10 * w.w10 + c.g01 * w.w01 + c.g11 * w.w11;
  return sigma_db_ * v / w.norm;
}

Db ShadowingField::at(double x, double y) const {
  Corners c;
  return at_cached(weights_at(x, y), c);
}

Db fast_fading_db(Band band, Rng& rng) {
  if (band == Band::kNrMmWave) {
    // Beam-tracking residual: usually small, occasionally a deep dip when a
    // beam momentarily misaligns or is blocked.
    if (rng.bernoulli(0.03)) return Db{-rng.uniform(8.0, 20.0)};
    return Db{rng.normal(0.0, 2.5)};
  }
  // Mild Rician-like ripple for sub-6 GHz macro cells.
  return Db{rng.normal(0.0, 1.5)};
}

Db sector_attenuation_db(double angle_off_boresight_rad, double beamwidth_rad,
                         Db max_attenuation_db) {
  // 3GPP TR 36.814 horizontal pattern: A = min(12 (theta/theta_3dB)^2, A_max).
  const double ratio = angle_off_boresight_rad / beamwidth_rad;
  return std::min(Db{12.0 * ratio * ratio}, max_attenuation_db);
}

BeamPattern beam_pattern(Band band) {
  switch (band) {
    case Band::kNrMmWave:
      // Narrow beams; deep nulls off-boresight.
      return {1.05, Db{22.0}};  // ~60 deg beamwidth
    case Band::kNrMid:
      return {1.75, Db{12.0}};  // ~100 deg sector
    case Band::kLteLow:
    case Band::kLteMid:
    case Band::kNrLow:
      return {2.1, Db{10.0}};  // wide sub-3GHz sectors
  }
  return {2.1, Db{10.0}};  // unreachable: all enumerators handled above
}

Rrs make_rrs(Band band, Meters distance, Db shadowing_db, Db fading_db,
             Db interference_margin_db, Db directional_loss_db) {
  const BandProfile& p = band_profile(band);
  Rrs r;
  r.rsrp = p.tx_power_dbm - path_loss_db(band, distance) + shadowing_db + fading_db -
           directional_loss_db;
  r.rsrp = std::max(r.rsrp, -144.0_dbm);  // reporting floor
  // SINR: signal over (noise + interference margin).
  const Dbm noise = p.noise_floor_dbm + interference_margin_db;
  r.sinr = std::clamp(r.rsrp - noise, -20.0_db, 40.0_db);
  // RSRQ tracks SINR compressed into its narrower reporting range
  // (-19.5 .. -3 dB), the standard N*RSRP/RSSI shape approximated linearly.
  r.rsrq = std::clamp(-3.0_db - (30.0_db - r.sinr) * 0.55, -19.5_db, -3.0_db);
  // Downstream event monitors assume reported values stay inside the 3GPP
  // reporting ranges; the clamps above are the enforcement.
  P5G_ENSURE(r.rsrp >= -144.0_dbm, "RSRP below the reporting floor");
  P5G_ENSURE(r.sinr >= -20.0_db && r.sinr <= 40.0_db, "SINR outside reporting range");
  P5G_ENSURE(r.rsrq >= -19.5_db && r.rsrq <= -3.0_db, "RSRQ outside reporting range");
  return r;
}

}  // namespace p5g::radio
