#include "radio/band.h"

#include <algorithm>
#include <cmath>

namespace p5g::radio {

const BandProfile& band_profile(Band b) {
  // carrier, bw, tx, ple, shadow sigma, shadow corr, noise, peak tput, radius
  static const BandProfile kLteLowP{700.0, 10.0, 46.0, 3.2, 6.0, 80.0, -101.0, 35.0, 1500.0};
  static const BandProfile kLteMidP{1900.0, 20.0, 46.0, 3.5, 7.0, 60.0, -98.0, 75.0, 500.0};
  static const BandProfile kNrLowP{600.0, 15.0, 47.0, 3.1, 6.0, 90.0, -99.5, 220.0, 1000.0};
  static const BandProfile kNrMidP{2500.0, 80.0, 47.0, 3.6, 7.5, 55.0, -92.0, 900.0, 430.0};
  static const BandProfile kNrMmWaveP{39000.0, 400.0, 55.0, 4.4, 9.0, 25.0, -85.0, 2800.0, 160.0};
  switch (b) {
    case Band::kLteLow: return kLteLowP;
    case Band::kLteMid: return kLteMidP;
    case Band::kNrLow: return kNrLowP;
    case Band::kNrMid: return kNrMidP;
    case Band::kNrMmWave: return kNrMmWaveP;
  }
  return kLteMidP;  // unreachable
}

double sinr_to_efficiency(Db sinr_db) {
  // Truncated Shannon: eff = min(1, log2(1+snr) / log2(1+snr_max)).
  // snr_max = 22 dB maps to the top MCS; below -6 dB the link is unusable.
  if (sinr_db < -6.0) return 0.0;
  const double cap = std::log2(1.0 + db_to_linear(sinr_db));
  const double top = std::log2(1.0 + db_to_linear(22.0));
  return std::min(1.0, cap / top);
}

}  // namespace p5g::radio
