#include "radio/band.h"

#include <algorithm>
#include <cmath>

namespace p5g::radio {

const BandProfile& band_profile(Band b) {
  // carrier, bw, tx, ple, shadow sigma, shadow corr, noise, peak tput, radius
  static const BandProfile kLteLowP{700.0_mhz, 10.0_mhz, 46.0_dbm, 3.2, 6.0_db, 80.0_m, -101.0_dbm, 35.0, 1500.0_m};
  static const BandProfile kLteMidP{1900.0_mhz, 20.0_mhz, 46.0_dbm, 3.5, 7.0_db, 60.0_m, -98.0_dbm, 75.0, 500.0_m};
  static const BandProfile kNrLowP{600.0_mhz, 15.0_mhz, 47.0_dbm, 3.1, 6.0_db, 90.0_m, -99.5_dbm, 220.0, 1000.0_m};
  static const BandProfile kNrMidP{2500.0_mhz, 80.0_mhz, 47.0_dbm, 3.6, 7.5_db, 55.0_m, -92.0_dbm, 900.0, 430.0_m};
  static const BandProfile kNrMmWaveP{39000.0_mhz, 400.0_mhz, 55.0_dbm, 4.4, 9.0_db, 25.0_m, -85.0_dbm, 2800.0, 160.0_m};
  switch (b) {
    case Band::kLteLow: return kLteLowP;
    case Band::kLteMid: return kLteMidP;
    case Band::kNrLow: return kNrLowP;
    case Band::kNrMid: return kNrMidP;
    case Band::kNrMmWave: return kNrMmWaveP;
  }
  return kLteMidP;  // unreachable
}

double sinr_to_efficiency(Db sinr_db) {
  // Truncated Shannon: eff = min(1, log2(1+snr) / log2(1+snr_max)).
  // snr_max = 22 dB maps to the top MCS; below -6 dB the link is unusable.
  if (sinr_db < -6.0_db) return 0.0;
  const double cap = std::log2(1.0 + db_to_linear(sinr_db));
  const double top = std::log2(1.0 + db_to_linear(22.0_db));
  return std::min(1.0, cap / top);
}

}  // namespace p5g::radio
