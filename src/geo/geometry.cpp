#include "geo/geometry.h"

#include <algorithm>
#include <cmath>

namespace p5g::geo {

Meters distance(Point a, Point b) { return Meters{std::hypot(a.x - b.x, a.y - b.y)}; }

double cross(Point o, Point a, Point b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

std::vector<Point> convex_hull(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end(), [](Point a, Point b) {
    return a.x < b.x || (bit_equal(a.x, b.x) && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return pts;

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

double polygon_area(std::span<const Point> poly) {
  if (poly.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Point a = poly[i];
    const Point b = poly[(i + 1) % poly.size()];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc / 2.0;
}

bool point_in_convex(std::span<const Point> hull, Point p) {
  if (hull.size() < 3) return false;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point a = hull[i];
    const Point b = hull[(i + 1) % hull.size()];
    if (cross(a, b, p) < 0) return false;
  }
  return true;
}

std::vector<Point> convex_intersection(std::span<const Point> subject,
                                       std::span<const Point> clip) {
  std::vector<Point> output(subject.begin(), subject.end());
  if (clip.size() < 3) return {};
  for (std::size_t c = 0; c < clip.size() && !output.empty(); ++c) {
    const Point ca = clip[c];
    const Point cb = clip[(c + 1) % clip.size()];
    std::vector<Point> input = std::move(output);
    output.clear();
    for (std::size_t i = 0; i < input.size(); ++i) {
      const Point cur = input[i];
      const Point prev = input[(i + input.size() - 1) % input.size()];
      const bool cur_in = cross(ca, cb, cur) >= 0;
      const bool prev_in = cross(ca, cb, prev) >= 0;
      if (cur_in) {
        if (!prev_in) {
          // Edge enters: add intersection of (prev,cur) with (ca,cb).
          const double d1 = cross(ca, cb, prev);
          const double d2 = cross(ca, cb, cur);
          const double t = d1 / (d1 - d2);
          output.push_back(prev + (cur - prev) * t);
        }
        output.push_back(cur);
      } else if (prev_in) {
        const double d1 = cross(ca, cb, prev);
        const double d2 = cross(ca, cb, cur);
        const double t = d1 / (d1 - d2);
        output.push_back(prev + (cur - prev) * t);
      }
    }
  }
  return output;
}

double hull_overlap_ratio(std::span<const Point> a, std::span<const Point> b) {
  const double area_a = std::abs(polygon_area(a));
  const double area_b = std::abs(polygon_area(b));
  // abs() above maps -0.0 to +0.0, so bit-comparing against +0.0 is the
  // exact zero test.
  if (bit_equal(area_a, 0.0) || bit_equal(area_b, 0.0)) return 0.0;
  const auto inter = convex_intersection(a, b);
  const double area_i = std::abs(polygon_area(inter));
  return area_i / std::min(area_a, area_b);
}

}  // namespace p5g::geo
