#include "geo/route.h"

#include <algorithm>
#include <cmath>

namespace p5g::geo {

Route::Route(std::vector<Point> waypoints) : waypoints_(std::move(waypoints)) {
  cumulative_.reserve(waypoints_.size());
  Meters acc{};
  for (std::size_t i = 0; i < waypoints_.size(); ++i) {
    if (i > 0) acc += distance(waypoints_[i - 1], waypoints_[i]);
    cumulative_.push_back(acc);
  }
  total_length_ = acc;
}

Point Route::position_at(Meters s) const {
  if (waypoints_.empty()) return {};
  if (waypoints_.size() == 1 || total_length_ <= 0.0_m) return waypoints_.front();
  if (loops_) {
    s = Meters{std::fmod(s.v, total_length_.v)};
    if (s < 0.0_m) s += total_length_;
  } else {
    s = std::clamp(s, 0.0_m, total_length_);
  }
  // Binary search for the segment containing arc length s.
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), s);
  if (it == cumulative_.begin()) return waypoints_.front();
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  const Meters seg_start = cumulative_[idx - 1];
  const Meters seg_len = cumulative_[idx] - seg_start;
  const double t = seg_len > 0.0_m ? (s - seg_start) / seg_len : 0.0;
  return waypoints_[idx - 1] + (waypoints_[idx] - waypoints_[idx - 1]) * t;
}

Route make_freeway_route(Meters length, Rng& rng) {
  std::vector<Point> pts;
  Point cur{0.0, 0.0};
  double heading = 0.0;  // radians; mostly eastbound
  pts.push_back(cur);
  Meters remaining = length;
  while (remaining > 0.0_m) {
    const Meters seg = std::min(remaining, Meters{rng.uniform(800.0, 2500.0)});
    heading += rng.normal(0.0, 0.08);                       // gentle drift
    heading = std::clamp(heading, -0.6, 0.6);               // keep direction
    cur = cur + Point{seg.v * std::cos(heading), seg.v * std::sin(heading)};
    pts.push_back(cur);
    remaining -= seg;
  }
  return Route(std::move(pts));
}

Route make_city_route(Meters approx_length, Meters block, Rng& rng) {
  std::vector<Point> pts;
  Point cur{0.0, 0.0};
  int dir = 0;  // 0=E 1=N 2=W 3=S
  pts.push_back(cur);
  Meters acc{};
  while (acc < approx_length) {
    const int blocks = 1 + static_cast<int>(rng.uniform_index(3));
    const Meters seg = block * blocks;
    static constexpr double dx[4] = {1, 0, -1, 0};
    static constexpr double dy[4] = {0, 1, 0, -1};
    cur = cur + Point{seg.v * dx[dir], seg.v * dy[dir]};
    pts.push_back(cur);
    acc += seg;
    // Turn left or right, never U-turn; bias to keep progressing east.
    const int turn = rng.bernoulli(0.5) ? 1 : 3;
    const int next = (dir + turn) % 4;
    dir = (next == 2 && rng.bernoulli(0.7)) ? 0 : next;
  }
  return Route(std::move(pts));
}

Route make_loop_route(Meters perimeter, Rng& rng) {
  // Rounded rectangle: 4 sides with slight jitter, closed.
  const Meters side = perimeter / 4.0;
  const Meters w = side * rng.uniform(0.8, 1.2);
  const Meters h = perimeter / 2.0 - w;
  std::vector<Point> pts = {{0, 0}, {w.v, 0}, {w.v, h.v}, {0, h.v}, {0, 0}};
  Route r(std::move(pts));
  r.set_loops(true);
  return r;
}

}  // namespace p5g::geo
