// Routes: polylines a UE follows, plus generators for the drive/walk
// scenarios the paper uses (inter-state freeway, city grid, downtown loop,
// tourist walking loop).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"

namespace p5g::geo {

class Route {
 public:
  Route() = default;
  explicit Route(std::vector<Point> waypoints);

  // Position at arc-length `s` from the start (clamped to [0, length()]).
  Point position_at(Meters s) const;
  Meters length() const { return total_length_; }
  bool loops() const { return loops_; }
  void set_loops(bool loops) { loops_ = loops; }
  const std::vector<Point>& waypoints() const { return waypoints_; }

 private:
  std::vector<Point> waypoints_;
  std::vector<Meters> cumulative_;  // arc length up to waypoint i
  Meters total_length_{0.0};
  bool loops_ = false;
};

// A long, mostly-straight inter-state style route with gentle curves.
Route make_freeway_route(Meters length, Rng& rng);

// A Manhattan-style city drive: axis-aligned segments with 90-degree turns.
Route make_city_route(Meters approx_length, Meters block, Rng& rng);

// Closed rectangular-ish downtown loop (paper's D2: 25-minute walking loop).
Route make_loop_route(Meters perimeter, Rng& rng);

}  // namespace p5g::geo
