// Planar geometry on a local metric grid.
//
// The simulator works in a local tangent plane: positions are (x, y) in
// metres. Convex hulls and polygon intersection implement the paper's §6.3
// co-location heuristic (overlapping 4G/5G PCI footprints).
#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace p5g::geo {

// Coordinates are raw doubles on purpose: planar geometry (cross products,
// areas, interpolation) is dimensionless kernel math. Lengths derived from
// geometry — distance(), route arc lengths — carry the strong Meters type.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  // Exact identity: duplicate points come from copied coordinates, so
  // equal values are bit-equal here.
  friend bool operator==(Point a, Point b) {
    return bit_equal(a.x, b.x) && bit_equal(a.y, b.y);
  }
};

Meters distance(Point a, Point b);
double cross(Point o, Point a, Point b);  // z of (a-o) x (b-o)

// Andrew's monotone chain; returns hull in counter-clockwise order with no
// duplicate endpoint. Degenerate inputs (<3 distinct points) return the
// distinct points themselves.
std::vector<Point> convex_hull(std::vector<Point> points);

// Signed area of a simple polygon (positive for CCW orientation).
double polygon_area(std::span<const Point> polygon);

// True if `p` lies inside or on the boundary of convex polygon `hull` (CCW).
bool point_in_convex(std::span<const Point> hull, Point p);

// Sutherland–Hodgman clipping of convex `subject` against convex `clip`.
// Both must be CCW. Returns the (possibly empty) intersection polygon.
std::vector<Point> convex_intersection(std::span<const Point> subject,
                                       std::span<const Point> clip);

// Fraction of the smaller hull's area covered by the intersection, in [0,1].
// This is the overlap score used by the co-location heuristic.
double hull_overlap_ratio(std::span<const Point> a, std::span<const Point> b);

}  // namespace p5g::geo
