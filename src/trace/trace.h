// Trace schema: the 20 Hz log a drive/walk produces, mirroring the paper's
// merged 5G-Tracker + XCAL dataset (per-tick radio state, measurement
// reports, HO commands, throughput, RTT) plus the extracted HO records.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/manifest.h"
#include "radio/band.h"
#include "radio/propagation.h"
#include "ran/handover.h"
#include "ran/mobility_manager.h"

namespace p5g::trace {

// One observed cell in a tick (serving or neighbor).
struct ObservedCell {
  int pci = -1;
  int cell_id = -1;
  int tower_id = -1;
  radio::Band band{};
  radio::Rrs rrs{};
};

struct TickRecord {
  Seconds time = 0.0;
  Meters route_position = 0.0;
  geo::Point position{};
  double speed_mps = 0.0;

  // Serving state.
  int lte_pci = -1;
  radio::Rrs lte_rrs{};
  int nr_pci = -1;
  radio::Rrs nr_rrs{};
  bool nr_attached = false;
  bool lte_halted = false;
  bool nr_halted = false;

  // Full observation list (serving + neighbors), for predictors.
  std::vector<ObservedCell> observed;

  // Control plane activity this tick.
  std::vector<ran::MeasurementReport> reports;
  std::vector<ran::HandoverRecord> ho_started;    // decision made (network side)
  std::vector<ran::HandoverRecord> ho_commands;   // RRCReconfiguration received
                                                  // by the UE (end of T1)
  std::vector<ran::HandoverRecord> ho_completed;

  // Data plane.
  Mbps throughput_mbps = 0.0;
  Milliseconds rtt_ms = 0.0;
};

struct TraceLog {
  // Scenario metadata.
  std::string name;
  ran::Arch arch = ran::Arch::kNsa;
  radio::Band nr_band = radio::Band::kNrLow;
  radio::Band lte_band = radio::Band::kLteMid;
  double tick_hz = 20.0;

  std::vector<TickRecord> ticks;
  std::vector<ran::HandoverRecord> handovers;  // all completed HOs

  // Provenance of the run that produced this log (seed, commit, build,
  // wall time, data-quality warnings). Filled by sim::run_scenario; not
  // part of the CSV schema, exported via obs::write_report.
  obs::RunManifest manifest;

  Seconds duration() const {
    return ticks.empty() ? 0.0 : ticks.back().time - ticks.front().time;
  }
  Meters distance() const {
    return ticks.empty() ? 0.0
                         : ticks.back().route_position - ticks.front().route_position;
  }
};

// CSV persistence (one row per tick; observed-cell list flattened to the
// strongest 4 neighbors per RAT; HOs in a separate file `<path>.ho.csv`).
void write_csv(const TraceLog& log, const std::string& path);
TraceLog read_csv(const std::string& path);

// Extract per-band throughput series around each HO for phase analysis.
std::vector<double> throughput_series(const TraceLog& log);

}  // namespace p5g::trace
