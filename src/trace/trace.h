// Trace schema: the 20 Hz log a drive/walk produces, mirroring the paper's
// merged 5G-Tracker + XCAL dataset (per-tick radio state, measurement
// reports, HO commands, throughput, RTT) plus the extracted HO records.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/units.h"
#include "obs/manifest.h"
#include "radio/band.h"
#include "radio/propagation.h"
#include "ran/handover.h"
#include "ran/mobility_manager.h"

namespace p5g::trace {

// One observed cell in a tick (serving or neighbor).
struct ObservedCell {
  int pci = -1;
  int cell_id = -1;
  int tower_id = -1;
  radio::Band band{};
  radio::Rrs rrs{};
};

struct TickRecord {
  Seconds time{0.0};
  Meters route_position{0.0};
  geo::Point position{};
  double speed_mps = 0.0;

  // Serving state.
  int lte_pci = -1;
  radio::Rrs lte_rrs{};
  int nr_pci = -1;
  radio::Rrs nr_rrs{};
  bool nr_attached = false;
  bool lte_halted = false;
  bool nr_halted = false;

  // Full observation list (serving + neighbors), for predictors.
  std::vector<ObservedCell> observed;

  // Control plane activity this tick.
  std::vector<ran::MeasurementReport> reports;
  std::vector<ran::HandoverRecord> ho_started;    // decision made (network side)
  std::vector<ran::HandoverRecord> ho_commands;   // RRCReconfiguration received
                                                  // by the UE (end of T1)
  std::vector<ran::HandoverRecord> ho_completed;

  // Data plane.
  Mbps throughput_mbps = 0.0;
  Milliseconds rtt_ms{0.0};
};

struct TraceLog {
  // Scenario metadata.
  std::string name;
  ran::Arch arch = ran::Arch::kNsa;
  radio::Band nr_band = radio::Band::kNrLow;
  radio::Band lte_band = radio::Band::kLteMid;
  Hertz tick_hz{20.0};

  std::vector<TickRecord> ticks;
  std::vector<ran::HandoverRecord> handovers;  // all completed HOs

  // Provenance of the run that produced this log (seed, commit, build,
  // wall time, data-quality warnings). Filled by sim::run_scenario; not
  // part of the CSV schema, exported via obs::write_report.
  obs::RunManifest manifest;

  Seconds duration() const {
    return ticks.empty() ? 0.0_s : ticks.back().time - ticks.front().time;
  }
  Meters distance() const {
    return ticks.empty() ? 0.0_m
                         : ticks.back().route_position - ticks.front().route_position;
  }
};

// Compact per-trace aggregate: everything the fleet layer keeps per UE so
// that N-UE runs never hold N full TraceLogs at once. Mechanical tallies
// only — population statistics over many summaries live in
// analysis::fleet_stats.
struct TraceSummary {
  std::size_t ticks = 0;
  Seconds duration{0.0};              // last tick time - first tick time
  Meters distance{0.0};               // route arc length covered
  double mean_throughput_mbps = 0.0;
  Milliseconds mean_rtt_ms{0.0};
  // Data-plane interruption totals (tick-quantized: halted ticks x dt).
  Seconds lte_halted_s{0.0};
  Seconds nr_halted_s{0.0};
  Seconds any_halted_s{0.0};          // either leg down
  int reports = 0;                     // measurement reports raised
  // Completed HO procedures by outcome (success + failures = handovers).
  int handovers = 0;
  int ho_success = 0;
  int ho_prep_failure = 0;
  int ho_exec_failure = 0;
  int ho_rlf_reestablish = 0;

  // HOs per km of route covered; 0 when the trace covers no distance.
  double ho_per_km() const {
    return distance > 0.0_m ? handovers / (distance.v / 1000.0) : 0.0;
  }

  bool operator==(const TraceSummary&) const = default;
};

// Reduces a full log to its summary (streaming callers drop the log after).
TraceSummary summarize(const TraceLog& log);

// Streaming equivalent of summarize(): fold ticks in one at a time and never
// hold a TraceLog at all. The fleet's summary mode steps each UE into ONE
// reused scratch TickRecord and feeds it here, so an N-UE run materializes
// zero tick vectors. Contract: add() in tick order produces a TraceSummary
// bit-identical to summarize() of the log those ticks would have formed —
// every accumulator below applies the same operations in the same order.
class SummaryAccumulator {
 public:
  explicit SummaryAccumulator(Hertz tick_hz)
      : dt_{tick_hz.v > 0.0 ? 1.0 / tick_hz.v : 0.0} {}

  void add(const TickRecord& t);

  // The summary of everything add()ed so far. Idempotent; callable mid-run.
  TraceSummary finish() const;

 private:
  Seconds dt_;
  TraceSummary s_;  // halted/report/HO tallies accumulate in place
  double tput_sum_ = 0.0;
  double rtt_sum_ = 0.0;
  Seconds first_time_{0.0};
  Seconds last_time_{0.0};
  Meters first_pos_{0.0};
  Meters last_pos_{0.0};
  std::size_t ticks_ = 0;
};

// CSV persistence (one row per tick; observed-cell list flattened to the
// strongest 4 neighbors per RAT; HOs in a separate file `<path>.ho.csv`).
// Both files go through the durable atomic writer (tmp + fsync + rename,
// retried); the result reports the FIRST failure — callers must check it,
// a dropped trace is data loss.
io::IoResult write_csv(const TraceLog& log, const std::string& path);
TraceLog read_csv(const std::string& path);

// Extract per-band throughput series around each HO for phase analysis.
std::vector<double> throughput_series(const TraceLog& log);

}  // namespace p5g::trace
