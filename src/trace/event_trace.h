// Flight-recorder sinks: capture the obs::EventLog rings into an EventTrace
// and persist it two ways —
//   * a compact binary spill ('P5GT', versioned, CRC-32-sealed, written via
//     io::atomic_write_file — the same framing conventions as the fleet
//     checkpoint format in sim/checkpoint.h), and
//   * Chrome trace-event / Perfetto JSON ({"traceEvents": [...]}), loadable
//     in ui.perfetto.dev or about://tracing: the sim timeline renders as
//     pid 1 (one row per UE, microseconds = simulated microseconds) and the
//     engine wall-clock track as pid 2.
// Plus the `--trace-out` CLI hook every bench/example calls next to
// obs::export_from_args, and the filters behind `p5g_trace filter`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "obs/events.h"

namespace p5g::trace {

// A captured flight recording. `events` is time-sorted (EventLog::snapshot
// order); emitted/dropped are the recorder's totals at capture time, so a
// consumer can tell how much history the rings evicted.
struct EventTrace {
  std::string run;
  std::uint64_t seed = 0;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::Event> events;
};

// Snapshots the process-wide recorder. Call after producers quiesce.
EventTrace capture_event_trace(std::string run, std::uint64_t seed);

// ------------------------------------------------------- binary spill --
// Layout (little-endian, doubles as IEEE-754 bit patterns):
//   u32 magic 'P5GT' | u32 version | u32 run-name length | name bytes |
//   u64 seed | u64 emitted | u64 dropped | u64 count | count * 56-byte
//   events | u32 CRC-32 of everything before it.
// decode returns nullopt (with the reason in *why) on any truncation, CRC
// mismatch, version skew, or out-of-range category/kind.
std::string encode_event_trace(const EventTrace& t);
std::optional<EventTrace> decode_event_trace(std::string_view bytes,
                                             std::string* why = nullptr);

// Durable wrappers: encode/decode through tmp+fsync+rename.
io::IoResult save_event_trace(const std::string& path, const EventTrace& t);
std::optional<EventTrace> load_event_trace(const std::string& path,
                                           std::string* why = nullptr);

// ----------------------------------------------------------- filtering --
// All set fields must match for an event to survive. `pci` matches events
// whose i0 or i1 carries that PCI (tick serving cells, HO src/dst).
struct EventFilter {
  std::optional<std::uint32_t> ue;
  std::optional<std::int32_t> pci;
  std::optional<obs::EventCategory> category;
};
EventTrace filter_events(const EventTrace& t, const EventFilter& f);

// ------------------------------------------------------ Perfetto JSON --
// Chrome trace-event format. Spans become "X" (complete) events, instants
// "i"; sim-track events land on pid 1 with tid = UE, wall-track events on
// pid 2. ts/dur are microseconds (simulated for pid 1, wall for pid 2).
std::string to_perfetto_json(const EventTrace& t);

// -------------------------------------------------------- CLI plumbing --
// Scans argv for `--trace-out <path>`; when present, captures the recorder
// and writes the binary spill to <path> plus the Perfetto JSON twin to
// <path>.json. Returns true when a trace was written. Sits next to
// obs::export_from_args at the end of every bench/example main().
bool export_trace_from_args(int argc, char** argv, std::string_view run,
                            std::uint64_t seed = 0);

}  // namespace p5g::trace
