#include "trace/event_trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/export.h"
#include "ran/handover.h"

namespace p5g::trace {

namespace {

constexpr std::uint32_t kMagic = 0x54473550u;  // 'P5GT' little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kEventBytes = 56;  // encoded size of one obs::Event

// ------------------------------------------------------------- encoding --
// Same conventions as sim/checkpoint.cpp: explicit little-endian bytes,
// doubles as IEEE-754 bit patterns (exact round trip — the authoritative
// millisecond payloads must survive the spill bit-for-bit).
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  bool bytes(std::string& out, std::size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    out.assign(bytes_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::optional<EventTrace> reject(std::string* why, const char* reason) {
  if (why) *why = reason;
  return std::nullopt;
}

bool is_ho_category(obs::EventCategory c) {
  switch (c) {
    case obs::EventCategory::kHoPrep:
    case obs::EventCategory::kHoExec:
    case obs::EventCategory::kHoComplete:
    case obs::EventCategory::kRlf:
    case obs::EventCategory::kRachRetry:
      return true;
    case obs::EventCategory::kTick:
    case obs::EventCategory::kMmObserve:
    case obs::EventCategory::kMmDecide:
    case obs::EventCategory::kPoolTask:
    case obs::EventCategory::kCheckpoint:
    case obs::EventCategory::kAppOutage:
      return false;
  }
  return false;  // unreachable: all enumerators handled above
}

bool is_wall_kind(obs::EventKind k) {
  return k == obs::EventKind::kWallSpan || k == obs::EventKind::kWallInstant;
}

// Display name: category, plus the HO procedure for HO-correlated events
// ("ho.exec SCGC") so Perfetto rows read like the paper's taxonomy.
std::string event_name(const obs::Event& e) {
  std::string name(obs::category_name(e.category));
  if (is_ho_category(e.category)) {
    const ran::HoCode code = ran::unpack_ho_code(e.i2);
    name += ' ';
    name += ran::ho_name(code.type);
  }
  return name;
}

// Category-specific args object; field names mirror DESIGN.md's schema
// table so the Perfetto UI and the binary spill stay in one vocabulary.
void write_args(obs::JsonWriter& w, const obs::Event& e) {
  w.begin_object("args");
  if (e.flow != 0) w.field("flow", e.flow);
  switch (e.category) {
    case obs::EventCategory::kTick:
      w.field("throughput_mbps", e.a0);
      w.field("rtt_ms", e.a1);
      w.field("lte_pci", e.i0);
      w.field("nr_pci", e.i1);
      break;
    case obs::EventCategory::kMmObserve:
    case obs::EventCategory::kMmDecide:
      w.field("sim_time_s", e.a0);
      break;
    case obs::EventCategory::kHoPrep: {
      const ran::HoCode code = ran::unpack_ho_code(e.i2);
      w.field("t1_ms", e.a0);
      w.field("route_position_m", e.a1);
      w.field("src_pci", e.i0);
      w.field("dst_pci", e.i1);
      w.field("outcome", ran::ho_outcome_name(code.outcome));
      break;
    }
    case obs::EventCategory::kHoExec: {
      const ran::HoCode code = ran::unpack_ho_code(e.i2);
      w.field("t2_ms", e.a0);
      w.field("backoff_ms", e.a1);
      w.field("rach_attempts", e.i0);
      w.field("dst_pci", e.i1);
      w.field("outcome", ran::ho_outcome_name(code.outcome));
      break;
    }
    case obs::EventCategory::kHoComplete: {
      const ran::HoCode code = ran::unpack_ho_code(e.i2);
      w.field("t1_ms", e.a0);
      w.field("t2_ms", e.a1);
      w.field("colocated", e.i0 != 0);
      w.field("rach_attempts", e.i1);
      w.field("outcome", ran::ho_outcome_name(code.outcome));
      break;
    }
    case obs::EventCategory::kRlf:
      w.field("reestablish_ms", e.a0);
      w.field("route_position_m", e.a1);
      w.field("src_pci", e.i0);
      break;
    case obs::EventCategory::kRachRetry:
      w.field("backoff_ms", e.a0);
      w.field("rach_attempts", e.i0);
      break;
    case obs::EventCategory::kPoolTask:
      w.field("first_ue", e.i0);
      w.field("cohort_ues", e.i1);
      break;
    case obs::EventCategory::kCheckpoint:
      w.field("ues_done", e.i0);
      w.field("fleet_ues", e.i1);
      break;
    case obs::EventCategory::kAppOutage:
      w.field("floor_mbps", e.a0);
      break;
  }
  w.end_object();
}

}  // namespace

EventTrace capture_event_trace(std::string run, std::uint64_t seed) {
  EventTrace t;
  t.run = std::move(run);
  t.seed = seed;
  t.emitted = obs::event_log().emitted();
  t.dropped = obs::event_log().dropped();
  t.events = obs::event_log().snapshot();
  return t;
}

std::string encode_event_trace(const EventTrace& t) {
  std::string out;
  out.reserve(48 + t.run.size() + t.events.size() * kEventBytes);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(t.run.size()));
  out.append(t.run);
  put_u64(out, t.seed);
  put_u64(out, t.emitted);
  put_u64(out, t.dropped);
  put_u64(out, static_cast<std::uint64_t>(t.events.size()));
  for (const obs::Event& e : t.events) {
    put_f64(out, e.t0);
    put_f64(out, e.t1);
    put_f64(out, e.a0);
    put_f64(out, e.a1);
    put_u64(out, e.flow);
    put_u32(out, static_cast<std::uint32_t>(e.i0));
    put_u32(out, static_cast<std::uint32_t>(e.i1));
    put_u32(out, e.ue);
    put_u32(out, static_cast<std::uint32_t>(e.i2) |
                     (static_cast<std::uint32_t>(e.category) << 16) |
                     (static_cast<std::uint32_t>(e.kind) << 24));
  }
  put_u32(out, io::crc32(out));
  return out;
}

std::optional<EventTrace> decode_event_trace(std::string_view bytes,
                                             std::string* why) {
  if (bytes.size() < 4) return reject(why, "event trace truncated (no seal)");
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  Reader tail(bytes.substr(bytes.size() - 4));
  std::uint32_t stored_crc = 0;
  static_cast<void>(tail.u32(stored_crc));
  if (io::crc32(body) != stored_crc) {
    return reject(why, "event trace CRC mismatch (torn or corrupted file)");
  }

  Reader r(body);
  std::uint32_t magic = 0, version = 0, name_len = 0;
  if (!r.u32(magic) || magic != kMagic) {
    return reject(why, "event trace magic mismatch (not a flight recording)");
  }
  if (!r.u32(version) || version != kVersion) {
    return reject(why, "event trace version unsupported");
  }
  EventTrace t;
  std::uint64_t count = 0;
  if (!r.u32(name_len) || !r.bytes(t.run, name_len) || !r.u64(t.seed) ||
      !r.u64(t.emitted) || !r.u64(t.dropped) || !r.u64(count)) {
    return reject(why, "event trace header truncated");
  }
  if (r.remaining() != count * kEventBytes) {
    return reject(why, "event trace body size disagrees with event count");
  }
  t.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::Event e;
    std::uint32_t u0 = 0, u1 = 0, packed = 0;
    const bool ok = r.f64(e.t0) && r.f64(e.t1) && r.f64(e.a0) && r.f64(e.a1) &&
                    r.u64(e.flow) && r.u32(u0) && r.u32(u1) && r.u32(e.ue) &&
                    r.u32(packed);
    if (!ok) return reject(why, "event trace entry truncated");
    e.i0 = static_cast<std::int32_t>(u0);
    e.i1 = static_cast<std::int32_t>(u1);
    e.i2 = static_cast<std::uint16_t>(packed & 0xFFFFu);
    const std::uint32_t cat = (packed >> 16) & 0xFFu;
    const std::uint32_t kind = (packed >> 24) & 0xFFu;
    if (cat >= obs::kEventCategories) {
      return reject(why, "event trace entry has an unknown category");
    }
    if (kind > static_cast<std::uint32_t>(obs::EventKind::kWallInstant)) {
      return reject(why, "event trace entry has an unknown kind");
    }
    e.category = static_cast<obs::EventCategory>(cat);
    e.kind = static_cast<obs::EventKind>(kind);
    t.events.push_back(e);
  }
  return t;
}

io::IoResult save_event_trace(const std::string& path, const EventTrace& t) {
  return io::atomic_write_file(path, encode_event_trace(t));
}

std::optional<EventTrace> load_event_trace(const std::string& path,
                                           std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (why) *why = "event trace file missing or unreadable";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_event_trace(buf.str(), why);
}

EventTrace filter_events(const EventTrace& t, const EventFilter& f) {
  EventTrace out;
  out.run = t.run;
  out.seed = t.seed;
  out.emitted = t.emitted;
  out.dropped = t.dropped;
  for (const obs::Event& e : t.events) {
    if (f.ue && e.ue != *f.ue) continue;
    if (f.category && e.category != *f.category) continue;
    if (f.pci && e.i0 != *f.pci && e.i1 != *f.pci) continue;
    out.events.push_back(e);
  }
  return out;
}

std::string to_perfetto_json(const EventTrace& t) {
  constexpr double kUsPerSecond = 1e6;
  obs::JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.begin_array("traceEvents");

  // Track metadata: pid 1 is the simulated timeline (one row per UE), pid 2
  // the engine's wall clock. Perfetto renders these as named processes.
  const auto meta = [&](unsigned pid, std::uint64_t tid, const char* what,
                        const std::string& name) {
    w.begin_object();
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.field("name", what);
    w.begin_object("args");
    w.field("name", name);
    w.end_object();
    w.end_object();
  };
  meta(1, 0, "process_name", "sim " + t.run + " (simulated time)");
  meta(2, 0, "process_name", "engine wall clock");
  std::set<std::uint32_t> ues;
  for (const obs::Event& e : t.events) {
    if (!is_wall_kind(e.kind)) ues.insert(e.ue);
  }
  for (const std::uint32_t ue : ues) {
    meta(1, ue, "thread_name", "ue " + std::to_string(ue));
  }

  for (const obs::Event& e : t.events) {
    const bool wall = is_wall_kind(e.kind);
    const bool instant = e.kind == obs::EventKind::kInstant ||
                         e.kind == obs::EventKind::kWallInstant;
    w.begin_object();
    w.field("name", event_name(e));
    w.field("cat", obs::category_name(e.category));
    w.field("ph", instant ? "i" : "X");
    w.field("pid", wall ? 2u : 1u);
    w.field("tid", static_cast<std::uint64_t>(e.ue));
    w.field("ts", e.t0 * kUsPerSecond);
    if (instant) {
      w.field("s", "t");
    } else {
      w.field("dur", (e.t1 - e.t0) * kUsPerSecond);
    }
    write_args(w, e);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool export_trace_from_args(int argc, char** argv, std::string_view run,
                            std::uint64_t seed) {
  std::string path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace-out") path = argv[i + 1];
  }
  if (path.empty()) return false;
  const EventTrace t = capture_event_trace(std::string(run), seed);
  bool ok = true;
  if (const io::IoResult r = save_event_trace(path, t); !r) {
    std::fprintf(stderr, "p5g: cannot write %s: %s\n", path.c_str(),
                 r.error.c_str());
    ok = false;
  }
  if (const io::IoResult r =
          io::atomic_write_file(path + ".json", to_perfetto_json(t));
      !r) {
    std::fprintf(stderr, "p5g: cannot write %s.json: %s\n", path.c_str(),
                 r.error.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace p5g::trace
