#include "trace/trace.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/csv.h"

namespace p5g::trace {
namespace {

const char* band_code(radio::Band b) {
  switch (b) {
    case radio::Band::kLteLow: return "lte_low";
    case radio::Band::kLteMid: return "lte_mid";
    case radio::Band::kNrLow: return "nr_low";
    case radio::Band::kNrMid: return "nr_mid";
    case radio::Band::kNrMmWave: return "nr_mmw";
  }
  return "?";
}

radio::Band parse_band(const std::string& s) {
  if (s == "lte_low") return radio::Band::kLteLow;
  if (s == "lte_mid") return radio::Band::kLteMid;
  if (s == "nr_low") return radio::Band::kNrLow;
  if (s == "nr_mid") return radio::Band::kNrMid;
  return radio::Band::kNrMmWave;
}

const char* ho_code(ran::HoType t) { return ran::ho_name(t).data(); }

ran::HoType parse_ho(const std::string& s) {
  if (s == "LTEH") return ran::HoType::kLteh;
  if (s == "SCGA") return ran::HoType::kScga;
  if (s == "SCGR") return ran::HoType::kScgr;
  if (s == "SCGM") return ran::HoType::kScgm;
  if (s == "SCGC") return ran::HoType::kScgc;
  if (s == "MNBH") return ran::HoType::kMnbh;
  return ran::HoType::kMcgh;
}

ran::HoOutcome parse_outcome(const std::string& s) {
  if (s == "prep_fail") return ran::HoOutcome::kPrepFailure;
  if (s == "exec_fail") return ran::HoOutcome::kExecFailure;
  if (s == "rlf_reest") return ran::HoOutcome::kRlfReestablish;
  return ran::HoOutcome::kSuccess;
}

std::string encode_reports(const std::vector<ran::MeasurementReport>& rs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (i) os << ';';
    os << ran::event_name(rs[i].event) << '@'
       << (rs[i].scope == ran::MeasScope::kServingNr ? "NR" : "LTE");
  }
  return os.str();
}

ran::EventType parse_event(const std::string& s) {
  if (s == "A1") return ran::EventType::kA1;
  if (s == "A2") return ran::EventType::kA2;
  if (s == "A3") return ran::EventType::kA3;
  if (s == "A4") return ran::EventType::kA4;
  if (s == "A5") return ran::EventType::kA5;
  if (s == "A6") return ran::EventType::kA6;
  return ran::EventType::kB1;
}

std::vector<ran::MeasurementReport> decode_reports(const std::string& s, Seconds t) {
  std::vector<ran::MeasurementReport> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ';')) {
    const auto at = item.find('@');
    if (at == std::string::npos) continue;
    ran::MeasurementReport mr;
    mr.time = t;
    mr.event = parse_event(item.substr(0, at));
    mr.scope = item.substr(at + 1) == "NR" ? ran::MeasScope::kServingNr
                                           : ran::MeasScope::kServingLte;
    out.push_back(mr);
  }
  return out;
}

// Checked numeric parsing for trace files read back from disk. std::atoi /
// std::atof are undefined behaviour when the text is outside the
// representable range — a truncated or corrupted trace must never be UB.
// strtol/strtod define those cases: cells with no parsable number read as 0
// (matching the old atoi/atof behaviour) and out-of-range values saturate.
double to_d(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() ? 0.0 : v;
}

int to_i(const std::string& s) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  return static_cast<int>(
      std::clamp(v, static_cast<long>(std::numeric_limits<int>::min()),
                 static_cast<long>(std::numeric_limits<int>::max())));
}

}  // namespace

io::IoResult write_csv(const TraceLog& log, const std::string& path) {
  csv::Writer w(path, {"time", "route_pos", "x", "y", "speed", "lte_pci", "lte_rsrp",
                       "lte_rsrq", "lte_sinr", "nr_pci", "nr_rsrp", "nr_rsrq",
                       "nr_sinr", "nr_attached", "lte_halted", "nr_halted",
                       "tput_mbps", "rtt_ms", "reports"});
  for (const TickRecord& t : log.ticks) {
    w.write_row({csv::format(t.time.v, 3), csv::format(t.route_position.v, 1),
                 csv::format(t.position.x, 1), csv::format(t.position.y, 1),
                 csv::format(t.speed_mps, 2), csv::cell(t.lte_pci),
                 csv::format(t.lte_rrs.rsrp.v, 1), csv::format(t.lte_rrs.rsrq.v, 1),
                 csv::format(t.lte_rrs.sinr.v, 1), csv::cell(t.nr_pci),
                 csv::format(t.nr_rrs.rsrp.v, 1), csv::format(t.nr_rrs.rsrq.v, 1),
                 csv::format(t.nr_rrs.sinr.v, 1), t.nr_attached ? "1" : "0",
                 t.lte_halted ? "1" : "0", t.nr_halted ? "1" : "0",
                 csv::format(t.throughput_mbps, 1), csv::format(t.rtt_ms.v, 2),
                 encode_reports(t.reports)});
  }

  // Fault-layer columns come last so fault-free rows share their leading
  // bytes with pre-fault-layer traces.
  csv::Writer hw(path + ".ho.csv",
                 {"type", "decision_time", "exec_start", "complete_time", "t1_ms",
                  "t2_ms", "src_pci", "dst_pci", "src_band", "dst_band", "colocated",
                  "rrc", "mac", "phy", "route_pos", "outcome", "rach_attempts",
                  "backoff_ms", "reestablish_ms"});
  for (const ran::HandoverRecord& h : log.handovers) {
    hw.write_row({ho_code(h.type), csv::format(h.decision_time.v, 3),
                  csv::format(h.exec_start.v, 3), csv::format(h.complete_time.v, 3),
                  csv::format(h.timing.t1_ms.v, 2), csv::format(h.timing.t2_ms.v, 2),
                  csv::cell(h.src_pci), csv::cell(h.dst_pci), band_code(h.src_band),
                  band_code(h.dst_band), h.colocated ? "1" : "0",
                  csv::cell(h.signaling.rrc), csv::cell(h.signaling.mac),
                  csv::cell(h.signaling.phy), csv::format(h.route_position.v, 1),
                  std::string(ran::ho_outcome_name(h.outcome)),
                  csv::cell(h.rach_attempts), csv::format(h.backoff_ms.v, 2),
                  csv::format(h.reestablish_ms.v, 2)});
  }

  // Surface the first failure; still attempt both files so a transient
  // error on the tick CSV doesn't silently drop the HO CSV too.
  const io::IoResult tick_res = w.close();
  const io::IoResult ho_res = hw.close();
  return tick_res.ok ? ho_res : tick_res;
}

TraceLog read_csv(const std::string& path) {
  TraceLog log;
  const csv::Table t = csv::read_file(path);
  for (const auto& r : t.rows) {
    TickRecord rec;
    rec.time = Seconds{to_d(r[0])};
    rec.route_position = Meters{to_d(r[1])};
    rec.position = {to_d(r[2]), to_d(r[3])};
    rec.speed_mps = to_d(r[4]);
    rec.lte_pci = to_i(r[5]);
    rec.lte_rrs = {Dbm{to_d(r[6])}, Db{to_d(r[7])}, Db{to_d(r[8])}};
    rec.nr_pci = to_i(r[9]);
    rec.nr_rrs = {Dbm{to_d(r[10])}, Db{to_d(r[11])}, Db{to_d(r[12])}};
    rec.nr_attached = r[13] == "1";
    rec.lte_halted = r[14] == "1";
    rec.nr_halted = r[15] == "1";
    rec.throughput_mbps = to_d(r[16]);
    rec.rtt_ms = Millis{to_d(r[17])};
    if (r.size() > 18) rec.reports = decode_reports(r[18], rec.time);
    log.ticks.push_back(std::move(rec));
  }
  const csv::Table h = csv::read_file(path + ".ho.csv");
  // Fault columns are optional (pre-fault-layer traces lack them).
  const int c_outcome = h.column("outcome");
  const int c_attempts = h.column("rach_attempts");
  const int c_backoff = h.column("backoff_ms");
  const int c_reest = h.column("reestablish_ms");
  for (const auto& r : h.rows) {
    ran::HandoverRecord rec;
    rec.type = parse_ho(r[0]);
    rec.decision_time = Seconds{to_d(r[1])};
    rec.exec_start = Seconds{to_d(r[2])};
    rec.complete_time = Seconds{to_d(r[3])};
    rec.timing = {Millis{to_d(r[4])}, Millis{to_d(r[5])}};
    rec.src_pci = to_i(r[6]);
    rec.dst_pci = to_i(r[7]);
    rec.src_band = parse_band(r[8]);
    rec.dst_band = parse_band(r[9]);
    rec.colocated = r[10] == "1";
    rec.signaling = {to_i(r[11]), to_i(r[12]), to_i(r[13])};
    rec.route_position = Meters{to_d(r[14])};
    if (c_outcome >= 0 && static_cast<std::size_t>(c_outcome) < r.size()) {
      rec.outcome = parse_outcome(r[c_outcome]);
    }
    if (c_attempts >= 0 && static_cast<std::size_t>(c_attempts) < r.size()) {
      rec.rach_attempts = to_i(r[c_attempts]);
    }
    if (c_backoff >= 0 && static_cast<std::size_t>(c_backoff) < r.size()) {
      rec.backoff_ms = Millis{to_d(r[c_backoff])};
    }
    if (c_reest >= 0 && static_cast<std::size_t>(c_reest) < r.size()) {
      rec.reestablish_ms = Millis{to_d(r[c_reest])};
    }
    log.handovers.push_back(rec);
  }
  return log;
}

std::vector<double> throughput_series(const TraceLog& log) {
  std::vector<double> out;
  out.reserve(log.ticks.size());
  for (const TickRecord& t : log.ticks) out.push_back(t.throughput_mbps);
  return out;
}

TraceSummary summarize(const TraceLog& log) {
  TraceSummary s;
  s.ticks = log.ticks.size();
  s.duration = log.duration();
  s.distance = log.distance();
  const Seconds dt{log.tick_hz.v > 0.0 ? 1.0 / log.tick_hz.v : 0.0};
  double tput_sum = 0.0;
  double rtt_sum = 0.0;
  for (const TickRecord& t : log.ticks) {
    tput_sum += t.throughput_mbps;
    rtt_sum += t.rtt_ms.v;
    if (t.lte_halted) s.lte_halted_s += dt;
    if (t.nr_halted) s.nr_halted_s += dt;
    // A leg only interrupts the data plane if it exists: the NR leg when
    // attached, the LTE leg always (it is the anchor / only leg otherwise).
    if (t.lte_halted || (t.nr_attached && t.nr_halted)) s.any_halted_s += dt;
    s.reports += static_cast<int>(t.reports.size());
  }
  if (s.ticks > 0) {
    tput_sum /= static_cast<double>(s.ticks);
    rtt_sum /= static_cast<double>(s.ticks);
  }
  s.mean_throughput_mbps = tput_sum;
  s.mean_rtt_ms = Milliseconds{rtt_sum};
  s.handovers = static_cast<int>(log.handovers.size());
  for (const ran::HandoverRecord& h : log.handovers) {
    switch (h.outcome) {
      case ran::HoOutcome::kSuccess: ++s.ho_success; break;
      case ran::HoOutcome::kPrepFailure: ++s.ho_prep_failure; break;
      case ran::HoOutcome::kExecFailure: ++s.ho_exec_failure; break;
      case ran::HoOutcome::kRlfReestablish: ++s.ho_rlf_reestablish; break;
    }
  }
  return s;
}

void SummaryAccumulator::add(const TickRecord& t) {
  if (ticks_ == 0) {
    first_time_ = t.time;
    first_pos_ = t.route_position;
  }
  last_time_ = t.time;
  last_pos_ = t.route_position;
  ++ticks_;

  // Same per-tick operations, in the same order, as summarize()'s loop —
  // each accumulator sees an identical addition sequence, so the result is
  // bit-identical.
  tput_sum_ += t.throughput_mbps;
  rtt_sum_ += t.rtt_ms.v;
  if (t.lte_halted) s_.lte_halted_s += dt_;
  if (t.nr_halted) s_.nr_halted_s += dt_;
  if (t.lte_halted || (t.nr_attached && t.nr_halted)) s_.any_halted_s += dt_;
  s_.reports += static_cast<int>(t.reports.size());

  // summarize() tallies outcomes from log.handovers, which is exactly the
  // per-tick ho_completed lists concatenated in tick order.
  s_.handovers += static_cast<int>(t.ho_completed.size());
  for (const ran::HandoverRecord& h : t.ho_completed) {
    switch (h.outcome) {
      case ran::HoOutcome::kSuccess: ++s_.ho_success; break;
      case ran::HoOutcome::kPrepFailure: ++s_.ho_prep_failure; break;
      case ran::HoOutcome::kExecFailure: ++s_.ho_exec_failure; break;
      case ran::HoOutcome::kRlfReestablish: ++s_.ho_rlf_reestablish; break;
    }
  }
}

TraceSummary SummaryAccumulator::finish() const {
  TraceSummary s = s_;
  s.ticks = ticks_;
  s.duration = ticks_ > 0 ? last_time_ - first_time_ : 0.0_s;
  s.distance = ticks_ > 0 ? last_pos_ - first_pos_ : 0.0_m;
  double tput = tput_sum_;
  double rtt = rtt_sum_;
  if (ticks_ > 0) {
    tput /= static_cast<double>(ticks_);
    rtt /= static_cast<double>(ticks_);
  }
  s.mean_throughput_mbps = tput;
  s.mean_rtt_ms = Milliseconds{rtt};
  return s;
}

}  // namespace p5g::trace
