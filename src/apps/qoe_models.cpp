#include "apps/qoe_models.h"

#include <algorithm>
#include <cmath>

namespace p5g::apps {
namespace {

bool data_plane_halted(const trace::TickRecord& t) {
  // Whichever leg carries the media: NR when attached (NSA data plane),
  // LTE otherwise. MNBH halts both (footnote 1), covered by either flag.
  return t.nr_attached ? (t.nr_halted || t.lte_halted) : t.lte_halted;
}

}  // namespace

ConferencingSample conferencing_sample(const trace::TickRecord& tick, Rng& rng) {
  ConferencingSample s;
  // One-way latency ~ RTT/2 + capture/encode/decode (~55 ms) + jitter
  // buffer adaptation.
  s.video_latency_ms = Millis{tick.rtt_ms.v / 2.0 + 55.0 + rng.exponential(8.0)};
  s.packet_loss_pct = std::max(0.0, rng.normal(0.4, 0.25));
  if (data_plane_halted(tick)) {
    // Media queues for the interruption; the jitter buffer overflows.
    s.video_latency_ms += Millis{rng.uniform(400.0, 2000.0)};
    s.packet_loss_pct += rng.uniform(1.0, 12.0);
  } else if (tick.rtt_ms > 80.0_ms) {
    // Congestion episodes lose a little media too.
    s.packet_loss_pct += (tick.rtt_ms.v - 80.0) * 0.05;
  }
  // Very low throughput starves the (~1 Mbps) call.
  if (tick.throughput_mbps < 1.0) s.packet_loss_pct += rng.uniform(2.0, 10.0);
  s.packet_loss_pct = std::min(s.packet_loss_pct, 100.0);
  return s;
}

GamingSample gaming_sample(const trace::TickRecord& tick, Rng& rng) {
  GamingSample s;
  s.network_latency_ms = Millis{tick.rtt_ms.v / 2.0 + 8.0 + rng.exponential(2.0)};
  s.other_latency_ms = Millis{28.0 + rng.normal(0.0, 2.0)};  // encode+decode+render
  // A 60 FPS stream drops the frames that miss their ~50 ms budget. During
  // an interruption every frame of the halt window is dropped.
  if (tick.lte_halted && tick.nr_halted) {
    // Anchor HO (MNBH): both radios down, the longest interruptions.
    s.dropped_frames_pct = rng.uniform(70.0, 100.0);
    s.network_latency_ms += Millis{rng.uniform(80.0, 350.0)};
  } else if (data_plane_halted(tick)) {
    s.dropped_frames_pct = rng.uniform(30.0, 90.0);
    s.network_latency_ms += Millis{rng.uniform(40.0, 250.0)};
  } else {
    const double over_budget = std::max(0.0, s.network_latency_ms.v - 45.0);
    s.dropped_frames_pct = std::min(100.0, over_budget * 0.3 + std::max(0.0, rng.normal(0.4, 0.3)));
  }
  // A 4K@60 stream needs ~40 Mbps; a starved link drops frames outright.
  if (tick.throughput_mbps < 40.0) {
    s.dropped_frames_pct =
        std::min(100.0, s.dropped_frames_pct + (40.0 - tick.throughput_mbps) * 2.0);
  }
  return s;
}

namespace {

HoWindowSplit split_impl(const trace::TraceLog& log, const std::vector<double>& metric,
                         Seconds window, const std::vector<ran::HoType>* types) {
  HoWindowSplit out;
  if (log.ticks.empty()) return out;
  const Seconds t0 = log.ticks.front().time;
  std::vector<char> in_window(log.ticks.size(), 0);
  for (const ran::HandoverRecord& h : log.handovers) {
    if (types && std::find(types->begin(), types->end(), h.type) == types->end()) {
      continue;
    }
    const long lo = static_cast<long>((h.decision_time - window - t0).v * log.tick_hz.v);
    const long hi = static_cast<long>((h.complete_time + window - t0).v * log.tick_hz.v);
    for (long i = std::max(0L, lo);
         i <= hi && i < static_cast<long>(in_window.size()); ++i) {
      in_window[static_cast<std::size_t>(i)] = 1;
    }
  }
  const std::size_t n = std::min(metric.size(), log.ticks.size());
  for (std::size_t i = 0; i < n; ++i) {
    (in_window[i] ? out.in_ho : out.outside).push_back(metric[i]);
  }
  return out;
}

}  // namespace

HoWindowSplit split_by_ho_window(const trace::TraceLog& log,
                                 const std::vector<double>& metric, Seconds window) {
  return split_impl(log, metric, window, nullptr);
}

HoWindowSplit split_by_ho_window(const trace::TraceLog& log,
                                 const std::vector<double>& metric, Seconds window,
                                 const std::vector<ran::HoType>& types) {
  return split_impl(log, metric, window, &types);
}

}  // namespace p5g::apps
