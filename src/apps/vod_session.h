// Chunked VoD playback simulation (the 16K panoramic use case, Fig. 14a/b).
#pragma once

#include "apps/abr.h"
#include "apps/ho_signal.h"
#include "apps/link_emulator.h"

namespace p5g::apps {

struct VodResult {
  double avg_bitrate_mbps = 0.0;
  double normalized_bitrate = 0.0;  // vs the top level
  Seconds stall_time{0.0};
  double stall_fraction = 0.0;      // stall / video duration
  int quality_switches = 0;
  // Throughput prediction mean-absolute-error split (Fig. 14b).
  double pred_mae_ho = 0.0;         // chunks downloaded near a HO
  double pred_mae_no_ho = 0.0;
  int chunks_near_ho = 0;
  int chunks_no_ho = 0;
};

// Plays the whole video through `link`, starting at `start_time` in the
// trace. `signal` may be null (plain algorithm); otherwise the predicted
// throughput is multiplied by signal->score_at(now) before the decision.
VodResult run_vod(AbrAlgorithm& algorithm, const VideoProfile& video,
                  const LinkEmulator& link, const HoSignal* signal,
                  Seconds start_time = 0.0_s);

// Window starts (seconds) passing the §7.4 trace filter.
std::vector<Seconds> window_starts(const trace::TraceLog& log, Seconds window_s,
                                   Seconds stride_s, Mbps max_avg = 400.0,
                                   Mbps min_floor = 2.0);

}  // namespace p5g::apps
