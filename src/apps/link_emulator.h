// Trace-driven link emulation (the paper's Mahimahi role): replays a
// recorded bandwidth series and answers "how long does a transfer of X
// megabits take starting at time t".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "trace/trace.h"

namespace p5g::apps {

class LinkEmulator {
 public:
  // `mbps[i]` is the link rate during [i*dt, (i+1)*dt).
  LinkEmulator(std::vector<double> mbps, Seconds dt);

  // Convenience: replay the downlink of a recorded drive trace.
  static LinkEmulator from_trace(const trace::TraceLog& log);

  Seconds duration() const;
  // Wall time needed to move `megabits` starting at `start`; clamps to the
  // trailing average if the transfer runs past the end of the trace.
  Seconds transfer_time(Seconds start, double megabits) const;
  // Mean rate over [start, start + window).
  Mbps average_rate(Seconds start, Seconds window) const;
  // Instantaneous rate at time t.
  Mbps rate_at(Seconds t) const;
  // Time within [start, start + window) where the rate sits at or below
  // `floor` — the outage an application actually experiences. Failed HO
  // executions and RRC re-establishments show up as longer outages here.
  Seconds outage_seconds(Seconds start, Seconds window, Mbps floor = 0.1) const;

  // The same bins, coalesced into maximal contiguous interruption spans —
  // the structure behind the scalar above (outage_seconds sums exactly
  // these spans' bins). `bins` is the number of dt-slots in the span.
  struct OutageSpan {
    Seconds start{0.0};
    Seconds end{0.0};
    std::size_t bins = 0;
  };
  std::vector<OutageSpan> outage_spans(Seconds start, Seconds window,
                                       Mbps floor = 0.1) const;

  // Flight-recorder hook: emits one app.outage span per interruption onto
  // UE `ue`'s sim timeline, so an exported trace shows the application-
  // visible outage directly under the HO phase spans that caused it.
  void emit_outage_events(std::uint32_t ue, Seconds start, Seconds window,
                          Mbps floor = 0.1) const;

 private:
  std::vector<double> mbps_;
  Seconds dt_;
};

// The paper's trace filter (§7.4, following Mao et al.): keep windows whose
// average bandwidth is below `max_avg` and minimum above `min_floor` so the
// quality decision is non-trivial. Returns sliding windows of `window_s`.
std::vector<LinkEmulator> sliding_windows(const trace::TraceLog& log, Seconds window_s,
                                          Seconds stride_s, Mbps max_avg = 400.0,
                                          Mbps min_floor = 2.0);

}  // namespace p5g::apps
