// Real-time volumetric video streaming (ViVo-style, Figs. 6 & 14c): a
// frame-paced stream at 5 point-cloud density levels; each 1-second segment
// must arrive before its playback deadline or the session stalls.
#pragma once

#include "apps/abr.h"
#include "apps/ho_signal.h"
#include "apps/link_emulator.h"

namespace p5g::apps {

struct VolumetricProfile {
  std::vector<double> bitrates_mbps = {43.0, 77.0, 110.0, 140.0, 170.0};
  Seconds segment_duration{1.0};
  int segments = 180;  // 3-minute video
  Seconds startup_buffer{0.5};
};

// ViVo's rate adaptation (visibility-aware optimizations disabled, as in
// the paper's evaluation): conservative rate-based with one-step smoothing.
class VivoSelector : public AbrAlgorithm {
 public:
  std::string name() const override { return "ViVo"; }
  int choose(const AbrState& state, const VideoProfile& video) override;
};

struct VolumetricResult {
  double avg_bitrate_mbps = 0.0;
  double avg_quality_level = 0.0;
  Seconds stall_time{0.0};
  double stall_fraction = 0.0;
};

VolumetricResult run_volumetric(AbrAlgorithm& algorithm, const VolumetricProfile& video,
                                const LinkEmulator& link, const HoSignal* signal,
                                Seconds start_time = 0.0_s);

}  // namespace p5g::apps
