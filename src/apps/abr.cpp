#include "apps/abr.h"

#include <algorithm>
#include <cmath>

namespace p5g::apps {

VideoProfile panoramic_16k_profile() {
  VideoProfile v;
  // 720p, 1080p, 2K, 4K, 8K, 16K panoramic encodings.
  v.bitrates_mbps = {6.0, 12.0, 24.0, 48.0, 110.0, 240.0};
  v.chunk_duration = 2.0_s;
  v.chunks = 60;  // 120 s total
  v.buffer_capacity = 30.0_s;
  return v;
}

void ThroughputEstimator::observe(Mbps sample) {
  if (sample <= 0.0) sample = 0.01;
  samples_.push_back(sample);
  while (samples_.size() > window_) samples_.pop_front();
}

Mbps ThroughputEstimator::predict() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += 1.0 / s;
  return static_cast<double>(samples_.size()) / acc;
}

void ThroughputEstimator::record_error(Mbps predicted, Mbps actual) {
  if (actual <= 0.0) return;
  errors_.push_back(std::abs(predicted - actual) / actual);
  while (errors_.size() > window_) errors_.pop_front();
}

Mbps ThroughputEstimator::max_recent_error() const {
  double m = 0.0;
  for (double e : errors_) m = std::max(m, e);
  return m;
}

int RateBased::choose(const AbrState& state, const VideoProfile& video) {
  int level = 0;
  for (std::size_t i = 0; i < video.bitrates_mbps.size(); ++i) {
    if (video.bitrates_mbps[i] <= state.predicted_tput) level = static_cast<int>(i);
  }
  return level;
}

namespace {

// QoE terms (Pensieve-style): quality in "bitrate utility" units.
double quality_utility(const VideoProfile& v, int level) {
  return std::log(v.bitrates_mbps[static_cast<std::size_t>(level)] /
                  v.bitrates_mbps.front());
}

constexpr double kRebufferPenalty = 8.0;  // per second of stall
constexpr double kSmoothPenalty = 1.0;    // per utility unit changed

}  // namespace

double MpcAbr::plan(const AbrState& state, const VideoProfile& video, int level,
                    int depth, Seconds buffer, int prev_level, Mbps tput) const {
  const double bitrate = video.bitrates_mbps[static_cast<std::size_t>(level)];
  const Seconds download = bitrate * video.chunk_duration / std::max(tput, 0.01);
  const Seconds stall = std::max(0.0_s, download - buffer);
  Seconds new_buffer = std::max(0.0_s, buffer - download) + video.chunk_duration;
  new_buffer = std::min(new_buffer, video.buffer_capacity);

  double value = quality_utility(video, level) - kRebufferPenalty * stall.v -
                 kSmoothPenalty * std::abs(quality_utility(video, level) -
                                           quality_utility(video, prev_level));
  if (depth + 1 < horizon_ && state.next_chunk + depth + 1 < video.chunks) {
    double best_tail = -1e18;
    for (int next = 0; next < static_cast<int>(video.bitrates_mbps.size()); ++next) {
      // Prune: limit level jumps to +-2 to keep the search shallow.
      if (std::abs(next - level) > 2) continue;
      best_tail = std::max(
          best_tail, plan(state, video, next, depth + 1, new_buffer, level, tput));
    }
    value += best_tail;
  }
  return value;
}

int MpcAbr::choose(const AbrState& state, const VideoProfile& video) {
  Mbps tput = state.predicted_tput;
  if (robust_) tput /= (1.0 + error_bound_);
  if (tput <= 0.0) return 0;

  int best_level = 0;
  double best_value = -1e18;
  for (int level = 0; level < static_cast<int>(video.bitrates_mbps.size()); ++level) {
    const double v =
        plan(state, video, level, 0, state.buffer_level, state.prev_level, tput);
    if (v > best_value) {
      best_value = v;
      best_level = level;
    }
  }
  return best_level;
}

int Festive::choose(const AbrState& state, const VideoProfile& video) {
  // Reference level: highest bitrate under 0.85 x estimate.
  int ref = 0;
  for (std::size_t i = 0; i < video.bitrates_mbps.size(); ++i) {
    if (video.bitrates_mbps[i] <= 0.85 * state.predicted_tput) ref = static_cast<int>(i);
  }
  // Gradual switching: move one level at a time, and only up after the
  // current level has been stable for a few chunks.
  if (ref > state.prev_level) {
    ++stable_count_;
    if (stable_count_ >= 2) {
      stable_count_ = 0;
      target_level_ = state.prev_level + 1;
    } else {
      target_level_ = state.prev_level;
    }
  } else if (ref < state.prev_level) {
    stable_count_ = 0;
    target_level_ = state.prev_level - 1;
  } else {
    stable_count_ = 0;
    target_level_ = state.prev_level;
  }
  target_level_ = std::clamp(target_level_, 0,
                             static_cast<int>(video.bitrates_mbps.size()) - 1);
  return target_level_;
}

}  // namespace p5g::apps
