#include "apps/ho_signal.h"

#include <algorithm>

#include "core/trace_adapter.h"

namespace p5g::apps {

double HoSignal::score_at(Seconds t) const {
  if (score.empty()) return 1.0;
  auto idx = static_cast<long>(t / dt);
  idx = std::clamp(idx, 0L, static_cast<long>(score.size()) - 1);
  return score[static_cast<std::size_t>(idx)];
}

bool HoSignal::near_at(Seconds t) const {
  if (ho_near.empty()) return false;
  auto idx = static_cast<long>(t / dt);
  idx = std::clamp(idx, 0L, static_cast<long>(ho_near.size()) - 1);
  return ho_near[static_cast<std::size_t>(idx)] != 0;
}

namespace {

std::vector<char> near_flags(const trace::TraceLog& log, Seconds lookahead) {
  std::vector<char> flags(log.ticks.size(), 0);
  if (log.ticks.empty()) return flags;
  const Seconds t0 = log.ticks.front().time;
  for (const ran::HandoverRecord& h : log.handovers) {
    const long hi = static_cast<long>((h.complete_time - t0).v * log.tick_hz.v);
    const long lo = static_cast<long>((h.decision_time - lookahead - t0).v * log.tick_hz.v);
    for (long i = std::max(0L, lo); i <= hi && i < static_cast<long>(flags.size()); ++i) {
      flags[static_cast<std::size_t>(i)] = 1;
    }
  }
  return flags;
}

}  // namespace

HoSignal ground_truth_signal(const trace::TraceLog& log,
                             const std::map<ran::HoType, double>& scores,
                             Seconds lookahead) {
  HoSignal s;
  s.dt = Seconds{1.0 / log.tick_hz.v};
  s.score.assign(log.ticks.size(), 1.0);
  s.ho_near = near_flags(log, lookahead);
  if (log.ticks.empty()) return s;
  const Seconds t0 = log.ticks.front().time;
  for (const ran::HandoverRecord& h : log.handovers) {
    const auto it = scores.find(h.type);
    // Clamp the correction: a 17x SCGA boost applied before the SCG is
    // actually up would overshoot the throughput prediction and stall.
    const double score =
        std::clamp(it == scores.end() ? 1.0 : it->second, 0.1, 2.5);
    const long hi = static_cast<long>((h.complete_time - t0).v * log.tick_hz.v);
    const long lo = static_cast<long>((h.decision_time - lookahead - t0).v * log.tick_hz.v);
    for (long i = std::max(0L, lo); i <= hi && i < static_cast<long>(s.score.size());
         ++i) {
      s.score[static_cast<std::size_t>(i)] = score;
    }
  }
  return s;
}

HoSignal prognos_signal(const trace::TraceLog& log, const core::Prognos::Config& config,
                        bool bootstrap, Seconds lookahead) {
  HoSignal s;
  s.dt = Seconds{1.0 / log.tick_hz.v};
  s.score.assign(log.ticks.size(), 1.0);
  s.ho_near = near_flags(log, lookahead);

  std::vector<ran::EventConfig> configs;
  switch (log.arch) {
    case ran::Arch::kLteOnly:
      for (const auto& c : ran::default_lte_event_set(log.nr_band)) {
        if (c.type != ran::EventType::kB1) configs.push_back(c);
      }
      break;
    case ran::Arch::kNsa:
      for (const auto& c : ran::default_lte_event_set(log.nr_band)) configs.push_back(c);
      for (const auto& c : ran::default_nsa_nr_event_set(log.nr_band)) configs.push_back(c);
      break;
    case ran::Arch::kSa:
      configs = ran::default_sa_event_set(log.nr_band);
      break;
  }
  core::Prognos::Config cfg = config;
  cfg.report.arch = log.arch;
  core::Prognos prognos(configs, cfg);
  if (bootstrap) prognos.bootstrap_with_frequent_patterns();

  for (std::size_t i = 0; i < log.ticks.size(); ++i) {
    const core::PrognosPrediction p = prognos.tick(core::from_tick(log.ticks[i]));
    s.score[i] = p.ho ? std::clamp(p.ho_score, 0.1, 2.5) : 1.0;
  }
  return s;
}

}  // namespace p5g::apps
