#include "apps/link_emulator.h"

#include <algorithm>
#include <numeric>

#include "obs/events.h"

namespace p5g::apps {

LinkEmulator::LinkEmulator(std::vector<double> mbps, Seconds dt)
    : mbps_(std::move(mbps)), dt_(dt) {}

LinkEmulator LinkEmulator::from_trace(const trace::TraceLog& log) {
  return LinkEmulator(trace::throughput_series(log), Seconds{1.0 / log.tick_hz.v});
}

Seconds LinkEmulator::duration() const {
  return static_cast<double>(mbps_.size()) * dt_;
}

Mbps LinkEmulator::rate_at(Seconds t) const {
  if (mbps_.empty()) return 0.0;
  auto idx = static_cast<long>(t / dt_);
  idx = std::clamp(idx, 0L, static_cast<long>(mbps_.size()) - 1);
  return mbps_[static_cast<std::size_t>(idx)];
}

Seconds LinkEmulator::transfer_time(Seconds start, double megabits) const {
  if (mbps_.empty()) return Seconds{1e9};
  double remaining = megabits;
  Seconds t = std::max(start, 0.0_s);
  auto idx = static_cast<std::size_t>(t / dt_);
  // Partial first slot.
  while (idx < mbps_.size() && remaining > 0.0) {
    const Seconds slot_end = static_cast<double>(idx + 1) * dt_;
    const Seconds avail = slot_end - t;
    const double can_move = std::max(mbps_[idx], 0.01) * avail.v;
    if (can_move >= remaining) {
      return (t + Seconds{remaining / std::max(mbps_[idx], 0.01)}) - start;
    }
    remaining -= can_move;
    t = slot_end;
    ++idx;
  }
  // Ran off the end: extrapolate with the mean of the last second.
  const Mbps tail = average_rate(duration() - 1.0_s, 1.0_s);
  return (t - start) + Seconds{remaining / std::max(tail, 0.01)};
}

Mbps LinkEmulator::average_rate(Seconds start, Seconds window) const {
  if (mbps_.empty() || window <= 0.0_s) return 0.0;
  const auto lo = static_cast<long>(std::max(start, 0.0_s) / dt_);
  const auto hi = static_cast<long>(std::max(start + window, 0.0_s) / dt_);
  double acc = 0.0;
  long n = 0;
  for (long i = lo; i <= hi && i < static_cast<long>(mbps_.size()); ++i, ++n) {
    acc += mbps_[static_cast<std::size_t>(i)];
  }
  return n > 0 ? acc / static_cast<double>(n) : mbps_.back();
}

Seconds LinkEmulator::outage_seconds(Seconds start, Seconds window, Mbps floor) const {
  Seconds outage{0.0};
  for (const OutageSpan& s : outage_spans(start, window, floor)) {
    // Accumulate dt per bin (not bins * dt): bit-for-bit the sum the
    // pre-span implementation produced, so callers' figures don't move.
    for (std::size_t k = 0; k < s.bins; ++k) outage += dt_;
  }
  return outage;
}

std::vector<LinkEmulator::OutageSpan> LinkEmulator::outage_spans(
    Seconds start, Seconds window, Mbps floor) const {
  std::vector<OutageSpan> out;
  if (mbps_.empty() || window <= 0.0_s) return out;
  const auto lo = static_cast<long>(std::max(start, 0.0_s) / dt_);
  const auto hi = static_cast<long>(std::max(start + window, 0.0_s) / dt_);
  for (long i = lo; i < hi && i < static_cast<long>(mbps_.size()); ++i) {
    if (mbps_[static_cast<std::size_t>(i)] > floor) continue;
    const Seconds bin_start = static_cast<double>(i) * dt_;
    const Seconds bin_end = static_cast<double>(i + 1) * dt_;
    if (!out.empty() && out.back().end == bin_start) {
      out.back().end = bin_end;
      ++out.back().bins;
    } else {
      out.push_back({bin_start, bin_end, 1});
    }
  }
  return out;
}

void LinkEmulator::emit_outage_events(std::uint32_t ue, Seconds start,
                                      Seconds window, Mbps floor) const {
  if (!obs::events_enabled()) return;
  const std::uint32_t outer = obs::trace_ue();
  obs::set_trace_ue(ue);
  for (const OutageSpan& s : outage_spans(start, window, floor)) {
    obs::Event e;
    e.kind = obs::EventKind::kSpan;
    e.category = obs::EventCategory::kAppOutage;
    e.t0 = s.start.v;
    e.t1 = s.end.v;
    e.a0 = floor;
    e.a1 = (s.end - s.start).v;
    e.i0 = static_cast<std::int32_t>(s.bins);
    obs::event_log().emit(e);
  }
  obs::set_trace_ue(outer);
}

std::vector<LinkEmulator> sliding_windows(const trace::TraceLog& log, Seconds window_s,
                                          Seconds stride_s, Mbps max_avg,
                                          Mbps min_floor) {
  std::vector<LinkEmulator> out;
  const std::vector<double> series = trace::throughput_series(log);
  const double dt = 1.0 / log.tick_hz.v;
  const auto win = static_cast<std::size_t>(window_s.v / dt);
  const auto stride = static_cast<std::size_t>(stride_s.v / dt);
  if (win == 0 || stride == 0) return out;
  for (std::size_t begin = 0; begin + win <= series.size(); begin += stride) {
    const auto first = series.begin() + static_cast<long>(begin);
    const auto last = first + static_cast<long>(win);
    const double avg = std::accumulate(first, last, 0.0) / static_cast<double>(win);
    const double mn = *std::min_element(first, last);
    if (avg >= max_avg || mn <= min_floor) continue;
    out.emplace_back(std::vector<double>(first, last), Seconds{dt});
  }
  return out;
}

}  // namespace p5g::apps
