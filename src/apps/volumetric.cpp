#include "apps/volumetric.h"

#include <algorithm>
#include <cmath>

namespace p5g::apps {

int VivoSelector::choose(const AbrState& state, const VideoProfile& video) {
  // Highest density sustainable at 0.75 x the predicted rate, moving at
  // most one level per segment (point-cloud density changes are jarring).
  int target = 0;
  for (std::size_t i = 0; i < video.bitrates_mbps.size(); ++i) {
    if (video.bitrates_mbps[i] <= 0.75 * state.predicted_tput) target = static_cast<int>(i);
  }
  return std::clamp(target, state.prev_level - 1, state.prev_level + 1);
}

VolumetricResult run_volumetric(AbrAlgorithm& algorithm, const VolumetricProfile& video,
                                const LinkEmulator& link, const HoSignal* signal,
                                Seconds start_time) {
  VolumetricResult out;
  ThroughputEstimator estimator;
  VideoProfile as_video;  // adapt the selector interface
  as_video.bitrates_mbps = video.bitrates_mbps;
  as_video.chunk_duration = video.segment_duration;
  as_video.chunks = video.segments;
  as_video.buffer_capacity = 1.2_s;  // real-time: shallow buffer

  Seconds now = start_time;
  Seconds buffer = video.startup_buffer;
  int prev_level = 0;
  double bitrate_acc = 0.0, level_acc = 0.0;
  auto* mpc = dynamic_cast<MpcAbr*>(&algorithm);

  for (int seg = 0; seg < video.segments; ++seg) {
    AbrState state;
    state.buffer_level = buffer;
    state.prev_level = prev_level;
    state.next_chunk = seg;
    Mbps predicted = estimator.predict();
    if (predicted <= 0.0) predicted = link.average_rate(now, 0.5_s);
    if (signal) predicted *= signal->score_at(now);
    state.predicted_tput = predicted;
    if (mpc) mpc->set_error_bound(estimator.max_recent_error());

    const int level = algorithm.choose(state, as_video);
    const double megabits =
        video.bitrates_mbps[static_cast<std::size_t>(level)] * video.segment_duration.v;
    const Seconds download = link.transfer_time(now, megabits);
    const Mbps actual = megabits / std::max(download.v, 1e-6);
    estimator.observe(actual);
    estimator.record_error(predicted, actual);

    // Real-time pacing: the segment is consumed while the next downloads.
    const Seconds stall = std::max(0.0_s, download - buffer);
    out.stall_time += stall;
    buffer = std::max(0.0_s, buffer - download) + video.segment_duration;
    buffer = std::min(buffer, as_video.buffer_capacity);
    now += download;

    bitrate_acc += video.bitrates_mbps[static_cast<std::size_t>(level)];
    level_acc += level;
    prev_level = level;
  }

  const double n = static_cast<double>(video.segments);
  out.avg_bitrate_mbps = bitrate_acc / n;
  out.avg_quality_level = level_acc / n;
  out.stall_fraction = out.stall_time / (n * video.segment_duration);
  return out;
}

}  // namespace p5g::apps
