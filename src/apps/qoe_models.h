// Interactive-application QoE models (Figs. 4-6): per-tick latency, packet
// loss and frame-drop processes driven by the trace's data-plane state
// (RTT, halted legs) — the mechanism by which HOs hurt Zoom-style
// conferencing and cloud gaming in the paper's case studies.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "trace/trace.h"

namespace p5g::apps {

struct ConferencingSample {
  Milliseconds video_latency_ms{0.0};
  double packet_loss_pct = 0.0;
};

// One-on-one video call sample for a tick: latency follows RTT plus codec
// and jitter-buffer terms; a halted data plane queues media and loses the
// overflow.
ConferencingSample conferencing_sample(const trace::TickRecord& tick, Rng& rng);

struct GamingSample {
  Milliseconds network_latency_ms{0.0};
  Milliseconds other_latency_ms{0.0};  // encode/decode/render (stable)
  double dropped_frames_pct = 0.0;      // of a 60 FPS stream
};

GamingSample gaming_sample(const trace::TickRecord& tick, Rng& rng);

// Window helper: means of a per-tick metric inside +-window around HO
// executions vs outside (the Fig. 4/5 "w/ HO vs w/o HO" comparison).
struct HoWindowSplit {
  std::vector<double> in_ho;
  std::vector<double> outside;
};
HoWindowSplit split_by_ho_window(const trace::TraceLog& log,
                                 const std::vector<double>& metric,
                                 Seconds window = 1.0_s);

// Restrict the split to HOs of specific types (e.g. SCGM vs MNBH, Fig. 5).
HoWindowSplit split_by_ho_window(const trace::TraceLog& log,
                                 const std::vector<double>& metric, Seconds window,
                                 const std::vector<ran::HoType>& types);

}  // namespace p5g::apps
