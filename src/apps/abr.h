// Adaptive-bitrate algorithms used by the §7.4 evaluation: rate-based (RB),
// FastMPC, RobustMPC (Yin et al.), and FESTIVE (Jiang et al.) — plus the
// HO-aware throughput-prediction hook (-GT / -PR variants): the predicted
// throughput is multiplied by the ho_score delivered by Prognos (or by the
// ground truth) before the quality decision.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace p5g::apps {

struct VideoProfile {
  std::vector<double> bitrates_mbps;  // one per quality level, ascending
  Seconds chunk_duration{2.0};
  int chunks = 60;
  Seconds buffer_capacity{30.0};
};

// The paper's 16K panoramic VoD: 6 levels (720p..16K), 60 chunks, 120 s.
VideoProfile panoramic_16k_profile();

// Harmonic-mean throughput estimator over the last k chunks (Pensieve /
// MPC's standard predictor).
class ThroughputEstimator {
 public:
  explicit ThroughputEstimator(std::size_t window = 5) : window_(window) {}
  void observe(Mbps sample);
  Mbps predict() const;  // harmonic mean; 0 until first sample
  Mbps max_recent_error() const;  // relative error bound for RobustMPC
  void record_error(Mbps predicted, Mbps actual);

 private:
  std::size_t window_;
  std::deque<double> samples_;
  std::deque<double> errors_;
};

struct AbrState {
  Seconds buffer_level{0.0};
  int prev_level = 0;
  int next_chunk = 0;
  Mbps predicted_tput = 0.0;  // already ho_score-corrected
};

class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual int choose(const AbrState& state, const VideoProfile& video) = 0;
};

// RB: pick the highest bitrate below the predicted throughput.
class RateBased : public AbrAlgorithm {
 public:
  std::string name() const override { return "RB"; }
  int choose(const AbrState& state, const VideoProfile& video) override;
};

// MPC family: maximize sum over an H-chunk horizon of
//   q(level) - rebuffer_penalty * stall - smooth_penalty * |q - q_prev|
// under the predicted throughput. Robust mode scales the prediction down by
// the recent maximum error.
class MpcAbr : public AbrAlgorithm {
 public:
  MpcAbr(bool robust, int horizon = 5) : robust_(robust), horizon_(horizon) {}
  std::string name() const override { return robust_ ? "robustMPC" : "fastMPC"; }
  int choose(const AbrState& state, const VideoProfile& video) override;
  void set_error_bound(double err) { error_bound_ = err; }

 private:
  double plan(const AbrState& state, const VideoProfile& video, int level, int depth,
              Seconds buffer, int prev_level, Mbps tput) const;

  bool robust_;
  int horizon_;
  double error_bound_ = 0.0;
};

// FESTIVE: quantized bandwidth estimate with stateful gradual switching and
// a stability penalty.
class Festive : public AbrAlgorithm {
 public:
  std::string name() const override { return "FESTIVE"; }
  int choose(const AbrState& state, const VideoProfile& video) override;

 private:
  int stable_count_ = 0;
  int target_level_ = 0;
};

}  // namespace p5g::apps
