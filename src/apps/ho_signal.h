// HO-awareness signals for rate adaptation (§7.4): a per-tick ho_score
// series from either ground truth (the -GT variants) or Prognos (-PR),
// plus the ground-truth "HO imminent" flags used to split throughput-
// prediction error into with/without-HO buckets (Fig. 14b).
#pragma once

#include <map>
#include <vector>

#include "core/prognos.h"
#include "trace/trace.h"

namespace p5g::apps {

struct HoSignal {
  std::vector<double> score;  // per tick; 1.0 = no HO expected
  std::vector<char> ho_near;  // ground truth: HO decision within lookahead
  Seconds dt{0.05};

  double score_at(Seconds t) const;
  bool near_at(Seconds t) const;
};

// Ground-truth signal: ho_score of the upcoming HO (from `scores`) during
// the `lookahead` seconds before each HO decision.
HoSignal ground_truth_signal(const trace::TraceLog& log,
                             const std::map<ran::HoType, double>& scores,
                             Seconds lookahead = 1.0_s);

// Prognos signal: run the predictor over the trace and take its ho_score
// output. ho_near flags still come from ground truth.
HoSignal prognos_signal(const trace::TraceLog& log, const core::Prognos::Config& config,
                        bool bootstrap = true, Seconds lookahead = 1.0_s);

}  // namespace p5g::apps
