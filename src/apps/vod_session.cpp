#include "apps/vod_session.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace p5g::apps {

VodResult run_vod(AbrAlgorithm& algorithm, const VideoProfile& video,
                  const LinkEmulator& link, const HoSignal* signal,
                  Seconds start_time) {
  VodResult out;
  ThroughputEstimator estimator;
  Seconds now = start_time;
  Seconds buffer{0.0};
  int prev_level = 0;
  double bitrate_acc = 0.0;

  auto* mpc = dynamic_cast<MpcAbr*>(&algorithm);

  for (int chunk = 0; chunk < video.chunks; ++chunk) {
    AbrState state;
    state.buffer_level = buffer;
    state.prev_level = prev_level;
    state.next_chunk = chunk;
    Mbps predicted = estimator.predict();
    if (predicted <= 0.0) predicted = link.average_rate(now, 1.0_s);  // startup probe
    if (signal) predicted *= signal->score_at(now);
    state.predicted_tput = predicted;
    if (mpc) mpc->set_error_bound(estimator.max_recent_error());

    const int level = algorithm.choose(state, video);
    const double megabits =
        video.bitrates_mbps[static_cast<std::size_t>(level)] * video.chunk_duration.v;
    const Seconds download = link.transfer_time(now, megabits);
    const Mbps actual = megabits / std::max(download.v, 1e-6);

    // Prediction-error accounting (against the uncorrected need: how well
    // did the algorithm's throughput input match reality).
    const double err = std::abs(predicted - actual);
    if (signal && signal->near_at(now)) {
      out.pred_mae_ho += err;
      ++out.chunks_near_ho;
    } else {
      out.pred_mae_no_ho += err;
      ++out.chunks_no_ho;
    }

    estimator.observe(actual);
    estimator.record_error(predicted, actual);

    const Seconds stall = std::max(0.0_s, download - buffer);
    out.stall_time += stall;
    buffer = std::max(0.0_s, buffer - download) + video.chunk_duration;
    // Respect the buffer cap: wait (without downloading) when full.
    if (buffer > video.buffer_capacity) {
      now += buffer - video.buffer_capacity;
      buffer = video.buffer_capacity;
    }
    now += download;

    bitrate_acc += video.bitrates_mbps[static_cast<std::size_t>(level)];
    if (level != prev_level && chunk > 0) ++out.quality_switches;
    prev_level = level;
  }

  const double n = static_cast<double>(video.chunks);
  out.avg_bitrate_mbps = bitrate_acc / n;
  out.normalized_bitrate = out.avg_bitrate_mbps / video.bitrates_mbps.back();
  out.stall_fraction = out.stall_time / (n * video.chunk_duration);
  if (out.chunks_near_ho > 0) out.pred_mae_ho /= out.chunks_near_ho;
  if (out.chunks_no_ho > 0) out.pred_mae_no_ho /= out.chunks_no_ho;
  return out;
}

std::vector<Seconds> window_starts(const trace::TraceLog& log, Seconds window_s,
                                   Seconds stride_s, Mbps max_avg, Mbps min_floor) {
  std::vector<Seconds> out;
  // The paper's filter (following Mao et al.) operates on 1-second-granular
  // bandwidth traces, so apply avg/min to 1-second bucket means: a 150 ms
  // HO outage inside a second does not disqualify the window.
  const std::vector<double> raw = trace::throughput_series(log);
  const auto per_s = static_cast<std::size_t>(log.tick_hz.v);
  if (per_s == 0) return out;
  std::vector<double> series;  // 1-second means
  for (std::size_t i = 0; i + per_s <= raw.size(); i += per_s) {
    series.push_back(std::accumulate(raw.begin() + static_cast<long>(i),
                                     raw.begin() + static_cast<long>(i + per_s), 0.0) /
                     static_cast<double>(per_s));
  }
  const auto win = static_cast<std::size_t>(window_s.v);
  const auto stride = static_cast<std::size_t>(stride_s.v);
  if (win == 0 || stride == 0) return out;
  for (std::size_t begin = 0; begin + win <= series.size(); begin += stride) {
    const auto first = series.begin() + static_cast<long>(begin);
    const auto last = first + static_cast<long>(win);
    const double avg = std::accumulate(first, last, 0.0) / static_cast<double>(win);
    const double mn = *std::min_element(first, last);
    if (avg >= max_avg || mn <= min_floor) continue;
    out.push_back(Seconds{static_cast<double>(begin)});
  }
  return out;
}

}  // namespace p5g::apps
