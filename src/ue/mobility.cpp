#include "ue/mobility.h"

#include <algorithm>

namespace p5g::ue {

ConstantSpeedDriver::ConstantSpeedDriver(const geo::Route& route, double speed_kmh,
                                         Rng rng, Meters start)
    : route_(route), target_mps_(kmh_to_mps(speed_kmh)), speed_mps_(target_mps_),
      s_(start), rng_(rng) {}

UePosition ConstantSpeedDriver::advance(Seconds dt) {
  // Mean-reverting speed perturbation (traffic flow ripple).
  speed_mps_ += 0.2 * (target_mps_ - speed_mps_) * dt.v + rng_.normal(0.0, 0.3) * dt.v;
  speed_mps_ = std::clamp(speed_mps_, 0.6 * target_mps_, 1.15 * target_mps_);
  s_ += Meters{speed_mps_ * dt.v};
  return current();
}

UePosition ConstantSpeedDriver::current() const {
  return {route_.position_at(s_), s_, speed_mps_};
}

StopAndGoDriver::StopAndGoDriver(const geo::Route& route, double cruise_kmh, Rng rng,
                                 Meters start)
    : route_(route), cruise_mps_(kmh_to_mps(cruise_kmh)), s_(start), rng_(rng) {
  phase_remaining_ = Seconds{rng_.uniform(20.0, 60.0)};
  speed_mps_ = cruise_mps_;
}

UePosition StopAndGoDriver::advance(Seconds dt) {
  phase_remaining_ -= dt;
  if (phase_remaining_ <= 0.0_s) {
    stopped_ = !stopped_;
    phase_remaining_ = stopped_ ? Seconds{rng_.uniform(10.0, 45.0)}   // red light
                                : Seconds{rng_.uniform(25.0, 90.0)};  // cruise segment
  }
  const double target = stopped_ ? 0.0 : cruise_mps_ * rng_.uniform(0.7, 1.0);
  // First-order approach to the target speed (accel/brake ~2.5 m/s^2).
  const double max_delta = 2.5 * dt.v;
  speed_mps_ += std::clamp(target - speed_mps_, -max_delta, max_delta);
  s_ += Meters{speed_mps_ * dt.v};
  return current();
}

UePosition StopAndGoDriver::current() const {
  return {route_.position_at(s_), s_, speed_mps_};
}

Walker::Walker(const geo::Route& route, Rng rng, Meters start)
    : route_(route), s_(start), rng_(rng) {}

UePosition Walker::advance(Seconds dt) {
  speed_mps_ += 0.5 * (1.4 - speed_mps_) * dt.v + rng_.normal(0.0, 0.1) * dt.v;
  speed_mps_ = std::clamp(speed_mps_, 0.8, 2.0);
  s_ += Meters{speed_mps_ * dt.v};
  return current();
}

UePosition Walker::current() const {
  return {route_.position_at(s_), s_, speed_mps_};
}

}  // namespace p5g::ue
