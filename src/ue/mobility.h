// UE mobility: processes that advance a UE along a route over time.
//
// Three profiles cover the paper's data collection modes: steady freeway
// driving (~constant high speed), stop-and-go city driving (traffic lights,
// speed changes), and walking loops (the D1/D2 prediction datasets).
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "geo/route.h"

namespace p5g::ue {

struct UePosition {
  geo::Point point{};
  Meters route_position{0.0};  // arc length along the route
  double speed_mps = 0.0;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  // Advance by dt and return the new position.
  virtual UePosition advance(Seconds dt) = 0;
  virtual UePosition current() const = 0;
};

// Near-constant speed with small Gaussian perturbation (freeway driving).
// `start` places the UE at that arc length along the route at t=0 (fleet
// scenarios stagger their UEs this way); 0 preserves historical behaviour.
class ConstantSpeedDriver : public MobilityModel {
 public:
  ConstantSpeedDriver(const geo::Route& route, double speed_kmh, Rng rng,
                      Meters start = 0.0_m);
  UePosition advance(Seconds dt) override;
  UePosition current() const override;

 private:
  const geo::Route& route_;
  double target_mps_;
  double speed_mps_;
  Meters s_{0.0};
  Rng rng_;
};

// City driving: alternates cruise segments and stops (lights/congestion).
class StopAndGoDriver : public MobilityModel {
 public:
  StopAndGoDriver(const geo::Route& route, double cruise_kmh, Rng rng,
                  Meters start = 0.0_m);
  UePosition advance(Seconds dt) override;
  UePosition current() const override;

 private:
  const geo::Route& route_;
  double cruise_mps_;
  double speed_mps_ = 0.0;
  Meters s_{0.0};
  Seconds phase_remaining_{0.0};
  bool stopped_ = false;
  Rng rng_;
};

// Pedestrian walking at ~1.4 m/s with mild variation.
class Walker : public MobilityModel {
 public:
  Walker(const geo::Route& route, Rng rng, Meters start = 0.0_m);
  UePosition advance(Seconds dt) override;
  UePosition current() const override;

 private:
  const geo::Route& route_;
  double speed_mps_ = 1.4;
  Meters s_{0.0};
  Rng rng_;
};

}  // namespace p5g::ue
