#include "sim/fleet.h"

#include <algorithm>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "obs/timer.h"

namespace p5g::sim {

namespace {

// p5g.fleet.* instrumentation, resolved once. Counters and gauges only —
// no RNG or simulation state, so fleet traces stay byte-identical.
struct FleetMetrics {
  obs::Counter& runs = obs::registry().counter("p5g.fleet.runs");
  obs::Counter& ues = obs::registry().counter("p5g.fleet.ues");
  obs::Gauge& in_flight = obs::registry().gauge("p5g.fleet.ues_in_flight");
  obs::Histogram& ue_ms = obs::registry().histogram("p5g.fleet.ue_ms");
  obs::Histogram& ue_tick_ms = obs::registry().histogram("p5g.fleet.ue_tick_ms");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics m;
  return m;
}

}  // namespace

std::uint64_t fleet_ue_seed(std::uint64_t fleet_seed, std::size_t ue) {
  if (ue == 0) return fleet_seed;  // N=1 fleet == run_scenario(base)
  SplitMix64 mix(fleet_seed ^
                 (0xF1EE7C0DEULL +
                  static_cast<std::uint64_t>(ue) * 0x9E3779B97F4A7C15ULL));
  return mix.next();
}

Scenario fleet_ue_scenario(const FleetScenario& f, std::size_t ue) {
  Scenario s = f.base;
  s.seed = fleet_ue_seed(f.base.seed, ue);
  s.name = f.base.name + "/ue" + std::to_string(ue);
  s.start_offset_m = f.stagger_m * static_cast<double>(ue);
  if (!f.mobility_mix.empty()) {
    s.mobility = f.mobility_mix[ue % f.mobility_mix.size()];
  }
  return s;
}

FleetEnv::FleetEnv(const FleetScenario& f)
    // Mirrors run_scenario(Scenario): the route consumes the seed stream,
    // the deployment draws from fork(7) of the post-route state.
    : rng_(f.base.seed),
      route_(build_route(f.base, rng_)),
      dep_rng_(rng_.fork(7)),
      deployment_(f.base.carrier, route_, dep_rng_),
      shadow_(ran::resolve_shadow_fields(deployment_)) {}

trace::TraceLog run_fleet_ue(const FleetScenario& f, const FleetEnv& env,
                             std::size_t ue) {
  return run_scenario(fleet_ue_scenario(f, ue), env.deployment(), env.route(),
                      &env.shadow());
}

void for_each_ue_trace(
    const FleetScenario& f,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads) {
  FleetMetrics& m = fleet_metrics();
  m.runs.add(1);
  m.ues.add(f.n_ues);

  const FleetEnv env(f);
  auto run_one = [&](std::size_t ue) {
    m.in_flight.add(1.0);
    const obs::ObsClock::time_point start =
        obs::enabled() ? obs::ObsClock::now() : obs::ObsClock::time_point{};
    const Scenario s = fleet_ue_scenario(f, ue);
    const trace::TraceLog log =
        run_scenario(s, env.deployment(), env.route(), &env.shadow());
    if (obs::enabled()) {
      const double wall_ms = obs::ms_since(start);
      m.ue_ms.record(wall_ms);
      if (!log.ticks.empty()) {
        m.ue_tick_ms.record(wall_ms / static_cast<double>(log.ticks.size()));
      }
    }
    m.in_flight.add(-1.0);
    consume(ue, s, log);  // log dies here: streaming reduce, no N-log peak
  };

  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(f.n_ues, 1)));
  if (threads <= 1 || f.n_ues <= 1) {
    for (std::size_t ue = 0; ue < f.n_ues; ++ue) run_one(ue);
    return;
  }
  ThreadPool pool(threads);
  for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
    pool.submit([ue, &run_one] { run_one(ue); });
  }
  pool.wait_idle();
}

FleetResult run_fleet(const FleetScenario& f, unsigned threads) {
  FleetResult out;
  out.ues.resize(f.n_ues);
  // Each worker writes its own pre-sized slot — no lock, deterministic
  // result regardless of completion order.
  for_each_ue_trace(
      f,
      [&out](std::size_t ue, const Scenario& s, const trace::TraceLog& log) {
        UeSummary& u = out.ues[ue];
        u.ue = ue;
        u.seed = s.seed;
        u.mobility = s.mobility;
        u.start_offset_m = s.start_offset_m;
        u.trace = trace::summarize(log);
      },
      threads);
  return out;
}

}  // namespace p5g::sim
