#include "sim/fleet.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>

#include "common/chaos.h"
#include "common/thread_pool.h"
#include "obs/timer.h"
#include "sim/checkpoint.h"

namespace p5g::sim {

namespace {

// p5g.fleet.* / p5g.resilience.* instrumentation, resolved once. Counters
// and gauges only — no RNG or simulation state, so fleet traces stay
// byte-identical.
struct FleetMetrics {
  obs::Counter& runs = obs::registry().counter("p5g.fleet.runs");
  obs::Counter& ues = obs::registry().counter("p5g.fleet.ues");
  obs::Gauge& in_flight = obs::registry().gauge("p5g.fleet.ues_in_flight");
  obs::Histogram& ue_ms = obs::registry().histogram("p5g.fleet.ue_ms");
  obs::Histogram& ue_tick_ms = obs::registry().histogram("p5g.fleet.ue_tick_ms");
  obs::Counter& quarantined =
      obs::registry().counter("p5g.resilience.ues_quarantined");
  obs::Counter& ckpt_resumes =
      obs::registry().counter("p5g.resilience.checkpoint_resumes");
  obs::Counter& ckpt_mismatch =
      obs::registry().counter("p5g.resilience.checkpoint_mismatch");
  obs::Gauge& ckpt_skipped =
      obs::registry().gauge("p5g.resilience.checkpoint_ues_skipped");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics m;
  return m;
}

}  // namespace

std::uint64_t fleet_ue_seed(std::uint64_t fleet_seed, std::size_t ue) {
  if (ue == 0) return fleet_seed;  // N=1 fleet == run_scenario(base)
  SplitMix64 mix(fleet_seed ^
                 (0xF1EE7C0DEULL +
                  static_cast<std::uint64_t>(ue) * 0x9E3779B97F4A7C15ULL));
  return mix.next();
}

Scenario fleet_ue_scenario(const FleetScenario& f, std::size_t ue) {
  Scenario s = f.base;
  s.seed = fleet_ue_seed(f.base.seed, ue);
  s.name = f.base.name + "/ue" + std::to_string(ue);
  s.start_offset_m = f.stagger_m * static_cast<double>(ue);
  if (!f.mobility_mix.empty()) {
    s.mobility = f.mobility_mix[ue % f.mobility_mix.size()];
  }
  return s;
}

FleetEnv::FleetEnv(const FleetScenario& f)
    // Mirrors run_scenario(Scenario): the route consumes the seed stream,
    // the deployment draws from fork(7) of the post-route state.
    : rng_(f.base.seed),
      route_(build_route(f.base, rng_)),
      dep_rng_(rng_.fork(7)),
      deployment_(f.base.carrier, route_, dep_rng_),
      shadow_(ran::resolve_shadow_fields(deployment_)) {}

trace::TraceLog run_fleet_ue(const FleetScenario& f, const FleetEnv& env,
                             std::size_t ue) {
  return run_scenario(fleet_ue_scenario(f, ue), env.deployment(), env.route(),
                      &env.shadow());
}

std::vector<RunError> for_each_ue_trace_subset(
    const FleetScenario& f, std::span<const std::size_t> ues,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads) {
  FleetMetrics& m = fleet_metrics();
  m.runs.add(1);
  m.ues.add(ues.size());

  const FleetEnv env(f);
  auto run_one = [&](std::size_t ue) {
    const obs::ObsClock::time_point start =
        obs::enabled() ? obs::ObsClock::now() : obs::ObsClock::time_point{};
    const Scenario s = fleet_ue_scenario(f, ue);
    const trace::TraceLog log =
        run_scenario(s, env.deployment(), env.route(), &env.shadow());
    if (obs::enabled()) {
      const double wall_ms = obs::ms_since(start);
      m.ue_ms.record(wall_ms);
      if (!log.ticks.empty()) {
        m.ue_tick_ms.record(wall_ms / static_cast<double>(log.ticks.size()));
      }
    }
    consume(ue, s, log);  // log dies here: streaming reduce, no N-log peak
  };

  // The UE task boundary: chaos injection sits here (never inside the
  // simulation, so surviving UEs' RNG streams are untouched) and any
  // exception quarantines exactly this UE.
  std::vector<RunError> errors;
  std::mutex err_mu;
  auto guarded = [&](std::size_t ue) {
    m.in_flight.add(1.0);
    try {
      chaos::maybe_stall_task(ue);
      chaos::maybe_fault_task(ue);
      run_one(ue);
    } catch (const std::exception& e) {
      m.quarantined.add(1);
      const std::lock_guard<std::mutex> lock(err_mu);
      errors.push_back({ue, fleet_ue_seed(f.base.seed, ue),
                        f.base.name + "/ue" + std::to_string(ue), e.what()});
    } catch (...) {
      m.quarantined.add(1);
      const std::lock_guard<std::mutex> lock(err_mu);
      errors.push_back({ue, fleet_ue_seed(f.base.seed, ue),
                        f.base.name + "/ue" + std::to_string(ue),
                        "unknown exception"});
    }
    m.in_flight.add(-1.0);
  };

  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(ues.size(), 1)));
  if (threads <= 1 || ues.size() <= 1) {
    for (const std::size_t ue : ues) guarded(ue);
  } else {
    ThreadPool pool(threads);
    for (const std::size_t ue : ues) {
      pool.submit([ue, &guarded] { guarded(ue); });
    }
    static_cast<void>(pool.wait_idle());  // guarded() captured everything
  }
  // Completion order is schedule-dependent; the quarantine report is not.
  std::sort(errors.begin(), errors.end(),
            [](const RunError& a, const RunError& b) { return a.index < b.index; });
  return errors;
}

std::vector<RunError> for_each_ue_trace(
    const FleetScenario& f,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads) {
  std::vector<std::size_t> all(f.n_ues);
  std::iota(all.begin(), all.end(), std::size_t{0});
  return for_each_ue_trace_subset(f, all, consume, threads);
}

FleetResult run_fleet(const FleetScenario& f, unsigned threads) {
  return run_fleet(f, FleetCheckpointOptions{}, threads);
}

FleetResult run_fleet(const FleetScenario& f, const FleetCheckpointOptions& ckpt,
                      unsigned threads) {
  FleetMetrics& m = fleet_metrics();
  FleetResult out;
  out.ues.resize(f.n_ues);
  std::vector<char> done(f.n_ues, 0);

  // Resume: adopt a valid checkpoint of the SAME fleet; anything else —
  // corrupt, version-skewed, or a different (seed, n_ues) — is rejected and
  // the run restarts from scratch.
  if (ckpt.resume && !ckpt.path.empty()) {
    std::string why;
    if (std::optional<FleetCheckpoint> loaded =
            load_checkpoint(ckpt.path, &why)) {
      if (loaded->fleet_seed == f.base.seed && loaded->n_ues == f.n_ues) {
        for (UeSummary& u : loaded->done) {
          done[u.ue] = 1;
          out.ues[u.ue] = std::move(u);
        }
        m.ckpt_resumes.add(1);
        m.ckpt_skipped.set(static_cast<double>(loaded->done.size()));
      } else {
        m.ckpt_mismatch.add(1);
      }
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(f.n_ues);
  for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
    if (!done[ue]) pending.push_back(ue);
  }

  // Periodic checkpointing. `ckpt_mu` serializes the done-bitmap updates
  // and the snapshot encode; the UeSummary slot write happens before the
  // bitmap flip, so a snapshot only ever reads fully written entries.
  std::mutex ckpt_mu;
  std::size_t since_save = 0;
  auto snapshot_locked = [&] {
    FleetCheckpoint c;
    c.fleet_seed = f.base.seed;
    c.n_ues = f.n_ues;
    for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
      if (done[ue]) c.done.push_back(out.ues[ue]);
    }
    // A failed periodic save must not kill the fleet — the counters and the
    // final save (whose failure IS surfaced) cover it.
    static_cast<void>(save_checkpoint(ckpt.path, c));
  };

  out.errors = for_each_ue_trace_subset(
      f, pending,
      [&](std::size_t ue, const Scenario& s, const trace::TraceLog& log) {
        UeSummary u;
        u.ue = ue;
        u.seed = s.seed;
        u.mobility = s.mobility;
        u.start_offset_m = s.start_offset_m;
        u.trace = trace::summarize(log);
        const std::lock_guard<std::mutex> lock(ckpt_mu);
        out.ues[ue] = std::move(u);
        done[ue] = 1;
        if (!ckpt.path.empty() && ckpt.every_k > 0 &&
            ++since_save >= ckpt.every_k) {
          since_save = 0;
          snapshot_locked();
        }
      },
      threads);

  // Quarantined UEs keep their identity in the result (trace stays zero) so
  // downstream consumers can line reports up by UE.
  for (const RunError& e : out.errors) {
    UeSummary& u = out.ues[e.index];
    const Scenario s = fleet_ue_scenario(f, e.index);
    u.ue = e.index;
    u.seed = s.seed;
    u.mobility = s.mobility;
    u.start_offset_m = s.start_offset_m;
  }

  if (!ckpt.path.empty()) {
    const std::lock_guard<std::mutex> lock(ckpt_mu);
    snapshot_locked();
  }
  return out;
}

}  // namespace p5g::sim
