#include "sim/fleet.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>

#include "common/chaos.h"
#include "common/thread_pool.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/timer.h"
#include "sim/checkpoint.h"
#include "sim/stepper.h"

namespace p5g::sim {

namespace {

// Tuned lockstep width: wide enough to amortize pool scheduling and keep
// the shared deployment's index/shadow working set hot across UEs, small
// enough that a cohort of full TraceLogs (streaming mode) stays modest and
// fleets of a few dozen UEs still spread over every worker.
constexpr std::size_t kDefaultCohortUes = 8;

// p5g.fleet.* / p5g.resilience.* instrumentation, resolved once. Counters
// and gauges only — no RNG or simulation state, so fleet traces stay
// byte-identical. `scenarios`/`sim_ticks` are the same registry counters
// sim::run_scenario bumps; the cohort engine steps UEs without going
// through run_scenario, so it maintains them itself.
struct FleetMetrics {
  obs::Counter& runs = obs::registry().counter("p5g.fleet.runs");
  obs::Counter& ues = obs::registry().counter("p5g.fleet.ues");
  obs::Gauge& in_flight = obs::registry().gauge("p5g.fleet.ues_in_flight");
  obs::Histogram& ue_ms = obs::registry().histogram("p5g.fleet.ue_ms");
  obs::Histogram& ue_tick_ms = obs::registry().histogram("p5g.fleet.ue_tick_ms");
  obs::Counter& scenarios = obs::registry().counter("p5g.sim.scenarios");
  obs::Counter& sim_ticks = obs::registry().counter("p5g.sim.ticks");
  obs::Counter& quarantined =
      obs::registry().counter("p5g.resilience.ues_quarantined");
  obs::Counter& ckpt_resumes =
      obs::registry().counter("p5g.resilience.checkpoint_resumes");
  obs::Counter& ckpt_mismatch =
      obs::registry().counter("p5g.resilience.checkpoint_mismatch");
  obs::Gauge& ckpt_skipped =
      obs::registry().gauge("p5g.resilience.checkpoint_ues_skipped");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics m;
  return m;
}

// One UE inside a cohort task: its identity, stepper, and whichever
// reduction the mode keeps (full log or streaming summary).
struct CohortSlot {
  std::size_t ue = 0;
  Scenario s;
  std::unique_ptr<ScenarioStepper> stepper;  // null once failed
  std::unique_ptr<trace::TraceLog> log;      // log mode only
  std::unique_ptr<trace::SummaryAccumulator> acc;  // summary mode only
  bool failed = false;
};

// The cohort lockstep engine behind both fleet entry points. Each pool
// task owns `cohort_ues` consecutive UEs of `ues` and advances them
// tick-major: UE a's tick t runs right before UE b's tick t, so the
// deployment's cell index and shadow fields are revisited while hot
// instead of once per whole-UE pass. Per-UE RNG streams make the
// interleaving invisible: any schedule, thread count, or cohort width
// produces byte-identical per-UE output.
//
// Log mode (`materialize_logs`) builds each UE's TraceLog exactly as
// run_scenario does and hands it to `consume_log` when the cohort
// finishes; summary mode never materializes ticks at all — every UE steps
// into one reused scratch record folded straight into its
// SummaryAccumulator, and `consume_summary` gets the result.
//
// Failure isolation: the chaos hooks fire per UE (keyed by UE index, as
// the old one-task-per-UE engine did), and any throw — setup, a tick, or
// the consumer — quarantines exactly that UE while its cohort-mates keep
// stepping.
std::vector<RunError> run_cohorts(
    const FleetScenario& f, std::span<const std::size_t> ues, unsigned threads,
    bool materialize_logs,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume_log,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceSummary& summary)>& consume_summary) {
  FleetMetrics& m = fleet_metrics();
  m.runs.add(1);
  m.ues.add(ues.size());

  const FleetEnv env(f);
  const std::size_t cohort = fleet_cohort_ues(f);

  std::vector<RunError> errors;
  std::mutex err_mu;
  auto quarantine = [&](CohortSlot& slot, const char* what) {
    slot.failed = true;
    slot.stepper.reset();
    slot.log.reset();
    slot.acc.reset();
    m.quarantined.add(1);
    const std::lock_guard<std::mutex> lock(err_mu);
    errors.push_back({slot.ue, fleet_ue_seed(f.base.seed, slot.ue),
                      f.base.name + "/ue" + std::to_string(slot.ue), what});
  };

  auto run_cohort = [&](std::size_t begin, std::size_t end) {
    const std::size_t n = end - begin;
    m.in_flight.add(static_cast<double>(n));
    // Wall-track span covering the whole cohort task: the fleet engine's
    // unit of pool scheduling, so a Perfetto view shows worker occupancy.
    const obs::EventSpan cohort_span(
        obs::EventCategory::kPoolTask,
        {.i0 = static_cast<std::int32_t>(ues[begin]),
         .i1 = static_cast<std::int32_t>(n)});
    const obs::ObsClock::time_point start =
        obs::enabled() ? obs::ObsClock::now() : obs::ObsClock::time_point{};

    std::vector<CohortSlot> slots(n);
    for (std::size_t k = 0; k < n; ++k) {
      CohortSlot& slot = slots[k];
      slot.ue = ues[begin + k];
      slot.s = fleet_ue_scenario(f, slot.ue);
      try {
        // The UE boundary: chaos injection sits here (never inside the
        // simulation, so surviving UEs' RNG streams are untouched).
        chaos::maybe_stall_task(slot.ue);
        chaos::maybe_fault_task(slot.ue);
        slot.stepper = std::make_unique<ScenarioStepper>(
            slot.s, env.deployment(), env.route(), &env.shadow());
        if (materialize_logs) {
          slot.log = std::make_unique<trace::TraceLog>();
          slot.log->name = slot.s.name;
          slot.log->arch = slot.s.arch;
          slot.log->nr_band = slot.s.nr_band;
          slot.log->lte_band = slot.s.lte_band;
          slot.log->tick_hz = slot.s.tick_hz;
          slot.log->ticks.reserve(slot.stepper->total_ticks());
        } else {
          slot.acc =
              std::make_unique<trace::SummaryAccumulator>(slot.s.tick_hz);
        }
      } catch (const std::exception& e) {
        quarantine(slot, e.what());
      } catch (...) {
        quarantine(slot, "unknown exception");
      }
    }

    // Tick-major lockstep over the surviving slots.
    trace::TickRecord scratch;  // summary mode: ONE record for the cohort
    const std::uint32_t outer_ue = obs::trace_ue();
    bool any = true;
    while (any) {
      any = false;
      for (CohortSlot& slot : slots) {
        if (slot.failed || slot.stepper->done()) continue;
        // Attribute this slot's flight-recorder events (tick spans, HO
        // phases) to its UE: cohorts interleave UEs on one thread, so the
        // thread-local context moves with the lockstep cursor.
        obs::set_trace_ue(static_cast<std::uint32_t>(slot.ue));
        try {
          if (materialize_logs) {
            trace::TickRecord& rec = slot.log->ticks.emplace_back();
            try {
              slot.stepper->step(rec);
            } catch (...) {
              slot.log->ticks.pop_back();  // no half-written tick in the log
              throw;
            }
            for (const ran::HandoverRecord& h : rec.ho_completed) {
              slot.log->handovers.push_back(h);
            }
          } else {
            slot.stepper->step(scratch);
            slot.acc->add(scratch);
          }
        } catch (const std::exception& e) {
          quarantine(slot, e.what());
          continue;
        } catch (...) {
          quarantine(slot, "unknown exception");
          continue;
        }
        if (!slot.stepper->done()) any = true;
      }
    }
    obs::set_trace_ue(outer_ue);  // restore the thread's previous context

    // Cohort wall time amortized per surviving UE — lockstep interleaves
    // the UEs, so individual wall times are not separable.
    const double wall_ms = obs::enabled() ? obs::ms_since(start) : 0.0;
    std::size_t live = 0;
    for (const CohortSlot& slot : slots) live += slot.failed ? 0 : 1;
    for (CohortSlot& slot : slots) {
      if (slot.failed) continue;
      const std::size_t ticks = slot.stepper->ticks_done();
      m.scenarios.add(1);
      m.sim_ticks.add(ticks);
      if (obs::enabled() && live > 0) {
        const double per_ue = wall_ms / static_cast<double>(live);
        m.ue_ms.record(per_ue);
        if (ticks > 0) m.ue_tick_ms.record(per_ue / static_cast<double>(ticks));
      }
      try {
        if (materialize_logs) {
          slot.log->manifest = obs::make_manifest(slot.s.name, slot.s.seed);
          slot.log->manifest.ticks = ticks;
          if (obs::enabled() && live > 0) {
            slot.log->manifest.wall_seconds =
                wall_ms / static_cast<double>(live) / 1e3;
          }
          consume_log(slot.ue, slot.s, *slot.log);
          slot.log.reset();  // streaming reduce: the log dies with the cohort
        } else {
          consume_summary(slot.ue, slot.s, slot.acc->finish());
        }
      } catch (const std::exception& e) {
        quarantine(slot, e.what());
      } catch (...) {
        quarantine(slot, "unknown exception");
      }
    }
    m.in_flight.add(-static_cast<double>(n));
  };

  const std::size_t n_cohorts = ues.empty() ? 0 : (ues.size() + cohort - 1) / cohort;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(n_cohorts, 1)));
  if (threads <= 1 || n_cohorts <= 1) {
    for (std::size_t c = 0; c < n_cohorts; ++c) {
      run_cohort(c * cohort, std::min(ues.size(), (c + 1) * cohort));
    }
  } else {
    ThreadPool pool(threads);
    for (std::size_t c = 0; c < n_cohorts; ++c) {
      const std::size_t begin = c * cohort;
      const std::size_t end = std::min(ues.size(), begin + cohort);
      pool.submit([begin, end, &run_cohort] { run_cohort(begin, end); });
    }
    static_cast<void>(pool.wait_idle());  // run_cohort captured everything
  }
  // Completion order is schedule-dependent; the quarantine report is not.
  std::sort(errors.begin(), errors.end(),
            [](const RunError& a, const RunError& b) { return a.index < b.index; });
  return errors;
}

}  // namespace

std::size_t fleet_cohort_ues(const FleetScenario& f) {
  return f.cohort_ues == 0 ? kDefaultCohortUes : f.cohort_ues;
}

std::uint64_t fleet_ue_seed(std::uint64_t fleet_seed, std::size_t ue) {
  if (ue == 0) return fleet_seed;  // N=1 fleet == run_scenario(base)
  SplitMix64 mix(fleet_seed ^
                 (0xF1EE7C0DEULL +
                  static_cast<std::uint64_t>(ue) * 0x9E3779B97F4A7C15ULL));
  return mix.next();
}

Scenario fleet_ue_scenario(const FleetScenario& f, std::size_t ue) {
  Scenario s = f.base;
  s.seed = fleet_ue_seed(f.base.seed, ue);
  s.name = f.base.name + "/ue" + std::to_string(ue);
  s.start_offset_m = f.stagger_m * static_cast<double>(ue);
  if (!f.mobility_mix.empty()) {
    s.mobility = f.mobility_mix[ue % f.mobility_mix.size()];
  }
  return s;
}

FleetEnv::FleetEnv(const FleetScenario& f)
    // Mirrors run_scenario(Scenario): the route consumes the seed stream,
    // the deployment draws from fork(7) of the post-route state.
    : rng_(f.base.seed),
      route_(build_route(f.base, rng_)),
      dep_rng_(rng_.fork(7)),
      deployment_(f.base.carrier, route_, dep_rng_),
      shadow_(ran::resolve_shadow_fields(deployment_)) {}

trace::TraceLog run_fleet_ue(const FleetScenario& f, const FleetEnv& env,
                             std::size_t ue) {
  return run_scenario(fleet_ue_scenario(f, ue), env.deployment(), env.route(),
                      &env.shadow());
}

std::vector<RunError> for_each_ue_trace_subset(
    const FleetScenario& f, std::span<const std::size_t> ues,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads) {
  return run_cohorts(f, ues, threads, /*materialize_logs=*/true, consume, {});
}

std::vector<RunError> for_each_ue_trace(
    const FleetScenario& f,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads) {
  std::vector<std::size_t> all(f.n_ues);
  std::iota(all.begin(), all.end(), std::size_t{0});
  return for_each_ue_trace_subset(f, all, consume, threads);
}

FleetResult run_fleet(const FleetScenario& f, unsigned threads) {
  return run_fleet(f, FleetCheckpointOptions{}, threads);
}

FleetResult run_fleet(const FleetScenario& f, const FleetCheckpointOptions& ckpt,
                      unsigned threads) {
  FleetMetrics& m = fleet_metrics();
  FleetResult out;
  out.ues.resize(f.n_ues);
  std::vector<char> done(f.n_ues, 0);

  // Resume: adopt a valid checkpoint of the SAME fleet; anything else —
  // corrupt, version-skewed, or a different (seed, n_ues) — is rejected and
  // the run restarts from scratch.
  if (ckpt.resume && !ckpt.path.empty()) {
    std::string why;
    if (std::optional<FleetCheckpoint> loaded =
            load_checkpoint(ckpt.path, &why)) {
      if (loaded->fleet_seed == f.base.seed && loaded->n_ues == f.n_ues) {
        for (UeSummary& u : loaded->done) {
          done[u.ue] = 1;
          out.ues[u.ue] = std::move(u);
        }
        m.ckpt_resumes.add(1);
        m.ckpt_skipped.set(static_cast<double>(loaded->done.size()));
      } else {
        m.ckpt_mismatch.add(1);
      }
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(f.n_ues);
  for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
    if (!done[ue]) pending.push_back(ue);
  }

  // Periodic checkpointing. `ckpt_mu` serializes the done-bitmap updates
  // and the snapshot encode; the UeSummary slot write happens before the
  // bitmap flip, so a snapshot only ever reads fully written entries.
  std::mutex ckpt_mu;
  std::size_t since_save = 0;
  auto snapshot_locked = [&] {
    FleetCheckpoint c;
    c.fleet_seed = f.base.seed;
    c.n_ues = f.n_ues;
    for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
      if (done[ue]) c.done.push_back(out.ues[ue]);
    }
    // A failed periodic save must not kill the fleet — the counters and the
    // final save (whose failure IS surfaced) cover it.
    // p5g-analyze: allow(ignored-ioresult)
    static_cast<void>(save_checkpoint(ckpt.path, c));
    if (obs::events_enabled()) {
      // Wall-track instant: when the snapshot landed and how much of the
      // fleet it covered.
      obs::Event e;
      e.kind = obs::EventKind::kWallInstant;
      e.category = obs::EventCategory::kCheckpoint;
      e.t0 = e.t1 = obs::wall_track_now();
      e.i0 = static_cast<std::int32_t>(c.done.size());
      e.i1 = static_cast<std::int32_t>(f.n_ues);
      obs::event_log().emit(e);
    }
  };

  // Summary mode: ticks fold straight into per-UE SummaryAccumulators —
  // no TraceLog exists anywhere in a run_fleet call.
  out.errors = run_cohorts(
      f, pending, threads, /*materialize_logs=*/false, {},
      [&](std::size_t ue, const Scenario& s, const trace::TraceSummary& sum) {
        UeSummary u;
        u.ue = ue;
        u.seed = s.seed;
        u.mobility = s.mobility;
        u.start_offset_m = s.start_offset_m;
        u.trace = sum;
        const std::lock_guard<std::mutex> lock(ckpt_mu);
        out.ues[ue] = std::move(u);
        done[ue] = 1;
        if (!ckpt.path.empty() && ckpt.every_k > 0 &&
            ++since_save >= ckpt.every_k) {
          since_save = 0;
          snapshot_locked();
        }
      });

  // Quarantined UEs keep their identity in the result (trace stays zero) so
  // downstream consumers can line reports up by UE.
  for (const RunError& e : out.errors) {
    UeSummary& u = out.ues[e.index];
    const Scenario s = fleet_ue_scenario(f, e.index);
    u.ue = e.index;
    u.seed = s.seed;
    u.mobility = s.mobility;
    u.start_offset_m = s.start_offset_m;
  }

  if (!ckpt.path.empty()) {
    const std::lock_guard<std::mutex> lock(ckpt_mu);
    snapshot_locked();
  }
  return out;
}

}  // namespace p5g::sim
