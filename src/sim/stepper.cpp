#include "sim/stepper.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "tput/throughput.h"

namespace p5g::sim {

namespace {

ran::MobilityManager::Config make_mm_config(const Scenario& s) {
  ran::MobilityManager::Config mm_cfg;
  mm_cfg.arch = s.arch;
  mm_cfg.nr_band = s.nr_band;
  mm_cfg.lte_band = s.lte_band;
  mm_cfg.mnbh_releases_scg = s.mnbh_releases_scg;
  mm_cfg.faults = s.faults;
  mm_cfg.ho_config = s.ho_config;
  mm_cfg.ho_policy = s.ho_policy;
  mm_cfg.adaptive_ho = s.adaptive_ho;
  mm_cfg.scalar_observe = s.scalar_radio_path;
  return mm_cfg;
}

// Sink, not a fork: the caller hands a DEDICATED mobility stream that this
// factory forwards into the driver's constructor.
std::unique_ptr<ue::MobilityModel> build_mobility(const Scenario& s,
                                                  const geo::Route& route,
                                                  Rng rng) {  // p5g-analyze: allow(rng-by-value)
  // Stagger offsets wrap so a fleet wider than the route folds back onto it
  // (loop routes wrap anyway; open routes would otherwise clamp at the end).
  const Meters start = route.length() > 0.0_m
                           ? Meters{std::fmod(std::max(0.0, s.start_offset_m.v), route.length().v)}
                           : 0.0_m;
  switch (s.mobility) {
    case MobilityKind::kFreeway:
      return std::make_unique<ue::ConstantSpeedDriver>(route, s.speed_kmh, rng, start);
    case MobilityKind::kCity:
      return std::make_unique<ue::StopAndGoDriver>(route, s.speed_kmh, rng, start);
    case MobilityKind::kWalkLoop:
      return std::make_unique<ue::Walker>(route, rng, start);
  }
  return nullptr;
}

}  // namespace

ScenarioStepper::ScenarioStepper(const Scenario& s, const ran::Deployment& deployment,
                                 const geo::Route& route,
                                 const ran::ShadowMap* shared_shadow)
    // Every stream is an independent fork of Rng(seed ^ 0xD1CE); fork() is
    // const, so three separate forks reproduce run_scenario's historical
    // stream assignment exactly.
    : s_(s),
      manager_(deployment, make_mm_config(s), Rng(s.seed ^ 0xD1CEu).fork(1),
               shared_shadow),
      mobility_(build_mobility(s, route, Rng(s.seed ^ 0xD1CEu).fork(2))),
      data_rng_(Rng(s.seed ^ 0xD1CEu).fork(3)),
      dt_(1.0 / s.tick_hz.v),
      total_ticks_(static_cast<std::size_t>(s.duration.v * s.tick_hz.v)),
      prev_s_(mobility_->current().route_position) {}

void ScenarioStepper::step(trace::TickRecord& rec) {
  P5G_REQUIRE(!done(), "stepping past the scenario's last tick");
  static obs::Histogram& m_tick_ms = obs::registry().histogram("p5g.sim.tick_ms");

  // Reset the record for reuse: everything else below is assigned
  // unconditionally.
  rec.observed.clear();
  rec.lte_pci = -1;
  rec.lte_rrs = {};
  rec.nr_pci = -1;
  rec.nr_rrs = {};

  const Seconds t = static_cast<double>(tick_) * dt_;
  const ue::UePosition pos = mobility_->advance(dt_);
  const Meters moved = pos.route_position - prev_s_;
  prev_s_ = pos.route_position;

  {
    const obs::ObsTimer tick_timer(m_tick_ms, tick_sampler_.next());
    manager_.tick(t, pos.point, moved, pos.route_position, res_);
  }
  const ran::UeRadioState& st = manager_.state();

  rec.time = t;
  rec.route_position = pos.route_position;
  rec.position = pos.point;
  rec.speed_mps = pos.speed_mps;
  rec.lte_halted = st.lte_data_halted;
  rec.nr_halted = st.nr_data_halted;
  rec.nr_attached = st.nr_attached();

  tput::DataPlaneInput dp;
  dp.mode = s_.traffic_mode;
  rec.observed.reserve(res_.observations.size());
  for (const ran::CellObservation& o : res_.observations) {
    trace::ObservedCell oc;
    oc.pci = o.cell->pci;
    oc.cell_id = o.cell->id;
    oc.tower_id = o.cell->tower_id;
    oc.band = o.cell->band;
    oc.rrs = o.rrs;
    rec.observed.push_back(oc);
    if (o.cell->id == st.lte_cell_id) {
      rec.lte_pci = o.cell->pci;
      rec.lte_rrs = o.rrs;
      dp.lte = {true, st.lte_data_halted, o.cell->band, o.rrs.sinr};
    }
    if (o.cell->id == st.nr_cell_id) {
      rec.nr_pci = o.cell->pci;
      rec.nr_rrs = o.rrs;
      dp.nr = {true, st.nr_data_halted, o.cell->band, o.rrs.sinr};
    }
  }

  rec.throughput_mbps = tput::downlink_throughput(dp, data_rng_);
  // Bulk-TCP recovery: after a data-plane interruption the flow rebuilds
  // its window; throughput ramps back over ~1.5 s instead of stepping.
  constexpr Seconds kTcpRecovery{1.5};
  const bool halted_now =
      (dp.nr.attached && dp.nr.halted) || (!dp.nr.attached && dp.lte.halted) ||
      (s_.traffic_mode == tput::TrafficMode::kDual && dp.lte.halted);
  if (halted_now) {
    was_halted_ = true;
  } else if (was_halted_) {
    was_halted_ = false;
    halted_until_ = t;
  }
  if (!halted_now && halted_until_ >= 0.0_s && t - halted_until_ < kTcpRecovery) {
    const double ramp = 0.15 + 0.85 * (t - halted_until_) / kTcpRecovery;
    rec.throughput_mbps *= ramp;
  }
  rec.rtt_ms = tput::rtt_sample(dp, manager_.executing_ho(),
                                manager_.reestablishing(), data_rng_);
  // Flight-recorder tick span: sampled at a deterministic stride, plus
  // every tick that carries HO activity. Pure observation of values already
  // computed — no RNG, no clock, no simulation state.
  const bool tick_sampled = tick_event_sampler_.next();
  if (obs::events_enabled()) {
    const bool ho_activity = !res_.started.empty() || !res_.commands.empty() ||
                             !res_.completed.empty();
    if (tick_sampled || ho_activity) {
      obs::Event e;
      e.kind = obs::EventKind::kSpan;
      e.category = obs::EventCategory::kTick;
      e.t0 = t.v;
      e.t1 = (t + dt_).v;
      e.a0 = rec.throughput_mbps;
      e.a1 = rec.rtt_ms.v;
      e.i0 = rec.lte_pci;
      e.i1 = rec.nr_pci;
      e.i2 = static_cast<std::uint16_t>((rec.lte_halted ? 1u : 0u) |
                                        (rec.nr_halted ? 2u : 0u) |
                                        (rec.nr_attached ? 4u : 0u));
      obs::event_log().emit(e);
    }
  }

  rec.reports = res_.reports;
  rec.ho_started = res_.started;
  // The UE receives the HO command (RRCReconfiguration) at the END of the
  // preparation stage; prep-failed procedures never emit one.
  rec.ho_commands = res_.commands;
  rec.ho_completed = res_.completed;

  ++tick_;
}

}  // namespace p5g::sim
