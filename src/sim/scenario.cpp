#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/export.h"
#include "obs/timer.h"
#include "ue/mobility.h"

namespace p5g::sim {

geo::Route build_route(const Scenario& s, Rng& rng) {
  switch (s.mobility) {
    case MobilityKind::kFreeway: {
      const Meters len = kmh_to_mps(s.speed_kmh) * s.duration * 1.1;
      return geo::make_freeway_route(len, rng);
    }
    case MobilityKind::kCity: {
      const Meters len = kmh_to_mps(s.speed_kmh) * s.duration * 0.8;
      return geo::make_city_route(len, 180.0, rng);
    }
    case MobilityKind::kWalkLoop: {
      // Perimeter sized so one loop takes roughly a third of the duration.
      const Meters perimeter = std::max(800.0, 1.4 * s.duration / 3.0);
      return geo::make_loop_route(perimeter, rng);
    }
  }
  return geo::Route({{0, 0}, {1000, 0}});
}

namespace {

std::unique_ptr<ue::MobilityModel> build_mobility(const Scenario& s,
                                                  const geo::Route& route, Rng rng) {
  // Stagger offsets wrap so a fleet wider than the route folds back onto it
  // (loop routes wrap anyway; open routes would otherwise clamp at the end).
  const Meters start = route.length() > 0.0
                           ? std::fmod(std::max(0.0, s.start_offset_m), route.length())
                           : 0.0;
  switch (s.mobility) {
    case MobilityKind::kFreeway:
      return std::make_unique<ue::ConstantSpeedDriver>(route, s.speed_kmh, rng, start);
    case MobilityKind::kCity:
      return std::make_unique<ue::StopAndGoDriver>(route, s.speed_kmh, rng, start);
    case MobilityKind::kWalkLoop:
      return std::make_unique<ue::Walker>(route, rng, start);
  }
  return nullptr;
}

}  // namespace

trace::TraceLog run_scenario(const Scenario& s, const ran::Deployment& deployment,
                             const geo::Route& route,
                             const ran::ShadowMap* shared_shadow) {
  // p5g.sim.* instrumentation: counters and timers only — no RNG or
  // simulation state is touched, so traces stay byte-identical.
  static obs::Counter& m_scenarios =
      obs::registry().counter("p5g.sim.scenarios");
  static obs::Counter& m_ticks = obs::registry().counter("p5g.sim.ticks");
  static obs::Histogram& m_tick_ms =
      obs::registry().histogram("p5g.sim.tick_ms");
  static obs::Histogram& m_scenario_ms =
      obs::registry().histogram("p5g.sim.scenario_ms");
  const obs::ObsTimer scenario_timer(m_scenario_ms);
  const obs::ObsClock::time_point wall_start =
      obs::enabled() ? obs::ObsClock::now() : obs::ObsClock::time_point{};
  m_scenarios.add(1);

  Rng rng(s.seed ^ 0xD1CEu);
  ran::MobilityManager::Config mm_cfg;
  mm_cfg.arch = s.arch;
  mm_cfg.nr_band = s.nr_band;
  mm_cfg.lte_band = s.lte_band;
  mm_cfg.mnbh_releases_scg = s.mnbh_releases_scg;
  mm_cfg.faults = s.faults;
  ran::MobilityManager manager(deployment, mm_cfg, rng.fork(1), shared_shadow);

  auto mobility = build_mobility(s, route, rng.fork(2));
  Rng data_rng = rng.fork(3);

  trace::TraceLog log;
  log.name = s.name;
  log.arch = s.arch;
  log.nr_band = s.nr_band;
  log.lte_band = s.lte_band;
  log.tick_hz = s.tick_hz;

  const Seconds dt = 1.0 / s.tick_hz;
  // Tick latency is sampled 1-in-4 (deterministic stride): hundreds of
  // samples per minute of sim time at a quarter of the clock cost.
  obs::SampleEvery tick_sampler(2);
  Meters prev_s = mobility->current().route_position;
  const auto total_ticks = static_cast<std::size_t>(s.duration * s.tick_hz);
  log.ticks.reserve(total_ticks);

  // Bulk-TCP recovery: after a data-plane interruption the flow rebuilds
  // its window; throughput ramps back over ~1.5 s instead of stepping.
  constexpr Seconds kTcpRecovery = 1.5;
  Seconds halted_until = -1.0;  // end of the last interruption
  bool was_halted = false;

  for (std::size_t i = 0; i < total_ticks; ++i) {
    const Seconds t = static_cast<double>(i) * dt;
    const ue::UePosition pos = mobility->advance(dt);
    const Meters moved = pos.route_position - prev_s;
    prev_s = pos.route_position;

    ran::TickResult res = [&] {
      const obs::ObsTimer tick_timer(m_tick_ms, tick_sampler.next());
      return manager.tick(t, pos.point, moved, pos.route_position);
    }();
    const ran::UeRadioState& st = manager.state();

    trace::TickRecord rec;
    rec.time = t;
    rec.route_position = pos.route_position;
    rec.position = pos.point;
    rec.speed_mps = pos.speed_mps;
    rec.lte_halted = st.lte_data_halted;
    rec.nr_halted = st.nr_data_halted;
    rec.nr_attached = st.nr_attached();

    tput::DataPlaneInput dp;
    dp.mode = s.traffic_mode;
    rec.observed.reserve(res.observations.size());
    for (const ran::CellObservation& o : res.observations) {
      trace::ObservedCell oc;
      oc.pci = o.cell->pci;
      oc.cell_id = o.cell->id;
      oc.tower_id = o.cell->tower_id;
      oc.band = o.cell->band;
      oc.rrs = o.rrs;
      rec.observed.push_back(oc);
      if (o.cell->id == st.lte_cell_id) {
        rec.lte_pci = o.cell->pci;
        rec.lte_rrs = o.rrs;
        dp.lte = {true, st.lte_data_halted, o.cell->band, o.rrs.sinr};
      }
      if (o.cell->id == st.nr_cell_id) {
        rec.nr_pci = o.cell->pci;
        rec.nr_rrs = o.rrs;
        dp.nr = {true, st.nr_data_halted, o.cell->band, o.rrs.sinr};
      }
    }

    rec.throughput_mbps = tput::downlink_throughput(dp, data_rng);
    // TCP window recovery after interruptions of the active leg.
    const bool halted_now =
        (dp.nr.attached && dp.nr.halted) || (!dp.nr.attached && dp.lte.halted) ||
        (s.traffic_mode == tput::TrafficMode::kDual && dp.lte.halted);
    if (halted_now) {
      was_halted = true;
    } else if (was_halted) {
      was_halted = false;
      halted_until = t;
    }
    if (!halted_now && halted_until >= 0.0 && t - halted_until < kTcpRecovery) {
      const double ramp = 0.15 + 0.85 * (t - halted_until) / kTcpRecovery;
      rec.throughput_mbps *= ramp;
    }
    rec.rtt_ms =
        tput::rtt_sample(dp, manager.executing_ho(), manager.reestablishing(), data_rng);
    rec.reports = res.reports;
    rec.ho_started = res.started;
    // The UE receives the HO command (RRCReconfiguration) at the END of the
    // preparation stage; prep-failed procedures never emit one.
    rec.ho_commands = res.commands;
    rec.ho_completed = res.completed;
    for (const ran::HandoverRecord& h : res.completed) log.handovers.push_back(h);

    log.ticks.push_back(std::move(rec));
  }
  m_ticks.add(total_ticks);

  log.manifest = obs::make_manifest(s.name, s.seed);
  log.manifest.ticks = total_ticks;
  if (obs::enabled()) log.manifest.wall_seconds = obs::ms_since(wall_start) / 1e3;
  return log;
}

trace::TraceLog run_scenario(const Scenario& s) {
  Rng rng(s.seed);
  geo::Route route = build_route(s, rng);
  Rng dep_rng = rng.fork(7);
  ran::Deployment deployment(s.carrier, route, dep_rng);
  return run_scenario(s, deployment, route);
}

}  // namespace p5g::sim
