#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "obs/export.h"
#include "obs/timer.h"
#include "sim/stepper.h"

namespace p5g::sim {

geo::Route build_route(const Scenario& s, Rng& rng) {
  switch (s.mobility) {
    case MobilityKind::kFreeway: {
      const Meters len{kmh_to_mps(s.speed_kmh) * s.duration.v * 1.1};
      return geo::make_freeway_route(len, rng);
    }
    case MobilityKind::kCity: {
      const Meters len{kmh_to_mps(s.speed_kmh) * s.duration.v * 0.8};
      return geo::make_city_route(len, 180.0_m, rng);
    }
    case MobilityKind::kWalkLoop: {
      // Perimeter sized so one loop takes roughly a third of the duration.
      const Meters perimeter{std::max(800.0, 1.4 * s.duration.v / 3.0)};
      return geo::make_loop_route(perimeter, rng);
    }
  }
  return geo::Route({{0, 0}, {1000, 0}});
}

trace::TraceLog run_scenario(const Scenario& s, const ran::Deployment& deployment,
                             const geo::Route& route,
                             const ran::ShadowMap* shared_shadow) {
  // p5g.sim.* instrumentation: counters and timers only — no RNG or
  // simulation state is touched, so traces stay byte-identical.
  static obs::Counter& m_scenarios =
      obs::registry().counter("p5g.sim.scenarios");
  static obs::Counter& m_ticks = obs::registry().counter("p5g.sim.ticks");
  static obs::Histogram& m_scenario_ms =
      obs::registry().histogram("p5g.sim.scenario_ms");
  const obs::ObsTimer scenario_timer(m_scenario_ms);
  const obs::ObsClock::time_point wall_start =
      obs::enabled() ? obs::ObsClock::now() : obs::ObsClock::time_point{};
  m_scenarios.add(1);

  ScenarioStepper stepper(s, deployment, route, shared_shadow);

  trace::TraceLog log;
  log.name = s.name;
  log.arch = s.arch;
  log.nr_band = s.nr_band;
  log.lte_band = s.lte_band;
  log.tick_hz = s.tick_hz;

  const std::size_t total_ticks = stepper.total_ticks();
  log.ticks.reserve(total_ticks);
  while (!stepper.done()) {
    trace::TickRecord& rec = log.ticks.emplace_back();
    stepper.step(rec);
    for (const ran::HandoverRecord& h : rec.ho_completed) log.handovers.push_back(h);
  }
  m_ticks.add(total_ticks);

  log.manifest = obs::make_manifest(s.name, s.seed);
  log.manifest.ticks = total_ticks;
  if (obs::enabled()) log.manifest.wall_seconds = obs::ms_since(wall_start) / 1e3;
  return log;
}

trace::TraceLog run_scenario(const Scenario& s) {
  Rng rng(s.seed);
  geo::Route route = build_route(s, rng);
  Rng dep_rng = rng.fork(7);
  ran::Deployment deployment(s.carrier, route, dep_rng);
  return run_scenario(s, deployment, route);
}

}  // namespace p5g::sim
