// ScenarioStepper — the per-tick body of run_scenario, extracted into a
// resumable one-UE engine so the single-scenario runner and the fleet's
// cohort scheduler share ONE implementation. Byte identity between a fleet
// UE and run_scenario of the same Scenario holds by construction: both
// drive this class with the same construction sequence and tick loop.
//
// RNG contract (must match the historical run_scenario exactly): the
// stepper derives every stream from Rng(s.seed ^ 0xD1CE) — fork(1) for the
// MobilityManager, fork(2) for the mobility model, fork(3) for the data
// plane. fork() is const, so taking the three forks independently
// reproduces the original sequence.
#pragma once

#include <cstddef>
#include <memory>

#include "obs/timer.h"
#include "ran/deployment.h"
#include "ran/mobility_manager.h"
#include "sim/scenario.h"
#include "trace/trace.h"
#include "ue/mobility.h"

namespace p5g::sim {

class ScenarioStepper {
 public:
  // `deployment`, `route` and (when non-null) `shared_shadow` must outlive
  // the stepper; they are the shared world a fleet builds once.
  ScenarioStepper(const Scenario& s, const ran::Deployment& deployment,
                  const geo::Route& route, const ran::ShadowMap* shared_shadow);

  std::size_t total_ticks() const { return total_ticks_; }
  std::size_t ticks_done() const { return tick_; }
  bool done() const { return tick_ >= total_ticks_; }

  // Advances one tick and writes its record into `rec`. `rec` is reset
  // first (vectors cleared, scalars re-initialized) so a caller-owned
  // scratch record can be reused across calls without reallocating.
  void step(trace::TickRecord& rec);

 private:
  Scenario s_;
  ran::MobilityManager manager_;
  std::unique_ptr<ue::MobilityModel> mobility_;
  Rng data_rng_;
  Seconds dt_;
  std::size_t total_ticks_;
  std::size_t tick_ = 0;
  Meters prev_s_;
  // Bulk-TCP recovery state (see step()): end of the last interruption.
  Seconds halted_until_{-1.0};
  bool was_halted_ = false;
  // Manager output, reused across ticks (zero steady-state allocation).
  ran::TickResult res_;
  // Tick latency sampled 1-in-16 (deterministic stride). Widened from
  // 1-in-4 when the batched radio pipeline made a tick cheap enough that
  // the two clock reads dominated the obs overhead budget.
  obs::SampleEvery tick_sampler_{4};
  // Flight-recorder tick spans sampled 1-in-64: enough to see the serving
  // cells and throughput move under a Perfetto timeline without flooding
  // the ring (a 30-min drive is 36k ticks). HO activity always emits —
  // the vivisection ticks are never sampled away.
  obs::SampleEvery tick_event_sampler_{6};
};

}  // namespace p5g::sim
