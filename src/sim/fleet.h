// Fleet simulation: N UEs driving/walking concurrently over ONE shared
// deployment — the population workload behind the paper's per-carrier
// claims (HO rates, coverage, outage are all statements about many phones
// in one radio environment, measured there with a single drive phone).
//
// Determinism contract:
//   * Per-UE RNG streams are split from the fleet seed (fleet_ue_seed), so
//     any single UE is reproducible in isolation — rerun just that UE via
//     fleet_ue_scenario + FleetEnv and its trace matches byte for byte.
//   * UE 0 inherits the fleet seed, a zero stagger offset, and (with an
//     empty mobility mix) the base mobility, and the shared environment is
//     built by the exact construction sequence run_scenario(Scenario) uses
//     — so an N=1 fleet with an empty mix is byte-identical to
//     run_scenario(base).
//   * Results are independent of worker count and schedule (every UE owns
//     its streams; shared state is read-only during runs).
//
// Memory contract: the fleet never materializes N full TraceLogs.
// run_fleet folds every tick straight into a trace::SummaryAccumulator —
// no UE's tick vector ever exists. The streaming for_each_ue_trace path
// materializes at most `threads` x cohort_ues logs at any moment (one
// cohort per pool task), handing each to the consumer as the cohort
// finishes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ran/mobility_manager.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace p5g::sim {

struct FleetScenario {
  // Template every UE derives from; carries the fleet seed. UE 0 runs this
  // scenario verbatim (modulo name) when the mobility mix is empty.
  Scenario base;
  std::size_t n_ues = 1;
  // UE i starts i * stagger_m metres along the shared route (wrapped to the
  // route length), spreading the fleet over the corridor instead of
  // launching every UE from the origin.
  Meters stagger_m{0.0};
  // Round-robin mobility assignment: UE i moves as mobility_mix[i % size].
  // Empty (the default) gives every UE base.mobility. Note the route shape
  // itself is always built from base.mobility — mixed-in walkers/drivers
  // share the base corridor.
  std::vector<MobilityKind> mobility_mix;
  // UEs stepped in lockstep by one pool task (a "cohort"). The task steps
  // its UEs tick-major over the shared deployment so the cell index and
  // shadow fields stay cache-hot across UEs, and pool scheduling overhead
  // amortizes over the cohort instead of recurring per UE. 0 (the default)
  // resolves to the tuned width — see fleet_cohort_ues(); 1 reproduces the
  // old one-task-per-UE granularity. Results are identical for any value.
  std::size_t cohort_ues = 0;
};

// The cohort width a fleet actually runs with (resolves the 0 = auto
// default). bench_fleet records it beside its timings.
std::size_t fleet_cohort_ues(const FleetScenario& f);

// Seed of UE `ue`'s scenario. UE 0 inherits the fleet seed unchanged;
// every other UE gets an independent SplitMix64-derived stream. Pure
// function of (fleet_seed, ue) — no fleet state needed.
std::uint64_t fleet_ue_seed(std::uint64_t fleet_seed, std::size_t ue);

// The exact Scenario the fleet runs for UE `ue`: derived seed, staggered
// start, mobility from the mix, name "<base.name>/ue<ue>".
Scenario fleet_ue_scenario(const FleetScenario& f, std::size_t ue);

// The shared world every UE of a fleet runs over: one route, one deployment
// along it, one shadow map resolved for all UEs. Built with the same
// construction sequence (and RNG stream consumption) as
// run_scenario(Scenario), which is what makes single-UE reproduction and
// the N=1 byte-identity guarantee hold. Not movable: the deployment's
// spatial index and the shadow map are position-dependent internals.
class FleetEnv {
 public:
  explicit FleetEnv(const FleetScenario& f);
  FleetEnv(const FleetEnv&) = delete;
  FleetEnv& operator=(const FleetEnv&) = delete;

  const geo::Route& route() const { return route_; }
  const ran::Deployment& deployment() const { return deployment_; }
  const ran::ShadowMap& shadow() const { return shadow_; }

 private:
  Rng rng_;  // consumed during construction only (kept for member order)
  geo::Route route_;
  Rng dep_rng_;
  ran::Deployment deployment_;
  ran::ShadowMap shadow_;
};

// Runs UE `ue` of the fleet in isolation over `env` and returns its full
// trace — byte-identical to what the fleet produced for that UE.
trace::TraceLog run_fleet_ue(const FleetScenario& f, const FleetEnv& env,
                             std::size_t ue);

// What the fleet keeps per UE: identity + the streaming trace reduction.
struct UeSummary {
  std::size_t ue = 0;
  std::uint64_t seed = 0;
  MobilityKind mobility = MobilityKind::kFreeway;
  Meters start_offset_m{0.0};
  trace::TraceSummary trace;

  bool operator==(const UeSummary&) const = default;
};

struct FleetResult {
  std::vector<UeSummary> ues;  // indexed by UE, always n_ues entries
  // Quarantined UEs (one entry per UE whose task threw), ascending by UE.
  // Their `ues` slots carry identity (ue/seed/mobility/offset) but a
  // default-zero trace. RunError::seed replays the failure in isolation via
  // run_fleet_ue.
  std::vector<RunError> errors;

  bool ok() const { return errors.empty(); }
};

// Checkpoint/resume policy for run_fleet. With a non-empty `path` the run
// persists a sim::FleetCheckpoint (see sim/checkpoint.h) of every completed
// UE — after each `every_k` completions and once at the end — through the
// durable atomic writer, so a killed run loses at most `every_k` UEs of
// work. With `resume` set, a valid checkpoint for the SAME fleet
// (seed + n_ues) skips its UEs; an invalid, corrupt, or mismatched
// checkpoint is rejected (with a manifest-visible counter) and the run
// restarts from scratch. Resumed output is byte-identical to an
// uninterrupted run.
struct FleetCheckpointOptions {
  std::string path;          // empty = no checkpointing
  std::size_t every_k = 0;   // 0 = only the final checkpoint
  bool resume = false;
};

// Streams every UE's full trace through `consume`, which is called from
// pool workers (concurrently — it must be thread-safe) in unspecified UE
// order; at most `threads` logs are alive at once. `threads` = 0 uses one
// worker per hardware thread. A UE task that throws is quarantined: its
// RunError is in the returned report (ascending by UE) and `consume` is
// simply never called for it — the rest of the fleet still runs.
std::vector<RunError> for_each_ue_trace(
    const FleetScenario& f,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads = 0);

// Subset variant: runs only the listed UEs (the resume path re-runs just
// the UEs a checkpoint is missing; tests replay single UEs).
std::vector<RunError> for_each_ue_trace_subset(
    const FleetScenario& f, std::span<const std::size_t> ues,
    const std::function<void(std::size_t ue, const Scenario& s,
                             const trace::TraceLog& log)>& consume,
    unsigned threads = 0);

// Runs the whole fleet on the shared thread pool and returns the per-UE
// summaries in UE order. Deterministic in `f` (any thread count); UE tasks
// that fail are quarantined into FleetResult::errors instead of killing the
// run.
FleetResult run_fleet(const FleetScenario& f, unsigned threads = 0);

// Checkpointing/resuming variant (see FleetCheckpointOptions). The final
// checkpoint excludes quarantined UEs, so a later --resume retries exactly
// the failed and unfinished ones.
FleetResult run_fleet(const FleetScenario& f, const FleetCheckpointOptions& ckpt,
                      unsigned threads = 0);

}  // namespace p5g::sim
