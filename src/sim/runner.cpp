#include "sim/runner.h"

#include <algorithm>
#include <thread>

#include "common/thread_pool.h"
#include "obs/timer.h"

namespace p5g::sim {

namespace {

// Dispatches scenarios[i] -> out[i] over a pool. `run_one` must be safe to
// call concurrently for distinct indices.
template <typename RunOne>
std::vector<trace::TraceLog> sweep(std::span<const Scenario> scenarios,
                                   unsigned threads, RunOne run_one) {
  static obs::Counter& m_sweeps = obs::registry().counter("p5g.sim.sweeps");
  static obs::Counter& m_sweep_scenarios =
      obs::registry().counter("p5g.sim.sweep_scenarios");
  static obs::Histogram& m_sweep_ms =
      obs::registry().histogram("p5g.sim.sweep_ms");
  const obs::ObsTimer sweep_timer(m_sweep_ms);
  m_sweeps.add(1);
  m_sweep_scenarios.add(scenarios.size());

  std::vector<trace::TraceLog> out(scenarios.size());
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t want = std::max<std::size_t>(scenarios.size(), 1);
  if (want < threads) threads = static_cast<unsigned>(want);
  if (threads <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) out[i] = run_one(i);
    return out;
  }
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    pool.submit([i, &out, &run_one] { out[i] = run_one(i); });
  }
  pool.wait_idle();
  return out;
}

}  // namespace

std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           unsigned threads) {
  return sweep(scenarios, threads,
               [&](std::size_t i) { return run_scenario(scenarios[i]); });
}

std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           const ran::Deployment& deployment,
                                           const geo::Route& route,
                                           unsigned threads) {
  return sweep(scenarios, threads, [&](std::size_t i) {
    return run_scenario(scenarios[i], deployment, route);
  });
}

}  // namespace p5g::sim
