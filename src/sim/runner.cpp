#include "sim/runner.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/chaos.h"
#include "common/thread_pool.h"
#include "obs/timer.h"

namespace p5g::sim {

namespace {

// Dispatches scenarios[i] -> out.logs[i] over a pool, quarantining any task
// that throws. `run_one` must be safe to call concurrently for distinct
// indices.
template <typename RunOne>
SweepResult sweep(std::span<const Scenario> scenarios, unsigned threads,
                  RunOne run_one) {
  static obs::Counter& m_sweeps = obs::registry().counter("p5g.sim.sweeps");
  static obs::Counter& m_sweep_scenarios =
      obs::registry().counter("p5g.sim.sweep_scenarios");
  static obs::Counter& m_quarantined =
      obs::registry().counter("p5g.resilience.scenarios_quarantined");
  static obs::Histogram& m_sweep_ms =
      obs::registry().histogram("p5g.sim.sweep_ms");
  const obs::ObsTimer sweep_timer(m_sweep_ms);
  m_sweeps.add(1);
  m_sweep_scenarios.add(scenarios.size());

  SweepResult res;
  res.logs.resize(scenarios.size());
  std::mutex err_mu;
  // The task boundary: chaos injection points sit here (outside the
  // simulation, so an un-faulted scenario's RNG streams are untouched) and
  // any exception is quarantined with enough identity to replay the failure
  // in isolation.
  auto guarded = [&](std::size_t i) {
    try {
      chaos::maybe_stall_task(i);
      chaos::maybe_fault_task(i);
      res.logs[i] = run_one(i);
    } catch (const std::exception& e) {
      m_quarantined.add(1);
      const std::lock_guard<std::mutex> lock(err_mu);
      res.errors.push_back({i, scenarios[i].seed, scenarios[i].name, e.what()});
    } catch (...) {
      m_quarantined.add(1);
      const std::lock_guard<std::mutex> lock(err_mu);
      res.errors.push_back(
          {i, scenarios[i].seed, scenarios[i].name, "unknown exception"});
    }
  };

  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t want = std::max<std::size_t>(scenarios.size(), 1);
  if (want < threads) threads = static_cast<unsigned>(want);
  if (threads <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) guarded(i);
  } else {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      pool.submit([i, &guarded] { guarded(i); });
    }
    // guarded() already captured everything; the pool-level collector is
    // the backstop for exceptions outside it (none on this path).
    static_cast<void>(pool.wait_idle());
  }
  // Completion order is schedule-dependent; the report is not.
  std::sort(res.errors.begin(), res.errors.end(),
            [](const RunError& a, const RunError& b) { return a.index < b.index; });
  return res;
}

[[noreturn]] void throw_first(const SweepResult& res) {
  const RunError& e = res.errors.front();
  throw std::runtime_error("run_scenarios: scenario " + std::to_string(e.index) +
                           " ('" + e.name + "', seed " + std::to_string(e.seed) +
                           ") failed: " + e.cause +
                           (res.errors.size() > 1
                                ? " (+" + std::to_string(res.errors.size() - 1) +
                                      " more)"
                                : ""));
}

}  // namespace

SweepResult run_scenarios_isolated(std::span<const Scenario> scenarios,
                                   unsigned threads) {
  return sweep(scenarios, threads,
               [&](std::size_t i) { return run_scenario(scenarios[i]); });
}

SweepResult run_scenarios_isolated(std::span<const Scenario> scenarios,
                                   const ran::Deployment& deployment,
                                   const geo::Route& route, unsigned threads) {
  return sweep(scenarios, threads, [&](std::size_t i) {
    return run_scenario(scenarios[i], deployment, route);
  });
}

std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           unsigned threads) {
  SweepResult res = run_scenarios_isolated(scenarios, threads);
  if (!res.ok()) throw_first(res);
  return std::move(res.logs);
}

std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           const ran::Deployment& deployment,
                                           const geo::Route& route,
                                           unsigned threads) {
  SweepResult res = run_scenarios_isolated(scenarios, deployment, route, threads);
  if (!res.ok()) throw_first(res);
  return std::move(res.logs);
}

}  // namespace p5g::sim
