// Fleet checkpoint/resume.
//
// A FleetCheckpoint is the durable record of a partially completed fleet
// run: the fleet's identity (seed, size) plus every finished UE's
// UeSummary. Because fleet_ue_seed makes each UE independently replayable,
// a resumed run simply skips the checkpointed UEs and re-runs the rest —
// and the stitched result is byte-identical to an uninterrupted run
// (doubles round-trip through the file as raw bit patterns).
//
// On-disk format (version 1, little-endian, sealed with CRC-32):
//
//   u32 magic      'P5GC' (0x43473550)
//   u32 version    1
//   u64 fleet_seed
//   u64 n_ues
//   u64 count                      -- completed entries that follow
//   count x entry:
//     u64 ue, u64 seed, u32 mobility, f64 start_offset_m
//     u64 ticks, f64 duration, f64 distance,
//     f64 mean_throughput_mbps, f64 mean_rtt_ms,
//     f64 lte_halted_s, f64 nr_halted_s, f64 any_halted_s,
//     i32 reports, i32 handovers, i32 ho_success,
//     i32 ho_prep_failure, i32 ho_exec_failure, i32 ho_rlf_reestablish
//   u32 crc32 over every preceding byte
//
// Files are written via io::atomic_write_file (tmp + fsync + rename), so a
// kill mid-checkpoint leaves the previous checkpoint intact. Loading
// rejects — with a reason — anything truncated, version-skewed, CRC-bad,
// or belonging to a different fleet; the caller then restarts cleanly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "sim/fleet.h"

namespace p5g::sim {

struct FleetCheckpoint {
  std::uint64_t fleet_seed = 0;
  std::uint64_t n_ues = 0;
  std::vector<UeSummary> done;  // completed UEs, ascending ue order

  bool operator==(const FleetCheckpoint&) const = default;
};

// In-memory binary round trip (exposed for tests and tooling).
std::string encode_checkpoint(const FleetCheckpoint& c);
// nullopt on any corruption; `why`, when non-null, receives the reason.
std::optional<FleetCheckpoint> decode_checkpoint(std::string_view bytes,
                                                 std::string* why = nullptr);

// Durable file persistence (atomic write with retry).
io::IoResult save_checkpoint(const std::string& path, const FleetCheckpoint& c);
// nullopt when the file is missing or invalid (`why` explains which).
std::optional<FleetCheckpoint> load_checkpoint(const std::string& path,
                                               std::string* why = nullptr);

}  // namespace p5g::sim
