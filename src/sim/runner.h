// Parallel scenario sweeps with failure isolation.
//
// Every Scenario owns its seed and every run_scenario() call builds (or is
// handed) immutable shared state, so independent scenarios can run on a
// thread pool with results that are byte-identical to a serial loop — the
// i-th output is always run_scenario(scenarios[i]), whatever the schedule.
//
// Failure isolation: a scenario task that throws (a contract trip, a chaos
// injection, bad input) is quarantined — its slot stays a default TraceLog,
// a RunError records its index/seed/cause — and every other scenario still
// runs to completion. run_scenarios_isolated surfaces the quarantine
// report; the legacy run_scenarios wrappers throw if anything was
// quarantined (after finishing the rest), preserving their all-or-nothing
// contract.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace p5g::sim {

// One quarantined task: which element of the sweep (or which UE of a
// fleet) failed, the seed to replay it in isolation, and why.
struct RunError {
  std::size_t index = 0;       // scenario index / UE number
  std::uint64_t seed = 0;      // scenario seed — replays the failure alone
  std::string name;            // scenario name
  std::string cause;           // exception text

  bool operator==(const RunError&) const = default;
};

struct SweepResult {
  // logs[i] corresponds to scenarios[i]; quarantined slots hold a default
  // (empty) TraceLog and appear in `errors`.
  std::vector<trace::TraceLog> logs;
  std::vector<RunError> errors;  // sorted by index

  bool ok() const { return errors.empty(); }
};

// Runs each scenario concurrently on `threads` workers (0 = one per
// hardware thread), quarantining failures. Successful slots are
// byte-identical to a serial run_scenario(s) loop, whatever the schedule
// and whichever other slots failed.
SweepResult run_scenarios_isolated(std::span<const Scenario> scenarios,
                                   unsigned threads = 0);

// Variant that reuses one deployment/route across all scenarios (the
// paper's repeated walking loops). Deployment and Route are only read.
SweepResult run_scenarios_isolated(std::span<const Scenario> scenarios,
                                   const ran::Deployment& deployment,
                                   const geo::Route& route,
                                   unsigned threads = 0);

// All-or-nothing wrappers: equivalent to calling run_scenario(s) for each
// element serially; if any scenario was quarantined they throw
// std::runtime_error naming the first failure (the rest of the sweep still
// ran — one bad scenario no longer kills the process mid-sweep).
std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           unsigned threads = 0);
std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           const ran::Deployment& deployment,
                                           const geo::Route& route,
                                           unsigned threads = 0);

}  // namespace p5g::sim
