// Parallel scenario sweeps.
//
// Every Scenario owns its seed and every run_scenario() call builds (or is
// handed) immutable shared state, so independent scenarios can run on a
// thread pool with results that are byte-identical to a serial loop — the
// i-th output is always run_scenario(scenarios[i]), whatever the schedule.
#pragma once

#include <span>
#include <vector>

#include "sim/scenario.h"

namespace p5g::sim {

// Runs each scenario concurrently on `threads` workers (0 = one per
// hardware thread) and returns the logs in input order. Equivalent to
// calling run_scenario(s) for each element serially.
std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           unsigned threads = 0);

// Variant that reuses one deployment/route across all scenarios (the
// paper's repeated walking loops). Deployment and Route are only read.
std::vector<trace::TraceLog> run_scenarios(std::span<const Scenario> scenarios,
                                           const ran::Deployment& deployment,
                                           const geo::Route& route,
                                           unsigned threads = 0);

}  // namespace p5g::sim
