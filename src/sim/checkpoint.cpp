#include "sim/checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace p5g::sim {

namespace {

constexpr std::uint32_t kMagic = 0x43473550u;  // 'P5GC' little-endian
constexpr std::uint32_t kVersion = 1;

// ------------------------------------------------------------- encoding --
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

// Doubles travel as their IEEE-754 bit pattern: the round trip is exact,
// which is what makes a resumed run byte-identical to an uninterrupted one.
void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

// ------------------------------------------------------------- decoding --
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool i32(int& v) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::optional<FleetCheckpoint> reject(std::string* why, const char* reason) {
  if (why) *why = reason;
  static obs::Counter& m_rejected =
      obs::registry().counter("p5g.resilience.checkpoint_rejected");
  m_rejected.add(1);
  return std::nullopt;
}

}  // namespace

std::string encode_checkpoint(const FleetCheckpoint& c) {
  std::string out;
  out.reserve(28 + c.done.size() * 124);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, c.fleet_seed);
  put_u64(out, c.n_ues);
  put_u64(out, static_cast<std::uint64_t>(c.done.size()));
  for (const UeSummary& u : c.done) {
    put_u64(out, static_cast<std::uint64_t>(u.ue));
    put_u64(out, u.seed);
    put_u32(out, static_cast<std::uint32_t>(u.mobility));
    put_f64(out, u.start_offset_m.v);
    const trace::TraceSummary& t = u.trace;
    put_u64(out, static_cast<std::uint64_t>(t.ticks));
    put_f64(out, t.duration.v);
    put_f64(out, t.distance.v);
    put_f64(out, t.mean_throughput_mbps);
    put_f64(out, t.mean_rtt_ms.v);
    put_f64(out, t.lte_halted_s.v);
    put_f64(out, t.nr_halted_s.v);
    put_f64(out, t.any_halted_s.v);
    put_i32(out, t.reports);
    put_i32(out, t.handovers);
    put_i32(out, t.ho_success);
    put_i32(out, t.ho_prep_failure);
    put_i32(out, t.ho_exec_failure);
    put_i32(out, t.ho_rlf_reestablish);
  }
  put_u32(out, io::crc32(out));
  return out;
}

std::optional<FleetCheckpoint> decode_checkpoint(std::string_view bytes,
                                                 std::string* why) {
  if (bytes.size() < 4) return reject(why, "checkpoint truncated (no seal)");
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  Reader tail(bytes.substr(bytes.size() - 4));
  std::uint32_t stored_crc = 0;
  static_cast<void>(tail.u32(stored_crc));
  if (io::crc32(body) != stored_crc) {
    return reject(why, "checkpoint CRC mismatch (torn or corrupted file)");
  }

  Reader r(body);
  std::uint32_t magic = 0, version = 0;
  if (!r.u32(magic) || magic != kMagic) {
    return reject(why, "checkpoint magic mismatch (not a fleet checkpoint)");
  }
  if (!r.u32(version) || version != kVersion) {
    return reject(why, "checkpoint version unsupported");
  }
  FleetCheckpoint c;
  std::uint64_t count = 0;
  if (!r.u64(c.fleet_seed) || !r.u64(c.n_ues) || !r.u64(count)) {
    return reject(why, "checkpoint header truncated");
  }
  if (count > c.n_ues) {
    return reject(why, "checkpoint claims more completed UEs than the fleet has");
  }
  c.done.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    UeSummary u;
    std::uint64_t ue = 0, ticks = 0;
    std::uint32_t mobility = 0;
    trace::TraceSummary& t = u.trace;
    const bool ok = r.u64(ue) && r.u64(u.seed) && r.u32(mobility) &&
                    r.f64(u.start_offset_m.v) && r.u64(ticks) &&
                    r.f64(t.duration.v) && r.f64(t.distance.v) &&
                    r.f64(t.mean_throughput_mbps) && r.f64(t.mean_rtt_ms.v) &&
                    r.f64(t.lte_halted_s.v) && r.f64(t.nr_halted_s.v) &&
                    r.f64(t.any_halted_s.v) && r.i32(t.reports) &&
                    r.i32(t.handovers) && r.i32(t.ho_success) &&
                    r.i32(t.ho_prep_failure) && r.i32(t.ho_exec_failure) &&
                    r.i32(t.ho_rlf_reestablish);
    if (!ok) return reject(why, "checkpoint entry truncated");
    u.ue = static_cast<std::size_t>(ue);
    u.mobility = static_cast<MobilityKind>(mobility);
    t.ticks = static_cast<std::size_t>(ticks);
    if (u.ue >= c.n_ues) return reject(why, "checkpoint entry UE out of range");
    if (!c.done.empty() && c.done.back().ue >= u.ue) {
      return reject(why, "checkpoint entries out of order");
    }
    c.done.push_back(std::move(u));
  }
  if (r.remaining() != 0) return reject(why, "checkpoint has trailing bytes");
  return c;
}

io::IoResult save_checkpoint(const std::string& path, const FleetCheckpoint& c) {
  const io::IoResult r = io::atomic_write_file(path, encode_checkpoint(c));
  if (r.ok) {
    static obs::Counter& m_saves =
        obs::registry().counter("p5g.resilience.checkpoint_saves");
    m_saves.add(1);
  }
  return r;
}

std::optional<FleetCheckpoint> load_checkpoint(const std::string& path,
                                               std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (why) *why = "checkpoint file missing or unreadable";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_checkpoint(buf.str(), why);
}

}  // namespace p5g::sim
