// Scenario definitions and the drive/walk simulator that produces TraceLogs.
//
// A Scenario fixes everything the paper's field methodology fixed: carrier,
// architecture, NR band for the area, route shape, mobility profile, NSA
// traffic mode, duration, and the RNG seed.
#pragma once

#include <cstdint>
#include <string>

#include "ran/deployment.h"
#include "ran/faults.h"
#include "ran/ho_policy.h"
#include "trace/trace.h"
#include "tput/throughput.h"

namespace p5g::sim {

enum class MobilityKind {
  kFreeway,  // near-constant high speed on a long route
  kCity,     // stop-and-go grid driving
  kWalkLoop, // pedestrian loop (the D1/D2 prediction datasets)
};

struct Scenario {
  std::string name = "scenario";
  ran::CarrierProfile carrier = ran::profile_opx();
  ran::Arch arch = ran::Arch::kNsa;
  radio::Band nr_band = radio::Band::kNrLow;
  radio::Band lte_band = radio::Band::kLteMid;
  MobilityKind mobility = MobilityKind::kFreeway;
  double speed_kmh = 110.0;            // ignored for kWalkLoop
  Seconds duration{1800.0};
  Hertz tick_hz{20.0};
  tput::TrafficMode traffic_mode = tput::TrafficMode::kNrOnly;
  bool mnbh_releases_scg = true;       // §6.1 coverage mechanism (ablatable)
  // Arc length along the route at which the UE starts (wrapped to the route
  // length at run time). 0 — the default, and the historical behaviour —
  // starts at the route origin; fleets stagger their UEs with this.
  Meters start_offset_m{0.0};
  // Failure injection (ran/faults.h). The default all-zero profile keeps
  // the trace bit-identical to a fault-free run of the same seed.
  ran::FaultProfile faults{};
  // HO configuration space (ran/ho_config.h): layered per-cell/per-band
  // overrides of A3 offset, A5 thresholds, hysteresis, TTT, and per-event
  // enables. The empty default resolves to the carrier event sets and is
  // byte-identical to the pre-config-space simulator.
  ran::HoConfigMap ho_config{};
  // Policy consuming `ho_config` (ran/ho_policy.h): kStatic installs it
  // as-is, kAdaptive runs the speed/ping-pong TTT-hysteresis controller.
  ran::HoPolicyKind ho_policy = ran::HoPolicyKind::kStatic;
  ran::AdaptiveHoParams adaptive_ho{};
  // Forces the scalar (pre-batching) observe loop in the MobilityManager.
  // The batched SoA pipeline is byte-identical, so this exists only for
  // A/B benchmarking and the identity tests that prove that claim.
  bool scalar_radio_path = false;
  std::uint64_t seed = 1;
};

// Runs the scenario end to end and returns the full trace.
trace::TraceLog run_scenario(const Scenario& s);

// Variant that reuses an existing deployment (so repeated loops over the
// same area — the paper's 6x/10x walking loops — see the same towers).
// `shared_shadow`, when non-null, must be ran::resolve_shadow_fields() of
// `deployment` (a fleet resolves it once instead of once per UE); traces
// are byte-identical either way.
trace::TraceLog run_scenario(const Scenario& s, const ran::Deployment& deployment,
                             const geo::Route& route,
                             const ran::ShadowMap* shared_shadow = nullptr);

// Builds the route a scenario would use (exposed so callers can share it).
geo::Route build_route(const Scenario& s, Rng& rng);

}  // namespace p5g::sim
