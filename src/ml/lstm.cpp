#include "ml/lstm.h"

#include "common/units.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace p5g::ml {
namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void softmax_inplace(std::vector<double>& v) {
  const double m = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& s : v) {
    s = std::exp(s - m);
    sum += s;
  }
  for (double& s : v) s /= sum;
}

// Minimal Adam optimizer over a flat parameter vector.
class Adam {
 public:
  Adam(std::size_t n, double lr) : lr_(lr), m_(n, 0.0), v_(n, 0.0) {}
  void step(std::vector<double>& params, const std::vector<double>& grad) {
    ++t_;
    const double bc1 = 1.0 - std::pow(0.9, t_);
    const double bc2 = 1.0 - std::pow(0.999, t_);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i] = 0.9 * m_[i] + 0.1 * grad[i];
      v_[i] = 0.999 * v_[i] + 0.001 * grad[i] * grad[i];
      params[i] -= lr_ * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + 1e-8);
    }
  }

 private:
  double lr_;
  int t_ = 0;
  std::vector<double> m_, v_;
};

}  // namespace

StackedLstm::StackedLstm(Config config) : config_(config) {
  Rng rng(config_.seed);
  layers_.resize(static_cast<std::size_t>(config_.layers));
  for (int l = 0; l < config_.layers; ++l) {
    LayerParams& p = layers_[static_cast<std::size_t>(l)];
    p.input_dim = l == 0 ? config_.input_dim : config_.hidden;
    p.hidden = config_.hidden;
    const std::size_t w_size =
        static_cast<std::size_t>(4 * p.hidden) * static_cast<std::size_t>(p.input_dim + p.hidden);
    const double scale = 1.0 / std::sqrt(static_cast<double>(p.input_dim + p.hidden));
    p.w.resize(w_size);
    for (double& w : p.w) w = rng.normal(0.0, scale);
    p.b.assign(static_cast<std::size_t>(4 * p.hidden), 0.0);
    // Forget-gate bias starts positive (standard trick for gradient flow).
    for (int h = 0; h < p.hidden; ++h) p.b[static_cast<std::size_t>(p.hidden + h)] = 1.0;
  }
  out_w_.resize(static_cast<std::size_t>(config_.n_classes * config_.hidden));
  const double out_scale = 1.0 / std::sqrt(static_cast<double>(config_.hidden));
  for (double& w : out_w_) w = rng.normal(0.0, out_scale);
  out_b_.assign(static_cast<std::size_t>(config_.n_classes), 0.0);
}

void StackedLstm::forward_layer(const LayerParams& p, const Sequence& in,
                                LayerCache& cache) const {
  const std::size_t steps = in.size();
  const auto h = static_cast<std::size_t>(p.hidden);
  const auto d = static_cast<std::size_t>(p.input_dim);
  cache.x = in;
  cache.i.assign(steps, std::vector<double>(h));
  cache.f.assign(steps, std::vector<double>(h));
  cache.g.assign(steps, std::vector<double>(h));
  cache.o.assign(steps, std::vector<double>(h));
  cache.c.assign(steps, std::vector<double>(h));
  cache.h.assign(steps, std::vector<double>(h));
  cache.tanh_c.assign(steps, std::vector<double>(h));

  std::vector<double> h_prev(h, 0.0), c_prev(h, 0.0);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t j = 0; j < 4 * h; ++j) {
      double z = p.b[j];
      const double* wrow = p.w.data() + j * (d + h);
      for (std::size_t k = 0; k < d; ++k) z += wrow[k] * in[t][k];
      for (std::size_t k = 0; k < h; ++k) z += wrow[d + k] * h_prev[k];
      const std::size_t gate = j / h, unit = j % h;
      switch (gate) {
        case 0: cache.i[t][unit] = sigmoid(z); break;
        case 1: cache.f[t][unit] = sigmoid(z); break;
        case 2: cache.g[t][unit] = std::tanh(z); break;
        case 3: cache.o[t][unit] = sigmoid(z); break;
      }
    }
    for (std::size_t u = 0; u < h; ++u) {
      cache.c[t][u] = cache.f[t][u] * c_prev[u] + cache.i[t][u] * cache.g[t][u];
      cache.tanh_c[t][u] = std::tanh(cache.c[t][u]);
      cache.h[t][u] = cache.o[t][u] * cache.tanh_c[t][u];
    }
    h_prev = cache.h[t];
    c_prev = cache.c[t];
  }
}

Sequence StackedLstm::backward_layer(const LayerParams& p, const LayerCache& cache,
                                     const Sequence& grad_h_top, std::vector<double>& gw,
                                     std::vector<double>& gb) const {
  const std::size_t steps = cache.x.size();
  const auto h = static_cast<std::size_t>(p.hidden);
  const auto d = static_cast<std::size_t>(p.input_dim);
  Sequence grad_x(steps, std::vector<double>(d, 0.0));
  std::vector<double> dh_next(h, 0.0), dc_next(h, 0.0);
  std::vector<double> dz(4 * h);
  const std::vector<double> zeros(h, 0.0);

  for (std::size_t t = steps; t-- > 0;) {
    std::vector<double> dh(h);
    for (std::size_t u = 0; u < h; ++u) dh[u] = grad_h_top[t][u] + dh_next[u];

    std::vector<double> dc(h);
    for (std::size_t u = 0; u < h; ++u) {
      const double tc = cache.tanh_c[t][u];
      dc[u] = dh[u] * cache.o[t][u] * (1.0 - tc * tc) + dc_next[u];
    }
    const std::vector<double>& c_prev = t > 0 ? cache.c[t - 1] : zeros;
    for (std::size_t u = 0; u < h; ++u) {
      const double di = dc[u] * cache.g[t][u];
      const double df = dc[u] * c_prev[u];
      const double dg = dc[u] * cache.i[t][u];
      const double do_ = dh[u] * cache.tanh_c[t][u];
      dz[0 * h + u] = di * cache.i[t][u] * (1.0 - cache.i[t][u]);
      dz[1 * h + u] = df * cache.f[t][u] * (1.0 - cache.f[t][u]);
      dz[2 * h + u] = dg * (1.0 - cache.g[t][u] * cache.g[t][u]);
      dz[3 * h + u] = do_ * cache.o[t][u] * (1.0 - cache.o[t][u]);
      dc_next[u] = dc[u] * cache.f[t][u];
    }

    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    const std::vector<double>& h_prev = t > 0 ? cache.h[t - 1] : zeros;
    for (std::size_t j = 0; j < 4 * h; ++j) {
      const double dzj = dz[j];
      if (bit_equal(std::abs(dzj), 0.0)) continue;  // exact ±0 skip
      double* gwrow = gw.data() + j * (d + h);
      const double* wrow = p.w.data() + j * (d + h);
      for (std::size_t k = 0; k < d; ++k) {
        gwrow[k] += dzj * cache.x[t][k];
        grad_x[t][k] += dzj * wrow[k];
      }
      for (std::size_t k = 0; k < h; ++k) {
        gwrow[d + k] += dzj * h_prev[k];
        dh_next[k] += dzj * wrow[d + k];
      }
      gb[j] += dzj;
    }
  }
  return grad_x;
}

void StackedLstm::fit(std::span<const Sequence> sequences, std::span<const int> labels) {
  if (sequences.empty()) return;
  Rng rng(config_.seed ^ 0xBEEF);
  const auto h = static_cast<std::size_t>(config_.hidden);
  const auto k = static_cast<std::size_t>(config_.n_classes);

  // Subsample (class-balanced-ish: keep all minority-class sequences).
  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);
  if (sequences.size() > config_.max_train_sequences) {
    // Shuffle, then prefer positive (non-zero label) samples.
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.uniform_index(i + 1)]);
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return (labels[a] != 0) > (labels[b] != 0);
    });
    order.resize(config_.max_train_sequences);
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.uniform_index(i + 1)]);
    }
  }

  std::vector<Adam> opts;
  for (const LayerParams& p : layers_) opts.emplace_back(p.w.size() + p.b.size(), config_.learning_rate);
  Adam out_opt(out_w_.size() + out_b_.size(), config_.learning_rate);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t n : order) {
      const Sequence& seq = sequences[n];
      if (seq.empty()) continue;

      // Forward through the stack.
      std::vector<LayerCache> caches(layers_.size());
      const Sequence* in = &seq;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        forward_layer(layers_[l], *in, caches[l]);
        in = &caches[l].h;
      }
      const std::vector<double>& top = caches.back().h.back();

      std::vector<double> logits(k);
      for (std::size_t c = 0; c < k; ++c) {
        double z = out_b_[c];
        for (std::size_t u = 0; u < h; ++u) z += out_w_[c * h + u] * top[u];
        logits[c] = z;
      }
      softmax_inplace(logits);

      // Output-layer gradients (cross entropy).
      std::vector<double> gow(out_w_.size(), 0.0), gob(out_b_.size(), 0.0);
      std::vector<double> dtop(h, 0.0);
      for (std::size_t c = 0; c < k; ++c) {
        const double delta =
            logits[c] - (static_cast<std::size_t>(labels[n]) == c ? 1.0 : 0.0);
        gob[c] = delta;
        for (std::size_t u = 0; u < h; ++u) {
          gow[c * h + u] = delta * top[u];
          dtop[u] += delta * out_w_[c * h + u];
        }
      }

      // Backward through the stack. Only the last step receives gradient
      // from the head; recurrent paths spread it backwards.
      const std::size_t steps = seq.size();
      Sequence grad_h(steps, std::vector<double>(h, 0.0));
      grad_h.back() = dtop;
      for (std::size_t l = layers_.size(); l-- > 0;) {
        std::vector<double> gw(layers_[l].w.size(), 0.0), gb(layers_[l].b.size(), 0.0);
        Sequence grad_in = backward_layer(layers_[l], caches[l], grad_h, gw, gb);

        // Clip and apply.
        const double norm = std::sqrt(
            std::inner_product(gw.begin(), gw.end(), gw.begin(), 0.0) +
            std::inner_product(gb.begin(), gb.end(), gb.begin(), 0.0));
        const double clip = norm > 5.0 ? 5.0 / norm : 1.0;
        std::vector<double> flat(gw);
        flat.insert(flat.end(), gb.begin(), gb.end());
        for (double& g : flat) g *= clip;
        std::vector<double> params(layers_[l].w);
        params.insert(params.end(), layers_[l].b.begin(), layers_[l].b.end());
        opts[l].step(params, flat);
        std::copy(params.begin(), params.begin() + static_cast<long>(layers_[l].w.size()),
                  layers_[l].w.begin());
        std::copy(params.begin() + static_cast<long>(layers_[l].w.size()), params.end(),
                  layers_[l].b.begin());

        grad_h = std::move(grad_in);
      }

      std::vector<double> out_params(out_w_);
      out_params.insert(out_params.end(), out_b_.begin(), out_b_.end());
      std::vector<double> out_grad(gow);
      out_grad.insert(out_grad.end(), gob.begin(), gob.end());
      out_opt.step(out_params, out_grad);
      std::copy(out_params.begin(), out_params.begin() + static_cast<long>(out_w_.size()),
                out_w_.begin());
      std::copy(out_params.begin() + static_cast<long>(out_w_.size()), out_params.end(),
                out_b_.begin());
    }
  }
  trained_ = true;
}

std::vector<double> StackedLstm::predict_proba(const Sequence& seq) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const auto k = static_cast<std::size_t>(config_.n_classes);
  if (seq.empty()) return std::vector<double>(k, 1.0 / static_cast<double>(k));
  std::vector<LayerCache> caches(layers_.size());
  const Sequence* in = &seq;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    forward_layer(layers_[l], *in, caches[l]);
    in = &caches[l].h;
  }
  const std::vector<double>& top = caches.back().h.back();
  std::vector<double> logits(k);
  for (std::size_t c = 0; c < k; ++c) {
    double z = out_b_[c];
    for (std::size_t u = 0; u < h; ++u) z += out_w_[c * h + u] * top[u];
    logits[c] = z;
  }
  softmax_inplace(logits);
  return logits;
}

int StackedLstm::predict(const Sequence& seq) const {
  const std::vector<double> p = predict_proba(seq);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace p5g::ml
