// Regression trees (exact greedy, squared-error splits) — the weak learner
// for the gradient-boosted classifier baseline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace p5g::ml {

struct TreeConfig {
  int max_depth = 3;
  std::size_t min_leaf = 5;
};

class RegressionTree {
 public:
  // Fits to (x, target) with optional per-sample Newton weights `hess`
  // (leaf value = sum(target) / sum(hess); pass empty for plain mean).
  void fit(std::span<const std::vector<double>> x, std::span<const double> target,
           std::span<const double> hess, const TreeConfig& config);

  double predict(std::span<const double> x) const;
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;      // -1: leaf
    double threshold = 0.0;
    int left = -1, right = -1;
    double value = 0.0;    // leaf output
  };

  int build(const std::vector<std::size_t>& idx,
            std::span<const std::vector<double>> x, std::span<const double> target,
            std::span<const double> hess, int depth, const TreeConfig& config);

  std::vector<Node> nodes_;
};

}  // namespace p5g::ml
