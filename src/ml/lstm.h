// Stacked LSTM classifier — the Ozturk et al. [57] baseline: a
// sequence-to-one classifier over windows of (location, radio) features.
// Implemented from scratch: forward, full BPTT, Adam.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace p5g::ml {

// One training sequence: seq[t] is the feature vector at step t.
using Sequence = std::vector<std::vector<double>>;

class StackedLstm {
 public:
  struct Config {
    int input_dim = 4;
    int hidden = 24;
    int layers = 2;
    int n_classes = 2;
    int epochs = 10;
    double learning_rate = 0.01;
    std::size_t max_train_sequences = 4000;  // subsample cap for tractability
    std::uint64_t seed = 42;
  };

  explicit StackedLstm(Config config);

  void fit(std::span<const Sequence> sequences, std::span<const int> labels);
  std::vector<double> predict_proba(const Sequence& seq) const;
  int predict(const Sequence& seq) const;
  bool trained() const { return trained_; }

 private:
  struct LayerParams {
    // Gate order: input, forget, cell, output. Row-major [4H x (I+H)] + [4H].
    std::vector<double> w;
    std::vector<double> b;
    int input_dim = 0;
    int hidden = 0;
  };
  struct LayerCache {
    std::vector<std::vector<double>> x, i, f, g, o, c, h, tanh_c;
  };

  void forward_layer(const LayerParams& p, const Sequence& in, LayerCache& cache) const;
  // Returns gradient w.r.t. the layer's inputs; accumulates into gw/gb.
  Sequence backward_layer(const LayerParams& p, const LayerCache& cache,
                          const Sequence& grad_h_top, std::vector<double>& gw,
                          std::vector<double>& gb) const;

  Config config_;
  std::vector<LayerParams> layers_;
  std::vector<double> out_w_;  // [n_classes x hidden]
  std::vector<double> out_b_;  // [n_classes]
  bool trained_ = false;
};

}  // namespace p5g::ml
