#include "ml/gbc.h"

#include <algorithm>
#include <cmath>

namespace p5g::ml {
namespace {

void softmax_inplace(std::vector<double>& scores) {
  const double m = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& s : scores) {
    s = std::exp(s - m);
    sum += s;
  }
  for (double& s : scores) s /= sum;
}

}  // namespace

void GradientBoostedClassifier::fit(std::span<const std::vector<double>> x,
                                    std::span<const int> y) {
  rounds_.clear();
  const std::size_t n = x.size();
  const auto k = static_cast<std::size_t>(config_.n_classes);
  if (n == 0 || k < 2) return;

  // Priors: class log-frequencies.
  std::vector<double> counts(k, 1.0);  // Laplace smoothing
  for (int label : y) counts[static_cast<std::size_t>(label)] += 1.0;
  priors_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c)
    priors_[c] = std::log(counts[c] / static_cast<double>(n + k));

  // Current raw scores F[c][i].
  std::vector<std::vector<double>> f(k, std::vector<double>(n));
  for (std::size_t c = 0; c < k; ++c)
    std::fill(f[c].begin(), f[c].end(), priors_[c]);

  std::vector<double> grad(n), hess(n);
  std::vector<double> probs(k);
  const double kk = static_cast<double>(k);

  for (int round = 0; round < config_.n_rounds; ++round) {
    rounds_.emplace_back(k);
    for (std::size_t c = 0; c < k; ++c) {
      // Softmax residuals: r_i = 1{y_i=c} - p_c(x_i); Newton weights
      // h_i = p(1-p) * (k-1)/k (Friedman's multiclass leaf estimate).
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t cc = 0; cc < k; ++cc) probs[cc] = f[cc][i];
        softmax_inplace(probs);
        const double p = probs[c];
        grad[i] = (static_cast<std::size_t>(y[i]) == c ? 1.0 : 0.0) - p;
        hess[i] = std::max(1e-6, p * (1.0 - p)) * kk / (kk - 1.0);
      }
      RegressionTree& tree = rounds_.back()[c];
      tree.fit(x, grad, hess, config_.tree);
      for (std::size_t i = 0; i < n; ++i) {
        f[c][i] += config_.learning_rate * tree.predict(x[i]);
      }
    }
  }
}

std::vector<double> GradientBoostedClassifier::predict_proba(
    std::span<const double> x) const {
  const auto k = static_cast<std::size_t>(config_.n_classes);
  std::vector<double> scores(priors_.empty() ? std::vector<double>(k, 0.0) : priors_);
  scores.resize(k, 0.0);
  for (const auto& round : rounds_) {
    for (std::size_t c = 0; c < k; ++c) {
      scores[c] += config_.learning_rate * round[c].predict(x);
    }
  }
  softmax_inplace(scores);
  return scores;
}

int GradientBoostedClassifier::predict(std::span<const double> x) const {
  const std::vector<double> p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace p5g::ml
