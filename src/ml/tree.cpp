#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace p5g::ml {
namespace {

double leaf_value(const std::vector<std::size_t>& idx, std::span<const double> target,
                  std::span<const double> hess) {
  double num = 0.0, den = 0.0;
  for (std::size_t i : idx) {
    num += target[i];
    den += hess.empty() ? 1.0 : hess[i];
  }
  if (std::abs(den) < 1e-9) return 0.0;
  return num / den;
}

}  // namespace

void RegressionTree::fit(std::span<const std::vector<double>> x,
                         std::span<const double> target, std::span<const double> hess,
                         const TreeConfig& config) {
  nodes_.clear();
  if (x.empty()) return;
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(idx, x, target, hess, 0, config);
}

int RegressionTree::build(const std::vector<std::size_t>& idx,
                          std::span<const std::vector<double>> x,
                          std::span<const double> target, std::span<const double> hess,
                          int depth, const TreeConfig& config) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_id)].value = leaf_value(idx, target, hess);

  if (depth >= config.max_depth || idx.size() < 2 * config.min_leaf) return node_id;

  // Exact greedy split search: minimize sum of squared errors of the mean.
  const std::size_t n_features = x[0].size();
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0;
  for (std::size_t i : idx) total_sum += target[i];
  const double total_sq = total_sum * total_sum / static_cast<double>(idx.size());

  std::vector<std::size_t> sorted(idx);
  for (std::size_t f = 0; f < n_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      left_sum += target[sorted[k]];
      const std::size_t nl = k + 1;
      const std::size_t nr = sorted.size() - nl;
      if (nl < config.min_leaf || nr < config.min_leaf) continue;
// Value equality is the split criterion: two samples whose feature values
// compare equal (regardless of bit pattern, e.g. 0.0 vs -0.0) cannot be
// separated by any threshold, so the comparison is intentionally exact.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfloat-equal"
      if (x[sorted[k]][f] == x[sorted[k + 1]][f]) continue;  // cannot split here
#pragma GCC diagnostic pop
      const double right_sum = total_sum - left_sum;
      const double gain = left_sum * left_sum / static_cast<double>(nl) +
                          right_sum * right_sum / static_cast<double>(nr) - total_sq;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x[sorted[k]][f] + x[sorted[k + 1]][f]);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left, right;
  for (std::size_t i : idx) {
    (x[i][static_cast<std::size_t>(best_feature)] <= best_threshold ? left : right)
        .push_back(i);
  }
  if (left.size() < config.min_leaf || right.size() < config.min_leaf) return node_id;

  const int l = build(left, x, target, hess, depth + 1, config);
  const int r = build(right, x, target, hess, depth + 1, config);
  Node& nd = nodes_[static_cast<std::size_t>(node_id)];
  nd.feature = best_feature;
  nd.threshold = best_threshold;
  nd.left = l;
  nd.right = r;
  return node_id;
}

double RegressionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    cur = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

}  // namespace p5g::ml
