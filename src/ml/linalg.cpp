#include "ml/linalg.h"

#include "common/units.h"

#include <cmath>
#include <utility>

namespace p5g::ml {

bool solve_linear_system(Matrix a, std::vector<double> b, std::vector<double>& x) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) return false;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      // Exact zero test (the skip is an optimization and must also catch
      // -0.0, whose row operation could flip signed zeros in the matrix).
      if (bit_equal(std::abs(f), 0.0)) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a.at(r, c) * x[c];
    x[r] = acc / a.at(r, r);
  }
  return true;
}

}  // namespace p5g::ml
