#include "ml/metrics.h"

#include "common/units.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace p5g::ml {

ConfusionMatrix::ConfusionMatrix(int n_classes)
    : n_(n_classes), cells_(static_cast<std::size_t>(n_classes * n_classes), 0) {}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= n_ || predicted < 0 || predicted >= n_) return;
  ++cells_[static_cast<std::size_t>(truth * n_ + predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_[static_cast<std::size_t>(truth * n_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (int c = 0; c < n_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t tp = count(cls, cls), fp = 0;
  for (int t = 0; t < n_; ++t) {
    if (t != cls) fp += count(t, cls);
  }
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::recall(int cls) const {
  std::size_t tp = count(cls, cls), fn = 0;
  for (int p = 0; p < n_; ++p) {
    if (p != cls) fn += count(cls, p);
  }
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls), r = recall(cls);
  // precision/recall are non-negative, so p + r can only be exactly +0.0.
  return bit_equal(p + r, 0.0) ? 0.0 : 2.0 * p * r / (p + r);
}

ClassificationScores ConfusionMatrix::macro_over(std::span<const int> classes) const {
  ClassificationScores s;
  if (classes.empty()) return s;
  for (int c : classes) {
    s.precision += precision(c);
    s.recall += recall(c);
    s.f1 += f1(c);
  }
  const double n = static_cast<double>(classes.size());
  s.precision /= n;
  s.recall /= n;
  s.f1 /= n;
  s.accuracy = accuracy();
  return s;
}

ClassificationScores ConfusionMatrix::binary_collapsed() const {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (int t = 0; t < n_; ++t) {
    for (int p = 0; p < n_; ++p) {
      const std::size_t c = count(t, p);
      const bool truth_pos = t != 0, pred_pos = p != 0;
      if (truth_pos && pred_pos) tp += c;
      else if (!truth_pos && pred_pos) fp += c;
      else if (truth_pos && !pred_pos) fn += c;
      else tn += c;
    }
  }
  ClassificationScores s;
  s.precision = tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  s.recall = tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  s.f1 = s.precision + s.recall > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  s.accuracy = total_ ? static_cast<double>(tp + tn) / static_cast<double>(total_) : 0.0;
  return s;
}

namespace {

struct EventRun {
  std::size_t begin;  // first sample of the run
  std::size_t end;    // one past the last sample
  int cls;
  bool matched = false;
};

std::vector<EventRun> extract_runs(std::span<const int> labels) {
  std::vector<EventRun> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) continue;
    if (i == 0 || labels[i - 1] != labels[i]) {
      std::size_t j = i;
      while (j < labels.size() && labels[j] == labels[i]) ++j;
      out.push_back({i, j, labels[i], false});
    }
  }
  return out;
}

}  // namespace

EventScores score_events(std::span<const int> truth, std::span<const int> predicted,
                         std::size_t tolerance) {
  // Interval matching: a sustained predicted run is a *warning*; it counts
  // for a true event when the true onset (+/- tolerance) overlaps the run.
  // One predicted run may cover several true events (dense HO bursts); a
  // run that covers none is a false warning.
  EventScores out;
  std::vector<EventRun> t_ev = extract_runs(truth);
  std::vector<EventRun> p_ev = extract_runs(predicted);
  out.true_events = t_ev.size();
  out.predicted_events = p_ev.size();

  for (EventRun& te : t_ev) {
    const std::size_t lo = te.begin > tolerance ? te.begin - tolerance : 0;
    const std::size_t hi = te.begin + tolerance;
    for (EventRun& pe : p_ev) {
      if (pe.cls != te.cls) continue;
      if (pe.begin <= hi && pe.end >= lo) {  // overlap with onset window
        pe.matched = true;
        te.matched = true;
      }
    }
    if (te.matched) ++out.matched;
  }
  std::size_t matched_pred = 0;
  for (const EventRun& pe : p_ev) {
    if (pe.matched) ++matched_pred;
  }

  ClassificationScores& s = out.scores;
  s.precision = out.predicted_events
                    ? static_cast<double>(matched_pred) / static_cast<double>(out.predicted_events)
                    : 0.0;
  s.recall = out.true_events
                 ? static_cast<double>(out.matched) / static_cast<double>(out.true_events)
                 : 0.0;
  s.f1 = s.precision + s.recall > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  // Sample-level accuracy on the binary collapse (for the Table 3 column).
  std::size_t correct = 0;
  const std::size_t n = std::min(truth.size(), predicted.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((truth[i] != 0) == (predicted[i] != 0)) ++correct;
  }
  s.accuracy = n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
  return out;
}

}  // namespace p5g::ml
