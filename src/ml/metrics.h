// Classification metrics. HO prediction data is heavily imbalanced (the
// paper: HOs are 0.4 % of data points), so the headline metrics are
// imbalance-oblivious: precision/recall/F1 of the positive (HO) classes,
// alongside raw accuracy (Table 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace p5g::ml {

struct ClassificationScores {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int n_classes);
  void add(int truth, int predicted);
  std::size_t count(int truth, int predicted) const;
  std::size_t total() const { return total_; }
  int classes() const { return n_; }

  double accuracy() const;
  // Per-class one-vs-rest metrics.
  double precision(int cls) const;
  double recall(int cls) const;
  double f1(int cls) const;
  // Macro average over the given classes (e.g. all HO classes, skipping the
  // majority "no HO" class 0).
  ClassificationScores macro_over(std::span<const int> classes) const;
  // Binary collapse: class 0 = negative, everything else positive. This is
  // the Table 3 style "did we predict a HO" score.
  ClassificationScores binary_collapsed() const;

 private:
  int n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // n x n, row = truth
};

// Event-level scoring with tolerance: a predicted HO within `tolerance`
// samples of a true HO of the same class counts as a hit. This mirrors how
// HO prediction quality is actually consumed (did we warn in time), and is
// the scoring used for the Table 3 / Fig. 15 reproductions.
struct EventScores {
  ClassificationScores scores;
  std::size_t true_events = 0;
  std::size_t predicted_events = 0;
  std::size_t matched = 0;
};
EventScores score_events(std::span<const int> truth, std::span<const int> predicted,
                         std::size_t tolerance);

}  // namespace p5g::ml
