// Regression components used by Prognos' report predictor:
//  * TriangularSmoother — kernel smoothing of RRS streams (Long & Sikdar
//    style) that removes small-scale fading / measurement noise.
//  * RidgeRegression — generic L2-regularized least squares.
//  * SignalForecaster — the paper's light-weight signal predictor: smooth
//    the last history window, fit a linear trend, extrapolate over the
//    prediction window.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace p5g::ml {

// Weighted moving average with a triangular kernel of half-width `radius`
// samples (weight 1 at the center decaying linearly to 0).
class TriangularSmoother {
 public:
  explicit TriangularSmoother(std::size_t radius) : radius_(radius) {}
  // Smooths the full series (offline form, used on windows).
  std::vector<double> smooth(std::span<const double> xs) const;

 private:
  std::size_t radius_;
};

class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}
  // X: n x d design matrix rows; y: n targets. Adds an intercept column.
  bool fit(std::span<const std::vector<double>> x, std::span<const double> y);
  double predict(std::span<const double> x) const;
  const std::vector<double>& coefficients() const { return coef_; }  // [d]+bias

 private:
  double lambda_;
  std::vector<double> coef_;  // last entry is the intercept
};

// Streaming per-cell RRS forecaster. A median-of-5 prefilter rejects
// impulsive fades (mmWave beam dips) before the triangular kernel smooths
// the window; a significance-damped linear trend is then fitted once per
// update and cached, so repeated forecast() calls are O(1).
class SignalForecaster {
 public:
  // `history_window` in samples; `smooth_radius` in samples of the
  // triangular kernel.
  SignalForecaster(std::size_t history_window, std::size_t smooth_radius);

  void add(double rrs);
  bool ready() const { return history_.size() >= 4; }
  // Forecast the value `steps_ahead` samples into the future by linear
  // extrapolation of the smoothed history window.
  double forecast(std::size_t steps_ahead) const;
  double last_smoothed() const;
  // Residual standard deviation of the trend fit (dB) — how noisy this
  // signal currently is; consumers scale decision margins with it.
  double residual_sigma() const;
  void reset();

 private:
  void refit() const;

  std::size_t window_;
  std::size_t radius_;
  TriangularSmoother smoother_;
  std::deque<double> history_;
  mutable bool fit_valid_ = false;
  mutable double level_ = -140.0;  // fitted value at the newest sample
  mutable double slope_ = 0.0;     // damped dB per sample
  mutable double residual_sigma_ = 0.0;
};

}  // namespace p5g::ml
