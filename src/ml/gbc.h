// Gradient Boosted Classifier — the Mei et al. [49] baseline: multiclass
// softmax gradient boosting over lower-layer radio features.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/tree.h"

namespace p5g::ml {

class GradientBoostedClassifier {
 public:
  struct Config {
    int n_rounds = 60;
    double learning_rate = 0.15;
    TreeConfig tree{};
    int n_classes = 2;
  };

  explicit GradientBoostedClassifier(Config config) : config_(config) {}

  // x: n samples x d features; y: class labels in [0, n_classes).
  void fit(std::span<const std::vector<double>> x, std::span<const int> y);

  std::vector<double> predict_proba(std::span<const double> x) const;
  int predict(std::span<const double> x) const;
  bool trained() const { return !rounds_.empty(); }

 private:
  Config config_;
  std::vector<double> priors_;                       // initial log-odds
  std::vector<std::vector<RegressionTree>> rounds_;  // [round][class]
};

}  // namespace p5g::ml
