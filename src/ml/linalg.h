// Tiny dense linear algebra for the ML components: row-major matrices,
// Gaussian elimination with partial pivoting. Sized for the small systems
// the library solves (ridge regression over a few dozen features).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace p5g::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b in place (A square). Returns false when singular.
bool solve_linear_system(Matrix a, std::vector<double> b, std::vector<double>& x);

}  // namespace p5g::ml
