#include "ml/regression.h"

#include <algorithm>
#include <cmath>

#include "ml/linalg.h"

namespace p5g::ml {

std::vector<double> TriangularSmoother::smooth(std::span<const double> xs) const {
  std::vector<double> out(xs.size());
  const auto r = static_cast<long>(radius_);
  for (long i = 0; i < static_cast<long>(xs.size()); ++i) {
    double acc = 0.0, wsum = 0.0;
    for (long k = -r; k <= r; ++k) {
      const long j = i + k;
      if (j < 0 || j >= static_cast<long>(xs.size())) continue;
      const double w = 1.0 - std::abs(static_cast<double>(k)) / (static_cast<double>(r) + 1.0);
      acc += w * xs[static_cast<std::size_t>(j)];
      wsum += w;
    }
    out[static_cast<std::size_t>(i)] = wsum > 0 ? acc / wsum : xs[static_cast<std::size_t>(i)];
  }
  return out;
}

bool RidgeRegression::fit(std::span<const std::vector<double>> x,
                          std::span<const double> y) {
  if (x.empty() || x.size() != y.size()) return false;
  const std::size_t d = x[0].size() + 1;  // + intercept
  Matrix ata(d, d, 0.0);
  std::vector<double> aty(d, 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::vector<double> row(x[n]);
    row.push_back(1.0);
    for (std::size_t i = 0; i < d; ++i) {
      aty[i] += row[i] * y[n];
      for (std::size_t j = 0; j < d; ++j) ata.at(i, j) += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i + 1 < d; ++i) ata.at(i, i) += lambda_;  // not the bias
  return solve_linear_system(std::move(ata), std::move(aty), coef_);
}

double RidgeRegression::predict(std::span<const double> x) const {
  if (coef_.empty()) return 0.0;
  double acc = coef_.back();
  const std::size_t d = std::min(x.size(), coef_.size() - 1);
  for (std::size_t i = 0; i < d; ++i) acc += coef_[i] * x[i];
  return acc;
}

SignalForecaster::SignalForecaster(std::size_t history_window, std::size_t smooth_radius)
    : window_(history_window), radius_(smooth_radius), smoother_(smooth_radius) {}

void SignalForecaster::add(double rrs) {
  history_.push_back(rrs);
  while (history_.size() > window_) history_.pop_front();
  fit_valid_ = false;
}

void SignalForecaster::refit() const {
  fit_valid_ = true;
  level_ = history_.empty() ? -140.0 : history_.back();
  slope_ = 0.0;
  residual_sigma_ = 0.0;
  if (history_.size() < 4) return;

  // Median-of-5 prefilter: impulsive fades (deep mmWave beam dips) must not
  // bend the trend line.
  std::vector<double> xs(history_.begin(), history_.end());
  std::vector<double> med(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double w[5];
    int k = 0;
    for (long j = static_cast<long>(i) - 2; j <= static_cast<long>(i) + 2; ++j) {
      if (j >= 0 && j < static_cast<long>(xs.size())) w[k++] = xs[static_cast<std::size_t>(j)];
    }
    // Insertion sort of <= 5 values (std::sort here trips a GCC
    // -Warray-bounds false positive when inlined).
    for (int a = 1; a < k; ++a) {
      const double v = w[a];
      int b = a - 1;
      while (b >= 0 && w[b] > v) {
        w[b + 1] = w[b];
        --b;
      }
      w[b + 1] = v;
    }
    med[i] = w[k / 2];
  }
  const std::vector<double> sm = smoother_.smooth(med);
  const std::size_t n = sm.size();

  // OLS of value against sample index (closed form).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i);
    sx += xi;
    sy += sm[i];
    sxx += xi * xi;
    sxy += xi * sm[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-9) {
    level_ = sm.back();
    return;
  }
  double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;

  // Shrink statistically insignificant slopes: extrapolating noise produces
  // spurious event-trigger predictions. t = slope / stderr(slope); weight
  // ramps from 0 (|t| = 0) to 1 (|t| >= 2).
  if (n >= 6) {
    // Residuals are measured against the MEDIAN-FILTERED series, not the
    // kernel-smoothed one: smoothing hides the true noise level and would
    // make random-walk windows look like significant trends.
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double fit = intercept + slope * static_cast<double>(i);
      sse += (med[i] - fit) * (med[i] - fit);
    }
    const double sigma2 = sse / (dn - 2.0);
    residual_sigma_ = std::sqrt(sigma2);
    const double se = std::sqrt(sigma2 * dn / denom) * 1.3;  // median-filter
                                                             // correlation
    if (se > 1e-12) {
      const double t = std::abs(slope) / se;
      const double w = std::min(1.0, (t / 2.0) * (t / 2.0));
      slope *= w;
    }
  }
  slope_ = slope;
  level_ = intercept + slope * (dn - 1.0);
}

double SignalForecaster::last_smoothed() const {
  if (!fit_valid_) refit();
  return level_;
}

double SignalForecaster::residual_sigma() const {
  if (!fit_valid_) refit();
  return residual_sigma_;
}

double SignalForecaster::forecast(std::size_t steps_ahead) const {
  if (!fit_valid_) refit();
  return level_ + slope_ * static_cast<double>(steps_ahead);
}

void SignalForecaster::reset() {
  history_.clear();
  fit_valid_ = false;
}

}  // namespace p5g::ml
