// Live prediction: feed a drive tick-by-tick into Prognos, exactly as an
// on-device agent would, and print a console timeline of predictions vs
// what actually happened.
//
//   $ ./examples/live_prediction
#include <cstdio>

#include "core/prognos.h"
#include "core/trace_adapter.h"
#include "sim/scenario.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  sim::Scenario drive;
  drive.carrier = ran::profile_opx();
  drive.arch = ran::Arch::kNsa;
  drive.nr_band = radio::Band::kNrLow;
  drive.mobility = sim::MobilityKind::kFreeway;
  drive.speed_kmh = 110.0;
  drive.duration = Seconds{300.0};
  drive.seed = 77;
  const trace::TraceLog log = sim::run_scenario(drive);

  // The UE-visible configuration (what RRC signalled to the phone).
  std::vector<ran::EventConfig> configs;
  for (const auto& c : ran::default_lte_event_set(drive.nr_band)) configs.push_back(c);
  for (const auto& c : ran::default_nsa_nr_event_set(drive.nr_band)) configs.push_back(c);

  core::Prognos::Config cfg;
  core::Prognos prognos(configs, cfg);
  prognos.bootstrap_with_frequent_patterns();

  std::printf("time     event\n-----    -----\n");
  std::optional<ran::HoType> last_prediction;
  for (const trace::TickRecord& tick : log.ticks) {
    const core::PrognosInput in = core::from_tick(tick);
    const core::PrognosPrediction p = prognos.tick(in);

    // Print prediction onsets (not every tick they persist).
    if (p.ho != last_prediction) {
      if (p.ho) {
        std::printf("%7.2fs  PREDICT %s within ~1 s (ho_score %.2f%s)\n", tick.time.v,
                    ran::ho_name(*p.ho).data(), p.ho_score,
                    p.from_predicted_reports ? ", from forecasted MRs" : "");
      }
      last_prediction = p.ho;
    }
    for (const ran::MeasurementReport& r : tick.reports) {
      std::printf("%7.2fs    MR %s on %s leg\n", tick.time.v,
                  ran::event_name(r.event).data(),
                  r.scope == ran::MeasScope::kServingNr ? "NR" : "LTE");
    }
    for (const ran::HandoverRecord& h : tick.ho_started) {
      std::printf("%7.2fs  >> HO %s (T1 %.0f ms, T2 %.0f ms)\n", tick.time.v,
                  ran::ho_name(h.type).data(), h.timing.t1_ms.v, h.timing.t2_ms.v);
    }
  }

  std::printf("\n%zu handovers in %.0f s; patterns learned online: %ld\n",
              log.handovers.size(), log.duration().v,
              prognos.learner().patterns_learned_total());
  p5g::obs::export_from_args(argc, argv, "live_prediction");
  p5g::trace::export_trace_from_args(argc, argv, "live_prediction");
  return 0;
}
