// Quickstart: simulate a 15-minute NSA low-band freeway drive, inspect the
// handovers the mobility manager produced, then run Prognos over the trace
// and report its prediction quality.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "analysis/ho_stats.h"
#include "analysis/prediction.h"
#include "common/stats.h"
#include "energy/power_model.h"
#include "sim/scenario.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  // 1. Describe the drive.
  sim::Scenario scenario;
  scenario.name = "quickstart";
  scenario.carrier = ran::profile_opx();
  scenario.arch = ran::Arch::kNsa;
  scenario.nr_band = radio::Band::kNrLow;
  scenario.mobility = sim::MobilityKind::kFreeway;
  scenario.speed_kmh = 110.0;
  scenario.duration = Seconds{900.0};  // 15 minutes
  scenario.seed = 42;

  // 2. Run it.
  const trace::TraceLog log = sim::run_scenario(scenario);
  std::printf("drive: %.1f km in %.1f min, %zu ticks @ %.0f Hz\n",
              m_to_km(log.distance()), log.duration().v / 60.0, log.ticks.size(),
              log.tick_hz.v);

  // 3. Handover statistics.
  std::printf("\nhandovers (%zu total, one every %.2f km):\n", log.handovers.size(),
              analysis::km_per_handover(log));
  for (const auto& [type, stats] : analysis::duration_by_type(log.handovers)) {
    std::printf("  %-5s x%-4zu  T1 %5.1f ms  T2 %5.1f ms  total %5.1f ms\n",
                ran::ho_name(type).data(), stats.total_ms.size(),
                stats::mean(stats.t1_ms), stats::mean(stats.t2_ms),
                stats::mean(stats.total_ms));
  }

  // 4. Energy cost of mobility.
  const energy::EnergySummary e = energy::summarize(log.handovers);
  std::printf("\nHO energy: %.1f J (%.2f mAh), mean per-HO power %.2f W\n", e.joules,
              e.mah, e.mean_power);

  // 5. Predict handovers with Prognos (incremental, no training).
  analysis::PrognosRunOptions opts;
  const analysis::PrognosRunResult result = analysis::run_prognos({log}, opts);
  const std::vector<int> truth = analysis::ground_truth(log);
  const ml::EventScores scores = ml::score_events(
      truth, result.predicted, static_cast<std::size_t>(1.5 * log.tick_hz.v));
  std::printf("\nPrognos: F1 %.3f  precision %.3f  recall %.3f  (%zu/%zu HOs matched)\n",
              scores.scores.f1, scores.scores.precision, scores.scores.recall,
              scores.matched, scores.true_events);
  if (!result.lead_times_s.empty()) {
    std::printf("median prediction lead time: %.0f ms\n",
                stats::median(result.lead_times_s) * 1000.0);
  }
  p5g::obs::export_from_args(argc, argv, "quickstart");
  p5g::trace::export_trace_from_args(argc, argv, "quickstart");
  return 0;
}
