// HO-aware streaming (the §7.4 use case as an application developer would
// wire it): run a 16K VoD session over a recorded 5G drive three ways —
// stock robustMPC, robustMPC with ground-truth HO hints, and robustMPC with
// Prognos — and compare QoE.
//
//   $ ./examples/ho_aware_streaming
#include <cstdio>

#include "analysis/phase_tput.h"
#include "apps/vod_session.h"
#include "sim/scenario.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  // 1. Record a 20-minute mmWave city drive (bandwidth + control plane).
  sim::Scenario drive;
  drive.carrier = ran::profile_opx();
  drive.carrier.density_scale = 0.6;
  drive.arch = ran::Arch::kNsa;
  drive.nr_band = radio::Band::kNrLow;
  drive.mobility = sim::MobilityKind::kCity;
  drive.speed_kmh = 45.0;
  drive.duration = Seconds{1200.0};
  drive.traffic_mode = tput::TrafficMode::kDual;  // LTE leg keeps the floor up
  drive.seed = 2024;
  const trace::TraceLog log = sim::run_scenario(drive);
  std::printf("drive: %.1f km, %zu handovers\n", m_to_km(log.distance()),
              log.handovers.size());

  // 2. Build the three throughput-hint signals.
  const auto ho_scores = analysis::calibrate_ho_scores(log);
  const apps::HoSignal gt = apps::ground_truth_signal(log, ho_scores);
  core::Prognos::Config prognos_cfg;  // defaults: incremental, bootstrapped
  const apps::HoSignal pr = apps::prognos_signal(log, prognos_cfg);

  // 3. Stream the 16K video over every qualifying 240-second window.
  const apps::LinkEmulator link = apps::LinkEmulator::from_trace(log);
  const apps::VideoProfile video = apps::panoramic_16k_profile();
  const auto windows = apps::window_starts(log, Seconds{240.0}, Seconds{120.0}, 400.0, 2.0);
  std::printf("streaming %zu windows of 240 s each\n\n", windows.size());

  struct Arm {
    const char* name;
    const apps::HoSignal* signal;
    double bitrate = 0.0, stall = 0.0;
  } arms[] = {{"robustMPC", nullptr, 0, 0},
              {"robustMPC-GT", &gt, 0, 0},
              {"robustMPC-PR (Prognos)", &pr, 0, 0}};

  for (Arm& arm : arms) {
    for (Seconds start : windows) {
      apps::MpcAbr abr(/*robust=*/true);
      const apps::VodResult r = apps::run_vod(abr, video, link, arm.signal, start);
      arm.bitrate += r.normalized_bitrate;
      arm.stall += r.stall_fraction;
    }
    const double n = static_cast<double>(windows.size());
    std::printf("%-24s bitrate %5.1f%% of max   stall %5.2f%% of playtime\n", arm.name,
                100.0 * arm.bitrate / n, 100.0 * arm.stall / n);
  }

  const double base_stall = arms[0].stall, pr_stall = arms[2].stall;
  if (base_stall > 0) {
    std::printf("\nPrognos removed %.0f%% of stall time (paper: 34.6-58.6%%).\n",
                100.0 * (base_stall - pr_stall) / base_stall);
  }
  p5g::obs::export_from_args(argc, argv, "ho_aware_streaming");
  p5g::trace::export_trace_from_args(argc, argv, "ho_aware_streaming");
  return 0;
}
