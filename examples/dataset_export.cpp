// Dataset export: generate a multi-carrier drive corpus (a small-scale
// Table 1 analogue) and persist every trace as CSV — the same release
// format as the paper's public artifact.
//
//   $ ./examples/dataset_export [scale] [output_dir]
//   $ ls out/  # OpX-freeway.csv, OpX-freeway.csv.ho.csv, ...
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/datasets.h"
#include "trace/trace.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.01;
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp/p5g_dataset";
  std::filesystem::create_directories(out_dir);

  std::printf("generating cross-country corpus at scale %.3f...\n", scale);
  const auto datasets = analysis::make_cross_country(scale, 7);

  int files = 0;
  for (const analysis::CarrierDataset& ds : datasets) {
    for (std::size_t i = 0; i < ds.segments.size(); ++i) {
      const std::string path = out_dir + "/" + ds.carrier.name + "-" +
                               ds.segments[i].label + "-" + std::to_string(i) + ".csv";
      if (const io::IoResult r = trace::write_csv(ds.segments[i].log, path); !r) {
        std::fprintf(stderr, "FAILED to write %s: %s\n", path.c_str(),
                     r.error.c_str());
        return 1;
      }
      ++files;
    }
    const analysis::DatasetSummary s = analysis::summarize_dataset(ds);
    std::printf("\n[%s] %d unique cells, %.0f km freeway + %.0f km city\n",
                s.carrier.c_str(), s.unique_cells, s.freeway_km, s.city_km);
    std::printf("  4G HOs %d | NSA procedures %d | SA HOs %d\n", s.lte_handovers,
                s.nsa_procedures, s.sa_handovers);
    std::printf("  minutes: LTE %.0f, NSA %.0f, SA %.0f (low %.0f / mid %.0f / mmW %.0f)\n",
                s.lte_minutes, s.nsa_minutes, s.sa_minutes, s.low_band_minutes,
                s.mid_band_minutes, s.mmwave_minutes);
  }
  std::printf("\nwrote %d trace files (plus .ho.csv companions) to %s\n", files,
              out_dir.c_str());

  // Round-trip check on one file so users trust the format.
  const std::string probe = out_dir + "/OpX-freeway-0.csv";
  const trace::TraceLog back = trace::read_csv(probe);
  std::printf("read-back check: %s -> %zu ticks, %zu handovers\n", probe.c_str(),
              back.ticks.size(), back.handovers.size());
  p5g::obs::export_from_args(argc, argv, "dataset_export");
  p5g::trace::export_trace_from_args(argc, argv, "dataset_export");
  return 0;
}
