# Empty compiler generated dependencies file for bench_fig16_ho_tput.
# This may be replaced when dependencies are built.
