file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_volumetric.dir/bench_fig6_volumetric.cpp.o"
  "CMakeFiles/bench_fig6_volumetric.dir/bench_fig6_volumetric.cpp.o.d"
  "bench_fig6_volumetric"
  "bench_fig6_volumetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_volumetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
