file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bootstrap.dir/bench_fig15_bootstrap.cpp.o"
  "CMakeFiles/bench_fig15_bootstrap.dir/bench_fig15_bootstrap.cpp.o.d"
  "bench_fig15_bootstrap"
  "bench_fig15_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
