file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_vod.dir/bench_fig14_vod.cpp.o"
  "CMakeFiles/bench_fig14_vod.dir/bench_fig14_vod.cpp.o.d"
  "bench_fig14_vod"
  "bench_fig14_vod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_vod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
