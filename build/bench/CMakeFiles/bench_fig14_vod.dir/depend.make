# Empty dependencies file for bench_fig14_vod.
# This may be replaced when dependencies are built.
