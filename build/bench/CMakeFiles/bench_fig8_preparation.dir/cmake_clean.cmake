file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_preparation.dir/bench_fig8_preparation.cpp.o"
  "CMakeFiles/bench_fig8_preparation.dir/bench_fig8_preparation.cpp.o.d"
  "bench_fig8_preparation"
  "bench_fig8_preparation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_preparation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
