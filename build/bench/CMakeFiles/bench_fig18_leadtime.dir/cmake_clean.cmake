file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_leadtime.dir/bench_fig18_leadtime.cpp.o"
  "CMakeFiles/bench_fig18_leadtime.dir/bench_fig18_leadtime.cpp.o.d"
  "bench_fig18_leadtime"
  "bench_fig18_leadtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_leadtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
