# Empty compiler generated dependencies file for bench_sec51_frequency.
# This may be replaced when dependencies are built.
