file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_frequency.dir/bench_sec51_frequency.cpp.o"
  "CMakeFiles/bench_sec51_frequency.dir/bench_sec51_frequency.cpp.o.d"
  "bench_sec51_frequency"
  "bench_sec51_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
