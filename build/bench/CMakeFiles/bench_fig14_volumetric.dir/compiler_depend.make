# Empty compiler generated dependencies file for bench_fig14_volumetric.
# This may be replaced when dependencies are built.
