file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_volumetric.dir/bench_fig14_volumetric.cpp.o"
  "CMakeFiles/bench_fig14_volumetric.dir/bench_fig14_volumetric.cpp.o.d"
  "bench_fig14_volumetric"
  "bench_fig14_volumetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_volumetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
