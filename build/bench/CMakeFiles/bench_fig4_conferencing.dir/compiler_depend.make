# Empty compiler generated dependencies file for bench_fig4_conferencing.
# This may be replaced when dependencies are built.
