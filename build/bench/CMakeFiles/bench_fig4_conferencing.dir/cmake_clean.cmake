file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_conferencing.dir/bench_fig4_conferencing.cpp.o"
  "CMakeFiles/bench_fig4_conferencing.dir/bench_fig4_conferencing.cpp.o.d"
  "bench_fig4_conferencing"
  "bench_fig4_conferencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_conferencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
