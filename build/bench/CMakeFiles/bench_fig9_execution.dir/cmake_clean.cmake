file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_execution.dir/bench_fig9_execution.cpp.o"
  "CMakeFiles/bench_fig9_execution.dir/bench_fig9_execution.cpp.o.d"
  "bench_fig9_execution"
  "bench_fig9_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
