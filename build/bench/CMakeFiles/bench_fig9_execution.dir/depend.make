# Empty dependencies file for bench_fig9_execution.
# This may be replaced when dependencies are built.
