# Empty dependencies file for bench_fig12_scgc_tput.
# This may be replaced when dependencies are built.
