file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gaming.dir/bench_fig5_gaming.cpp.o"
  "CMakeFiles/bench_fig5_gaming.dir/bench_fig5_gaming.cpp.o.d"
  "bench_fig5_gaming"
  "bench_fig5_gaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
