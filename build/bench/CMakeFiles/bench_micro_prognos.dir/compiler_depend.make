# Empty compiler generated dependencies file for bench_micro_prognos.
# This may be replaced when dependencies are built.
