file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_prognos.dir/bench_micro_prognos.cpp.o"
  "CMakeFiles/bench_micro_prognos.dir/bench_micro_prognos.cpp.o.d"
  "bench_micro_prognos"
  "bench_micro_prognos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_prognos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
