# Empty dependencies file for live_prediction.
# This may be replaced when dependencies are built.
