file(REMOVE_RECURSE
  "CMakeFiles/live_prediction.dir/live_prediction.cpp.o"
  "CMakeFiles/live_prediction.dir/live_prediction.cpp.o.d"
  "live_prediction"
  "live_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
