
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dataset_export.cpp" "examples/CMakeFiles/dataset_export.dir/dataset_export.cpp.o" "gcc" "examples/CMakeFiles/dataset_export.dir/dataset_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/p5g_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/p5g_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tput/CMakeFiles/p5g_tput.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/p5g_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/p5g_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p5g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/p5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
