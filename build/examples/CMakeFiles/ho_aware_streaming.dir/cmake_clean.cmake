file(REMOVE_RECURSE
  "CMakeFiles/ho_aware_streaming.dir/ho_aware_streaming.cpp.o"
  "CMakeFiles/ho_aware_streaming.dir/ho_aware_streaming.cpp.o.d"
  "ho_aware_streaming"
  "ho_aware_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ho_aware_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
