# Empty dependencies file for ho_aware_streaming.
# This may be replaced when dependencies are built.
