
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/p5g_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/p5g_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/p5g_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/p5g_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/geo_test.cpp" "tests/CMakeFiles/p5g_tests.dir/geo_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/geo_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/p5g_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ml_test.cpp" "tests/CMakeFiles/p5g_tests.dir/ml_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/ml_test.cpp.o.d"
  "/root/repo/tests/mobility_manager_test.cpp" "tests/CMakeFiles/p5g_tests.dir/mobility_manager_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/mobility_manager_test.cpp.o.d"
  "/root/repo/tests/pattern_store_test.cpp" "tests/CMakeFiles/p5g_tests.dir/pattern_store_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/pattern_store_test.cpp.o.d"
  "/root/repo/tests/radio_test.cpp" "tests/CMakeFiles/p5g_tests.dir/radio_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/radio_test.cpp.o.d"
  "/root/repo/tests/ran_deployment_test.cpp" "tests/CMakeFiles/p5g_tests.dir/ran_deployment_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/ran_deployment_test.cpp.o.d"
  "/root/repo/tests/ran_events_test.cpp" "tests/CMakeFiles/p5g_tests.dir/ran_events_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/ran_events_test.cpp.o.d"
  "/root/repo/tests/ran_handover_test.cpp" "tests/CMakeFiles/p5g_tests.dir/ran_handover_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/ran_handover_test.cpp.o.d"
  "/root/repo/tests/trace_sim_test.cpp" "tests/CMakeFiles/p5g_tests.dir/trace_sim_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/trace_sim_test.cpp.o.d"
  "/root/repo/tests/ue_energy_tput_test.cpp" "tests/CMakeFiles/p5g_tests.dir/ue_energy_tput_test.cpp.o" "gcc" "tests/CMakeFiles/p5g_tests.dir/ue_energy_tput_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/p5g_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/p5g_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tput/CMakeFiles/p5g_tput.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/p5g_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/p5g_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p5g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/p5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
