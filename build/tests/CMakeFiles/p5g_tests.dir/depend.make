# Empty dependencies file for p5g_tests.
# This may be replaced when dependencies are built.
