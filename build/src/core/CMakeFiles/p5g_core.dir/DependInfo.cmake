
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decision_learner.cpp" "src/core/CMakeFiles/p5g_core.dir/decision_learner.cpp.o" "gcc" "src/core/CMakeFiles/p5g_core.dir/decision_learner.cpp.o.d"
  "/root/repo/src/core/pattern_store.cpp" "src/core/CMakeFiles/p5g_core.dir/pattern_store.cpp.o" "gcc" "src/core/CMakeFiles/p5g_core.dir/pattern_store.cpp.o.d"
  "/root/repo/src/core/prognos.cpp" "src/core/CMakeFiles/p5g_core.dir/prognos.cpp.o" "gcc" "src/core/CMakeFiles/p5g_core.dir/prognos.cpp.o.d"
  "/root/repo/src/core/report_predictor.cpp" "src/core/CMakeFiles/p5g_core.dir/report_predictor.cpp.o" "gcc" "src/core/CMakeFiles/p5g_core.dir/report_predictor.cpp.o.d"
  "/root/repo/src/core/trace_adapter.cpp" "src/core/CMakeFiles/p5g_core.dir/trace_adapter.cpp.o" "gcc" "src/core/CMakeFiles/p5g_core.dir/trace_adapter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ran/CMakeFiles/p5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p5g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
