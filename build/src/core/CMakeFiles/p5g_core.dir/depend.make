# Empty dependencies file for p5g_core.
# This may be replaced when dependencies are built.
