file(REMOVE_RECURSE
  "CMakeFiles/p5g_core.dir/decision_learner.cpp.o"
  "CMakeFiles/p5g_core.dir/decision_learner.cpp.o.d"
  "CMakeFiles/p5g_core.dir/pattern_store.cpp.o"
  "CMakeFiles/p5g_core.dir/pattern_store.cpp.o.d"
  "CMakeFiles/p5g_core.dir/prognos.cpp.o"
  "CMakeFiles/p5g_core.dir/prognos.cpp.o.d"
  "CMakeFiles/p5g_core.dir/report_predictor.cpp.o"
  "CMakeFiles/p5g_core.dir/report_predictor.cpp.o.d"
  "CMakeFiles/p5g_core.dir/trace_adapter.cpp.o"
  "CMakeFiles/p5g_core.dir/trace_adapter.cpp.o.d"
  "libp5g_core.a"
  "libp5g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
