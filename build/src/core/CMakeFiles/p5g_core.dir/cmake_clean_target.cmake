file(REMOVE_RECURSE
  "libp5g_core.a"
)
