file(REMOVE_RECURSE
  "CMakeFiles/p5g_sim.dir/scenario.cpp.o"
  "CMakeFiles/p5g_sim.dir/scenario.cpp.o.d"
  "libp5g_sim.a"
  "libp5g_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
