file(REMOVE_RECURSE
  "libp5g_sim.a"
)
