# Empty dependencies file for p5g_sim.
# This may be replaced when dependencies are built.
