# Empty dependencies file for p5g_energy.
# This may be replaced when dependencies are built.
