file(REMOVE_RECURSE
  "libp5g_energy.a"
)
