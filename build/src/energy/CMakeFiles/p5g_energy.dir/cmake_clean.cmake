file(REMOVE_RECURSE
  "CMakeFiles/p5g_energy.dir/power_model.cpp.o"
  "CMakeFiles/p5g_energy.dir/power_model.cpp.o.d"
  "libp5g_energy.a"
  "libp5g_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
