
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/abr.cpp" "src/apps/CMakeFiles/p5g_apps.dir/abr.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/abr.cpp.o.d"
  "/root/repo/src/apps/ho_signal.cpp" "src/apps/CMakeFiles/p5g_apps.dir/ho_signal.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/ho_signal.cpp.o.d"
  "/root/repo/src/apps/link_emulator.cpp" "src/apps/CMakeFiles/p5g_apps.dir/link_emulator.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/link_emulator.cpp.o.d"
  "/root/repo/src/apps/qoe_models.cpp" "src/apps/CMakeFiles/p5g_apps.dir/qoe_models.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/qoe_models.cpp.o.d"
  "/root/repo/src/apps/vod_session.cpp" "src/apps/CMakeFiles/p5g_apps.dir/vod_session.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/vod_session.cpp.o.d"
  "/root/repo/src/apps/volumetric.cpp" "src/apps/CMakeFiles/p5g_apps.dir/volumetric.cpp.o" "gcc" "src/apps/CMakeFiles/p5g_apps.dir/volumetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/p5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p5g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/p5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p5g_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
