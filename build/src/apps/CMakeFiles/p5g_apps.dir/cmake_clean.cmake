file(REMOVE_RECURSE
  "CMakeFiles/p5g_apps.dir/abr.cpp.o"
  "CMakeFiles/p5g_apps.dir/abr.cpp.o.d"
  "CMakeFiles/p5g_apps.dir/ho_signal.cpp.o"
  "CMakeFiles/p5g_apps.dir/ho_signal.cpp.o.d"
  "CMakeFiles/p5g_apps.dir/link_emulator.cpp.o"
  "CMakeFiles/p5g_apps.dir/link_emulator.cpp.o.d"
  "CMakeFiles/p5g_apps.dir/qoe_models.cpp.o"
  "CMakeFiles/p5g_apps.dir/qoe_models.cpp.o.d"
  "CMakeFiles/p5g_apps.dir/vod_session.cpp.o"
  "CMakeFiles/p5g_apps.dir/vod_session.cpp.o.d"
  "CMakeFiles/p5g_apps.dir/volumetric.cpp.o"
  "CMakeFiles/p5g_apps.dir/volumetric.cpp.o.d"
  "libp5g_apps.a"
  "libp5g_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
