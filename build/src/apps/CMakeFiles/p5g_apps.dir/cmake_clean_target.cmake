file(REMOVE_RECURSE
  "libp5g_apps.a"
)
