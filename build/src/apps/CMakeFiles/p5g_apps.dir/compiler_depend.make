# Empty compiler generated dependencies file for p5g_apps.
# This may be replaced when dependencies are built.
