file(REMOVE_RECURSE
  "CMakeFiles/p5g_radio.dir/band.cpp.o"
  "CMakeFiles/p5g_radio.dir/band.cpp.o.d"
  "CMakeFiles/p5g_radio.dir/propagation.cpp.o"
  "CMakeFiles/p5g_radio.dir/propagation.cpp.o.d"
  "libp5g_radio.a"
  "libp5g_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
