# Empty dependencies file for p5g_radio.
# This may be replaced when dependencies are built.
