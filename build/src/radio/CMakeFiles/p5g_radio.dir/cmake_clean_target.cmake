file(REMOVE_RECURSE
  "libp5g_radio.a"
)
