
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/deployment.cpp" "src/ran/CMakeFiles/p5g_ran.dir/deployment.cpp.o" "gcc" "src/ran/CMakeFiles/p5g_ran.dir/deployment.cpp.o.d"
  "/root/repo/src/ran/events.cpp" "src/ran/CMakeFiles/p5g_ran.dir/events.cpp.o" "gcc" "src/ran/CMakeFiles/p5g_ran.dir/events.cpp.o.d"
  "/root/repo/src/ran/handover.cpp" "src/ran/CMakeFiles/p5g_ran.dir/handover.cpp.o" "gcc" "src/ran/CMakeFiles/p5g_ran.dir/handover.cpp.o.d"
  "/root/repo/src/ran/mobility_manager.cpp" "src/ran/CMakeFiles/p5g_ran.dir/mobility_manager.cpp.o" "gcc" "src/ran/CMakeFiles/p5g_ran.dir/mobility_manager.cpp.o.d"
  "/root/repo/src/ran/rrc.cpp" "src/ran/CMakeFiles/p5g_ran.dir/rrc.cpp.o" "gcc" "src/ran/CMakeFiles/p5g_ran.dir/rrc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
