# Empty compiler generated dependencies file for p5g_ran.
# This may be replaced when dependencies are built.
