file(REMOVE_RECURSE
  "libp5g_ran.a"
)
