file(REMOVE_RECURSE
  "CMakeFiles/p5g_ran.dir/deployment.cpp.o"
  "CMakeFiles/p5g_ran.dir/deployment.cpp.o.d"
  "CMakeFiles/p5g_ran.dir/events.cpp.o"
  "CMakeFiles/p5g_ran.dir/events.cpp.o.d"
  "CMakeFiles/p5g_ran.dir/handover.cpp.o"
  "CMakeFiles/p5g_ran.dir/handover.cpp.o.d"
  "CMakeFiles/p5g_ran.dir/mobility_manager.cpp.o"
  "CMakeFiles/p5g_ran.dir/mobility_manager.cpp.o.d"
  "CMakeFiles/p5g_ran.dir/rrc.cpp.o"
  "CMakeFiles/p5g_ran.dir/rrc.cpp.o.d"
  "libp5g_ran.a"
  "libp5g_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
