file(REMOVE_RECURSE
  "libp5g_common.a"
)
