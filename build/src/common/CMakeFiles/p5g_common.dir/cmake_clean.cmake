file(REMOVE_RECURSE
  "CMakeFiles/p5g_common.dir/csv.cpp.o"
  "CMakeFiles/p5g_common.dir/csv.cpp.o.d"
  "CMakeFiles/p5g_common.dir/rng.cpp.o"
  "CMakeFiles/p5g_common.dir/rng.cpp.o.d"
  "CMakeFiles/p5g_common.dir/stats.cpp.o"
  "CMakeFiles/p5g_common.dir/stats.cpp.o.d"
  "libp5g_common.a"
  "libp5g_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
