# Empty dependencies file for p5g_common.
# This may be replaced when dependencies are built.
