# Empty compiler generated dependencies file for p5g_geo.
# This may be replaced when dependencies are built.
