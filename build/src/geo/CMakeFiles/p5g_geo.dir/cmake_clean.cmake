file(REMOVE_RECURSE
  "CMakeFiles/p5g_geo.dir/geometry.cpp.o"
  "CMakeFiles/p5g_geo.dir/geometry.cpp.o.d"
  "CMakeFiles/p5g_geo.dir/route.cpp.o"
  "CMakeFiles/p5g_geo.dir/route.cpp.o.d"
  "libp5g_geo.a"
  "libp5g_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
