file(REMOVE_RECURSE
  "libp5g_geo.a"
)
