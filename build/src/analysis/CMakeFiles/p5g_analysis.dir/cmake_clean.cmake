file(REMOVE_RECURSE
  "CMakeFiles/p5g_analysis.dir/coverage.cpp.o"
  "CMakeFiles/p5g_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/p5g_analysis.dir/datasets.cpp.o"
  "CMakeFiles/p5g_analysis.dir/datasets.cpp.o.d"
  "CMakeFiles/p5g_analysis.dir/ho_stats.cpp.o"
  "CMakeFiles/p5g_analysis.dir/ho_stats.cpp.o.d"
  "CMakeFiles/p5g_analysis.dir/phase_tput.cpp.o"
  "CMakeFiles/p5g_analysis.dir/phase_tput.cpp.o.d"
  "CMakeFiles/p5g_analysis.dir/prediction.cpp.o"
  "CMakeFiles/p5g_analysis.dir/prediction.cpp.o.d"
  "libp5g_analysis.a"
  "libp5g_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
