file(REMOVE_RECURSE
  "libp5g_analysis.a"
)
