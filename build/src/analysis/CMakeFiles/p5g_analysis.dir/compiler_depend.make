# Empty compiler generated dependencies file for p5g_analysis.
# This may be replaced when dependencies are built.
