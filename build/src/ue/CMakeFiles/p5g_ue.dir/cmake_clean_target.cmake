file(REMOVE_RECURSE
  "libp5g_ue.a"
)
