file(REMOVE_RECURSE
  "CMakeFiles/p5g_ue.dir/mobility.cpp.o"
  "CMakeFiles/p5g_ue.dir/mobility.cpp.o.d"
  "libp5g_ue.a"
  "libp5g_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
