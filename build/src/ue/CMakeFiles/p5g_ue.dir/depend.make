# Empty dependencies file for p5g_ue.
# This may be replaced when dependencies are built.
