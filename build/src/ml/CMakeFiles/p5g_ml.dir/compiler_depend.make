# Empty compiler generated dependencies file for p5g_ml.
# This may be replaced when dependencies are built.
