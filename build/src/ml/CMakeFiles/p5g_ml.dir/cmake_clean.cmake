file(REMOVE_RECURSE
  "CMakeFiles/p5g_ml.dir/gbc.cpp.o"
  "CMakeFiles/p5g_ml.dir/gbc.cpp.o.d"
  "CMakeFiles/p5g_ml.dir/linalg.cpp.o"
  "CMakeFiles/p5g_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/p5g_ml.dir/lstm.cpp.o"
  "CMakeFiles/p5g_ml.dir/lstm.cpp.o.d"
  "CMakeFiles/p5g_ml.dir/metrics.cpp.o"
  "CMakeFiles/p5g_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/p5g_ml.dir/regression.cpp.o"
  "CMakeFiles/p5g_ml.dir/regression.cpp.o.d"
  "CMakeFiles/p5g_ml.dir/tree.cpp.o"
  "CMakeFiles/p5g_ml.dir/tree.cpp.o.d"
  "libp5g_ml.a"
  "libp5g_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
