file(REMOVE_RECURSE
  "libp5g_ml.a"
)
