
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gbc.cpp" "src/ml/CMakeFiles/p5g_ml.dir/gbc.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/gbc.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/p5g_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/lstm.cpp" "src/ml/CMakeFiles/p5g_ml.dir/lstm.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/lstm.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/p5g_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/regression.cpp" "src/ml/CMakeFiles/p5g_ml.dir/regression.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/regression.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/p5g_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/p5g_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
