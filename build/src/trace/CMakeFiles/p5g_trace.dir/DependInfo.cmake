
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/p5g_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/p5g_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ran/CMakeFiles/p5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/p5g_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/p5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
