file(REMOVE_RECURSE
  "CMakeFiles/p5g_trace.dir/trace.cpp.o"
  "CMakeFiles/p5g_trace.dir/trace.cpp.o.d"
  "libp5g_trace.a"
  "libp5g_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
