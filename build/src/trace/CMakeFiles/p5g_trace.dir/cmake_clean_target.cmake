file(REMOVE_RECURSE
  "libp5g_trace.a"
)
