# Empty dependencies file for p5g_trace.
# This may be replaced when dependencies are built.
