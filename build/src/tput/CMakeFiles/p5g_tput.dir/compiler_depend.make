# Empty compiler generated dependencies file for p5g_tput.
# This may be replaced when dependencies are built.
