file(REMOVE_RECURSE
  "libp5g_tput.a"
)
