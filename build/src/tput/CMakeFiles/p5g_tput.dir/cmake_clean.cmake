file(REMOVE_RECURSE
  "CMakeFiles/p5g_tput.dir/throughput.cpp.o"
  "CMakeFiles/p5g_tput.dir/throughput.cpp.o.d"
  "libp5g_tput.a"
  "libp5g_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p5g_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
