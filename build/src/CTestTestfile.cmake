# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("radio")
subdirs("ran")
subdirs("ue")
subdirs("energy")
subdirs("tput")
subdirs("trace")
subdirs("sim")
subdirs("ml")
subdirs("core")
subdirs("apps")
subdirs("analysis")
