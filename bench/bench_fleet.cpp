// Fleet scaling bench: N UEs over ONE shared deployment, three arms per N.
//   1. naive serial — the pre-fleet baseline: rebuild route + deployment +
//      shadow map per UE and run each UE alone (what a run_scenario loop
//      costs), reduced to summaries as it goes.
//   2. fleet serial — sim::run_fleet with 1 worker: shared environment,
//      identical per-UE work, no pool.
//   3. fleet pooled — sim::run_fleet on the thread pool (1 worker per core).
// The headline number is naive_serial / pooled. Every arm must produce the
// same per-UE summaries (the fleet determinism contract); the bench fails
// loudly if they diverge. Results are spliced into BENCH_perf.json under
// "fleet" (existing sections are preserved).
//
// Usage: bench_fleet [--quick] [--out <path>] [--metrics-out <path>]
//   --quick   N in {1, 8, 64} and shorter drives (CI-friendly);
//             full mode adds N=256
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/fleet_stats.h"
#include "bench_util.h"
#include "common/io.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "trace/event_trace.h"
#include "obs/metrics.h"
#include "sim/fleet.h"

using namespace p5g;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

sim::FleetScenario make_fleet(std::size_t n, Seconds duration) {
  sim::FleetScenario f;
  // City mmWave: the densest deployment we build, so the shared-environment
  // amortization the fleet layer buys is visible, not noise.
  f.base = bench::city_nsa(radio::Band::kNrMmWave, duration, 42);
  f.base.name = "fleet_city";
  f.n_ues = n;
  f.stagger_m = Meters{150.0};
  f.mobility_mix = {sim::MobilityKind::kCity, sim::MobilityKind::kCity,
                    sim::MobilityKind::kWalkLoop};
  return f;
}

struct Arm {
  double wall_s = 0.0;
  std::vector<sim::UeSummary> ues;
};

// The pre-fleet cost: every UE pays a fresh route/deployment/shadow build.
Arm naive_serial(const sim::FleetScenario& f) {
  Arm out;
  out.ues.resize(f.n_ues);
  const auto t0 = Clock::now();
  for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
    const sim::FleetEnv env(f);  // rebuilt per UE, deliberately
    const sim::Scenario s = sim::fleet_ue_scenario(f, ue);
    const trace::TraceLog log = sim::run_scenario(s, env.deployment(), env.route());
    sim::UeSummary& u = out.ues[ue];
    u.ue = ue;
    u.seed = s.seed;
    u.mobility = s.mobility;
    u.start_offset_m = s.start_offset_m;
    u.trace = trace::summarize(log);
  }
  out.wall_s = seconds_since(t0);
  return out;
}

Arm fleet_arm(const sim::FleetScenario& f, unsigned threads) {
  Arm out;
  const auto t0 = Clock::now();
  out.ues = sim::run_fleet(f, threads).ues;
  out.wall_s = seconds_since(t0);
  return out;
}

struct SizeResult {
  std::size_t n = 0;
  double naive_s = 0.0;
  double serial_s = 0.0;
  double pooled_s = 0.0;
  double speedup_vs_naive = 0.0;
  double speedup_vs_serial = 0.0;
  bool summaries_match = false;
};

// Best wall time over `reps` identical runs of one arm. The arms are
// deterministic (same summaries every rep), so reps only de-noise the
// timing: a single scheduler preemption inside a ~1 s arm otherwise swings
// the cross-arm ratios by 10-30% (same policy as bench_perf's tick bench).
template <typename Fn>
Arm best_arm(int reps, Fn run) {
  Arm best = run();
  for (int r = 1; r < reps; ++r) {
    Arm a = run();
    if (a.wall_s < best.wall_s) best = std::move(a);
  }
  return best;
}

SizeResult bench_size(std::size_t n, Seconds duration, int reps) {
  const sim::FleetScenario f = make_fleet(n, duration);
  const Arm naive = best_arm(reps, [&] { return naive_serial(f); });
  const Arm serial = best_arm(reps, [&] { return fleet_arm(f, 1); });
  const Arm pooled = best_arm(reps, [&] { return fleet_arm(f, 0); });

  SizeResult r;
  r.n = n;
  r.naive_s = naive.wall_s;
  r.serial_s = serial.wall_s;
  r.pooled_s = pooled.wall_s;
  r.speedup_vs_naive = naive.wall_s / pooled.wall_s;
  r.speedup_vs_serial = serial.wall_s / pooled.wall_s;
  r.summaries_match = naive.ues == serial.ues && serial.ues == pooled.ues;
  return r;
}

// What the pooled arm actually ran on — hardware_concurrency is a hint, the
// pool is the fact (containers and cgroups routinely cap below the hint).
unsigned actual_pool_size() {
  const ThreadPool probe(0);
  return probe.size();
}

// Splice the fleet section into an existing BENCH_perf.json (written by
// bench_perf) without disturbing its other sections; a missing or
// unparsable file degrades to a fresh {"fleet": ...} object.
void append_json(const std::string& path, bool quick, unsigned pool_size,
                 std::size_t cohort_ues, const std::vector<SizeResult>& sizes) {
  // Mean SoA batch width the radio pipeline saw across every arm — the
  // sampled p5g.radio.batch_size histogram the MobilityManager maintains.
  const obs::Histogram& batch =
      obs::registry().histogram("p5g.radio.batch_size");
  obs::JsonWriter w;
  w.begin_object();
  w.field("quick", quick);
  w.field("hardware_threads", std::max(1u, std::thread::hardware_concurrency()));
  w.field("pool_threads", pool_size);
  w.field("cohort_ues", static_cast<std::uint64_t>(cohort_ues));
  w.begin_object("radio_batch_size");
  w.field("samples", batch.count());
  w.field("mean", batch.count() > 0
                      ? batch.sum() / static_cast<double>(batch.count())
                      : 0.0);
  w.end_object();
  w.field("speedup_comparison_skipped", pool_size <= 1);
  w.begin_array("sizes");
  for (const SizeResult& r : sizes) {
    w.begin_object();
    w.field("ues", static_cast<std::uint64_t>(r.n));
    w.field("naive_serial_seconds", r.naive_s);
    w.field("fleet_serial_seconds", r.serial_s);
    w.field("pooled_seconds", r.pooled_s);
    w.field("speedup_vs_naive", r.speedup_vs_naive);
    w.field("speedup_vs_serial", r.speedup_vs_serial);
    w.field("summaries_match", r.summaries_match);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::optional<obs::JsonValue> fleet = obs::parse_json(w.str());
  if (!fleet) {
    std::printf("  internal error: fleet section did not round-trip\n");
    return;
  }

  obs::JsonValue root;
  root.type = obs::JsonValue::Type::kObject;
  if (std::ifstream in(path); in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    if (std::optional<obs::JsonValue> existing = obs::parse_json(buf.str());
        existing && existing->type == obs::JsonValue::Type::kObject) {
      root = std::move(*existing);
    } else {
      std::printf("  %s exists but is not a JSON object; rewriting\n", path.c_str());
    }
  }
  root.object["fleet"] = *fleet;

  if (const io::IoResult r = io::atomic_write_file(path, obs::to_json(root)); !r) {
    std::printf("  cannot write %s: %s\n", path.c_str(), r.error.c_str());
    return;
  }
  std::printf("\n  appended fleet section to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  bench::print_header(quick ? "fleet scaling (--quick)" : "fleet scaling");
  const Seconds duration{quick ? 60.0 : 300.0};
  std::vector<std::size_t> sizes = {1, 8, 64};
  if (!quick) sizes.push_back(256);

  const unsigned pool_size = actual_pool_size();
  const std::size_t cohort_ues = sim::fleet_cohort_ues(make_fleet(1, duration));
  std::printf("  %u hardware thread(s), pool of %u; %.0f s drives; "
              "cohorts of %zu UEs; best of 3 runs per arm\n",
              std::max(1u, std::thread::hardware_concurrency()), pool_size,
              duration.v, cohort_ues);
  if (pool_size <= 1) {
    std::printf(
        "  WARNING: only 1 worker available — pooled == serial here, "
        "skipping the speedup comparison\n");
  }
  std::printf("  %6s %12s %12s %12s %10s %8s\n", "UEs", "naive(s)", "serial(s)",
              "pooled(s)", "speedup", "match");

  bool all_match = true;
  std::vector<SizeResult> results;
  const int reps = 3;
  for (std::size_t n : sizes) {
    const SizeResult r = bench_size(n, duration, reps);
    results.push_back(r);
    all_match = all_match && r.summaries_match;
    if (pool_size <= 1) {
      std::printf("  %6zu %12.3f %12.3f %12.3f %10s %8s\n", r.n, r.naive_s,
                  r.serial_s, r.pooled_s, "n/a",
                  r.summaries_match ? "yes" : "NO");
    } else {
      std::printf("  %6zu %12.3f %12.3f %12.3f %9.2fx %8s\n", r.n, r.naive_s,
                  r.serial_s, r.pooled_s, r.speedup_vs_naive,
                  r.summaries_match ? "yes" : "NO");
    }
  }

  // Cross-UE population statistics for the largest fleet — the distributions
  // a single drive phone cannot see.
  const std::size_t biggest = sizes.back();
  const analysis::FleetStats fs =
      analysis::fleet_stats(make_fleet(biggest, duration));
  std::printf("\n  population (N=%zu):\n", fs.ues);
  const auto row = [](const char* label, const analysis::SampleStats& s) {
    std::printf("  %-24s n=%-6zu mean=%8.2f  p25=%8.2f  p50=%8.2f  p75=%8.2f\n",
                label, s.n, s.mean, s.p25, s.median, s.p75);
  };
  row("HO per km", fs.ho_per_km);
  row("failure rate", fs.failure_rate);
  row("interruption (s)", fs.interruption_s);
  row("mean tput (Mbps)", fs.mean_tput_mbps);
  row("NR coverage (m)", fs.nr_coverage_m);
  std::printf("  outcomes: %d ok / %d prep / %d exec / %d rlf\n",
              fs.outcomes.success, fs.outcomes.prep_failure,
              fs.outcomes.exec_failure, fs.outcomes.rlf_reestablish);

  append_json(out_path, quick, pool_size, cohort_ues, results);
  obs::export_from_args(argc, argv, "bench_fleet", 42);
  trace::export_trace_from_args(argc, argv, "bench_fleet", 42);

  if (!all_match) {
    std::printf("  FAIL: fleet arms disagree — determinism contract broken\n");
    return 1;
  }
  return 0;
}
