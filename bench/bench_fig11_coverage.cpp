// Fig. 11 + §6.1 — Coverage landscape: effective cell footprint with NSA vs
// without (ideal same-PCI dwell) vs SA.
//
// Paper targets: NSA 5G cell coverage 1.4 km (low) / 0.73 km (mid) /
// 0.15 km (mmWave); low-band NSA's effective coverage is 1.2-2x smaller
// than SA on the same band (anchor HOs release the SCG), SA n71 dwells can
// exceed 2000 m.
#include "analysis/coverage.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 11 / Sec 6.1: effective coverage (same-PCI dwell)");
  constexpr Seconds kDuration{2400.0};

  sim::Scenario low = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 111);
  sim::Scenario mid = bench::freeway_nsa(radio::Band::kNrMid, kDuration, 112);
  mid.carrier = ran::profile_opy();
  sim::Scenario mmw = bench::city_nsa(radio::Band::kNrMmWave, kDuration, 113);
  sim::Scenario sa = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 114);
  sa.carrier = ran::profile_opy();
  sa.arch = ran::Arch::kSa;
  // Ablation: the same low-band drive with the §6.1 mechanism disabled
  // (anchor HO does not release the SCG).
  sim::Scenario low_ideal = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 111);
  low_ideal.mnbh_releases_scg = false;

  const sim::Scenario scenarios[] = {low, mid, mmw, sa, low_ideal};
  const auto logs = bench::run_all(scenarios);
  const trace::TraceLog& low_log = logs[0];
  const trace::TraceLog& mid_log = logs[1];
  const trace::TraceLog& mmw_log = logs[2];
  const trace::TraceLog& sa_log = logs[3];
  const trace::TraceLog& low_ideal_log = logs[4];

  struct Row {
    const char* label;
    std::vector<double> dwells;
    double paper_km;
  } rows[] = {
      {"NSA low-band (actual)",
       analysis::nr_dwell_distances(low_log, analysis::DwellMode::kActual), 1.4},
      {"NSA low-band (w/o NSA, ideal)",
       analysis::nr_dwell_distances(low_log, analysis::DwellMode::kIdealSamePci), 2.0},
      {"NSA low (no SCG release)",
       analysis::nr_dwell_distances(low_ideal_log, analysis::DwellMode::kActual), 2.0},
      {"SA low-band",
       analysis::nr_dwell_distances(sa_log, analysis::DwellMode::kActual), 2.0},
      {"NSA mid-band (actual)",
       analysis::nr_dwell_distances(mid_log, analysis::DwellMode::kActual), 0.73},
      {"NSA mmWave (actual)",
       analysis::nr_dwell_distances(mmw_log, analysis::DwellMode::kActual), 0.15},
  };

  std::printf("  %-30s %10s %12s %12s\n", "configuration", "segments", "mean (m)",
              "paper (m)");
  double actual_low = 0.0, ideal_low = 0.0;
  for (const Row& r : rows) {
    const analysis::CoverageStats cs = analysis::coverage_stats(r.dwells);
    std::printf("  %-30s %10d %12.0f %12.0f\n", r.label, cs.segments, cs.mean_m.v,
                r.paper_km * 1000.0);
    if (std::string(r.label) == "NSA low-band (actual)") actual_low = cs.mean_m.v;
    if (std::string(r.label) == "NSA low-band (w/o NSA, ideal)") ideal_low = cs.mean_m.v;
  }
  if (actual_low > 0.0) {
    std::printf("\n  low-band effective-coverage reduction under NSA: %.2fx "
                "(paper: 1.2-2x)\n",
                ideal_low / actual_low);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig11_coverage");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig11_coverage");
  return 0;
}
