// Shared helpers for the reproduction benches: canonical scenarios and
// table printing. Every bench prints its measured values next to the
// paper's reported values so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace p5g::bench {

// Runs a bench's scenario set through the parallel sweep runner. Output
// order (and every byte of every log) matches a serial run_scenario loop.
inline std::vector<trace::TraceLog> run_all(std::span<const sim::Scenario> scenarios) {
  return sim::run_scenarios(scenarios);
}

inline sim::Scenario freeway_nsa(radio::Band nr_band, Seconds duration,
                                 std::uint64_t seed) {
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = nr_band;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = duration;
  s.seed = seed;
  s.name = "freeway";
  return s;
}

inline sim::Scenario city_nsa(radio::Band nr_band, Seconds duration,
                              std::uint64_t seed) {
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  // Urban macro grids densify; mmWave micro sites are already at their
  // physical spacing limit.
  s.carrier.density_scale = nr_band == radio::Band::kNrMmWave ? 1.1 : 0.6;
  s.arch = ran::Arch::kNsa;
  s.nr_band = nr_band;
  s.mobility = sim::MobilityKind::kCity;
  s.speed_kmh = 40.0;
  s.duration = duration;
  s.seed = seed;
  s.name = "city";
  return s;
}

inline sim::Scenario walk_nsa(radio::Band nr_band, Seconds duration,
                              std::uint64_t seed) {
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  s.carrier.density_scale = 0.5;
  s.arch = ran::Arch::kNsa;
  s.nr_band = nr_band;
  s.mobility = sim::MobilityKind::kWalkLoop;
  s.duration = duration;
  s.seed = seed;
  s.name = "walk";
  return s;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_dist_row(const char* label, std::span<const double> xs) {
  if (xs.empty()) {
    std::printf("  %-28s (no samples)\n", label);
    return;
  }
  std::printf("  %-28s n=%-5zu mean=%8.2f  p25=%8.2f  p50=%8.2f  p75=%8.2f\n", label,
              xs.size(), stats::mean(xs), stats::percentile(xs, 25.0),
              stats::median(xs), stats::percentile(xs, 75.0));
}

}  // namespace p5g::bench
