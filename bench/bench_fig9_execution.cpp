// Fig. 9 — HO execution stage (T2) across access technologies and bands.
//
// Paper shape: NSA T2 is 1.4-5.4x LTE T2; within NSA, mmWave T2 is 42-45 %
// larger than low-band; overall NSA HO ~167 ms vs LTE ~76 ms vs SA ~110 ms.
#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 9: T2 (execution) across technologies and bands");
  constexpr Seconds kDuration{1800.0};

  sim::Scenario lte = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 91);
  lte.carrier = ran::profile_opy();
  lte.arch = ran::Arch::kLteOnly;
  sim::Scenario nsa_mid = bench::freeway_nsa(radio::Band::kNrMid, kDuration, 92);
  nsa_mid.carrier = ran::profile_opy();
  sim::Scenario sa = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 93);
  sa.carrier = ran::profile_opy();
  sa.arch = ran::Arch::kSa;
  sim::Scenario nsa_low = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 94);
  sim::Scenario nsa_mmw = bench::city_nsa(radio::Band::kNrMmWave, kDuration, 95);

  struct Row {
    const char* label;
    trace::TraceLog log;
  } rows[] = {
      {"OpY LTE (mid-band)", sim::run_scenario(lte)},
      {"OpY NSA (mid-band)", sim::run_scenario(nsa_mid)},
      {"OpY SA (low-band)", sim::run_scenario(sa)},
      {"OpX NSA (low-band)", sim::run_scenario(nsa_low)},
      {"OpX NSA (mmWave)", sim::run_scenario(nsa_mmw)},
  };

  double lte_t2 = 0.0, low_scgm_t2 = 0.0, mmw_scgm_t2 = 0.0;
  double lte_total = 0.0, nsa_total_acc = 0.0, sa_total_acc = 0.0;
  int nsa_n = 0, sa_n = 0;
  for (const Row& r : rows) {
    std::printf("\n[%s]\n", r.label);
    for (const auto& [type, d] : analysis::duration_by_type(r.log.handovers)) {
      std::printf("  %-5s T2:", ran::ho_name(type).data());
      bench::print_dist_row("", d.t2_ms);
      if (type == ran::HoType::kLteh && r.label[4] == 'L') {
        lte_t2 = stats::mean(d.t2_ms);
        lte_total = stats::mean(d.total_ms);
      }
      if (type == ran::HoType::kScgm) {
        if (std::string(r.label).find("low-band") != std::string::npos) {
          low_scgm_t2 = stats::mean(d.t2_ms);
        }
        if (std::string(r.label).find("mmWave") != std::string::npos) {
          mmw_scgm_t2 = stats::mean(d.t2_ms);
        }
      }
      if (std::string(r.label).find("NSA") != std::string::npos &&
          ran::ho_is_5g_procedure(type)) {
        nsa_total_acc += stats::mean(d.total_ms) * static_cast<double>(d.total_ms.size());
        nsa_n += static_cast<int>(d.total_ms.size());
      }
      if (type == ran::HoType::kMcgh) {
        sa_total_acc += stats::mean(d.total_ms) * static_cast<double>(d.total_ms.size());
        sa_n += static_cast<int>(d.total_ms.size());
      }
    }
  }

  std::printf("\nsummary:\n");
  if (lte_t2 > 0.0 && nsa_n > 0) {
    std::printf("  NSA total %.0f ms vs LTE %.0f ms (paper: 167 vs 76 ms)\n",
                nsa_total_acc / nsa_n, lte_total);
  }
  if (sa_n > 0) {
    std::printf("  SA total %.0f ms (paper: ~110 ms)\n", sa_total_acc / sa_n);
  }
  if (low_scgm_t2 > 0.0 && mmw_scgm_t2 > 0.0) {
    std::printf("  mmWave SCGM T2 / low-band SCGM T2 = %.2fx (paper: 1.42-1.45x)\n",
                mmw_scgm_t2 / low_scgm_t2);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig9_execution");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig9_execution");
  return 0;
}
