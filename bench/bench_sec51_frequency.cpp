// §5.1 — Handover frequency and signaling overhead.
//
// Paper targets: NSA HO every ~0.4 km (freeway) vs 4G every ~0.6 km and SA
// low-band every ~0.9 km; within NSA, mmWave every ~0.13 km, mid-band
// ~0.35 km, low-band ~0.4 km. SA reduces HO signaling ~3.8x vs LTE; NSA
// mmWave PHY signaling >5x low-band.
#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

struct Row {
  const char* label;
  double paper_km;
  trace::TraceLog log;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Sec 5.1: HO frequency by RAT / architecture / band");
  constexpr Seconds kDuration{1500.0};

  sim::Scenario lte = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 101);
  lte.arch = ran::Arch::kLteOnly;
  sim::Scenario sa = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 102);
  sa.carrier = ran::profile_opy();
  sa.arch = ran::Arch::kSa;
  sim::Scenario nsa_low = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 103);
  sim::Scenario nsa_mid = bench::freeway_nsa(radio::Band::kNrMid, kDuration, 104);
  nsa_mid.carrier = ran::profile_opy();
  sim::Scenario nsa_mmw = bench::city_nsa(radio::Band::kNrMmWave, kDuration, 105);
  nsa_mmw.speed_kmh = 50.0;

  const sim::Scenario scenarios[] = {lte, sa, nsa_low, nsa_mid, nsa_mmw};
  auto logs = bench::run_all(scenarios);
  Row rows[] = {
      {"4G/LTE (freeway)", 0.6, std::move(logs[0])},
      {"SA low-band (freeway)", 0.9, std::move(logs[1])},
      {"NSA low-band (freeway)", 0.4, std::move(logs[2])},
      {"NSA mid-band (freeway)", 0.35, std::move(logs[3])},
      {"NSA mmWave (city)", 0.13, std::move(logs[4])},
  };

  std::printf("  %-26s %10s %12s %12s\n", "configuration", "HOs", "km/HO (sim)",
              "km/HO (paper)");
  for (const Row& r : rows) {
    std::printf("  %-26s %10zu %12.2f %12.2f\n", r.label, r.log.handovers.size(),
                analysis::km_per_handover(r.log), r.paper_km);
  }

  bench::print_header("Sec 5.1: HO signaling messages per km (RRC / MAC / PHY)");
  std::printf("  %-26s %8s %8s %8s %8s\n", "configuration", "rrc/km", "mac/km",
              "phy/km", "total");
  double lte_total = 0.0, sa_total = 0.0, low_phy = 0.0, mmw_phy = 0.0;
  for (const Row& r : rows) {
    const analysis::SignalingRates sr = analysis::signaling_rates(r.log);
    std::printf("  %-26s %8.1f %8.1f %8.1f %8.1f\n", r.label, sr.rrc_per_km,
                sr.mac_per_km, sr.phy_per_km, sr.total_per_km);
    if (r.label[0] == '4') lte_total = sr.total_per_km;
    if (r.label[0] == 'S') sa_total = sr.total_per_km;
    if (std::string(r.label).find("low-band (freeway)") != std::string::npos &&
        r.label[0] == 'N') {
      low_phy = sr.phy_per_km;
    }
    if (std::string(r.label).find("mmWave") != std::string::npos) mmw_phy = sr.phy_per_km;
  }
  if (sa_total > 0.0) {
    std::printf("\n  LTE/SA signaling ratio: %.1fx (paper: ~3.8x)\n",
                lte_total / sa_total);
  }
  if (low_phy > 0.0) {
    std::printf("  mmWave/low-band PHY signaling ratio: %.1fx (paper: >5x)\n",
                mmw_phy / low_phy);
  }
  p5g::obs::export_from_args(argc, argv, "bench_sec51_frequency");
  p5g::trace::export_trace_from_args(argc, argv, "bench_sec51_frequency");
  return 0;
}
