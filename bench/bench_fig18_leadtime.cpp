// Fig. 18 + §7.3 — Prediction lead time with vs without the report
// predictor.
//
// Paper targets: the report predictor lets Prognos predict HOs on average
// ~931 ms earlier (vs ~70 ms median once the MR has already been raised)
// with only a ~1.2 % accuracy cost.
#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 18: prediction lead time, w/ vs w/o report predictor");
  const std::vector<trace::TraceLog> traces = analysis::make_d2(3, Seconds{900.0}, 18);
  std::vector<int> truth;
  for (const trace::TraceLog& t : traces) {
    const std::vector<int> g = analysis::ground_truth(t);
    truth.insert(truth.end(), g.begin(), g.end());
  }
  const auto tolerance = static_cast<std::size_t>(1.5 * traces.front().tick_hz.v);

  analysis::PrognosRunOptions with_rp;
  analysis::PrognosRunOptions without_rp;
  without_rp.config.use_report_predictor = false;
  with_rp.bootstrap = without_rp.bootstrap = true;

  const analysis::PrognosRunResult on = analysis::run_prognos(traces, with_rp);
  const analysis::PrognosRunResult off = analysis::run_prognos(traces, without_rp);

  auto cdf_print = [](const char* label, const std::vector<double>& lead) {
    if (lead.empty()) {
      std::printf("  %-24s (no correct predictions)\n", label);
      return;
    }
    std::printf("  %-24s n=%-4zu", label, lead.size());
    for (double q : {10.0, 25.0, 50.0, 75.0, 90.0}) {
      std::printf("  p%.0f=%4.0fms", q, 1000.0 * stats::percentile(lead, q));
    }
    std::printf("\n");
  };
  cdf_print("w/  report predictor", on.lead_times_s);
  cdf_print("w/o report predictor", off.lead_times_s);

  const ml::EventScores s_on = ml::score_events(truth, on.predicted, tolerance);
  const ml::EventScores s_off = ml::score_events(truth, off.predicted, tolerance);
  std::printf("\n  F1 w/ report predictor:  %.3f (accuracy %.3f)\n", s_on.scores.f1,
              s_on.scores.accuracy);
  std::printf("  F1 w/o report predictor: %.3f (accuracy %.3f)\n", s_off.scores.f1,
              s_off.scores.accuracy);
  if (!on.lead_times_s.empty() && !off.lead_times_s.empty()) {
    std::printf("  mean lead-time gain: %+.0f ms (paper: ~931 ms earlier)\n",
                1000.0 * (stats::mean(on.lead_times_s) - stats::mean(off.lead_times_s)));
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig18_leadtime");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig18_leadtime");
  return 0;
}
