// Fig. 6 + §4.1 — Volumetric streaming QoE: HO impact by radio band.
//
// Paper targets: median video bitrate drops ~31 % around low-band HOs and
// ~58 % around mmWave HOs; network latency rises ~41 % (low) vs ~107 %
// (mmWave); mmWave can lose ~2 Gbps of throughput in a HO.
#include "apps/qoe_models.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

void run_band(radio::Band band, const char* label, double paper_bitrate_drop,
              double paper_latency_rise) {
  sim::Scenario s = bench::city_nsa(band, Seconds{1200.0}, 61);
  const trace::TraceLog log = sim::run_scenario(s);

  // Achievable volumetric bitrate tracks the link; latency tracks RTT.
  std::vector<double> bitrate, latency;
  for (const trace::TickRecord& t : log.ticks) {
    bitrate.push_back(std::min(t.throughput_mbps * 0.8, 170.0));  // top encoding
    // Frame delivery latency: RTT plus queueing when the link cannot keep
    // up with the top encoding rate.
    latency.push_back(t.rtt_ms.v + 0.3 * std::max(0.0, 170.0 - t.throughput_mbps * 0.8));
  }
  const apps::HoWindowSplit br = apps::split_by_ho_window(log, bitrate, Seconds{0.15});
  const apps::HoWindowSplit lat = apps::split_by_ho_window(log, latency, Seconds{0.15});

  std::printf("\n[%s]  (%zu HOs)\n", label, log.handovers.size());
  bench::print_dist_row("bitrate w/o HO (Mbps)", br.outside);
  bench::print_dist_row("bitrate w/  HO (Mbps)", br.in_ho);
  bench::print_dist_row("latency w/o HO (ms)", lat.outside);
  bench::print_dist_row("latency w/  HO (ms)", lat.in_ho);
  if (!br.in_ho.empty()) {
    std::printf("  median bitrate change w/ HO: %+.0f%% (paper: %+.0f%%)\n",
                100.0 * (stats::median(br.in_ho) - stats::median(br.outside)) /
                    stats::median(br.outside),
                paper_bitrate_drop);
    std::printf("  median latency change w/ HO: %+.0f%% (paper: %+.0f%%)\n",
                100.0 * (stats::median(lat.in_ho) - stats::median(lat.outside)) /
                    stats::median(lat.outside),
                paper_latency_rise);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Fig 6: volumetric streaming QoE vs radio band");
  run_band(radio::Band::kNrLow, "NSA low-band", -31.0, 41.0);
  run_band(radio::Band::kNrMmWave, "NSA mmWave", -58.0, 107.0);
  p5g::obs::export_from_args(argc, argv, "bench_fig6_volumetric");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig6_volumetric");
  return 0;
}
