// Fig. 4 + §4.1 — Live video conferencing during a city drive on NSA
// low-band: latency and packet-loss spikes at HOs.
//
// Paper targets: average latency 2.26x higher around HOs (up to 14.5x);
// average packet loss 2.24x higher.
#include "apps/qoe_models.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 4: video conferencing during HOs (NSA low-band city drive)");
  sim::Scenario s = bench::city_nsa(radio::Band::kNrLow, Seconds{840.0}, 41);  // 14 minutes
  const trace::TraceLog log = sim::run_scenario(s);

  Rng rng(0x414141);
  std::vector<double> latency, loss;
  latency.reserve(log.ticks.size());
  for (const trace::TickRecord& t : log.ticks) {
    const apps::ConferencingSample c = apps::conferencing_sample(t, rng);
    latency.push_back(c.video_latency_ms.v);
    loss.push_back(c.packet_loss_pct);
  }

  const apps::HoWindowSplit lat = apps::split_by_ho_window(log, latency, Seconds{0.5});
  const apps::HoWindowSplit lss = apps::split_by_ho_window(log, loss, Seconds{0.5});
  std::printf("  %zu HOs in a %.0f-minute drive\n", log.handovers.size(),
              log.duration().v / 60.0);
  bench::print_dist_row("latency w/o HO (ms)", lat.outside);
  bench::print_dist_row("latency w/  HO (ms)", lat.in_ho);
  bench::print_dist_row("loss w/o HO (%)", lss.outside);
  bench::print_dist_row("loss w/  HO (%)", lss.in_ho);

  if (!lat.outside.empty() && !lat.in_ho.empty()) {
    std::printf("\n  latency ratio w/HO vs w/o: %.2fx (paper: 2.26x, up to 14.5x)\n",
                stats::mean(lat.in_ho) / stats::mean(lat.outside));
    std::printf("  worst-case latency ratio:   %.1fx\n",
                stats::max(lat.in_ho) / stats::mean(lat.outside));
    std::printf("  loss ratio w/HO vs w/o:     %.2fx (paper: 2.24x)\n",
                stats::mean(lss.in_ho) / std::max(0.01, stats::mean(lss.outside)));
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig4_conferencing");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig4_conferencing");
  return 0;
}
