// Microbenchmarks (google-benchmark) — backs the paper's "light-weight"
// claim (§7.1): Prognos must be cheap enough for real-time on-device use.
#include <benchmark/benchmark.h>

#include "analysis/datasets.h"
#include "core/prognos.h"
#include "core/trace_adapter.h"
#include "ml/regression.h"
#include "radio/propagation.h"
#include "sim/scenario.h"

using namespace p5g;

namespace {

const trace::TraceLog& sample_trace() {
  static const trace::TraceLog log = [] {
    sim::Scenario s;
    s.carrier = ran::profile_opx();
    s.carrier.density_scale = 0.5;
    s.arch = ran::Arch::kNsa;
    s.nr_band = radio::Band::kNrMmWave;
    s.mobility = sim::MobilityKind::kWalkLoop;
    s.duration = 300.0_s;
    s.seed = 99;
    return sim::run_scenario(s);
  }();
  return log;
}

core::Prognos make_prognos() {
  std::vector<ran::EventConfig> configs;
  for (const auto& c : ran::default_lte_event_set(radio::Band::kNrMmWave)) {
    configs.push_back(c);
  }
  for (const auto& c : ran::default_nsa_nr_event_set(radio::Band::kNrMmWave)) {
    configs.push_back(c);
  }
  core::Prognos p(configs, core::Prognos::Config{});
  p.bootstrap_with_frequent_patterns();
  return p;
}

void BM_PrognosTick(benchmark::State& state) {
  const trace::TraceLog& log = sample_trace();
  core::Prognos prognos = make_prognos();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prognos.tick(core::from_tick(log.ticks[i])));
    i = (i + 1) % log.ticks.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PrognosTick);

void BM_SignalForecast(benchmark::State& state) {
  ml::SignalForecaster f(20, 4);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) f.add(-90.0 + rng.normal(0.0, 2.0));
  for (auto _ : state) {
    f.add(-90.0 + rng.normal(0.0, 2.0));
    benchmark::DoNotOptimize(f.forecast(20));
  }
}
BENCHMARK(BM_SignalForecast);

void BM_ShadowingFieldLookup(benchmark::State& state) {
  radio::ShadowingField field(radio::Band::kNrLow, 42);
  double x = 0.0;
  for (auto _ : state) {
    x += 1.3;
    benchmark::DoNotOptimize(field.at(x, 100.0));
  }
}
BENCHMARK(BM_ShadowingFieldLookup);

void BM_SimTick(benchmark::State& state) {
  // Full mobility-manager tick cost in a low-band deployment.
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  s.duration = 1.0_s;
  s.seed = 5;
  Rng rng(s.seed);
  geo::Route route = sim::build_route(s, rng);
  Rng dep_rng = rng.fork(7);
  ran::Deployment dep(s.carrier, route, dep_rng);
  ran::MobilityManager::Config cfg;
  ran::MobilityManager manager(dep, cfg, rng.fork(1));
  Seconds t{0.0};
  Meters pos{0.0};
  for (auto _ : state) {
    t += 0.05_s;
    pos += 1.5_m;
    benchmark::DoNotOptimize(manager.tick(t, route.position_at(pos), 1.5_m, pos));
  }
}
BENCHMARK(BM_SimTick);

}  // namespace

BENCHMARK_MAIN();
