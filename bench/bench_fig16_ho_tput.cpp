// Fig. 16 (Appendix A.3) — Throughput in the three HO phases for every
// procedure type over mmWave NSA, and the empirical ho_score table derived
// from it (§7.2).
//
// Paper shape: SCGA boosts throughput ~17x (4G->5G); SCGR divides it by
// ~7x; horizontal HOs dip 1.5-4.8x during execution; SCGM gains ~43 %
// post-HO; LTEH ~-4 %; SCGC ~-14 %.
#include "analysis/phase_tput.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/prognos.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 16: per-procedure phase throughput, mmWave NSA");
  sim::Scenario walk = bench::walk_nsa(radio::Band::kNrMmWave, Seconds{2100.0}, 161);

  std::vector<sim::Scenario> sweeps;
  for (int loop = 0; loop < 4; ++loop) {
    walk.seed = 161 + static_cast<std::uint64_t>(loop);
    sweeps.push_back(walk);
  }
  const auto logs = bench::run_all(sweeps);

  std::map<ran::HoType, analysis::PhaseThroughput> agg;
  trace::TraceLog merged;
  for (int loop = 0; loop < 4; ++loop) {
    const trace::TraceLog& log = logs[static_cast<std::size_t>(loop)];
    for (auto& [type, pt] : analysis::phase_throughput(log)) {
      analysis::PhaseThroughput& a = agg[type];
      a.pre_mbps.insert(a.pre_mbps.end(), pt.pre_mbps.begin(), pt.pre_mbps.end());
      a.exec_mbps.insert(a.exec_mbps.end(), pt.exec_mbps.begin(), pt.exec_mbps.end());
      a.post_mbps.insert(a.post_mbps.end(), pt.post_mbps.begin(), pt.post_mbps.end());
    }
    if (loop == 0) merged = log;
  }

  for (const auto& [type, pt] : agg) {
    std::printf("\n[%s]  (%zu samples)\n", ran::ho_name(type).data(), pt.pre_mbps.size());
    bench::print_dist_row("pre   Mbps", pt.pre_mbps);
    bench::print_dist_row("exec  Mbps", pt.exec_mbps);
    bench::print_dist_row("post  Mbps", pt.post_mbps);
    const double pre = stats::mean(pt.pre_mbps);
    if (pre > 1.0) {
      std::printf("  post/pre = %.2f   exec dip = %.2fx\n",
                  stats::mean(pt.post_mbps) / pre,
                  pre / std::max(1.0, stats::mean(pt.exec_mbps)));
    }
  }

  bench::print_header("empirical ho_score calibration (median post/pre)");
  std::printf("  %-6s %10s %12s\n", "type", "measured", "default tbl");
  const auto defaults = core::default_ho_scores();
  for (const auto& [type, score] : analysis::calibrate_ho_scores(merged)) {
    const auto it = defaults.find(type);
    std::printf("  %-6s %10.2f %12.2f\n", ran::ho_name(type).data(), score,
                it == defaults.end() ? 1.0 : it->second);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig16_ho_tput");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig16_ho_tput");
  return 0;
}
