// Fig. 12 + §6.2 — SCG Change (inter-gNB) throughput in three phases over
// mmWave: pre-HO, during execution, post-HO.
//
// Paper target: post-HO throughput is on average ~14 % LOWER than pre-HO —
// inter-gNB HOs in NSA go through 5G->4G->5G without evaluating the overall
// signal improvement.
#include "analysis/phase_tput.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 12: SCGC pre/exec/post throughput (mmWave walk)");
  sim::Scenario walk = bench::walk_nsa(radio::Band::kNrMmWave, Seconds{2100.0}, 121);
  walk.traffic_mode = tput::TrafficMode::kNrOnly;

  // Several walking loops to accumulate SCGC samples.
  std::map<ran::HoType, analysis::PhaseThroughput> agg;
  for (int loop = 0; loop < 4; ++loop) {
    walk.seed = 121 + static_cast<std::uint64_t>(loop);
    const trace::TraceLog log = sim::run_scenario(walk);
    for (auto& [type, pt] : analysis::phase_throughput(log)) {
      analysis::PhaseThroughput& a = agg[type];
      a.pre_mbps.insert(a.pre_mbps.end(), pt.pre_mbps.begin(), pt.pre_mbps.end());
      a.exec_mbps.insert(a.exec_mbps.end(), pt.exec_mbps.begin(), pt.exec_mbps.end());
      a.post_mbps.insert(a.post_mbps.end(), pt.post_mbps.begin(), pt.post_mbps.end());
    }
  }

  const auto it = agg.find(ran::HoType::kScgc);
  if (it == agg.end() || it->second.pre_mbps.empty()) {
    std::printf("  (no SCGC handovers observed — rerun with another seed)\n");
    return 0;
  }
  const analysis::PhaseThroughput& pt = it->second;
  bench::print_dist_row("HO_pre  DL Mbps", pt.pre_mbps);
  bench::print_dist_row("HO_exec DL Mbps", pt.exec_mbps);
  bench::print_dist_row("HO_post DL Mbps", pt.post_mbps);

  const double pre = stats::mean(pt.pre_mbps);
  const double post = stats::mean(pt.post_mbps);
  if (pre > 0.0) {
    std::printf("\n  post/pre throughput change: %+.1f%% (paper: about -14%%)\n",
                100.0 * (post - pre) / pre);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig12_scgc_tput");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig12_scgc_tput");
  return 0;
}
