// Table 1 — Driving-dataset statistics per carrier.
//
// The cross-country corpus is regenerated at a reduced scale (default 4 %
// of the paper's mileage, override with argv[1]); counts scale roughly
// linearly with mileage, so compare the per-km shape, not absolutes.
#include <cstdlib>

#include "analysis/datasets.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.04;
  bench::print_header("Table 1: dataset statistics (scaled corpus)");
  std::printf("  scale = %.2f of the paper's mileage\n\n", scale);

  const auto datasets = analysis::make_cross_country(scale, 7);
  std::printf("  %-34s %10s %10s %10s\n", "", "OpX", "OpY", "OpZ");

  analysis::DatasetSummary sums[3];
  for (std::size_t i = 0; i < datasets.size() && i < 3; ++i) {
    sums[i] = analysis::summarize_dataset(datasets[i]);
  }
  auto row_i = [&](const char* label, auto get) {
    std::printf("  %-34s %10d %10d %10d\n", label, get(sums[0]), get(sums[1]),
                get(sums[2]));
  };
  auto row_f = [&](const char* label, auto get) {
    std::printf("  %-34s %10.0f %10.0f %10.0f\n", label, get(sums[0]), get(sums[1]),
                get(sums[2]));
  };

  row_i("# unique cells observed", [](const auto& s) { return s.unique_cells; });
  row_i("# 5G-NR bands", [](const auto& s) { return s.nr_bands; });
  row_i("# LTE bands", [](const auto& s) { return s.lte_bands; });
  row_f("city distance (km)", [](const auto& s) { return s.city_km; });
  row_f("freeway distance (km)", [](const auto& s) { return s.freeway_km; });
  row_i("# 4G/LTE handovers", [](const auto& s) { return s.lte_handovers; });
  row_i("# 5G-NSA mobility procedures", [](const auto& s) { return s.nsa_procedures; });
  row_i("# 5G-SA handovers", [](const auto& s) { return s.sa_handovers; });
  row_f("5G-NR low-band minutes", [](const auto& s) { return s.low_band_minutes; });
  row_f("5G-NR mid-band minutes", [](const auto& s) { return s.mid_band_minutes; });
  row_f("5G-NR mmWave minutes", [](const auto& s) { return s.mmwave_minutes; });
  row_f("5G-NSA minutes", [](const auto& s) { return s.nsa_minutes; });
  row_f("5G-SA minutes", [](const auto& s) { return s.sa_minutes; });
  row_f("4G/LTE minutes", [](const auto& s) { return s.lte_minutes; });

  std::printf("\n  paper (full scale): 7001/9500/7491 LTE HOs; 4611/11107/6880 NSA\n"
              "  procedures; 465 SA HOs (OpY); 3030/5535/3544 unique cells.\n");
  p5g::obs::export_from_args(argc, argv, "bench_table1_dataset");
  p5g::trace::export_trace_from_args(argc, argv, "bench_table1_dataset");
  return 0;
}
