// Ablation — history/prediction window sweep for the report predictor
// (the paper fixes both at 1 s; this shows the sensitivity).
#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Ablation: report-predictor window sweep");
  const std::vector<trace::TraceLog> traces = analysis::make_d2(3, Seconds{900.0}, 33);
  std::vector<int> truth;
  for (const trace::TraceLog& t : traces) {
    const std::vector<int> g = analysis::ground_truth(t);
    truth.insert(truth.end(), g.begin(), g.end());
  }
  const auto tolerance = static_cast<std::size_t>(1.5 * traces.front().tick_hz.v);

  std::printf("  %-10s %-10s %8s %10s %8s\n", "history", "predict", "F1", "precision",
              "recall");
  for (double history : {0.5, 1.0, 2.0}) {
    for (double predict : {0.5, 1.0, 2.0}) {
      analysis::PrognosRunOptions opts;
      opts.bootstrap = true;
      opts.config.report.history_window = Seconds{history};
      opts.config.report.prediction_window = Seconds{predict};
      const analysis::PrognosRunResult r = analysis::run_prognos(traces, opts);
      const ml::EventScores s = ml::score_events(truth, r.predicted, tolerance);
      std::printf("  %-10.1f %-10.1f %8.3f %10.3f %8.3f\n", history, predict,
                  s.scores.f1, s.scores.precision, s.scores.recall);
    }
  }
  p5g::obs::export_from_args(argc, argv, "bench_ablation_window");
  p5g::trace::export_trace_from_args(argc, argv, "bench_ablation_window");
  return 0;
}
