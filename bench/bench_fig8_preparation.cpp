// Fig. 8 — HO preparation stage (T1) for OpY: LTE vs NSA vs SA.
//
// Paper shape: NSA procedures spend ~48 % more time in T1 than LTE; SA's
// median T1 is comparable to LTE but with much higher variance.
#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 8: T1 (preparation) by deployment, OpY-style carrier");
  constexpr Seconds kDuration{1800.0};

  sim::Scenario lte = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 81);
  lte.carrier = ran::profile_opy();
  lte.arch = ran::Arch::kLteOnly;
  sim::Scenario nsa = bench::freeway_nsa(radio::Band::kNrMid, kDuration, 82);
  nsa.carrier = ran::profile_opy();
  sim::Scenario sa = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 83);
  sa.carrier = ran::profile_opy();
  sa.arch = ran::Arch::kSa;

  const trace::TraceLog logs[] = {sim::run_scenario(lte), sim::run_scenario(nsa),
                                  sim::run_scenario(sa)};
  const char* arch_names[] = {"LTE", "NSA", "SA"};

  double lte_t1 = 0.0, nsa_t1_acc = 0.0;
  int nsa_t1_n = 0;
  for (int i = 0; i < 3; ++i) {
    std::printf("\n[%s]\n", arch_names[i]);
    for (const auto& [type, d] : analysis::duration_by_type(logs[i].handovers)) {
      std::printf("  %-5s T1:", ran::ho_name(type).data());
      bench::print_dist_row("", d.t1_ms);
      if (type == ran::HoType::kLteh && i == 0) lte_t1 = stats::mean(d.t1_ms);
      if (i == 1 && ran::ho_is_5g_procedure(type)) {
        nsa_t1_acc += stats::mean(d.t1_ms) * static_cast<double>(d.t1_ms.size());
        nsa_t1_n += static_cast<int>(d.t1_ms.size());
      }
    }
  }
  if (lte_t1 > 0.0 && nsa_t1_n > 0) {
    std::printf("\n  NSA T1 / LTE T1 = %.2fx (paper: ~1.48x)\n",
                (nsa_t1_acc / nsa_t1_n) / lte_t1);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig8_preparation");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig8_preparation");
  return 0;
}
