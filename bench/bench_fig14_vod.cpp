// Fig. 14a/b — 16K panoramic VoD: HO-aware rate adaptation.
//
// Paper targets: throughput-prediction MAE degrades 37-43 % during HOs for
// the stock ABRs; Prognos improves HO-window prediction 52-61 %; stall time
// drops 34.6-58.6 % without hurting quality; -PR lands within 0.05-0.10 %
// (stall) and 0.6-1.0 % (quality) of ground truth.
#include <memory>

#include "analysis/phase_tput.h"
#include "apps/vod_session.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 14a/b: 16K panoramic VoD with HO-aware ABR");

  // Bandwidth traces: mmWave + low-band city drives, 240-s sliding windows
  // with the Sec 7.4 bandwidth filter.
  std::vector<trace::TraceLog> logs;
  for (int i = 0; i < 3; ++i) {
    sim::Scenario s = bench::city_nsa(i % 2 ? radio::Band::kNrLow : radio::Band::kNrMmWave,
                                      Seconds{1200.0}, 141 + 7 * static_cast<std::uint64_t>(i));
    s.speed_kmh = 45.0;
    s.traffic_mode = tput::TrafficMode::kDual;
    logs.push_back(sim::run_scenario(s));
  }

  const apps::VideoProfile video = apps::panoramic_16k_profile();
  struct Algo {
    const char* base_name;
    std::unique_ptr<apps::AbrAlgorithm> (*make)();
  } algos[] = {
      {"RB", [] { return std::unique_ptr<apps::AbrAlgorithm>(new apps::RateBased()); }},
      {"fastMPC",
       [] { return std::unique_ptr<apps::AbrAlgorithm>(new apps::MpcAbr(false)); }},
      {"robustMPC",
       [] { return std::unique_ptr<apps::AbrAlgorithm>(new apps::MpcAbr(true)); }},
  };

  std::printf("  %-14s %10s %10s %10s %12s %12s\n", "algorithm", "bitrate%", "stall%",
              "switches", "MAE w/HO", "MAE w/o HO");

  int windows_total = 0;
  double mae_base_ho = 0.0, mae_pr_ho = 0.0;
  double stall_base = 0.0, stall_pr = 0.0, stall_gt = 0.0;
  double q_base = 0.0, q_pr = 0.0, q_gt = 0.0;

  for (const Algo& algo : algos) {
    for (int variant = 0; variant < 3; ++variant) {  // 0 base, 1 GT, 2 PR
      double bitrate = 0.0, stall = 0.0, switches = 0.0;
      double mae_ho = 0.0, mae_noho = 0.0;
      int n = 0, n_ho = 0, n_noho = 0;
      for (const trace::TraceLog& log : logs) {
        const apps::LinkEmulator link = apps::LinkEmulator::from_trace(log);
        const auto scores = analysis::calibrate_ho_scores(log);
        apps::HoSignal gt = apps::ground_truth_signal(log, scores);
        core::Prognos::Config pcfg;
        apps::HoSignal pr = apps::prognos_signal(log, pcfg);
        for (Seconds start : apps::window_starts(log, Seconds{240.0}, Seconds{120.0}, 400.0, 2.0)) {
          auto abr = algo.make();
          const apps::HoSignal* sig = variant == 0 ? nullptr : (variant == 1 ? &gt : &pr);
          // Base still gets the GT signal object for error bucketing only.
          apps::HoSignal neutral = gt;
          std::fill(neutral.score.begin(), neutral.score.end(), 1.0);
          const apps::VodResult r =
              apps::run_vod(*abr, video, link, sig ? sig : &neutral, start);
          bitrate += r.normalized_bitrate;
          stall += r.stall_fraction;
          switches += r.quality_switches;
          if (r.chunks_near_ho > 0) {
            mae_ho += r.pred_mae_ho;
            ++n_ho;
          }
          if (r.chunks_no_ho > 0) {
            mae_noho += r.pred_mae_no_ho;
            ++n_noho;
          }
          ++n;
        }
      }
      if (n == 0) continue;
      windows_total = n;
      const char* suffix = variant == 0 ? "" : (variant == 1 ? "-GT" : "-PR");
      std::printf("  %-11s%-3s %9.1f%% %9.2f%% %10.1f %12.1f %12.1f\n", algo.base_name,
                  suffix, 100.0 * bitrate / n, 100.0 * stall / n, switches / n,
                  n_ho ? mae_ho / n_ho : 0.0, n_noho ? mae_noho / n_noho : 0.0);
      if (variant == 0) {
        stall_base += stall / n;
        q_base += bitrate / n;
        if (n_ho) mae_base_ho += mae_ho / n_ho;
      }
      if (variant == 1) {
        stall_gt += stall / n;
        q_gt += bitrate / n;
      }
      if (variant == 2) {
        stall_pr += stall / n;
        q_pr += bitrate / n;
        if (n_ho) mae_pr_ho += mae_ho / n_ho;
      }
    }
  }

  std::printf("\n  windows per arm: %d\n", windows_total);
  if (stall_base > 0.0) {
    std::printf("  Prognos stall reduction vs stock: %.0f%% (paper: 34.6-58.6%%)\n",
                100.0 * (stall_base - stall_pr) / stall_base);
    std::printf("  quality change vs stock: %+.1f%% (paper: +1.72%%)\n",
                100.0 * (q_pr - q_base) / q_base);
    std::printf("  PR-vs-GT stall gap: %.2f%% absolute (paper: 0.05-0.10%%)\n",
                100.0 * std::abs(stall_pr - stall_gt) / 3.0);
  }
  if (mae_base_ho > 0.0) {
    std::printf("  HO-window prediction MAE improvement: %.0f%% (paper: 52-61%%)\n",
                100.0 * (mae_base_ho - mae_pr_ho) / mae_base_ho);
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig14_vod");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig14_vod");
  return 0;
}
