// Chaos harness: drives a UE fleet under deterministic fault injection
// (common/chaos.h) and checks the resilience contracts end to end:
//   1. Survival — injected task faults quarantine UEs, never the process.
//   2. Deterministic quarantine — the same chaos seed faults the same UE
//      set, with the same causes, across repeated runs AND worker counts.
//   3. Survivor byte-identity — every un-faulted UE's full trace CSV is
//      byte-identical (CRC-compared) to the fault-free run's.
//   4. Watchdog — stalled tasks are flagged, and flagged tasks still finish.
//   5. Durable I/O under fault — transient injected write failures are
//      retried to success; permanent ones fail without corrupting the
//      existing file.
//   6. (--checkpoint) checkpoint/resume round-trip under the same fleet.
// Exits nonzero on any violation — this is the bench the CI chaos leg runs.
//
// Usage: bench_chaos [--quick] [--seed S] [--checkpoint <path> [--resume]]
//                    [--metrics-out <path>]
//   --quick       smaller fleet and shorter drives (CI-friendly)
//   --seed        chaos profile seed (default 42)
//   --checkpoint  also exercise run_fleet checkpointing to <path>
//   --resume      resume from <path> instead of starting fresh
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/chaos.h"
#include "common/io.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "trace/event_trace.h"
#include "sim/checkpoint.h"
#include "sim/fleet.h"

using namespace p5g;

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

sim::FleetScenario make_fleet(bool quick, std::uint64_t seed) {
  sim::FleetScenario f;
  f.base = bench::city_nsa(radio::Band::kNrMmWave, Seconds{quick ? 30.0 : 90.0}, seed);
  f.base.name = "chaos_city";
  f.n_ues = quick ? 16 : 48;
  f.stagger_m = Meters{150.0};
  f.mobility_mix = {sim::MobilityKind::kCity, sim::MobilityKind::kWalkLoop};
  return f;
}

// One fleet pass reduced to per-survivor trace CRCs (full tick + HO CSV
// bytes) — small enough to compare across runs, strong enough to prove
// byte-identity.
struct HashedRun {
  std::map<std::size_t, std::uint32_t> crc;  // surviving UE -> trace CRC
  std::vector<sim::RunError> errors;
};

HashedRun run_hashed(const sim::FleetScenario& f, const std::string& tag,
                     unsigned threads) {
  HashedRun out;
  std::mutex mu;
  out.errors = sim::for_each_ue_trace(
      f,
      [&](std::size_t ue, const sim::Scenario&, const trace::TraceLog& log) {
        const std::string path =
            "/tmp/p5g_chaos_" + tag + "_" + std::to_string(ue) + ".csv";
        if (!trace::write_csv(log, path)) return;  // missing crc -> mismatch
        std::uint32_t c = io::crc32(slurp(path));
        c = io::crc32(slurp(path + ".ho.csv"), c);
        const std::lock_guard<std::mutex> lock(mu);
        out.crc[ue] = c;
      },
      threads);
  return out;
}

bool survivors_match(const HashedRun& chaotic, const HashedRun& clean) {
  for (const sim::RunError& e : chaotic.errors) {
    if (chaotic.crc.count(e.index)) return false;  // quarantined AND produced?
  }
  for (const auto& [ue, c] : chaotic.crc) {
    const auto it = clean.crc.find(ue);
    if (it == clean.crc.end() || it->second != c) return false;
  }
  return true;
}

void run_watchdog_section() {
  std::printf("\n  watchdog:\n");
  ThreadPool pool(2);
  pool.enable_watchdog(5.0_ms);
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      ++finished;
    });
  }
  const std::vector<TaskError> errs = pool.wait_idle();
  const std::vector<Watchdog::Flag> flags = pool.take_watchdog_flags();
  expect(errs.empty(), "stalled tasks are not errors");
  expect(finished.load() == 4, "flagged tasks still run to completion");
  expect(flags.size() == 4, "every task past the deadline was flagged");
}

void run_io_section(std::uint64_t seed) {
  std::printf("\n  durable I/O under injected faults:\n");
  const std::string path = "/tmp/p5g_chaos_io.txt";
  std::remove(path.c_str());

  const io::IoStats before = io::io_stats();
  {
    chaos::ChaosProfile p;
    p.seed = seed;
    p.io_fault_rate = 1.0;   // every path chosen...
    p.io_fault_attempts = 2; // ...fails twice, then the retry succeeds
    const chaos::ScopedChaos scoped(p);
    const io::IoResult r = io::atomic_write_file(path, "durable");
    expect(r.ok, "transient injected failures are retried to success");
  }
  expect(slurp(path) == "durable", "retried write landed the full content");
  const io::IoStats mid = io::io_stats();
  expect(mid.retries > before.retries, "retries were counted");
  expect(mid.chaos_injected > before.chaos_injected, "injections were counted");

  {
    chaos::ChaosProfile p;
    p.seed = seed;
    p.io_fault_rate = 1.0;
    p.io_fault_attempts = 99;  // outlasts every retry budget: permanent
    const chaos::ScopedChaos scoped(p);
    const io::IoResult r = io::atomic_write_file(path, "clobbered");
    expect(!r.ok, "permanent failure is surfaced to the caller");
    expect(!r.error.empty(), "failure carries a cause");
  }
  expect(slurp(path) == "durable", "failed write left the old file intact");
}

void run_checkpoint_section(const sim::FleetScenario& f, const std::string& path,
                            bool resume) {
  std::printf("\n  checkpoint/resume (%s):\n", path.c_str());
  sim::FleetCheckpointOptions opts;
  opts.path = path;
  opts.every_k = 4;
  opts.resume = resume;
  const sim::FleetResult ckpt_run = sim::run_fleet(f, opts, 0);
  const sim::FleetResult plain = sim::run_fleet(f, 0);
  expect(ckpt_run.ues == plain.ues,
        resume ? "resumed run is identical to an uninterrupted one"
               : "checkpointed run is identical to a plain one");
  std::string why;
  const auto loaded = sim::load_checkpoint(path, &why);
  expect(loaded.has_value(), "final checkpoint loads back cleanly");
  if (loaded) {
    expect(loaded->done.size() == f.n_ues - ckpt_run.errors.size(),
          "final checkpoint holds exactly the completed UEs");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, resume = false;
  std::uint64_t seed = 42;
  std::string ckpt_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--resume") == 0) resume = true;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      ckpt_path = argv[++i];
    }
  }

  bench::print_header(quick ? "chaos harness (--quick)" : "chaos harness");
  const sim::FleetScenario f = make_fleet(quick, 42);
  std::printf("  fleet: %zu UEs, chaos seed %llu\n\n", f.n_ues,
              static_cast<unsigned long long>(seed));

  // Fault-free reference first: per-UE trace CRCs and a clean error report.
  const HashedRun clean = run_hashed(f, "clean", 0);
  expect(clean.errors.empty(), "fault-free fleet has no quarantined UEs");
  expect(clean.crc.size() == f.n_ues, "fault-free fleet produced every trace");

  chaos::ChaosProfile p;
  p.seed = seed;
  p.task_fault_rate = 0.25;  // ~1 in 4 UE tasks throws InjectedFault
  p.stall_rate = 0.2;        // ~1 in 5 stalls (still completes)
  p.stall_ms = 10.0_ms;

  std::printf("\n  chaotic fleet (task faults + stalls):\n");
  std::vector<sim::RunError> first_errors;
  {
    const chaos::ScopedChaos scoped(p);
    const HashedRun a = run_hashed(f, "a", 0);
    const HashedRun b = run_hashed(f, "b", 0);  // repeat, same schedule domain
    const HashedRun c = run_hashed(f, "c", 2);  // different worker count
    first_errors = a.errors;
    expect(!a.errors.empty(), "chaos at 25% actually quarantined something");
    expect(a.errors.size() < f.n_ues, "the fleet survived (not all UEs faulted)");
    expect(a.errors == b.errors, "quarantine set is repeat-deterministic");
    expect(a.errors == c.errors, "quarantine set is schedule-independent");
    expect(survivors_match(a, clean), "survivors byte-identical to fault-free run");
    expect(survivors_match(c, clean), "survivors byte-identical across schedules");
  }

  // Chaos off again: the same fleet must reproduce the clean run exactly.
  const HashedRun after = run_hashed(f, "after", 0);
  expect(after.errors.empty() && after.crc == clean.crc,
        "chaos leaves no residue once cleared");

  run_watchdog_section();
  run_io_section(seed);
  if (!ckpt_path.empty()) run_checkpoint_section(f, ckpt_path, resume);

  const chaos::ChaosStats cs = chaos::chaos_stats();
  std::printf("\n  tallies: %llu task faults, %llu stalls, %llu quarantined\n",
              static_cast<unsigned long long>(cs.task_faults),
              static_cast<unsigned long long>(cs.stalls),
              static_cast<unsigned long long>(first_errors.size()));

  obs::export_from_args(argc, argv, "bench_chaos", seed);
  trace::export_trace_from_args(argc, argv, "bench_chaos", seed);
  if (g_failures > 0) {
    std::printf("\n  FAIL: %d resilience contract violation(s)\n", g_failures);
    return 1;
  }
  std::printf("\n  all resilience contracts hold\n");
  return 0;
}
