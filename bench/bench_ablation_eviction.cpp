// Ablation — pattern eviction (freshness threshold) on vs off, plus the
// learning/eviction rates the paper reports (§7.3: new patterns learned at
// ~9.1/h, evicted at ~8.3/h; the store must not grow unboundedly).
#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Ablation: decision-learner pattern eviction");
  const std::vector<trace::TraceLog> traces = analysis::make_d2(4, Seconds{900.0}, 31);
  std::vector<int> truth;
  for (const trace::TraceLog& t : traces) {
    const std::vector<int> g = analysis::ground_truth(t);
    truth.insert(truth.end(), g.begin(), g.end());
  }
  const auto tolerance = static_cast<std::size_t>(1.5 * traces.front().tick_hz.v);

  for (bool eviction : {true, false}) {
    analysis::PrognosRunOptions opts;
    opts.config.learner.eviction_enabled = eviction;
    // Short freshness horizon so eviction is visible on a bench-sized run.
    opts.config.learner.freshness_threshold = 30;
    const analysis::PrognosRunResult r = analysis::run_prognos(traces, opts);
    const ml::EventScores s = ml::score_events(truth, r.predicted, tolerance);
    const double hours = r.duration.v / 3600.0;
    std::printf("\n[eviction %s]\n", eviction ? "ON" : "OFF");
    std::printf("  F1 %.3f  precision %.3f  recall %.3f\n", s.scores.f1,
                s.scores.precision, s.scores.recall);
    std::printf("  patterns learned %.1f/h, evicted %.1f/h (paper: ~9.1/h, ~8.3/h)\n",
                static_cast<double>(r.patterns_learned) / hours,
                static_cast<double>(r.patterns_evicted) / hours);
  }
  p5g::obs::export_from_args(argc, argv, "bench_ablation_eviction");
  p5g::trace::export_trace_from_args(argc, argv, "bench_ablation_eviction");
  return 0;
}
