// Fig. 13 + §6.3 — Handover duration with co-located vs non-co-located
// eNB/gNB endpoints (same vs different 4G/5G PCI).
//
// Paper targets: same-PCI NSA HOs are ~13 ms faster on average; only
// 5-36 % of NSA low-band samples are co-located, depending on the carrier.
#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "common/stats.h"
#include "geo/geometry.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 13: HO duration, co-located vs not (NSA low-band)");

  for (const ran::CarrierProfile& carrier :
       {ran::profile_opx(), ran::profile_opy(), ran::profile_opz()}) {
    std::vector<ran::HandoverRecord> hos;
    for (int run = 0; run < 3; ++run) {
      sim::Scenario s = bench::freeway_nsa(radio::Band::kNrLow, Seconds{1500.0},
                                           131 + 17 * static_cast<std::uint64_t>(run));
      s.carrier = carrier;
      const trace::TraceLog log = sim::run_scenario(s);
      hos.insert(hos.end(), log.handovers.begin(), log.handovers.end());
    }
    const analysis::ColocationSplit split = analysis::colocation_split(hos);
    std::printf("\n[%s]  co-located fraction: %.0f%% (paper: 5-36%% across carriers)\n",
                carrier.name.c_str(), 100.0 * split.colocated_fraction);
    bench::print_dist_row("same PCI (ms)", split.colocated_ms);
    bench::print_dist_row("diff PCI (ms)", split.non_colocated_ms);
    if (!split.colocated_ms.empty() && !split.non_colocated_ms.empty()) {
      std::printf("  mean saving when co-located: %.1f ms (paper: ~13 ms)\n",
                  stats::mean(split.non_colocated_ms) - stats::mean(split.colocated_ms));
    }
  }

  // The paper's co-location detection heuristic: overlapping 4G/5G PCI
  // convex hulls. Demonstrate it on one deployment.
  bench::print_header("co-location heuristic: 4G/5G convex-hull overlap");
  sim::Scenario s = bench::freeway_nsa(radio::Band::kNrLow, Seconds{600.0}, 139);
  Rng rng(s.seed);
  geo::Route route = sim::build_route(s, rng);
  Rng dep_rng = rng.fork(7);
  ran::Deployment dep(s.carrier, route, dep_rng);
  int checked = 0, agreed = 0;
  for (const ran::Tower& tower : dep.towers()) {
    if (!tower.has_gnb || !tower.has_enb) continue;
    ++checked;
    // Footprints of the LTE and NR cells on this tower (samples on a disc).
    std::vector<geo::Point> lte_pts, nr_pts;
    for (const ran::Cell& c : dep.cells()) {
      if (c.tower_id != tower.id) continue;
      auto& pts = radio::band_rat(c.band) == radio::Rat::kLte ? lte_pts : nr_pts;
      for (int k = 0; k < 8; ++k) {
        const double a = 0.785398 * k;
        const Meters r = radio::band_profile(c.band).nominal_radius_m;
        pts.push_back(c.position + geo::Point{r.v * std::cos(a), r.v * std::sin(a)});
      }
    }
    if (lte_pts.size() < 3 || nr_pts.size() < 3) continue;
    const auto h1 = geo::convex_hull(lte_pts);
    const auto h2 = geo::convex_hull(nr_pts);
    if (geo::hull_overlap_ratio(h1, h2) > 0.5) ++agreed;
  }
  std::printf("  co-located towers: %d; hull-overlap heuristic agrees on %d\n", checked,
              agreed);
  p5g::obs::export_from_args(argc, argv, "bench_fig13_colocation");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig13_colocation");
  return 0;
}
