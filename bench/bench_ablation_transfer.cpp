// Ablation — model transfer (§7.1's "transferable scheme" design goal):
// patterns learned in one city bootstrap a Prognos instance in ANOTHER
// city with a similar deployment strategy, vs a cold start there.
#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "core/pattern_store.h"
#include "core/trace_adapter.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

std::vector<ran::EventConfig> configs_for(const trace::TraceLog& log) {
  std::vector<ran::EventConfig> configs;
  for (const auto& c : ran::default_lte_event_set(log.nr_band)) configs.push_back(c);
  for (const auto& c : ran::default_nsa_nr_event_set(log.nr_band)) configs.push_back(c);
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Ablation: pattern transfer between cities");

  // City A: learn patterns by simply running Prognos over its traces.
  const std::vector<trace::TraceLog> city_a = analysis::make_d1(2, Seconds{900.0}, 61);
  core::Prognos teacher(configs_for(city_a.front()), core::Prognos::Config{});
  for (const trace::TraceLog& log : city_a) {
    for (const trace::TickRecord& tick : log.ticks) teacher.tick(core::from_tick(tick));
  }
  const std::string model_path = "/tmp/p5g_transfer_model.txt";
  core::save_patterns(teacher.learner().patterns(), model_path);
  std::printf("  city A: learned %zu patterns, saved to %s\n",
              teacher.learner().patterns().size(), model_path.c_str());

  // City B (different deployment seed, same carrier strategy): evaluate the
  // first 10 minutes — where startup effects live — cold vs transferred.
  const std::vector<trace::TraceLog> city_b = analysis::make_d2(1, Seconds{600.0}, 62);
  std::vector<int> truth = analysis::ground_truth(city_b.front());
  const auto tolerance = static_cast<std::size_t>(1.5 * city_b.front().tick_hz.v);

  for (bool transfer : {false, true}) {
    core::Prognos student(configs_for(city_b.front()), core::Prognos::Config{});
    if (transfer) student.bootstrap_with(core::load_patterns(model_path));
    std::vector<int> predicted;
    for (const trace::TickRecord& tick : city_b.front().ticks) {
      const core::PrognosPrediction p = student.tick(core::from_tick(tick));
      predicted.push_back(p.ho ? analysis::ho_class(*p.ho) : 0);
    }
    const ml::EventScores s = ml::score_events(truth, predicted, tolerance);
    std::printf("  %-22s F1 %.3f  precision %.3f  recall %.3f\n",
                transfer ? "transferred model" : "cold start", s.scores.f1,
                s.scores.precision, s.scores.recall);
  }
  std::printf("\n  a transferred model should recover most of the bootstrap benefit\n"
              "  (Fig 15) without hand-curated frequent patterns.\n");
  p5g::obs::export_from_args(argc, argv, "bench_ablation_transfer");
  p5g::trace::export_trace_from_args(argc, argv, "bench_ablation_transfer");
  return 0;
}
