// Fig. 15 + §9 — Startup behaviour: bootstrapping Prognos with the most
// frequent pattern per HO type vs a cold start.
//
// Paper targets: cold start takes 11-14 minutes to exceed F1 0.9 on D1/D2;
// bootstrapping reaches F1 ~0.8 within ~1.5 minutes.
#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 15: F1 over time, bootstrap vs cold start (D1-style trace)");
  const std::vector<trace::TraceLog> traces = analysis::make_d1(2, Seconds{1200.0}, 15);

  analysis::PrognosRunOptions cold;
  analysis::PrognosRunOptions boot;
  boot.bootstrap = true;
  const analysis::PrognosRunResult r_cold = analysis::run_prognos(traces, cold);
  const analysis::PrognosRunResult r_boot = analysis::run_prognos(traces, boot);

  std::printf("  %-8s %18s %18s\n", "minute", "F1 (cold start)", "F1 (bootstrapped)");
  const std::size_t n = std::min(r_cold.f1_over_time.size(), r_boot.f1_over_time.size());
  for (std::size_t m = 0; m < n; ++m) {
    std::printf("  %-8zu %18.3f %18.3f\n", m + 1, r_cold.f1_over_time[m],
                r_boot.f1_over_time[m]);
  }

  // Time to first minute with F1 >= 0.7.
  auto first_above = [](const std::vector<double>& f1, double thr) -> long {
    for (std::size_t i = 0; i < f1.size(); ++i) {
      if (f1[i] >= thr) return static_cast<long>(i + 1);
    }
    return -1;
  };
  std::printf("\n  minutes to F1 >= 0.7: cold %ld, bootstrapped %ld\n",
              first_above(r_cold.f1_over_time, 0.7), first_above(r_boot.f1_over_time, 0.7));
  std::printf("  paper: bootstrap reaches ~0.8 within ~1.5 min; cold start needs 11-14 min.\n");
  p5g::obs::export_from_args(argc, argv, "bench_fig15_bootstrap");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig15_bootstrap");
  return 0;
}
