// Fig. 5 + §4.1 — Cloud gaming (4K@60FPS) during an NSA drive: network
// latency and dropped frames, with the SCGM vs MNBH contrast.
//
// Paper targets: network latency 2.26x higher during HOs; dropped frames
// 2.6x higher; MNBH averages ~16.8 ms more network latency and ~65 % more
// dropped frames than SCGM; "other" latency stays flat.
#include "apps/qoe_models.h"
#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 5: cloud gaming during HOs (NSA drive)");
  sim::Scenario s = bench::city_nsa(radio::Band::kNrMmWave, Seconds{960.0}, 51);
  const trace::TraceLog log = sim::run_scenario(s);

  Rng rng(0x515151);
  std::vector<double> net_latency, other_latency, drops;
  for (const trace::TickRecord& t : log.ticks) {
    const apps::GamingSample g = apps::gaming_sample(t, rng);
    net_latency.push_back(g.network_latency_ms.v);
    other_latency.push_back(g.other_latency_ms.v);
    drops.push_back(g.dropped_frames_pct);
  }

  const apps::HoWindowSplit lat = apps::split_by_ho_window(log, net_latency, Seconds{0.5});
  const apps::HoWindowSplit oth = apps::split_by_ho_window(log, other_latency, Seconds{0.5});
  const apps::HoWindowSplit drp = apps::split_by_ho_window(log, drops, Seconds{0.5});
  bench::print_dist_row("net latency w/o HO (ms)", lat.outside);
  bench::print_dist_row("net latency w/  HO (ms)", lat.in_ho);
  bench::print_dist_row("other latency w/ HO (ms)", oth.in_ho);
  bench::print_dist_row("dropped w/o HO (%)", drp.outside);
  bench::print_dist_row("dropped w/  HO (%)", drp.in_ho);
  if (!lat.in_ho.empty()) {
    std::printf("\n  net-latency ratio: %.2fx (paper: 2.26x);  drop ratio: %.2fx "
                "(paper: 2.6x)\n",
                stats::mean(lat.in_ho) / stats::mean(lat.outside),
                stats::mean(drp.in_ho) / std::max(0.01, stats::mean(drp.outside)));
  }

  // SCGM vs MNBH contrast.
  const apps::HoWindowSplit scgm_lat =
      apps::split_by_ho_window(log, net_latency, Seconds{1.0}, {ran::HoType::kScgm});
  const apps::HoWindowSplit mnbh_lat =
      apps::split_by_ho_window(log, net_latency, Seconds{1.0}, {ran::HoType::kMnbh});
  const apps::HoWindowSplit scgm_drp =
      apps::split_by_ho_window(log, drops, Seconds{1.0}, {ran::HoType::kScgm});
  const apps::HoWindowSplit mnbh_drp =
      apps::split_by_ho_window(log, drops, Seconds{1.0}, {ran::HoType::kMnbh});
  std::printf("\n[SCGM vs MNBH]\n");
  bench::print_dist_row("SCGM net latency (ms)", scgm_lat.in_ho);
  bench::print_dist_row("MNBH net latency (ms)", mnbh_lat.in_ho);
  bench::print_dist_row("SCGM dropped (%)", scgm_drp.in_ho);
  bench::print_dist_row("MNBH dropped (%)", mnbh_drp.in_ho);
  if (!scgm_lat.in_ho.empty() && !mnbh_lat.in_ho.empty()) {
    std::printf("\n  MNBH - SCGM mean net latency: %+.1f ms (paper: +16.8 ms)\n",
                stats::mean(mnbh_lat.in_ho) - stats::mean(scgm_lat.in_ho));
    std::printf("  MNBH vs SCGM dropped frames: %+.0f%% (paper: +65%%)\n",
                100.0 * (stats::mean(mnbh_drp.in_ho) - stats::mean(scgm_drp.in_ho)) /
                    std::max(0.01, stats::mean(scgm_drp.in_ho)));
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig5_gaming");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig5_gaming");
  return 0;
}
