// Fig. 14c — Real-time volumetric streaming: QoE change from HO-aware rate
// adaptation (ViVo and FESTIVE, -GT and -PR variants vs stock).
//
// Paper targets: Prognos improves video quality 15.1-36.2 % while reducing
// stall time 0.24-3.67 %; within 0.01-0.25 % (stall) / 0.39-2.49 %
// (quality) of ground truth.
#include <functional>
#include <memory>

#include "analysis/phase_tput.h"
#include "apps/volumetric.h"
#include "apps/vod_session.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 14c: volumetric streaming with HO-aware adaptation");

  std::vector<trace::TraceLog> logs;
  for (int i = 0; i < 3; ++i) {
    sim::Scenario s = bench::city_nsa(i % 2 ? radio::Band::kNrLow : radio::Band::kNrMmWave,
                                      Seconds{900.0}, 241 + 11 * static_cast<std::uint64_t>(i));
    logs.push_back(sim::run_scenario(s));  // SCG bearer: HOs hit hard
  }

  const apps::VolumetricProfile video;
  struct Algo {
    const char* base_name;
    std::function<std::unique_ptr<apps::AbrAlgorithm>()> make;
  } algos[] = {
      {"ViVo", [] { return std::unique_ptr<apps::AbrAlgorithm>(new apps::VivoSelector()); }},
      {"FESTIVE", [] { return std::unique_ptr<apps::AbrAlgorithm>(new apps::Festive()); }},
  };

  std::printf("  %-14s %14s %10s\n", "algorithm", "avg bitrate", "stall%");
  for (const Algo& algo : algos) {
    double base_bitrate = 0.0, base_stall = 0.0;
    for (int variant = 0; variant < 3; ++variant) {
      double bitrate = 0.0, stall = 0.0;
      int n = 0;
      for (const trace::TraceLog& log : logs) {
        const apps::LinkEmulator link = apps::LinkEmulator::from_trace(log);
        const auto scores = analysis::calibrate_ho_scores(log);
        apps::HoSignal gt = apps::ground_truth_signal(log, scores);
        core::Prognos::Config pcfg;
        apps::HoSignal pr = apps::prognos_signal(log, pcfg);
        const apps::HoSignal* sig = variant == 0 ? nullptr : (variant == 1 ? &gt : &pr);
        // Windows where the density decision is non-trivial (avg bandwidth
        // within reach of the 43-170 Mbps point-cloud ladder).
        for (Seconds start : apps::window_starts(log, Seconds{180.0}, Seconds{90.0}, 280.0, 2.0)) {
          auto abr = algo.make();
          const apps::VolumetricResult r =
              apps::run_volumetric(*abr, video, link, sig, start);
          bitrate += r.avg_bitrate_mbps;
          stall += r.stall_fraction;
          ++n;
        }
      }
      bitrate /= n;
      stall /= n;
      const char* suffix = variant == 0 ? "" : (variant == 1 ? "-GT" : "-PR");
      std::printf("  %-11s%-3s %11.1f Mbps %9.2f%%\n", algo.base_name, suffix, bitrate,
                  100.0 * stall);
      if (variant == 0) {
        base_bitrate = bitrate;
        base_stall = stall;
      } else {
        std::printf("      vs stock: quality %+.1f%%, stall %+.2f%% absolute\n",
                    100.0 * (bitrate - base_bitrate) / base_bitrate,
                    100.0 * (stall - base_stall));
      }
    }
  }
  std::printf("\n  paper: -PR quality +15.1-36.2%% with stall reduced 0.24-3.67%%.\n");
  p5g::obs::export_from_args(argc, argv, "bench_fig14_volumetric");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig14_volumetric");
  return 0;
}
