// Performance harness for the simulator's hot paths. Times
//   1. cells_near proximity queries — spatial index vs the reference
//      linear scan — on a dense mmWave deployment,
//   2. single-tick stepping / full-scenario simulation, and
//   3. an N-scenario sweep, serial loop vs sim::run_scenarios thread pool,
//   4. observability overhead: the same tick corridor with the metrics
//      layer enabled vs disabled (the "no-op registry" baseline),
//   5. flight-recorder overhead: the same corridor with obs::events
//      enabled vs disabled (the recorder's own kill switch),
// then writes BENCH_perf.json so the perf trajectory is tracked PR over PR.
//
// Usage: bench_perf [--quick] [--out <path>] [--check-overhead <pct>]
//                   [--check-speedup <mult>] [--metrics-out <path>]
//                   [--trace-out <path>]
//   --quick            shrink workloads ~10x (CI-friendly)
//   --out              JSON output path (default: BENCH_perf.json in the CWD)
//   --check-overhead   exit nonzero when obs overhead OR flight-recorder
//                      overhead on the tick loop exceeds <pct> percent
//                      (CI regression gate)
//   --check-speedup    exit nonzero when full-scenario ticks_per_sec falls
//                      below <mult> x the committed pre-batching baseline
//                      (kSeedTicksPerSec) — the perf regression gate
//   --metrics-out      dump the obs registry via the shared exporter
//   --trace-out        spill the flight recorder (binary + Perfetto JSON)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/io.h"
#include "common/thread_pool.h"
#include "obs/events.h"
#include "obs/export.h"
#include "trace/event_trace.h"
#include "sim/runner.h"

using namespace p5g;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct QueryBench {
  double linear_qps = 0.0;
  double index_qps = 0.0;
  double speedup = 0.0;
  std::size_t cells = 0;
};

// Dense-deployment proximity queries: the per-tick dominant cost. Probes
// walk the route so bucket occupancy matches what a drive actually sees.
QueryBench bench_cells_near(int probes) {
  // A four-hour city corridor: ~130 km of mmWave micro sites, the densest
  // grid the paper's carriers deploy. Only the probe count shrinks in
  // --quick mode; the deployment itself stays production-sized.
  sim::Scenario dense = bench::city_nsa(radio::Band::kNrMmWave, Seconds{14400.0}, 7);
  Rng rng(dense.seed);
  const geo::Route route = sim::build_route(dense, rng);
  Rng dep_rng = rng.fork(7);
  const ran::Deployment dep(dense.carrier, route, dep_rng);

  const radio::Band band = radio::Band::kNrMmWave;
  const Meters radius = radio::band_profile(band).nominal_radius_m * 2.6;
  const Meters route_len = route.length();
  auto probe_point = [&](int i) {
    return route.position_at(Meters{std::fmod(static_cast<double>(i) * 137.7, route_len.v)});
  };

  QueryBench out;
  out.cells = dep.cells().size();
  std::size_t checksum = 0;

  std::vector<ran::CellHit> buf;
  auto t0 = Clock::now();
  for (int i = 0; i < probes; ++i) {
    dep.cells_near(probe_point(i), band, radius, buf);
    checksum += buf.size();
  }
  const double index_s = seconds_since(t0);

  t0 = Clock::now();
  for (int i = 0; i < probes; ++i) {
    checksum += dep.cells_near_linear(probe_point(i), band, radius).size();
  }
  const double linear_s = seconds_since(t0);

  out.index_qps = probes / index_s;
  out.linear_qps = probes / linear_s;
  out.speedup = linear_s / index_s;
  if (checksum == 0) std::printf("  (no cells observed?)\n");
  return out;
}

// ticks_per_sec of bench_tick (full mode) at the seed of this perf pass —
// the scalar AoS pipeline before the batched SoA refactor. --check-speedup
// gates against a multiple of this committed constant.
constexpr double kSeedTicksPerSec = 190165.55654881842;

struct TickBench {
  double wall_s = 0.0;
  double ticks_per_sec = 0.0;
  std::size_t ticks = 0;
};

// Full-scenario stepping: everything a production sweep pays per tick.
// `scalar_radio` forces the pre-batching observe loop (the A arm of the
// radio_batch comparison); production runs use the batched default.
TickBench bench_tick(Seconds duration, bool scalar_radio = false) {
  sim::Scenario s = bench::city_nsa(radio::Band::kNrMmWave, duration, 11);
  s.scalar_radio_path = scalar_radio;
  const auto t0 = Clock::now();
  const trace::TraceLog log = sim::run_scenario(s);
  TickBench out;
  out.wall_s = seconds_since(t0);
  out.ticks = log.ticks.size();
  out.ticks_per_sec = static_cast<double>(out.ticks) / out.wall_s;
  return out;
}

// CPU-time variant for the overhead A/Bs below. Preemption and stolen
// time on shared runners distort wall-clock rates by ±10% on legs this
// short, but they don't bill CPU to the process, so per-leg CPU cost is
// stable enough to judge a 3% budget (std::clock ticks at >=1 MHz, a
// ~0.01% quantum on a 25 ms leg).
TickBench bench_tick_cpu(Seconds duration) {
  sim::Scenario s = bench::city_nsa(radio::Band::kNrMmWave, duration, 11);
  const std::clock_t c0 = std::clock();
  const trace::TraceLog log = sim::run_scenario(s);
  TickBench out;
  out.wall_s = static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
  out.ticks = log.ticks.size();
  out.ticks_per_sec = static_cast<double>(out.ticks) / out.wall_s;
  return out;
}

// Best of `reps` identical runs: a full-mode tick bench finishes in well
// under 100 ms of wall time, so a single scheduler preemption can swing
// the rate by 30% — the gated measurements all take the best rep (same
// policy as bench_obs_overhead).
TickBench bench_tick_best(Seconds duration, int reps, bool scalar_radio = false) {
  TickBench best;
  for (int r = 0; r < reps; ++r) {
    const TickBench t = bench_tick(duration, scalar_radio);
    if (t.ticks_per_sec > best.ticks_per_sec) best = t;
  }
  return best;
}

struct RadioBatchBench {
  double scalar_ticks_per_sec = 0.0;
  double batched_ticks_per_sec = 0.0;
  double speedup = 0.0;
};

// A/B of the measurement pipeline: scalar AoS reference loop vs the batched
// SoA path, same scenario, same seed — outputs are byte-identical (enforced
// by tests/radio_batch_test), so this isolates the pipeline's raw cost.
RadioBatchBench bench_radio_batch(Seconds duration) {
  RadioBatchBench out;
  out.scalar_ticks_per_sec =
      bench_tick_best(duration, 3, /*scalar_radio=*/true).ticks_per_sec;
  out.batched_ticks_per_sec =
      bench_tick_best(duration, 3, /*scalar_radio=*/false).ticks_per_sec;
  out.speedup = out.batched_ticks_per_sec / out.scalar_ticks_per_sec;
  return out;
}

// One kill-switch A/B (metrics layer or flight recorder): rate with the
// layer on vs off, and the overhead the gate judges.
struct OverheadBench {
  double on_ticks_per_sec = 0.0;        // best leg (informational)
  double off_ticks_per_sec = 0.0;       // best leg (informational)
  double overhead_pct = 0.0;            // floor of per-rep ratios (gated)
  double overhead_median_pct = 0.0;     // median rep ratio (trend tracking)
  int reps = 0;
};

// Shared estimator for the two kill-switch A/Bs, built to survive noisy
// shared runners where true overhead (<1%) is far below per-leg timing
// noise. Three defenses, each against a failure mode observed here:
//   * legs are timed in process CPU time (bench_tick_cpu) — preemption
//     and stolen time distort wall clocks by ±10% at this leg length but
//     don't bill CPU to the process;
//   * each rep runs its legs in ABBA order (on, off, off, on) and
//     compares the summed times, so machine-speed drift that is linear
//     across the rep (turbo decay, thermal throttling) contributes
//     equally to both arms and cancels — a plain on-then-off pair reads
//     the decay as ~10% fake overhead, with the sign set by leg order;
//   * the gated number is the FLOOR (minimum) of the per-rep ratios. A
//     genuine regression — a new clock read, allocation, or lock on the
//     tick path — is systematic: it inflates every rep's ratio, so the
//     floor rises with it. Transient machine noise only pushes individual
//     reps up (or, symmetrically, down — a floor below zero just means
//     the true overhead sits under the measurement floor). Gating on the
//     floor keeps CI stable on shared runners while still tripping on any
//     sustained regression; the median rep ratio rides along in
//     BENCH_perf.json so the trajectory stays visible.
// A warm-up leg before the first rep absorbs cold caches and first-touch
// page faults.
template <typename SetEnabled>
OverheadBench bench_overhead_ab(Seconds duration, int reps, SetEnabled set) {
  OverheadBench out;
  out.reps = reps;
  set(true);
  bench_tick_cpu(duration);  // warm-up, not measured
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    TickBench a1, b1, b2, a2;
    set(true);
    a1 = bench_tick_cpu(duration);
    set(false);
    b1 = bench_tick_cpu(duration);
    b2 = bench_tick_cpu(duration);
    set(true);
    a2 = bench_tick_cpu(duration);
    ratios.push_back((a1.wall_s + a2.wall_s) / (b1.wall_s + b2.wall_s));
    out.on_ticks_per_sec =
        std::max({out.on_ticks_per_sec, a1.ticks_per_sec, a2.ticks_per_sec});
    out.off_ticks_per_sec =
        std::max({out.off_ticks_per_sec, b1.ticks_per_sec, b2.ticks_per_sec});
  }
  set(true);
  std::sort(ratios.begin(), ratios.end());
  out.overhead_pct = (ratios.front() - 1.0) * 100.0;
  out.overhead_median_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  return out;
}

// Metrics-layer A/B: obs::set_enabled(false) == the no-op-registry
// baseline (counters, timers, and histograms all early-return before
// touching an atomic or the clock).
OverheadBench bench_obs_overhead(Seconds duration, int reps) {
  return bench_overhead_ab(duration, reps,
                           [](bool on) { obs::set_enabled(on); });
}

// Flight-recorder A/B: same corridor, obs::events on vs off. Separate from
// bench_obs_overhead because the two layers have independent kill switches —
// a regression in one must not hide behind the other's headroom.
OverheadBench bench_trace_overhead(Seconds duration, int reps) {
  OverheadBench out = bench_overhead_ab(
      duration, reps, [](bool on) { obs::set_events_enabled(on); });
  // Drop the A/B corridors' events so a --trace-out at the end of the run
  // captures only what executes after this point.
  obs::event_log().clear();
  return out;
}

struct SweepBench {
  int scenarios = 0;
  unsigned threads = 0;
  unsigned pool_threads = 0;
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  // True on boxes whose pool degenerates to one worker: the serial-vs-
  // parallel comparison measures pool bookkeeping, not parallelism, so the
  // speedup is reported as n/a (same policy as bench_fleet).
  bool comparison_skipped = false;
};

SweepBench bench_sweep(int n, Seconds duration) {
  std::vector<sim::Scenario> sweep;
  for (int i = 0; i < n; ++i) {
    sweep.push_back(bench::freeway_nsa(radio::Band::kNrLow, duration,
                                       100 + static_cast<std::uint64_t>(i)));
  }

  SweepBench out;
  out.scenarios = n;
  out.threads = std::max(1u, std::thread::hardware_concurrency());
  // What run_scenarios actually gets — the pool is the fact, the hint lies
  // inside containers/cgroups (same probe as bench_fleet).
  out.pool_threads = ThreadPool(0).size();
  out.comparison_skipped = out.pool_threads <= 1;

  auto t0 = Clock::now();
  std::size_t serial_ticks = 0;
  for (const sim::Scenario& s : sweep) serial_ticks += sim::run_scenario(s).ticks.size();
  out.serial_s = seconds_since(t0);

  t0 = Clock::now();
  std::size_t parallel_ticks = 0;
  for (const trace::TraceLog& log : sim::run_scenarios(sweep)) {
    parallel_ticks += log.ticks.size();
  }
  out.parallel_s = seconds_since(t0);
  out.speedup = out.serial_s / out.parallel_s;
  if (serial_ticks != parallel_ticks) {
    std::printf("  WARNING: serial/parallel tick counts differ (%zu vs %zu)\n",
                serial_ticks, parallel_ticks);
  }
  return out;
}

void write_json(const std::string& path, bool quick, const QueryBench& q,
                const TickBench& tk, const RadioBatchBench& rb,
                const SweepBench& sw, const OverheadBench& ov,
                const OverheadBench& tov) {
  // Shared JSON emitter (obs::JsonWriter) — same machinery every
  // --metrics-out report uses, no hand-rolled fprintf schema. Existing keys
  // are preserved; "manifest" and "obs_overhead" are additive.
  const obs::RunManifest manifest = obs::make_manifest("bench_perf", 7);
  obs::JsonWriter w;
  w.begin_object();
  w.field("quick", quick);
  w.field("hardware_threads", std::max(1u, std::thread::hardware_concurrency()));
  w.begin_object("manifest");
  w.field("run", manifest.run);
  w.field("seed", static_cast<std::uint64_t>(manifest.seed));
  w.field("git_describe", manifest.git_describe);
  w.field("build_type", manifest.build_type);
  w.end_object();
  w.begin_object("cells_near");
  w.field("deployment_cells", static_cast<std::uint64_t>(q.cells));
  w.field("linear_qps", q.linear_qps);
  w.field("index_qps", q.index_qps);
  w.field("speedup", q.speedup);
  w.end_object();
  w.begin_object("tick_stepping");
  w.field("ticks", static_cast<std::uint64_t>(tk.ticks));
  w.field("wall_seconds", tk.wall_s);
  w.field("ticks_per_sec", tk.ticks_per_sec);
  w.field("seed_ticks_per_sec", kSeedTicksPerSec);
  w.field("speedup_vs_seed", tk.ticks_per_sec / kSeedTicksPerSec);
  w.end_object();
  w.begin_object("radio_batch");
  w.field("scalar_ticks_per_sec", rb.scalar_ticks_per_sec);
  w.field("batched_ticks_per_sec", rb.batched_ticks_per_sec);
  w.field("speedup", rb.speedup);
  w.end_object();
  w.begin_object("obs_overhead");
  w.field("reps", ov.reps);
  w.field("enabled_ticks_per_sec", ov.on_ticks_per_sec);
  w.field("disabled_ticks_per_sec", ov.off_ticks_per_sec);
  w.field("overhead_pct", ov.overhead_pct);
  w.field("overhead_median_pct", ov.overhead_median_pct);
  w.end_object();
  w.begin_object("trace_overhead");
  w.field("reps", tov.reps);
  w.field("enabled_ticks_per_sec", tov.on_ticks_per_sec);
  w.field("disabled_ticks_per_sec", tov.off_ticks_per_sec);
  w.field("overhead_pct", tov.overhead_pct);
  w.field("overhead_median_pct", tov.overhead_median_pct);
  w.end_object();
  w.begin_object("scenario_sweep");
  w.field("scenarios", sw.scenarios);
  w.field("threads", sw.threads);
  w.field("pool_threads", sw.pool_threads);
  w.field("speedup_comparison_skipped", sw.comparison_skipped);
  w.field("serial_seconds", sw.serial_s);
  w.field("parallel_seconds", sw.parallel_s);
  w.field("speedup", sw.speedup);
  w.field("scaling_vs_cores", sw.speedup / static_cast<double>(sw.threads));
  w.end_object();
  w.end_object();

  if (const io::IoResult r = io::atomic_write_file(path, w.str()); !r) {
    std::printf("  cannot write %s: %s\n", path.c_str(), r.error.c_str());
    return;
  }
  std::printf("\n  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_perf.json";
  double check_overhead_pct = -1.0;
  double check_speedup_mult = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--check-overhead") == 0 && i + 1 < argc) {
      check_overhead_pct = std::strtod(argv[++i], nullptr);
    }
    if (std::strcmp(argv[i], "--check-speedup") == 0 && i + 1 < argc) {
      check_speedup_mult = std::strtod(argv[++i], nullptr);
    }
  }

  bench::print_header(quick ? "perf harness (--quick)" : "perf harness");

  const QueryBench q = bench_cells_near(quick ? 20000 : 200000);
  std::printf("  cells_near (dense mmWave, %zu cells):\n", q.cells);
  std::printf("    linear scan  %12.0f queries/s\n", q.linear_qps);
  std::printf("    grid index   %12.0f queries/s\n", q.index_qps);
  std::printf("    speedup      %12.2fx\n", q.speedup);

  const TickBench tk = bench_tick_best(Seconds{quick ? 120.0 : 900.0}, 3);
  std::printf("  full-scenario stepping (city mmWave, best of 3):\n");
  std::printf("    %zu ticks in %.2f s = %.0f ticks/s (%.2fx the committed seed)\n",
              tk.ticks, tk.wall_s, tk.ticks_per_sec,
              tk.ticks_per_sec / kSeedTicksPerSec);

  const RadioBatchBench rb = bench_radio_batch(Seconds{quick ? 60.0 : 300.0});
  std::printf("  radio pipeline A/B (byte-identical output):\n");
  std::printf("    scalar AoS   %12.0f ticks/s\n", rb.scalar_ticks_per_sec);
  std::printf("    batched SoA  %12.0f ticks/s\n", rb.batched_ticks_per_sec);
  std::printf("    speedup      %12.2fx\n", rb.speedup);

  const OverheadBench ov = bench_obs_overhead(Seconds{quick ? 900.0 : 1800.0}, 9);
  std::printf("  observability overhead (tick loop, %d ABBA reps):\n", ov.reps);
  std::printf("    metrics on   %12.0f ticks/s\n", ov.on_ticks_per_sec);
  std::printf("    metrics off  %12.0f ticks/s\n", ov.off_ticks_per_sec);
  std::printf("    overhead     %12.2f %% floor (gated), %.2f %% median\n",
              ov.overhead_pct, ov.overhead_median_pct);

  const OverheadBench tov = bench_trace_overhead(Seconds{quick ? 900.0 : 1800.0}, 9);
  std::printf("  flight-recorder overhead (tick loop, %d ABBA reps):\n",
              tov.reps);
  std::printf("    events on    %12.0f ticks/s\n", tov.on_ticks_per_sec);
  std::printf("    events off   %12.0f ticks/s\n", tov.off_ticks_per_sec);
  std::printf("    overhead     %12.2f %% floor (gated), %.2f %% median\n",
              tov.overhead_pct, tov.overhead_median_pct);

  const SweepBench sw = bench_sweep(8, Seconds{quick ? 60.0 : 300.0});
  std::printf("  %d-scenario sweep on %u hardware thread(s), pool of %u:\n",
              sw.scenarios, sw.threads, sw.pool_threads);
  std::printf("    serial    %8.2f s\n", sw.serial_s);
  if (sw.comparison_skipped) {
    std::printf("    parallel  %8.2f s  (speedup n/a)\n", sw.parallel_s);
    std::printf("    WARNING: pool has %u worker(s); serial-vs-parallel "
                "comparison skipped\n",
                sw.pool_threads);
  } else {
    std::printf("    parallel  %8.2f s  (speedup %.2fx, %.2fx per core)\n",
                sw.parallel_s, sw.speedup,
                sw.speedup / static_cast<double>(sw.threads));
  }

  write_json(out_path, quick, q, tk, rb, sw, ov, tov);
  obs::export_from_args(argc, argv, "bench_perf", 7);
  trace::export_trace_from_args(argc, argv, "bench_perf", 7);

  if (check_overhead_pct >= 0.0 && ov.overhead_pct > check_overhead_pct) {
    std::printf("  FAIL: obs overhead %.2f%% exceeds budget %.2f%%\n",
                ov.overhead_pct, check_overhead_pct);
    return 1;
  }
  if (check_overhead_pct >= 0.0 && tov.overhead_pct > check_overhead_pct) {
    std::printf("  FAIL: flight-recorder overhead %.2f%% exceeds budget %.2f%%\n",
                tov.overhead_pct, check_overhead_pct);
    return 1;
  }
  if (check_speedup_mult >= 0.0 &&
      tk.ticks_per_sec < check_speedup_mult * kSeedTicksPerSec) {
    std::printf("  FAIL: %.0f ticks/s is below %.2fx the committed seed rate "
                "(%.0f ticks/s)\n",
                tk.ticks_per_sec, check_speedup_mult,
                check_speedup_mult * kSeedTicksPerSec);
    return 1;
  }
  return 0;
}
