// Table 3 — HO prediction: Prognos vs GBC (Mei et al.) vs stacked LSTM
// (Ozturk et al.) on the D1 and D2 walking corpora, 60/40 split.
//
// Paper targets: Prognos F1 0.92-0.94, precision 0.93-0.95, recall ~0.92;
// GBC F1 0.40-0.48; stacked LSTM F1 0.24-0.28. Prognos outperforms by
// 1.9-3.8x while requiring no offline training.
//
// Corpus size is reduced (fewer/shorter loops) to keep the bench fast;
// pass "full" as argv[1] for the paper-sized corpus.
#include <cstring>

#include "analysis/datasets.h"
#include "analysis/prediction.h"
#include "bench_util.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

void run_dataset(const char* name, const std::vector<trace::TraceLog>& traces) {
  std::size_t hos = 0;
  Seconds minutes{0.0};
  for (const trace::TraceLog& t : traces) {
    hos += t.handovers.size();
    minutes += t.duration() / 60.0;
  }
  std::printf("\n[%s]  %zu traces, %.0f minutes, %zu HOs\n", name, traces.size(),
              minutes.v, hos);
  std::printf("  %-12s %8s %10s %8s %9s\n", "method", "F1", "precision", "recall",
              "accuracy");
  for (const analysis::MethodResult& r : analysis::evaluate_predictors(traces)) {
    std::printf("  %-12s %8.3f %10.3f %8.3f %9.3f\n", r.method.c_str(), r.scores.scores.f1,
                r.scores.scores.precision, r.scores.scores.recall,
                r.scores.scores.accuracy);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "full") == 0;
  bench::print_header("Table 3: HO prediction on D1 / D2");
  if (full) {
    run_dataset("D1", analysis::make_d1(7, Seconds{2100.0}));
    run_dataset("D2", analysis::make_d2(10, Seconds{1500.0}));
  } else {
    run_dataset("D1", analysis::make_d1(4, Seconds{1050.0}));
    run_dataset("D2", analysis::make_d2(5, Seconds{900.0}));
  }
  std::printf("\n  paper: Prognos 0.92-0.94 F1; GBC 0.40-0.48; LSTM 0.24-0.28.\n");
  p5g::obs::export_from_args(argc, argv, "bench_table3_prediction");
  p5g::trace::export_trace_from_args(argc, argv, "bench_table3_prediction");
  return 0;
}
