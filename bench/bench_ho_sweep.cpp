// HO configuration-space sweep: one scenario, a 3x3x3 grid of static
// HoConfig points (A3 offset x hysteresis x TTT) plus the adaptive
// TTT/hysteresis policy, all run through sim::run_scenarios in parallel.
// For every point it reports the three axes a carrier trades off when it
// picks a configuration (§7.1 of the paper; "Handover Configurations in
// Operational 5G Networks" in PAPERS.md measures the deployed diversity):
//   * HO rate          — completed procedures per route km (cost)
//   * ping-pong rate   — share of HOs that bounce A -> B -> A within 2 s (cost)
//   * interruption     — total data-plane halt time (cost)
//   * mean throughput  — what the churn buys: staying on the best cell (benefit)
// The Pareto front over those axes is spliced into BENCH_perf.json under
// "ho_sweep" (other sections preserved) and the full grid lands in a CSV.
// The adaptive arm runs on the most aggressive grid corner as its base: the
// controller's job is to keep that corner's reactivity while feeding back
// ping-pongs into hysteresis/TTT, so the bench checks it strictly dominates
// at least one static point (no worse HO rate, strictly fewer ping-pongs).
//
// Usage: bench_ho_sweep [--quick] [--out <path>] [--csv <path>]
//                       [--check-dominance] [--metrics-out <path>]
//                       [--trace-out <path>]
//   --quick            shorter drive (CI-friendly); the grid stays 27+1
//   --check-dominance  exit nonzero unless the adaptive arm dominates at
//                      least one static grid point
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "common/io.h"
#include "obs/export.h"
#include "ran/ho_config.h"
#include "ran/ho_policy.h"
#include "sim/runner.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

struct GridPoint {
  std::string name;
  Db a3_offset{0.0};
  Db hysteresis{0.0};
  Milliseconds ttt{0.0};
  bool adaptive = false;
};

struct PointResult {
  GridPoint point;
  double ho_per_km = 0.0;
  int handovers = 0;
  analysis::PingPongStats ping_pongs;
  Seconds interruption_s{0.0};
  double mean_tput_mbps = 0.0;
  bool pareto = false;
};

ran::HoConfig make_config(const GridPoint& p) {
  ran::HoConfig c;
  c.a3_offset = p.a3_offset;
  c.hysteresis = p.hysteresis;
  c.ttt = p.ttt;
  return c;
}

sim::Scenario make_scenario(const GridPoint& p, Seconds duration) {
  // City stop-and-go on mmWave: micro cells a few hundred meters apart,
  // so aggressive configurations actually ping-pong AND there is a real
  // throughput price for lazy ones (hanging onto a dying beam) — low-band
  // runs degenerate to "fewest HOs wins" on every axis at once.
  sim::Scenario s = bench::city_nsa(radio::Band::kNrMmWave, duration, 42);
  s.name = p.name;
  ran::HoConfigMap map;
  map.set_global(make_config(p));
  s.ho_config = map;
  if (p.adaptive) {
    s.ho_policy = ran::HoPolicyKind::kAdaptive;
    s.adaptive_ho = ran::AdaptiveHoParams{};
  }
  return s;
}

PointResult measure(const GridPoint& p, const trace::TraceLog& log) {
  PointResult r;
  r.point = p;
  r.handovers = static_cast<int>(log.handovers.size());
  const double km = log.distance().v / 1000.0;
  r.ho_per_km = km > 0.0 ? static_cast<double>(r.handovers) / km : 0.0;
  r.ping_pongs = analysis::ping_pong_stats(log.handovers);
  const trace::TraceSummary sum = trace::summarize(log);
  r.interruption_s = sum.any_halted_s;
  r.mean_tput_mbps = sum.mean_throughput_mbps;
  return r;
}

// a dominates b: no worse on every axis (costs down, throughput up),
// strictly better on at least one. Without the throughput axis the three
// costs are so correlated that the most conservative corner dominates the
// whole grid; the benefit axis is what buys the aggressive corner its seat
// on the front.
bool dominates(const PointResult& a, const PointResult& b) {
  const bool no_worse = a.ho_per_km <= b.ho_per_km &&
                        a.ping_pongs.rate() <= b.ping_pongs.rate() &&
                        a.interruption_s <= b.interruption_s &&
                        a.mean_tput_mbps >= b.mean_tput_mbps;
  const bool better = a.ho_per_km < b.ho_per_km ||
                      a.ping_pongs.rate() < b.ping_pongs.rate() ||
                      a.interruption_s < b.interruption_s ||
                      a.mean_tput_mbps > b.mean_tput_mbps;
  return no_worse && better;
}

// The acceptance comparison for the adaptive arm: at an equal-or-lower HO
// rate, strictly fewer ping-pongs.
bool dominates_on_ping_pong(const PointResult& adaptive,
                            const PointResult& s) {
  return adaptive.ho_per_km <= s.ho_per_km &&
         adaptive.ping_pongs.rate() < s.ping_pongs.rate();
}

void mark_pareto(std::vector<PointResult>& grid) {
  for (PointResult& a : grid) {
    a.pareto = std::none_of(grid.begin(), grid.end(), [&](const PointResult& b) {
      return &a != &b && dominates(b, a);
    });
  }
}

void write_csv(const std::string& path, const std::vector<PointResult>& all) {
  std::string csv =
      "name,a3_offset_db,hysteresis_db,ttt_ms,adaptive,handovers,ho_per_km,"
      "ping_pongs,ping_pong_eligible,ping_pong_rate,interruption_s,"
      "mean_tput_mbps,pareto\n";
  char line[256];
  for (const PointResult& r : all) {
    std::snprintf(line, sizeof(line),
                  "%s,%.1f,%.1f,%.0f,%d,%d,%.4f,%d,%d,%.4f,%.3f,%.3f,%d\n",
                  r.point.name.c_str(), r.point.a3_offset.v,
                  r.point.hysteresis.v, r.point.ttt.v, r.point.adaptive ? 1 : 0,
                  r.handovers, r.ho_per_km, r.ping_pongs.ping_pongs,
                  r.ping_pongs.eligible, r.ping_pongs.rate(),
                  r.interruption_s.v, r.mean_tput_mbps, r.pareto ? 1 : 0);
    csv += line;
  }
  if (const io::IoResult res = io::atomic_write_file(path, csv); !res) {
    std::printf("  cannot write %s: %s\n", path.c_str(), res.error.c_str());
    return;
  }
  std::printf("  full grid written to %s\n", path.c_str());
}

void write_point(obs::JsonWriter& w, const PointResult& r,
                 std::string_view key = {}) {
  w.begin_object(key);
  w.field("name", r.point.name);
  w.field("a3_offset_db", r.point.a3_offset.v);
  w.field("hysteresis_db", r.point.hysteresis.v);
  w.field("ttt_ms", r.point.ttt.v);
  w.field("adaptive", r.point.adaptive);
  w.field("handovers", r.handovers);
  w.field("ho_per_km", r.ho_per_km);
  w.field("ping_pongs", r.ping_pongs.ping_pongs);
  w.field("ping_pong_rate", r.ping_pongs.rate());
  w.field("interruption_s", r.interruption_s.v);
  w.field("mean_tput_mbps", r.mean_tput_mbps);
  w.field("pareto", r.pareto);
  w.end_object();
}

// Splice the ho_sweep section into an existing BENCH_perf.json without
// disturbing its other sections (same degrade-to-fresh policy as
// bench_fleet's append_json).
void append_json(const std::string& path, bool quick, Seconds duration,
                 const std::vector<PointResult>& grid,
                 const PointResult& adaptive,
                 const std::vector<std::string>& dominated) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("quick", quick);
  w.field("scenario", "city_nsa_mmwave");
  w.field("duration_s", duration.v);
  w.field("grid_points", static_cast<std::uint64_t>(grid.size()));
  w.begin_array("grid");
  for (const PointResult& r : grid) write_point(w, r);
  w.end_array();
  w.begin_array("pareto_front");
  for (const PointResult& r : grid) {
    if (r.pareto) w.element(r.point.name);
  }
  w.end_array();
  write_point(w, adaptive, "adaptive");
  w.begin_array("adaptive_dominates");
  for (const std::string& n : dominated) w.element(n);
  w.end_array();
  w.field("adaptive_dominates_any", !dominated.empty());
  w.end_object();

  const std::optional<obs::JsonValue> sweep = obs::parse_json(w.str());
  if (!sweep) {
    std::printf("  internal error: ho_sweep section did not round-trip\n");
    return;
  }
  obs::JsonValue root;
  root.type = obs::JsonValue::Type::kObject;
  if (std::ifstream in(path); in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    if (std::optional<obs::JsonValue> existing = obs::parse_json(buf.str());
        existing && existing->type == obs::JsonValue::Type::kObject) {
      root = std::move(*existing);
    } else {
      std::printf("  %s exists but is not a JSON object; rewriting\n",
                  path.c_str());
    }
  }
  root.object["ho_sweep"] = *sweep;
  if (const io::IoResult r = io::atomic_write_file(path, obs::to_json(root));
      !r) {
    std::printf("  cannot write %s: %s\n", path.c_str(), r.error.c_str());
    return;
  }
  std::printf("  appended ho_sweep section to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check_dominance = false;
  std::string out_path = "BENCH_perf.json";
  std::string csv_path = "ho_sweep_grid.csv";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--check-dominance") == 0) check_dominance = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) csv_path = argv[++i];
  }

  bench::print_header(quick ? "HO configuration sweep (--quick)"
                            : "HO configuration sweep");
  const Seconds duration{quick ? 300.0 : 1200.0};

  // 3x3x3 grid from the ping-pong-prone aggressive corner
  // (0.5 dB / 0 dB / 40 ms) to a conservative operator point
  // (3 dB / 1.5 dB / 480 ms) — the knob ranges carriers actually deploy.
  const Db offsets[] = {0.5_db, 1.5_db, 3.0_db};
  const Db hystereses[] = {0.0_db, 0.5_db, 1.5_db};
  const Milliseconds ttts[] = {40.0_ms, 160.0_ms, 480.0_ms};

  std::vector<GridPoint> points;
  for (const Db a3 : offsets) {
    for (const Db hys : hystereses) {
      for (const Milliseconds ttt : ttts) {
        char name[64];
        std::snprintf(name, sizeof(name), "a3_%.1f_hys_%.1f_ttt_%.0f", a3.v,
                      hys.v, ttt.v);
        points.push_back({name, a3, hys, ttt, false});
      }
    }
  }
  // Adaptive arm: the aggressive corner as base, controller on top.
  points.push_back({"adaptive", 0.5_db, 0.0_db, 40.0_ms, true});

  std::vector<sim::Scenario> scenarios;
  scenarios.reserve(points.size());
  for (const GridPoint& p : points) scenarios.push_back(make_scenario(p, duration));

  std::printf("  %zu static grid points + adaptive arm, %.0f s city drives, "
              "parallel sweep\n",
              points.size() - 1, duration.v);
  const std::vector<trace::TraceLog> logs = sim::run_scenarios(scenarios);

  std::vector<PointResult> grid;
  grid.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    grid.push_back(measure(points[i], logs[i]));
  }
  PointResult adaptive = measure(points.back(), logs.back());
  mark_pareto(grid);

  std::printf("  %-24s %9s %8s %9s %9s %9s %7s\n", "config", "HO/km", "HOs",
              "pp-rate", "halt(s)", "Mbps", "pareto");
  for (const PointResult& r : grid) {
    std::printf("  %-24s %9.2f %8d %9.3f %9.2f %9.1f %7s\n",
                r.point.name.c_str(), r.ho_per_km, r.handovers,
                r.ping_pongs.rate(), r.interruption_s.v, r.mean_tput_mbps,
                r.pareto ? "yes" : "");
  }
  std::printf("  %-24s %9.2f %8d %9.3f %9.2f %9.1f %7s\n", "adaptive",
              adaptive.ho_per_km, adaptive.handovers,
              adaptive.ping_pongs.rate(), adaptive.interruption_s.v,
              adaptive.mean_tput_mbps, "-");

  std::vector<std::string> dominated;
  for (const PointResult& r : grid) {
    if (dominates_on_ping_pong(adaptive, r)) dominated.push_back(r.point.name);
  }
  std::printf("\n  adaptive dominates %zu/%zu static configs on ping-pong "
              "rate at equal-or-lower HO rate\n",
              dominated.size(), grid.size());

  write_csv(csv_path, [&] {
    std::vector<PointResult> all = grid;
    all.push_back(adaptive);
    return all;
  }());
  append_json(out_path, quick, duration, grid, adaptive, dominated);
  obs::export_from_args(argc, argv, "bench_ho_sweep", 42);
  trace::export_trace_from_args(argc, argv, "bench_ho_sweep", 42);

  if (check_dominance && dominated.empty()) {
    std::printf("  FAIL: adaptive policy dominates no static grid point\n");
    return 1;
  }
  return 0;
}
