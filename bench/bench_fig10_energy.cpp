// Fig. 10 + §5.3 — HO energy: per-HO power, per-km energy, and the
// hour-at-130-km/h battery-drain projection.
//
// Paper targets: LTE HO ~0.78 W; NSA low-band per-HO power 1.2-2.3x LTE; a
// single mmWave HO ~54 % more energy-efficient than low-band but 1.9-2.4x
// MORE energy per km; 553 HOs/h @130 km/h -> ~34.7 mAh (NSA low-band) vs
// ~3.4 mAh for 4G.
#include "analysis/ho_stats.h"
#include "bench_util.h"
#include "energy/power_model.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

int main(int argc, char** argv) {
  bench::print_header("Fig 10: HO power and per-distance energy");
  constexpr Seconds kDuration{1800.0};

  sim::Scenario lte = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 201);
  lte.arch = ran::Arch::kLteOnly;
  sim::Scenario low = bench::freeway_nsa(radio::Band::kNrLow, kDuration, 202);
  sim::Scenario mmw = bench::city_nsa(radio::Band::kNrMmWave, kDuration, 203);

  struct Row {
    const char* label;
    trace::TraceLog log;
  } rows[] = {
      {"LTE (mid-band)", sim::run_scenario(lte)},
      {"NSA (low-band)", sim::run_scenario(low)},
      {"NSA (mmWave)", sim::run_scenario(mmw)},
  };

  std::printf("  %-16s %6s %10s %12s %12s %12s\n", "deployment", "HOs", "W per HO",
              "J per HO", "mAh per km", "HO/km");
  double results[3][3] = {};  // [row][{J/HO, mAh/km, W/HO}]
  for (int i = 0; i < 3; ++i) {
    const energy::EnergySummary e = energy::summarize(rows[i].log.handovers);
    const double km = m_to_km(rows[i].log.distance());
    const double j_per_ho = e.handovers ? e.joules / e.handovers : 0.0;
    const double mah_per_km = km > 0 ? e.mah / km : 0.0;
    results[i][0] = j_per_ho;
    results[i][1] = mah_per_km;
    results[i][2] = e.mean_power;
    std::printf("  %-16s %6d %10.2f %12.3f %12.4f %12.2f\n", rows[i].label,
                e.handovers, e.mean_power, j_per_ho, mah_per_km,
                km > 0 ? e.handovers / km : 0.0);
  }

  std::printf("\nratios:\n");
  if (results[0][2] > 0) {
    std::printf("  NSA low-band per-HO power vs LTE: %.1fx (paper: 1.2-2.3x)\n",
                results[1][2] / results[0][2]);
  }
  if (results[2][0] > 0) {
    std::printf("  low-band J/HO vs mmWave J/HO: %.2fx (paper: ~1.54x, i.e. a single\n"
                "    mmWave HO is ~54%% more energy-efficient)\n",
                results[1][0] / results[2][0]);
  }
  if (results[1][1] > 0) {
    std::printf("  mmWave mAh/km vs low-band: %.1fx (paper: 1.9-2.4x)\n",
                results[2][1] / results[1][1]);
  }

  bench::print_header("Sec 5.3: one hour at 130 km/h");
  for (int i = 0; i < 3; ++i) {
    const double km = m_to_km(rows[i].log.distance());
    if (km <= 0) continue;
    const double hos_per_km =
        static_cast<double>(rows[i].log.handovers.size()) / km;
    const energy::EnergySummary e = energy::summarize(rows[i].log.handovers);
    const double j_per_ho = e.handovers ? e.joules / e.handovers : 0.0;
    const double hos_hour = hos_per_km * 130.0;
    const double mah_hour = joules_to_mah(hos_hour * j_per_ho);
    std::printf("  %-16s %6.0f HOs/h -> %7.1f mAh/h", rows[i].label, hos_hour, mah_hour);
    if (i == 0) std::printf("   (paper 4G: ~3.4 mAh)");
    if (i == 1) {
      std::printf("   (paper: 553 HOs, ~34.7 mAh)");
      const radio::Band b = radio::Band::kNrLow;
      std::printf("\n%-20s equivalent bulk data: %.1f GB down / %.1f GB up", "",
                  energy::equivalent_download_gb(b, mah_hour),
                  energy::equivalent_upload_gb(b, mah_hour));
    }
    if (i == 2) std::printf("   (paper: 998 HOs, ~81.7 mAh)");
    std::printf("\n");
  }
  p5g::obs::export_from_args(argc, argv, "bench_fig10_energy");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig10_energy");
  return 0;
}
