// Fig. 7 + §4.2 — TCP RTT during HOs in the two NSA traffic modes.
//
// Paper targets: 5G-only (SCG bearer) has the lower no-HO RTT; dual mode's
// median RTT barely moves during NR HOs (1-4 %) because LTE keeps
// transmitting; 5G-only inflates 37-58 % in the median during SCGR/SCGA/
// SCGM.
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "obs/export.h"
#include "trace/event_trace.h"

using namespace p5g;

namespace {

struct RttBuckets {
  std::vector<double> no_ho;
  std::map<ran::HoType, std::vector<double>> by_type;
};

RttBuckets collect(const trace::TraceLog& log) {
  RttBuckets b;
  // Mark exec windows by type.
  std::vector<int> ho_type(log.ticks.size(), -1);
  const Seconds t0 = log.ticks.front().time;
  for (const ran::HandoverRecord& h : log.handovers) {
    const long lo = static_cast<long>((h.exec_start - t0).v * log.tick_hz.v);
    const long hi = static_cast<long>((h.complete_time - t0).v * log.tick_hz.v);
    for (long i = std::max(0L, lo); i <= hi && i < static_cast<long>(ho_type.size());
         ++i) {
      ho_type[static_cast<std::size_t>(i)] = static_cast<int>(h.type);
    }
  }
  for (std::size_t i = 0; i < log.ticks.size(); ++i) {
    if (ho_type[i] < 0) {
      b.no_ho.push_back(log.ticks[i].rtt_ms.v);
    } else {
      b.by_type[static_cast<ran::HoType>(ho_type[i])].push_back(log.ticks[i].rtt_ms.v);
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Fig 7: TCP RTT during HOs — dual vs 5G-only NSA modes");

  for (tput::TrafficMode mode : {tput::TrafficMode::kDual, tput::TrafficMode::kNrOnly}) {
    std::vector<double> no_ho;
    std::map<ran::HoType, std::vector<double>> by_type;
    for (int run = 0; run < 3; ++run) {
      sim::Scenario s = bench::city_nsa(radio::Band::kNrLow, Seconds{1200.0},
                                        71 + 13 * static_cast<std::uint64_t>(run));
      s.traffic_mode = mode;
      const trace::TraceLog log = sim::run_scenario(s);
      RttBuckets b = collect(log);
      no_ho.insert(no_ho.end(), b.no_ho.begin(), b.no_ho.end());
      for (auto& [t, v] : b.by_type) {
        by_type[t].insert(by_type[t].end(), v.begin(), v.end());
      }
    }
    std::printf("\n[%s mode]\n",
                mode == tput::TrafficMode::kDual ? "dual (MCG split)" : "5G-only (SCG)");
    bench::print_dist_row("w/o HO RTT (ms)", no_ho);
    const double base_median = stats::median(no_ho);
    for (ran::HoType t : {ran::HoType::kScgr, ran::HoType::kScga, ran::HoType::kScgm}) {
      const auto it = by_type.find(t);
      if (it == by_type.end() || it->second.empty()) continue;
      std::string label = std::string(ran::ho_name(t)) + " RTT (ms)";
      bench::print_dist_row(label.c_str(), it->second);
      std::printf("      median inflation vs no-HO: %+.0f%%\n",
                  100.0 * (stats::median(it->second) - base_median) / base_median);
    }
  }
  std::printf("\n  paper: dual-mode median changes 1-4%% during NR HOs; 5G-only\n"
              "  inflates 37-58%%; 5G-only has the lower no-HO RTT.\n");
  p5g::obs::export_from_args(argc, argv, "bench_fig7_traffic_modes");
  p5g::trace::export_trace_from_args(argc, argv, "bench_fig7_traffic_modes");
  return 0;
}
