#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "sim/scenario.h"
#include "trace/trace.h"

namespace p5g {
namespace {

sim::Scenario small_scenario(std::uint64_t seed = 1) {
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{120.0};
  s.seed = seed;
  return s;
}

TEST(Scenario, ProducesExpectedTickCount) {
  const trace::TraceLog log = sim::run_scenario(small_scenario());
  EXPECT_EQ(log.ticks.size(), static_cast<std::size_t>(120.0 * 20.0));
  EXPECT_NEAR(log.duration().v, 120.0, 1.0);
}

TEST(Scenario, TicksAreUniformlySpaced) {
  const trace::TraceLog log = sim::run_scenario(small_scenario(2));
  for (std::size_t i = 1; i < log.ticks.size(); ++i) {
    EXPECT_NEAR((log.ticks[i].time - log.ticks[i - 1].time).v, 0.05, 1e-9);
    EXPECT_GE(log.ticks[i].route_position, log.ticks[i - 1].route_position);
  }
}

TEST(Scenario, DeterministicForSeed) {
  const trace::TraceLog a = sim::run_scenario(small_scenario(3));
  const trace::TraceLog b = sim::run_scenario(small_scenario(3));
  ASSERT_EQ(a.handovers.size(), b.handovers.size());
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (std::size_t i = 0; i < a.ticks.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.ticks[i].throughput_mbps, b.ticks[i].throughput_mbps);
    EXPECT_EQ(a.ticks[i].nr_pci, b.ticks[i].nr_pci);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  const trace::TraceLog a = sim::run_scenario(small_scenario(4));
  const trace::TraceLog b = sim::run_scenario(small_scenario(5));
  bool any_diff = a.handovers.size() != b.handovers.size();
  for (std::size_t i = 0; i < std::min(a.ticks.size(), b.ticks.size()) && !any_diff;
       ++i) {
    any_diff = a.ticks[i].nr_pci != b.ticks[i].nr_pci;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, HandoversRecordedInTicksAndLog) {
  sim::Scenario s = small_scenario(6);
  s.duration = Seconds{600.0};
  const trace::TraceLog log = sim::run_scenario(s);
  ASSERT_GT(log.handovers.size(), 3u);
  std::size_t in_ticks = 0;
  for (const trace::TickRecord& t : log.ticks) in_ticks += t.ho_completed.size();
  EXPECT_EQ(in_ticks, log.handovers.size());
}

TEST(Scenario, ThroughputZeroWhileNrOnlyHalted) {
  sim::Scenario s = small_scenario(7);
  s.duration = Seconds{600.0};
  s.traffic_mode = tput::TrafficMode::kNrOnly;
  const trace::TraceLog log = sim::run_scenario(s);
  int halted_ticks = 0;
  for (const trace::TickRecord& t : log.ticks) {
    if (t.nr_attached && t.nr_halted) {
      ++halted_ticks;
      EXPECT_DOUBLE_EQ(t.throughput_mbps, 0.0);
    }
  }
  EXPECT_GT(halted_ticks, 0);
}

TEST(Scenario, TcpRecoveryRampsAfterInterruption) {
  sim::Scenario s = small_scenario(8);
  s.duration = Seconds{600.0};
  const trace::TraceLog log = sim::run_scenario(s);
  // Find an interruption end and check the next tick is attenuated
  // relative to ~1.5 s later.
  int checked = 0;
  for (std::size_t i = 1; i + 40 < log.ticks.size(); ++i) {
    const bool was = log.ticks[i - 1].nr_halted;
    const bool now = log.ticks[i].nr_halted;
    if (was && !now && log.ticks[i].nr_attached && log.ticks[i + 35].nr_attached &&
        !log.ticks[i + 35].nr_halted && log.ticks[i + 35].throughput_mbps > 1.0) {
      // Immediately after recovery the ramp should hold tput below the
      // post-recovery level most of the time.
      if (log.ticks[i].throughput_mbps < log.ticks[i + 35].throughput_mbps) ++checked;
      if (checked > 3) break;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(TraceCsv, RoundTripPreservesKeyFields) {
  sim::Scenario s = small_scenario(9);
  s.duration = Seconds{60.0};
  const trace::TraceLog log = sim::run_scenario(s);
  const std::string path = "/tmp/p5g_trace_test.csv";
  ASSERT_TRUE(trace::write_csv(log, path).ok);
  const trace::TraceLog back = trace::read_csv(path);

  ASSERT_EQ(back.ticks.size(), log.ticks.size());
  ASSERT_EQ(back.handovers.size(), log.handovers.size());
  for (std::size_t i = 0; i < log.ticks.size(); i += 111) {
    EXPECT_NEAR(back.ticks[i].time.v, log.ticks[i].time.v, 1e-3);
    EXPECT_EQ(back.ticks[i].lte_pci, log.ticks[i].lte_pci);
    EXPECT_EQ(back.ticks[i].nr_pci, log.ticks[i].nr_pci);
    EXPECT_EQ(back.ticks[i].nr_attached, log.ticks[i].nr_attached);
    EXPECT_NEAR(back.ticks[i].lte_rrs.rsrp.v, log.ticks[i].lte_rrs.rsrp.v, 0.06);
    EXPECT_NEAR(back.ticks[i].throughput_mbps, log.ticks[i].throughput_mbps, 0.06);
    EXPECT_EQ(back.ticks[i].reports.size(), log.ticks[i].reports.size());
  }
  for (std::size_t i = 0; i < log.handovers.size(); ++i) {
    EXPECT_EQ(back.handovers[i].type, log.handovers[i].type);
    EXPECT_NEAR(back.handovers[i].decision_time.v, log.handovers[i].decision_time.v, 1e-3);
    EXPECT_EQ(back.handovers[i].src_pci, log.handovers[i].src_pci);
    EXPECT_EQ(back.handovers[i].colocated, log.handovers[i].colocated);
    EXPECT_EQ(back.handovers[i].signaling.rrc, log.handovers[i].signaling.rrc);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
}

TEST(TraceCsv, ReadCsvToleratesMalformedAndOutOfRangeCells) {
  // Regression: read_csv used atoi/atof, which are undefined behaviour on
  // out-of-range text. A corrupted or hand-edited trace must parse with
  // defined results — overflow saturates, garbage and empty cells read 0.
  const std::string path = "/tmp/p5g_trace_malformed.csv";
  {
    std::ofstream f(path);
    f << "time,route_pos,x,y,speed,lte_pci,lte_rsrp,lte_rsrq,lte_sinr,"
         "nr_pci,nr_rsrp,nr_rsrq,nr_sinr,nr_attached,lte_halted,nr_halted,"
         "tput_mbps,rtt_ms,reports\n";
    f << "1e999,-1e999,abc,,12.5,99999999999999999999,-80,-10,5,"
         "-99999999999999999999,x,-11,6,1,0,0,50,20,\n";
  }
  {
    std::ofstream f(path + ".ho.csv");
    f << "type,decision_time,exec_start,complete_time,t1_ms,t2_ms,src_pci,"
         "dst_pci,src_band,dst_band,colocated,rrc,mac,phy,route_pos\n";
  }
  const trace::TraceLog log = trace::read_csv(path);
  ASSERT_EQ(log.ticks.size(), 1u);
  const trace::TickRecord& r = log.ticks[0];
  EXPECT_TRUE(std::isinf(r.time.v) && r.time > 0.0_s);
  EXPECT_TRUE(std::isinf(r.route_position.v) && r.route_position < 0.0_m);
  EXPECT_EQ(r.position.x, 0.0);  // no parsable digits
  EXPECT_EQ(r.position.y, 0.0);  // empty cell
  EXPECT_DOUBLE_EQ(r.speed_mps, 12.5);
  EXPECT_EQ(r.lte_pci, std::numeric_limits<int>::max());
  EXPECT_EQ(r.nr_pci, std::numeric_limits<int>::min());
  EXPECT_EQ(r.nr_rrs.rsrp, 0.0_dbm);
  EXPECT_TRUE(r.nr_attached);
  EXPECT_TRUE(log.handovers.empty());
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
}

TEST(TraceLog, DistanceAndThroughputSeries) {
  const trace::TraceLog log = sim::run_scenario(small_scenario(10));
  EXPECT_GT(log.distance(), 1000.0_m);
  const std::vector<double> series = trace::throughput_series(log);
  EXPECT_EQ(series.size(), log.ticks.size());
}

TEST(Scenario, WalkLoopRevisitsSameCells) {
  // Location-bound shadowing + loop route: the same PCIs reappear across
  // loops (the paper's repeatable-HO-spot observation).
  sim::Scenario s;
  s.carrier = ran::profile_opx();
  s.carrier.density_scale = 0.5;
  s.nr_band = radio::Band::kNrMmWave;
  s.mobility = sim::MobilityKind::kWalkLoop;
  s.duration = Seconds{900.0};
  s.seed = 11;
  const trace::TraceLog log = sim::run_scenario(s);
  std::set<int> first_half, second_half;
  for (std::size_t i = 0; i < log.ticks.size(); ++i) {
    if (log.ticks[i].nr_pci < 0) continue;
    (i < log.ticks.size() / 2 ? first_half : second_half).insert(log.ticks[i].nr_pci);
  }
  int shared = 0;
  for (int pci : first_half) shared += second_half.count(pci) ? 1 : 0;
  EXPECT_GT(shared, 0);
}

}  // namespace
}  // namespace p5g
