#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace p5g {
namespace {

// ---------------------------------------------------------------- units --
TEST(Units, DistanceConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(km_to_m(1.5).v, 1500.0);
  EXPECT_DOUBLE_EQ(m_to_km(km_to_m(3.7)), 3.7);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(ms_to_s(Millis{250.0}).v, 0.25);
  EXPECT_DOUBLE_EQ(s_to_ms(ms_to_s(Millis{167.0})).v, 167.0);
}

TEST(Units, SpeedConversions) {
  EXPECT_NEAR(kmh_to_mps(130.0), 36.11, 0.01);
  EXPECT_NEAR(mps_to_kmh(kmh_to_mps(55.0)), 55.0, 1e-9);
}

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(Db{db})).v, db, 1e-9);
  }
}

TEST(Units, DbmMilliwatt) {
  EXPECT_NEAR(to_mw(Dbm{0.0}).v, 1.0, 1e-12);
  EXPECT_NEAR(to_mw(Dbm{30.0}).v, 1000.0, 1e-9);
  EXPECT_NEAR(to_dbm(MilliWatts{100.0}).v, 20.0, 1e-9);
}

TEST(Units, EnergyConversionRoundTrip) {
  const double joules = 500.0;
  EXPECT_NEAR(mah_to_joules(joules_to_mah(joules)), joules, 1e-9);
  // 1 mAh at 3.85 V is 13.86 J.
  EXPECT_NEAR(mah_to_joules(1.0), 13.86, 1e-9);
}

// ------------------------------------------------------------------ rng --
TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(3.0);
  EXPECT_NEAR(acc / n, 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(23);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, RayleighIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.rayleigh(2.0), 0.0);
}

// ---------------------------------------------------------------- stats --
TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
  EXPECT_NEAR(stats::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(stats::mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stats::stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(stats::percentile(empty, 50.0), 0.0);
}

struct PercentileCase {
  double q;
  double expected;
};

class PercentileTest : public ::testing::TestWithParam<PercentileCase> {};

TEST_P(PercentileTest, LinearInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_NEAR(stats::percentile(xs, GetParam().q), GetParam().expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileTest,
                         ::testing::Values(PercentileCase{0.0, 10.0},
                                           PercentileCase{25.0, 20.0},
                                           PercentileCase{50.0, 30.0},
                                           PercentileCase{75.0, 40.0},
                                           PercentileCase{100.0, 50.0},
                                           PercentileCase{12.5, 15.0}));

TEST(Stats, RunningMatchesBatch) {
  Rng rng(37);
  std::vector<double> xs;
  stats::RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), stats::variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), stats::min(xs));
  EXPECT_DOUBLE_EQ(rs.max(), stats::max(xs));
}

TEST(Stats, HistogramCountsAndCdf) {
  stats::Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.5, 11.0, -1.0}) h.add(x);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.5 and clamped -1.0
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);  // 9.5 and clamped 11.0
  EXPECT_NEAR(h.cdf(2.0), 4.0 / 6.0, 1e-9);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto cdf = stats::empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), xs.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
  EXPECT_NEAR(cdf.back().fraction, 1.0, 1e-12);
}

TEST(Stats, KdeIntegratesToRoughlyOne) {
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto d = stats::kernel_density(xs, -6.0, 6.0, 241);
  double integral = 0.0;
  for (std::size_t i = 1; i < d.size(); ++i) {
    integral += 0.5 * (d[i].density + d[i - 1].density) * (d[i].x - d[i - 1].x);
  }
  EXPECT_NEAR(integral, 1.0, 0.03);
  // Peak near the mean.
  auto peak = std::max_element(d.begin(), d.end(), [](auto a, auto b) {
    return a.density < b.density;
  });
  EXPECT_NEAR(peak->x, 0.0, 0.5);
}

// ------------------------------------------------------------------ csv --
TEST(Csv, WriteReadRoundTrip) {
  const std::string path = "/tmp/p5g_csv_test.csv";
  {
    csv::Writer w(path, {"a", "b", "c"});
    w.write_row({"1", "2.5", "x"});
    w.write_row({"4", "5.5", "y"});
  }
  const csv::Table t = csv::read_file(path);
  ASSERT_EQ(t.header.size(), 3u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.column("b"), 1);
  EXPECT_EQ(t.column("missing"), -1);
  EXPECT_EQ(t.rows[1][2], "y");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchReportedNotThrown) {
  const std::string path = "/tmp/p5g_csv_test2.csv";
  {
    csv::Writer w(path, {"a", "b"});
    w.write_row({"only-one"});        // short: padded
    w.write_row({"1", "2", "extra"}); // wide: truncated
    w.write_row({"3", "4"});
    EXPECT_EQ(w.width_mismatches(), 2u);
  }
  const csv::Table t = csv::read_file(path);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.malformed_rows, 0u);  // writer normalized every row
  EXPECT_EQ(t.rows[0][0], "only-one");
  EXPECT_EQ(t.rows[0][1], "");
  EXPECT_EQ(t.rows[1][1], "2");
  std::filesystem::remove(path);
}

TEST(Csv, RaggedRowsCountedAndPadded) {
  const std::string path = "/tmp/p5g_csv_test3.csv";
  {
    std::ofstream out(path);
    out << "a,b,c\n1,2,3\n4,5\n6,7,8,9\n";
  }
  const csv::Table t = csv::read_file(path);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.malformed_rows, 2u);
  // Short row padded: positional access stays in bounds.
  ASSERT_GE(t.rows[1].size(), 3u);
  EXPECT_EQ(t.rows[1][2], "");
  // Long row keeps its cells.
  EXPECT_EQ(t.rows[2][3], "9");
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileGivesEmptyTable) {
  const csv::Table t = csv::read_file("/tmp/does_not_exist_p5g.csv");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(Csv, FormatPrecision) {
  EXPECT_EQ(csv::format(3.14159, 2), "3.14");
  EXPECT_EQ(csv::cell(42), "42");
}

}  // namespace
}  // namespace p5g
