#include <gtest/gtest.h>

#include "ran/events.h"

namespace p5g::ran {
namespace {

EventConfig make_config(EventType type, double thr1 = -100.0, double thr2 = -105.0,
                        double offset = 3.0, double hys = 1.0, double ttt = 100.0) {
  EventConfig c;
  c.type = type;
  c.scope = MeasScope::kServingLte;
  c.neighbor_rat = radio::Rat::kLte;
  c.threshold1 = Dbm{thr1};
  c.threshold2 = Dbm{thr2};
  c.offset = Db{offset};
  c.hysteresis = Db{hys};
  c.ttt_ms = Millis{ttt};
  return c;
}

MeasSnapshot snapshot(double serving, double neighbor) {
  MeasSnapshot m;
  m.serving_rsrp = Dbm{serving};
  m.serving_valid = true;
  m.best_neighbor_rsrp = Dbm{neighbor};
  m.best_neighbor_pci = 7;
  m.best_neighbor_cell_id = 3;
  m.neighbor_valid = true;
  return m;
}

// Table 4 trigger conditions, parameterized over (event, serving, neighbor,
// expected-entering).
struct TriggerCase {
  EventType type;
  double serving;
  double neighbor;
  bool enters;
};

class TriggerConditionTest : public ::testing::TestWithParam<TriggerCase> {};

TEST_P(TriggerConditionTest, EnteringMatchesTable4) {
  const TriggerCase& tc = GetParam();
  const EventConfig c = make_config(tc.type);
  EXPECT_EQ(EventMonitor::entering_condition(c, snapshot(tc.serving, tc.neighbor)),
            tc.enters);
}

INSTANTIATE_TEST_SUITE_P(
    Table4, TriggerConditionTest,
    ::testing::Values(
        // A1: serving better than threshold (-100), hysteresis 1.
        TriggerCase{EventType::kA1, -95.0, -140.0, true},
        TriggerCase{EventType::kA1, -100.5, -140.0, false},
        // A2: serving worse than threshold.
        TriggerCase{EventType::kA2, -105.0, -140.0, true},
        TriggerCase{EventType::kA2, -99.0, -140.0, false},
        TriggerCase{EventType::kA2, -100.5, -140.0, false},  // within hysteresis
        // A3: neighbor offset(3)+hys(1) better than serving.
        TriggerCase{EventType::kA3, -90.0, -85.0, true},
        TriggerCase{EventType::kA3, -90.0, -87.0, false},
        TriggerCase{EventType::kA3, -90.0, -85.9, true},
        // A4/B1: neighbor above absolute threshold.
        TriggerCase{EventType::kA4, -140.0, -95.0, true},
        TriggerCase{EventType::kB1, -140.0, -95.0, true},
        TriggerCase{EventType::kB1, -140.0, -100.5, false},
        // A5: serving below thr1 AND neighbor above thr2 (-105).
        TriggerCase{EventType::kA5, -106.0, -100.0, true},
        TriggerCase{EventType::kA5, -95.0, -100.0, false},
        TriggerCase{EventType::kA5, -106.0, -106.0, false}));

TEST(EventMonitor, RequiresTimeToTrigger) {
  EventMonitor mon(make_config(EventType::kA2, -100.0, 0, 0, 1.0, 200.0));
  // Condition true but TTT (200 ms) not yet elapsed.
  EXPECT_FALSE(mon.evaluate(Seconds{0.00}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_FALSE(mon.evaluate(Seconds{0.10}, snapshot(-110.0, -140.0)).has_value());
  const auto fired = mon.evaluate(Seconds{0.25}, snapshot(-110.0, -140.0));
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->type, EventType::kA2);
  EXPECT_DOUBLE_EQ(fired->serving_rsrp.v, -110.0);
}

TEST(EventMonitor, InterruptedConditionRestartsTtt) {
  EventMonitor mon(make_config(EventType::kA2, -100.0, 0, 0, 1.0, 200.0));
  EXPECT_FALSE(mon.evaluate(Seconds{0.00}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_FALSE(mon.evaluate(Seconds{0.10}, snapshot(-95.0, -140.0)).has_value());  // recovers
  EXPECT_FALSE(mon.evaluate(Seconds{0.20}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_FALSE(mon.evaluate(Seconds{0.30}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_TRUE(mon.evaluate(Seconds{0.45}, snapshot(-110.0, -140.0)).has_value());
}

TEST(EventMonitor, LatchesUntilLeavingCondition) {
  EventMonitor mon(make_config(EventType::kA2, -100.0, 0, 0, 1.0, 100.0));
  mon.evaluate(Seconds{0.0}, snapshot(-110.0, -140.0));
  ASSERT_TRUE(mon.evaluate(Seconds{0.2}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_TRUE(mon.reported());
  // Still bad: no re-report.
  EXPECT_FALSE(mon.evaluate(Seconds{0.4}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_TRUE(mon.reported());
  // Recovers beyond hysteresis: unlatches...
  EXPECT_FALSE(mon.evaluate(Seconds{0.6}, snapshot(-95.0, -140.0)).has_value());
  EXPECT_FALSE(mon.reported());
  // ...and can fire again.
  mon.evaluate(Seconds{0.8}, snapshot(-110.0, -140.0));
  EXPECT_TRUE(mon.evaluate(Seconds{1.0}, snapshot(-110.0, -140.0)).has_value());
}

TEST(EventMonitor, ResetClearsState) {
  EventMonitor mon(make_config(EventType::kA2, -100.0, 0, 0, 1.0, 100.0));
  mon.evaluate(Seconds{0.0}, snapshot(-110.0, -140.0));
  mon.evaluate(Seconds{0.2}, snapshot(-110.0, -140.0));
  EXPECT_TRUE(mon.reported());
  mon.reset();
  EXPECT_FALSE(mon.reported());
  // Fires again after TTT from scratch.
  EXPECT_FALSE(mon.evaluate(Seconds{0.3}, snapshot(-110.0, -140.0)).has_value());
  EXPECT_TRUE(mon.evaluate(Seconds{0.45}, snapshot(-110.0, -140.0)).has_value());
}

TEST(EventMonitor, InvalidServingBlocksServingEvents) {
  EventMonitor mon(make_config(EventType::kA2, -100.0, 0, 0, 1.0, 0.0));
  MeasSnapshot m;
  m.serving_valid = false;
  EXPECT_FALSE(mon.evaluate(Seconds{0.1}, m).has_value());
}

TEST(DefaultEventSets, LteSetHasExpectedEvents) {
  const auto set = default_lte_event_set(radio::Band::kNrLow);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0].type, EventType::kA2);
  EXPECT_EQ(set[1].type, EventType::kA3);
  EXPECT_EQ(set[2].type, EventType::kA5);
  EXPECT_EQ(set[3].type, EventType::kB1);
  EXPECT_EQ(set[3].neighbor_rat, radio::Rat::kNr);
  for (const auto& c : set) EXPECT_EQ(c.scope, MeasScope::kServingLte);
}

TEST(DefaultEventSets, NsaNrSetScopesAndB1ThresholdTracksBand) {
  const auto low = default_nsa_nr_event_set(radio::Band::kNrLow);
  const auto mmw = default_nsa_nr_event_set(radio::Band::kNrMmWave);
  ASSERT_EQ(low.size(), 3u);
  for (const auto& c : low) EXPECT_EQ(c.scope, MeasScope::kServingNr);
  // Absolute thresholds must differ between bands (self-calibration).
  EXPECT_NE(low[2].threshold1, mmw[2].threshold1);
  // mmWave beam management is faster.
  EXPECT_LT(mmw[1].ttt_ms, low[1].ttt_ms);
}

TEST(DefaultEventSets, SaSetIsNrScoped) {
  const auto set = default_sa_event_set(radio::Band::kNrLow);
  ASSERT_EQ(set.size(), 3u);
  for (const auto& c : set) {
    EXPECT_EQ(c.scope, MeasScope::kServingNr);
    EXPECT_EQ(c.neighbor_rat, radio::Rat::kNr);
  }
}

TEST(EventNames, AllDistinct) {
  std::set<std::string_view> names;
  for (EventType t : {EventType::kA1, EventType::kA2, EventType::kA3, EventType::kA4,
                      EventType::kA5, EventType::kA6, EventType::kB1}) {
    names.insert(event_name(t));
  }
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace p5g::ran
