#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string_view>

#include "common/rng.h"
#include "common/stats.h"
#include "radio/band.h"
#include "radio/propagation.h"

namespace p5g::radio {
namespace {

const Band kAllBands[] = {Band::kLteLow, Band::kLteMid, Band::kNrLow, Band::kNrMid,
                          Band::kNrMmWave};

TEST(Band, RatClassification) {
  EXPECT_EQ(band_rat(Band::kLteLow), Rat::kLte);
  EXPECT_EQ(band_rat(Band::kLteMid), Rat::kLte);
  EXPECT_EQ(band_rat(Band::kNrLow), Rat::kNr);
  EXPECT_EQ(band_rat(Band::kNrMid), Rat::kNr);
  EXPECT_EQ(band_rat(Band::kNrMmWave), Rat::kNr);
}

TEST(Band, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (Band b : kAllBands) names.insert(band_name(b));
  EXPECT_EQ(names.size(), 5u);
}

TEST(Band, ProfilesAreOrderedByPhysics) {
  // Coverage radius shrinks with frequency; peak throughput grows with
  // bandwidth.
  EXPECT_GT(band_profile(Band::kNrLow).nominal_radius_m,
            band_profile(Band::kNrMid).nominal_radius_m);
  EXPECT_GT(band_profile(Band::kNrMid).nominal_radius_m,
            band_profile(Band::kNrMmWave).nominal_radius_m);
  EXPECT_GT(band_profile(Band::kNrMmWave).peak_throughput,
            band_profile(Band::kNrMid).peak_throughput);
  EXPECT_GT(band_profile(Band::kNrMid).peak_throughput,
            band_profile(Band::kNrLow).peak_throughput);
  EXPECT_GT(band_profile(Band::kNrLow).peak_throughput,
            band_profile(Band::kLteMid).peak_throughput);
}

TEST(SinrEfficiency, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(sinr_to_efficiency(Db{-10.0}), 0.0);
  EXPECT_DOUBLE_EQ(sinr_to_efficiency(Db{22.0}), 1.0);
  EXPECT_DOUBLE_EQ(sinr_to_efficiency(Db{35.0}), 1.0);
  double prev = -1.0;
  for (double s = -6.0; s <= 22.0; s += 0.5) {
    const double e = sinr_to_efficiency(Db{s});
    EXPECT_GE(e, prev);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

class PathLossTest : public ::testing::TestWithParam<Band> {};

TEST_P(PathLossTest, MonotoneInDistance) {
  double prev = 0.0;
  for (double d = 10.0; d <= 5000.0; d *= 1.5) {
    const double pl = path_loss_db(GetParam(), Meters{d}).v;
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST_P(PathLossTest, ClampsTinyDistances) {
  EXPECT_DOUBLE_EQ(path_loss_db(GetParam(), Meters{0.0}).v, path_loss_db(GetParam(), Meters{1.0}).v);
}

INSTANTIATE_TEST_SUITE_P(AllBands, PathLossTest, ::testing::ValuesIn(kAllBands));

TEST(PathLoss, HigherFrequencyLosesMore) {
  for (double d : {50.0, 200.0, 1000.0}) {
    EXPECT_GT(path_loss_db(Band::kNrMmWave, Meters{d}), path_loss_db(Band::kNrMid, Meters{d}));
    EXPECT_GT(path_loss_db(Band::kNrMid, Meters{d}), path_loss_db(Band::kNrLow, Meters{d}));
  }
}

TEST(ShadowingField, DeterministicPerSeed) {
  ShadowingField a(Band::kNrLow, 42), b(Band::kNrLow, 42), c(Band::kNrLow, 43);
  EXPECT_DOUBLE_EQ(a.at(123.0, 456.0).v, b.at(123.0, 456.0).v);
  EXPECT_NE(a.at(123.0, 456.0).v, c.at(123.0, 456.0).v);
}

TEST(ShadowingField, SpatiallyCorrelated) {
  ShadowingField f(Band::kNrLow, 7);  // corr distance 90 m
  const double v0 = f.at(1000.0, 1000.0).v;
  const double v_near = f.at(1005.0, 1000.0).v;
  EXPECT_LT(std::abs(v0 - v_near), 3.0);  // 5 m apart: nearly identical
}

TEST(ShadowingField, StdDevRoughlyMatchesSigma) {
  ShadowingField f(Band::kLteMid, 11);  // sigma 7 dB
  double acc = 0.0, acc2 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double v = f.at(i * 97.0, i * 53.0).v;  // far apart => independent
    acc += v;
    acc2 += v * v;
  }
  const double mean = acc / n;
  const double sd = std::sqrt(acc2 / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(sd, 7.0, 1.2);
}

TEST(SectorAttenuation, ZeroOnBoresightCappedOff) {
  EXPECT_DOUBLE_EQ(sector_attenuation_db(0.0, 1.0, Db{20.0}).v, 0.0);
  EXPECT_DOUBLE_EQ(sector_attenuation_db(3.14, 1.0, Db{20.0}).v, 20.0);  // capped
  EXPECT_NEAR(sector_attenuation_db(1.0, 1.0, Db{20.0}).v, 12.0, 1e-9);  // 3dB point def
}

TEST(SectorAttenuation, MonotoneInAngle) {
  double prev = -1.0;
  for (double a = 0.0; a < 2.0; a += 0.1) {
    const double att = sector_attenuation_db(a, 1.05, Db{22.0}).v;
    EXPECT_GE(att, prev);
    prev = att;
  }
}

TEST(BeamPattern, MmWaveIsNarrowest) {
  EXPECT_LT(beam_pattern(Band::kNrMmWave).beamwidth_rad,
            beam_pattern(Band::kNrMid).beamwidth_rad);
  EXPECT_GT(beam_pattern(Band::kNrMmWave).max_attenuation_db,
            beam_pattern(Band::kNrMid).max_attenuation_db);
}

TEST(MakeRrs, StrongerWhenCloser) {
  const Rrs near = make_rrs(Band::kNrLow, Meters{100.0}, Db{0.0}, Db{0.0}, Db{3.0});
  const Rrs far = make_rrs(Band::kNrLow, Meters{2000.0}, Db{0.0}, Db{0.0}, Db{3.0});
  EXPECT_GT(near.rsrp, far.rsrp);
  EXPECT_GT(near.sinr, far.sinr);
  EXPECT_GE(near.rsrq, far.rsrq);
}

TEST(MakeRrs, ReportingRangesRespected) {
  for (double d : {10.0, 100.0, 1000.0, 50000.0}) {
    const Rrs r = make_rrs(Band::kNrMmWave, Meters{d}, Db{-10.0}, Db{-10.0}, Db{3.0});
    EXPECT_GE(r.rsrp, Dbm{-144.0});
    EXPECT_GE(r.rsrq, Db{-19.5});
    EXPECT_LE(r.rsrq, Db{-3.0});
    EXPECT_GE(r.sinr, Db{-20.0});
    EXPECT_LE(r.sinr, Db{40.0});
  }
}

TEST(MakeRrs, DirectionalLossReducesRsrp) {
  const Rrs on = make_rrs(Band::kNrMmWave, Meters{100.0}, Db{0.0}, Db{0.0}, Db{3.0}, Db{0.0});
  const Rrs off = make_rrs(Band::kNrMmWave, Meters{100.0}, Db{0.0}, Db{0.0}, Db{3.0}, Db{15.0});
  EXPECT_NEAR((on.rsrp - off.rsrp).v, 15.0, 1e-9);
}

TEST(FastFading, SubSixIsMild) {
  Rng rng(3);
  stats::RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(fast_fading_db(Band::kNrLow, rng).v);
  EXPECT_NEAR(rs.mean(), 0.0, 0.1);
  EXPECT_LT(rs.stddev(), 2.5);
}

TEST(FastFading, MmWaveHasDeepDips) {
  Rng rng(5);
  double min_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    min_seen = std::min(min_seen, fast_fading_db(Band::kNrMmWave, rng).v);
  }
  EXPECT_LT(min_seen, -8.0);  // occasional beam blockage dips
}

}  // namespace
}  // namespace p5g::radio
