// Observability layer tests: registry semantics (counters, gauges,
// histograms), multi-threaded exactness (run under TSan in CI), exporter
// round-trips, the CSV ragged-row surfacing, thread-pool gauges, the
// TraceLog run manifest, and the golden-file determinism regression for
// `--metrics-out` on the zero-fault seed-42 scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace p5g::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------------- registry --
TEST(ObsRegistry, CounterAddAndValue) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);  // same instance by name
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(2.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
}

TEST(ObsRegistry, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram& h = reg.histogram("test.hist", bounds);
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(5.0);   // bucket 1 (<= 10)
  h.record(50.0);  // bucket 2 (<= 100)
  h.record(500.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
}

TEST(ObsRegistry, DisabledLayerIsNoOp) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.disabled");
  Histogram& h = reg.histogram("test.disabled_hist");
  set_enabled(false);
  c.add(10);
  h.record(1.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.counter").add(2);
  reg.counter("a.counter").add(1);
  reg.gauge("z.gauge").set(3.0);
  reg.histogram("m.hist").record(0.5);
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.counter");
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].first, "b.counter");
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 3.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 1u);
}

// Satellite: hammer the registry from 8 threads; totals must be exact.
// This test is in the TSan CI job's filter — it also proves data-race
// freedom of the sharded counter path.
TEST(ObsRegistry, EightThreadHammerExactTotals) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.hammer.counter");
  Gauge& g = reg.gauge("test.hammer.gauge");
  const double bounds[] = {0.25, 0.5, 0.75};
  Histogram& h = reg.histogram("test.hammer.hist", bounds);

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  constexpr int kRecordsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
      c.add(static_cast<std::uint64_t>(tid));  // 0+1+...+7 = 28
      for (int i = 0; i < kRecordsPerThread; ++i) {
        // 0.125, 0.375, 0.625, 0.875: one value per bucket incl. overflow.
        h.record(static_cast<double>(i % 4) * 0.25 + 0.125);
      }
      for (int i = 0; i < 1000; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread + 28u);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  // i%4 spreads records evenly across the 3 bounds + overflow.
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h.bucket(b), static_cast<std::uint64_t>(kThreads) * kRecordsPerThread / 4)
        << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(g.value(), kThreads * 1000.0);
}

TEST(ObsTimerTest, RecordsIntoHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.timer_ms");
  {
    ObsTimer t(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 1.0);  // at least ~1 ms measured
  {
    ObsTimer t(h, /*active=*/false);  // sampled-out: no clock, no record
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsTimerTest, SampleEveryPeriod) {
  SampleEvery s(2);  // 1 in 4
  int hits = 0;
  for (int i = 0; i < 16; ++i) hits += s.next() ? 1 : 0;
  EXPECT_EQ(hits, 4);
}

// ------------------------------------------------------------- exporter --
TEST(ObsExport, JsonRoundTripIdenticalValues) {
  MetricsRegistry reg;
  reg.counter("p5g.test.alpha").add(12345678901234ull);
  reg.counter("p5g.test.beta").add(7);
  reg.gauge("p5g.test.depth").set(3.25);
  const double bounds[] = {0.1, 1.0, 10.0};
  Histogram& h = reg.histogram("p5g.test.lat_ms", bounds);
  h.record(0.05);
  h.record(0.5);
  h.record(99.0);

  const std::string json = to_json(reg.snapshot());
  const std::optional<ParsedMetrics> parsed = parse_metrics_json(json);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->counters.at("p5g.test.alpha"), 12345678901234ull);
  EXPECT_EQ(parsed->counters.at("p5g.test.beta"), 7u);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("p5g.test.depth"), 3.25);
  const HistogramSnapshot& hs = parsed->histograms.at("p5g.test.lat_ms");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 99.55);
  EXPECT_DOUBLE_EQ(hs.min, 0.05);
  EXPECT_DOUBLE_EQ(hs.max, 99.0);
  ASSERT_EQ(hs.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(hs.bounds[1], 1.0);
  ASSERT_EQ(hs.buckets.size(), 4u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 0u);
  EXPECT_EQ(hs.buckets[3], 1u);
}

TEST(ObsExport, ManifestSerializedWithReport) {
  MetricsRegistry reg;
  reg.counter("p5g.test.c").add(1);
  RunManifest m = make_manifest("unit_test", 99);
  m.wall_seconds = 1.5;
  m.ticks = 1800;
  const std::string json = to_json(reg.snapshot(), &m);
  const std::optional<JsonValue> root = parse_json(json);
  ASSERT_TRUE(root.has_value());
  const JsonValue* manifest = root->get("manifest");
  ASSERT_NE(manifest, nullptr);
  EXPECT_EQ(manifest->get("run")->string, "unit_test");
  EXPECT_DOUBLE_EQ(manifest->get("seed")->number, 99.0);
  EXPECT_FALSE(manifest->get("git_describe")->string.empty());
  EXPECT_FALSE(manifest->get("build_type")->string.empty());
  EXPECT_DOUBLE_EQ(manifest->get("wall_seconds")->number, 1.5);
  EXPECT_DOUBLE_EQ(manifest->get("ticks")->number, 1800.0);
}

TEST(ObsExport, ExportFromArgsWritesJsonAndCsvTwin) {
  registry().counter("p5g.test.export_hook").add(3);
  const std::string path = "/tmp/p5g_obs_export_test.json";
  const char* argv_arr[] = {"prog", "--metrics-out", path.c_str()};
  ASSERT_TRUE(export_from_args(3, const_cast<char**>(argv_arr), "hook_test", 5));

  const std::optional<ParsedMetrics> parsed = parse_metrics_json(slurp(path));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->counters.at("p5g.test.export_hook"), 3u);

  // CSV twin: header plus one row per scalar.
  const std::string csv_text = slurp(path + ".csv");
  EXPECT_NE(csv_text.find("metric,kind,field,value"), std::string::npos);
  EXPECT_NE(csv_text.find("p5g.test.export_hook,counter,value,3"),
            std::string::npos);

  // Without the flag, nothing happens.
  const char* argv_none[] = {"prog"};
  EXPECT_FALSE(export_from_args(1, const_cast<char**>(argv_none), "hook_test"));

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".csv");
}

// ------------------------------------------- csv ragged-row surfacing --
TEST(ObsCsv, RaggedRowsSurfaceInRegistryAndManifest) {
  registry().reset();
  const std::string path = "/tmp/p5g_obs_ragged.csv";
  {
    csv::Writer w(path, {"a", "b", "c"});
    w.write_row({"1", "2", "3"});
    w.write_row({"1", "2"});            // short: padded, counted
    w.write_row({"1", "2", "3", "4"});  // long: truncated, counted
  }
  EXPECT_EQ(registry().counter("p5g.csv.write_ragged_rows").value(), 2u);

  // Hand-write a ragged file and read it back.
  {
    std::ofstream out(path);
    out << "a,b,c\n1,2,3\n4,5\n";
  }
  const csv::Table t = csv::read_file(path);
  EXPECT_EQ(t.malformed_rows, 1u);
  EXPECT_EQ(registry().counter("p5g.csv.read_ragged_rows").value(), 1u);

  // The run manifest warns when the tolerance counters are nonzero. Keep
  // only the csv warnings: a checkout with local edits legitimately adds a
  // "build: ... dirty working tree" warning that is not under test here.
  auto csv_warnings = [](const RunManifest& man) {
    std::vector<std::string> out;
    for (const std::string& w : man.warnings) {
      if (w.rfind("csv:", 0) == 0) out.push_back(w);
    }
    return out;
  };
  const RunManifest m = make_manifest("ragged_test");
  const std::vector<std::string> ragged = csv_warnings(m);
  ASSERT_EQ(ragged.size(), 2u);
  EXPECT_NE(ragged[0].find("ragged"), std::string::npos);
  EXPECT_NE(ragged[1].find("ragged"), std::string::npos);

  registry().reset();
  EXPECT_TRUE(csv_warnings(make_manifest("clean_test")).empty());
  std::filesystem::remove(path);
}

// --------------------------------------------------- thread pool gauges --
TEST(ObsThreadPool, QueueAndActiveGaugesTrackLoad) {
  registry().reset();
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> running{0};

  Gauge& active = registry().gauge("p5g.pool.active_workers");
  Gauge& depth = registry().gauge("p5g.pool.queue_depth");
  {
    ThreadPool pool(2);
    EXPECT_DOUBLE_EQ(registry().gauge("p5g.pool.threads").value(), 2.0);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        running.fetch_add(1);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      });
    }
    // Both workers busy, two jobs queued.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (running.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_EQ(running.load(), 2);
    EXPECT_DOUBLE_EQ(active.value(), 2.0);
    EXPECT_DOUBLE_EQ(depth.value(), 2.0);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    EXPECT_TRUE(pool.wait_idle().empty());
  }
  EXPECT_EQ(registry().counter("p5g.pool.jobs_submitted").value(), 4u);
  EXPECT_EQ(registry().counter("p5g.pool.jobs_completed").value(), 4u);
  EXPECT_DOUBLE_EQ(active.value(), 0.0);
  EXPECT_DOUBLE_EQ(depth.value(), 0.0);
  // Every job's queue wait was sampled.
  const MetricsSnapshot s = registry().snapshot();
  for (const HistogramSnapshot& h : s.histograms) {
    if (h.name == "p5g.pool.queue_wait_ms") {
      EXPECT_EQ(h.count, 4u);
    }
  }
}

// ------------------------------------------------- manifest on TraceLog --
sim::Scenario golden_scenario() {
  sim::Scenario s;
  s.name = "golden_zero_fault";
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{90.0};
  s.seed = 42;
  return s;
}

TEST(ObsManifest, AttachedToEveryTraceLog) {
  const trace::TraceLog log = sim::run_scenario(golden_scenario());
  EXPECT_EQ(log.manifest.run, "golden_zero_fault");
  EXPECT_EQ(log.manifest.seed, 42u);
  EXPECT_EQ(log.manifest.ticks, log.ticks.size());
  EXPECT_GT(log.manifest.wall_seconds, 0.0);
  EXPECT_FALSE(log.manifest.git_describe.empty());
  EXPECT_FALSE(log.manifest.build_type.empty());
}

// --------------------------------------------- determinism + golden file --
// The zero-fault seed-42 scenario must produce identical counters on every
// run (timings vary; event counts must not), and those counters must match
// the committed golden metrics file — the metrics twin of the byte-identity
// trace regression in faults_test.cpp.
TEST(ObsDeterminism, GoldenScenarioCountersAreReproducible) {
  registry().reset();
  (void)sim::run_scenario(golden_scenario());
  const std::string run_a = to_json(registry().snapshot(), nullptr,
                                    /*counters_only=*/true);

  registry().reset();
  (void)sim::run_scenario(golden_scenario());
  const std::string run_b = to_json(registry().snapshot(), nullptr,
                                    /*counters_only=*/true);

  // Byte-identical counters across runs in the same process.
  EXPECT_EQ(run_a, run_b);

  const std::optional<ParsedMetrics> fresh = parse_metrics_json(run_b);
  ASSERT_TRUE(fresh.has_value());
  // Debug aid + golden (re)generation source.
  std::ofstream("/tmp/p5g_zero_fault_seed42.metrics.fresh.json") << run_b;

  const std::string golden_path =
      std::string(P5G_GOLDEN_DIR) + "/zero_fault_seed42.metrics.json";
  const std::string golden_text = slurp(golden_path);
  ASSERT_FALSE(golden_text.empty()) << "golden metrics missing: " << golden_path;
  const std::optional<ParsedMetrics> golden = parse_metrics_json(golden_text);
  ASSERT_TRUE(golden.has_value());
  ASSERT_FALSE(golden->counters.empty());

  // Every golden counter must be present with the exact same value. (Subset
  // comparison, not byte equality: a full-binary run registers extra
  // zero-valued metrics from earlier tests.)
  for (const auto& [name, expected] : golden->counters) {
    const auto it = fresh->counters.find(name);
    ASSERT_NE(it, fresh->counters.end()) << "counter vanished: " << name;
    EXPECT_EQ(it->second, expected) << "counter diverged: " << name;
  }
}

}  // namespace
}  // namespace p5g::obs
