#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geo/route.h"
#include "ran/deployment.h"

namespace p5g::ran {
namespace {

geo::Route straight_route(Meters length) {
  return geo::Route({{0.0, 0.0}, {length.v, 0.0}});
}

class DeploymentTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(DeploymentTest, PlacesAllCarrierBands) {
  Deployment d(profile_opx(), straight_route(Meters{20000.0}), rng_);
  EXPECT_FALSE(d.cells_on_band(radio::Band::kLteMid).empty());
  EXPECT_FALSE(d.cells_on_band(radio::Band::kNrLow).empty());
  EXPECT_FALSE(d.cells_on_band(radio::Band::kNrMmWave).empty());
}

TEST_P(DeploymentTest, TowerSpacingTracksBandRadius) {
  Deployment d(profile_opx(), straight_route(Meters{30000.0}), rng_);
  // Low-band towers are much sparser than mmWave towers.
  std::set<int> low_towers, mmw_towers;
  for (const Cell* c : d.cells_on_band(radio::Band::kNrLow)) low_towers.insert(c->tower_id);
  for (const Cell* c : d.cells_on_band(radio::Band::kNrMmWave)) mmw_towers.insert(c->tower_id);
  EXPECT_GT(mmw_towers.size(), 3 * low_towers.size());
}

TEST_P(DeploymentTest, MmWaveTowersHaveThreeBeams) {
  Deployment d(profile_opx(), straight_route(Meters{5000.0}), rng_);
  std::map<int, int> beams_per_tower;
  for (const Cell* c : d.cells_on_band(radio::Band::kNrMmWave)) {
    ++beams_per_tower[c->tower_id];
  }
  ASSERT_FALSE(beams_per_tower.empty());
  for (const auto& [tower, beams] : beams_per_tower) EXPECT_EQ(beams, 3);
}

TEST_P(DeploymentTest, ColocatedTowersSharePci) {
  CarrierProfile p = profile_opy();
  p.colocation_fraction = 1.0;  // force co-location wherever possible
  Deployment d(p, straight_route(Meters{30000.0}), rng_);
  int checked = 0;
  for (const Tower& t : d.towers()) {
    if (!t.colocated) continue;
    ++checked;
    // The anchor LTE cell and the first NR sector share a PCI.
    std::set<int> lte_pcis, nr_pcis;
    for (const Cell& c : d.cells()) {
      if (c.tower_id != t.id) continue;
      (radio::band_rat(c.band) == radio::Rat::kLte ? lte_pcis : nr_pcis).insert(c.pci);
    }
    bool shared = false;
    for (int pci : nr_pcis) {
      if (lte_pcis.count(pci)) shared = true;
    }
    EXPECT_TRUE(shared) << "tower " << t.id;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(DeploymentTest, NonColocatedCellsHaveUniquePcisPerBandPair) {
  CarrierProfile p = profile_opx();
  p.colocation_fraction = 0.0;
  Deployment d(p, straight_route(Meters{20000.0}), rng_);
  std::set<int> pcis;
  for (const Cell& c : d.cells()) {
    EXPECT_TRUE(pcis.insert(c.pci).second) << "duplicate pci " << c.pci;
  }
}

TEST_P(DeploymentTest, CellsNearReturnsSortedByDistance) {
  Deployment d(profile_opx(), straight_route(Meters{20000.0}), rng_);
  const geo::Point probe{10000.0, 0.0};
  const auto near = d.cells_near(probe, radio::Band::kNrLow, Meters{5000.0});
  ASSERT_GE(near.size(), 2u);
  for (std::size_t i = 1; i < near.size(); ++i) {
    EXPECT_LE(geo::distance(near[i - 1]->position, probe),
              geo::distance(near[i]->position, probe));
  }
  for (const Cell* c : near) {
    EXPECT_LE(geo::distance(c->position, probe), Meters{5000.0});
    EXPECT_EQ(c->band, radio::Band::kNrLow);
  }
}

TEST_P(DeploymentTest, DirectionalFlagsMatchSectorCount) {
  Deployment d(profile_opy(), straight_route(Meters{10000.0}), rng_);
  for (const Cell& c : d.cells()) {
    if (c.band == radio::Band::kNrMid || c.band == radio::Band::kNrMmWave) {
      EXPECT_TRUE(c.directional);
    }
    if (c.band == radio::Band::kLteMid || c.band == radio::Band::kLteLow ||
        c.band == radio::Band::kNrLow) {
      EXPECT_FALSE(c.directional);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeploymentTest, ::testing::Values(1u, 17u, 23u));

TEST(CarrierProfiles, MatchPaperArchetypes) {
  EXPECT_FALSE(profile_opx().offers_sa);
  EXPECT_TRUE(profile_opy().offers_sa);
  EXPECT_FALSE(profile_opz().offers_sa);
  // OpY deploys mid-band; OpX/OpZ deploy mmWave.
  auto has = [](const CarrierProfile& p, radio::Band b) {
    return std::find(p.nr_bands.begin(), p.nr_bands.end(), b) != p.nr_bands.end();
  };
  EXPECT_TRUE(has(profile_opy(), radio::Band::kNrMid));
  EXPECT_TRUE(has(profile_opx(), radio::Band::kNrMmWave));
  EXPECT_TRUE(has(profile_opz(), radio::Band::kNrMmWave));
  // Co-location fractions span the paper's 5-36 % range.
  EXPECT_NEAR(profile_opx().colocation_fraction, 0.05, 1e-9);
  EXPECT_NEAR(profile_opy().colocation_fraction, 0.36, 1e-9);
}

TEST(ColocationFraction, RoughlyMatchesProfile) {
  CarrierProfile p = profile_opy();  // 36 %
  Rng rng(5);
  Deployment d(p, straight_route(Meters{100000.0}), rng);
  int nr_towers = 0, colocated = 0;
  for (const Tower& t : d.towers()) {
    if (!t.has_gnb) continue;
    ++nr_towers;
    if (t.colocated) ++colocated;
  }
  ASSERT_GT(nr_towers, 20);
  const double frac = static_cast<double>(colocated) / nr_towers;
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.60);
}

}  // namespace
}  // namespace p5g::ran
