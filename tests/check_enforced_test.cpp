// Trip tests for the contract layer, compiled in their own test target
// (p5g_check_tests) with P5G_CHECKS_ENABLED forced to 1 so the macro paths
// are exercised in every build configuration, including Release.
//
// Contracts living in HEADERS (e.g. obs::Histogram's bounds check) are
// instantiated in this TU and therefore always active here. Contracts
// compiled into the LIBRARIES (faults.cpp, thread_pool.cpp, metrics.cpp)
// follow the build's flag set; those tests skip themselves via
// check::library_checks_enabled() when the libraries were built checks-off.
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "ran/faults.h"

namespace p5g {
namespace {

static_assert(P5G_CHECKS_ENABLED == 1,
              "this target must be compiled with checks forced on");

[[noreturn]] void throwing_handler(const check::Failure& f) {
  throw std::runtime_error(std::string(check::kind_name(f.kind)) + ": " +
                           f.expression);
}

class ThrowingHandlerScope {
 public:
  ThrowingHandlerScope() : prev_(check::set_handler(&throwing_handler)) {}
  ~ThrowingHandlerScope() { check::set_handler(prev_); }

 private:
  check::Handler prev_;
};

#define EXPECT_TRIP(stmt) EXPECT_THROW(stmt, std::runtime_error)

TEST(CheckEnforced, RequireTripCarriesKindAndExpression) {
  ThrowingHandlerScope scope;
  try {
    P5G_REQUIRE(1 == 2, "one is not two");
    FAIL() << "P5G_REQUIRE(false) did not trip";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "REQUIRE: 1 == 2");
  }
}

TEST(CheckEnforced, AllThreeMacrosTrip) {
  ThrowingHandlerScope scope;
  EXPECT_TRIP(P5G_REQUIRE(false));
  EXPECT_TRIP(P5G_ASSERT(false, "message"));
  EXPECT_TRIP(P5G_ENSURE(false));
}

TEST(CheckEnforced, ConditionEvaluatedExactlyOnce) {
  ThrowingHandlerScope scope;
  int evals = 0;
  EXPECT_NO_THROW(P5G_ASSERT((++evals, true)));
  EXPECT_EQ(evals, 1);
  EXPECT_TRIP(P5G_ASSERT((++evals, false)));
  EXPECT_EQ(evals, 2);
}

// Uninstalled (default) handler: a trip must terminate the process, never
// resume. Death test so the abort happens in a forked child.
TEST(CheckEnforcedDeathTest, DefaultHandlerAborts) {
  EXPECT_DEATH(check::fail(check::Kind::kRequire, "x", "f.cpp", 1, ""),
               "REQUIRE violated");
}

// Header-inline library contract: Histogram's bounds check compiles into
// this TU, so it is enforced here regardless of how the libraries were
// built.
TEST(CheckEnforced, HistogramRejectsNonIncreasingBounds) {
  ThrowingHandlerScope scope;
  const std::vector<double> bad = {1.0, 1.0, 2.0};
  EXPECT_TRIP(obs::Histogram h(bad));
  const std::vector<double> good = {1.0, 2.0, 4.0};
  EXPECT_NO_THROW(obs::Histogram h(good));
}

// --- Library-side contracts (skip when the libraries are checks-off) ---

TEST(CheckEnforced, FaultProfileProbabilityOutOfRangeTrips) {
  if (!check::library_checks_enabled()) {
    GTEST_SKIP() << "libraries built without contract checks";
  }
  ThrowingHandlerScope scope;
  ran::FaultProfile bad = ran::FaultProfile::uniform(1.5, 0.0);
  EXPECT_TRIP(ran::validate_fault_profile(bad));
  bad = ran::FaultProfile::uniform(0.0, -0.1);
  EXPECT_TRIP(ran::validate_fault_profile(bad));
  EXPECT_NO_THROW(ran::validate_fault_profile(ran::FaultProfile{}));
}

TEST(CheckEnforced, FaultInjectorValidatesAtConstruction) {
  if (!check::library_checks_enabled()) {
    GTEST_SKIP() << "libraries built without contract checks";
  }
  ThrowingHandlerScope scope;
  ran::FaultProfile bad;
  bad.rach_max_attempts = 0;
  EXPECT_TRIP(ran::FaultInjector(bad, Rng(7)));
  ran::FaultProfile backwards;
  backwards.reestablish_floor_ms = 500.0_ms;  // floor above the mean
  backwards.reestablish_mean_ms = 240.0_ms;
  EXPECT_TRIP(ran::FaultInjector(backwards, Rng(7)));
  EXPECT_NO_THROW(ran::FaultInjector(ran::FaultProfile{}, Rng(7)));
}

TEST(CheckEnforced, MetricsRegistryRejectsCrossKindNameReuse) {
  if (!check::library_checks_enabled()) {
    GTEST_SKIP() << "libraries built without contract checks";
  }
  ThrowingHandlerScope scope;
  // A local registry keeps the trip out of the process-wide one.
  obs::MetricsRegistry reg;
  reg.counter("p5g.test.dup");
  EXPECT_TRIP(reg.gauge("p5g.test.dup"));
  EXPECT_TRIP(reg.histogram("p5g.test.dup"));
  // Same kind, same name is a lookup, not a violation.
  EXPECT_NO_THROW(reg.counter("p5g.test.dup"));
}

TEST(CheckEnforced, ThreadPoolRejectsNullJob) {
  if (!check::library_checks_enabled()) {
    GTEST_SKIP() << "libraries built without contract checks";
  }
  ThrowingHandlerScope scope;
  ThreadPool pool(1);
  EXPECT_TRIP(pool.submit(std::function<void()>{}));
  EXPECT_TRUE(pool.wait_idle().empty());
}

}  // namespace
}  // namespace p5g
