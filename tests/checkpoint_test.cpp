// Fleet checkpoint format and resume semantics: exact round-trips, rejection
// of every corruption class (truncation, bit flips, wrong magic/version,
// inconsistent entries), and the headline contract — a killed-and-resumed
// fleet run is byte-identical to an uninterrupted one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/io.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "sim/fleet.h"

namespace p5g {
namespace {

sim::FleetScenario small_fleet(std::uint64_t seed = 42, std::size_t n = 6) {
  sim::FleetScenario f;
  f.base.name = "ckpt_fleet";
  f.base.carrier = ran::profile_opx();
  f.base.arch = ran::Arch::kNsa;
  f.base.nr_band = radio::Band::kNrLow;
  f.base.mobility = sim::MobilityKind::kFreeway;
  f.base.speed_kmh = 110.0;
  f.base.duration = Seconds{10.0};
  f.base.seed = seed;
  f.n_ues = n;
  f.stagger_m = Meters{100.0};
  return f;
}

sim::FleetCheckpoint sample_checkpoint() {
  sim::FleetCheckpoint c;
  c.fleet_seed = 0xDEADBEEFCAFEF00DULL;
  c.n_ues = 5;
  for (std::size_t ue : {0u, 2u, 4u}) {
    sim::UeSummary u;
    u.ue = ue;
    u.seed = sim::fleet_ue_seed(c.fleet_seed, ue);
    u.mobility = sim::MobilityKind::kCity;
    u.start_offset_m = Meters{150.0 * static_cast<double>(ue)};
    u.trace.ticks = 200 * (ue + 1);
    u.trace.duration = Seconds{9.95};
    u.trace.distance = Meters{305.5551234567 + static_cast<double>(ue)};
    u.trace.mean_throughput_mbps = 87.125;
    u.trace.mean_rtt_ms = Milliseconds{43.0625};
    u.trace.lte_halted_s = Seconds{0.05};
    u.trace.nr_halted_s = Seconds{-0.0};  // signed-zero bit pattern must round-trip
    u.trace.any_halted_s = Seconds{0.05};
    u.trace.reports = 7;
    u.trace.handovers = 3;
    u.trace.ho_success = 2;
    u.trace.ho_prep_failure = 1;
    u.trace.ho_exec_failure = 0;
    u.trace.ho_rlf_reestablish = 0;
    c.done.push_back(u);
  }
  return c;
}

// Re-seal a tampered body with a fresh CRC so decode exercises the checks
// BEHIND the seal (magic, version, entry consistency).
std::string reseal(std::string body_and_old_crc) {
  body_and_old_crc.resize(body_and_old_crc.size() - 4);
  const std::uint32_t crc = io::crc32(body_and_old_crc);
  for (int i = 0; i < 4; ++i) {
    body_and_old_crc.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  return body_and_old_crc;
}

TEST(Checkpoint, EncodeDecodeRoundTripIsExact) {
  const sim::FleetCheckpoint c = sample_checkpoint();
  const std::string bytes = encode_checkpoint(c);
  std::string why;
  const auto back = sim::decode_checkpoint(bytes, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(*back, c);
}

TEST(Checkpoint, SaveLoadRoundTripsThroughDisk) {
  const std::string path = "/tmp/p5g_ckpt_roundtrip.bin";
  const sim::FleetCheckpoint c = sample_checkpoint();
  ASSERT_TRUE(sim::save_checkpoint(path, c).ok);
  std::string why;
  const auto back = sim::load_checkpoint(path, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(*back, c);
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::string why;
    EXPECT_FALSE(sim::decode_checkpoint(bytes.substr(0, len), &why).has_value())
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(why.empty());
  }
}

TEST(Checkpoint, AnySingleBitFlipIsRejected) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  for (std::size_t pos = 0; pos < bytes.size(); pos += 13) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    std::string why;
    EXPECT_FALSE(sim::decode_checkpoint(corrupt, &why).has_value())
        << "bit flip at " << pos << " decoded";
  }
}

TEST(Checkpoint, WrongMagicAndVersionAreRejectedBehindTheSeal) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  std::string why;
  EXPECT_FALSE(sim::decode_checkpoint(reseal(wrong_magic), &why).has_value());
  EXPECT_NE(why.find("magic"), std::string::npos) << why;

  std::string wrong_version = bytes;
  wrong_version[4] = 2;
  EXPECT_FALSE(sim::decode_checkpoint(reseal(wrong_version), &why).has_value());
  EXPECT_NE(why.find("version"), std::string::npos) << why;
}

TEST(Checkpoint, InconsistentEntriesAreRejected) {
  std::string why;

  sim::FleetCheckpoint out_of_range = sample_checkpoint();
  out_of_range.done.back().ue = 99;  // >= n_ues
  EXPECT_FALSE(
      sim::decode_checkpoint(encode_checkpoint(out_of_range), &why).has_value());
  EXPECT_NE(why.find("out of range"), std::string::npos) << why;

  sim::FleetCheckpoint unordered = sample_checkpoint();
  std::swap(unordered.done[0], unordered.done[1]);
  EXPECT_FALSE(
      sim::decode_checkpoint(encode_checkpoint(unordered), &why).has_value());
  EXPECT_NE(why.find("order"), std::string::npos) << why;

  sim::FleetCheckpoint overfull = sample_checkpoint();
  overfull.n_ues = 2;  // claims fewer UEs than completed entries
  EXPECT_FALSE(
      sim::decode_checkpoint(encode_checkpoint(overfull), &why).has_value());

  std::string trailing = encode_checkpoint(sample_checkpoint());
  trailing.insert(trailing.size() - 4, "\0", 1);  // extra body byte, resealed
  EXPECT_FALSE(sim::decode_checkpoint(reseal(trailing), &why).has_value());
}

TEST(Checkpoint, RejectionIsCounted) {
  const std::uint64_t before =
      obs::registry().counter("p5g.resilience.checkpoint_rejected").value();
  std::string why;
  EXPECT_FALSE(sim::decode_checkpoint("garbage", &why).has_value());
  EXPECT_GT(obs::registry().counter("p5g.resilience.checkpoint_rejected").value(),
            before);
}

TEST(Checkpoint, MissingFileIsReportedDistinctly) {
  std::string why;
  EXPECT_FALSE(sim::load_checkpoint("/tmp/p5g_no_such_ckpt.bin", &why).has_value());
  EXPECT_NE(why.find("missing"), std::string::npos) << why;
}

// ------------------------------------------------------ resume semantics --

TEST(CheckpointResume, KilledRunResumesByteIdentical) {
  const sim::FleetScenario f = small_fleet();
  const std::string path = "/tmp/p5g_ckpt_resume.bin";
  std::remove(path.c_str());

  // The uninterrupted reference.
  const sim::FleetResult full = sim::run_fleet(f, 0);
  ASSERT_TRUE(full.ok());

  // Simulate a run killed after 3 of 6 UEs: persist exactly what the
  // periodic checkpointing would have written at that point.
  sim::FleetCheckpoint partial;
  partial.fleet_seed = f.base.seed;
  partial.n_ues = f.n_ues;
  partial.done.assign(full.ues.begin(), full.ues.begin() + 3);
  ASSERT_TRUE(sim::save_checkpoint(path, partial).ok);

  // Resume must re-run only UEs 3..5 and stitch an identical result.
  const std::uint64_t ue_runs_before =
      obs::registry().counter("p5g.fleet.ues").value();
  sim::FleetCheckpointOptions opts;
  opts.path = path;
  opts.resume = true;
  const sim::FleetResult resumed = sim::run_fleet(f, opts, 0);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.ues, full.ues) << "resumed result diverged";
  EXPECT_EQ(obs::registry().counter("p5g.fleet.ues").value() - ue_runs_before,
            f.n_ues - 3u)
      << "checkpointed UEs were re-run instead of skipped";

  // The final checkpoint now covers the whole fleet.
  const auto final_ckpt = sim::load_checkpoint(path);
  ASSERT_TRUE(final_ckpt.has_value());
  EXPECT_EQ(final_ckpt->done.size(), f.n_ues);
}

TEST(CheckpointResume, MismatchedCheckpointTriggersCleanRestart) {
  const sim::FleetScenario f = small_fleet();
  const std::string path = "/tmp/p5g_ckpt_mismatch.bin";

  // A checkpoint from a DIFFERENT fleet (other seed): must be ignored.
  sim::FleetCheckpoint alien;
  alien.fleet_seed = f.base.seed + 1;
  alien.n_ues = f.n_ues;
  ASSERT_TRUE(sim::save_checkpoint(path, alien).ok);

  sim::FleetCheckpointOptions opts;
  opts.path = path;
  opts.resume = true;
  const sim::FleetResult resumed = sim::run_fleet(f, opts, 0);
  const sim::FleetResult full = sim::run_fleet(f, 0);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.ues, full.ues) << "clean restart after mismatch diverged";
}

TEST(CheckpointResume, CorruptCheckpointTriggersCleanRestart) {
  const sim::FleetScenario f = small_fleet();
  const std::string path = "/tmp/p5g_ckpt_corrupt.bin";
  ASSERT_TRUE(io::atomic_write_file(path, "definitely not a checkpoint").ok);

  sim::FleetCheckpointOptions opts;
  opts.path = path;
  opts.resume = true;
  const sim::FleetResult resumed = sim::run_fleet(f, opts, 0);
  const sim::FleetResult full = sim::run_fleet(f, 0);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.ues, full.ues);
}

TEST(CheckpointResume, PeriodicSavesProduceIdenticalFinalResult) {
  const sim::FleetScenario f = small_fleet();
  const std::string path = "/tmp/p5g_ckpt_periodic.bin";
  std::remove(path.c_str());

  sim::FleetCheckpointOptions opts;
  opts.path = path;
  opts.every_k = 2;
  const sim::FleetResult ckpt_run = sim::run_fleet(f, opts, 0);
  const sim::FleetResult plain = sim::run_fleet(f, 0);
  EXPECT_EQ(ckpt_run.ues, plain.ues);
  const auto final_ckpt = sim::load_checkpoint(path);
  ASSERT_TRUE(final_ckpt.has_value());
  EXPECT_EQ(final_ckpt->done.size(), f.n_ues);
}

TEST(CheckpointResume, FinalCheckpointExcludesQuarantinedUes) {
  const sim::FleetScenario f = small_fleet();
  const std::string path = "/tmp/p5g_ckpt_quarantine.bin";
  std::remove(path.c_str());

  // Find a chaos seed that faults some (not all) UEs, deterministically.
  std::uint64_t chaos_seed = 0;
  for (std::uint64_t cs = 1; cs < 10000 && chaos_seed == 0; ++cs) {
    chaos::ChaosProfile probe;
    probe.seed = cs;
    probe.task_fault_rate = 0.3;
    const chaos::ScopedChaos scoped(probe);
    std::size_t hits = 0;
    for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
      if (chaos::should_fault_task(ue)) ++hits;
    }
    if (hits >= 1 && hits < f.n_ues) chaos_seed = cs;
  }
  ASSERT_NE(chaos_seed, 0u);

  sim::FleetCheckpointOptions opts;
  opts.path = path;
  std::size_t quarantined = 0;
  {
    chaos::ChaosProfile p;
    p.seed = chaos_seed;
    p.task_fault_rate = 0.3;
    const chaos::ScopedChaos scoped(p);
    const sim::FleetResult r = sim::run_fleet(f, opts, 0);
    quarantined = r.errors.size();
    ASSERT_GT(quarantined, 0u);
  }
  const auto ckpt = sim::load_checkpoint(path);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->done.size(), f.n_ues - quarantined)
      << "failed UEs must stay out of the checkpoint so --resume retries them";

  // And a resume with chaos off retries exactly the quarantined UEs,
  // completing the fleet.
  opts.resume = true;
  const sim::FleetResult healed = sim::run_fleet(f, opts, 0);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.ues, sim::run_fleet(f, 0).ues);
}

}  // namespace
}  // namespace p5g
