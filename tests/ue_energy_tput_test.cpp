#include <gtest/gtest.h>

#include <memory>

#include "common/stats.h"
#include "energy/power_model.h"
#include "tput/throughput.h"
#include "ue/mobility.h"

namespace p5g {
namespace {

// ------------------------------------------------------------- mobility --
TEST(Mobility, ConstantSpeedMakesSteadyProgress) {
  geo::Route route({{0, 0}, {100000, 0}});
  ue::ConstantSpeedDriver drv(route, 110.0, Rng(1));
  ue::UePosition last{};
  for (int i = 0; i < 1000; ++i) last = drv.advance(Seconds{0.05});
  // 50 s at ~110 km/h: ~1530 m, within the perturbation envelope.
  EXPECT_NEAR(last.route_position.v, 1530.0, 300.0);
}

TEST(Mobility, PositionsAreMonotone) {
  geo::Route route({{0, 0}, {100000, 0}});
  for (auto make : {+[](const geo::Route& r) -> std::unique_ptr<ue::MobilityModel> {
                      return std::make_unique<ue::ConstantSpeedDriver>(r, 80.0, Rng(2));
                    },
                    +[](const geo::Route& r) -> std::unique_ptr<ue::MobilityModel> {
                      return std::make_unique<ue::StopAndGoDriver>(r, 40.0, Rng(3));
                    },
                    +[](const geo::Route& r) -> std::unique_ptr<ue::MobilityModel> {
                      return std::make_unique<ue::Walker>(r, Rng(4));
                    }}) {
    auto m = make(route);
    Meters prev{0.0};
    for (int i = 0; i < 2000; ++i) {
      const ue::UePosition p = m->advance(Seconds{0.05});
      EXPECT_GE(p.route_position, prev - Meters{1e-9});
      EXPECT_GE(p.speed_mps, 0.0);
      prev = p.route_position;
    }
  }
}

TEST(Mobility, StopAndGoActuallyStops) {
  geo::Route route({{0, 0}, {100000, 0}});
  ue::StopAndGoDriver drv(route, 40.0, Rng(5));
  int stopped_ticks = 0, moving_ticks = 0;
  for (int i = 0; i < 20 * 300; ++i) {  // 5 minutes
    const ue::UePosition p = drv.advance(Seconds{0.05});
    if (p.speed_mps < 0.5) ++stopped_ticks;
    if (p.speed_mps > 5.0) ++moving_ticks;
  }
  EXPECT_GT(stopped_ticks, 200);
  EXPECT_GT(moving_ticks, 1000);
}

TEST(Mobility, WalkerSpeedIsPedestrian) {
  geo::Route route({{0, 0}, {10000, 0}});
  ue::Walker w(route, Rng(6));
  for (int i = 0; i < 4000; ++i) {
    const ue::UePosition p = w.advance(Seconds{0.05});
    EXPECT_GE(p.speed_mps, 0.7);
    EXPECT_LE(p.speed_mps, 2.1);
  }
}

// --------------------------------------------------------------- energy --
ran::HandoverRecord make_ho(ran::HoType type, radio::Band band) {
  ran::HandoverRecord h;
  h.type = type;
  h.src_band = band;
  h.dst_band = band;
  Rng rng(9);
  h.timing = ran::sample_ho_timing(type, band, false, rng);
  h.signaling = ran::ho_signaling(type, band, rng);
  return h;
}

TEST(Energy, LtePerHoCalibration) {
  // ~0.22 J per LTE HO (3.4 mAh for ~220 HOs in an hour at 130 km/h).
  stats::RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    rs.add(energy::ho_energy_joules(make_ho(ran::HoType::kLteh, radio::Band::kLteMid)));
  }
  EXPECT_NEAR(rs.mean(), 0.22, 0.06);
}

TEST(Energy, NsaLowBandCostsMoreThanLte) {
  const double lte =
      energy::ho_energy_joules(make_ho(ran::HoType::kLteh, radio::Band::kLteMid));
  const double nsa =
      energy::ho_energy_joules(make_ho(ran::HoType::kScgm, radio::Band::kNrLow));
  EXPECT_GT(nsa, 2.5 * lte);
}

TEST(Energy, SingleMmWaveHoCheaperThanLowBand) {
  // Paper: a single mmWave HO is ~54 % more energy-efficient.
  stats::RunningStats low, mmw;
  for (int i = 0; i < 500; ++i) {
    low.add(energy::ho_energy_joules(make_ho(ran::HoType::kScgm, radio::Band::kNrLow)));
    mmw.add(energy::ho_energy_joules(make_ho(ran::HoType::kScgm, radio::Band::kNrMmWave)));
  }
  EXPECT_NEAR(low.mean() / mmw.mean(), 1.54, 0.25);
}

TEST(Energy, PowerCorrelatesWithSignaling) {
  const ran::SignalingCounts few{3, 1, 5};
  const ran::SignalingCounts many{8, 4, 40};
  EXPECT_GT(energy::ho_power(ran::HoType::kScgm, radio::Band::kNrLow, many),
            energy::ho_power(ran::HoType::kScgm, radio::Band::kNrLow, few));
}

TEST(Energy, SummaryAggregates) {
  std::vector<ran::HandoverRecord> hos;
  for (int i = 0; i < 10; ++i) hos.push_back(make_ho(ran::HoType::kScga, radio::Band::kNrLow));
  const energy::EnergySummary s = energy::summarize(hos);
  EXPECT_EQ(s.handovers, 10);
  EXPECT_GT(s.joules, 0.0);
  EXPECT_NEAR(s.mah, joules_to_mah(s.joules), 1e-12);
  EXPECT_GT(s.mean_power, 0.5);
}

TEST(Energy, EquivalentDataVolumesMatchPaperRatios) {
  // 34.7 mAh ~= 4.3 GB down on low-band; 81.7 mAh ~= 75.4 GB on mmWave.
  EXPECT_NEAR(energy::equivalent_download_gb(radio::Band::kNrLow, 34.7), 4.3, 0.01);
  EXPECT_NEAR(energy::equivalent_download_gb(radio::Band::kNrMmWave, 81.7), 75.4, 0.01);
  EXPECT_NEAR(energy::equivalent_upload_gb(radio::Band::kNrLow, 34.7), 2.0, 0.01);
}

// ----------------------------------------------------------- throughput --
TEST(Tput, LinkCapacityMonotoneInSinr) {
  double prev = -1.0;
  for (double sinr = -10.0; sinr <= 30.0; sinr += 1.0) {
    const double c = tput::link_capacity(radio::Band::kNrLow, Db{sinr});
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(tput::link_capacity(radio::Band::kNrLow, Db{-15.0}), 0.0);
}

TEST(Tput, MmWavePeakDominates) {
  EXPECT_GT(tput::link_capacity(radio::Band::kNrMmWave, Db{22.0}),
            tput::link_capacity(radio::Band::kNrMid, Db{22.0}));
  EXPECT_GT(tput::link_capacity(radio::Band::kNrMid, Db{22.0}),
            tput::link_capacity(radio::Band::kNrLow, Db{22.0}));
}

tput::DataPlaneInput both_up(tput::TrafficMode mode) {
  tput::DataPlaneInput in;
  in.mode = mode;
  in.lte = {true, false, radio::Band::kLteMid, Db{20.0}};
  in.nr = {true, false, radio::Band::kNrLow, Db{20.0}};
  return in;
}

TEST(Tput, NrOnlyModeUsesNrCapacity) {
  Rng rng(1);
  stats::RunningStats rs;
  for (int i = 0; i < 2000; ++i) rs.add(tput::downlink_throughput(both_up(tput::TrafficMode::kNrOnly), rng));
  const double nr_cap = tput::link_capacity(radio::Band::kNrLow, Db{20.0});
  EXPECT_NEAR(rs.mean(), nr_cap * 0.91, nr_cap * 0.05);
}

TEST(Tput, DualModeAddsLteShare) {
  Rng rng(2);
  stats::RunningStats dual, nr_only;
  for (int i = 0; i < 2000; ++i) {
    dual.add(tput::downlink_throughput(both_up(tput::TrafficMode::kDual), rng));
    nr_only.add(tput::downlink_throughput(both_up(tput::TrafficMode::kNrOnly), rng));
  }
  EXPECT_GT(dual.mean(), nr_only.mean() * 0.95);  // LTE share offsets split loss
}

TEST(Tput, HaltedNrZeroesNrOnlyMode) {
  Rng rng(3);
  tput::DataPlaneInput in = both_up(tput::TrafficMode::kNrOnly);
  in.nr.halted = true;
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(tput::downlink_throughput(in, rng), 0.0);
  }
}

TEST(Tput, HaltedNrKeepsLteInDualMode) {
  Rng rng(4);
  tput::DataPlaneInput in = both_up(tput::TrafficMode::kDual);
  in.nr.halted = true;
  stats::RunningStats rs;
  for (int i = 0; i < 2000; ++i) rs.add(tput::downlink_throughput(in, rng));
  EXPECT_GT(rs.mean(), 10.0);  // the 4G leg keeps flowing
}

TEST(Rtt, NrOnlyBaseBelowDualBase) {
  // Sec 4.2: 5G-only has lower RTT without HOs (no eNB detour).
  Rng rng(5);
  stats::RunningStats dual, nr_only;
  for (int i = 0; i < 4000; ++i) {
    dual.add(tput::rtt_sample(both_up(tput::TrafficMode::kDual), std::nullopt, rng).v);
    nr_only.add(tput::rtt_sample(both_up(tput::TrafficMode::kNrOnly), std::nullopt, rng).v);
  }
  EXPECT_LT(nr_only.mean(), dual.mean());
}

TEST(Rtt, DualModeAbsorbsNrHandovers) {
  Rng rng(6);
  stats::RunningStats base, during;
  for (int i = 0; i < 4000; ++i) {
    base.add(tput::rtt_sample(both_up(tput::TrafficMode::kDual), std::nullopt, rng).v);
    during.add(tput::rtt_sample(both_up(tput::TrafficMode::kDual),
                                ran::HoType::kScgm, rng).v);
  }
  // 1-4 % median change in the paper; allow a few percent here.
  EXPECT_LT(during.mean() / base.mean(), 1.10);
}

TEST(Rtt, NrOnlyModeSuffersDuringNrHandovers) {
  Rng rng(7);
  stats::RunningStats base, during;
  for (int i = 0; i < 4000; ++i) {
    base.add(tput::rtt_sample(both_up(tput::TrafficMode::kNrOnly), std::nullopt, rng).v);
    during.add(tput::rtt_sample(both_up(tput::TrafficMode::kNrOnly),
                                ran::HoType::kScgm, rng).v);
  }
  EXPECT_GT(during.mean() / base.mean(), 1.3);
}

TEST(Rtt, MnbhWorstCase) {
  Rng rng(8);
  stats::RunningStats scgm, mnbh;
  for (int i = 0; i < 4000; ++i) {
    scgm.add(tput::rtt_sample(both_up(tput::TrafficMode::kNrOnly), ran::HoType::kScgm, rng).v);
    mnbh.add(tput::rtt_sample(both_up(tput::TrafficMode::kNrOnly), ran::HoType::kMnbh, rng).v);
  }
  EXPECT_GT(mnbh.mean(), scgm.mean());
}

}  // namespace
}  // namespace p5g
