// Seeded violation: console writes from tick-path code. Worker threads
// interleave these nondeterministically under the parallel runner.
// p5g-lint-expect: tick-io
#include <cstdio>
#include <iostream>

namespace p5g::lint_fixture {

void bad_log(double rsrp) {
  std::cout << rsrp << "\n";
  printf("rsrp=%f\n", rsrp);
}

}  // namespace p5g::lint_fixture
