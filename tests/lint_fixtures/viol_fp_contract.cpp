// Seeded violation: explicit FMA contracts a*b+c into one differently-
// rounded operation, breaking golden byte-identity.
// p5g-lint-expect: fp-contract
#include <cmath>

namespace p5g::lint_fixture {

double bad_madd(double a, double b, double c) { return std::fma(a, b, c); }

}  // namespace p5g::lint_fixture
