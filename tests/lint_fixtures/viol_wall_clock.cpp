// Seeded violation: wall-clock reads in tick-path code. Simulated timing
// must derive from Seconds, never from a real clock.
// p5g-lint-expect: wall-clock
#include <chrono>
#include <ctime>

namespace p5g::lint_fixture {

double bad_now() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

long bad_epoch() { return static_cast<long>(time(nullptr)); }

}  // namespace p5g::lint_fixture
