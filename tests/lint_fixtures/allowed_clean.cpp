// Allowance fixture: one seeded violation per code rule, each suppressed
// with a `p5g-lint: allow(<rule>)` comment. The self-test requires ZERO
// findings here — it proves per-line suppression works.
// p5g-lint-expect: clean
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>

namespace p5g::lint_fixture_ok {

double ok_now() {
  const auto t = std::chrono::steady_clock::now();  // p5g-lint: allow(wall-clock)
  return static_cast<double>(t.time_since_epoch().count());
}

double ok_draw() {
  std::mt19937_64 engine{12345};  // p5g-lint: allow(std-random)
  return static_cast<double>(engine());
}

void ok_log(double rsrp) {
  printf("rsrp=%f\n", rsrp);  // p5g-lint: allow(tick-io)
}

double ok_madd(double a, double b, double c) {
  return std::fma(a, b, c);  // p5g-lint: allow(fp-contract)
}

}  // namespace p5g::lint_fixture_ok
