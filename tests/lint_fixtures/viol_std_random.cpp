// Seeded violation: std:: random machinery instead of the seeded p5g::Rng
// streams. A global engine breaks per-stream reproducibility.
// p5g-lint-expect: std-random
#include <random>

namespace p5g::lint_fixture {

double bad_draw() {
  std::mt19937_64 engine{std::random_device{}()};
  return static_cast<double>(engine());
}

}  // namespace p5g::lint_fixture
