// The batched SoA measurement pipeline's determinism contract: every output
// it produces is byte-identical to the scalar AoS reference path — per
// element (make_rrs_batch vs make_rrs, at_cached vs at), per full scenario
// (CSV bytes over several seeds, with and without fault injection), and
// through the fleet's cohort scheduler (N=1 fleet vs run_scenario).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "radio/batch.h"
#include "radio/propagation.h"
#include "sim/fleet.h"

namespace p5g {
namespace {

constexpr radio::Band kAllBands[] = {
    radio::Band::kLteLow, radio::Band::kLteMid, radio::Band::kNrLow,
    radio::Band::kNrMid, radio::Band::kNrMmWave};

bool bitwise_equal(const radio::Rrs& a, const radio::Rrs& b) {
  return std::memcmp(&a.rsrp, &b.rsrp, sizeof(double)) == 0 &&
         std::memcmp(&a.rsrq, &b.rsrq, sizeof(double)) == 0 &&
         std::memcmp(&a.sinr, &b.sinr, sizeof(double)) == 0;
}

// make_rrs_batch over a spread of distances/inputs must reproduce the
// scalar make_rrs bit for bit on every band — not approximately: the golden
// traces hang off this equality.
TEST(RadioBatch, MakeRrsBatchBitIdenticalToScalar) {
  Rng rng(1234);
  for (const radio::Band band : kAllBands) {
    constexpr std::size_t kN = 64;
    std::vector<Meters> dist(kN);
    std::vector<Db> shadow(kN), fading(kN), dir(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      dist[i] = Meters{rng.uniform(0.5, 4000.0)};  // below the 1 m floor included
      shadow[i] = Db{rng.normal(0.0, 6.0)};
      fading[i] = Db{rng.normal(0.0, 3.0)};
      dir[i] = Db{rng.uniform(0.0, 25.0)};
    }
    const Db interference{rng.uniform(0.0, 6.0)};

    std::vector<radio::Rrs> batched(kN);
    radio::make_rrs_batch(band, interference, kN, dist.data(), shadow.data(),
                          fading.data(), dir.data(), batched.data());
    for (std::size_t i = 0; i < kN; ++i) {
      const radio::Rrs scalar =
          radio::make_rrs(band, dist[i], shadow[i], fading[i], interference, dir[i]);
      EXPECT_TRUE(bitwise_equal(batched[i], scalar))
          << "band " << static_cast<int>(band) << " sample " << i;
    }
  }
}

// The corner cache must be invisible: at_cached() over a reused cache along
// a walk equals the scalar at() everywhere, including across grid-cell
// crossings (the only moment the cache refreshes).
TEST(RadioBatch, AtCachedBitIdenticalToAt) {
  for (const radio::Band band : kAllBands) {
    const radio::ShadowingField field(band, /*cell_seed=*/0xABCDEF01u);
    radio::ShadowingField::Corners corners;  // reused across the whole walk
    Rng rng(99);
    double x = 0.0, y = 0.0;
    for (int step = 0; step < 2000; ++step) {
      x += rng.uniform(-30.0, 40.0);
      y += rng.uniform(-30.0, 40.0);
      const Db cached = field.at_cached(field.weights_at(x, y), corners);
      const Db scalar = field.at(x, y);
      ASSERT_EQ(cached, scalar) << "band " << static_cast<int>(band)
                                << " step " << step << " at (" << x << ", " << y << ")";
    }
  }
}

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string csv_bytes(const trace::TraceLog& log, const std::string& tag) {
  const std::string path = "/tmp/p5g_radio_batch_" + tag + ".csv";
  EXPECT_TRUE(trace::write_csv(log, path).ok);
  const std::string bytes = slurp(path) + "\n---ho---\n" + slurp(path + ".ho.csv");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
  return bytes;
}

sim::Scenario batch_scenario(std::uint64_t seed) {
  sim::Scenario s;
  s.name = "radio_batch";
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrMmWave;  // densest observation lists
  s.mobility = sim::MobilityKind::kCity;
  s.speed_kmh = 40.0;
  s.duration = Seconds{30.0};
  s.seed = seed;
  return s;
}

// Full-scenario byte identity across seeds: the batched pipeline and the
// scalar reference produce the same trace CSV and HO CSV, byte for byte.
TEST(RadioBatch, ScenarioBytesIdenticalAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Scenario batched = batch_scenario(seed);
    sim::Scenario scalar = batch_scenario(seed);
    scalar.scalar_radio_path = true;
    const std::string b = csv_bytes(sim::run_scenario(batched), "b");
    const std::string s = csv_bytes(sim::run_scenario(scalar), "s");
    EXPECT_EQ(b, s) << "seed " << seed;
  }
}

// Same identity with fault injection active — the fault paths draw from the
// manager RNG, so any divergence in draw order would surface here.
TEST(RadioBatch, ScenarioBytesIdenticalWithFaults) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Scenario batched = batch_scenario(seed);
    batched.faults.prep_failure.fill(0.15);
    batched.faults.exec_failure.fill(0.2);
    batched.faults.rlf_enabled = true;
    batched.faults.rlf_qout_dbm = Dbm{-115.0};
    sim::Scenario scalar = batched;
    scalar.scalar_radio_path = true;
    const std::string b = csv_bytes(sim::run_scenario(batched), "fb");
    const std::string s = csv_bytes(sim::run_scenario(scalar), "fs");
    EXPECT_EQ(b, s) << "seed " << seed;
  }
}

// The cohort lockstep scheduler is also byte-invisible: an N=1 fleet
// streamed through for_each_ue_trace (the cohort path) matches
// run_scenario(base) exactly.
TEST(RadioBatch, CohortPathByteIdenticalToRunScenario) {
  sim::FleetScenario f;
  f.base = batch_scenario(42);
  f.base.name = "cohort_identity";
  f.n_ues = 1;
  std::string streamed;
  const std::vector<sim::RunError> errors = sim::for_each_ue_trace(
      f,
      [&](std::size_t ue, const sim::Scenario&, const trace::TraceLog& log) {
        ASSERT_EQ(ue, 0u);
        streamed = csv_bytes(log, "cohort");
      },
      1);
  EXPECT_TRUE(errors.empty());
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed, csv_bytes(sim::run_scenario(f.base), "solo"));
}

// The reused-buffer pipeline proves itself through the p5g.radio.batch_size
// histogram: stepping a scenario records sampled batch widths (> 0 mean —
// the SoA path really ran and really saw multi-cell batches).
TEST(RadioBatch, BatchSizeHistogramRecordsWidths) {
  const obs::Histogram& h = obs::registry().histogram("p5g.radio.batch_size");
  const std::uint64_t before_n = h.count();
  const double before_sum = h.sum();
  static_cast<void>(sim::run_scenario(batch_scenario(7)));
  ASSERT_GT(h.count(), before_n) << "batched observe never sampled a width";
  EXPECT_GT(h.sum() - before_sum, 0.0) << "sampled batches were all empty";
}

}  // namespace
}  // namespace p5g
