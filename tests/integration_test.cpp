// End-to-end properties of the full pipeline: simulator -> traces ->
// analysis -> Prognos, checking the paper's qualitative claims hold on
// fresh (non-bench) seeds.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/ho_stats.h"
#include "analysis/prediction.h"
#include "apps/ho_signal.h"
#include "common/stats.h"
#include "sim/scenario.h"

namespace p5g {
namespace {

sim::Scenario base_scenario(ran::Arch arch, radio::Band band, std::uint64_t seed,
                            Seconds duration = Seconds{600.0}) {
  sim::Scenario s;
  s.carrier = arch == ran::Arch::kSa ? ran::profile_opy() : ran::profile_opx();
  s.arch = arch;
  s.nr_band = band;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = duration;
  s.seed = seed;
  return s;
}

TEST(Integration, NsaHandoversMoreFrequentThanLte) {
  const trace::TraceLog nsa =
      sim::run_scenario(base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 501, Seconds{900.0}));
  sim::Scenario lte_s = base_scenario(ran::Arch::kLteOnly, radio::Band::kNrLow, 501, Seconds{900.0});
  const trace::TraceLog lte = sim::run_scenario(lte_s);
  ASSERT_GT(nsa.handovers.size(), 0u);
  ASSERT_GT(lte.handovers.size(), 0u);
  EXPECT_LT(analysis::km_per_handover(nsa), analysis::km_per_handover(lte));
}

TEST(Integration, SaHandoversLessFrequentThanNsa) {
  const trace::TraceLog nsa =
      sim::run_scenario(base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 502, Seconds{900.0}));
  const trace::TraceLog sa =
      sim::run_scenario(base_scenario(ran::Arch::kSa, radio::Band::kNrLow, 502, Seconds{900.0}));
  ASSERT_GT(sa.handovers.size(), 0u);
  EXPECT_GT(analysis::km_per_handover(sa), analysis::km_per_handover(nsa));
}

TEST(Integration, NsaDurationsExceedLte) {
  const trace::TraceLog nsa =
      sim::run_scenario(base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 503, Seconds{900.0}));
  const trace::TraceLog lte =
      sim::run_scenario(base_scenario(ran::Arch::kLteOnly, radio::Band::kNrLow, 503, Seconds{900.0}));
  std::vector<double> nsa_ms, lte_ms;
  for (const auto& h : nsa.handovers) {
    if (ran::ho_is_5g_procedure(h.type)) nsa_ms.push_back(h.timing.total_ms().v);
  }
  for (const auto& h : lte.handovers) lte_ms.push_back(h.timing.total_ms().v);
  ASSERT_FALSE(nsa_ms.empty());
  ASSERT_FALSE(lte_ms.empty());
  EXPECT_GT(stats::mean(nsa_ms), 1.5 * stats::mean(lte_ms));
}

TEST(Integration, EffectiveCoverageShrinksUnderNsa) {
  sim::Scenario with = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 504, Seconds{1200.0});
  sim::Scenario without = with;
  without.mnbh_releases_scg = false;
  const auto actual = analysis::nr_dwell_distances(sim::run_scenario(with),
                                                   analysis::DwellMode::kActual);
  const auto ideal = analysis::nr_dwell_distances(sim::run_scenario(without),
                                                  analysis::DwellMode::kActual);
  ASSERT_FALSE(actual.empty());
  ASSERT_FALSE(ideal.empty());
  EXPECT_LT(stats::mean(actual), stats::mean(ideal));
}

TEST(Integration, MmWaveCoverageSmallerThanLowBand) {
  sim::Scenario low = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 505, Seconds{900.0});
  sim::Scenario mmw = base_scenario(ran::Arch::kNsa, radio::Band::kNrMmWave, 505, Seconds{900.0});
  mmw.mobility = sim::MobilityKind::kCity;
  mmw.speed_kmh = 40.0;
  const auto low_d = analysis::nr_dwell_distances(sim::run_scenario(low),
                                                  analysis::DwellMode::kActual);
  const auto mmw_d = analysis::nr_dwell_distances(sim::run_scenario(mmw),
                                                  analysis::DwellMode::kActual);
  ASSERT_FALSE(low_d.empty());
  ASSERT_FALSE(mmw_d.empty());
  EXPECT_GT(stats::mean(low_d), 3.0 * stats::mean(mmw_d));
}

TEST(Integration, DualModeKeepsThroughputDuringNrHo) {
  sim::Scenario dual = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 506, Seconds{900.0});
  dual.traffic_mode = tput::TrafficMode::kDual;
  const trace::TraceLog log = sim::run_scenario(dual);
  int nr_halted_with_tput = 0, nr_halted = 0;
  for (const auto& t : log.ticks) {
    if (t.nr_attached && t.nr_halted && !t.lte_halted) {
      ++nr_halted;
      if (t.throughput_mbps > 1.0) ++nr_halted_with_tput;
    }
  }
  ASSERT_GT(nr_halted, 0);
  EXPECT_GT(nr_halted_with_tput, nr_halted * 9 / 10);
}

TEST(Integration, PrognosBeatsChanceOnFreshTrace) {
  sim::Scenario s = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 507, Seconds{900.0});
  const trace::TraceLog log = sim::run_scenario(s);
  analysis::PrognosRunOptions opts;
  opts.bootstrap = true;
  const analysis::PrognosRunResult r = analysis::run_prognos({log}, opts);
  const std::vector<int> truth = analysis::ground_truth(log);
  const ml::EventScores scores = ml::score_events(truth, r.predicted, 30);
  EXPECT_GT(scores.scores.f1, 0.5);
  EXPECT_GT(scores.scores.recall, 0.5);
}

TEST(Integration, PrognosSignalTracksGroundTruthDirection) {
  sim::Scenario s = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 508, Seconds{600.0});
  const trace::TraceLog log = sim::run_scenario(s);
  core::Prognos::Config cfg;
  const apps::HoSignal pr = apps::prognos_signal(log, cfg);
  // The Prognos score must deviate from 1.0 around at least half the HOs.
  int covered = 0;
  for (const ran::HandoverRecord& h : log.handovers) {
    for (Seconds t = h.decision_time - Seconds{1.5}; t <= h.decision_time; t += Seconds{0.05}) {
      if (!p5g::bit_equal(pr.score_at(t), 1.0)) {
        ++covered;
        break;
      }
    }
  }
  ASSERT_GT(log.handovers.size(), 5u);
  EXPECT_GT(covered, static_cast<int>(log.handovers.size()) / 2);
}

TEST(Integration, ColocationShortensNsaHandovers) {
  sim::Scenario s = base_scenario(ran::Arch::kNsa, radio::Band::kNrLow, 509, Seconds{1500.0});
  s.carrier = ran::profile_opy();  // 36 % co-location
  const trace::TraceLog log = sim::run_scenario(s);
  const analysis::ColocationSplit split = analysis::colocation_split(log.handovers);
  if (split.colocated_ms.size() > 5 && split.non_colocated_ms.size() > 5) {
    EXPECT_LT(stats::mean(split.colocated_ms), stats::mean(split.non_colocated_ms));
  }
}

}  // namespace
}  // namespace p5g
