#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

#include "apps/abr.h"
#include "apps/ho_signal.h"
#include "apps/link_emulator.h"
#include "apps/qoe_models.h"
#include "apps/vod_session.h"
#include "apps/volumetric.h"

namespace p5g::apps {
namespace {

// ---------------------------------------------------------- link emulator --
TEST(LinkEmulator, TransferTimeOnConstantLink) {
  LinkEmulator link(std::vector<double>(100, 50.0), Seconds{1.0});  // 50 Mbps, 100 s
  EXPECT_NEAR(link.transfer_time(Seconds{0.0}, 100.0).v, 2.0, 1e-9);
  EXPECT_NEAR(link.transfer_time(Seconds{10.5}, 25.0).v, 0.5, 1e-9);
}

TEST(LinkEmulator, TransferSpansRateChange) {
  std::vector<double> rates(10, 10.0);
  rates[1] = 90.0;  // second slot is fast
  LinkEmulator link(rates, Seconds{1.0});
  // 1 s at 10 Mbps (10 Mb) + remaining 40 Mb at 90 Mbps = 1 + 0.444 s.
  EXPECT_NEAR(link.transfer_time(Seconds{0.0}, 50.0).v, 1.0 + 40.0 / 90.0, 1e-9);
}

TEST(LinkEmulator, ExtrapolatesPastEnd) {
  LinkEmulator link(std::vector<double>(10, 20.0), Seconds{1.0});
  const Seconds t = link.transfer_time(Seconds{9.0}, 100.0);
  EXPECT_GT(t, 4.0_s);
  EXPECT_LT(t, 6.0_s);
}

TEST(LinkEmulator, AverageRate) {
  std::vector<double> rates{10.0, 20.0, 30.0, 40.0};
  LinkEmulator link(rates, Seconds{1.0});
  EXPECT_NEAR(link.average_rate(Seconds{0.0}, Seconds{3.0}), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(link.rate_at(Seconds{2.5}), 30.0);
}

// -------------------------------------------------------------------- abr --
TEST(ThroughputEstimator, HarmonicMean) {
  ThroughputEstimator e(3);
  e.observe(10.0);
  e.observe(40.0);
  // Harmonic mean of {10, 40} = 16.
  EXPECT_NEAR(e.predict(), 16.0, 1e-9);
  e.observe(40.0);
  e.observe(40.0);
  e.observe(40.0);  // window of 3: all 40
  EXPECT_NEAR(e.predict(), 40.0, 1e-9);
}

TEST(ThroughputEstimator, ErrorTracking) {
  ThroughputEstimator e(5);
  e.record_error(100.0, 50.0);  // 100 % error
  e.record_error(50.0, 50.0);
  EXPECT_NEAR(e.max_recent_error(), 1.0, 1e-9);
}

TEST(RateBased, PicksHighestSustainableLevel) {
  RateBased rb;
  const VideoProfile v = panoramic_16k_profile();  // {6,12,24,48,110,240}
  AbrState s;
  s.predicted_tput = 60.0;
  EXPECT_EQ(rb.choose(s, v), 3);  // 48 Mbps
  s.predicted_tput = 500.0;
  EXPECT_EQ(rb.choose(s, v), 5);
  s.predicted_tput = 1.0;
  EXPECT_EQ(rb.choose(s, v), 0);
}

TEST(Mpc, AvoidsStallWithEmptyBuffer) {
  MpcAbr mpc(false);
  const VideoProfile v = panoramic_16k_profile();
  AbrState s;
  s.buffer_level = Seconds{0.0};
  s.predicted_tput = 30.0;
  // With an empty buffer, picking 24 Mbps at 30 Mbps still stalls a bit;
  // the rebuffer penalty must push the choice well below the RB level.
  EXPECT_LE(mpc.choose(s, v), 2);
}

TEST(Mpc, UsesBufferToReachHigherQuality) {
  MpcAbr mpc(false);
  const VideoProfile v = panoramic_16k_profile();
  AbrState low, high;
  low.buffer_level = Seconds{0.5};
  low.predicted_tput = 120.0;
  high.buffer_level = Seconds{25.0};
  high.predicted_tput = 120.0;
  high.prev_level = 4;
  EXPECT_GE(mpc.choose(high, v), mpc.choose(low, v));
}

TEST(RobustMpc, MoreConservativeUnderError) {
  MpcAbr fast(false), robust(true);
  robust.set_error_bound(1.0);  // halves the usable estimate
  const VideoProfile v = panoramic_16k_profile();
  AbrState s;
  s.buffer_level = Seconds{6.0};
  s.predicted_tput = 100.0;
  EXPECT_LE(robust.choose(s, v), fast.choose(s, v));
}

TEST(Festive, MovesOneLevelAtATime) {
  Festive f;
  const VideoProfile v = panoramic_16k_profile();
  AbrState s;
  s.prev_level = 1;
  s.predicted_tput = 1000.0;  // wants the top level
  const int first = f.choose(s, v);
  EXPECT_LE(first, 2);  // at most one step up
  s.prev_level = 4;
  s.predicted_tput = 1.0;  // collapse: still one step down at a time
  EXPECT_EQ(f.choose(s, v), 3);
}

TEST(Vivo, ConservativeAndSmooth) {
  VivoSelector vivo;
  VideoProfile v;
  v.bitrates_mbps = {43.0, 77.0, 110.0, 140.0, 170.0};
  AbrState s;
  s.prev_level = 2;
  s.predicted_tput = 1000.0;
  EXPECT_EQ(vivo.choose(s, v), 3);  // one step up only
  s.predicted_tput = 100.0;         // 0.75*100 = 75 -> level 0 sustainable
  EXPECT_EQ(vivo.choose(s, v), 1);  // one step down only
}

// -------------------------------------------------------------- ho signal --
TEST(HoSignal, GroundTruthMarksWindows) {
  trace::TraceLog log;
  log.tick_hz = 20.0_hz;
  for (int i = 0; i < 400; ++i) {
    trace::TickRecord t;
    t.time = Seconds{i * 0.05};
    log.ticks.push_back(t);
  }
  ran::HandoverRecord h;
  h.type = ran::HoType::kScgr;
  h.decision_time = Seconds{10.0};
  h.complete_time = Seconds{10.2};
  log.handovers.push_back(h);
  const HoSignal sig = ground_truth_signal(log, {{ran::HoType::kScgr, 0.2}}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(sig.score_at(Seconds{5.0}), 1.0);
  EXPECT_DOUBLE_EQ(sig.score_at(Seconds{9.5}), 0.2);
  EXPECT_DOUBLE_EQ(sig.score_at(Seconds{10.1}), 0.2);
  EXPECT_DOUBLE_EQ(sig.score_at(Seconds{12.0}), 1.0);
  EXPECT_TRUE(sig.near_at(Seconds{9.0}));
  EXPECT_FALSE(sig.near_at(Seconds{5.0}));
}

// ------------------------------------------------------------ vod session --
TEST(VodSession, CompletesAndAccountsStall) {
  RateBased rb;
  const VideoProfile v = panoramic_16k_profile();
  // Link much slower than the lowest bitrate: guaranteed stalling.
  LinkEmulator slow(std::vector<double>(2000, 3.0), 1.0_s);
  const VodResult r = run_vod(rb, v, slow, nullptr);
  EXPECT_GT(r.stall_time, 10.0_s);
  EXPECT_NEAR(r.avg_bitrate_mbps, 6.0, 1.0);  // pinned to the lowest level
}

TEST(VodSession, FastLinkReachesTopQualityWithoutStall) {
  RateBased rb;
  const VideoProfile v = panoramic_16k_profile();
  LinkEmulator fast(std::vector<double>(2000, 2000.0), 1.0_s);
  const VodResult r = run_vod(rb, v, fast, nullptr);
  EXPECT_LT(r.stall_fraction, 0.02);
  EXPECT_GT(r.normalized_bitrate, 0.9);
}

TEST(VodSession, HoAwareCorrectionReducesStallOnDroppyLink) {
  // Link alternates 200 Mbps and 5 Mbps every 10 s; the signal predicts the
  // drops (score 0.05), so a corrected MPC backs off in time.
  std::vector<double> rates;
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int i = 0; i < 10; ++i) rates.push_back(200.0);
    for (int i = 0; i < 10; ++i) rates.push_back(5.0);
  }
  LinkEmulator link(rates, Seconds{1.0});
  HoSignal sig;
  sig.dt = Seconds{1.0};
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int i = 0; i < 7; ++i) sig.score.push_back(1.0);
    for (int i = 0; i < 13; ++i) sig.score.push_back(0.05);
  }
  sig.ho_near.assign(sig.score.size(), 0);

  const VideoProfile v = panoramic_16k_profile();
  MpcAbr plain(false), aware(false);
  const VodResult base = run_vod(plain, v, link, nullptr);
  const VodResult corrected = run_vod(aware, v, link, &sig);
  EXPECT_LT(corrected.stall_time, base.stall_time);
}

TEST(VodSession, WindowStartsRespectFilter) {
  trace::TraceLog log;
  log.tick_hz = 20.0_hz;
  for (int i = 0; i < 20 * 600; ++i) {
    trace::TickRecord t;
    t.time = Seconds{i * 0.05};
    // First 300 s: healthy 100 Mbps; then a dead zone.
    t.throughput_mbps = i < 20 * 300 ? 100.0 : 0.5;
    log.ticks.push_back(t);
  }
  const auto starts = window_starts(log, Seconds{120.0}, Seconds{60.0}, 400.0, 2.0);
  ASSERT_FALSE(starts.empty());
  for (Seconds s : starts) EXPECT_LT(s, 200.0_s);  // only the healthy region
}

// ------------------------------------------------------------- volumetric --
TEST(Volumetric, RealTimeStallsOnSlowLink) {
  VivoSelector vivo;
  VolumetricProfile v;
  v.segments = 60;
  LinkEmulator slow(std::vector<double>(400, 20.0), Seconds{1.0});  // below min level
  const VolumetricResult r = run_volumetric(vivo, v, slow, nullptr);
  EXPECT_GT(r.stall_fraction, 0.2);
}

TEST(Volumetric, FastLinkReachesTopDensity) {
  VivoSelector vivo;
  VolumetricProfile v;
  v.segments = 60;
  LinkEmulator fast(std::vector<double>(400, 1500.0), Seconds{1.0});
  const VolumetricResult r = run_volumetric(vivo, v, fast, nullptr);
  EXPECT_GT(r.avg_quality_level, 3.0);
  EXPECT_LT(r.stall_fraction, 0.05);
}

// ------------------------------------------------------------- qoe models --
trace::TickRecord qoe_tick(bool halted, double rtt, double tput) {
  trace::TickRecord t;
  t.nr_attached = true;
  t.nr_halted = halted;
  t.rtt_ms = Millis{rtt};
  t.throughput_mbps = tput;
  return t;
}

TEST(QoeModels, HaltedTickDegradesConferencing) {
  Rng rng(1);
  double lat_ok = 0.0, lat_ho = 0.0, loss_ok = 0.0, loss_ho = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const ConferencingSample ok = conferencing_sample(qoe_tick(false, 30.0, 200.0), rng);
    const ConferencingSample ho = conferencing_sample(qoe_tick(true, 45.0, 0.0), rng);
    lat_ok += ok.video_latency_ms.v;
    lat_ho += ho.video_latency_ms.v;
    loss_ok += ok.packet_loss_pct;
    loss_ho += ho.packet_loss_pct;
  }
  EXPECT_GT(lat_ho, 3.0 * lat_ok);
  EXPECT_GT(loss_ho, 3.0 * loss_ok);
}

TEST(QoeModels, GamingOtherLatencyStable) {
  Rng rng(2);
  stats::RunningStats ok, ho;
  for (int i = 0; i < 2000; ++i) {
    ok.add(gaming_sample(qoe_tick(false, 30.0, 200.0), rng).other_latency_ms.v);
    ho.add(gaming_sample(qoe_tick(true, 45.0, 0.0), rng).other_latency_ms.v);
  }
  EXPECT_NEAR(ok.mean(), ho.mean(), 1.0);  // encode/decode unaffected by HOs
}

TEST(QoeModels, SplitByHoWindow) {
  trace::TraceLog log;
  log.tick_hz = 20.0_hz;
  std::vector<double> metric;
  for (int i = 0; i < 1000; ++i) {
    trace::TickRecord t;
    t.time = Seconds{i * 0.05};
    log.ticks.push_back(t);
    metric.push_back(static_cast<double>(i));
  }
  ran::HandoverRecord h;
  h.type = ran::HoType::kScgm;
  h.decision_time = Seconds{25.0};
  h.complete_time = Seconds{25.2};
  log.handovers.push_back(h);
  const HoWindowSplit split = split_by_ho_window(log, metric, Seconds{1.0});
  EXPECT_GT(split.in_ho.size(), 40u);   // ~2.2 s of ticks
  EXPECT_LT(split.in_ho.size(), 60u);
  EXPECT_EQ(split.in_ho.size() + split.outside.size(), metric.size());
  // Type filter excludes non-matching HOs entirely.
  const HoWindowSplit none = split_by_ho_window(log, metric, Seconds{1.0}, {ran::HoType::kMnbh});
  EXPECT_TRUE(none.in_ho.empty());
}

}  // namespace
}  // namespace p5g::apps
