#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/coverage.h"
#include "analysis/datasets.h"
#include "analysis/ho_stats.h"
#include "analysis/phase_tput.h"
#include "analysis/prediction.h"

namespace p5g::analysis {
namespace {

trace::TraceLog synthetic_log() {
  trace::TraceLog log;
  log.tick_hz = 20.0_hz;
  // 60 s of ticks, route position advancing 1.5 m per tick.
  for (int i = 0; i < 1200; ++i) {
    trace::TickRecord t;
    t.time = Seconds{i * 0.05};
    t.route_position = Meters{i * 1.5};
    t.throughput_mbps = 100.0;
    t.nr_attached = true;
    t.nr_pci = i < 600 ? 10 : 20;  // PCI change at 45 m dwell boundary
    t.lte_pci = 1;
    log.ticks.push_back(t);
  }
  ran::HandoverRecord h;
  h.type = ran::HoType::kScgm;
  h.decision_time = Seconds{30.0};
  h.exec_start = Seconds{30.07};
  h.complete_time = Seconds{30.17};
  h.timing = {Millis{70.0}, Millis{100.0}};
  h.route_position = Meters{900.0};
  log.handovers.push_back(h);
  return log;
}

TEST(HoStats, CountAndCategorize) {
  std::vector<ran::HandoverRecord> hos;
  for (ran::HoType t : {ran::HoType::kLteh, ran::HoType::kMnbh, ran::HoType::kScga,
                        ran::HoType::kScgr, ran::HoType::kMcgh, ran::HoType::kScga}) {
    ran::HandoverRecord h;
    h.type = t;
    hos.push_back(h);
  }
  const auto counts = count_by_type(hos);
  EXPECT_EQ(counts.at(ran::HoType::kScga), 2);
  const CategoryCounts c = categorize(hos);
  EXPECT_EQ(c.lte_4g, 2);
  EXPECT_EQ(c.nsa_5g, 3);
  EXPECT_EQ(c.sa_5g, 1);
}

TEST(HoStats, KmPerHandover) {
  const trace::TraceLog log = synthetic_log();  // 1.8 km, 1 HO
  EXPECT_NEAR(km_per_handover(log), 1.7985, 0.01);
  EXPECT_NEAR(km_per_handover(log, {ran::HoType::kScgm}), 1.7985, 0.01);
  EXPECT_DOUBLE_EQ(km_per_handover(log, {ran::HoType::kLteh}), 0.0);
}

TEST(HoStats, SignalingRatesScaleWithDistance) {
  trace::TraceLog log = synthetic_log();
  log.handovers[0].signaling = {6, 3, 12};
  const SignalingRates r = signaling_rates(log);
  EXPECT_NEAR(r.rrc_per_km, 6.0 / 1.7985, 0.01);
  EXPECT_NEAR(r.total_per_km, 21.0 / 1.7985, 0.02);
}

TEST(Coverage, DwellSegmentsSplitAtPciChange) {
  const trace::TraceLog log = synthetic_log();
  const auto dwells = nr_dwell_distances(log, DwellMode::kActual);
  ASSERT_EQ(dwells.size(), 2u);
  EXPECT_NEAR(dwells[0], 898.5, 2.0);
  EXPECT_NEAR(dwells[1], 898.5, 2.0);
}

TEST(Coverage, DetachEndsActualButNotIdealDwell) {
  trace::TraceLog log = synthetic_log();
  // Detach for 2 s in the middle of the first PCI's dwell.
  for (int i = 200; i < 240; ++i) log.ticks[static_cast<std::size_t>(i)].nr_attached = false;
  const auto actual = nr_dwell_distances(log, DwellMode::kActual);
  const auto ideal = nr_dwell_distances(log, DwellMode::kIdealSamePci);
  EXPECT_EQ(actual.size(), 3u);  // split by the gap
  EXPECT_EQ(ideal.size(), 2u);   // same PCI resumed: merged
}

TEST(Coverage, StatsComputeMeanMedian) {
  const CoverageStats s = coverage_stats({100.0, 200.0, 300.0});
  EXPECT_EQ(s.segments, 3);
  EXPECT_DOUBLE_EQ(s.mean_m.v, 200.0);
  EXPECT_DOUBLE_EQ(s.median_m.v, 200.0);
}

TEST(PhaseTput, WindowsLandOnPhases) {
  trace::TraceLog log = synthetic_log();
  // Make the execution window visibly degraded.
  for (auto& t : log.ticks) {
    if (t.time >= Seconds{30.07} && t.time <= Seconds{30.17}) t.throughput_mbps = 0.0;
  }
  const auto phases = phase_throughput(log);
  const PhaseThroughput& pt = phases.at(ran::HoType::kScgm);
  ASSERT_EQ(pt.pre_mbps.size(), 1u);
  EXPECT_NEAR(pt.pre_mbps[0], 100.0, 1.0);
  EXPECT_LE(pt.exec_mbps[0], 60.0);
  EXPECT_NEAR(pt.post_mbps[0], 100.0, 7.0);
}

TEST(PhaseTput, CalibratedScoresArePostOverPre) {
  trace::TraceLog log = synthetic_log();
  for (auto& t : log.ticks) {
    if (t.time > Seconds{30.17}) t.throughput_mbps = 50.0;  // halved after the HO
  }
  const auto scores = calibrate_ho_scores(log);
  EXPECT_NEAR(scores.at(ran::HoType::kScgm), 0.5, 0.05);
}

TEST(Prediction, GroundTruthMarksHorizonBeforeDecision) {
  const trace::TraceLog log = synthetic_log();
  const std::vector<int> labels = ground_truth(log, Seconds{1.0});
  ASSERT_EQ(labels.size(), log.ticks.size());
  const int cls = ho_class(ran::HoType::kScgm);
  // Decision at t=30 -> ticks in [29, 30) are labeled.
  EXPECT_EQ(labels[585], cls);
  EXPECT_EQ(labels[595], cls);
  EXPECT_EQ(labels[540], 0);
  EXPECT_EQ(labels[605], 0);
}

TEST(Prediction, HoClassRoundTrip) {
  for (int c = 1; c <= 7; ++c) {
    EXPECT_EQ(ho_class(class_ho(c)), c);
  }
}

TEST(Prediction, GbcFeaturesAreFiniteAndSized) {
  const trace::TraceLog log = synthetic_log();
  const std::vector<double> f = gbc_features(log.ticks[100]);
  EXPECT_EQ(f.size(), 12u);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Datasets, D1SharesDeploymentAcrossLoops) {
  const auto d1 = make_d1(2, Seconds{240.0}, 99);
  ASSERT_EQ(d1.size(), 2u);
  // The same walking area: observed PCI sets overlap heavily.
  std::set<int> a, b;
  for (const auto& t : d1[0].ticks) {
    for (const auto& o : t.observed) a.insert(o.pci);
  }
  for (const auto& t : d1[1].ticks) {
    for (const auto& o : t.observed) b.insert(o.pci);
  }
  int shared = 0;
  for (int pci : a) shared += b.count(pci) ? 1 : 0;
  EXPECT_GT(shared, static_cast<int>(a.size()) / 2);
}

TEST(Datasets, CrossCountrySummaryShape) {
  const auto ds = make_cross_country(0.004, 3);
  ASSERT_EQ(ds.size(), 3u);
  const DatasetSummary opy = summarize_dataset(ds[1]);
  EXPECT_EQ(opy.carrier, "OpY");
  EXPECT_GT(opy.sa_minutes, 0.0);      // only OpY runs SA
  EXPECT_GT(opy.mid_band_minutes, 0.0);
  const DatasetSummary opx = summarize_dataset(ds[0]);
  EXPECT_DOUBLE_EQ(opx.sa_minutes, 0.0);
  EXPECT_GT(opx.mmwave_minutes, 0.0);
  EXPECT_GT(opx.unique_cells, 10);
  EXPECT_GT(opx.freeway_km, opx.city_km);
}

}  // namespace
}  // namespace p5g::analysis
