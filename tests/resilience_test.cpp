// Failure isolation, chaos determinism, durable I/O, and the watchdog — the
// resilience layer's contracts, unit by unit, plus the partial-failure
// behaviour of run_scenarios_isolated / run_fleet and the zero-rate chaos
// golden regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/fleet_stats.h"
#include "common/chaos.h"
#include "common/csv.h"
#include "common/io.h"
#include "common/thread_pool.h"
#include "obs/manifest.h"
#include "sim/fleet.h"
#include "sim/runner.h"
#include "trace/trace.h"

namespace p5g {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

sim::Scenario tiny_scenario(std::uint64_t seed, Seconds duration = Seconds{10.0}) {
  sim::Scenario s;
  s.name = "resil_" + std::to_string(seed);
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = duration;
  s.seed = seed;
  return s;
}

// A chaos seed whose task-fault draw hits SOME of the keys [0, n) but not
// all — deterministic, so every run of the test agrees with itself.
std::uint64_t partial_fault_seed(std::size_t n, double rate) {
  for (std::uint64_t cs = 1; cs < 10000; ++cs) {
    chaos::ChaosProfile p;
    p.seed = cs;
    p.task_fault_rate = rate;
    const chaos::ScopedChaos scoped(p);
    std::size_t hits = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (chaos::should_fault_task(k)) ++hits;
    }
    if (hits >= 1 && hits < n) return cs;
  }
  ADD_FAILURE() << "no partial-fault chaos seed found";
  return 0;
}

// ------------------------------------------------- thread pool isolation --

// The old contract was "jobs must not throw" (std::terminate otherwise).
// This death test proves the new contract: a throwing job exits the worker
// boundary captured, and the process lives to exit(0).
TEST(ThreadPoolDeathTest, ThrowingJobDoesNotTerminateProcess) {
  // The parent process has spawned threads (earlier tests); fork+exec style
  // keeps the death test sound there and under the sanitizers.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i) {
          pool.submit([] { throw std::runtime_error("boom"); });
        }
        static_cast<void>(pool.wait_idle());
        std::exit(0);
      },
      testing::ExitedWithCode(0), "");
}

TEST(ThreadPoolResilience, WaitIdleSurfacesCapturedErrorsPerEpoch) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  pool.submit([] { throw std::runtime_error("job one failed"); });
  pool.submit([] { throw 42; });  // non-std::exception payload
  pool.submit([&ran] { ++ran; });

  std::vector<TaskError> errors = pool.wait_idle();
  EXPECT_EQ(ran.load(), 2) << "healthy jobs must still run";
  ASSERT_EQ(errors.size(), 2u);
  std::sort(errors.begin(), errors.end(),
            [](const TaskError& a, const TaskError& b) { return a.job < b.job; });
  EXPECT_EQ(errors[0].job, 1u);
  EXPECT_EQ(errors[0].what, "job one failed");
  EXPECT_EQ(errors[1].job, 2u);
  EXPECT_EQ(errors[1].what, "unknown exception");

  // Next epoch starts clean and renumbers from 0.
  pool.submit([] { throw std::runtime_error("epoch two"); });
  errors = pool.wait_idle();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].job, 0u);
  EXPECT_EQ(errors[0].what, "epoch two");
}

// ------------------------------------------------------------- watchdog --

TEST(WatchdogTest, FlagsTasksPastDeadlineAndOnlyThose) {
  ThreadPool pool(2);
  pool.enable_watchdog(5.0_ms);

  std::atomic<int> finished{0};
  for (int i = 0; i < 3; ++i) {
    pool.submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      ++finished;
    });
  }
  EXPECT_TRUE(pool.wait_idle().empty()) << "a stall is not an error";
  EXPECT_EQ(finished.load(), 3) << "flagged tasks run to completion";
  const std::vector<Watchdog::Flag> flags = pool.take_watchdog_flags();
  EXPECT_EQ(flags.size(), 3u);
  for (const Watchdog::Flag& f : flags) {
    EXPECT_GE(f.elapsed_ms, 5.0_ms);
    EXPECT_LT(f.task_id, 3u);
  }

  // Fast tasks stay unflagged; the flag buffer was drained above.
  for (int i = 0; i < 3; ++i) pool.submit([] {});
  EXPECT_TRUE(pool.wait_idle().empty());
  EXPECT_TRUE(pool.take_watchdog_flags().empty());
}

// ---------------------------------------------------- chaos determinism --

TEST(ChaosTest, DecisionsArePureFunctionsOfSeedAndKey) {
  chaos::ChaosProfile p;
  p.seed = 7;
  p.task_fault_rate = 0.5;
  p.io_fault_rate = 0.5;

  std::vector<bool> first;
  {
    const chaos::ScopedChaos scoped(p);
    for (std::uint64_t k = 0; k < 64; ++k) first.push_back(chaos::should_fault_task(k));
    // Same seed, second pass: identical decisions (no draw-order state).
    for (std::uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(chaos::should_fault_task(k), first[k]) << "key " << k;
    }
    EXPECT_EQ(chaos::should_fault_io("/tmp/a.csv", 0),
              chaos::should_fault_io("/tmp/a.csv", 0));
  }
  // A different seed picks a different set (with 64 keys at 50%, a clash of
  // every decision is ~2^-64).
  p.seed = 8;
  {
    const chaos::ScopedChaos scoped(p);
    std::vector<bool> second;
    for (std::uint64_t k = 0; k < 64; ++k) second.push_back(chaos::should_fault_task(k));
    EXPECT_NE(first, second);
  }
  // No profile installed: every hook is a no.
  EXPECT_FALSE(chaos::active());
  EXPECT_FALSE(chaos::should_fault_task(0));
  EXPECT_FALSE(chaos::should_fault_io("/tmp/a.csv", 0));
}

TEST(ChaosTest, ScopedChaosRestoresPreviousProfile) {
  chaos::ChaosProfile outer;
  outer.seed = 1;
  outer.task_fault_rate = 1.0;
  const chaos::ScopedChaos a(outer);
  EXPECT_TRUE(chaos::should_fault_task(3));
  {
    chaos::ChaosProfile inner;
    inner.seed = 2;  // all rates zero
    const chaos::ScopedChaos b(inner);
    EXPECT_FALSE(chaos::should_fault_task(3));
  }
  EXPECT_TRUE(chaos::should_fault_task(3)) << "outer profile restored";
}

// ------------------------------------------------------------ durable io --

TEST(IoAtomicWrite, WritesAndOverwritesAtomically) {
  const std::string path = "/tmp/p5g_io_test.txt";
  ASSERT_TRUE(io::atomic_write_file(path, "first").ok);
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(io::atomic_write_file(path, "second, longer content").ok);
  EXPECT_EQ(slurp(path), "second, longer content");
}

TEST(IoAtomicWrite, SurfacesPermanentFailureWithCause) {
  const io::IoResult r =
      io::atomic_write_file("/tmp/p5g_no_such_dir_xyz/f.txt", "x");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(IoAtomicWrite, InjectedTransientFaultsAreRetriedToSuccess) {
  const std::string path = "/tmp/p5g_io_chaos.txt";
  std::remove(path.c_str());
  const io::IoStats before = io::io_stats();
  chaos::ChaosProfile p;
  p.seed = 5;
  p.io_fault_rate = 1.0;
  p.io_fault_attempts = 2;  // fewer than RetryPolicy::max_attempts
  const chaos::ScopedChaos scoped(p);
  ASSERT_TRUE(io::atomic_write_file(path, "survived").ok);
  EXPECT_EQ(slurp(path), "survived");
  const io::IoStats after = io::io_stats();
  EXPECT_GE(after.retries, before.retries + 2);
  EXPECT_GE(after.chaos_injected, before.chaos_injected + 2);
}

TEST(IoAtomicWrite, InjectedPermanentFaultLeavesOldFileIntact) {
  const std::string path = "/tmp/p5g_io_chaos_perm.txt";
  ASSERT_TRUE(io::atomic_write_file(path, "precious").ok);
  const io::IoStats before = io::io_stats();
  chaos::ChaosProfile p;
  p.seed = 5;
  p.io_fault_rate = 1.0;
  p.io_fault_attempts = 99;  // outlasts the whole retry budget
  const chaos::ScopedChaos scoped(p);
  const io::IoResult r = io::atomic_write_file(path, "clobber");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(slurp(path), "precious");
  EXPECT_GT(io::io_stats().failures, before.failures);
}

TEST(CsvWriterResilience, CloseReportsFailureOnce) {
  csv::Writer w("/tmp/p5g_no_such_dir_xyz/x.csv", {"a", "b"});
  w.write_row({"1", "2"});
  const io::IoResult first = w.close();
  EXPECT_FALSE(first.ok);
  EXPECT_FALSE(w.ok());
  const io::IoResult again = w.close();  // idempotent, same stored result
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error, first.error);
}

TEST(CsvWriterResilience, CloseSucceedsAndIsIdempotent) {
  const std::string path = "/tmp/p5g_csv_close.csv";
  csv::Writer w(path, {"a"});
  w.write_row({"1"});
  EXPECT_TRUE(w.close().ok);
  EXPECT_TRUE(w.close().ok);
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(slurp(path), "a\n1\n");
}

// ------------------------------------------- sweep partial failure -------

TEST(RunnerResilience, PartialFailureQuarantinesOnlyFaultedScenarios) {
  std::vector<sim::Scenario> scenarios;
  for (std::uint64_t i = 0; i < 6; ++i) scenarios.push_back(tiny_scenario(i + 1));

  std::vector<trace::TraceSummary> reference;
  for (const sim::Scenario& s : scenarios) {
    reference.push_back(trace::summarize(sim::run_scenario(s)));
  }

  chaos::ChaosProfile p;
  p.seed = partial_fault_seed(scenarios.size(), 0.3);
  p.task_fault_rate = 0.3;
  const chaos::ScopedChaos scoped(p);

  const sim::SweepResult res = sim::run_scenarios_isolated(scenarios, 3);
  ASSERT_FALSE(res.ok());
  ASSERT_LT(res.errors.size(), scenarios.size());
  for (std::size_t i = 1; i < res.errors.size(); ++i) {
    EXPECT_LT(res.errors[i - 1].index, res.errors[i].index) << "sorted by index";
  }
  std::vector<char> failed(scenarios.size(), 0);
  for (const sim::RunError& e : res.errors) {
    failed[e.index] = 1;
    EXPECT_EQ(e.seed, scenarios[e.index].seed);
    EXPECT_EQ(e.name, scenarios[e.index].name);
    EXPECT_NE(e.cause.find("njected"), std::string::npos) << e.cause;
    EXPECT_TRUE(res.logs[e.index].ticks.empty()) << "quarantined slot stays empty";
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (failed[i]) continue;
    EXPECT_EQ(trace::summarize(res.logs[i]), reference[i])
        << "survivor " << i << " diverged";
  }

  // A surviving slot is byte-identical to its serial run, not just
  // summary-equal.
  std::size_t survivor = 0;
  while (survivor < scenarios.size() && failed[survivor]) ++survivor;
  ASSERT_LT(survivor, scenarios.size());
  ASSERT_TRUE(trace::write_csv(res.logs[survivor], "/tmp/p5g_resil_sweep.csv").ok);
  ASSERT_TRUE(trace::write_csv(sim::run_scenario(scenarios[survivor]),
                               "/tmp/p5g_resil_serial.csv")
                  .ok);
  EXPECT_EQ(slurp("/tmp/p5g_resil_sweep.csv"), slurp("/tmp/p5g_resil_serial.csv"));

  // The legacy all-or-nothing wrapper now reports instead of terminating.
  EXPECT_THROW(static_cast<void>(sim::run_scenarios(scenarios, 3)),
               std::runtime_error);
}

// ------------------------------------------- fleet partial failure -------

TEST(FleetResilience, QuarantinedUesKeepIdentityAndSurvivorsMatch) {
  sim::FleetScenario f;
  f.base = tiny_scenario(42);
  f.base.name = "resil_fleet";
  f.n_ues = 8;
  f.stagger_m = Meters{100.0};

  const sim::FleetResult clean = sim::run_fleet(f, 0);
  ASSERT_TRUE(clean.ok());

  chaos::ChaosProfile p;
  p.seed = partial_fault_seed(f.n_ues, 0.3);
  p.task_fault_rate = 0.3;
  const chaos::ScopedChaos scoped(p);

  const sim::FleetResult chaotic = sim::run_fleet(f, 0);
  ASSERT_FALSE(chaotic.ok());
  ASSERT_LT(chaotic.errors.size(), f.n_ues);
  std::vector<char> failed(f.n_ues, 0);
  for (const sim::RunError& e : chaotic.errors) {
    failed[e.index] = 1;
    const sim::UeSummary& u = chaotic.ues[e.index];
    EXPECT_EQ(u.ue, e.index);
    EXPECT_EQ(u.seed, sim::fleet_ue_seed(f.base.seed, e.index));
    EXPECT_EQ(e.seed, u.seed);
    EXPECT_EQ(u.trace, trace::TraceSummary{}) << "no trace for a quarantined UE";
  }
  for (std::size_t ue = 0; ue < f.n_ues; ++ue) {
    if (failed[ue]) continue;
    EXPECT_EQ(chaotic.ues[ue], clean.ues[ue]) << "survivor " << ue;
  }

  // fleet_stats carries the same quarantine report and excludes failed UEs
  // from the distributions instead of counting them as zeros.
  const analysis::FleetStats fs = analysis::fleet_stats(f, 0);
  EXPECT_EQ(fs.errors, chaotic.errors);
  EXPECT_EQ(fs.ho_count.n, f.n_ues - chaotic.errors.size());
  EXPECT_EQ(fs.mean_tput_mbps.n, f.n_ues - chaotic.errors.size());
}

// ------------------------------------------------- manifest surfacing ----

TEST(ManifestResilience, QuarantineAndIoTalliesBecomeWarnings) {
  {
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("manifest probe"); });
    EXPECT_EQ(pool.wait_idle().size(), 1u);
  }
  const obs::RunManifest m = obs::make_manifest("resilience_test", 1);
  bool saw_resilience = false;
  for (const std::string& w : m.warnings) {
    if (w.find("resilience:") != std::string::npos) saw_resilience = true;
  }
  EXPECT_TRUE(saw_resilience) << "captured pool failure must surface in manifest";
}

// ------------------------------------------------- golden regression -----

// With a chaos profile INSTALLED but all rates zero, the simulator must
// still reproduce the pre-resilience golden trace byte for byte — the
// injection points cost nothing when they decide "no".
TEST(ChaosRegression, ZeroRateProfileKeepsGoldenTraceByteIdentical) {
  sim::Scenario s;
  s.name = "golden_zero_fault";
  s.carrier = ran::profile_opx();
  s.arch = ran::Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{90.0};
  s.seed = 42;

  chaos::ChaosProfile p;
  p.seed = 42;  // active profile, zero rates: every hook decides "no"
  const chaos::ScopedChaos scoped(p);

  const std::string golden =
      std::string(P5G_GOLDEN_DIR) + "/zero_fault_seed42.csv";
  const std::string fresh = "/tmp/p5g_chaos_zero_regen.csv";
  const std::vector<sim::Scenario> one{s};
  const sim::SweepResult res = sim::run_scenarios_isolated(one, 2);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(trace::write_csv(res.logs[0], fresh).ok);

  const std::string golden_ticks = slurp(golden);
  ASSERT_FALSE(golden_ticks.empty()) << "golden trace missing: " << golden;
  EXPECT_EQ(slurp(fresh), golden_ticks);
}

}  // namespace
}  // namespace p5g
