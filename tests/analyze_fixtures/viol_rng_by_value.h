// Seeded violation: an Rng engine taken by value. The copy forks the
// deterministic stream — the callee consumes draws that the caller then
// re-consumes, de-correlating fault injection from the golden traces.
// p5g-analyze-expect: rng-by-value
#pragma once

namespace p5g::fixture {

class Rng;  // stands in for p5g::Rng

// By-value engine parameter: silent stream fork.
double bad_fading_sample(Rng rng);

// Second seeded form: by-value engine in a multi-parameter list.
double bad_jitter(int band, Rng engine, double scale);

}  // namespace p5g::fixture
