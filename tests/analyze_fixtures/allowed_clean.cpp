// Allowance fixture: one seeded violation per rule, each suppressed with a
// `p5g-analyze: allow(<rule>)` comment. The self-test requires this file to
// produce ZERO findings — it proves suppression works per line, not just
// that rules fire.
// p5g-analyze-expect: clean
#include <chrono>

namespace p5g::fixture_ok {

struct IoResult {
  bool ok = true;
};
IoResult save_allowed_state(const char* path);

class Rng;

struct OkHeaderish {
  double floor_dbm = -120.0;  // p5g-analyze: allow(unit-suffix-double)
};

double ok_sample(Rng rng);  // p5g-analyze: allow(rng-by-value)

// p5g-analyze: allow(float-in-core)
float ok_ratio = 0.5f;

enum class OkMode { kOne, kTwo, kThree };

int ok_dispatch(OkMode m) {
  // p5g-analyze: allow(switch-enum)
  switch (m) {
    case OkMode::kOne: return 1;
    default: return 0;
  }
}

void ok_flush(const char* path) {
  save_allowed_state(path);  // p5g-analyze: allow(ignored-ioresult)
}

double ok_now() {
  // p5g-analyze: allow(wall-clock)
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

}  // namespace p5g::fixture_ok
