// Seeded violation: io::IoResult-returning calls whose result is dropped —
// once as a bare statement, once behind static_cast<void>. Both swallow
// write failures that the caller should surface.
// p5g-analyze-expect: ignored-ioresult

namespace p5g::fixture {

struct IoResult {
  bool ok = true;
};

// The declaration below registers the name with the analyzer's
// IoResult-returning function table.
IoResult save_fixture_state(const char* path);

void bad_flush(const char* path) {
  save_fixture_state(path);  // bare discard
  static_cast<void>(save_fixture_state(path));  // cast discard
}

}  // namespace p5g::fixture
