// Seeded violation: wall-clock reads outside the documented allowances.
// Simulated time must derive from Seconds; real time belongs to src/obs.
// p5g-analyze-expect: wall-clock
#include <chrono>
#include <ctime>

namespace p5g::fixture {

double bad_now() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

long bad_epoch() { return static_cast<long>(time(nullptr)); }

}  // namespace p5g::fixture
