// Seeded violation: a switch over a project enum that hides missing
// enumerators behind `default:`. -Wswitch goes quiet the moment a default
// exists, so only the analyzer can catch kGamma being swallowed.
// p5g-analyze-expect: switch-enum

namespace p5g::fixture {

enum class FixtureMode { kAlpha, kBeta, kGamma };

int bad_dispatch(FixtureMode m) {
  switch (m) {
    case FixtureMode::kAlpha: return 1;
    case FixtureMode::kBeta: return 2;
    default: return 0;  // kGamma silently falls here
  }
}

}  // namespace p5g::fixture
