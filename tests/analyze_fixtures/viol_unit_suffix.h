// Seeded violation: a public-header API that promises units in its names
// but takes bare doubles. The analyzer must flag every one of these.
// p5g-analyze-expect: unit-suffix-double
#pragma once

namespace p5g::fixture {

struct BadConfig {
  double threshold_dbm = -100.0;  // should be Dbm
  double hysteresis_db = 1.0;     // should be Db
  double ttt_ms = 160.0;          // should be Millis
};

// Parameters with unit-suffixed names but raw double types.
double bad_path_loss(double distance_m, double carrier_hz);

}  // namespace p5g::fixture
