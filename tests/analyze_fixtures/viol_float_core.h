// Seeded violation: float in (what the analyzer treats as) sim-core code.
// The golden traces pin the exact double rounding of every expression; a
// float narrows silently and -Wconversion does not catch `float x = 0.1f;`.
// p5g-analyze-expect: float-in-core
#pragma once

namespace p5g::fixture {

struct BadState {
  float rsrp = -100.0f;  // narrows the link budget
};

float bad_accumulate(float acc, double sample);

}  // namespace p5g::fixture
