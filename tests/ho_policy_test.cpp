// HO configuration-space and policy tests: HoConfig overlay semantics,
// HoConfigMap layer precedence, apply_ho_config rewrites, ping-pong
// detection, the adaptive TTT/hysteresis controller, and the regression
// gates the policy layer ships under — the default map + static policy must
// reproduce the golden traces byte for byte, and the adaptive policy must
// be deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ho_stats.h"
#include "ran/ho_config.h"
#include "ran/ho_policy.h"
#include "ran/ping_pong.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace p5g::ran {
namespace {

// ------------------------------------------------------------ overlay --
TEST(HoConfig, EmptyDetectsAnySetField) {
  HoConfig c;
  EXPECT_TRUE(c.empty());
  c.ttt = Milliseconds{80.0};
  EXPECT_FALSE(c.empty());

  HoConfig d;
  d.set_enabled(EventType::kB1, false);
  EXPECT_FALSE(d.empty());
}

TEST(HoConfig, OverlaySetFieldsWinUnsetFallThrough) {
  HoConfig base;
  base.a3_offset = Db{2.0};
  base.ttt = Milliseconds{320.0};
  base.set_enabled(EventType::kA5, false);

  HoConfig over;
  over.ttt = Milliseconds{80.0};
  over.hysteresis = Db{1.5};

  const HoConfig merged = overlay(base, over);
  EXPECT_EQ(merged.a3_offset, Db{2.0});         // inherited from base
  EXPECT_EQ(merged.ttt, Milliseconds{80.0});    // overridden
  EXPECT_EQ(merged.hysteresis, Db{1.5});        // only in over
  EXPECT_EQ(merged.enabled[event_index(EventType::kA5)], false);
  EXPECT_FALSE(merged.a5_threshold1.has_value());
}

// ------------------------------------------------------ map precedence --
TEST(HoConfigMap, CellBeatsBandBeatsGlobal) {
  HoConfig global;
  global.ttt = Milliseconds{560.0};
  global.a3_offset = Db{5.0};
  global.hysteresis = Db{3.0};

  HoConfig band;
  band.ttt = Milliseconds{160.0};
  band.a3_offset = Db{2.0};

  HoConfig cell;
  cell.ttt = Milliseconds{40.0};

  HoConfigMap map;
  map.set_global(global);
  map.set_band(radio::Band::kNrMid, band);
  map.set_cell(7, cell);

  // Cell layer wins ttt, band layer wins a3, global supplies hysteresis.
  const HoConfig r = map.resolve(radio::Band::kNrMid, 7);
  EXPECT_EQ(r.ttt, Milliseconds{40.0});
  EXPECT_EQ(r.a3_offset, Db{2.0});
  EXPECT_EQ(r.hysteresis, Db{3.0});

  // Unknown cell on the same band: band + global only.
  const HoConfig b = map.resolve(radio::Band::kNrMid, 99);
  EXPECT_EQ(b.ttt, Milliseconds{160.0});

  // Unattached (< 0) skips the cell layer even when cell ids collide.
  const HoConfig u = map.resolve(radio::Band::kNrMid, -1);
  EXPECT_EQ(u.ttt, Milliseconds{160.0});

  // Other band: global only.
  const HoConfig g = map.resolve(radio::Band::kLteMid, 7);
  EXPECT_EQ(g.a3_offset, Db{5.0});
  EXPECT_EQ(g.ttt, Milliseconds{40.0});  // cell layer is band-agnostic
}

TEST(HoConfigMap, EmptyMapResolvesToIdentity) {
  const HoConfigMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.resolve(radio::Band::kNrLow, 3).empty());
}

// ------------------------------------------------------ apply to events --
TEST(ApplyHoConfig, RewritesMatchingKnobsAndDropsDisabled) {
  const std::vector<EventConfig> defaults =
      arch_default_event_set(Arch::kNsa, radio::Band::kNrLow);

  HoConfig cfg;
  cfg.ttt = Milliseconds{42.0};
  cfg.hysteresis = Db{2.25};
  cfg.a3_offset = Db{1.25};
  cfg.set_enabled(EventType::kB1, false);

  const std::vector<EventConfig> out = apply_ho_config(defaults, cfg);
  ASSERT_FALSE(out.empty());
  EXPECT_LT(out.size(), defaults.size());  // B1 dropped
  for (const EventConfig& e : out) {
    EXPECT_NE(e.type, EventType::kB1);
    EXPECT_DOUBLE_EQ(e.ttt_ms.v, 42.0);
    EXPECT_DOUBLE_EQ(e.hysteresis.v, 2.25);
    if (e.type == EventType::kA3 || e.type == EventType::kA6) {
      EXPECT_DOUBLE_EQ(e.offset.v, 1.25);
    }
  }
}

TEST(ApplyHoConfig, EmptyConfigIsIdentity) {
  const std::vector<EventConfig> defaults =
      arch_default_event_set(Arch::kSa, radio::Band::kNrMid);
  EXPECT_EQ(apply_ho_config(defaults, HoConfig{}), defaults);
}

// The byte-identity contract at the event-set level: an empty map resolves
// to the carrier defaults for every architecture, bit for bit.
TEST(ResolvedEventSet, EmptyMapEqualsArchDefaults) {
  for (const Arch arch : {Arch::kLteOnly, Arch::kNsa, Arch::kSa}) {
    for (const radio::Band band :
         {radio::Band::kNrLow, radio::Band::kNrMid, radio::Band::kNrMmWave}) {
      HoPolicyContext ctx;
      ctx.arch = arch;
      ctx.nr_band = band;
      ctx.lte_cell_id = 3;
      ctx.nr_cell_id = 5;
      StaticHoPolicy policy{HoConfigMap{}};
      EXPECT_EQ(policy.event_set(ctx), arch_default_event_set(arch, band));
    }
  }
}

// ----------------------------------------------------------- ping-pong --
HandoverRecord ho(Seconds t, int src, int dst,
                  radio::Band band = radio::Band::kNrLow,
                  HoOutcome outcome = HoOutcome::kSuccess) {
  HandoverRecord r;
  r.complete_time = t;
  r.src_pci = src;
  r.dst_pci = dst;
  r.dst_band = band;
  r.outcome = outcome;
  return r;
}

TEST(PingPongTracker, DetectsReturnToSourceWithinWindow) {
  PingPongTracker tr;  // 2 s window
  EXPECT_FALSE(tr.on_handover(ho(Seconds{10.0}, 1, 2)));  // A -> B
  EXPECT_TRUE(tr.on_handover(ho(Seconds{11.5}, 2, 1)));   // B -> A, 1.5 s
  EXPECT_EQ(tr.handovers(), 2);
  EXPECT_EQ(tr.ping_pongs(), 1);
}

TEST(PingPongTracker, OutsideWindowIsNotAPingPong) {
  PingPongTracker tr{Seconds{2.0}};
  tr.on_handover(ho(Seconds{10.0}, 1, 2));
  EXPECT_FALSE(tr.on_handover(ho(Seconds{12.5}, 2, 1)));  // 2.5 s > window
  EXPECT_EQ(tr.ping_pongs(), 0);
}

TEST(PingPongTracker, FailedAndReleaseRecordsAreExcluded) {
  PingPongTracker tr;
  tr.on_handover(ho(Seconds{10.0}, 1, 2));
  // A failed return does not count and must not update the chain.
  EXPECT_FALSE(tr.on_handover(
      ho(Seconds{10.5}, 2, 1, radio::Band::kNrLow, HoOutcome::kExecFailure)));
  // An SCG release (no destination cell) is not a cell landing.
  EXPECT_FALSE(tr.on_handover(ho(Seconds{10.8}, 2, -1)));
  // The real return still closes the original pair.
  EXPECT_TRUE(tr.on_handover(ho(Seconds{11.0}, 2, 1)));
  EXPECT_EQ(tr.handovers(), 2);  // only the successful cell landings
}

TEST(PingPongTracker, LegsAreTrackedSeparately) {
  PingPongTracker tr;
  // NR leg bounces A -> B -> A; an interleaved LTE handover between
  // different cells must not break (or satisfy) the NR chain.
  tr.on_handover(ho(Seconds{10.0}, 1, 2, radio::Band::kNrLow));
  EXPECT_FALSE(tr.on_handover(ho(Seconds{10.5}, 8, 9, radio::Band::kLteMid)));
  EXPECT_TRUE(tr.on_handover(ho(Seconds{11.0}, 2, 1, radio::Band::kNrLow)));
  // LTE leg: returning to 8 within the window is an LTE ping-pong.
  EXPECT_TRUE(tr.on_handover(ho(Seconds{11.5}, 9, 8, radio::Band::kLteMid)));
  EXPECT_EQ(tr.ping_pongs(), 2);
}

TEST(PingPongTracker, AdditionResetsChainOnUnknownSource) {
  PingPongTracker tr;
  tr.on_handover(ho(Seconds{10.0}, 1, 2));
  // SCG addition (src -1): the previous chain must not survive it.
  EXPECT_FALSE(tr.on_handover(ho(Seconds{10.5}, -1, 1)));
  EXPECT_FALSE(tr.on_handover(ho(Seconds{11.0}, 1, 2)));  // not a return
  EXPECT_EQ(tr.ping_pongs(), 0);
}

TEST(PingPongStats, MatchesTrackerOverARecordSet) {
  std::vector<HandoverRecord> hos;
  hos.push_back(ho(Seconds{1.0}, 1, 2));
  hos.push_back(ho(Seconds{2.0}, 2, 1));   // ping-pong
  hos.push_back(ho(Seconds{20.0}, 1, 3));
  hos.push_back(ho(Seconds{30.0}, 3, 1));  // too late
  const analysis::PingPongStats s = analysis::ping_pong_stats(hos);
  EXPECT_EQ(s.eligible, 4);
  EXPECT_EQ(s.ping_pongs, 1);
  EXPECT_DOUBLE_EQ(s.rate(), 0.25);
}

// ------------------------------------------------- adaptive controller --
TEST(AdaptivePolicy, SpeedTierRisesWithEmaAndHoldsDeadband) {
  AdaptiveTttHysteresisPolicy p{HoConfigMap{}, AdaptiveHoParams{}};
  // 30 m/s sustained: EMA crosses 8 then 25 m/s.
  for (int i = 0; i < 200; ++i) {
    p.on_tick(Seconds{0.1 * i}, Meters{3.0});
  }
  EXPECT_EQ(p.speed_tier(), 2);
  // A single slow tick barely moves the EMA: no flap back down.
  p.on_tick(Seconds{20.1}, Meters{0.0});
  EXPECT_EQ(p.speed_tier(), 2);
  // Sustained stop: decays through both boundaries.
  for (int i = 0; i < 400; ++i) {
    p.on_tick(Seconds{20.2 + 0.1 * i}, Meters{0.0});
  }
  EXPECT_EQ(p.speed_tier(), 0);
}

TEST(AdaptivePolicy, PingPongFeedbackEscalatesAndDecays) {
  AdaptiveHoParams params;
  AdaptiveTttHysteresisPolicy p{HoConfigMap{}, params};
  HoPolicyContext ctx;

  const std::vector<EventConfig> before = p.event_set(ctx);
  EXPECT_FALSE(p.dirty());

  p.on_handover(Seconds{5.0}, ho(Seconds{5.0}, 2, 1), /*ping_pong=*/true);
  EXPECT_EQ(p.pp_level(), 1);
  EXPECT_TRUE(p.dirty());  // level changed since last event_set()

  const std::vector<EventConfig> after = p.event_set(ctx);
  EXPECT_FALSE(p.dirty());
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    // Level 1: TTT stretched by (1 + ttt_stretch), hysteresis widened.
    EXPECT_DOUBLE_EQ(after[i].ttt_ms.v,
                     before[i].ttt_ms.v * (1.0 + params.ttt_stretch));
    EXPECT_DOUBLE_EQ(after[i].hysteresis.v,
                     before[i].hysteresis.v + params.hysteresis_step.v);
  }

  // Past the memory window the pressure decays back to zero.
  p.on_tick(Seconds{5.0 + params.memory.v + 1.0}, Meters{0.0});
  EXPECT_EQ(p.pp_level(), 0);
  EXPECT_TRUE(p.dirty());
  EXPECT_EQ(p.event_set(ctx), before);
}

TEST(AdaptivePolicy, NonPingPongFeedbackIsIgnored) {
  AdaptiveTttHysteresisPolicy p{HoConfigMap{}, AdaptiveHoParams{}};
  p.on_handover(Seconds{5.0}, ho(Seconds{5.0}, 1, 2), /*ping_pong=*/false);
  EXPECT_EQ(p.pp_level(), 0);
  EXPECT_FALSE(p.dirty());
  EXPECT_TRUE(p.trajectory().empty());
}

TEST(AdaptivePolicy, SyntheticFeedbackTrajectoryIsDeterministic) {
  const auto drive = [](AdaptiveTttHysteresisPolicy& p) {
    for (int i = 0; i < 300; ++i) {
      const Seconds t{0.1 * i};
      p.on_tick(t, Meters{i < 150 ? 3.0 : 0.5});
      if (i % 40 == 7) p.on_handover(t, ho(t, 2, 1), true);
    }
  };
  AdaptiveTttHysteresisPolicy a{HoConfigMap{}, AdaptiveHoParams{}};
  AdaptiveTttHysteresisPolicy b{HoConfigMap{}, AdaptiveHoParams{}};
  drive(a);
  drive(b);
  ASSERT_FALSE(a.trajectory().empty());
  EXPECT_EQ(a.trajectory(), b.trajectory());
}

// ---------------------------------------------- end-to-end regressions --
sim::Scenario golden_scenario() {
  sim::Scenario s;
  s.name = "golden_zero_fault";
  s.carrier = profile_opx();
  s.arch = Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{90.0};
  s.seed = 42;
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The tentpole's acceptance gate: threading the policy layer through the
// MobilityManager — with the default (empty) map and static policy spelled
// out explicitly — must reproduce the seed trace byte for byte.
TEST(HoPolicyRegression, DefaultMapStaticPolicyKeepsGoldenTraceByteIdentical) {
  const std::string golden =
      std::string(P5G_GOLDEN_DIR) + "/zero_fault_seed42.csv";
  const std::string fresh = "/tmp/p5g_ho_policy_golden_regen.csv";

  sim::Scenario s = golden_scenario();
  s.ho_config = HoConfigMap{};           // explicit carrier defaults
  s.ho_policy = HoPolicyKind::kStatic;
  const trace::TraceLog log = sim::run_scenario(s);
  ASSERT_TRUE(trace::write_csv(log, fresh).ok);

  const std::string golden_ticks = slurp(golden);
  ASSERT_FALSE(golden_ticks.empty()) << "golden trace missing: " << golden;
  EXPECT_EQ(slurp(fresh), golden_ticks) << "tick CSV diverged from seed trace";
  std::filesystem::remove(fresh);
  std::filesystem::remove(fresh + ".ho.csv");
}

// A non-empty override map must actually change behavior (guards against a
// resolve path that silently returns defaults).
TEST(HoPolicyRegression, OverrideMapChangesTheTrace) {
  sim::Scenario base = golden_scenario();
  HoConfig aggressive;
  aggressive.a3_offset = Db{0.5};
  aggressive.hysteresis = Db{0.0};
  aggressive.ttt = Milliseconds{40.0};
  sim::Scenario tweaked = golden_scenario();
  tweaked.ho_config.set_global(aggressive);

  const trace::TraceLog a = sim::run_scenario(base);
  const trace::TraceLog b = sim::run_scenario(tweaked);
  EXPECT_NE(a.handovers.size(), b.handovers.size())
      << "an aggressive global override left the HO sequence untouched";
}

// Same seed, same adaptive parameters -> byte-identical trace. The policy
// feeds back into the event configuration, so this proves the controller
// state is a pure function of the (deterministic) simulation.
TEST(HoPolicyRegression, AdaptivePolicyIsDeterministic) {
  sim::Scenario s = golden_scenario();
  s.ho_policy = HoPolicyKind::kAdaptive;
  HoConfig aggressive;
  aggressive.a3_offset = Db{0.5};
  aggressive.hysteresis = Db{0.0};
  aggressive.ttt = Milliseconds{40.0};
  s.ho_config.set_global(aggressive);

  const std::string a_csv = "/tmp/p5g_adaptive_run_a.csv";
  const std::string b_csv = "/tmp/p5g_adaptive_run_b.csv";
  const trace::TraceLog a = sim::run_scenario(s);
  const trace::TraceLog b = sim::run_scenario(s);
  ASSERT_TRUE(trace::write_csv(a, a_csv).ok);
  ASSERT_TRUE(trace::write_csv(b, b_csv).ok);
  EXPECT_EQ(slurp(a_csv), slurp(b_csv));
  EXPECT_EQ(slurp(a_csv + ".ho.csv"), slurp(b_csv + ".ho.csv"));
  for (const std::string& p : {a_csv, b_csv}) {
    std::filesystem::remove(p);
    std::filesystem::remove(p + ".ho.csv");
  }
}

}  // namespace
}  // namespace p5g::ran
