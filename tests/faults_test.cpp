// Fault-injection layer tests: FaultProfile/FaultInjector sampling and
// backoff math, the RLF monitor timer, every HoOutcome path through the
// mobility manager, and the byte-identity regression proving the zero-fault
// default reproduces the seed trace for a fixed seed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/ho_stats.h"
#include "apps/link_emulator.h"
#include "core/decision_learner.h"
#include "core/trace_adapter.h"
#include "geo/route.h"
#include "ran/faults.h"
#include "ran/mobility_manager.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace p5g::ran {
namespace {

// ------------------------------------------------------------- profile --
TEST(FaultProfile, DefaultIsZero) {
  const FaultProfile f;
  EXPECT_TRUE(f.is_zero());
}

TEST(FaultProfile, AnyKnobMakesItNonZero) {
  FaultProfile prep;
  prep.prep_failure[HoType::kScga] = 0.01;
  EXPECT_FALSE(prep.is_zero());

  FaultProfile exec;
  exec.exec_failure[HoType::kLteh] = 0.01;
  EXPECT_FALSE(exec.is_zero());

  FaultProfile rlf;
  rlf.rlf_enabled = true;
  EXPECT_FALSE(rlf.is_zero());

  EXPECT_FALSE(FaultProfile::uniform(0.1, 0.2).is_zero());
}

// ------------------------------------------------------------- backoff --
TEST(FaultInjector, BackoffGrowsExponentiallyAndCaps) {
  FaultProfile f;  // base 20 ms, factor 2, cap 160 ms
  FaultInjector inj(f, Rng(1));
  EXPECT_DOUBLE_EQ(inj.backoff_ms(1).v, 20.0);
  EXPECT_DOUBLE_EQ(inj.backoff_ms(2).v, 40.0);
  EXPECT_DOUBLE_EQ(inj.backoff_ms(3).v, 80.0);
  EXPECT_DOUBLE_EQ(inj.backoff_ms(4).v, 160.0);
  EXPECT_DOUBLE_EQ(inj.backoff_ms(5).v, 160.0);  // capped
}

TEST(FaultInjector, ZeroExecProbGivesSingleCleanAttempt) {
  FaultInjector inj(FaultProfile{}, Rng(2));
  const auto plan = inj.plan_execution(HoType::kScga);
  EXPECT_TRUE(plan.success);
  EXPECT_EQ(plan.attempts, 1);
  EXPECT_DOUBLE_EQ(plan.retry_ms.v, 0.0);
  EXPECT_DOUBLE_EQ(plan.backoff_ms.v, 0.0);
}

TEST(FaultInjector, CertainExecFailureExhaustsAttempts) {
  FaultProfile f;
  f.exec_failure.fill(1.0);  // every RACH attempt fails
  FaultInjector inj(f, Rng(3));
  const auto plan = inj.plan_execution(HoType::kLteh);
  EXPECT_FALSE(plan.success);
  EXPECT_EQ(plan.attempts, f.rach_max_attempts);
  // Retries beyond the first attempt: (max - 1) extra attempt durations and
  // backoff(1) + backoff(2) of waiting.
  EXPECT_DOUBLE_EQ(plan.retry_ms.v, 2.0 * f.rach_attempt_ms.v);
  EXPECT_DOUBLE_EQ(plan.backoff_ms.v, 20.0 + 40.0);
}

TEST(FaultInjector, ScgrIsExemptFromExecFailure) {
  FaultProfile f;
  f.exec_failure.fill(1.0);
  FaultInjector inj(f, Rng(4));
  const auto plan = inj.plan_execution(HoType::kScgr);
  EXPECT_TRUE(plan.success);
  EXPECT_EQ(plan.attempts, 1);
}

TEST(FaultInjector, PrepFailureFollowsProbability) {
  FaultProfile f;
  f.prep_failure[HoType::kScga] = 0.3;
  FaultInjector inj(f, Rng(5));
  int fails = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) fails += inj.prep_fails(HoType::kScga) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.3, 0.02);
  // Types with p = 0 never fail and consume no randomness.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.prep_fails(HoType::kLteh));
}

TEST(FaultInjector, RetryFrequencyMatchesPerAttemptProbability) {
  FaultProfile f;
  f.exec_failure.fill(0.3);
  FaultInjector inj(f, Rng(6));
  int retried = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (inj.plan_execution(HoType::kScga).attempts > 1) ++retried;
  }
  EXPECT_NEAR(static_cast<double>(retried) / n, 0.3, 0.02);
}

TEST(FaultInjector, ReestablishDurationRespectsFloor) {
  FaultProfile f;
  f.reestablish_mean_ms = Millis{100.0};
  f.reestablish_sd_ms = Millis{200.0};  // wide: would often sample negative
  f.rlf_enabled = true;
  FaultInjector inj(f, Rng(7));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(inj.reestablish_duration(), f.reestablish_floor_ms);
  }
}

// --------------------------------------------------------- RLF monitor --
FaultProfile rlf_profile(Dbm qout, Seconds t310) {
  FaultProfile f;
  f.rlf_enabled = true;
  f.rlf_qout_dbm = qout;
  f.rlf_t310 = t310;
  return f;
}

TEST(RlfMonitor, TriggersExactlyWhenT310Expires) {
  RlfMonitor mon(rlf_profile(Dbm{-100.0}, Seconds{1.0}));
  EXPECT_FALSE(mon.update(Seconds{0.0}, Dbm{-110.0}, true));  // arms the timer
  EXPECT_FALSE(mon.update(Seconds{0.5}, Dbm{-110.0}, true));
  EXPECT_TRUE(mon.update(Seconds{1.0}, Dbm{-110.0}, true));   // T310 expiry
  // Timer consumed: stays quiet until a fresh window elapses.
  EXPECT_FALSE(mon.update(Seconds{1.05}, Dbm{-110.0}, true));
}

TEST(RlfMonitor, GoodSampleResetsTimer) {
  RlfMonitor mon(rlf_profile(Dbm{-100.0}, Seconds{1.0}));
  EXPECT_FALSE(mon.update(Seconds{0.0}, Dbm{-110.0}, true));
  EXPECT_FALSE(mon.update(Seconds{0.9}, Dbm{-90.0}, true));   // recovery above Qout
  EXPECT_FALSE(mon.update(Seconds{1.2}, Dbm{-110.0}, true));  // re-arms here
  EXPECT_FALSE(mon.update(Seconds{2.1}, Dbm{-110.0}, true));
  EXPECT_TRUE(mon.update(Seconds{2.2}, Dbm{-110.0}, true));
}

TEST(RlfMonitor, MissingServingCellCountsAsBelowQout) {
  RlfMonitor mon(rlf_profile(Dbm{-100.0}, Seconds{0.5}));
  EXPECT_FALSE(mon.update(Seconds{0.0}, Dbm{0.0}, false));
  EXPECT_TRUE(mon.update(Seconds{0.5}, Dbm{0.0}, false));
}

TEST(RlfMonitor, DisabledNeverTriggers) {
  RlfMonitor mon(FaultProfile{});
  EXPECT_FALSE(mon.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(mon.update(Seconds{static_cast<double>(i)}, Dbm{-140.0}, false));
  }
}

// ------------------------------------- mobility-manager outcome paths --
struct FaultDriveResult {
  std::vector<HandoverRecord> handovers;  // completed (any outcome)
  std::vector<HandoverRecord> commands;   // RRCReconfigurations delivered
  int ticks_attached_lte = 0;
  int ticks_attached_nr = 0;
  int ticks = 0;
};

FaultDriveResult drive_with_faults(const FaultProfile& faults, Meters length,
                                   std::uint64_t seed) {
  Rng rng(seed);
  geo::Route route({{0.0, 0.0}, {length.v, 0.0}});
  Rng dep_rng = rng.fork(7);
  Deployment dep(profile_opx(), route, dep_rng);

  MobilityManager::Config cfg;
  cfg.arch = Arch::kNsa;
  cfg.nr_band = radio::Band::kNrLow;
  cfg.faults = faults;
  MobilityManager mgr(dep, cfg, rng.fork(1));

  FaultDriveResult out;
  const double dt = 0.05;
  const double speed_mps = 30.0;
  Meters pos{0.0};
  for (Seconds t{0.0}; pos < length; t += Seconds{dt}) {
    pos += Meters{speed_mps * dt};
    const TickResult r = mgr.tick(t, route.position_at(pos), Meters{speed_mps * dt}, pos);
    for (const auto& h : r.completed) out.handovers.push_back(h);
    for (const auto& h : r.commands) out.commands.push_back(h);
    ++out.ticks;
    if (mgr.state().lte_attached()) ++out.ticks_attached_lte;
    if (mgr.state().nr_attached()) ++out.ticks_attached_nr;
  }
  return out;
}

TEST(MobilityManagerFaults, CertainPrepFailureAbortsEveryHandover) {
  FaultProfile f;
  f.prep_failure.fill(1.0);
  const FaultDriveResult r = drive_with_faults(f, Meters{20000.0}, 21);
  ASSERT_GT(r.handovers.size(), 5u);
  for (const HandoverRecord& h : r.handovers) {
    EXPECT_EQ(h.outcome, HoOutcome::kPrepFailure);
    EXPECT_EQ(h.rach_attempts, 0);  // the UE never got to RACH
    EXPECT_DOUBLE_EQ(h.reestablish_ms.v, 0.0);
  }
  // No command is ever delivered, so the SCG can never be added and the
  // serving LTE cell never changes hands.
  EXPECT_TRUE(r.commands.empty());
  EXPECT_EQ(r.ticks_attached_nr, 0);
  EXPECT_GT(r.ticks_attached_lte, r.ticks * 95 / 100);
}

TEST(MobilityManagerFaults, CertainExecFailureSplitsScgAndMcgPaths) {
  FaultProfile f;
  f.exec_failure.fill(1.0);
  const FaultDriveResult r = drive_with_faults(f, Meters{20000.0}, 22);
  ASSERT_GT(r.handovers.size(), 5u);
  int scg_failures = 0, mcg_reestablishments = 0;
  for (const HandoverRecord& h : r.handovers) {
    switch (h.type) {
      case HoType::kScgr:  // exempt: no RACH toward a target
        EXPECT_EQ(h.outcome, HoOutcome::kSuccess);
        break;
      case HoType::kScga:
      case HoType::kScgm:
      case HoType::kScgc:
        EXPECT_EQ(h.outcome, HoOutcome::kExecFailure);
        EXPECT_EQ(h.rach_attempts, f.rach_max_attempts);
        EXPECT_DOUBLE_EQ(h.backoff_ms.v, 60.0);  // backoff(1) + backoff(2)
        EXPECT_DOUBLE_EQ(h.reestablish_ms.v, 0.0);  // fast SCG release instead
        ++scg_failures;
        break;
      default:  // MCG procedures (LTEH / MNBH) enter re-establishment
        EXPECT_EQ(h.outcome, HoOutcome::kRlfReestablish);
        EXPECT_EQ(h.rach_attempts, f.rach_max_attempts);
        EXPECT_GE(h.reestablish_ms, f.reestablish_floor_ms);
        ++mcg_reestablishments;
        break;
    }
  }
  EXPECT_GT(scg_failures, 0);
  EXPECT_GT(mcg_reestablishments, 0);
}

TEST(MobilityManagerFaults, RetriedExecutionExtendsT2) {
  // With a nonzero per-attempt probability, successful-but-retried HOs must
  // carry their retry and backoff time inside T2.
  FaultProfile f;
  f.exec_failure.fill(0.4);
  const FaultDriveResult r = drive_with_faults(f, Meters{30000.0}, 23);
  bool saw_retried_success = false;
  for (const HandoverRecord& h : r.handovers) {
    if (h.outcome != HoOutcome::kSuccess || h.rach_attempts <= 1) continue;
    saw_retried_success = true;
    // T2 must cover at least the extra attempts plus their backoff.
    const double extra =
        (h.rach_attempts - 1) * f.rach_attempt_ms.v + h.backoff_ms.v;
    EXPECT_GE(h.timing.t2_ms.v, extra);
    EXPECT_GT(h.backoff_ms.v, 0.0);
  }
  EXPECT_TRUE(saw_retried_success);
}

TEST(MobilityManagerFaults, FaultyRunsAreDeterministic) {
  FaultProfile f = FaultProfile::uniform(0.2, 0.4, true);
  f.rlf_qout_dbm = Dbm{-80.0};
  const FaultDriveResult a = drive_with_faults(f, Meters{15000.0}, 24);
  const FaultDriveResult b = drive_with_faults(f, Meters{15000.0}, 24);
  ASSERT_EQ(a.handovers.size(), b.handovers.size());
  for (std::size_t i = 0; i < a.handovers.size(); ++i) {
    EXPECT_EQ(a.handovers[i].type, b.handovers[i].type);
    EXPECT_EQ(a.handovers[i].outcome, b.handovers[i].outcome);
    EXPECT_EQ(a.handovers[i].rach_attempts, b.handovers[i].rach_attempts);
    EXPECT_DOUBLE_EQ(a.handovers[i].complete_time.v, b.handovers[i].complete_time.v);
  }
}

// ---------------------------------------------- end-to-end / regression --
sim::Scenario golden_scenario() {
  sim::Scenario s;
  s.name = "golden_zero_fault";
  s.carrier = profile_opx();
  s.arch = Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{90.0};
  s.seed = 42;
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

// The acceptance criterion for the whole fault layer: a default (all-zero)
// FaultProfile must reproduce the pre-fault-layer trace byte for byte. The
// golden files were generated by the seed code before faults existed.
TEST(FaultsRegression, ZeroFaultDefaultReproducesSeedTrace) {
  const std::string golden = std::string(P5G_GOLDEN_DIR) + "/zero_fault_seed42.csv";
  const std::string fresh = "/tmp/p5g_zero_fault_regen.csv";
  const trace::TraceLog log = sim::run_scenario(golden_scenario());
  ASSERT_TRUE(trace::write_csv(log, fresh).ok);

  // Tick CSV: byte-identical.
  const std::string golden_ticks = slurp(golden);
  ASSERT_FALSE(golden_ticks.empty()) << "golden trace missing: " << golden;
  EXPECT_EQ(slurp(fresh), golden_ticks) << "tick CSV diverged from seed trace";

  // HO CSV: the fault columns were appended at the END of the schema, so
  // every golden line must be a byte-prefix of the regenerated line.
  const auto golden_ho = lines_of(slurp(golden + ".ho.csv"));
  const auto fresh_ho = lines_of(slurp(fresh + ".ho.csv"));
  ASSERT_FALSE(golden_ho.empty());
  ASSERT_EQ(fresh_ho.size(), golden_ho.size());
  for (std::size_t i = 0; i < golden_ho.size(); ++i) {
    ASSERT_GE(fresh_ho[i].size(), golden_ho[i].size());
    EXPECT_EQ(fresh_ho[i].substr(0, golden_ho[i].size()), golden_ho[i])
        << "ho.csv line " << i << " no longer extends the seed row";
  }
  std::filesystem::remove(fresh);
  std::filesystem::remove(fresh + ".ho.csv");
}

sim::Scenario faulty_scenario() {
  sim::Scenario s;
  s.name = "faulty";
  s.arch = Arch::kNsa;
  s.nr_band = radio::Band::kNrLow;
  s.mobility = sim::MobilityKind::kFreeway;
  s.speed_kmh = 110.0;
  s.duration = Seconds{600.0};
  s.seed = 7;
  s.faults.prep_failure.fill(0.12);
  s.faults.exec_failure.fill(0.45);
  s.faults.rlf_enabled = true;
  s.faults.rlf_qout_dbm = Dbm{-78.0};
  s.faults.rlf_t310 = Seconds{0.6};
  return s;
}

TEST(FaultsRegression, FaultyScenarioEmitsAllFourOutcomes) {
  const trace::TraceLog log = sim::run_scenario(faulty_scenario());
  const analysis::OutcomeCounts c = analysis::count_outcomes(log.handovers);
  EXPECT_GT(c.success, 0);
  EXPECT_GT(c.prep_failure, 0);
  EXPECT_GT(c.exec_failure, 0);
  EXPECT_GT(c.rlf_reestablish, 0);
  EXPECT_GT(c.failure_rate(), 0.0);

  // Per-type stats must show nonzero failure rates for more than one type.
  const auto by_type = analysis::outcomes_by_type(log.handovers);
  int types_with_failures = 0;
  for (const auto& [type, counts] : by_type) {
    if (counts.failed() > 0) ++types_with_failures;
  }
  EXPECT_GE(types_with_failures, 2);

  const analysis::RetryStats rs = analysis::retry_stats(log.handovers);
  EXPECT_GT(rs.mean_rach_attempts, 1.0);
  EXPECT_GT(rs.total_backoff_ms, 0.0_ms);
  EXPECT_GT(rs.reestablishments, 0);

  // Outcomes survive a CSV round trip.
  const std::string path = "/tmp/p5g_faulty_roundtrip.csv";
  ASSERT_TRUE(trace::write_csv(log, path).ok);
  const trace::TraceLog back = trace::read_csv(path);
  ASSERT_EQ(back.handovers.size(), log.handovers.size());
  for (std::size_t i = 0; i < log.handovers.size(); ++i) {
    EXPECT_EQ(back.handovers[i].outcome, log.handovers[i].outcome);
    EXPECT_EQ(back.handovers[i].rach_attempts, log.handovers[i].rach_attempts);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
}

TEST(FaultsRegression, ReestablishmentHaltsBothLegs) {
  const trace::TraceLog log = sim::run_scenario(faulty_scenario());
  const apps::LinkEmulator link = apps::LinkEmulator::from_trace(log);
  int checked = 0;
  for (const HandoverRecord& h : log.handovers) {
    if (h.outcome != HoOutcome::kRlfReestablish) continue;
    const Seconds start = h.complete_time - ms_to_s(h.reestablish_ms);
    // Every tick inside the re-establishment window has the whole data
    // plane down.
    for (const trace::TickRecord& tick : log.ticks) {
      if (tick.time <= start || tick.time >= h.complete_time) continue;
      EXPECT_TRUE(tick.lte_halted) << "t=" << tick.time;
      EXPECT_TRUE(tick.nr_halted) << "t=" << tick.time;
      EXPECT_DOUBLE_EQ(tick.throughput_mbps, 0.0);
      ++checked;
    }
    // The link emulator reports the window as an outage.
    if (h.reestablish_ms >= 200.0_ms) {
      EXPECT_GT(link.outage_seconds(start, ms_to_s(h.reestablish_ms)).v, 0.0);
    }
  }
  EXPECT_GT(checked, 0) << "no re-establishment windows overlapped ticks";
}

TEST(FaultsRegression, PrognosIngestsOnlySuccessfulCommands) {
  const trace::TraceLog log = sim::run_scenario(faulty_scenario());
  std::size_t raw_commands = 0, failed_commands = 0, adapted_commands = 0;
  core::DecisionLearner learner;
  for (const trace::TickRecord& tick : log.ticks) {
    for (const HandoverRecord& h : tick.ho_commands) {
      ++raw_commands;
      if (!h.succeeded()) ++failed_commands;
    }
    const core::PrognosInput in = core::from_tick(tick);
    adapted_commands += in.ho_commands.size();
    for (const HandoverRecord& h : in.ho_commands) {
      EXPECT_TRUE(h.succeeded());
    }
    learner.observe(in);
  }
  // The scenario genuinely produced aborted executions, and the adapter
  // dropped exactly those.
  EXPECT_GT(failed_commands, 0u);
  EXPECT_EQ(adapted_commands, raw_commands - failed_commands);
  // The learner only closes phases on surviving (successful) commands.
  EXPECT_GT(learner.phase_count(), 0);
  EXPECT_LE(learner.phase_count(), static_cast<long>(adapted_commands));
  EXPECT_FALSE(learner.patterns().empty());
}

}  // namespace
}  // namespace p5g::ran
