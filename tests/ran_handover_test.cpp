#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "ran/handover.h"

namespace p5g::ran {
namespace {

const HoType kAllTypes[] = {HoType::kLteh, HoType::kScga, HoType::kScgr,
                            HoType::kScgm, HoType::kScgc, HoType::kMnbh,
                            HoType::kMcgh};

TEST(Taxonomy, Table2Categories) {
  // "4G/5G HO" column of Table 2.
  EXPECT_FALSE(ho_is_5g_procedure(HoType::kLteh));
  EXPECT_FALSE(ho_is_5g_procedure(HoType::kMnbh));
  EXPECT_TRUE(ho_is_5g_procedure(HoType::kScga));
  EXPECT_TRUE(ho_is_5g_procedure(HoType::kScgr));
  EXPECT_TRUE(ho_is_5g_procedure(HoType::kScgm));
  EXPECT_TRUE(ho_is_5g_procedure(HoType::kScgc));
  EXPECT_TRUE(ho_is_5g_procedure(HoType::kMcgh));
}

TEST(Taxonomy, ArchMapping) {
  EXPECT_EQ(ho_arch(HoType::kLteh), HoArch::kLte);
  EXPECT_EQ(ho_arch(HoType::kMcgh), HoArch::kSa);
  for (HoType t : {HoType::kScga, HoType::kScgr, HoType::kScgm, HoType::kScgc,
                   HoType::kMnbh}) {
    EXPECT_EQ(ho_arch(t), HoArch::kNsa);
  }
}

TEST(Taxonomy, NamesDistinct) {
  std::set<std::string_view> names;
  for (HoType t : kAllTypes) names.insert(ho_name(t));
  EXPECT_EQ(names.size(), 7u);
}

TEST(Interruption, Footnote1Semantics) {
  // NSA 5G HOs do not affect the LTE data plane; 4G HOs interrupt 5G too.
  for (HoType t : {HoType::kScga, HoType::kScgr, HoType::kScgm, HoType::kScgc}) {
    EXPECT_FALSE(ho_interruption(t).halts_lte) << ho_name(t);
    EXPECT_TRUE(ho_interruption(t).halts_nr) << ho_name(t);
  }
  EXPECT_TRUE(ho_interruption(HoType::kMnbh).halts_lte);
  EXPECT_TRUE(ho_interruption(HoType::kMnbh).halts_nr);
  EXPECT_TRUE(ho_interruption(HoType::kLteh).halts_lte);
  EXPECT_FALSE(ho_interruption(HoType::kLteh).halts_nr);
}

std::vector<double> sample_totals(HoType t, radio::Band band, bool colocated, int n) {
  Rng rng(77);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(sample_ho_timing(t, band, colocated, rng).total_ms().v);
  }
  return out;
}

TEST(Timing, Section52Calibration) {
  // LTE ~76 ms, NSA SCGM ~165-180 ms (low-band), SA ~110 ms.
  EXPECT_NEAR(stats::mean(sample_totals(HoType::kLteh, radio::Band::kLteMid, false, 4000)),
              76.0, 5.0);
  EXPECT_NEAR(stats::mean(sample_totals(HoType::kScgm, radio::Band::kNrLow, false, 4000)),
              178.0, 8.0);
  EXPECT_NEAR(stats::mean(sample_totals(HoType::kMcgh, radio::Band::kNrLow, false, 4000)),
              110.0, 8.0);
}

TEST(Timing, T1FractionOfNsaDuration) {
  // T1 is ~41 % of the overall NSA HO duration (Sec 5.2).
  Rng rng(78);
  double t1 = 0.0, total = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const HoTiming h = sample_ho_timing(HoType::kScgm, radio::Band::kNrLow, true, rng);
    t1 += h.t1_ms.v;
    total += h.total_ms().v;
  }
  EXPECT_NEAR(t1 / total, 0.41, 0.05);
}

TEST(Timing, MmWaveT2Larger) {
  // mmWave T2 is 42-45 % larger than low-band (Sec 5.2).
  Rng rng(79);
  double low = 0.0, mmw = 0.0;
  for (int i = 0; i < 4000; ++i) {
    low += sample_ho_timing(HoType::kScgm, radio::Band::kNrLow, true, rng).t2_ms.v;
    mmw += sample_ho_timing(HoType::kScgm, radio::Band::kNrMmWave, true, rng).t2_ms.v;
  }
  EXPECT_NEAR(mmw / low, 1.43, 0.08);
}

TEST(Timing, ColocationSavesAbout13Ms) {
  const double non = stats::mean(sample_totals(HoType::kScgm, radio::Band::kNrLow,
                                               false, 6000));
  const double col = stats::mean(sample_totals(HoType::kScgm, radio::Band::kNrLow,
                                               true, 6000));
  EXPECT_NEAR(non - col, 13.0, 3.0);
}

TEST(Timing, ColocationIrrelevantForPureLte) {
  const double non = stats::mean(sample_totals(HoType::kLteh, radio::Band::kLteMid,
                                               false, 6000));
  const double col = stats::mean(sample_totals(HoType::kLteh, radio::Band::kLteMid,
                                               true, 6000));
  EXPECT_NEAR(non - col, 0.0, 2.0);
}

TEST(Timing, SaPreparationHasHighVariance) {
  Rng rng(80);
  stats::RunningStats sa, lte;
  for (int i = 0; i < 4000; ++i) {
    sa.add(sample_ho_timing(HoType::kMcgh, radio::Band::kNrLow, false, rng).t1_ms.v);
    lte.add(sample_ho_timing(HoType::kLteh, radio::Band::kLteMid, false, rng).t1_ms.v);
  }
  EXPECT_GT(sa.stddev(), 2.0 * lte.stddev());
}

TEST(Timing, AllPositive) {
  Rng rng(81);
  for (HoType t : kAllTypes) {
    for (int i = 0; i < 200; ++i) {
      const HoTiming h = sample_ho_timing(t, radio::Band::kNrMmWave, false, rng);
      EXPECT_GT(h.t1_ms, 0.0_ms);
      EXPECT_GT(h.t2_ms, 0.0_ms);
    }
  }
}

TEST(Signaling, ScgcCarriesMostRrc) {
  Rng rng(82);
  const SignalingCounts scgc = ho_signaling(HoType::kScgc, radio::Band::kNrLow, rng);
  const SignalingCounts scgm = ho_signaling(HoType::kScgm, radio::Band::kNrLow, rng);
  EXPECT_GT(scgc.rrc, scgm.rrc);  // release + addition
}

TEST(Signaling, MmWavePhyHeavy) {
  Rng rng(83);
  const SignalingCounts low = ho_signaling(HoType::kScgm, radio::Band::kNrLow, rng);
  const SignalingCounts mmw = ho_signaling(HoType::kScgm, radio::Band::kNrMmWave, rng);
  EXPECT_GT(mmw.phy, 3 * low.phy);
}

TEST(Signaling, ReleaseHasNoRach) {
  Rng rng(84);
  EXPECT_EQ(ho_signaling(HoType::kScgr, radio::Band::kNrLow, rng).mac, 0);
}

TEST(Signaling, AccumulationOperator) {
  SignalingCounts a{1, 2, 3}, b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.rrc, 11);
  EXPECT_EQ(a.mac, 22);
  EXPECT_EQ(a.phy, 33);
  EXPECT_EQ(a.total(), 66);
}

}  // namespace
}  // namespace p5g::ran
