#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geometry.h"
#include "geo/route.h"

namespace p5g::geo {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}).v, 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}).v, 0.0);
}

TEST(Geometry, CrossSign) {
  EXPECT_GT(cross({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW
  EXPECT_LT(cross({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(cross({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(ConvexHull, Square) {
  std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 1.0, 1e-12);
}

TEST(ConvexHull, DegenerateInputs) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 2}, {3, 4}}).size(), 2u);
  // Duplicates collapse.
  EXPECT_EQ(convex_hull({{1, 2}, {1, 2}, {1, 2}}).size(), 1u);
}

// Property test: every input point is inside (or on) the hull, and the hull
// is convex (all cross products non-negative in CCW order).
class HullPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HullPropertyTest, ContainsAllPointsAndIsConvex) {
  Rng rng(GetParam());
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  }
  const auto hull = convex_hull(pts);
  ASSERT_GE(hull.size(), 3u);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point a = hull[i];
    const Point b = hull[(i + 1) % hull.size()];
    const Point c = hull[(i + 2) % hull.size()];
    EXPECT_GE(cross(a, b, c), 0.0) << "hull not convex";
  }
  for (const Point& p : pts) {
    EXPECT_TRUE(point_in_convex(hull, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(PolygonIntersection, OverlappingSquares) {
  const std::vector<Point> a{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const std::vector<Point> b{{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  const auto inter = convex_intersection(a, b);
  EXPECT_NEAR(std::abs(polygon_area(inter)), 1.0, 1e-9);
}

TEST(PolygonIntersection, DisjointIsEmpty) {
  const std::vector<Point> a{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const std::vector<Point> b{{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  const auto inter = convex_intersection(a, b);
  EXPECT_NEAR(std::abs(polygon_area(inter)), 0.0, 1e-9);
}

TEST(PolygonIntersection, ContainedPolygon) {
  const std::vector<Point> outer{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const std::vector<Point> inner{{4, 4}, {6, 4}, {6, 6}, {4, 6}};
  EXPECT_NEAR(std::abs(polygon_area(convex_intersection(inner, outer))), 4.0, 1e-9);
  EXPECT_NEAR(hull_overlap_ratio(outer, inner), 1.0, 1e-9);
}

TEST(HullOverlap, PartialRatio) {
  const std::vector<Point> a{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const std::vector<Point> b{{1, 0}, {3, 0}, {3, 2}, {1, 2}};
  // Intersection area 2, each area 4 -> ratio 0.5 of the smaller.
  EXPECT_NEAR(hull_overlap_ratio(a, b), 0.5, 1e-9);
}

// ---------------------------------------------------------------- route --
TEST(Route, ArcLengthAndInterpolation) {
  Route r({{0, 0}, {100, 0}, {100, 50}});
  EXPECT_DOUBLE_EQ(r.length().v, 150.0);
  const Point mid = r.position_at(Meters{100.0});
  EXPECT_NEAR(mid.x, 100.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
  const Point p = r.position_at(Meters{125.0});
  EXPECT_NEAR(p.x, 100.0, 1e-9);
  EXPECT_NEAR(p.y, 25.0, 1e-9);
}

TEST(Route, ClampsWhenNotLooping) {
  Route r({{0, 0}, {10, 0}});
  EXPECT_NEAR(r.position_at(Meters{-5.0}).x, 0.0, 1e-9);
  EXPECT_NEAR(r.position_at(Meters{99.0}).x, 10.0, 1e-9);
}

TEST(Route, WrapsWhenLooping) {
  Route r({{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}});
  r.set_loops(true);
  const Point a = r.position_at(Meters{5.0});
  const Point b = r.position_at(Meters{45.0});  // perimeter 40
  EXPECT_NEAR(a.x, b.x, 1e-9);
  EXPECT_NEAR(a.y, b.y, 1e-9);
}

class RouteGeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteGeneratorTest, FreewayLengthApproximatelyRequested) {
  Rng rng(GetParam());
  const Route r = make_freeway_route(Meters{20000.0}, rng);
  EXPECT_GE(r.length().v, 20000.0);
  EXPECT_LE(r.length().v, 23000.0);
}

TEST_P(RouteGeneratorTest, CityRouteIsAxisAligned) {
  Rng rng(GetParam());
  const Route r = make_city_route(Meters{5000.0}, Meters{180.0}, rng);
  const auto& wps = r.waypoints();
  ASSERT_GE(wps.size(), 2u);
  for (std::size_t i = 1; i < wps.size(); ++i) {
    const bool horizontal = std::abs(wps[i].y - wps[i - 1].y) < 1e-9;
    const bool vertical = std::abs(wps[i].x - wps[i - 1].x) < 1e-9;
    EXPECT_TRUE(horizontal || vertical);
  }
}

TEST_P(RouteGeneratorTest, LoopRouteClosesAndLoops) {
  Rng rng(GetParam());
  const Route r = make_loop_route(Meters{2000.0}, rng);
  EXPECT_TRUE(r.loops());
  const auto& wps = r.waypoints();
  EXPECT_NEAR(wps.front().x, wps.back().x, 1e-9);
  EXPECT_NEAR(wps.front().y, wps.back().y, 1e-9);
  EXPECT_NEAR(r.length().v, 2000.0, 450.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteGeneratorTest, ::testing::Values(1u, 7u, 42u, 99u));

}  // namespace
}  // namespace p5g::geo
