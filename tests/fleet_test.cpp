#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fleet_stats.h"
#include "obs/export.h"
#include "sim/fleet.h"

namespace p5g {
namespace {

std::string csv_bytes(const trace::TraceLog& log, const std::string& tag) {
  const std::string path = "/tmp/p5g_fleet_" + tag + ".csv";
  EXPECT_TRUE(trace::write_csv(log, path).ok);
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  const std::string bytes = slurp(path) + "\n---ho---\n" + slurp(path + ".ho.csv");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ho.csv");
  return bytes;
}

sim::FleetScenario small_fleet(std::size_t n) {
  sim::FleetScenario f;
  f.base.name = "fleet";
  f.base.arch = ran::Arch::kNsa;
  f.base.nr_band = radio::Band::kNrLow;
  f.base.mobility = sim::MobilityKind::kFreeway;
  f.base.duration = Seconds{45.0};
  f.base.seed = 42;
  f.n_ues = n;
  f.stagger_m = Meters{120.0};
  return f;
}

TEST(FleetSeed, UeZeroInheritsFleetSeed) {
  EXPECT_EQ(sim::fleet_ue_seed(42, 0), 42u);
  EXPECT_EQ(sim::fleet_ue_seed(0xDEADBEEF, 0), 0xDEADBEEFu);
}

TEST(FleetSeed, StreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t ue = 0; ue < 1000; ++ue) seeds.insert(sim::fleet_ue_seed(42, ue));
  EXPECT_EQ(seeds.size(), 1000u);
  // And independent of each other across fleet seeds.
  EXPECT_NE(sim::fleet_ue_seed(42, 1), sim::fleet_ue_seed(43, 1));
}

TEST(FleetScenario, DerivedScenarioCarriesStaggerAndMix) {
  sim::FleetScenario f = small_fleet(6);
  f.mobility_mix = {sim::MobilityKind::kCity, sim::MobilityKind::kWalkLoop};
  const sim::Scenario u0 = sim::fleet_ue_scenario(f, 0);
  const sim::Scenario u3 = sim::fleet_ue_scenario(f, 3);
  EXPECT_EQ(u0.name, "fleet/ue0");
  EXPECT_EQ(u0.seed, f.base.seed);
  EXPECT_DOUBLE_EQ(u0.start_offset_m.v, 0.0);
  EXPECT_EQ(u0.mobility, sim::MobilityKind::kCity);  // mix[0 % 2]
  EXPECT_EQ(u3.name, "fleet/ue3");
  EXPECT_DOUBLE_EQ(u3.start_offset_m.v, 360.0);
  EXPECT_EQ(u3.mobility, sim::MobilityKind::kWalkLoop);  // mix[3 % 2]
}

// The acceptance-criteria guarantee: an N=1 fleet (empty mix) is
// byte-identical to run_scenario(base) — same trace CSV, same HO CSV.
TEST(Fleet, SingleUeFleetByteIdenticalToRunScenario) {
  sim::FleetScenario f = small_fleet(1);
  const sim::FleetEnv env(f);
  const trace::TraceLog fleet_log = sim::run_fleet_ue(f, env, 0);
  const trace::TraceLog solo_log = sim::run_scenario(f.base);
  EXPECT_EQ(csv_bytes(fleet_log, "n1"), csv_bytes(solo_log, "solo"));
}

TEST(Fleet, SameSeedTwiceGivesIdenticalSummaries) {
  const sim::FleetScenario f = small_fleet(6);
  const sim::FleetResult a = sim::run_fleet(f, 4);
  const sim::FleetResult b = sim::run_fleet(f, 4);
  ASSERT_EQ(a.ues.size(), 6u);
  EXPECT_EQ(a.ues, b.ues);
}

TEST(Fleet, ThreadCountDoesNotChangeSummaries) {
  const sim::FleetScenario f = small_fleet(5);
  const sim::FleetResult serial = sim::run_fleet(f, 1);
  const sim::FleetResult pooled = sim::run_fleet(f, 4);
  EXPECT_EQ(serial.ues, pooled.ues);
}

// Any single UE can be re-run in isolation and reproduce the trace the
// fleet streamed for it, byte for byte.
TEST(Fleet, SingleUeReproducibleInIsolation) {
  const sim::FleetScenario f = small_fleet(4);
  std::mutex mu;
  std::string streamed;
  sim::for_each_ue_trace(
      f,
      [&](std::size_t ue, const sim::Scenario&, const trace::TraceLog& log) {
        if (ue != 2) return;
        const std::lock_guard<std::mutex> lock(mu);
        streamed = csv_bytes(log, "stream");
      },
      2);
  ASSERT_FALSE(streamed.empty());
  const sim::FleetEnv env(f);
  EXPECT_EQ(streamed, csv_bytes(sim::run_fleet_ue(f, env, 2), "iso"));
}

TEST(Fleet, StaggerShiftsStartingPosition) {
  sim::FleetScenario f = small_fleet(3);
  const sim::FleetEnv env(f);
  const trace::TraceLog u0 = sim::run_fleet_ue(f, env, 0);
  const trace::TraceLog u2 = sim::run_fleet_ue(f, env, 2);
  ASSERT_FALSE(u0.ticks.empty());
  ASSERT_FALSE(u2.ticks.empty());
  // UE 2 starts 240 m downstream of UE 0 on the shared route.
  EXPECT_NEAR((u2.ticks.front().route_position - u0.ticks.front().route_position).v,
              240.0, 1.0);
}

// Sharing the resolved shadow map must not perturb a trace: fields are pure
// functions of cell identity, owned or shared.
TEST(Fleet, SharedShadowMapPreservesTraceBytes) {
  sim::FleetScenario f = small_fleet(1);
  const sim::FleetEnv env(f);
  const trace::TraceLog shared =
      sim::run_scenario(f.base, env.deployment(), env.route(), &env.shadow());
  const trace::TraceLog owned =
      sim::run_scenario(f.base, env.deployment(), env.route());
  EXPECT_EQ(csv_bytes(shared, "shr"), csv_bytes(owned, "own"));
}

TEST(TraceSummary, SummarizeMatchesLog) {
  const sim::FleetScenario f = small_fleet(1);
  const trace::TraceLog log = sim::run_scenario(f.base);
  const trace::TraceSummary s = trace::summarize(log);
  EXPECT_EQ(s.ticks, log.ticks.size());
  EXPECT_DOUBLE_EQ(s.duration.v, log.duration().v);
  EXPECT_DOUBLE_EQ(s.distance.v, log.distance().v);
  EXPECT_EQ(s.handovers, static_cast<int>(log.handovers.size()));
  EXPECT_EQ(s.ho_success + s.ho_prep_failure + s.ho_exec_failure +
                s.ho_rlf_reestablish,
            s.handovers);
  EXPECT_GT(s.mean_throughput_mbps, 0.0);
  EXPECT_GT(s.ho_per_km(), 0.0);
}

TEST(FleetStats, SampleStatsBasics) {
  EXPECT_EQ(analysis::sample_stats({}).n, 0u);
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  const analysis::SampleStats s = analysis::sample_stats(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(FleetStats, PopulationAggregatesConsistent) {
  const sim::FleetScenario f = small_fleet(5);
  const analysis::FleetStats fs = analysis::fleet_stats(f, 2);
  EXPECT_EQ(fs.ues, 5u);
  ASSERT_EQ(fs.per_ue.size(), 5u);
  EXPECT_EQ(fs.ho_per_km.n, 5u);
  EXPECT_EQ(fs.mean_tput_mbps.n, 5u);
  int ho_sum = 0;
  for (const sim::UeSummary& u : fs.per_ue) ho_sum += u.trace.handovers;
  EXPECT_EQ(fs.outcomes.total(), ho_sum);
  int by_type_sum = 0;
  for (const auto& [type, n] : fs.by_type) by_type_sum += n;
  EXPECT_EQ(by_type_sum, ho_sum);
  // Per-UE slots carry fleet identity in UE order.
  for (std::size_t ue = 0; ue < fs.per_ue.size(); ++ue) {
    EXPECT_EQ(fs.per_ue[ue].ue, ue);
    EXPECT_EQ(fs.per_ue[ue].seed, sim::fleet_ue_seed(f.base.seed, ue));
  }
}

TEST(FleetStats, DeterministicAcrossThreadCounts) {
  const sim::FleetScenario f = small_fleet(4);
  const analysis::FleetStats a = analysis::fleet_stats(f, 1);
  const analysis::FleetStats b = analysis::fleet_stats(f, 4);
  EXPECT_EQ(a.per_ue, b.per_ue);
  EXPECT_DOUBLE_EQ(a.nr_coverage_m.mean, b.nr_coverage_m.mean);
  EXPECT_EQ(a.outcomes.total(), b.outcomes.total());
}

TEST(ObsExport, JsonValueRoundTripAndSplice) {
  const std::string original =
      "{\"alpha\": {\"x\": 1.5, \"ok\": true}, \"list\": [1, 2, 3],"
      " \"s\": \"hi\\n\", \"z\": null}";
  std::optional<obs::JsonValue> v = obs::parse_json(original);
  ASSERT_TRUE(v.has_value());
  // Serialize, re-parse, and splice a new section — bench_fleet's append path.
  obs::JsonValue extra;
  extra.type = obs::JsonValue::Type::kNumber;
  extra.number = 7.0;
  v->object["fleet"] = extra;
  const std::string text = obs::to_json(*v);
  const std::optional<obs::JsonValue> back = obs::parse_json(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->get("fleet")->number, 7.0);
  EXPECT_EQ(back->get("alpha")->get("x")->number, 1.5);
  EXPECT_TRUE(back->get("alpha")->get("ok")->boolean);
  EXPECT_EQ(back->get("list")->array.size(), 3u);
  EXPECT_EQ(back->get("s")->string, "hi\n");
  EXPECT_EQ(back->get("z")->type, obs::JsonValue::Type::kNull);
  // Idempotent: serializing the reparsed tree gives the same bytes.
  EXPECT_EQ(obs::to_json(*back), text);
}

}  // namespace
}  // namespace p5g
